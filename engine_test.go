package bicoop_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"bicoop"
)

// grid builds a small power × direct-gain scenario grid.
func grid(n int) []bicoop.Scenario {
	out := make([]bicoop.Scenario, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, bicoop.Scenario{
			PowerDB: -5 + 25*float64(i)/float64(n),
			GabDB:   -7 + float64(i%5),
			GarDB:   0,
			GbrDB:   5,
		})
	}
	return out
}

func TestSumRateBatchMatchesOneShot(t *testing.T) {
	eng := bicoop.NewEngine()
	scenarios := grid(64)
	for _, p := range bicoop.AllProtocols() {
		for _, b := range []bicoop.Bound{bicoop.Inner, bicoop.Outer} {
			batch, err := eng.SumRateBatch(context.Background(), p, b, scenarios)
			if err != nil {
				t.Fatalf("%v %v: %v", p, b, err)
			}
			if len(batch) != len(scenarios) {
				t.Fatalf("%v %v: got %d results, want %d", p, b, len(batch), len(scenarios))
			}
			for i, s := range scenarios {
				one, err := bicoop.OptimalSumRate(p, b, s)
				if err != nil {
					t.Fatalf("%v %v scenario %d: %v", p, b, i, err)
				}
				if math.Abs(batch[i].Sum-one.Sum) > 1e-9 {
					t.Errorf("%v %v scenario %d: batch sum %g, one-shot %g", p, b, i, batch[i].Sum, one.Sum)
				}
				var total float64
				for _, d := range batch[i].Durations {
					total += d
				}
				if math.Abs(total-1) > 1e-9 {
					t.Errorf("%v %v scenario %d: durations sum %g", p, b, i, total)
				}
			}
		}
	}
}

func TestEngineValidation(t *testing.T) {
	eng := bicoop.NewEngine()
	ctx := context.Background()
	nanScenario := bicoop.Scenario{PowerDB: math.NaN(), GabDB: -7, GarDB: 0, GbrDB: 5}
	infScenario := bicoop.Scenario{PowerDB: 10, GabDB: math.Inf(1), GarDB: 0, GbrDB: 5}
	good := bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}

	for _, s := range []bicoop.Scenario{nanScenario, infScenario} {
		if _, err := eng.SumRate(bicoop.MABC, bicoop.Inner, s); !errors.Is(err, bicoop.ErrInvalidScenario) {
			t.Errorf("SumRate(%+v) err = %v, want ErrInvalidScenario", s, err)
		}
		if _, err := eng.Region(ctx, bicoop.MABC, bicoop.Inner, s, bicoop.RegionOptions{}); !errors.Is(err, bicoop.ErrInvalidScenario) {
			t.Errorf("Region err = %v, want ErrInvalidScenario", err)
		}
		if _, err := eng.Feasible(bicoop.MABC, bicoop.Inner, s, bicoop.RatePoint{}); !errors.Is(err, bicoop.ErrInvalidScenario) {
			t.Errorf("Feasible err = %v, want ErrInvalidScenario", err)
		}
		if _, err := eng.SumRateBatch(ctx, bicoop.MABC, bicoop.Inner, []bicoop.Scenario{good, s}); !errors.Is(err, bicoop.ErrInvalidScenario) {
			t.Errorf("SumRateBatch err = %v, want ErrInvalidScenario", err)
		}
		if _, err := eng.Simulate(ctx, bicoop.SimSpec{Fading: &bicoop.FadingSpec{Scenario: s}, Trials: 1}); !errors.Is(err, bicoop.ErrInvalidScenario) {
			t.Errorf("Simulate fading err = %v, want ErrInvalidScenario", err)
		}
	}
	// The legacy one-shot wrappers inherit the typed validation.
	if _, err := bicoop.OptimalSumRate(bicoop.MABC, bicoop.Inner, nanScenario); !errors.Is(err, bicoop.ErrInvalidScenario) {
		t.Errorf("legacy OptimalSumRate err = %v, want ErrInvalidScenario", err)
	}

	if _, err := eng.Feasible(bicoop.MABC, bicoop.Inner, good, bicoop.RatePoint{Ra: math.NaN()}); !errors.Is(err, bicoop.ErrInvalidRates) {
		t.Errorf("Feasible NaN rate err = %v, want ErrInvalidRates", err)
	}

	// Trial and block-length validation.
	if _, err := eng.Simulate(ctx, bicoop.SimSpec{Fading: &bicoop.FadingSpec{Scenario: good}, Trials: -1}); !errors.Is(err, bicoop.ErrInvalidTrials) {
		t.Errorf("negative trials err = %v, want ErrInvalidTrials", err)
	}
	tdbc := &bicoop.BitTrueTDBCSpec{
		Links:       bicoop.ErasureLinks{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
		Rates:       bicoop.RatePoint{Ra: 0.1, Rb: 0.1},
		BlockLength: 200,
	}
	if _, err := eng.Simulate(ctx, bicoop.SimSpec{BitTrueTDBC: tdbc}); !errors.Is(err, bicoop.ErrInvalidTrials) {
		t.Errorf("zero bit-true trials err = %v, want ErrInvalidTrials", err)
	}
	short := *tdbc
	short.BlockLength = -4
	if _, err := eng.Simulate(ctx, bicoop.SimSpec{BitTrueTDBC: &short, Trials: 2}); !errors.Is(err, bicoop.ErrInvalidBlockLength) {
		t.Errorf("negative block length err = %v, want ErrInvalidBlockLength", err)
	}
	bad := *tdbc
	bad.Rates = bicoop.RatePoint{Ra: math.NaN(), Rb: 0.1}
	if _, err := eng.Simulate(ctx, bicoop.SimSpec{BitTrueTDBC: &bad, Trials: 2}); !errors.Is(err, bicoop.ErrInvalidRates) {
		t.Errorf("NaN bit-true rate err = %v, want ErrInvalidRates", err)
	}

	// Spec shape validation.
	if _, err := eng.Simulate(ctx, bicoop.SimSpec{Trials: 10}); !errors.Is(err, bicoop.ErrInvalidSimSpec) {
		t.Errorf("empty spec err = %v, want ErrInvalidSimSpec", err)
	}
	if _, err := eng.Simulate(ctx, bicoop.SimSpec{
		Fading:      &bicoop.FadingSpec{Scenario: good},
		BitTrueTDBC: tdbc,
		Trials:      10,
	}); !errors.Is(err, bicoop.ErrInvalidSimSpec) {
		t.Errorf("double spec err = %v, want ErrInvalidSimSpec", err)
	}
	if err := eng.Sweep(ctx, bicoop.SweepSpec{}, nil); !errors.Is(err, bicoop.ErrInvalidSweepSpec) {
		t.Errorf("nil yield err = %v, want ErrInvalidSweepSpec", err)
	}
}

func TestSimulateMatchesLegacyFacade(t *testing.T) {
	eng := bicoop.NewEngine()
	s := bicoop.Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}
	res, err := eng.Simulate(context.Background(), bicoop.SimSpec{
		Fading: &bicoop.FadingSpec{Scenario: s, Target: bicoop.RatePoint{Ra: 0.5, Rb: 0.5}},
		Trials: 300,
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := bicoop.SimulateFading(context.Background(), bicoop.FadingConfig{
		Scenario: s,
		Target:   bicoop.RatePoint{Ra: 0.5, Rb: 0.5},
		Trials:   300,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 300 {
		t.Errorf("Trials = %d, want 300", res.Trials)
	}
	for p, st := range legacy {
		got := res.Fading[p]
		if got != st {
			t.Errorf("%v: engine %+v, legacy %+v", p, got, st)
		}
	}
}

func TestSimulateProgress(t *testing.T) {
	eng := bicoop.NewEngine()
	var mu sync.Mutex
	var last int
	calls := 0
	res, err := eng.Simulate(context.Background(), bicoop.SimSpec{
		Fading: &bicoop.FadingSpec{Scenario: bicoop.Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}},
		Trials: 500,
		Seed:   1,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != 500 {
				t.Errorf("total = %d, want 500", total)
			}
			if done < last {
				t.Errorf("done went backwards: %d after %d", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 || last != 500 {
		t.Errorf("progress: %d calls, final done = %d, want final 500", calls, last)
	}
	if res.Trials != 500 {
		t.Errorf("Trials = %d, want 500", res.Trials)
	}
}

// TestSimulateCancellation proves a cancelled Simulate returns promptly —
// well under the shard granularity (one worker's full trial share, which
// would take minutes here) — with partial counts and no leaked goroutines.
func TestSimulateCancellation(t *testing.T) {
	eng := bicoop.NewEngine()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := eng.Simulate(ctx, bicoop.SimSpec{
		BitTrueTDBC: &bicoop.BitTrueTDBCSpec{
			Links:       bicoop.ErasureLinks{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
			Rates:       bicoop.RatePoint{Ra: 0.2, Rb: 0.2},
			BlockLength: 1000,
		},
		Trials:  1_000_000, // hours of work if the cancel were ignored
		Seed:    1,
		Workers: 2,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: a worker notices the flag within one ~2ms block; the
	// limit only has to rule out "ran to completion".
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled Simulate took %v", elapsed)
	}
	if res.Trials <= 0 || res.Trials >= 1_000_000 {
		t.Errorf("partial Trials = %d, want strictly between 0 and the request", res.Trials)
	}
	if res.BitTrue == nil {
		t.Fatal("partial result missing BitTrue counts")
	}
	// The worker pool must have drained: no goroutines may outlive the call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestCancellationWithCause pins the error contract under
// context.WithCancelCause: the returned error must satisfy both
// errors.Is(err, context.Canceled) — the documented cancellation check —
// and errors.Is(err, cause).
func TestCancellationWithCause(t *testing.T) {
	eng := bicoop.NewEngine()
	cause := errors.New("service shutting down")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	_, err := eng.Simulate(ctx, bicoop.SimSpec{
		Fading: &bicoop.FadingSpec{Scenario: bicoop.Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}},
		Trials: 100_000,
		Seed:   1,
	})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, cause) {
		t.Errorf("Simulate err = %v, want both context.Canceled and the cause", err)
	}

	_, err = eng.SumRateBatch(ctx, bicoop.MABC, bicoop.Inner, grid(8))
	if !errors.Is(err, context.Canceled) || !errors.Is(err, cause) {
		t.Errorf("SumRateBatch err = %v, want both context.Canceled and the cause", err)
	}

	err = eng.Sweep(ctx, bicoop.SweepSpec{Base: bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}},
		func(bicoop.SweepPoint) error { return nil })
	if !errors.Is(err, context.Canceled) || !errors.Is(err, cause) {
		t.Errorf("Sweep err = %v, want both context.Canceled and the cause", err)
	}
}

func TestSweepGrid(t *testing.T) {
	eng := bicoop.NewEngine()
	spec := bicoop.SweepSpec{
		Protocols: []bicoop.Protocol{bicoop.MABC, bicoop.TDBC},
		PowersDB:  []float64{0, 10},
		Placements: []bicoop.RelayPlacement{
			{Pos: 0.3, Exponent: 3},
			{Pos: 0.5, Exponent: 3},
			{Pos: 0.7, Exponent: 3},
		},
		Erasures: []bicoop.ErasureLinks{
			{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
		},
	}
	want := 2*3*2 + 1
	if got := spec.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	pts, err := eng.SweepAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
	}
	// Enumeration order: power outer, placement middle, protocol inner.
	if pts[0].PowerDB != 0 || pts[0].Protocol != bicoop.MABC || pts[0].Placement.Pos != 0.3 {
		t.Errorf("first point out of order: %+v", pts[0])
	}
	if pts[1].Protocol != bicoop.TDBC {
		t.Errorf("second point protocol = %v, want TDBC", pts[1].Protocol)
	}
	if pts[2].Placement.Pos != 0.5 {
		t.Errorf("third point placement = %v, want 0.5", pts[2].Placement.Pos)
	}
	// Gaussian points must match the one-shot facade on the same scenario.
	for _, pt := range pts[:want-1] {
		one, err := bicoop.OptimalSumRate(pt.Protocol, pt.Bound, pt.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pt.Result.Sum-one.Sum) > 1e-9 {
			t.Errorf("point %d: sweep %g vs one-shot %g", pt.Index, pt.Result.Sum, one.Sum)
		}
	}
	// The erasure point is the Theorem 3 erasure optimum.
	last := pts[want-1]
	if last.Erasure == nil || last.Protocol != bicoop.TDBC || last.Bound != bicoop.Inner {
		t.Fatalf("erasure point malformed: %+v", last)
	}
	opt, err := bicoop.OptimalTDBCErasureRates(*last.Erasure)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.Result.Sum-opt.Sum) > 1e-9 {
		t.Errorf("erasure point sum %g, want %g", last.Result.Sum, opt.Sum)
	}

	// An erasures-only spec must not evaluate the (zero-value) Base
	// scenario: the Gaussian grid is skipped entirely.
	onlyErasures := bicoop.SweepSpec{Erasures: spec.Erasures}
	if got := onlyErasures.Size(); got != 1 {
		t.Errorf("erasures-only Size = %d, want 1", got)
	}
	epts, err := eng.SweepAll(context.Background(), onlyErasures)
	if err != nil {
		t.Fatal(err)
	}
	if len(epts) != 1 || epts[0].Erasure == nil || epts[0].Index != 0 {
		t.Errorf("erasures-only sweep yielded %+v, want exactly the one erasure point", epts)
	}

	// A yield error stops the sweep immediately.
	sentinel := errors.New("stop here")
	n := 0
	err = eng.Sweep(context.Background(), spec, func(bicoop.SweepPoint) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Errorf("yield stop: err = %v after %d points, want sentinel after 3", err, n)
	}

	// Cancellation stops the sweep with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Sweep(ctx, spec, func(bicoop.SweepPoint) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep err = %v, want context.Canceled", err)
	}
}

// TestEngineConcurrent exercises one Engine from many goroutines mixing
// every method; run with -race (CI does) to prove the pool and caches are
// goroutine-safe.
func TestEngineConcurrent(t *testing.T) {
	eng := bicoop.NewEngine()
	s := bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}
	ref, err := eng.SumRate(bicoop.HBC, bicoop.Inner, s)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := grid(32)
	refBatch, err := eng.SumRateBatch(context.Background(), bicoop.TDBC, bicoop.Inner, scenarios)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (g + i) % 4 {
				case 0:
					got, err := eng.SumRate(bicoop.HBC, bicoop.Inner, s)
					if err != nil {
						errCh <- err
						return
					}
					if math.Abs(got.Sum-ref.Sum) > 1e-12 {
						errCh <- errors.New("concurrent SumRate diverged")
						return
					}
				case 1:
					got, err := eng.SumRateBatch(context.Background(), bicoop.TDBC, bicoop.Inner, scenarios)
					if err != nil {
						errCh <- err
						return
					}
					for j := range got {
						if math.Abs(got[j].Sum-refBatch[j].Sum) > 1e-12 {
							errCh <- errors.New("concurrent SumRateBatch diverged")
							return
						}
					}
				case 2:
					if _, err := eng.Feasible(bicoop.MABC, bicoop.Inner, s, bicoop.RatePoint{Ra: 1, Rb: 1}); err != nil {
						errCh <- err
						return
					}
				default:
					if _, err := eng.Region(context.Background(), bicoop.TDBC, bicoop.Inner, s, bicoop.RegionOptions{}); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
