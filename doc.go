// Package bicoop is a library for analyzing coded bidirectional cooperation
// ("two-way relaying") protocols over half-duplex channels, reproducing
//
//	S.J. Kim, P. Mitran, V. Tarokh,
//	"Performance Bounds for Bidirectional Coded Cooperation Protocols"
//	(ICDCS 2007 / IEEE Transactions on Information Theory 54(11), 2008).
//
// Two terminals a and b exchange messages with the help of a relay r. The
// library evaluates achievable-rate (inner) and converse (outer) bounds for
// the paper's decode-and-forward protocols
//
//   - DT: direct transmission, no relay;
//   - Naive4: four-phase store-and-forward relaying, no network coding;
//   - MABC: two-phase multiple-access broadcast (Theorem 2, tight);
//   - TDBC: three-phase time-division broadcast (Theorems 3-4);
//   - HBC: four-phase hybrid broadcast (Theorems 5-6);
//
// on the Gaussian channel with path loss (Section IV), optimizes phase
// durations by linear programming, computes full rate regions, verifies the
// paper's findings (MABC/TDBC SNR crossover; achievable HBC points beyond
// both outer bounds), and provides Monte Carlo simulators: Rayleigh
// block-fading outage and bit-true TDBC/MABC implementations over erasure
// networks using random linear codes and XOR network coding.
//
// # The Engine
//
// The API centers on the concurrency-safe Engine: it owns pooled
// evaluators (compiled constraint templates keyed by (protocol, bound),
// reusable LP workspaces, closed-form fast paths) and the simulator worker
// pools, and exposes context-aware methods for every workload shape:
//
//	eng := bicoop.NewEngine()
//	s := bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}
//
//	// Single evaluations.
//	res, err := eng.SumRate(bicoop.HBC, bicoop.Inner, s)
//	ok, err := eng.Feasible(bicoop.HBC, bicoop.Inner, s, bicoop.RatePoint{Ra: 1, Rb: 1})
//
//	// Rate regions: the support-direction sweep behind one Fig 4 curve,
//	// sharded across workers and cancellable mid-curve. RegionOptions.Angles
//	// is the resolution knob: more support directions recover more polygon
//	// vertices exactly (0 means 181, the paper's Fig 4 resolution; the two
//	// axis maxima are always solved exactly on top of the sweep, so coarse
//	// sweeps still anchor max Ra / max Rb). RegionBatch computes whole
//	// curve families — scenarios × protocol bounds — in one sharded run.
//	reg, err := eng.Region(ctx, bicoop.HBC, bicoop.Inner, s, bicoop.RegionOptions{Angles: 361})
//	err = eng.RegionBatch(ctx, bicoop.RegionBatchSpec{...}, func(pt bicoop.RegionBatchPoint) error { ... })
//
//	// Batches: thousands of scenarios sharded across a worker pool, each
//	// worker holding one warm evaluator.
//	results, err := eng.SumRateBatch(ctx, bicoop.TDBC, bicoop.Inner, scenarios)
//
//	// Declarative grids (power × relay placement × protocol, plus an
//	// erasure-network axis), evaluated in parallel and streamed point by
//	// point in enumeration order.
//	err = eng.Sweep(ctx, bicoop.SweepSpec{...}, func(pt bicoop.SweepPoint) error { ... })
//
//	// The unified Monte Carlo entry point: one SimSpec selects the fading
//	// or bit-true simulator under a common Trials/Seed/Workers/Progress
//	// contract; cancelling ctx stops the shard loops within one trial and
//	// returns the statistics over the trials completed so far.
//	sim, err := eng.Simulate(ctx, bicoop.SimSpec{Fading: &bicoop.FadingSpec{Scenario: s}})
//
//	// Campaigns: families of simulation runs — waterfall scale axes, seed
//	// or SNR families — pipelined across an outer worker pool with
//	// deterministic per-spec seeds, streamed as whole runs in spec order.
//	all, err := eng.SimulateBatch(ctx, bicoop.CampaignSpec{Specs: specs}, nil)
//
// All Engine methods are safe for concurrent use from many goroutines.
// Inputs are validated up front with typed sentinels (ErrInvalidScenario,
// ErrInvalidTrials, ErrInvalidBlockLength, ...) so malformed scenarios fail
// loudly instead of propagating NaNs into results.
//
// # One-shot conveniences and migration
//
// The historical free functions (OptimalSumRate, RateRegion, Feasible,
// SimulateFading, SimulateBitTrueTDBC, SimulateBitTrueMABC, RunExperiment)
// remain and behave as before; they are now thin wrappers over a shared
// package-level engine (DefaultEngine). Existing code keeps working
// unchanged. Code that evaluates many scenarios — figure sweeps, parameter
// studies, services — should migrate to an Engine and the batch/sweep
// APIs, which amortize evaluator reuse across calls instead of paying pool
// traffic and result allocation per scenario; code that runs simulations
// interactively should migrate to Engine.Simulate for context
// cancellation and progress reporting. The machinery lives under internal/
// (see DESIGN.md for the system inventory).
//
// # Resilience
//
// Production-scale sweeps meet transient failure: flaky infrastructure, a
// workload panic, an evicted process. The streaming specs (SweepSpec,
// RegionBatchSpec, CampaignSpec) share three resilience primitives, built
// into the sharded core so every guarantee below composes with the
// bit-identical-across-Workers contract.
//
// Panic containment: a panic inside a worker never crashes the process. It
// is recovered per chunk and surfaced as a *ChunkError wrapping a
// *PanicError (recovered value + stack), reachable through errors.As on the
// returned error.
//
// Retry: a spec's Retry field re-runs failed chunks — MaxAttempts bounds
// the tries, BaseDelay/MaxDelay shape a capped exponential backoff whose
// jitter is derived deterministically from the chunk index, and IsTransient
// classifies which errors are worth retrying (nil retries everything except
// context cancellation). Between attempts the failed worker's state is torn
// down and recreated through the same hooks that built it, so a chunk that
// succeeds on attempt 3 produces exactly the bits it would have produced on
// attempt 1:
//
//	spec.Retry = &bicoop.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond}
//
// Checkpoint/resume: a spec's Checkpoint field observes the resume
// watermark — the contiguous prefix of results already delivered to the
// caller, in the spec's own yield units (points, curves, or runs) — and the
// Start field resumes a later run past it. Saves fire only after the
// corresponding yields returned, so a watermark never overstates delivery,
// and the concatenated yields of an interrupted run plus its resume equal
// an uninterrupted run's exactly:
//
//	ck := &bicoop.FileCheckpoint{Path: "sweep.ck"}
//	spec.Checkpoint = ck
//	spec.Start, _ = ck.Load() // 0 on the first run
//	err := eng.Sweep(ctx, spec, writeRow)
//
// The CLI packages the recipe: `bcc sweep -o grid.csv -checkpoint grid.ck`
// persists {watermark, CSV byte offset} atomically as the sweep streams, a
// rerun truncates the CSV to the checkpointed offset and resumes from the
// watermark, and the finished file is byte-identical to an uninterrupted
// run's — through any number of Ctrl-C, -timeout (exit 124), or kill -9
// interruptions. Deterministic fault injection for testing retry paths
// lives in internal/sweep/chaos: it wraps a workload with seed-keyed
// transient/permanent faults and panics, every injection a pure function of
// (seed, chunk, attempt), so a chaos-wrapped run retried to completion is
// asserted bit-identical to a fault-free one at every worker count.
//
// # Running bccd
//
// Command bccd serves the same engine as a crash-safe HTTP/JSON job
// daemon, for long sweeps that should survive the submitting shell — and
// the machine. It layers the checkpoint/resume discipline above into a
// durable job store (internal/service): each job gets a directory holding
// its spec verbatim, its state, a streaming results.csv, and a
// {watermark, byte offset} checkpoint saved atomically as rows flush.
//
//	bccd -store /var/lib/bccd -addr 127.0.0.1:8347
//
//	POST   /v1/jobs              submit a job; 201 + {"id": "j000001", ...}
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status: state, error, resume watermark
//	GET    /v1/jobs/{id}/results the CSV so far (live jobs: checkpointed
//	                             prefix only, never retractable rows)
//	DELETE /v1/jobs/{id}         cancel; partial results stay valid
//	GET    /healthz              {"ok": true, "draining": false}
//
// A job is exactly one of "sweep", "region_batch" or "campaign" (mirroring
// SweepSpec, RegionBatchSpec, CampaignSpec; enums travel as names), plus
// optional "retry" and "timeout_ms":
//
//	{"sweep": {"base": {"PowerDB": 0, "GabDB": -7, "GarDB": 0, "GbrDB": 5},
//	           "powers_db": [0, 10, 20], "protocols": ["MABC", "TDBC"]}}
//
// The guarantees are the CLI's, detached from any client: kill -9 the
// daemon mid-job and the restarted daemon rescans the store, re-queues
// interrupted jobs, truncates each results.csv to its checkpointed offset,
// and resumes from the watermark — the finished file is byte-identical to
// an uninterrupted run's (the service-chaos CI job pins this at several
// worker counts). SIGTERM drains gracefully: admission stops (503 +
// Retry-After), running jobs checkpoint and park back to queued, and the
// process exits within -drain. A full queue sheds new submissions with 429
// + Retry-After instead of buffering unboundedly; "timeout_ms" lands a job
// past its deadline in state "timeout" with valid partial results,
// mirroring bcc's exit-124 contract. `make service-smoke` runs the
// end-to-end lifecycle; `make service-chaos` runs the kill -9 gate.
//
// # Result cache
//
// Every analytic bound is a pure function of (protocol, bound, scenario),
// and real workloads repeat scenarios constantly — a placement sweep
// revisits the same grid point at every power, a resubmitted bccd job
// re-solves yesterday's grid verbatim. WithCache(capacity) puts a
// scenario-keyed result cache (internal/cache) in front of the LP solves:
// SumRate, SumRateBatch, Sweep and RegionBatch consult it per point and
// fill it per solve. The CLI exposes it as `bcc sweep -cache N`; the
// daemon as `bccd -cache N`, which also opens the durable tier described
// below.
//
// Keys quantize every real coordinate (dB powers and gains, erasure
// probabilities, support-direction weights) onto a canonical 1e-9 grid
// through one chokepoint, cache.Quantize, so equal coordinates produce
// byte-equal keys on every platform (the cachekey analyzer rejects keys
// assembled any other way). Quantization applies to the lookup key only:
// the stored value is the exact solve of the exact scenario, so a hit
// returns bit-identical output, not a grid-rounded approximation.
//
// Cached values are canonical cold solves. A warm-started simplex solve
// carries its predecessor's basis, and on degenerate LPs (multiple
// optimal vertices) the warm and cold paths can legitimately pick
// different optimal rate points — same objective, different (Ra, Rb)
// split. A cache hit must not depend on which points happened to precede
// the miss that filled it, so cache-enabled runs disable warm starting
// and every cached value is position-independent. Consequences: a cached
// run equals another cached run, a single-point SumRate, and itself at
// any worker count, bit for bit (pinned by == tests at Workers 1/2/7);
// for the closed-form bounds (DT, MABC, TDBC) it also equals a warm
// batch; for Naive4/HBC a warm uncached sweep may report a different —
// equally optimal — vertex at degenerate points.
//
// The in-process tier is a sharded store: 64 shards, one mutex and a
// flat entry array per shard, second-chance (clock) eviction, zero
// allocations on the hit path (~120 bytes per entry plus map overhead,
// so -cache 65536 costs ~10 MB). Engine.CacheStats reports Hits, Misses,
// Fills and Evictions since construction; Hits+Misses counts lookups
// exactly, and Fills counts distinct keys filled (concurrent workers may
// race to solve the same key — the loser's overwrite is counted as a
// miss but not a fill). bccd republishes the counters at GET /stats.
//
// bccd adds a durable tier (internal/service.CacheLog): an append-only
// cache.log next to the job store, one fixed-size CRC32-checked record
// per fill, flushed after every job and replayed into the store at
// startup — so a resubmitted job after a restart is served from cache.
// Fills are warmth, not correctness: replay stops at the first torn or
// corrupt record, compaction snapshots the live entries via tmp+rename
// (also triggered when stale records bloat the log past twice the live
// count), and a kill -9 at any instant loses at most the unflushed tail,
// which the next run re-solves. The service-chaos gate pins this: a
// cache-served rerun across SIGKILLs must be byte-identical to the
// uninterrupted run. The bench-gate CI job pins the fast path itself —
// an all-hit batch must stay at least 5x cheaper than the same batch
// all-miss (`benchjson compare -min-speedup`).
//
// # Performance and profiling
//
// Every reported quantity reduces to a tiny phase-duration LP per scenario,
// re-solved per protocol per fading block by the Monte Carlo layer. The hot
// path is allocation-free in steady state: internal/protocols.Evaluator
// caches the scenario-independent constraint structure per protocol/bound,
// evaluates only the mutual-information terms that structure references
// (exact aliases share one transcendental), solves the two- and three-phase
// bounds (DT, MABC, TDBC) in closed form by candidate-vertex enumeration,
// and falls back to a reusable-workspace simplex (internal/simplex) for
// Naive4/HBC.
//
// Every parallel workload in the repository — SumRateBatch and Sweep grids,
// Region and RegionBatch support sweeps, SimulateBatch campaigns, and the
// figure experiments — executes through one generic sharded core,
// internal/sweep.RunCore: an indexed point set is split into fixed-size
// chunks pulled by a worker pool (claim = one atomic add), each worker owns
// private state supplied by a Hooks[W] triple (NewWorker/ResetWorker/
// CloseWorker), completed chunks stream to an ordered emitter under a
// bounded backpressure window (~2x workers chunks live), and cancellation
// is a context.AfterFunc flipping one atomic flag polled per chunk, with
// the contiguous completed prefix reported alongside the context error.
// Sharding a new axis is three decisions: flatten the axis into point
// indices (the grid flattens power x placement x protocol; regions flatten
// curves x support directions; campaigns flatten whole simulation runs at
// chunk size 1), pick the per-worker state W and its per-chunk reset (warm
// evaluators reset their LP bases; stateless workloads pass
// Hooks[struct{}]{}), and write results into index-addressed storage so
// the emitter can stream them in enumeration order. Because chunk
// boundaries depend only on the point count and chunk size — never on
// Workers — any state reset happens at the same indices for every worker
// count, which is what makes every result bit-identical from 1 worker to N.
//
// For the LP grids concretely: each worker holds one warm evaluator, and
// within a chunk the Naive4/HBC LPs warm-start from the previous point's
// optimal basis (simplex.SolveWarmIn — usually zero phase-2 pivots on
// adjacent grid points or region angles). The parallel knobs: WithWorkers
// sets an engine-wide default; SweepSpec.Workers, RegionOptions.Workers,
// RegionBatchSpec.Workers and CampaignSpec.Workers override per run; all
// default to GOMAXPROCS. A post-solve refinement step makes every LP
// solution a function of its final basis alone, so batch, sweep and region
// results are bit-identical for every Workers setting — worker count only
// trades wall-clock time for cores. Campaigns keep the same guarantee one
// level up: every SimSpec carries its own seed, and inside a campaign a
// spec's zero Workers field means one trial goroutine (not the engine
// default), so campaign statistics never depend on the outer worker count
// or the host's core count.
// The figure pipeline streams: experiments consume sweep points through
// callbacks, tables accumulate raw floats (plot.ColumnTable) and format
// once at render time, and each canonical figure emits a text+CSV artifact
// pinned by golden-file tests (internal/experiments/testdata/figures;
// regenerate with `go test ./internal/experiments/ -run TestGoldenFigures
// -update`).
//
// The bit-true simulators are word-parallel end to end: internal/gf2 packs
// rows into flat []uint64 matrices redrawn in place per block
// (Matrix.Rerandomize); link erasures are drawn 64 channel uses at a time by
// prob.WordBernoulli masks (one ~8-draw fixed-point refinement per 64
// positions instead of 64 Float64 calls; survivors visited by a
// TrailingZeros64 scan — see internal/sim/erasure.go); and decoding runs
// through a reusable word-level elimination tableau (gf2.Solver.SolveInto
// and the SolveConsistentInto early-stop variant for noiseless erasure
// observations), which past 512 unknowns switches to a dense M4RI-style
// multi-column eliminator (internal/gf2/m4ri.go: 8 pivot columns per pass
// via a 256-entry combination table). The TDBC/MABC trial loops run on a
// worker pool with per-worker RNGs, codes, and scratch — zero allocations
// per block. Context cancellation costs one atomic flag load per trial
// (internal/sim's runGate), so a cancelled run stops within one trial
// without slowing an uncancelled one. Allocation regressions are pinned by
// testing.AllocsPerRun tests next to the hot paths (internal/protocols,
// internal/sim, internal/simplex, internal/gf2).
//
// Canonical-stream migration note: the word-parallel masks replaced the
// retired one-Float64-per-position erasure sampling, which changed the
// bit-true simulators' canonical random stream. Results remain a pure
// function of (Seed, Trials, Workers), but a seed recorded against the
// scalar stream now produces a different — statistically equally valid —
// sample path, so success counts from pre-mask releases are not directly
// comparable at the per-seed level (the statistical contracts, waterfall
// thresholds and sharded-vs-sequential agreement all carry over).
//
// Start perf work from a profile, not a guess:
//
//	# profile a real workload through the CLI (also for bit-true runs:
//	# -workers caps GOMAXPROCS, which bounds every simulator's pool)
//	go run ./cmd/bcc run fading -workers 1 -cpuprofile /tmp/cpu.prof
//	go run ./cmd/bcc run bitsim -workers 8 -cpuprofile /tmp/bitsim.prof
//	go tool pprof -top /tmp/cpu.prof
//
//	# or profile the micro-benchmarks around the kernel you are changing
//	go test ./internal/sim/ -run '^$' -bench BenchmarkOutageTrial \
//	    -benchmem -cpuprofile /tmp/trial.prof
//	go test ./internal/sim/ -run '^$' -bench 'BenchmarkErasureMask' \
//	    -benchmem   # word-parallel masks vs the retired scalar sampler
//	go test ./internal/gf2/ -run '^$' -bench 'BenchmarkSolve(Incremental|M4RI)' \
//	    -benchtime 20x -benchmem   # elimination ladder at 256/1k/4k unknowns
//	go test . -run '^$' -bench 'Benchmark(Engine|OneShot)SumRateBatch$' \
//	    -benchmem   # engine batch vs 1k one-shot calls over the same grid
//	go test ./internal/sim/ -run '^$' -bench 'BenchmarkBitTrue(TDBC|MABC)(Parallel)?$' \
//	    -benchtime 10x -benchmem   # full runs, sequential vs sharded
//	go tool pprof -top /tmp/trial.prof
//
//	# record the before/after ledger (writes BENCH_*.json)
//	./scripts/bench.sh BENCH_after.json
//
//	# the perf regression gate: short ledger run compared against the
//	# committed BENCH_after.json; nonzero exit on a hot-path time
//	# regression, on allocs appearing in a 0-alloc kernel, or on a
//	# benchmark disappearing (stale bench.sh pattern)
//	make bench-compare
//	go run ./cmd/benchjson compare BENCH_after.json BENCH_ci.json -threshold 1.25
//
// BENCH_baseline.json (the pre-optimization revision) and BENCH_after.json
// (current) are committed at the repo root; keep them in sync with scripts/
// bench.sh when a PR changes performance-relevant code. CI's bench-gate job
// runs the same compare with a looser threshold (cross-machine ns/op), so a
// perf regression fails the PR instead of silently rotting the ledger; the
// bench.sh pattern lists themselves are guarded by TestBenchLedgerCoverage.
//
// # Static analysis
//
// The repository's cross-cutting invariants — the rules the sections above
// state in prose — are enforced mechanically by cmd/bcclint, a stdlib-only
// multichecker built on internal/lint. `make lint` (or
// `go run ./cmd/bcclint ./...`) runs six project analyzers:
//
//   - detrand: result-producing packages draw no nondeterminism — no
//     global math/rand (seeds travel in specs) and no wall-clock reads —
//     so every result stays a pure function of its inputs and the
//     bit-identical-across-Workers contract survives.
//   - noalloc: functions annotated `//bicoop:noalloc` (the gf2, simplex
//     and bit-true per-block kernels) must not contain allocating
//     constructs; the annotation turns the "zero allocations per block"
//     claim into a compile-time-checkable contract alongside the
//     AllocsPerRun tests. The directive on a package clause (internal/gf2)
//     widens the scope to every function in the package, with
//     `//bicoop:allow noalloc` doc waivers as the audited opt-out for cold
//     constructors and scratch growers.
//   - ctxflow: exported Run*/Sweep*/Simulate* entry points take a
//     context.Context first, and nothing outside package main mints its
//     own context.Background/TODO — cancellation always threads from the
//     caller.
//   - atomicwrite: internal/service writes durable files only through
//     functions annotated `//bicoop:atomicio` (tmp+rename or an audited
//     checkpoint-truncate), keeping the kill -9 recovery story auditable
//     at the call-site level.
//   - errwrap: sentinel comparisons use errors.Is, and fmt.Errorf wraps
//     with %w rather than flattening with %v/%s, so errors.Is/As keep
//     working across API layers.
//   - cachekey: result-cache keys are built only by internal/cache's
//     quantizing constructors — a hand-assembled cache.Key literal or a
//     Key field write outside that package can skip Quantize or the
//     layout-version stamp and silently alias cache entries.
//
// A finding is fixed, or waived in place with a one-line audited comment
// `//bicoop:allow <analyzer> — reason` covering that line and the next.
// The suite runs clean over the whole module and CI's lint job keeps it
// that way, alongside version-pinned staticcheck (SA checks) and
// govulncheck. The analyzers are plain go/ast+go/types passes loaded via
// `go list -export` (no external dependencies); their fixtures live in
// internal/lint/analyzers/testdata with both flagged and deliberately
// clean near-miss cases.
package bicoop
