// Package bicoop is a library for analyzing coded bidirectional cooperation
// ("two-way relaying") protocols over half-duplex channels, reproducing
//
//	S.J. Kim, P. Mitran, V. Tarokh,
//	"Performance Bounds for Bidirectional Coded Cooperation Protocols"
//	(ICDCS 2007 / IEEE Transactions on Information Theory 54(11), 2008).
//
// Two terminals a and b exchange messages with the help of a relay r. The
// library evaluates achievable-rate (inner) and converse (outer) bounds for
// the paper's decode-and-forward protocols
//
//   - DT: direct transmission, no relay;
//   - Naive4: four-phase store-and-forward relaying, no network coding;
//   - MABC: two-phase multiple-access broadcast (Theorem 2, tight);
//   - TDBC: three-phase time-division broadcast (Theorems 3-4);
//   - HBC: four-phase hybrid broadcast (Theorems 5-6);
//
// on the Gaussian channel with path loss (Section IV), optimizes phase
// durations by linear programming, computes full rate regions, verifies the
// paper's findings (MABC/TDBC SNR crossover; achievable HBC points beyond
// both outer bounds), and provides Monte Carlo simulators: Rayleigh
// block-fading outage and a bit-true TDBC implementation over erasure
// networks using random linear codes and XOR network coding.
//
// The API in this package is a stable facade; the machinery lives under
// internal/ (see DESIGN.md for the system inventory). Quickstart:
//
//	s := bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}
//	res, err := bicoop.OptimalSumRate(bicoop.HBC, bicoop.Inner, s)
//	// res.Sum is the LP-optimal Ra+Rb; res.Durations the phase split.
//
// # Performance and profiling
//
// Every reported quantity reduces to a tiny phase-duration LP per scenario,
// re-solved per protocol per fading block by the Monte Carlo layer. The hot
// path is allocation-free in steady state: internal/protocols.Evaluator
// caches the scenario-independent constraint structure per protocol/bound,
// solves the two- and three-phase bounds (DT, MABC, TDBC) in closed form by
// candidate-vertex enumeration, and falls back to a reusable-workspace
// simplex (internal/simplex.Workspace, Problem.SolveIn) for Naive4/HBC.
//
// The bit-true simulators are word-parallel and sharded: internal/gf2 packs
// rows into flat []uint64 matrices redrawn in place per block
// (Matrix.Rerandomize), decodes through a reusable word-level elimination
// tableau (gf2.Solver.SolveInto and the SolveConsistentInto early-stop
// variant for noiseless erasure observations), and the TDBC/MABC trial
// loops run on a worker pool with per-worker RNGs, codes, and scratch —
// zero allocations per block. Allocation regressions are pinned by
// testing.AllocsPerRun tests next to the hot paths (internal/protocols,
// internal/sim, internal/simplex, internal/gf2).
//
// Start perf work from a profile, not a guess:
//
//	# profile a real workload through the CLI (also for bit-true runs:
//	# -workers caps GOMAXPROCS, which bounds every simulator's pool)
//	go run ./cmd/bcc run fading -workers 1 -cpuprofile /tmp/cpu.prof
//	go run ./cmd/bcc run bitsim -workers 8 -cpuprofile /tmp/bitsim.prof
//	go tool pprof -top /tmp/cpu.prof
//
//	# or profile the micro-benchmarks around the kernel you are changing
//	go test ./internal/sim/ -run '^$' -bench BenchmarkOutageTrial \
//	    -benchmem -cpuprofile /tmp/trial.prof
//	go test ./internal/sim/ -run '^$' -bench BenchmarkBitTrueTDBCBlock \
//	    -benchmem -cpuprofile /tmp/block.prof
//	go test ./internal/sim/ -run '^$' -bench 'BenchmarkBitTrue(TDBC|MABC)(Parallel)?$' \
//	    -benchtime 10x -benchmem   # full runs, sequential vs sharded
//	go tool pprof -top /tmp/block.prof
//
//	# record the before/after ledger (writes BENCH_*.json)
//	./scripts/bench.sh BENCH_after.json
//
// BENCH_baseline.json (the pre-optimization revision) and BENCH_after.json
// (current) are committed at the repo root; keep them in sync with scripts/
// bench.sh when a PR changes performance-relevant code.
package bicoop
