// Package channel models the paper's Section IV physical layer: a three-node
// Gaussian network (terminals a, b and relay r) with reciprocal effective
// power gains Gij = |gij|² combining quasi-static fading and path loss, unit
// complex AWGN, per-node per-phase transmit power P, and full CSI. It
// provides the link-rate functions C(P·G) consumed by the protocol bound
// evaluators, a line geometry with a path-loss exponent for relay-placement
// sweeps, a Rayleigh quasi-static block-fading sampler, and complex AWGN
// sample generation for signal-level demos.
package channel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bicoop/internal/xmath"
)

// Errors returned by this package.
var (
	ErrNonPositive = errors.New("channel: gains and power must be positive")
	ErrGeometry    = errors.New("channel: relay must lie strictly between the terminals")
)

// Gains holds the three effective power gains of the network, linear scale.
// The channels are reciprocal (gij = gji), so three values suffice.
type Gains struct {
	// AB is the direct terminal-terminal gain Gab.
	AB float64
	// AR is the terminal-a-to-relay gain Gar.
	AR float64
	// BR is the terminal-b-to-relay gain Gbr.
	BR float64
}

// GainsFromDB builds Gains from decibel values.
func GainsFromDB(abDB, arDB, brDB float64) Gains {
	return Gains{
		AB: xmath.FromDB(abDB),
		AR: xmath.FromDB(arDB),
		BR: xmath.FromDB(brDB),
	}
}

// Validate checks all gains are positive and finite.
func (g Gains) Validate() error {
	for _, v := range []float64{g.AB, g.AR, g.BR} {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %+v", ErrNonPositive, g)
		}
	}
	return nil
}

// Swap returns the gains with the roles of a and b exchanged. Protocol
// regions must be symmetric under this swap combined with (Ra, Rb) swap;
// tests rely on it.
func (g Gains) Swap() Gains {
	return Gains{AB: g.AB, AR: g.BR, BR: g.AR}
}

// String renders the gains in decibels.
func (g Gains) String() string {
	return fmt.Sprintf("Gab=%.2fdB Gar=%.2fdB Gbr=%.2fdB",
		xmath.DB(g.AB), xmath.DB(g.AR), xmath.DB(g.BR))
}

// LineGeometry places the relay on the segment between terminals a and b
// (distance normalized to 1) and derives gains from a path-loss law
// G = d^(-gamma). This realizes the paper's "Gaussian case with path loss"
// and the cellular scenario of its introduction (a = mobile, b = base
// station, r = relay station).
type LineGeometry struct {
	// RelayPos is the relay's position d_ar in (0, 1) along the a-b segment.
	RelayPos float64
	// Exponent is the path-loss exponent gamma (2 free space .. 4 urban).
	Exponent float64
	// RefGainAB optionally scales the whole law so that Gab equals this
	// value (linear); zero means Gab = 1 (0 dB), matching Fig 3's Gab = 0 dB.
	RefGainAB float64
}

// Gains converts the geometry to effective link gains.
func (lg LineGeometry) Gains() (Gains, error) {
	if !(lg.RelayPos > 0 && lg.RelayPos < 1) {
		return Gains{}, fmt.Errorf("%w: position %g", ErrGeometry, lg.RelayPos)
	}
	gamma := lg.Exponent
	if gamma <= 0 {
		gamma = 3
	}
	ref := lg.RefGainAB
	if ref <= 0 {
		ref = 1
	}
	// Gab = ref · 1^{-gamma} = ref; relay link gains scale with distance.
	return Gains{
		AB: ref,
		AR: ref * math.Pow(lg.RelayPos, -gamma),
		BR: ref * math.Pow(1-lg.RelayPos, -gamma),
	}, nil
}

// LinkRate returns the point-to-point rate C(P·G) = log2(1 + P·G) of a
// single link under transmit power p and gain g, unit noise.
func LinkRate(p, g float64) float64 {
	return xmath.C(p * g)
}

// MACRates bundles the multiple-access constraints at the relay when both
// terminals transmit simultaneously with power p (phases 1 of MABC, 3 of
// HBC): individual rates C(P·Gar), C(P·Gbr) and the sum rate
// C(P·Gar + P·Gbr).
type MACRates struct {
	A, B, Sum float64
}

// MAC returns the Gaussian MAC rate triple at the relay.
func MAC(p float64, g Gains) MACRates {
	return MACRates{
		A:   xmath.C(p * g.AR),
		B:   xmath.C(p * g.BR),
		Sum: xmath.C(p * (g.AR + g.BR)),
	}
}

// SIMORate returns the rate of a transmitter heard by two receivers whose
// observations are combined, C(P·(g1+g2)) — the cut-set term
// I(Xa; Yr, Yb | ·) appearing in the outer bounds (Theorems 4 and 6).
func SIMORate(p, g1, g2 float64) float64 {
	return xmath.C(p * (g1 + g2))
}

// Fading draws quasi-static Rayleigh block-fading realizations around mean
// gains: per block, Gij_inst = Gij · |h|²/E|h|² with h complex Gaussian.
// The zero value is not usable; construct with NewFading.
type Fading struct {
	mean Gains
	rng  *rand.Rand
}

// NewFading returns a fading process with the given mean gains and RNG.
// The RNG must not be shared across goroutines.
func NewFading(mean Gains, rng *rand.Rand) (*Fading, error) {
	if err := mean.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("channel: nil RNG")
	}
	return &Fading{mean: mean, rng: rng}, nil
}

// Mean returns the configured mean gains.
func (f *Fading) Mean() Gains { return f.mean }

// rayleighPower draws |h|² for h ~ CN(0,1): an Exp(1) variable.
func (f *Fading) rayleighPower() float64 {
	// -ln(U) with U uniform(0,1]; guard against U == 0.
	u := f.rng.Float64()
	for u == 0 {
		u = f.rng.Float64()
	}
	return -math.Log(u)
}

// Draw samples one block's instantaneous gains.
func (f *Fading) Draw() Gains {
	return Gains{
		AB: f.mean.AB * f.rayleighPower(),
		AR: f.mean.AR * f.rayleighPower(),
		BR: f.mean.BR * f.rayleighPower(),
	}
}

// ComplexGain draws a reciprocal complex channel coefficient with mean power
// meanG: g = sqrt(meanG/2)·(x + i·y), x,y ~ N(0,1).
func ComplexGain(meanG float64, rng *rand.Rand) complex128 {
	s := math.Sqrt(meanG / 2)
	return complex(s*rng.NormFloat64(), s*rng.NormFloat64())
}

// AWGN draws one sample of unit-power circularly-symmetric complex Gaussian
// noise.
func AWGN(rng *rand.Rand) complex128 {
	s := math.Sqrt(0.5)
	return complex(s*rng.NormFloat64(), s*rng.NormFloat64())
}

// ReceivedSignal computes y = g·x + z for a scalar use of the paper's
// channel model (one node transmitting).
func ReceivedSignal(g complex128, x complex128, rng *rand.Rand) complex128 {
	return g*x + AWGN(rng)
}

// ReceivedMAC computes the relay observation yr = gar·xa + gbr·xb + z when
// both terminals transmit (the MABC/HBC MAC phases).
func ReceivedMAC(gar, gbr, xa, xb complex128, rng *rand.Rand) complex128 {
	return gar*xa + gbr*xb + AWGN(rng)
}

// ErasureFromRate maps a per-use link rate (bits) to an equivalent erasure
// probability for the bit-true simulator: a link carrying rate R bits per
// use is modeled as a bit pipe that delivers each coded bit with probability
// min(R, 1) (erasure 1 - min(R,1)). The mapping preserves link ordering and
// the capacity of the erasure channel equals the clipped rate, which is what
// the waterfall experiments need.
func ErasureFromRate(rate float64) float64 {
	return 1 - xmath.Clamp(rate, 0, 1)
}
