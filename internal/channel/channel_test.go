package channel

import (
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/xmath"
)

func TestGainsFromDB(t *testing.T) {
	g := GainsFromDB(0, 5, -7)
	if !xmath.ApproxEqual(g.AB, 1, 1e-12) {
		t.Errorf("AB = %v, want 1", g.AB)
	}
	if !xmath.ApproxEqual(g.AR, math.Pow(10, 0.5), 1e-12) {
		t.Errorf("AR = %v, want 10^0.5", g.AR)
	}
	if !xmath.ApproxEqual(g.BR, math.Pow(10, -0.7), 1e-12) {
		t.Errorf("BR = %v, want 10^-0.7", g.BR)
	}
}

func TestGainsValidate(t *testing.T) {
	tests := []struct {
		name string
		g    Gains
		ok   bool
	}{
		{name: "good", g: Gains{AB: 1, AR: 2, BR: 3}, ok: true},
		{name: "zero", g: Gains{AB: 0, AR: 1, BR: 1}, ok: false},
		{name: "negative", g: Gains{AB: 1, AR: -1, BR: 1}, ok: false},
		{name: "inf", g: Gains{AB: 1, AR: math.Inf(1), BR: 1}, ok: false},
		{name: "nan", g: Gains{AB: 1, AR: 1, BR: math.NaN()}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.g.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestGainsSwap(t *testing.T) {
	g := Gains{AB: 1, AR: 2, BR: 3}
	s := g.Swap()
	if s.AB != 1 || s.AR != 3 || s.BR != 2 {
		t.Errorf("Swap = %+v", s)
	}
	if s.Swap() != g {
		t.Error("double swap is not identity")
	}
}

func TestLineGeometry(t *testing.T) {
	t.Run("midpoint symmetric", func(t *testing.T) {
		g, err := LineGeometry{RelayPos: 0.5, Exponent: 3}.Gains()
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(g.AR, g.BR, 1e-12) {
			t.Errorf("midpoint gains not symmetric: %v vs %v", g.AR, g.BR)
		}
		if !xmath.ApproxEqual(g.AR, 8, 1e-9) {
			t.Errorf("AR = %v, want 0.5^-3 = 8", g.AR)
		}
		if !xmath.ApproxEqual(g.AB, 1, 1e-12) {
			t.Errorf("AB = %v, want 1 (0 dB)", g.AB)
		}
	})
	t.Run("near a", func(t *testing.T) {
		g, err := LineGeometry{RelayPos: 0.2, Exponent: 3}.Gains()
		if err != nil {
			t.Fatal(err)
		}
		if g.AR <= g.BR {
			t.Errorf("relay near a must hear a better: AR=%v BR=%v", g.AR, g.BR)
		}
		// The paper's standing assumption Gab <= Gar, Gbr holds for any
		// interior relay position.
		if g.AB > g.AR || g.AB > g.BR {
			t.Errorf("direct gain should be weakest: %+v", g)
		}
	})
	t.Run("swap symmetry", func(t *testing.T) {
		g1, err := LineGeometry{RelayPos: 0.3, Exponent: 3}.Gains()
		if err != nil {
			t.Fatal(err)
		}
		g2, err := LineGeometry{RelayPos: 0.7, Exponent: 3}.Gains()
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(g1.AR, g2.BR, 1e-9) || !xmath.ApproxEqual(g1.BR, g2.AR, 1e-9) {
			t.Error("mirrored positions should swap gains")
		}
	})
	t.Run("defaults", func(t *testing.T) {
		g, err := LineGeometry{RelayPos: 0.5}.Gains() // gamma defaults to 3
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(g.AR, 8, 1e-9) {
			t.Errorf("default exponent not 3: AR = %v", g.AR)
		}
	})
	t.Run("reference gain", func(t *testing.T) {
		g, err := LineGeometry{RelayPos: 0.5, Exponent: 2, RefGainAB: 4}.Gains()
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(g.AB, 4, 1e-12) || !xmath.ApproxEqual(g.AR, 16, 1e-9) {
			t.Errorf("RefGain scaling wrong: %+v", g)
		}
	})
	t.Run("invalid positions", func(t *testing.T) {
		for _, pos := range []float64{0, 1, -0.5, 1.5} {
			if _, err := (LineGeometry{RelayPos: pos}).Gains(); err == nil {
				t.Errorf("position %v should error", pos)
			}
		}
	})
}

func TestLinkRate(t *testing.T) {
	if got := LinkRate(1, 1); !xmath.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("LinkRate(1,1) = %v, want 1", got)
	}
	if got := LinkRate(3, 1); !xmath.ApproxEqual(got, 2, 1e-12) {
		t.Errorf("LinkRate(3,1) = %v, want 2", got)
	}
}

func TestMACProperties(t *testing.T) {
	p := 10.0
	g := Gains{AB: 0.2, AR: 1, BR: 3.16}
	m := MAC(p, g)
	// Sum constraint is at most the sum of individual rates and at least
	// their max.
	if m.Sum > m.A+m.B+1e-12 {
		t.Errorf("MAC sum %v exceeds A+B = %v", m.Sum, m.A+m.B)
	}
	if m.Sum < math.Max(m.A, m.B)-1e-12 {
		t.Errorf("MAC sum %v below max individual %v", m.Sum, math.Max(m.A, m.B))
	}
	if !xmath.ApproxEqual(m.A, xmath.C(p*g.AR), 1e-12) {
		t.Errorf("A rate mismatch")
	}
}

func TestSIMORate(t *testing.T) {
	// SIMO combining beats each individual link but not their rate sum.
	p, g1, g2 := 2.0, 1.0, 0.5
	s := SIMORate(p, g1, g2)
	if s < xmath.C(p*g1) || s < xmath.C(p*g2) {
		t.Error("SIMO below single link")
	}
	if s > xmath.C(p*g1)+xmath.C(p*g2) {
		t.Error("SIMO above rate sum")
	}
}

func TestFading(t *testing.T) {
	mean := Gains{AB: 1, AR: 2, BR: 0.5}
	f, err := NewFading(mean, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Mean() != mean {
		t.Error("Mean() mismatch")
	}
	const n = 200000
	var sumAB, sumAR, sumBR float64
	for i := 0; i < n; i++ {
		g := f.Draw()
		if g.AB < 0 || g.AR < 0 || g.BR < 0 {
			t.Fatal("negative instantaneous gain")
		}
		sumAB += g.AB
		sumAR += g.AR
		sumBR += g.BR
	}
	// Rayleigh power has mean 1, so empirical means approach configured.
	if math.Abs(sumAB/n-1) > 0.02 {
		t.Errorf("mean AB = %v, want 1", sumAB/n)
	}
	if math.Abs(sumAR/n-2) > 0.04 {
		t.Errorf("mean AR = %v, want 2", sumAR/n)
	}
	if math.Abs(sumBR/n-0.5) > 0.01 {
		t.Errorf("mean BR = %v, want 0.5", sumBR/n)
	}
}

func TestNewFadingErrors(t *testing.T) {
	if _, err := NewFading(Gains{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid gains should error")
	}
	if _, err := NewFading(Gains{AB: 1, AR: 1, BR: 1}, nil); err == nil {
		t.Error("nil RNG should error")
	}
}

func TestComplexGainMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	meanG := 2.5
	var power float64
	for i := 0; i < n; i++ {
		h := ComplexGain(meanG, rng)
		power += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := power / n; math.Abs(got-meanG) > 0.05 {
		t.Errorf("mean |h|^2 = %v, want %v", got, meanG)
	}
}

func TestAWGNMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 200000
	var power, re float64
	for i := 0; i < n; i++ {
		z := AWGN(rng)
		power += real(z)*real(z) + imag(z)*imag(z)
		re += real(z)
	}
	if got := power / n; math.Abs(got-1) > 0.02 {
		t.Errorf("noise power = %v, want 1", got)
	}
	if got := re / n; math.Abs(got) > 0.01 {
		t.Errorf("noise mean = %v, want 0", got)
	}
}

func TestReceivedSignalSNR(t *testing.T) {
	// Empirical SNR through ReceivedSignal should match |g|^2·P.
	rng := rand.New(rand.NewSource(9))
	g := complex(1.2, -0.9) // |g|^2 = 2.25
	const n = 100000
	var sigPow, noisePow float64
	for i := 0; i < n; i++ {
		x := ComplexGain(4, rng) // unit-mean-4 power symbol
		y := ReceivedSignal(g, x, rng)
		sig := g * x
		noise := y - sig
		sigPow += real(sig)*real(sig) + imag(sig)*imag(sig)
		noisePow += real(noise)*real(noise) + imag(noise)*imag(noise)
	}
	snr := sigPow / noisePow
	want := 2.25 * 4
	if math.Abs(snr-want)/want > 0.05 {
		t.Errorf("empirical SNR = %v, want %v", snr, want)
	}
}

func TestReceivedMACSuperposition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// With xb = 0 the MAC reduces to the point-to-point channel law.
	gar, gbr := complex(1, 0), complex(0, 1)
	xa := complex(2, 1)
	y := ReceivedMAC(gar, gbr, xa, 0, rng)
	// The deterministic part must be gar·xa; noise has unit power, so the
	// deviation magnitude is typically ~1.
	dev := y - gar*xa
	if math.Hypot(real(dev), imag(dev)) > 6 {
		t.Errorf("deviation %v implausibly large", dev)
	}
}

func TestErasureFromRate(t *testing.T) {
	tests := []struct {
		name string
		rate float64
		want float64
	}{
		{name: "dead link", rate: 0, want: 1},
		{name: "half", rate: 0.5, want: 0.5},
		{name: "full", rate: 1, want: 0},
		{name: "above one clips", rate: 3, want: 0},
		{name: "negative clips", rate: -1, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ErasureFromRate(tt.rate); !xmath.ApproxEqual(got, tt.want, 1e-12) {
				t.Errorf("ErasureFromRate(%v) = %v, want %v", tt.rate, got, tt.want)
			}
		})
	}
}
