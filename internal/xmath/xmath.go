// Package xmath provides the small numerical toolkit shared by every other
// package in this module: decibel conversions, the Shannon rate function
// C(x) = log2(1+x), floating-point comparison helpers, compensated summation,
// grid generation, and a pair of scalar optimizers (golden-section search and
// bisection) used when closed forms are unavailable.
//
// Everything in this package is pure and allocation-light; none of it retains
// state between calls.
package xmath

import (
	"errors"
	"fmt"
	"math"
)

// Ln2 is the natural logarithm of 2, used to convert nats to bits.
const Ln2 = math.Ln2

// ErrBadInterval is returned by the scalar optimizers when the supplied
// interval is empty or inverted.
var ErrBadInterval = errors.New("xmath: interval is empty or inverted")

// DB converts a linear power ratio to decibels. DB(0) is -Inf; negative
// inputs yield NaN, mirroring math.Log10.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// Log2 returns the base-2 logarithm of x.
func Log2(x float64) float64 {
	return math.Log2(x)
}

// C is the AWGN rate function C(x) = log2(1 + x) in bits per channel use,
// defined for x >= 0 (Section IV of the paper). For negative x it returns 0
// rather than NaN: the callers always pass received SNRs, and a tiny negative
// value can only arise from float cancellation.
func C(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(1 + x)
}

// CInv inverts C: CInv(r) returns the SNR x such that C(x) = r.
func CInv(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return math.Exp2(r) - 1
}

// EntropyBinary returns the binary entropy function h(p) in bits.
// h(0) = h(1) = 0.
func EntropyBinary(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// ApproxEqual reports whether a and b are equal within both an absolute
// tolerance and a relative tolerance scaled by the larger magnitude.
// NaNs are never equal; equal infinities are equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities, or one finite and one infinite
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced samples over [lo, hi] inclusive.
// n must be at least 2 except that n == 1 yields just {lo}.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// LogspaceDB returns n power values evenly spaced in decibels over
// [loDB, hiDB], converted to linear scale.
func LogspaceDB(loDB, hiDB float64, n int) []float64 {
	dbs := Linspace(loDB, hiDB, n)
	out := make([]float64, len(dbs))
	for i, d := range dbs {
		out[i] = FromDB(d)
	}
	return out
}

// KahanSum accumulates xs with compensated (Kahan) summation, reducing the
// rounding error of long Monte Carlo averages.
func KahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Accumulator is a running compensated sum with count, suitable for streaming
// means. The zero value is ready to use.
type Accumulator struct {
	sum  float64
	comp float64
	n    int
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	y := x - a.comp
	t := a.sum + y
	a.comp = (t - a.sum) - y
	a.sum = t
	a.n++
}

// Sum returns the compensated total.
func (a *Accumulator) Sum() float64 { return a.sum }

// N returns the number of samples folded in.
func (a *Accumulator) N() int { return a.n }

// Mean returns Sum()/N(), or 0 when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// ArgmaxFunc evaluates f on each x in xs and returns the index attaining the
// maximum, breaking ties toward the smallest index. It returns -1 for an
// empty slice.
func ArgmaxFunc(xs []float64, f func(float64) float64) int {
	best, bestIdx := math.Inf(-1), -1
	for i, x := range xs {
		if v := f(x); v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// invPhi is the reciprocal golden ratio used by GoldenMax.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMax maximizes a unimodal f over [lo, hi] by golden-section search,
// returning the maximizing x and f(x). tol is the termination width on x;
// non-positive tol defaults to 1e-9 times the interval width (floored at
// 1e-12 absolute).
func GoldenMax(f func(float64) float64, lo, hi, tol float64) (x, fx float64, err error) {
	if hi < lo {
		return 0, 0, fmt.Errorf("%w: [%g, %g]", ErrBadInterval, lo, hi)
	}
	if tol <= 0 {
		tol = math.Max(1e-9*(hi-lo), 1e-12)
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc >= fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x), nil
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi) have opposite
// signs, to within tol on x.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if hi < lo {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrBadInterval, lo, hi)
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("xmath: no sign change on [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// MaxFloat returns the maximum of xs, or -Inf for an empty slice.
func MaxFloat(xs ...float64) float64 {
	out := math.Inf(-1)
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

// MinFloat returns the minimum of xs, or +Inf for an empty slice.
func MinFloat(xs ...float64) float64 {
	out := math.Inf(1)
	for _, x := range xs {
		if x < out {
			out = x
		}
	}
	return out
}

// Sum returns the plain sum of xs (use KahanSum for long, cancellation-prone
// streams).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
