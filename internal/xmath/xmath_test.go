package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBRoundTrip(t *testing.T) {
	tests := []struct {
		name   string
		linear float64
		wantDB float64
	}{
		{name: "unity", linear: 1, wantDB: 0},
		{name: "ten", linear: 10, wantDB: 10},
		{name: "hundred", linear: 100, wantDB: 20},
		{name: "half", linear: 0.5, wantDB: -3.0102999566398120},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DB(tt.linear); !ApproxEqual(got, tt.wantDB, 1e-12) {
				t.Errorf("DB(%v) = %v, want %v", tt.linear, got, tt.wantDB)
			}
			if got := FromDB(tt.wantDB); !ApproxEqual(got, tt.linear, 1e-12) {
				t.Errorf("FromDB(%v) = %v, want %v", tt.wantDB, got, tt.linear)
			}
		})
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	prop := func(raw float64) bool {
		db := math.Mod(math.Abs(raw), 80) - 40 // keep in a sane range
		return ApproxEqual(DB(FromDB(db)), db, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestC(t *testing.T) {
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{name: "zero", x: 0, want: 0},
		{name: "one", x: 1, want: 1},
		{name: "three", x: 3, want: 2},
		{name: "negative clamps", x: -0.5, want: 0},
		{name: "snr 15dB", x: FromDB(15), want: math.Log2(1 + 31.622776601683793)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := C(tt.x); !ApproxEqual(got, tt.want, 1e-12) {
				t.Errorf("C(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestCInvProperty(t *testing.T) {
	prop := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1e6)
		return ApproxEqual(CInv(C(x)), x, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCMonotone(t *testing.T) {
	prev := -1.0
	for _, x := range Linspace(0, 100, 1000) {
		cur := C(x)
		if cur < prev {
			t.Fatalf("C not monotone at x=%v: %v < %v", x, cur, prev)
		}
		prev = cur
	}
}

func TestEntropyBinary(t *testing.T) {
	tests := []struct {
		name string
		p    float64
		want float64
	}{
		{name: "zero", p: 0, want: 0},
		{name: "one", p: 1, want: 0},
		{name: "half", p: 0.5, want: 1},
		{name: "tenth", p: 0.1, want: 0.4689955935892812},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EntropyBinary(tt.p); !ApproxEqual(got, tt.want, 1e-12) {
				t.Errorf("EntropyBinary(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestEntropyBinarySymmetry(t *testing.T) {
	prop := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		return ApproxEqual(EntropyBinary(p), EntropyBinary(1-p), 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{name: "exact", a: 1, b: 1, tol: 0, want: true},
		{name: "close abs", a: 1, b: 1 + 1e-10, tol: 1e-9, want: true},
		{name: "close rel", a: 1e12, b: 1e12 + 1, tol: 1e-9, want: true},
		{name: "far", a: 1, b: 2, tol: 1e-9, want: false},
		{name: "nan left", a: math.NaN(), b: 1, tol: 1, want: false},
		{name: "nan right", a: 1, b: math.NaN(), tol: 1, want: false},
		{name: "inf equal", a: math.Inf(1), b: math.Inf(1), tol: 0, want: true},
		{name: "inf opposite", a: math.Inf(1), b: math.Inf(-1), tol: 1, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ApproxEqual(tt.a, tt.b, tt.tol); got != tt.want {
				t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.tol, got, tt.want)
			}
		})
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		name      string
		x, lo, hi float64
		want      float64
	}{
		{name: "below", x: -1, lo: 0, hi: 1, want: 0},
		{name: "inside", x: 0.5, lo: 0, hi: 1, want: 0.5},
		{name: "above", x: 2, lo: 0, hi: 1, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
				t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestLinspace(t *testing.T) {
	t.Run("endpoints and length", func(t *testing.T) {
		xs := Linspace(-3, 7, 11)
		if len(xs) != 11 {
			t.Fatalf("len = %d, want 11", len(xs))
		}
		if xs[0] != -3 || xs[10] != 7 {
			t.Errorf("endpoints = %v, %v; want -3, 7", xs[0], xs[10])
		}
		for i := 1; i < len(xs); i++ {
			if !ApproxEqual(xs[i]-xs[i-1], 1, 1e-12) {
				t.Errorf("step at %d = %v, want 1", i, xs[i]-xs[i-1])
			}
		}
	})
	t.Run("single point", func(t *testing.T) {
		xs := Linspace(4, 9, 1)
		if len(xs) != 1 || xs[0] != 4 {
			t.Errorf("Linspace(4,9,1) = %v, want [4]", xs)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if xs := Linspace(0, 1, 0); xs != nil {
			t.Errorf("Linspace(0,1,0) = %v, want nil", xs)
		}
	})
}

func TestLogspaceDB(t *testing.T) {
	xs := LogspaceDB(0, 20, 3)
	want := []float64{1, 10, 100}
	if len(xs) != len(want) {
		t.Fatalf("len = %d, want %d", len(xs), len(want))
	}
	for i := range xs {
		if !ApproxEqual(xs[i], want[i], 1e-12) {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestKahanSum(t *testing.T) {
	// A sum that loses precision with naive accumulation: 1 followed by many
	// tiny values.
	xs := make([]float64, 0, 1_000_001)
	xs = append(xs, 1)
	for i := 0; i < 1_000_000; i++ {
		xs = append(xs, 1e-16)
	}
	got := KahanSum(xs)
	want := 1 + 1e-10
	if !ApproxEqual(got, want, 1e-13) {
		t.Errorf("KahanSum = %.18f, want %.18f", got, want)
	}
}

func TestAccumulator(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.N() != 0 {
		t.Fatalf("zero value not empty: mean=%v n=%d", acc.Mean(), acc.N())
	}
	for i := 1; i <= 100; i++ {
		acc.Add(float64(i))
	}
	if acc.N() != 100 {
		t.Errorf("N = %d, want 100", acc.N())
	}
	if !ApproxEqual(acc.Sum(), 5050, 1e-12) {
		t.Errorf("Sum = %v, want 5050", acc.Sum())
	}
	if !ApproxEqual(acc.Mean(), 50.5, 1e-12) {
		t.Errorf("Mean = %v, want 50.5", acc.Mean())
	}
}

func TestGoldenMax(t *testing.T) {
	t.Run("parabola", func(t *testing.T) {
		x, fx, err := GoldenMax(func(x float64) float64 { return -(x - 2) * (x - 2) }, -10, 10, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if !ApproxEqual(x, 2, 1e-7) {
			t.Errorf("argmax = %v, want 2", x)
		}
		if !ApproxEqual(fx, 0, 1e-10) {
			t.Errorf("max = %v, want 0", fx)
		}
	})
	t.Run("boundary max", func(t *testing.T) {
		x, _, err := GoldenMax(func(x float64) float64 { return x }, 0, 5, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if !ApproxEqual(x, 5, 1e-6) {
			t.Errorf("argmax = %v, want 5", x)
		}
	})
	t.Run("inverted interval", func(t *testing.T) {
		if _, _, err := GoldenMax(func(x float64) float64 { return x }, 1, 0, 0); err == nil {
			t.Error("want error for inverted interval")
		}
	})
}

func TestBisect(t *testing.T) {
	t.Run("sqrt2", func(t *testing.T) {
		x, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if !ApproxEqual(x, math.Sqrt2, 1e-10) {
			t.Errorf("root = %v, want sqrt(2)", x)
		}
	})
	t.Run("no sign change", func(t *testing.T) {
		if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 0); err == nil {
			t.Error("want error when no sign change")
		}
	})
	t.Run("root at endpoint", func(t *testing.T) {
		x, err := Bisect(func(x float64) float64 { return x }, 0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if x != 0 {
			t.Errorf("root = %v, want 0", x)
		}
	})
}

func TestArgmaxFunc(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	idx := ArgmaxFunc(xs, func(x float64) float64 { return -(x - 2.2) * (x - 2.2) })
	if idx != 2 {
		t.Errorf("ArgmaxFunc = %d, want 2", idx)
	}
	if got := ArgmaxFunc(nil, func(x float64) float64 { return x }); got != -1 {
		t.Errorf("ArgmaxFunc(nil) = %d, want -1", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	if got := MaxFloat(3, 1, 4, 1, 5); got != 5 {
		t.Errorf("MaxFloat = %v, want 5", got)
	}
	if got := MinFloat(3, 1, 4, 1, 5); got != 1 {
		t.Errorf("MinFloat = %v, want 1", got)
	}
	if got := MaxFloat(); !math.IsInf(got, -1) {
		t.Errorf("MaxFloat() = %v, want -Inf", got)
	}
	if got := MinFloat(); !math.IsInf(got, 1) {
		t.Errorf("MinFloat() = %v, want +Inf", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
}
