// Package protocols implements the paper's primary contribution: performance
// bounds for the half-duplex bidirectional relay protocols DT, MABC, TDBC and
// HBC (plus the naive four-phase baseline of Fig 1-ii). Each of Theorems 2-6
// is compiled into a set of linear constraints over (Ra, Rb, Δ1..ΔL); a
// single LP core then answers every question the evaluation section asks:
// optimal sum rate, weighted rate maxima, full achievable-rate regions, and
// rate-pair feasibility, for both the Gaussian case of Section IV and
// arbitrary discrete memoryless networks via externally supplied mutual
// informations.
package protocols

import (
	"errors"
	"fmt"
	"math"

	"bicoop/internal/channel"
)

// Protocol identifies one of the paper's transmission protocols.
type Protocol int

const (
	// DT is direct transmission: a->b then b->a, no relay (Fig 1-i).
	DT Protocol = iota + 1
	// Naive4 is the four-phase relay chain without network coding or side
	// information (Fig 1-ii): a->r, r->b, b->r, r->a.
	Naive4
	// MABC is the two-phase multiple-access broadcast protocol (Fig 1-iv):
	// a and b transmit together, then r broadcasts wa xor wb (Theorem 2).
	MABC
	// TDBC is the three-phase time-division broadcast protocol (Fig 1-iii):
	// a->{r,b}, b->{r,a}, r broadcasts (Theorems 3-4).
	TDBC
	// HBC is the four-phase hybrid broadcast protocol: a->{r,b}, b->{r,a},
	// a+b->r, r broadcasts (Theorems 5-6).
	HBC
)

// Protocols lists all protocols in presentation order.
func Protocols() []Protocol { return []Protocol{DT, Naive4, MABC, TDBC, HBC} }

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case DT:
		return "DT"
	case Naive4:
		return "Naive4"
	case MABC:
		return "MABC"
	case TDBC:
		return "TDBC"
	case HBC:
		return "HBC"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Phases returns the number of phases of the protocol.
func (p Protocol) Phases() int {
	switch p {
	case DT, MABC:
		return 2
	case TDBC:
		return 3
	case Naive4, HBC:
		return 4
	default:
		return 0
	}
}

// Bound selects which bound of a theorem to evaluate.
type Bound int

const (
	// BoundInner is the achievable (inner) region: Theorems 2, 3, 5.
	BoundInner Bound = iota + 1
	// BoundOuter is the converse (outer) region: Theorems 2, 4, 6. For DT,
	// Naive4 and MABC the inner and outer bounds coincide (the MABC bounds
	// are tight per Theorem 2).
	BoundOuter
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	switch b {
	case BoundInner:
		return "inner"
	case BoundOuter:
		return "outer"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// Errors returned by this package.
var (
	ErrUnknownProtocol = errors.New("protocols: unknown protocol")
	ErrUnknownBound    = errors.New("protocols: unknown bound")
	ErrBadScenario     = errors.New("protocols: invalid scenario")
	ErrBadDurations    = errors.New("protocols: invalid phase durations")
	ErrNotEvaluable    = errors.New("protocols: bound has no exact Gaussian evaluation")
)

// Scenario is a Gaussian evaluation point per Section IV: per-node per-phase
// transmit power P (linear, unit noise) and effective link gains.
type Scenario struct {
	// P is the transmit power (linear scale; the paper quotes dB).
	P float64
	// G holds the effective link power gains.
	G channel.Gains
}

// NewScenarioDB builds a scenario from dB quantities.
func NewScenarioDB(pDB, gabDB, garDB, gbrDB float64) Scenario {
	return Scenario{
		P: fromDB(pDB),
		G: channel.GainsFromDB(gabDB, garDB, gbrDB),
	}
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	if !(s.P > 0) || math.IsInf(s.P, 0) {
		return fmt.Errorf("%w: power %g", ErrBadScenario, s.P)
	}
	if err := s.G.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadScenario, err)
	}
	return nil
}

// Swap exchanges the roles of terminals a and b.
func (s Scenario) Swap() Scenario {
	return Scenario{P: s.P, G: s.G.Swap()}
}

// RatePair is an operating point (Ra, Rb) in bits per channel use.
type RatePair struct {
	Ra, Rb float64
}

// Sum returns Ra + Rb.
func (r RatePair) Sum() float64 { return r.Ra + r.Rb }

// LinkInfos carries every mutual-information term the five protocols'
// theorems reference, in bits per channel use. The Gaussian path fills it in
// closed form from a Scenario; the DMC path fills it from transition matrices
// and input distributions (see DMCNetwork). All terms assume the transmitter
// set noted; silence of the remaining nodes is implicit (half-duplex).
type LinkInfos struct {
	// AtoR is I(Xa; Yr) with only a transmitting.
	AtoR float64
	// BtoR is I(Xb; Yr) with only b transmitting.
	BtoR float64
	// AtoB is I(Xa; Yb) with only a transmitting.
	AtoB float64
	// BtoA is I(Xb; Ya) with only b transmitting (equals AtoB under
	// reciprocity in the Gaussian model, but kept distinct for DMCs).
	BtoA float64
	// RtoA is I(Xr; Ya) with only r transmitting.
	RtoA float64
	// RtoB is I(Xr; Yb) with only r transmitting.
	RtoB float64
	// MACAGivenB is I(Xa; Yr | Xb) in a MAC phase (a and b transmitting).
	MACAGivenB float64
	// MACBGivenA is I(Xb; Yr | Xa) in a MAC phase.
	MACBGivenA float64
	// MACSum is I(Xa, Xb; Yr) in a MAC phase.
	MACSum float64
	// AtoRB is the cut-set SIMO term I(Xa; Yr, Yb) with only a transmitting
	// (Theorems 4 and 6 outer bounds).
	AtoRB float64
	// BtoRA is I(Xb; Yr, Ya) with only b transmitting.
	BtoRA float64
}

// LinkInfosFromScenario evaluates every term in closed form for the Gaussian
// channel with independent complex Gaussian codebooks of power P (the
// paper's Section IV evaluation; |Q| = 1 suffices there since Gaussian inputs
// maximize each term individually).
func LinkInfosFromScenario(s Scenario) (LinkInfos, error) {
	if err := s.Validate(); err != nil {
		return LinkInfos{}, err
	}
	p, g := s.P, s.G
	// The point-to-point terms alias under reciprocity (a-r, b-r and a-b
	// each appear three or two times), so each distinct rate is computed
	// once — this sits on the Monte Carlo per-block path.
	rAR := channel.LinkRate(p, g.AR)
	rBR := channel.LinkRate(p, g.BR)
	rAB := channel.LinkRate(p, g.AB)
	return LinkInfos{
		AtoR:       rAR,
		BtoR:       rBR,
		AtoB:       rAB,
		BtoA:       rAB,
		RtoA:       rAR,
		RtoB:       rBR,
		MACAGivenB: rAR,
		MACBGivenA: rBR,
		MACSum:     channel.MAC(p, g).Sum,
		AtoRB:      channel.SIMORate(p, g.AR, g.AB),
		BtoRA:      channel.SIMORate(p, g.BR, g.AB),
	}, nil
}

// Validate checks that all terms are non-negative and internally consistent
// (conditional MAC terms cannot exceed the MAC sum bound... individually they
// can, but the sum term must be at least the max of the individual terms).
func (li LinkInfos) Validate() error {
	// Checked field by field (not via a map) because validation sits on the
	// Monte Carlo per-block path and must not allocate.
	if li.AtoR >= 0 && li.BtoR >= 0 && li.AtoB >= 0 && li.BtoA >= 0 &&
		li.RtoA >= 0 && li.RtoB >= 0 &&
		li.MACAGivenB >= 0 && li.MACBGivenA >= 0 && li.MACSum >= 0 &&
		li.AtoRB >= 0 && li.BtoRA >= 0 {
		return nil
	}
	for _, t := range []struct {
		name string
		v    float64
	}{
		{"AtoR", li.AtoR}, {"BtoR", li.BtoR}, {"AtoB", li.AtoB}, {"BtoA", li.BtoA},
		{"RtoA", li.RtoA}, {"RtoB", li.RtoB},
		{"MACAGivenB", li.MACAGivenB}, {"MACBGivenA", li.MACBGivenA}, {"MACSum", li.MACSum},
		{"AtoRB", li.AtoRB}, {"BtoRA", li.BtoRA},
	} {
		if !(t.v >= 0) {
			return fmt.Errorf("protocols: non-finite or negative information term %s = %g", t.name, t.v)
		}
	}
	return fmt.Errorf("protocols: invalid information terms %+v", li)
}
