package protocols

// This file implements the allocation-free evaluation hot path. Every
// quantity the reproduction reports reduces to a tiny LP per scenario, and
// the Monte Carlo layer re-solves that LP per protocol per fading block, so
// per-solve cost and allocation pressure are the throughput levers.
//
// Three layers cooperate:
//
//  1. Constraint templates. The structure of each theorem's constraint set —
//     which rate coefficients appear, and which mutual-information term
//     multiplies each phase duration — is scenario-independent. Templates
//     are derived once per (protocol, bound) by compiling a sentinel
//     LinkInfos whose fields carry distinct marker values and mapping each
//     PhaseCap entry back to its term, so compile.go remains the single
//     transcription of the paper's theorems and the templates can never
//     drift from it. Per call, only the term values are rewritten.
//
//  2. Closed-form fast paths. For bounds with at most three phases (DT,
//     MABC, TDBC) and 0/1 rate coefficients, the weighted-rate LP and the
//     rate-pair feasibility LP are solved exactly by candidate-vertex
//     enumeration over the one- or two-dimensional duration simplex instead
//     of the general two-phase simplex: the optimal value is a concave
//     piecewise-linear function of the free durations, so its maximum is
//     attained at an intersection of the (few) kink and boundary lines.
//
//  3. A reusable simplex.Workspace plus preallocated LP row buffers for the
//     protocols the fast path does not cover (Naive4, HBC), so even the
//     general-solver fallback performs no steady-state allocation.
//
// An Evaluator is cheap to create but not goroutine-safe: give each worker
// its own (as internal/sim does), or use the package-level entry points,
// which draw evaluators from a pool.

import (
	"fmt"
	"math"
	"sync"

	"bicoop/internal/channel"
	"bicoop/internal/region"
	"bicoop/internal/simplex"
)

// term indexes one mutual-information field of LinkInfos (or the constant
// zero) inside a constraint template.
type term uint8

const (
	termZero term = iota
	termAtoR
	termBtoR
	termAtoB
	termBtoA
	termRtoA
	termRtoB
	termMACAGivenB
	termMACBGivenA
	termMACSum
	termAtoRB
	termBtoRA
	numTerms
)

// termValues fills dst so that dst[t] is the value of term t.
func (li LinkInfos) termValues(dst *[numTerms]float64) {
	dst[termZero] = 0
	dst[termAtoR] = li.AtoR
	dst[termBtoR] = li.BtoR
	dst[termAtoB] = li.AtoB
	dst[termBtoA] = li.BtoA
	dst[termRtoA] = li.RtoA
	dst[termRtoB] = li.RtoB
	dst[termMACAGivenB] = li.MACAGivenB
	dst[termMACBGivenA] = li.MACBGivenA
	dst[termMACSum] = li.MACSum
	dst[termAtoRB] = li.AtoRB
	dst[termBtoRA] = li.BtoRA
}

// MaxPhases bounds the phase count of any compiled bound (HBC/Naive4 use
// all four). Exported for fixed-size consumers: the result cache's value
// record stores per-phase durations in a [MaxPhases]float64.
const MaxPhases = 4

const (
	// maxPhases is the package-internal alias of MaxPhases.
	maxPhases = MaxPhases
	// maxTplCons bounds the constraint count of any compiled bound.
	maxTplCons = 8
	// maxKinkLines bounds the candidate kink/boundary line set of the fast
	// path (see fastWeighted); sized with ample slack over the worst real
	// template (TDBC outer: 10 kinks + 3 boundaries).
	maxKinkLines = 64
)

// conTemplate is one constraint with its phase capacities expressed as term
// references instead of numbers.
type conTemplate struct {
	coefRa, coefRb float64
	phase          [maxPhases]term
}

// specTemplate is the scenario-independent structure of one compiled bound.
type specTemplate struct {
	// ok reports that template derivation succeeded; when false the
	// Evaluator falls back to Compile per call.
	ok bool
	// fast reports that the closed-form candidate enumeration applies:
	// two or three phases, 0/1 rate coefficients, and at least one
	// constraint bounding each individual rate.
	fast   bool
	phases int
	cons   []conTemplate
	// aIdx/bIdx/cIdx partition cons into Ra-only, Rb-only and sum-rate
	// constraints for the fast path.
	aIdx, bIdx, cIdx []int
	// needs marks the terms the constraints reference, so the Gaussian
	// scenario path can evaluate only those mutual informations (see
	// linkInfosMasked).
	needs [numTerms]bool
}

var (
	templateOnce sync.Once
	// templateTab is indexed [protocol][bound] (both enums start at 1).
	templateTab [HBC + 1][BoundOuter + 1]specTemplate
)

// templateFor returns the cached template, or nil for unknown enums.
func templateFor(p Protocol, b Bound) *specTemplate {
	templateOnce.Do(buildTemplates)
	if p < DT || p > HBC || b < BoundInner || b > BoundOuter {
		return nil
	}
	return &templateTab[p][b]
}

// buildTemplates derives every template by compiling sentinel link
// informations: each field carries a distinct marker value, so each PhaseCap
// entry of the compiled constraints identifies its term exactly.
func buildTemplates() {
	sentinel := LinkInfos{
		AtoR: 1, BtoR: 2, AtoB: 3, BtoA: 4, RtoA: 5, RtoB: 6,
		MACAGivenB: 7, MACBGivenA: 8, MACSum: 9, AtoRB: 10, BtoRA: 11,
	}
	var marks [numTerms]float64
	sentinel.termValues(&marks)
	for _, p := range Protocols() {
		for _, b := range []Bound{BoundInner, BoundOuter} {
			templateTab[p][b] = deriveTemplate(p, b, sentinel, &marks)
		}
	}
}

func deriveTemplate(p Protocol, b Bound, sentinel LinkInfos, marks *[numTerms]float64) specTemplate {
	spec, err := Compile(p, b, sentinel)
	if err != nil || spec.Phases < 1 || spec.Phases > maxPhases || len(spec.Cons) > maxTplCons {
		return specTemplate{}
	}
	tpl := specTemplate{phases: spec.Phases, cons: make([]conTemplate, 0, len(spec.Cons))}
	coefOK := true
	for ci, con := range spec.Cons {
		ct := conTemplate{coefRa: con.CoefRa, coefRb: con.CoefRb}
		for l := 0; l < spec.Phases; l++ {
			v := 0.0
			if l < len(con.PhaseCap) {
				v = con.PhaseCap[l]
			}
			t, found := termOfMark(v, marks)
			if !found {
				return specTemplate{} // not a plain term reference; use Compile
			}
			ct.phase[l] = t
			tpl.needs[t] = true
		}
		tpl.cons = append(tpl.cons, ct)
		switch {
		case con.CoefRa == 1 && con.CoefRb == 0:
			tpl.aIdx = append(tpl.aIdx, ci)
		case con.CoefRa == 0 && con.CoefRb == 1:
			tpl.bIdx = append(tpl.bIdx, ci)
		case con.CoefRa == 1 && con.CoefRb == 1:
			tpl.cIdx = append(tpl.cIdx, ci)
		default:
			coefOK = false
		}
	}
	tpl.ok = true
	tpl.fast = coefOK &&
		(spec.Phases == 2 || spec.Phases == 3) &&
		len(tpl.aIdx) >= 1 && len(tpl.bIdx) >= 1
	return tpl
}

func termOfMark(v float64, marks *[numTerms]float64) (term, bool) {
	for t := termZero; t < numTerms; t++ {
		if marks[t] == v {
			return t, true
		}
	}
	return 0, false
}

// Evaluator evaluates protocol bounds without steady-state heap allocation.
// It caches the scenario-independent constraint templates, owns a reusable
// simplex workspace and LP row buffers, and applies closed-form fast paths
// where they exist. An Evaluator is not safe for concurrent use; give each
// goroutine its own.
type Evaluator struct {
	ws    simplex.Workspace
	terms [numTerms]float64
	caps  [maxTplCons][maxPhases]float64
	durs  [maxPhases]float64

	// LP build buffers for the simplex fallback.
	c       []float64
	aubFlat []float64
	aub     [][]float64
	bub     []float64
	aeqFlat []float64
	aeq     [][]float64
	beq     []float64

	// Warm-start state for the simplex fallback (Naive4/HBC weighted-rate
	// LPs): the optimal basis of the previous solve per (protocol, bound),
	// used as a SolveWarmIn hint when warm starting is enabled. Off by
	// default so results are bit-reproducible regardless of call history;
	// grid sweeps enable it and reset at deterministic chunk boundaries.
	warmOn bool
	warm   [HBC + 1][BoundOuter + 1]warmBasis
}

// warmBasis is one saved LP basis; n == 0 means no hint.
type warmBasis struct {
	basis [maxTplCons + 1]int
	n     int
}

// SetWarmStart toggles LP warm starting across consecutive solves of the
// same (protocol, bound). Warm-started solves reach the same optimum as cold
// ones (objectives agree to ~1e-12; the pivot path, and hence the last bits
// of rounding, may differ), typically in zero phase-2 pivots on adjacent
// sweep grid points. Enabling it makes results depend on solve order, so
// deterministic pipelines must reset at fixed boundaries (ResetWarmStart).
func (e *Evaluator) SetWarmStart(on bool) {
	e.warmOn = on
	if !on {
		e.ResetWarmStart()
	}
}

// ResetWarmStart drops every saved warm-start basis. Chunked sweeps call it
// at chunk boundaries so a chunk's results never depend on which worker
// evaluated the previous chunk.
func (e *Evaluator) ResetWarmStart() {
	for p := range e.warm {
		for b := range e.warm[p] {
			e.warm[p][b].n = 0
		}
	}
}

// warmFor returns the warm-start slot for (p, b) when warm starting is
// enabled and the enums are in range, else nil.
func (e *Evaluator) warmFor(p Protocol, b Bound) *warmBasis {
	if !e.warmOn || p < DT || p > HBC || b < BoundInner || b > BoundOuter {
		return nil
	}
	return &e.warm[p][b]
}

// NewEvaluator returns a ready-to-use evaluator.
func NewEvaluator() *Evaluator { return &Evaluator{} }

// evalPool backs the package-level convenience entry points.
var evalPool = sync.Pool{New: func() any { return NewEvaluator() }}

// WeightedRate maximizes muA·Ra + muB·Rb over the bound for a Gaussian
// scenario, like Spec.MaxWeightedRate but allocation-free. The returned
// Optimum.Durations aliases evaluator memory and is valid until the next
// call on this evaluator; copy it out if it must survive longer.
//
// When the bound has a cached template, only the mutual-information terms
// its constraints reference are evaluated — for the two- and three-phase
// bounds that halves the transcendental cost per scenario, the dominant
// term of batch sweeps.
func (e *Evaluator) WeightedRate(p Protocol, b Bound, s Scenario, muA, muB float64) (Optimum, error) {
	li, err := e.linkInfosFor(p, b, s)
	if err != nil {
		return Optimum{}, err
	}
	return e.WeightedRateLinks(p, b, li, muA, muB)
}

// linkInfosFor evaluates the scenario's link informations, masked to the
// bound's template when one exists.
func (e *Evaluator) linkInfosFor(p Protocol, b Bound, s Scenario) (LinkInfos, error) {
	if tpl := templateFor(p, b); tpl != nil && tpl.ok {
		return linkInfosMasked(s, &tpl.needs)
	}
	return LinkInfosFromScenario(s)
}

// linkInfosMasked evaluates only the terms marked in need. Exact aliases
// under reciprocity (a-r, b-r, a-b rates each back several terms) share one
// computation; unused terms stay zero, which the templates never read and
// LinkInfos.Validate accepts.
func linkInfosMasked(s Scenario, need *[numTerms]bool) (LinkInfos, error) {
	if err := s.Validate(); err != nil {
		return LinkInfos{}, err
	}
	p, g := s.P, s.G
	var li LinkInfos
	if need[termAtoR] || need[termRtoA] || need[termMACAGivenB] {
		r := channel.LinkRate(p, g.AR)
		li.AtoR, li.RtoA, li.MACAGivenB = r, r, r
	}
	if need[termBtoR] || need[termRtoB] || need[termMACBGivenA] {
		r := channel.LinkRate(p, g.BR)
		li.BtoR, li.RtoB, li.MACBGivenA = r, r, r
	}
	if need[termAtoB] || need[termBtoA] {
		r := channel.LinkRate(p, g.AB)
		li.AtoB, li.BtoA = r, r
	}
	if need[termMACSum] {
		li.MACSum = channel.MAC(p, g).Sum
	}
	if need[termAtoRB] {
		li.AtoRB = channel.SIMORate(p, g.AR, g.AB)
	}
	if need[termBtoRA] {
		li.BtoRA = channel.SIMORate(p, g.BR, g.AB)
	}
	return li, nil
}

// SumRate returns the LP-optimal sum rate Ra+Rb of the bound for a Gaussian
// scenario. It is the Monte Carlo per-block kernel and performs no heap
// allocation.
func (e *Evaluator) SumRate(p Protocol, b Bound, s Scenario) (float64, error) {
	opt, err := e.WeightedRate(p, b, s, 1, 1)
	if err != nil {
		return 0, err
	}
	return opt.Objective, nil
}

// SumRateLinks is SumRate for externally supplied mutual informations (the
// DMC path).
func (e *Evaluator) SumRateLinks(p Protocol, b Bound, li LinkInfos) (float64, error) {
	opt, err := e.WeightedRateLinks(p, b, li, 1, 1)
	if err != nil {
		return 0, err
	}
	return opt.Objective, nil
}

// WeightedRateLinks is WeightedRate for externally supplied mutual
// informations. The returned Optimum.Durations aliases evaluator memory.
func (e *Evaluator) WeightedRateLinks(p Protocol, b Bound, li LinkInfos, muA, muB float64) (Optimum, error) {
	if muA < 0 || muB < 0 {
		return Optimum{}, fmt.Errorf("protocols: negative weights (%g, %g)", muA, muB)
	}
	tpl := templateFor(p, b)
	if tpl == nil || !tpl.ok {
		// Unknown enums or a non-template bound shape (e.g. more phases
		// than the fixed buffers hold): the full Compile path reports the
		// right error or handles the exotic spec. This path may allocate —
		// it never runs for the compiled-in protocols.
		spec, err := Compile(p, b, li)
		if err != nil {
			return Optimum{}, err
		}
		sol, err := spec.lp(muA, muB).SolveIn(&e.ws)
		if err != nil {
			return Optimum{}, fmt.Errorf("protocols: %v %v weighted-rate LP: %w", p, b, err)
		}
		return Optimum{
			Rates:     RatePair{Ra: sol.X[0], Rb: sol.X[1]},
			Durations: append([]float64(nil), sol.X[2:2+spec.Phases]...),
			Objective: sol.Objective,
		}, nil
	}
	if err := li.Validate(); err != nil {
		return Optimum{}, err
	}
	e.loadCaps(tpl, li)
	if tpl.fast {
		if opt, ok := e.fastWeighted(tpl, muA, muB); ok {
			return opt, nil
		}
	}
	return e.simplexWeighted(tpl, p, b, muA, muB)
}

// Feasible reports whether the rate pair is within the bound for some choice
// of phase durations, like Spec.Feasible but allocation-free. Like
// WeightedRate, it evaluates only the template's terms.
func (e *Evaluator) Feasible(p Protocol, b Bound, s Scenario, r RatePair) (bool, error) {
	li, err := e.linkInfosFor(p, b, s)
	if err != nil {
		return false, err
	}
	return e.FeasibleLinks(p, b, li, r)
}

// FeasibleLinks is Feasible for externally supplied mutual informations.
func (e *Evaluator) FeasibleLinks(p Protocol, b Bound, li LinkInfos, r RatePair) (bool, error) {
	if r.Ra < 0 || r.Rb < 0 {
		return false, nil
	}
	tpl := templateFor(p, b)
	if tpl == nil || !tpl.ok {
		spec, err := Compile(p, b, li)
		if err != nil {
			return false, err
		}
		return spec.Feasible(r)
	}
	if err := li.Validate(); err != nil {
		return false, err
	}
	e.loadCaps(tpl, li)
	if tpl.fast {
		if feasible, ok := e.fastFeasible(tpl, r); ok {
			return feasible, nil
		}
	}
	return e.simplexFeasible(tpl, r)
}

// loadCaps rewrites the numeric phase capacities of the template's
// constraints from the link informations.
func (e *Evaluator) loadCaps(tpl *specTemplate, li LinkInfos) {
	li.termValues(&e.terms)
	for ci := range tpl.cons {
		ct := &tpl.cons[ci]
		for l := 0; l < tpl.phases; l++ {
			e.caps[ci][l] = e.terms[ct.phase[l]]
		}
	}
}

// --- Closed-form fast path -------------------------------------------------
//
// With the last duration eliminated (Δ_L = 1 - ΣΔ_ℓ), every constraint's
// right-hand side is an affine function of the k = L-1 free durations. For
// 0/1 rate coefficients the rate optimum at fixed durations is closed-form
// in the three envelope values A = min(Ra caps), B = min(Rb caps) and
// C = min(sum caps), so the LP value is a concave piecewise-linear function
// of the free durations and its maximum sits on an intersection of kink
// lines (pairs of capacity functions crossing) and simplex boundaries.
// Enumerating those candidate points solves the LP exactly.

// lin is an affine function c0 + c1·d1 + c2·d2 of the free durations.
type lin struct{ c0, c1, c2 float64 }

func (f lin) at(d1, d2 float64) float64 { return f.c0 + f.c1*d1 + f.c2*d2 }

// linOf converts a constraint's phase capacities to free-duration form.
func linOf(caps *[maxPhases]float64, phases int) lin {
	last := caps[phases-1]
	f := lin{c0: last}
	if phases >= 2 {
		f.c1 = caps[0] - last
	}
	if phases >= 3 {
		f.c2 = caps[1] - last
	}
	return f
}

// rateOpt maximizes muA·ra + muB·rb subject to 0 ≤ ra ≤ a, 0 ≤ rb ≤ b,
// ra+rb ≤ c (a, b, c ≥ 0; c may be +Inf). Greedy by the larger weight is
// optimal by an exchange argument.
func rateOpt(muA, muB, a, b, c float64) (ra, rb float64) {
	if muA >= muB {
		ra = math.Min(a, c)
		rb = math.Min(b, c-ra)
		return ra, rb
	}
	rb = math.Min(b, c)
	ra = math.Min(a, c-rb)
	return ra, rb
}

// fastEnv evaluates the three envelopes at a duration point.
func fastEnv(fa, fb, fc []lin, d1, d2 float64) (a, b, c float64) {
	a, b, c = math.Inf(1), math.Inf(1), math.Inf(1)
	for _, f := range fa {
		if v := f.at(d1, d2); v < a {
			a = v
		}
	}
	for _, f := range fb {
		if v := f.at(d1, d2); v < b {
			b = v
		}
	}
	for _, f := range fc {
		if v := f.at(d1, d2); v < c {
			c = v
		}
	}
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if c < 0 {
		c = 0
	}
	return a, b, c
}

// fastWeighted solves the weighted-rate LP by candidate enumeration. The
// bool result is false only if the enumeration overflowed its line budget
// (impossible for the compiled templates, guarded for robustness).
func (e *Evaluator) fastWeighted(tpl *specTemplate, muA, muB float64) (Optimum, bool) {
	var faArr, fbArr, fcArr [maxTplCons]lin
	fa := gatherLins(faArr[:0], tpl.aIdx, &e.caps, tpl.phases)
	fb := gatherLins(fbArr[:0], tpl.bIdx, &e.caps, tpl.phases)
	fc := gatherLins(fcArr[:0], tpl.cIdx, &e.caps, tpl.phases)

	best := bestPoint{val: math.Inf(-1)}
	eval := func(d1, d2 float64) {
		d1, d2 = clampSimplex(d1, d2)
		a, b, c := fastEnv(fa, fb, fc, d1, d2)
		ra, rb := rateOpt(muA, muB, a, b, c)
		if v := muA*ra + muB*rb; v > best.val {
			best = bestPoint{val: v, d1: d1, d2: d2, ra: ra, rb: rb}
		}
	}

	// Collect the kink lines: pairwise crossings within each envelope, the
	// sum envelope against each individual envelope, and the sum envelope
	// against each pairwise total a_i + b_j (where the ra+rb ≤ C constraint
	// starts binding jointly).
	var lines [maxKinkLines]lin
	n := 0
	add := func(f lin) bool {
		if n >= maxKinkLines {
			return false
		}
		lines[n] = f
		n++
		return true
	}
	ok := true
	for i := 0; i < len(fa) && ok; i++ {
		for j := i + 1; j < len(fa) && ok; j++ {
			ok = add(linDiff(fa[i], fa[j]))
		}
	}
	for i := 0; i < len(fb) && ok; i++ {
		for j := i + 1; j < len(fb) && ok; j++ {
			ok = add(linDiff(fb[i], fb[j]))
		}
	}
	for i := 0; i < len(fc) && ok; i++ {
		for j := i + 1; j < len(fc) && ok; j++ {
			ok = add(linDiff(fc[i], fc[j]))
		}
	}
	for _, fcv := range fc {
		for _, fav := range fa {
			if ok {
				ok = add(linDiff(fcv, fav))
			}
		}
		for _, fbv := range fb {
			if ok {
				ok = add(linDiff(fcv, fbv))
			}
		}
		for _, fav := range fa {
			for _, fbv := range fb {
				if ok {
					ok = add(linDiff(fcv, lin{fav.c0 + fbv.c0, fav.c1 + fbv.c1, fav.c2 + fbv.c2}))
				}
			}
		}
	}
	if !ok {
		return Optimum{}, false
	}

	if tpl.phases == 2 {
		enumerate1D(lines[:n], eval)
	} else {
		enumerate2D(lines[:n], eval)
	}

	e.durs[0] = best.d1
	if tpl.phases == 3 {
		e.durs[1] = best.d2
	}
	lastIdx := tpl.phases - 1
	e.durs[lastIdx] = math.Max(0, 1-best.d1-best.d2)
	return Optimum{
		Rates:     RatePair{Ra: best.ra, Rb: best.rb},
		Durations: e.durs[:tpl.phases:tpl.phases],
		Objective: best.val,
	}, true
}

// fastFeasible maximizes the uniform slack min_i(cap_i(d) - need_i) over the
// duration simplex by the same candidate enumeration; the pair is feasible
// iff the maximal slack is (numerically) non-negative. The enumeration is
// skipped when a cheap witness — the previous solve's durations or the
// equal split — already supports the pair (the common case for non-outage
// Monte Carlo blocks). The second result is false when the kink-line budget
// overflowed (impossible for the compiled templates); the caller must then
// fall back to the LP rather than trust a truncated enumeration.
func (e *Evaluator) fastFeasible(tpl *specTemplate, r RatePair) (feasible, ok bool) {
	dsum := 0.0
	for l := 0; l < tpl.phases; l++ {
		dsum += e.durs[l]
	}
	if math.Abs(dsum-1) <= 1e-9 && e.marginAt(tpl, r, e.durs[:tpl.phases]) >= -feasSlackTol {
		return true, true
	}
	equal := [maxPhases]float64{}
	for l := 0; l < tpl.phases; l++ {
		equal[l] = 1 / float64(tpl.phases)
	}
	if e.marginAt(tpl, r, equal[:tpl.phases]) >= -feasSlackTol {
		return true, true
	}
	var gArr [maxTplCons]lin
	g := gArr[:0]
	for ci := range tpl.cons {
		ct := &tpl.cons[ci]
		f := linOf(&e.caps[ci], tpl.phases)
		f.c0 -= ct.coefRa*r.Ra + ct.coefRb*r.Rb
		g = append(g, f)
	}
	best := math.Inf(-1)
	eval := func(d1, d2 float64) {
		d1, d2 = clampSimplex(d1, d2)
		w := math.Inf(1)
		for _, f := range g {
			if v := f.at(d1, d2); v < w {
				w = v
			}
		}
		if w > best {
			best = w
		}
	}
	var lines [maxKinkLines]lin
	n := 0
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			if n >= maxKinkLines {
				return false, false
			}
			lines[n] = linDiff(g[i], g[j])
			n++
		}
	}
	if tpl.phases == 2 {
		enumerate1D(lines[:n], eval)
	} else {
		enumerate2D(lines[:n], eval)
	}
	return best >= -feasSlackTol, true
}

// feasSlackTol matches the simplex phase-1 feasibility tolerance so the fast
// path and the LP fallback classify near-boundary points consistently.
const feasSlackTol = 1e-9

type bestPoint struct {
	val, d1, d2, ra, rb float64
}

func gatherLins(dst []lin, idx []int, caps *[maxTplCons][maxPhases]float64, phases int) []lin {
	for _, ci := range idx {
		dst = append(dst, linOf(&caps[ci], phases))
	}
	return dst
}

func linDiff(f, g lin) lin { return lin{f.c0 - g.c0, f.c1 - g.c1, f.c2 - g.c2} }

func clampSimplex(d1, d2 float64) (float64, float64) {
	if d1 < 0 {
		d1 = 0
	}
	if d2 < 0 {
		d2 = 0
	}
	if s := d1 + d2; s > 1 {
		d1 /= s
		d2 /= s
	}
	return d1, d2
}

// enumerate1D visits the endpoints of [0,1] and every root of a kink line
// (one free duration: c2 is unused).
func enumerate1D(lines []lin, eval func(d1, d2 float64)) {
	eval(0, 0)
	eval(1, 0)
	for _, f := range lines {
		if math.Abs(f.c1) < 1e-14 {
			continue
		}
		d := -f.c0 / f.c1
		if d > 0 && d < 1 {
			eval(d, 0)
		}
	}
}

// enumerate2D visits every pairwise intersection of the kink lines and the
// three simplex boundary lines that lands inside the duration simplex (the
// simplex vertices arise as boundary-boundary intersections).
func enumerate2D(lines []lin, eval func(d1, d2 float64)) {
	var all [maxKinkLines + 3]lin
	m := copy(all[:], lines)
	all[m] = lin{c0: 0, c1: 1, c2: 0}   // d1 = 0
	all[m+1] = lin{c0: 0, c1: 0, c2: 1} // d2 = 0
	all[m+2] = lin{c0: 1, c1: -1, c2: -1}
	m += 3
	const eps = 1e-9
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			fi, fj := all[i], all[j]
			det := fi.c1*fj.c2 - fi.c2*fj.c1
			if math.Abs(det) < 1e-14 {
				continue
			}
			d1 := (-fi.c0*fj.c2 + fi.c2*fj.c0) / det
			d2 := (-fi.c1*fj.c0 + fi.c0*fj.c1) / det
			if d1 < -eps || d2 < -eps || d1+d2 > 1+eps {
				continue
			}
			eval(d1, d2)
		}
	}
}

// --- Simplex fallback ------------------------------------------------------
//
// Both fallback LPs are built with the last phase duration substituted out
// (Δ_L = 1 - ΣΔ_ℓ): every right-hand side becomes non-negative and the
// duration-sum equality becomes the inequality ΣΔ_ℓ ≤ 1, so the all-slack
// starting basis is feasible and the solver skips phase 1 entirely.

// simplexWeighted solves max muA·Ra + muB·Rb over variables
// x = [Ra, Rb, Δ1..Δ_{L-1}]: one row per constraint
// (rates - Σ (cap_ℓ - cap_L)·Δ_ℓ ≤ cap_L) plus the simplex row ΣΔ_ℓ ≤ 1.
func (e *Evaluator) simplexWeighted(tpl *specTemplate, p Protocol, b Bound, muA, muB float64) (Optimum, error) {
	k := tpl.phases - 1
	n := 2 + k
	m := len(tpl.cons)

	e.c = sizeFloats(e.c, n)
	e.c[0], e.c[1] = muA, muB
	e.aubFlat = sizeFloats(e.aubFlat, (m+1)*n)
	e.aub = sizeRows(e.aub, m+1)
	e.bub = sizeFloats(e.bub, m+1)
	for i := 0; i < m; i++ {
		row := e.aubFlat[i*n : (i+1)*n]
		ct := &tpl.cons[i]
		row[0], row[1] = ct.coefRa, ct.coefRb
		last := e.caps[i][tpl.phases-1]
		for l := 0; l < k; l++ {
			row[2+l] = last - e.caps[i][l]
		}
		e.aub[i] = row
		e.bub[i] = last
	}
	row := e.aubFlat[m*n : (m+1)*n]
	for l := 0; l < k; l++ {
		row[2+l] = 1
	}
	e.aub[m] = row
	e.bub[m] = 1

	prob := simplex.Problem{C: e.c, AUb: e.aub, BUb: e.bub}
	var sol simplex.Solution
	var err error
	if w := e.warmFor(p, b); w != nil && w.n == m+1 {
		sol, err = prob.SolveWarmIn(&e.ws, w.basis[:w.n])
	} else {
		sol, err = prob.SolveIn(&e.ws)
	}
	if err != nil {
		return Optimum{}, fmt.Errorf("protocols: %v %v weighted-rate LP: %w", p, b, err)
	}
	if w := e.warmFor(p, b); w != nil {
		w.n = len(e.ws.Basis(w.basis[:0]))
	}
	sum := 0.0
	for l := 0; l < k; l++ {
		e.durs[l] = sol.X[2+l]
		sum += sol.X[2+l]
	}
	e.durs[tpl.phases-1] = math.Max(0, 1-sum)
	return Optimum{
		Rates:     RatePair{Ra: sol.X[0], Rb: sol.X[1]},
		Durations: e.durs[:tpl.phases:tpl.phases],
		Objective: sol.Objective,
	}, nil
}

// marginAt returns min_i(cap_i(Δ) - need_i) at a specific duration vector —
// a lower bound on the maximal slack, so a non-negative value proves
// feasibility without solving the LP.
func (e *Evaluator) marginAt(tpl *specTemplate, r RatePair, durs []float64) float64 {
	margin := math.Inf(1)
	for i := range tpl.cons {
		ct := &tpl.cons[i]
		rhs := 0.0
		for l := 0; l < tpl.phases; l++ {
			rhs += e.caps[i][l] * durs[l]
		}
		if m := rhs - (ct.coefRa*r.Ra + ct.coefRb*r.Rb); m < margin {
			margin = m
		}
	}
	return margin
}

// simplexFeasible probes the rate pair by maximizing the uniform slack
// t = min_i(cap_i(Δ) - need_i) over the duration simplex, shifted by
// T0 = max_i need_i so the shifted slack t' = t + T0 is a non-negative LP
// variable and every right-hand side stays non-negative (phase-2-only
// solve). The pair is feasible iff the optimal t' reaches T0.
//
// Before building the LP it tries two sufficient witnesses — the duration
// vector of the evaluator's previous weighted solve (outage probes typically
// follow a sum-rate solve on the same block) and the equal split. A
// non-negative margin at either proves feasibility and skips the LP, which
// is the common case for non-outage blocks.
func (e *Evaluator) simplexFeasible(tpl *specTemplate, r RatePair) (bool, error) {
	dsum := 0.0
	for l := 0; l < tpl.phases; l++ {
		dsum += e.durs[l]
	}
	if math.Abs(dsum-1) <= 1e-9 && e.marginAt(tpl, r, e.durs[:tpl.phases]) >= -feasSlackTol {
		return true, nil
	}
	equal := [maxPhases]float64{}
	for l := 0; l < tpl.phases; l++ {
		equal[l] = 1 / float64(tpl.phases)
	}
	if e.marginAt(tpl, r, equal[:tpl.phases]) >= -feasSlackTol {
		return true, nil
	}
	k := tpl.phases - 1
	n := 1 + k
	m := len(tpl.cons)

	t0 := 0.0
	for i := 0; i < m; i++ {
		ct := &tpl.cons[i]
		if need := ct.coefRa*r.Ra + ct.coefRb*r.Rb; need > t0 {
			t0 = need
		}
	}
	e.c = sizeFloats(e.c, n)
	e.c[0] = 1
	e.aubFlat = sizeFloats(e.aubFlat, (m+1)*n)
	e.aub = sizeRows(e.aub, m+1)
	e.bub = sizeFloats(e.bub, m+1)
	for i := 0; i < m; i++ {
		row := e.aubFlat[i*n : (i+1)*n]
		ct := &tpl.cons[i]
		row[0] = 1
		last := e.caps[i][tpl.phases-1]
		for l := 0; l < k; l++ {
			row[1+l] = last - e.caps[i][l]
		}
		e.aub[i] = row
		e.bub[i] = last - (ct.coefRa*r.Ra + ct.coefRb*r.Rb) + t0
	}
	row := e.aubFlat[m*n : (m+1)*n]
	for l := 0; l < k; l++ {
		row[1+l] = 1
	}
	e.aub[m] = row
	e.bub[m] = 1

	sol, err := simplex.Problem{C: e.c, AUb: e.aub, BUb: e.bub}.SolveIn(&e.ws)
	if err != nil {
		return false, fmt.Errorf("protocols: feasibility LP: %w", err)
	}
	return sol.Objective >= t0-feasSlackTol, nil
}

func sizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func sizeRows(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		buf = make([][]float64, n)
	}
	return buf[:n]
}

// --- Batch and region entry points ----------------------------------------

// EvaluateBatch computes the optimal sum rate of the bound for every
// scenario, reusing the evaluator's state across solves. Results are
// appended to dst (which may be nil) and the extended slice is returned.
func (e *Evaluator) EvaluateBatch(p Protocol, b Bound, scenarios []Scenario, dst []float64) ([]float64, error) {
	for _, s := range scenarios {
		v, err := e.SumRate(p, b, s)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// Region computes the bound's rate region like Spec.Region, but reuses the
// evaluator across the support-direction sweep so only the polygon itself is
// allocated.
func (e *Evaluator) Region(p Protocol, b Bound, s Scenario, opts RegionOptions) (region.Polygon, error) {
	li, err := LinkInfosFromScenario(s)
	if err != nil {
		return region.Polygon{}, err
	}
	return regionFromSolver(func(muA, muB float64) (Optimum, error) {
		return e.WeightedRateLinks(p, b, li, muA, muB)
	}, opts)
}

// OptimalSumRates evaluates the bound's optimal sum rate for a slice of
// scenarios with a single pooled evaluator — the batch companion of
// OptimalSumRate for sweep and Monte Carlo style workloads.
func OptimalSumRates(p Protocol, b Bound, scenarios []Scenario) ([]SumRateResult, error) {
	e := evalPool.Get().(*Evaluator)
	defer evalPool.Put(e)
	out := make([]SumRateResult, 0, len(scenarios))
	for _, s := range scenarios {
		opt, err := e.WeightedRate(p, b, s, 1, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, SumRateResult{
			Protocol:  p,
			Kind:      b,
			Sum:       opt.Objective,
			Rates:     opt.Rates,
			Durations: append([]float64(nil), opt.Durations...),
		})
	}
	return out, nil
}
