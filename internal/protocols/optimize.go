package protocols

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bicoop/internal/region"
	"bicoop/internal/simplex"
)

// Optimum is the result of a weighted-rate maximization over a compiled
// bound: the optimal operating point, its phase durations, and the achieved
// objective.
type Optimum struct {
	// Rates is the optimal (Ra, Rb).
	Rates RatePair
	// Durations are the optimal phase durations Δ (length Spec.Phases,
	// summing to one).
	Durations []float64
	// Objective is the achieved weighted rate μa·Ra + μb·Rb.
	Objective float64
}

// lp builds the LP for the spec: variables x = [Ra, Rb, Δ1..ΔL].
func (s Spec) lp(muA, muB float64) simplex.Problem {
	n := 2 + s.Phases
	c := make([]float64, n)
	c[0], c[1] = muA, muB
	aub := make([][]float64, 0, len(s.Cons))
	bub := make([]float64, 0, len(s.Cons))
	for _, con := range s.Cons {
		row := make([]float64, n)
		row[0], row[1] = con.CoefRa, con.CoefRb
		for l := 0; l < s.Phases && l < len(con.PhaseCap); l++ {
			row[2+l] = -con.PhaseCap[l]
		}
		aub = append(aub, row)
		bub = append(bub, 0)
	}
	eq := make([]float64, n)
	for l := 0; l < s.Phases; l++ {
		eq[2+l] = 1
	}
	return simplex.Problem{
		C:   c,
		AUb: aub,
		BUb: bub,
		AEq: [][]float64{eq},
		BEq: []float64{1},
	}
}

// MaxWeightedRate maximizes μa·Ra + μb·Rb over the bound, jointly optimizing
// the phase durations (the paper's LP of Section IV).
func (s Spec) MaxWeightedRate(muA, muB float64) (Optimum, error) {
	if muA < 0 || muB < 0 {
		return Optimum{}, fmt.Errorf("protocols: negative weights (%g, %g)", muA, muB)
	}
	sol, err := s.lp(muA, muB).Solve()
	if err != nil {
		return Optimum{}, fmt.Errorf("protocols: %v %v weighted-rate LP: %w", s.Protocol, s.Kind, err)
	}
	return Optimum{
		Rates:     RatePair{Ra: sol.X[0], Rb: sol.X[1]},
		Durations: sol.X[2 : 2+s.Phases],
		Objective: sol.Objective,
	}, nil
}

// MaxSumRate maximizes Ra + Rb (the quantity plotted in Fig 3).
func (s Spec) MaxSumRate() (Optimum, error) {
	return s.MaxWeightedRate(1, 1)
}

// Feasible reports whether the rate pair is within the bound for some choice
// of phase durations.
func (s Spec) Feasible(r RatePair) (bool, error) {
	if r.Ra < 0 || r.Rb < 0 {
		return false, nil
	}
	// Fix Ra, Rb via equality rows and ask phase-1 for feasibility.
	p := s.lp(0, 0)
	fixRa := make([]float64, 2+s.Phases)
	fixRa[0] = 1
	fixRb := make([]float64, 2+s.Phases)
	fixRb[1] = 1
	p.AEq = append(p.AEq, fixRa, fixRb)
	p.BEq = append(p.BEq, r.Ra, r.Rb)
	_, err := p.Solve()
	if err == nil {
		return true, nil
	}
	if errors.Is(err, simplex.ErrInfeasible) {
		return false, nil
	}
	return false, fmt.Errorf("protocols: feasibility LP: %w", err)
}

// DurationsFor returns phase durations under which the rate pair is within
// the bound, or ErrBadDurations if the pair is infeasible at every duration
// split. Among feasible splits it returns the one maximizing the uniform
// rate margin t such that ((1+t)·Ra, (1+t)·Rb) stays feasible, so simulators
// operate with slack away from the boundary when slack exists.
func (s Spec) DurationsFor(r RatePair) ([]float64, error) {
	if r.Ra < 0 || r.Rb < 0 {
		return nil, fmt.Errorf("%w: negative rates %+v", ErrBadDurations, r)
	}
	// Variables: [t, Δ1..ΔL]; maximize t subject to
	// (1+t)·(CoefRa·Ra + CoefRb·Rb) ≤ Σ PhaseCap·Δ for every constraint.
	n := 1 + s.Phases
	c := make([]float64, n)
	c[0] = 1
	var aub [][]float64
	var bub []float64
	for _, con := range s.Cons {
		base := con.CoefRa*r.Ra + con.CoefRb*r.Rb
		row := make([]float64, n)
		row[0] = base
		for l := 0; l < s.Phases && l < len(con.PhaseCap); l++ {
			row[1+l] = -con.PhaseCap[l]
		}
		aub = append(aub, row)
		bub = append(bub, -base)
	}
	// Cap t so the LP stays bounded even for the all-zero rate pair.
	tCap := make([]float64, n)
	tCap[0] = 1
	aub = append(aub, tCap)
	bub = append(bub, 1e6)
	eq := make([]float64, n)
	for l := 0; l < s.Phases; l++ {
		eq[1+l] = 1
	}
	sol, err := (simplex.Problem{C: c, AUb: aub, BUb: bub, AEq: [][]float64{eq}, BEq: []float64{1}}).Solve()
	if err != nil {
		if errors.Is(err, simplex.ErrInfeasible) {
			return nil, fmt.Errorf("%w: rate pair %+v infeasible for %v %v", ErrBadDurations, r, s.Protocol, s.Kind)
		}
		return nil, fmt.Errorf("protocols: durations LP: %w", err)
	}
	if sol.X[0] < 0 {
		return nil, fmt.Errorf("%w: rate pair %+v infeasible for %v %v", ErrBadDurations, r, s.Protocol, s.Kind)
	}
	d := make([]float64, s.Phases)
	copy(d, sol.X[1:1+s.Phases])
	return d, nil
}

// DefaultRegionAngles is the support-direction count of a region sweep when
// RegionOptions.Angles is zero — the resolution of the paper's Fig 4 curves.
const DefaultRegionAngles = 181

// RegionOptions tunes Region's support-function sweep.
type RegionOptions struct {
	// Angles is the number of support directions swept across the first
	// quadrant; more angles recover more polygon vertices exactly. Zero
	// defaults to DefaultRegionAngles (181).
	Angles int
	// Ctx, when non-nil, bounds the sweep: cancellation is checked once per
	// support direction, so a long region build stops within one LP solve.
	// The sharded region path (internal/sweep.RegionBatch) has its own
	// chunk-level cancellation and ignores this field.
	Ctx context.Context
}

// angles resolves the sweep resolution.
func (o RegionOptions) angles() int {
	if o.Angles > 0 {
		return o.Angles
	}
	return DefaultRegionAngles
}

// RegionDirection returns the i-th support direction (muA, muB) of an
// angles-point sweep across the first quadrant: theta = (pi/2)·i/(angles-1).
// It is the single definition shared by the serial sweep below and the
// sharded angle axis in internal/sweep, so both paths solve bit-identical
// weight vectors.
func RegionDirection(i, angles int) (muA, muB float64) {
	theta := math.Pi / 2 * float64(i) / float64(angles-1)
	return math.Cos(theta), math.Sin(theta)
}

// AssembleRegion builds the region polygon from a support sweep's raw
// optimal vertices plus the exact axis maxima: the origin is prepended, the
// per-user maxima are projected onto the axes to keep the hull anchored even
// if no swept vertex lands exactly there, and the convex hull is taken.
// Shared by regionFromSolver and the sharded path (internal/sweep) so the
// assembled polygons agree vertex for vertex.
func AssembleRegion(swept []region.Point, raMax, rbMax float64) region.Polygon {
	pts := make([]region.Point, 0, len(swept)+3)
	pts = append(pts, region.Point{Ra: 0, Rb: 0})
	pts = append(pts, swept...)
	pts = append(pts,
		region.Point{Ra: raMax, Rb: 0},
		region.Point{Ra: 0, Rb: rbMax},
	)
	return region.ConvexHull(pts)
}

// Region computes the bound's rate region (the projection of the feasible
// (Ra, Rb, Δ) polytope onto the rate plane, a convex polygon) by sweeping
// support directions and taking the convex hull of the optimal vertices.
// The axis-aligned directions are always included, so the region's maximal
// per-user rates are exact.
func (s Spec) Region(opts RegionOptions) (region.Polygon, error) {
	return regionFromSolver(s.MaxWeightedRate, opts)
}

// regionFromSolver is the support-function sweep shared by Spec.Region and
// Evaluator.Region; solve maximizes muA·Ra + muB·Rb over the bound. When
// opts.Ctx is set, cancellation is honored between support directions.
func regionFromSolver(solve func(muA, muB float64) (Optimum, error), opts RegionOptions) (region.Polygon, error) {
	angles := opts.angles()
	swept := make([]region.Point, 0, angles)
	for i := 0; i < angles; i++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return region.Polygon{}, err
			}
		}
		muA, muB := RegionDirection(i, angles)
		opt, err := solve(muA, muB)
		if err != nil {
			return region.Polygon{}, err
		}
		// Rates are non-negative by construction; clear solver jitter.
		swept = append(swept, region.Point{
			Ra: math.Max(opt.Rates.Ra, 0),
			Rb: math.Max(opt.Rates.Rb, 0),
		})
	}
	// Exact axis solves anchor the per-user maxima (the swept direction at
	// theta = pi/2 is (cos, sin) with cos not exactly zero).
	raMax, err := solve(1, 0)
	if err != nil {
		return region.Polygon{}, err
	}
	rbMax, err := solve(0, 1)
	if err != nil {
		return region.Polygon{}, err
	}
	return AssembleRegion(swept, raMax.Rates.Ra, rbMax.Rates.Rb), nil
}

// FixedDurationRegion computes the rate region when the phase durations are
// pinned rather than optimized: each constraint's right-hand side becomes a
// constant and the region is a direct half-plane intersection. This is used
// by the Δ-ablation experiment and by cross-validation tests (the optimized
// region must contain every fixed-Δ region and equal their union's hull).
func (s Spec) FixedDurationRegion(durations []float64) (region.Polygon, error) {
	if len(durations) != s.Phases {
		return region.Polygon{}, fmt.Errorf("%w: %d durations for %d phases", ErrBadDurations, len(durations), s.Phases)
	}
	var sum float64
	for _, d := range durations {
		if d < -1e-12 {
			return region.Polygon{}, fmt.Errorf("%w: negative duration %g", ErrBadDurations, d)
		}
		sum += d
	}
	if math.Abs(sum-1) > 1e-9 {
		return region.Polygon{}, fmt.Errorf("%w: durations sum to %g", ErrBadDurations, sum)
	}
	hs := make([]region.HalfPlane, 0, len(s.Cons))
	for _, con := range s.Cons {
		hs = append(hs, region.HalfPlane{
			A: con.CoefRa,
			B: con.CoefRb,
			C: con.rhsAt(durations),
		})
	}
	pg, err := region.FromHalfPlanes(hs, 0)
	if err != nil {
		return region.Polygon{}, fmt.Errorf("protocols: fixed-duration region: %w", err)
	}
	return pg, nil
}

// EqualDurations returns the uniform duration vector for the spec's phase
// count (the no-optimization baseline of the Δ ablation).
func (s Spec) EqualDurations() []float64 {
	d := make([]float64, s.Phases)
	for i := range d {
		d[i] = 1 / float64(s.Phases)
	}
	return d
}

// SumRateAt evaluates the best sum rate attainable at fixed durations (the
// LP restricted to the rate variables, solved in closed form by walking the
// constraint set: the restriction is a 2-variable LP, handled by the region
// machinery for robustness).
func (s Spec) SumRateAt(durations []float64) (float64, error) {
	pg, err := s.FixedDurationRegion(durations)
	if err != nil {
		return 0, err
	}
	return pg.MaxSumRate(), nil
}
