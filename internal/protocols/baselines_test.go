package protocols

import (
	"math"
	"testing"

	"bicoop/internal/xmath"
)

func TestAFSumRate(t *testing.T) {
	s := testScenario(10)
	res, err := AFSumRate(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum <= 0 {
		t.Fatalf("AF sum rate %v", res.Sum)
	}
	if !xmath.ApproxEqual(res.Sum, res.Rates.Sum(), 1e-12) {
		t.Errorf("sum %v != Ra+Rb %v", res.Sum, res.Rates.Sum())
	}
	if len(res.Durations) != 2 || res.Durations[0] != 0.5 {
		t.Errorf("AF durations = %v, want half/half", res.Durations)
	}
	// AF never decodes at the relay, so it cannot beat the full-duplex
	// ceiling, and amplified noise keeps it below the MABC DF capacity at
	// moderate SNR with these asymmetric gains.
	mabc, err := OptimalSumRate(MABC, BoundInner, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum >= mabc.Sum {
		t.Errorf("AF %v should lose to MABC DF %v at 10 dB", res.Sum, mabc.Sum)
	}
	if _, err := AFSumRate(Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
}

func TestAFMonotoneInPower(t *testing.T) {
	prev := 0.0
	for _, pdb := range []float64{-5, 0, 5, 10, 15, 20} {
		res, err := AFSumRate(testScenario(pdb))
		if err != nil {
			t.Fatal(err)
		}
		if res.Sum < prev-1e-12 {
			t.Fatalf("AF sum rate decreased with power at %v dB", pdb)
		}
		prev = res.Sum
	}
}

func TestAFNoiseAmplificationHurtsAtLowSNR(t *testing.T) {
	// The classic AF-vs-DF story: at low SNR the relay amplifies mostly
	// noise, so DF (MABC) wins by a wide factor; at high SNR AF closes in.
	low := testScenario(-5)
	high := testScenario(20)
	ratio := func(s Scenario) float64 {
		t.Helper()
		af, err := AFSumRate(s)
		if err != nil {
			t.Fatal(err)
		}
		df, err := OptimalSumRate(MABC, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		return af.Sum / df.Sum
	}
	rLow, rHigh := ratio(low), ratio(high)
	if rLow >= rHigh {
		t.Errorf("AF/DF ratio should improve with SNR: %v at -5 dB vs %v at 20 dB", rLow, rHigh)
	}
	if rLow > 0.8 {
		t.Errorf("AF should be badly noise-limited at -5 dB, got ratio %v", rLow)
	}
}

func TestAFRegionConstraints(t *testing.T) {
	rp, err := AFRegionConstraints(testScenario(10))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Ra <= 0 || rp.Rb <= 0 {
		t.Errorf("AF caps %+v must be positive", rp)
	}
	// Both directions ride the same product channel Gar·Gbr; the asymmetry
	// comes from the amplified relay noise, which arrives at each terminal
	// through its own link. With Gbr > Gar, terminal b receives more
	// amplified noise than terminal a, so the a->b message rate cap (Ra,
	// decoded at b) is the smaller one.
	if rp.Ra >= rp.Rb {
		t.Errorf("with Gbr > Gar expected Ra cap %v < Rb cap %v", rp.Ra, rp.Rb)
	}
	if _, err := AFRegionConstraints(Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
}

func TestFullDuplexCeiling(t *testing.T) {
	// Every half-duplex protocol must sit at or below the full-duplex DF
	// bound, and the penalty ratio must be in (0, 1].
	for _, pdb := range []float64{-5, 0, 5, 10, 15} {
		s := testScenario(pdb)
		fd, err := FullDuplexSumRate(s)
		if err != nil {
			t.Fatal(err)
		}
		if fd.Sum <= 0 {
			t.Fatalf("degenerate full-duplex sum at %v dB", pdb)
		}
		for _, p := range Protocols() {
			pen, err := HalfDuplexPenalty(p, s)
			if err != nil {
				t.Fatal(err)
			}
			if pen <= 0 || pen > 1+1e-9 {
				t.Errorf("%v at %v dB: half-duplex retains %v of full duplex (must be in (0,1])", p, pdb, pen)
			}
		}
		// HBC is the best half-duplex protocol here, so it has the mildest
		// penalty among the relay protocols.
		penHBC, err := HalfDuplexPenalty(HBC, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Protocol{MABC, TDBC} {
			pen, err := HalfDuplexPenalty(p, s)
			if err != nil {
				t.Fatal(err)
			}
			if pen > penHBC+1e-9 {
				t.Errorf("%v penalty %v better than HBC %v at %v dB", p, pen, penHBC, pdb)
			}
		}
	}
}

func TestFullDuplexRatesConsistent(t *testing.T) {
	s := testScenario(10)
	fd, err := FullDuplexSumRate(s)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Rates.Sum() > fd.Sum+1e-9 {
		t.Errorf("rates %v exceed reported sum %v", fd.Rates, fd.Sum)
	}
	li := mustInfos(t, s)
	if fd.Sum > li.MACSum+1e-9 {
		t.Errorf("full-duplex sum %v exceeds MAC cut %v", fd.Sum, li.MACSum)
	}
	if fd.Rates.Ra > math.Min(li.MACAGivenB, li.RtoB)+1e-9 {
		t.Errorf("Ra %v exceeds its min-cut", fd.Rates.Ra)
	}
	if _, err := FullDuplexSumRate(Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
	if _, err := HalfDuplexPenalty(MABC, Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
}
