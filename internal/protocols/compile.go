package protocols

import (
	"fmt"
	"math"

	"bicoop/internal/xmath"
)

func fromDB(db float64) float64 { return xmath.FromDB(db) }

// Constraint is one linear bound of a compiled theorem:
//
//	CoefRa·Ra + CoefRb·Rb ≤ Σℓ PhaseCap[ℓ]·Δℓ.
//
// Every bound in Theorems 2-6 has this shape once the mutual-information
// terms are fixed numbers: each min(·,·) splits into separate constraints,
// and the right-hand sides are linear in the phase durations.
type Constraint struct {
	// CoefRa and CoefRb are the rate coefficients (0 or 1 in the paper).
	CoefRa, CoefRb float64
	// PhaseCap[ℓ] multiplies Δℓ on the right-hand side.
	PhaseCap []float64
	// Label names the constraint for diagnostics, e.g. "Ra <= Δ1·I(Xa;Yr|Xb)".
	Label string
}

// rhsAt evaluates the constraint's right-hand side at fixed durations.
func (c Constraint) rhsAt(durations []float64) float64 {
	var s float64
	for i, d := range durations {
		if i < len(c.PhaseCap) {
			s += c.PhaseCap[i] * d
		}
	}
	return s
}

// Spec is a compiled bound: a phase count plus the constraint list.
type Spec struct {
	// Protocol and Kind record what was compiled, for diagnostics.
	Protocol Protocol
	Kind     Bound
	// Phases is the number of phase-duration variables.
	Phases int
	// Cons is the constraint list. Rates and durations are additionally
	// constrained to be non-negative with durations summing to one.
	Cons []Constraint
	// Heuristic is true when the spec is not an exact evaluation of the
	// theorem (only the Gaussian HBC outer bound, where the paper itself
	// declines to evaluate because jointly Gaussian inputs are not known to
	// be optimal; see Section IV).
	Heuristic bool
}

// Compile builds the constraint set of the requested protocol and bound from
// the mutual-information terms. This is the single point where the paper's
// Theorems 2-6 are transcribed.
func Compile(p Protocol, b Bound, li LinkInfos) (Spec, error) {
	if err := li.Validate(); err != nil {
		return Spec{}, err
	}
	if b != BoundInner && b != BoundOuter {
		return Spec{}, fmt.Errorf("%w: %v", ErrUnknownBound, b)
	}
	switch p {
	case DT:
		return compileDT(b, li), nil
	case Naive4:
		return compileNaive4(b, li), nil
	case MABC:
		return compileMABC(b, li), nil
	case TDBC:
		return compileTDBC(b, li), nil
	case HBC:
		return compileHBC(b, li), nil
	default:
		return Spec{}, fmt.Errorf("%w: %v", ErrUnknownProtocol, p)
	}
}

// compileDT transcribes the direct-transmission capacity region (Section II-C):
//
//	Ra ≤ Δ1·I(Xa;Yb),  Rb ≤ Δ2·I(Xb;Ya).
//
// Inner and outer coincide (the two-phase region is the exact capacity of
// the protocol since each phase is a point-to-point channel).
func compileDT(b Bound, li LinkInfos) Spec {
	return Spec{
		Protocol: DT,
		Kind:     b,
		Phases:   2,
		Cons: []Constraint{
			{CoefRa: 1, PhaseCap: []float64{li.AtoB, 0}, Label: "Ra <= D1*I(Xa;Yb)"},
			{CoefRb: 1, PhaseCap: []float64{0, li.BtoA}, Label: "Rb <= D2*I(Xb;Ya)"},
		},
	}
}

// compileNaive4 transcribes the naive four-phase relaying baseline of
// Fig 1-ii: each message crosses two point-to-point hops, with no network
// coding and no use of overheard side information:
//
//	Ra ≤ min(Δ1·I(Xa;Yr), Δ2·I(Xr;Yb)),
//	Rb ≤ min(Δ3·I(Xb;Yr), Δ4·I(Xr;Ya)).
//
// Inner and outer coincide for this (decode-and-forward, no-combining)
// strategy.
func compileNaive4(b Bound, li LinkInfos) Spec {
	return Spec{
		Protocol: Naive4,
		Kind:     b,
		Phases:   4,
		Cons: []Constraint{
			{CoefRa: 1, PhaseCap: []float64{li.AtoR, 0, 0, 0}, Label: "Ra <= D1*I(Xa;Yr)"},
			{CoefRa: 1, PhaseCap: []float64{0, li.RtoB, 0, 0}, Label: "Ra <= D2*I(Xr;Yb)"},
			{CoefRb: 1, PhaseCap: []float64{0, 0, li.BtoR, 0}, Label: "Rb <= D3*I(Xb;Yr)"},
			{CoefRb: 1, PhaseCap: []float64{0, 0, 0, li.RtoA}, Label: "Rb <= D4*I(Xr;Ya)"},
		},
	}
}

// compileMABC transcribes Theorem 2, the exact capacity region of the MABC
// protocol:
//
//	Ra ≤ min(Δ1·I(Xa;Yr|Xb,Q), Δ2·I(Xr;Yb|Q)),
//	Rb ≤ min(Δ1·I(Xb;Yr|Xa,Q), Δ2·I(Xr;Ya|Q)),
//	Ra + Rb ≤ Δ1·I(Xa,Xb;Yr|Q).
//
// The theorem is tight, so inner and outer compile identically. (The remark
// after Theorem 2 notes that if the relay were not required to decode both
// messages, dropping the sum constraint gives an outer bound for that wider
// protocol class; see MABCOuterNoRelayDecoding.)
func compileMABC(b Bound, li LinkInfos) Spec {
	return Spec{
		Protocol: MABC,
		Kind:     b,
		Phases:   2,
		Cons: []Constraint{
			{CoefRa: 1, PhaseCap: []float64{li.MACAGivenB, 0}, Label: "Ra <= D1*I(Xa;Yr|Xb)"},
			{CoefRa: 1, PhaseCap: []float64{0, li.RtoB}, Label: "Ra <= D2*I(Xr;Yb)"},
			{CoefRb: 1, PhaseCap: []float64{li.MACBGivenA, 0}, Label: "Rb <= D1*I(Xb;Yr|Xa)"},
			{CoefRb: 1, PhaseCap: []float64{0, li.RtoA}, Label: "Rb <= D2*I(Xr;Ya)"},
			{CoefRa: 1, CoefRb: 1, PhaseCap: []float64{li.MACSum, 0}, Label: "Ra+Rb <= D1*I(Xa,Xb;Yr)"},
		},
	}
}

// MABCOuterNoRelayDecoding compiles the relaxed MABC outer bound of the
// remark after Theorem 2: valid for any two-phase protocol in which the
// relay is not required to decode both messages (the sum-rate MAC constraint
// is dropped).
func MABCOuterNoRelayDecoding(li LinkInfos) (Spec, error) {
	if err := li.Validate(); err != nil {
		return Spec{}, err
	}
	s := compileMABC(BoundOuter, li)
	s.Cons = s.Cons[:4:4] // drop the sum constraint
	return s, nil
}

// compileTDBC transcribes Theorem 3 (inner) and Theorem 4 (outer).
//
// Inner, evaluated per eqs. (22)-(23):
//
//	Ra ≤ min(Δ1·I(Xa;Yr), Δ1·I(Xa;Yb) + Δ3·I(Xr;Yb)),
//	Rb ≤ min(Δ2·I(Xb;Yr), Δ2·I(Xb;Ya) + Δ3·I(Xr;Ya)).
//
// Outer (Theorem 4): the relay-decoding terms are replaced by the SIMO
// cut-set terms and a sum-rate constraint appears:
//
//	Ra ≤ min(Δ1·I(Xa;Yr,Yb), Δ1·I(Xa;Yb) + Δ3·I(Xr;Yb)),
//	Rb ≤ min(Δ2·I(Xb;Yr,Ya), Δ2·I(Xb;Ya) + Δ3·I(Xr;Ya)),
//	Ra + Rb ≤ Δ1·I(Xa;Yr) + Δ2·I(Xb;Yr).
func compileTDBC(b Bound, li LinkInfos) Spec {
	s := Spec{Protocol: TDBC, Kind: b, Phases: 3}
	if b == BoundInner {
		s.Cons = []Constraint{
			{CoefRa: 1, PhaseCap: []float64{li.AtoR, 0, 0}, Label: "Ra <= D1*I(Xa;Yr)"},
			{CoefRa: 1, PhaseCap: []float64{li.AtoB, 0, li.RtoB}, Label: "Ra <= D1*I(Xa;Yb)+D3*I(Xr;Yb)"},
			{CoefRb: 1, PhaseCap: []float64{0, li.BtoR, 0}, Label: "Rb <= D2*I(Xb;Yr)"},
			{CoefRb: 1, PhaseCap: []float64{0, li.BtoA, li.RtoA}, Label: "Rb <= D2*I(Xb;Ya)+D3*I(Xr;Ya)"},
		}
		return s
	}
	s.Cons = []Constraint{
		{CoefRa: 1, PhaseCap: []float64{li.AtoRB, 0, 0}, Label: "Ra <= D1*I(Xa;Yr,Yb)"},
		{CoefRa: 1, PhaseCap: []float64{li.AtoB, 0, li.RtoB}, Label: "Ra <= D1*I(Xa;Yb)+D3*I(Xr;Yb)"},
		{CoefRb: 1, PhaseCap: []float64{0, li.BtoRA, 0}, Label: "Rb <= D2*I(Xb;Yr,Ya)"},
		{CoefRb: 1, PhaseCap: []float64{0, li.BtoA, li.RtoA}, Label: "Rb <= D2*I(Xb;Ya)+D3*I(Xr;Ya)"},
		{CoefRa: 1, CoefRb: 1, PhaseCap: []float64{li.AtoR, li.BtoR, 0}, Label: "Ra+Rb <= D1*I(Xa;Yr)+D2*I(Xb;Yr)"},
	}
	return s
}

// compileHBC transcribes Theorem 5 (inner) and Theorem 6 (outer).
//
// Inner:
//
//	Ra ≤ min(Δ1·I(Xa;Yr) + Δ3·I(Xa;Yr|Xb), Δ1·I(Xa;Yb) + Δ4·I(Xr;Yb)),
//	Rb ≤ min(Δ2·I(Xb;Yr) + Δ3·I(Xb;Yr|Xa), Δ2·I(Xb;Ya) + Δ4·I(Xr;Ya)),
//	Ra + Rb ≤ Δ1·I(Xa;Yr) + Δ2·I(Xb;Yr) + Δ3·I(Xa,Xb;Yr).
//
// Outer (Theorem 6): first per-user terms gain the SIMO combining
// observation, the rest is unchanged. In the Gaussian case the theorem's
// joint input p(3)(xa,xb|q) makes exact evaluation open (the paper does not
// plot it); Compile marks the Gaussian-independent-input version Heuristic.
func compileHBC(b Bound, li LinkInfos) Spec {
	s := Spec{Protocol: HBC, Kind: b, Phases: 4}
	sum := Constraint{
		CoefRa: 1, CoefRb: 1,
		PhaseCap: []float64{li.AtoR, li.BtoR, li.MACSum, 0},
		Label:    "Ra+Rb <= D1*I(Xa;Yr)+D2*I(Xb;Yr)+D3*I(Xa,Xb;Yr)",
	}
	if b == BoundInner {
		s.Cons = []Constraint{
			{CoefRa: 1, PhaseCap: []float64{li.AtoR, 0, li.MACAGivenB, 0}, Label: "Ra <= D1*I(Xa;Yr)+D3*I(Xa;Yr|Xb)"},
			{CoefRa: 1, PhaseCap: []float64{li.AtoB, 0, 0, li.RtoB}, Label: "Ra <= D1*I(Xa;Yb)+D4*I(Xr;Yb)"},
			{CoefRb: 1, PhaseCap: []float64{0, li.BtoR, li.MACBGivenA, 0}, Label: "Rb <= D2*I(Xb;Yr)+D3*I(Xb;Yr|Xa)"},
			{CoefRb: 1, PhaseCap: []float64{0, li.BtoA, 0, li.RtoA}, Label: "Rb <= D2*I(Xb;Ya)+D4*I(Xr;Ya)"},
			sum,
		}
		return s
	}
	s.Heuristic = true
	s.Cons = []Constraint{
		{CoefRa: 1, PhaseCap: []float64{li.AtoRB, 0, li.MACAGivenB, 0}, Label: "Ra <= D1*I(Xa;Yr,Yb)+D3*I(Xa;Yr|Xb)"},
		{CoefRa: 1, PhaseCap: []float64{li.AtoB, 0, 0, li.RtoB}, Label: "Ra <= D1*I(Xa;Yb)+D4*I(Xr;Yb)"},
		{CoefRb: 1, PhaseCap: []float64{0, li.BtoRA, li.MACBGivenA, 0}, Label: "Rb <= D2*I(Xb;Yr,Ya)+D3*I(Xb;Yr|Xa)"},
		{CoefRb: 1, PhaseCap: []float64{0, li.BtoA, 0, li.RtoA}, Label: "Rb <= D2*I(Xb;Ya)+D4*I(Xr;Ya)"},
		sum,
	}
	return s
}

// CompileGaussian is the Section IV entry point: evaluate the bound for a
// Gaussian scenario with independent complex Gaussian codebooks.
func CompileGaussian(p Protocol, b Bound, s Scenario) (Spec, error) {
	li, err := LinkInfosFromScenario(s)
	if err != nil {
		return Spec{}, err
	}
	return Compile(p, b, li)
}

// HBCOuterRelaxed compiles a strictly valid (but loose) Gaussian HBC outer
// bound in which every information term is replaced by its maximum over all
// joint input distributions individually: the phase-3 MAC sum term becomes
// the fully-correlated beamforming bound C(P·(√Gar+√Gbr)²) and the
// conditional terms keep their independent-input maxima (conditioning on the
// peer's symbol can only reduce the conditional variance below P, so
// C(P·G) remains an upper bound per term). Unlike the Heuristic spec from
// Compile(HBC, BoundOuter, ·), no point outside this region is achievable
// by any HBC decode-and-forward scheme.
func HBCOuterRelaxed(s Scenario) (Spec, error) {
	li, err := LinkInfosFromScenario(s)
	if err != nil {
		return Spec{}, err
	}
	beam := xmath.C(s.P * sq(math.Sqrt(s.G.AR)+math.Sqrt(s.G.BR)))
	spec := compileHBC(BoundOuter, li)
	spec.Heuristic = false
	for i := range spec.Cons {
		c := &spec.Cons[i]
		if c.CoefRa == 1 && c.CoefRb == 1 {
			c.PhaseCap[2] = beam
			c.Label = "Ra+Rb <= D1*I(Xa;Yr)+D2*I(Xb;Yr)+D3*C(P(sqrtGar+sqrtGbr)^2)"
		}
	}
	return spec, nil
}

func sq(x float64) float64 { return x * x }
