package protocols

import (
	"fmt"

	"bicoop/internal/region"
)

// SumRateResult reports a protocol's optimal sum rate in a scenario along
// with the operating point and durations that achieve it.
type SumRateResult struct {
	Protocol  Protocol
	Kind      Bound
	Sum       float64
	Rates     RatePair
	Durations []float64
}

// OptimalSumRate computes the LP-optimal sum rate of a protocol bound in a
// Gaussian scenario — one point of the paper's Fig 3. It draws a pooled
// Evaluator, so repeated calls hit the cached-template fast paths; callers
// with a hot loop of their own should hold a private Evaluator instead.
func OptimalSumRate(p Protocol, b Bound, s Scenario) (SumRateResult, error) {
	e := evalPool.Get().(*Evaluator)
	defer evalPool.Put(e)
	opt, err := e.WeightedRate(p, b, s, 1, 1)
	if err != nil {
		return SumRateResult{}, err
	}
	return SumRateResult{
		Protocol:  p,
		Kind:      b,
		Sum:       opt.Objective,
		Rates:     opt.Rates,
		Durations: append([]float64(nil), opt.Durations...),
	}, nil
}

// GaussianRegion computes a protocol bound's full rate region in a Gaussian
// scenario — one curve of the paper's Fig 4.
func GaussianRegion(p Protocol, b Bound, s Scenario, opts RegionOptions) (region.Polygon, error) {
	e := evalPool.Get().(*Evaluator)
	defer evalPool.Put(e)
	return e.Region(p, b, s, opts)
}

// SumRateComparison evaluates the inner-bound optimal sum rates of every
// protocol in one scenario — one x-position of Fig 3.
type SumRateComparison struct {
	Scenario Scenario
	// BySumRate maps protocol to its optimal achievable sum rate.
	BySumRate map[Protocol]float64
}

// CompareSumRates computes the Fig 3 quantities for one scenario.
func CompareSumRates(s Scenario) (SumRateComparison, error) {
	out := SumRateComparison{Scenario: s, BySumRate: make(map[Protocol]float64, len(Protocols()))}
	for _, p := range Protocols() {
		res, err := OptimalSumRate(p, BoundInner, s)
		if err != nil {
			return SumRateComparison{}, fmt.Errorf("protocols: %v sum rate: %w", p, err)
		}
		out.BySumRate[p] = res.Sum
	}
	return out, nil
}

// EscapeWitness is an achievable HBC operating point lying outside both the
// MABC and TDBC outer bounds — the paper's headline "surprising" finding.
type EscapeWitness struct {
	Point region.Point
	// Margin is the minimum over {MABC, TDBC} outer bounds of how far the
	// point is from being contained, measured as the containment-test
	// tolerance at which the point would first be accepted. Larger is a
	// stronger escape.
	Margin float64
}

// HBCEscapePoints searches the HBC achievable region for points outside the
// union of the MABC and TDBC outer-bound regions at the given scenario. An
// empty result means no escape at this scenario (the paper's claim is "in
// some cases", not everywhere). Candidates come from a polygon sweep; each
// is then verified exactly by LP — it must be infeasible for both outer
// bounds — so finite polygon resolution cannot produce false witnesses.
func HBCEscapePoints(s Scenario, opts RegionOptions) ([]EscapeWitness, error) {
	hbcInner, err := GaussianRegion(HBC, BoundInner, s, opts)
	if err != nil {
		return nil, err
	}
	mabcOuter, err := GaussianRegion(MABC, BoundOuter, s, opts)
	if err != nil {
		return nil, err
	}
	tdbcOuter, err := GaussianRegion(TDBC, BoundOuter, s, opts)
	if err != nil {
		return nil, err
	}
	return HBCEscapeFromRegions(s, hbcInner, mabcOuter, tdbcOuter)
}

// HBCEscapeFromRegions runs the escape search over precomputed region
// polygons — the path for callers that already hold the three curves (e.g.
// the Fig 4 experiment, which computes them once through the sharded batch
// and reuses them here instead of re-sweeping). The polygons must all come
// from the same scenario s, which is still needed for the exact LP
// verification of each candidate.
func HBCEscapeFromRegions(s Scenario, hbcInner, mabcOuter, tdbcOuter region.Polygon) ([]EscapeWitness, error) {
	mabcSpec, err := CompileGaussian(MABC, BoundOuter, s)
	if err != nil {
		return nil, err
	}
	tdbcSpec, err := CompileGaussian(TDBC, BoundOuter, s)
	if err != nil {
		return nil, err
	}
	const tol = 1e-7
	raw := hbcInner.PointsOutside(tol, mabcOuter, tdbcOuter)
	out := make([]EscapeWitness, 0, len(raw))
	for _, p := range raw {
		rp := RatePair{Ra: p.Ra, Rb: p.Rb}
		inMABC, err := mabcSpec.Feasible(rp)
		if err != nil {
			return nil, err
		}
		inTDBC, err := tdbcSpec.Feasible(rp)
		if err != nil {
			return nil, err
		}
		if inMABC || inTDBC {
			continue // polygon-resolution artifact, not a real escape
		}
		out = append(out, EscapeWitness{Point: p, Margin: escapeMargin(p, mabcOuter, tdbcOuter)})
	}
	return out, nil
}

// escapeMargin estimates how far p sits outside both regions by growing the
// containment tolerance until one of them accepts the point.
func escapeMargin(p region.Point, regions ...region.Polygon) float64 {
	lo, hi := 0.0, 1.0
	contained := func(tol float64) bool {
		for _, r := range regions {
			if r.Contains(p, tol) {
				return true
			}
		}
		return false
	}
	if contained(lo) {
		return 0
	}
	for !contained(hi) && hi < 1e6 {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if contained(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}
