package protocols

// Structural validation of the paper's protocol-nesting argument: "the
// optimal sum rate of the HBC protocol is always greater than or equal to
// those of the other protocols since the MABC and TDBC protocols are
// special cases of the HBC protocol". These tests verify the embedding at
// the constraint level, not just the optimum: pinning the right HBC phase
// durations to zero reproduces each special case's region exactly.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bicoop/internal/channel"
	"bicoop/internal/xmath"
)

// embedTDBC maps TDBC durations (d1, d2, d3) to HBC durations: HBC phases
// 1, 2, 4 are TDBC phases 1, 2, 3; HBC's MAC phase 3 gets zero.
func embedTDBC(d []float64) []float64 {
	return []float64{d[0], d[1], 0, d[2]}
}

// embedMABC maps MABC durations (d1, d2) to HBC durations: HBC phase 3 is
// the MAC phase and phase 4 the broadcast; phases 1 and 2 get zero.
func embedMABC(d []float64) []float64 {
	return []float64{0, 0, d[0], d[1]}
}

func TestTDBCEmbedsInHBC(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, pdb := range []float64{0, 10} {
		s := testScenario(pdb)
		tdbc := mustCompile(t, TDBC, BoundInner, s)
		hbc := mustCompile(t, HBC, BoundInner, s)
		for trial := 0; trial < 15; trial++ {
			d := randomDurations(3, r)
			tdbcRegion, err := tdbc.FixedDurationRegion(d)
			if err != nil {
				t.Fatal(err)
			}
			hbcRegion, err := hbc.FixedDurationRegion(embedTDBC(d))
			if err != nil {
				t.Fatal(err)
			}
			// The HBC region at the embedded durations must contain the
			// TDBC region (HBC has no sum-rate constraint active when
			// phase 3 is off? it does: D1·AtoR + D2·BtoR — which TDBC's
			// individual constraints imply, so containment still holds).
			if !tdbcRegion.SubsetOf(hbcRegion, 1e-7) {
				t.Fatalf("P=%v trial %d: TDBC region escapes embedded HBC region (d=%v)", pdb, trial, d)
			}
		}
	}
}

func TestMABCEmbedsInHBC(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, pdb := range []float64{0, 10} {
		s := testScenario(pdb)
		mabc := mustCompile(t, MABC, BoundInner, s)
		hbc := mustCompile(t, HBC, BoundInner, s)
		for trial := 0; trial < 15; trial++ {
			d := randomDurations(2, r)
			mabcRegion, err := mabc.FixedDurationRegion(d)
			if err != nil {
				t.Fatal(err)
			}
			hbcRegion, err := hbc.FixedDurationRegion(embedMABC(d))
			if err != nil {
				t.Fatal(err)
			}
			if !mabcRegion.SubsetOf(hbcRegion, 1e-7) {
				t.Fatalf("P=%v trial %d: MABC region escapes embedded HBC region (d=%v)", pdb, trial, d)
			}
			// And exactly: with phases 1-2 off, HBC's constraints reduce to
			// MABC's, so the regions coincide.
			if !hbcRegion.SubsetOf(mabcRegion, 1e-7) {
				t.Fatalf("P=%v trial %d: embedded HBC region exceeds MABC region (d=%v) — embedding should be exact", pdb, trial, d)
			}
		}
	}
}

func TestHBCOptimalSumRateViaEmbeddings(t *testing.T) {
	// The LP over all HBC durations must weakly dominate both embeddings'
	// optima — the paper's nesting argument as an LP identity.
	for _, pdb := range []float64{-5, 0, 5, 10, 15} {
		s := testScenario(pdb)
		hbc, err := OptimalSumRate(HBC, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Protocol{MABC, TDBC} {
			sub, err := OptimalSumRate(p, BoundInner, s)
			if err != nil {
				t.Fatal(err)
			}
			if hbc.Sum < sub.Sum-1e-9 {
				t.Errorf("P=%v: HBC %v below %v %v", pdb, hbc.Sum, p, sub.Sum)
			}
			// Verify the embedded durations actually achieve the special
			// case's optimum inside HBC.
			var embedded []float64
			if p == MABC {
				embedded = embedMABC(sub.Durations)
			} else {
				embedded = embedTDBC(sub.Durations)
			}
			hbcSpec := mustCompile(t, HBC, BoundInner, s)
			got, err := hbcSpec.SumRateAt(embedded)
			if err != nil {
				t.Fatal(err)
			}
			if !xmath.ApproxEqual(got, sub.Sum, 1e-6) {
				t.Errorf("P=%v: HBC at embedded %v durations gives %v, want %v", pdb, p, got, sub.Sum)
			}
		}
	}
}

func TestGainMonotonicity(t *testing.T) {
	// Improving any link gain can only grow every inner bound.
	base := testScenario(10)
	for _, p := range Protocols() {
		baseSum, err := OptimalSumRate(p, BoundInner, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, boost := range []string{"ab", "ar", "br"} {
			s := base
			switch boost {
			case "ab":
				s.G.AB *= 2
			case "ar":
				s.G.AR *= 2
			case "br":
				s.G.BR *= 2
			}
			sum, err := OptimalSumRate(p, BoundInner, s)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Sum < baseSum.Sum-1e-9 {
				t.Errorf("%v: doubling G%s reduced sum rate %v -> %v", p, boost, baseSum.Sum, sum.Sum)
			}
		}
	}
}

func TestSumRateScalesLogarithmically(t *testing.T) {
	// At high SNR every protocol's sum rate grows ~ linearly in P(dB); the
	// increment per 10 dB approaches a protocol-dependent multiplexing
	// constant. Sanity-check the growth is sub-linear in linear P and
	// super-constant in dB.
	for _, p := range []Protocol{MABC, TDBC, HBC} {
		s20, err := OptimalSumRate(p, BoundInner, testScenario(20))
		if err != nil {
			t.Fatal(err)
		}
		s30, err := OptimalSumRate(p, BoundInner, testScenario(30))
		if err != nil {
			t.Fatal(err)
		}
		inc := s30.Sum - s20.Sum
		if inc <= 0.5 || inc >= 4 {
			t.Errorf("%v: 20->30 dB increment %v implausible (want ~1-3.3 bits)", p, inc)
		}
	}
}

func TestSumRateSwapInvariantProperty(t *testing.T) {
	// Sum rate is invariant under exchanging the roles of the terminals,
	// for every protocol and random scenarios.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Scenario{
			P: xmath.FromDB(-10 + 30*r.Float64()),
			G: channel.Gains{
				AB: xmath.FromDB(-12 + 8*r.Float64()),
				AR: xmath.FromDB(-5 + 15*r.Float64()),
				BR: xmath.FromDB(-5 + 15*r.Float64()),
			},
		}
		for _, p := range Protocols() {
			a, err1 := OptimalSumRate(p, BoundInner, s)
			b, err2 := OptimalSumRate(p, BoundInner, s.Swap())
			if err1 != nil || err2 != nil || !xmath.ApproxEqual(a.Sum, b.Sum, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
