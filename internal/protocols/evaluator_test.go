package protocols

import (
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/xmath"
)

// allBounds lists both bound kinds for table-driven sweeps.
var allBounds = []Bound{BoundInner, BoundOuter}

func TestTemplatesDerived(t *testing.T) {
	wantFast := map[Protocol]bool{
		DT: true, MABC: true, TDBC: true, // ≤ 3 phases: closed form
		Naive4: false, HBC: false, // 4 phases: simplex fallback
	}
	for _, p := range Protocols() {
		for _, b := range allBounds {
			tpl := templateFor(p, b)
			if tpl == nil || !tpl.ok {
				t.Fatalf("%v %v: template not derived", p, b)
			}
			if tpl.fast != wantFast[p] {
				t.Errorf("%v %v: fast = %v, want %v", p, b, tpl.fast, wantFast[p])
			}
			if tpl.phases != p.Phases() {
				t.Errorf("%v %v: phases = %d, want %d", p, b, tpl.phases, p.Phases())
			}
			if len(tpl.aIdx) == 0 || len(tpl.bIdx) == 0 {
				t.Errorf("%v %v: missing per-rate constraints (a=%d b=%d)", p, b, len(tpl.aIdx), len(tpl.bIdx))
			}
		}
	}
}

// TestTemplateCapsMatchCompile verifies that rewriting a template's
// capacities from LinkInfos reproduces exactly the constraints Compile
// builds, so the template layer cannot drift from the theorem transcription.
func TestTemplateCapsMatchCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEvaluator()
	for trial := 0; trial < 20; trial++ {
		s := randomScenario(rng)
		li, err := LinkInfosFromScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range Protocols() {
			for _, b := range allBounds {
				spec, err := Compile(p, b, li)
				if err != nil {
					t.Fatal(err)
				}
				tpl := templateFor(p, b)
				e.loadCaps(tpl, li)
				if len(tpl.cons) != len(spec.Cons) {
					t.Fatalf("%v %v: %d template cons vs %d compiled", p, b, len(tpl.cons), len(spec.Cons))
				}
				for ci, con := range spec.Cons {
					ct := tpl.cons[ci]
					if ct.coefRa != con.CoefRa || ct.coefRb != con.CoefRb {
						t.Fatalf("%v %v con %d: coef mismatch", p, b, ci)
					}
					for l := 0; l < spec.Phases; l++ {
						want := 0.0
						if l < len(con.PhaseCap) {
							want = con.PhaseCap[l]
						}
						if e.caps[ci][l] != want {
							t.Fatalf("%v %v con %d phase %d: cap %g, want %g (%s)",
								p, b, ci, l, e.caps[ci][l], want, con.Label)
						}
					}
				}
			}
		}
	}
}

func randomScenario(rng *rand.Rand) Scenario {
	pdb := -10 + 30*rng.Float64()
	gab := -12 + 10*rng.Float64()
	gar := gab + 18*rng.Float64()
	gbr := gab + 18*rng.Float64()
	return NewScenarioDB(pdb, gab, gar, gbr)
}

// randomLinkInfos draws unconstrained non-negative terms — points the
// Gaussian model cannot reach — to stress the fast paths beyond the
// physically consistent region.
func randomLinkInfos(rng *rand.Rand) LinkInfos {
	u := func() float64 { return 4 * rng.Float64() }
	return LinkInfos{
		AtoR: u(), BtoR: u(), AtoB: u(), BtoA: u(), RtoA: u(), RtoB: u(),
		MACAGivenB: u(), MACBGivenA: u(), MACSum: u(), AtoRB: u(), BtoRA: u(),
	}
}

// TestEvaluatorMatchesSimplex is the fast-path equivalence property test:
// across randomized scenarios, synthetic link informations, protocols,
// bounds and objective weights, the Evaluator and the generic two-phase
// simplex must agree on the optimal objective to 1e-9, and the Evaluator's
// operating point must be primal-feasible and consistent with its objective.
func TestEvaluatorMatchesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEvaluator()
	weights := [][2]float64{{1, 1}, {1, 0}, {0, 1}, {0.3, 0.7}, {2, 0.5}}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		var li LinkInfos
		if trial%3 == 0 {
			li = randomLinkInfos(rng)
		} else {
			var err error
			li, err = LinkInfosFromScenario(randomScenario(rng))
			if err != nil {
				t.Fatal(err)
			}
		}
		w := weights[trial%len(weights)]
		muA, muB := w[0], w[1]
		if trial%7 == 0 {
			muA, muB = rng.Float64(), rng.Float64()
		}
		for _, p := range Protocols() {
			for _, b := range allBounds {
				spec, err := Compile(p, b, li)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := spec.MaxWeightedRate(muA, muB)
				if err != nil {
					t.Fatalf("%v %v reference LP: %v", p, b, err)
				}
				got, err := e.WeightedRateLinks(p, b, li, muA, muB)
				if err != nil {
					t.Fatalf("%v %v evaluator: %v", p, b, err)
				}
				tol := 1e-9 * (1 + math.Abs(ref.Objective))
				if math.Abs(got.Objective-ref.Objective) > tol {
					t.Errorf("%v %v mu=(%g,%g): evaluator %.15g vs simplex %.15g (diff %g)",
						p, b, muA, muB, got.Objective, ref.Objective, got.Objective-ref.Objective)
				}
				checkPrimal(t, spec, got, muA, muB)
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cases checked")
	}
}

// checkPrimal verifies an Optimum is a consistent feasible point of the spec.
func checkPrimal(t *testing.T, spec Spec, opt Optimum, muA, muB float64) {
	t.Helper()
	const tol = 1e-9
	if len(opt.Durations) != spec.Phases {
		t.Fatalf("%v %v: %d durations, want %d", spec.Protocol, spec.Kind, len(opt.Durations), spec.Phases)
	}
	sum := 0.0
	for _, d := range opt.Durations {
		if d < -tol {
			t.Errorf("%v %v: negative duration %g", spec.Protocol, spec.Kind, d)
		}
		sum += d
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Errorf("%v %v: durations sum to %.12g", spec.Protocol, spec.Kind, sum)
	}
	if opt.Rates.Ra < -tol || opt.Rates.Rb < -tol {
		t.Errorf("%v %v: negative rates %+v", spec.Protocol, spec.Kind, opt.Rates)
	}
	if obj := muA*opt.Rates.Ra + muB*opt.Rates.Rb; math.Abs(obj-opt.Objective) > 1e-8*(1+math.Abs(obj)) {
		t.Errorf("%v %v: objective %g inconsistent with rates %+v", spec.Protocol, spec.Kind, opt.Objective, opt.Rates)
	}
	for _, con := range spec.Cons {
		lhs := con.CoefRa*opt.Rates.Ra + con.CoefRb*opt.Rates.Rb
		rhs := 0.0
		for l, d := range opt.Durations {
			if l < len(con.PhaseCap) {
				rhs += con.PhaseCap[l] * d
			}
		}
		if lhs > rhs+1e-8*(1+rhs) {
			t.Errorf("%v %v: constraint %q violated: %g > %g", spec.Protocol, spec.Kind, con.Label, lhs, rhs)
		}
	}
}

// TestEvaluatorFeasibleMatchesSpec cross-checks the closed-form feasibility
// margin against the LP phase-1 probe on points placed strictly inside and
// strictly outside the bound.
func TestEvaluatorFeasibleMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := NewEvaluator()
	scales := []float64{0.25, 0.8, 0.97, 1.03, 1.4, 3}
	for trial := 0; trial < 25; trial++ {
		li, err := LinkInfosFromScenario(randomScenario(rng))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range Protocols() {
			for _, b := range allBounds {
				spec, err := Compile(p, b, li)
				if err != nil {
					t.Fatal(err)
				}
				opt, err := spec.MaxSumRate()
				if err != nil {
					t.Fatal(err)
				}
				share := 0.2 + 0.6*rng.Float64()
				for _, sc := range scales {
					target := RatePair{
						Ra: sc * share * opt.Objective,
						Rb: sc * (1 - share) * opt.Objective,
					}
					want, err := spec.Feasible(target)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.FeasibleLinks(p, b, li, target)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%v %v target %+v (scale %g): evaluator %v vs LP %v",
							p, b, target, sc, got, want)
					}
				}
			}
		}
	}
}

// TestEvaluatorMatchesPackageAPI pins the pooled package-level entry point to
// the evaluator it wraps.
func TestEvaluatorMatchesPackageAPI(t *testing.T) {
	s := NewScenarioDB(10, -7, 0, 5)
	e := NewEvaluator()
	for _, p := range Protocols() {
		res, err := OptimalSumRate(p, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.SumRate(p, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(res.Sum, v, 1e-12) {
			t.Errorf("%v: OptimalSumRate %g vs Evaluator.SumRate %g", p, res.Sum, v)
		}
	}
}

func TestEvaluateBatch(t *testing.T) {
	e := NewEvaluator()
	scenarios := []Scenario{
		NewScenarioDB(0, -7, 0, 5),
		NewScenarioDB(10, -7, 0, 5),
		NewScenarioDB(20, -7, 0, 5),
	}
	got, err := e.EvaluateBatch(TDBC, BoundInner, scenarios, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scenarios) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(scenarios))
	}
	for i, s := range scenarios {
		want, err := OptimalSumRate(TDBC, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(got[i], want.Sum, 1e-12) {
			t.Errorf("batch[%d] = %g, want %g", i, got[i], want.Sum)
		}
		if got[i] >= got[0] == (i == 0) && i > 0 && got[i] <= got[i-1] {
			t.Errorf("sum rate not increasing in power: %v", got)
		}
	}
	// OptimalSumRates mirrors the batch values with full results.
	res, err := OptimalSumRates(TDBC, BoundInner, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !xmath.ApproxEqual(res[i].Sum, got[i], 1e-12) {
			t.Errorf("OptimalSumRates[%d] = %g, want %g", i, res[i].Sum, got[i])
		}
	}
}

func TestEvaluatorRegionMatchesSpecRegion(t *testing.T) {
	s := NewScenarioDB(10, -7, 0, 5)
	e := NewEvaluator()
	opts := RegionOptions{Angles: 61}
	for _, p := range Protocols() {
		for _, b := range allBounds {
			spec, err := CompileGaussian(p, b, s)
			if err != nil {
				t.Fatal(err)
			}
			want, err := spec.Region(opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Region(p, b, s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !xmath.ApproxEqual(got.Area(), want.Area(), 1e-9*(1+want.Area())) {
				t.Errorf("%v %v: region area %g vs %g", p, b, got.Area(), want.Area())
			}
		}
	}
}

// TestEvaluatorSwapSymmetry: swapping the terminals and the weights must not
// change the optimal objective (the regions are mirror images).
func TestEvaluatorSwapSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEvaluator()
	for trial := 0; trial < 10; trial++ {
		s := randomScenario(rng)
		for _, p := range Protocols() {
			for _, b := range allBounds {
				o1, err := e.WeightedRate(p, b, s, 0.4, 1.1)
				if err != nil {
					t.Fatal(err)
				}
				v1 := o1.Objective
				o2, err := e.WeightedRate(p, b, s.Swap(), 1.1, 0.4)
				if err != nil {
					t.Fatal(err)
				}
				if !xmath.ApproxEqual(v1, o2.Objective, 1e-9*(1+v1)) {
					t.Errorf("%v %v: swap asymmetry %g vs %g", p, b, v1, o2.Objective)
				}
			}
		}
	}
}

// TestEvaluatorZeroAllocs is the allocation-regression gate for the
// steady-state LP hot path: sum-rate and feasibility evaluation must not
// allocate for any protocol, on either the closed-form or the simplex
// fallback path.
func TestEvaluatorZeroAllocs(t *testing.T) {
	e := NewEvaluator()
	s := NewScenarioDB(10, -7, 0, 5)
	target := RatePair{Ra: 0.5, Rb: 0.5}
	for _, p := range Protocols() {
		for _, b := range allBounds {
			// Warm the workspace so steady state is measured.
			if _, err := e.SumRate(p, b, s); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Feasible(p, b, s, target); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(100, func() {
				if _, err := e.SumRate(p, b, s); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("%v %v: SumRate allocates %.1f/op, want 0", p, b, n)
			}
			if n := testing.AllocsPerRun(100, func() {
				if _, err := e.Feasible(p, b, s, target); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("%v %v: Feasible allocates %.1f/op, want 0", p, b, n)
			}
		}
	}
}

// BenchmarkEvaluatorSolve measures one steady-state sum-rate evaluation per
// protocol (compile-free template rewrite + fast path or workspace simplex).
func BenchmarkEvaluatorSolve(b *testing.B) {
	s := NewScenarioDB(10, -7, 0, 5)
	for _, p := range Protocols() {
		b.Run(p.String(), func(b *testing.B) {
			e := NewEvaluator()
			if _, err := e.SumRate(p, BoundInner, s); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.SumRate(p, BoundInner, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorFeasible measures one steady-state feasibility probe.
func BenchmarkEvaluatorFeasible(b *testing.B) {
	s := NewScenarioDB(10, -7, 0, 5)
	target := RatePair{Ra: 0.5, Rb: 0.5}
	e := NewEvaluator()
	if _, err := e.Feasible(HBC, BoundInner, s, target); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Feasible(HBC, BoundInner, s, target); err != nil {
			b.Fatal(err)
		}
	}
}
