package protocols

import (
	"testing"

	"bicoop/internal/dmc"
	"bicoop/internal/prob"
	"bicoop/internal/xmath"
)

func uniformInputs(n DMCNetwork) Inputs {
	return Inputs{
		A: prob.NewUniform(n.NxA),
		B: prob.NewUniform(n.NxB),
		R: prob.NewUniform(n.RtoA.Nx()),
	}
}

func TestSymmetricBSCNetworkInfos(t *testing.T) {
	// Closed forms for the all-BSC network with uniform inputs:
	// every point-to-point term is 1 - h(eps), and for the XOR-MAC both the
	// conditional terms and the sum term equal 1 - h(epsR) (given the peer
	// input the MAC is a BSC; jointly, Yr depends only on Xa xor Xb which
	// is itself uniform).
	const epsR, epsD = 0.1, 0.2
	n := SymmetricBSCNetwork(epsR, epsD)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	li, err := LinkInfosFromDMC(n, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	wantR := 1 - xmath.EntropyBinary(epsR)
	wantD := 1 - xmath.EntropyBinary(epsD)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"AtoR", li.AtoR, wantR},
		{"BtoR", li.BtoR, wantR},
		{"AtoB", li.AtoB, wantD},
		{"BtoA", li.BtoA, wantD},
		{"RtoA", li.RtoA, wantR},
		{"RtoB", li.RtoB, wantR},
		{"MACAGivenB", li.MACAGivenB, wantR},
		{"MACBGivenA", li.MACBGivenA, wantR},
		{"MACSum", li.MACSum, wantR},
	}
	for _, c := range checks {
		if !xmath.ApproxEqual(c.got, c.want, 1e-9) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	// SIMO terms: combining two independent observations beats each alone
	// but not their sum.
	if li.AtoRB < wantR-1e-9 || li.AtoRB < wantD-1e-9 {
		t.Errorf("AtoRB = %v below a single link", li.AtoRB)
	}
	if li.AtoRB > wantR+wantD+1e-9 {
		t.Errorf("AtoRB = %v above the sum of links", li.AtoRB)
	}
	if err := li.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDMCBoundsCompileAndSolve(t *testing.T) {
	// End-to-end: compile every protocol bound on the BSC network and check
	// basic sanity orderings.
	n := SymmetricBSCNetwork(0.05, 0.25)
	li, err := LinkInfosFromDMC(n, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[Protocol]float64)
	for _, p := range Protocols() {
		spec, err := Compile(p, BoundInner, li)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := spec.MaxSumRate()
		if err != nil {
			t.Fatal(err)
		}
		if opt.Objective < 0 || opt.Objective > 2 {
			t.Errorf("%v: implausible BSC-network sum rate %v", p, opt.Objective)
		}
		sums[p] = opt.Objective
	}
	// HBC generalizes MABC and TDBC on DMCs too.
	if sums[HBC] < sums[MABC]-1e-9 || sums[HBC] < sums[TDBC]-1e-9 {
		t.Errorf("HBC %v below MABC %v or TDBC %v on the BSC network", sums[HBC], sums[MABC], sums[TDBC])
	}
	// With a strong relay and weak direct link, relaying beats DT.
	if sums[MABC] <= sums[DT] {
		t.Errorf("MABC %v should beat DT %v with a strong relay", sums[MABC], sums[DT])
	}
}

func TestDMCMatchesGaussianOnQuantizedChannels(t *testing.T) {
	// Cross-validation of the two evaluation paths: build a DMC network by
	// finely quantizing BPSK-AWGN links and compare each point-to-point
	// LinkInfos term to the BPSK mutual information (which lower-bounds the
	// Gaussian C(snr) and approaches it at low SNR).
	const snrR, snrD = 0.2, 0.05
	qr, err := dmc.QuantizeAWGN(snrR, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	qd, err := dmc.QuantizeAWGN(snrD, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// MAC placeholder: product channel observation is not needed for the
	// point-to-point comparison; reuse the XOR MAC at snrR's equivalent BSC.
	n := DMCNetwork{
		AtoR: qr, BtoR: qr, AtoB: qd, BtoA: qd, RtoA: qr, RtoB: qr,
		MACatR: dmc.Product(qr, qr), NxA: 2, NxB: 2,
	}
	li, err := LinkInfosFromDMC(n, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	// Real-AWGN capacity with Gaussian input: 0.5·log2(1+snr); BPSK uniform
	// input approaches it at these low SNRs within a few percent.
	wantR := 0.5 * xmath.C(snrR)
	wantD := 0.5 * xmath.C(snrD)
	if li.AtoR > wantR+1e-9 {
		t.Errorf("quantized AtoR %v exceeds Gaussian bound %v", li.AtoR, wantR)
	}
	if li.AtoR < 0.85*wantR {
		t.Errorf("quantized AtoR %v too far below Gaussian %v", li.AtoR, wantR)
	}
	if li.AtoB > wantD+1e-9 || li.AtoB < 0.85*wantD {
		t.Errorf("quantized AtoB %v vs Gaussian %v", li.AtoB, wantD)
	}
}

func TestDMCNetworkValidation(t *testing.T) {
	good := SymmetricBSCNetwork(0.1, 0.2)
	tests := []struct {
		name   string
		mutate func(n DMCNetwork) DMCNetwork
	}{
		{name: "zero alphabet", mutate: func(n DMCNetwork) DMCNetwork { n.NxA = 0; return n }},
		{name: "mac size", mutate: func(n DMCNetwork) DMCNetwork { n.MACatR = dmc.BSC(0.1); return n }},
		{name: "a alphabet", mutate: func(n DMCNetwork) DMCNetwork { n.AtoR = dmc.Noiseless(3); return n }},
		{name: "b alphabet", mutate: func(n DMCNetwork) DMCNetwork { n.BtoA = dmc.Noiseless(3); return n }},
		{name: "relay alphabet", mutate: func(n DMCNetwork) DMCNetwork { n.RtoA = dmc.Noiseless(3); return n }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bad := tt.mutate(good)
			if err := bad.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	t.Run("bad inputs", func(t *testing.T) {
		if _, err := LinkInfosFromDMC(good, Inputs{A: prob.NewUniform(3), B: prob.NewUniform(2), R: prob.NewUniform(2)}); err == nil {
			t.Error("mismatched input size should error")
		}
		if _, err := LinkInfosFromDMC(good, Inputs{A: prob.PMF{0.5, 0.4}, B: prob.NewUniform(2), R: prob.NewUniform(2)}); err == nil {
			t.Error("unnormalized input should error")
		}
	})
}

func TestDMCInputOptimizationImprovesOnSkewed(t *testing.T) {
	// The uniform input is optimal for symmetric BSC links; a skewed input
	// must do no better. This guards the sign conventions in the evaluator.
	n := SymmetricBSCNetwork(0.1, 0.3)
	uni, err := LinkInfosFromDMC(n, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	skew, err := LinkInfosFromDMC(n, Inputs{
		A: prob.PMF{0.9, 0.1},
		B: prob.PMF{0.8, 0.2},
		R: prob.PMF{0.7, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if skew.AtoR > uni.AtoR+1e-9 || skew.MACSum > uni.MACSum+1e-9 || skew.RtoB > uni.RtoB+1e-9 {
		t.Error("skewed input beat the uniform input on a symmetric channel")
	}
}
