package protocols

import (
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/region"
	"bicoop/internal/xmath"
)

func TestDTClosedForm(t *testing.T) {
	// DT sum rate equals C(P·Gab) exactly: the two phases share one link.
	for _, pdb := range []float64{-10, 0, 10, 20} {
		s := testScenario(pdb)
		res, err := OptimalSumRate(DT, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		want := xmath.C(s.P * s.G.AB)
		if !xmath.ApproxEqual(res.Sum, want, 1e-9) {
			t.Errorf("P=%vdB: DT sum = %v, want %v", pdb, res.Sum, want)
		}
		// Durations sum to one.
		if !xmath.ApproxEqual(xmath.Sum(res.Durations), 1, 1e-9) {
			t.Errorf("durations %v do not sum to 1", res.Durations)
		}
	}
}

func TestNaive4ClosedForm(t *testing.T) {
	// Naive 4-phase sum rate equals the harmonic-mean rate of the two hops:
	// Car·Cbr/(Car+Cbr) (each flow crosses both links; time shares out).
	for _, pdb := range []float64{0, 10} {
		s := testScenario(pdb)
		res, err := OptimalSumRate(Naive4, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		car := xmath.C(s.P * s.G.AR)
		cbr := xmath.C(s.P * s.G.BR)
		want := car * cbr / (car + cbr)
		if !xmath.ApproxEqual(res.Sum, want, 1e-9) {
			t.Errorf("P=%vdB: Naive4 sum = %v, want %v", pdb, res.Sum, want)
		}
	}
}

func TestMABCSumRateAgainstGoldenSection(t *testing.T) {
	// Cross-validate the LP against a 1-D golden-section search over Δ1
	// (MABC has two phases, so the LP reduces to one free variable).
	for _, pdb := range []float64{-5, 0, 5, 10, 15} {
		s := testScenario(pdb)
		res, err := OptimalSumRate(MABC, BoundInner, s)
		if err != nil {
			t.Fatal(err)
		}
		car := xmath.C(s.P * s.G.AR)
		cbr := xmath.C(s.P * s.G.BR)
		cmac := xmath.C(s.P * (s.G.AR + s.G.BR))
		sumAt := func(d1 float64) float64 {
			d2 := 1 - d1
			ra := math.Min(d1*car, d2*cbr)
			rb := math.Min(d1*cbr, d2*car)
			return math.Min(ra+rb, d1*cmac)
		}
		_, best, err := xmath.GoldenMax(sumAt, 0, 1, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(res.Sum, best, 1e-6) {
			t.Errorf("P=%vdB: LP %v vs golden %v", pdb, res.Sum, best)
		}
	}
}

func TestTDBCSumRateAgainstGridSearch(t *testing.T) {
	// TDBC has two free durations; validate the LP against a fine 2-D grid.
	s := testScenario(10)
	res, err := OptimalSumRate(TDBC, BoundInner, s)
	if err != nil {
		t.Fatal(err)
	}
	car := xmath.C(s.P * s.G.AR)
	cbr := xmath.C(s.P * s.G.BR)
	cab := xmath.C(s.P * s.G.AB)
	best := 0.0
	const steps = 400
	for i := 0; i <= steps; i++ {
		for j := 0; i+j <= steps; j++ {
			d1 := float64(i) / steps
			d2 := float64(j) / steps
			d3 := 1 - d1 - d2
			ra := math.Min(d1*car, d1*cab+d3*cbr)
			rb := math.Min(d2*cbr, d2*cab+d3*car)
			if v := ra + rb; v > best {
				best = v
			}
		}
	}
	if res.Sum < best-1e-6 {
		t.Errorf("LP sum %v below grid %v", res.Sum, best)
	}
	if res.Sum > best+0.01 {
		t.Errorf("LP sum %v implausibly above grid %v (grid step too coarse?)", res.Sum, best)
	}
}

func TestFeasibleMatchesRegion(t *testing.T) {
	s := testScenario(10)
	for _, p := range Protocols() {
		spec := mustCompile(t, p, BoundInner, s)
		pg, err := spec.Region(RegionOptions{Angles: 121})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := spec.MaxSumRate()
		if err != nil {
			t.Fatal(err)
		}
		// The optimal point is feasible; scaled-up versions are not.
		feasible, err := spec.Feasible(opt.Rates)
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			t.Errorf("%v: optimal point not feasible", p)
		}
		blown := RatePair{Ra: opt.Rates.Ra*1.05 + 0.01, Rb: opt.Rates.Rb*1.05 + 0.01}
		feasible, err = spec.Feasible(blown)
		if err != nil {
			t.Fatal(err)
		}
		if feasible {
			t.Errorf("%v: inflated point should be infeasible", p)
		}
		// Random points: region membership and LP feasibility must agree
		// away from the boundary.
		r := rand.New(rand.NewSource(33))
		maxRa, _ := pg.Support(1, 0)
		maxRb, _ := pg.Support(0, 1)
		for k := 0; k < 60; k++ {
			pt := RatePair{Ra: r.Float64() * maxRa * 1.3, Rb: r.Float64() * maxRb * 1.3}
			inRegion := pg.Contains(regionPoint(pt), 1e-9)
			feas, err := spec.Feasible(pt)
			if err != nil {
				t.Fatal(err)
			}
			if inRegion != feas {
				// Tolerate disagreement only within a thin boundary band.
				inner := pg.Contains(regionPoint(RatePair{pt.Ra * 1.001, pt.Rb * 1.001}), 1e-9)
				outer := pg.Contains(regionPoint(RatePair{pt.Ra * 0.999, pt.Rb * 0.999}), 1e-9)
				if inner == outer {
					t.Errorf("%v: region=%v feasible=%v at %+v (not boundary)", p, inRegion, feas, pt)
				}
			}
		}
		// Negative rates are never feasible.
		if f, _ := spec.Feasible(RatePair{Ra: -0.1, Rb: 0}); f {
			t.Errorf("%v: negative rate feasible", p)
		}
	}
}

func TestRegionContainsFixedDurationRegions(t *testing.T) {
	s := testScenario(5)
	r := rand.New(rand.NewSource(7))
	for _, p := range Protocols() {
		spec := mustCompile(t, p, BoundInner, s)
		full, err := spec.Region(RegionOptions{Angles: 181})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			d := randomDurations(spec.Phases, r)
			fixed, err := spec.FixedDurationRegion(d)
			if err != nil {
				t.Fatal(err)
			}
			if !fixed.SubsetOf(full, 1e-6) {
				t.Errorf("%v: fixed-duration region escapes the optimized region (d=%v)", p, d)
			}
		}
		// Equal-duration sum rate never exceeds the optimal sum rate.
		eq, err := spec.SumRateAt(spec.EqualDurations())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := spec.MaxSumRate()
		if err != nil {
			t.Fatal(err)
		}
		if eq > opt.Objective+1e-9 {
			t.Errorf("%v: equal-duration sum %v exceeds optimum %v", p, eq, opt.Objective)
		}
	}
}

func randomDurations(n int, r *rand.Rand) []float64 {
	d := make([]float64, n)
	var sum float64
	for i := range d {
		d[i] = r.Float64() + 1e-3
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

func TestFixedDurationRegionErrors(t *testing.T) {
	spec := mustCompile(t, TDBC, BoundInner, testScenario(5))
	if _, err := spec.FixedDurationRegion([]float64{0.5, 0.5}); err == nil {
		t.Error("wrong duration count should error")
	}
	if _, err := spec.FixedDurationRegion([]float64{0.5, 0.6, 0.2}); err == nil {
		t.Error("durations not summing to 1 should error")
	}
	if _, err := spec.FixedDurationRegion([]float64{-0.2, 0.6, 0.6}); err == nil {
		t.Error("negative duration should error")
	}
}

func TestDurationsFor(t *testing.T) {
	s := testScenario(10)
	for _, p := range Protocols() {
		spec := mustCompile(t, p, BoundInner, s)
		opt, err := spec.MaxSumRate()
		if err != nil {
			t.Fatal(err)
		}
		// A slightly retracted optimum is feasible; DurationsFor must find
		// durations that actually support it.
		target := RatePair{Ra: opt.Rates.Ra * 0.95, Rb: opt.Rates.Rb * 0.95}
		d, err := spec.DurationsFor(target)
		if err != nil {
			t.Fatalf("%v: DurationsFor: %v", p, err)
		}
		if !xmath.ApproxEqual(xmath.Sum(d), 1, 1e-7) {
			t.Errorf("%v: durations %v do not sum to 1", p, d)
		}
		pg, err := spec.FixedDurationRegion(d)
		if err != nil {
			t.Fatal(err)
		}
		if !pg.Contains(regionPoint(target), 1e-7) {
			t.Errorf("%v: returned durations do not support the target", p)
		}
		// An infeasible pair errors.
		blown := RatePair{Ra: opt.Rates.Ra + 1, Rb: opt.Rates.Rb + 1}
		if _, err := spec.DurationsFor(blown); err == nil {
			t.Errorf("%v: infeasible pair should error", p)
		}
		// Negative rates error.
		if _, err := spec.DurationsFor(RatePair{Ra: -1}); err == nil {
			t.Errorf("%v: negative rates should error", p)
		}
	}
}

func TestMaxWeightedRateErrors(t *testing.T) {
	spec := mustCompile(t, MABC, BoundInner, testScenario(5))
	if _, err := spec.MaxWeightedRate(-1, 1); err == nil {
		t.Error("negative weight should error")
	}
}

func TestRegionSymmetryUnderSwap(t *testing.T) {
	// Swapping the roles of a and b must reflect every region across the
	// diagonal.
	s := testScenario(10)
	sw := s.Swap()
	for _, p := range Protocols() {
		for _, b := range []Bound{BoundInner, BoundOuter} {
			r1, err := GaussianRegion(p, b, s, RegionOptions{Angles: 91})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := GaussianRegion(p, b, sw, RegionOptions{Angles: 91})
			if err != nil {
				t.Fatal(err)
			}
			if !r1.Swap().SubsetOf(r2, 1e-6) || !r2.SubsetOf(r1.Swap(), 1e-6) {
				t.Errorf("%v/%v: region not symmetric under terminal swap", p, b)
			}
		}
	}
}

func TestRegionMonotoneInPower(t *testing.T) {
	// More power can only grow every bound's region.
	g := testScenario(0).G
	var prev = make(map[Protocol]float64)
	for _, pdb := range []float64{-5, 0, 5, 10, 15} {
		s := Scenario{P: xmath.FromDB(pdb), G: g}
		for _, p := range Protocols() {
			res, err := OptimalSumRate(p, BoundInner, s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Sum < prev[p]-1e-9 {
				t.Errorf("%v: sum rate decreased with power at %vdB: %v -> %v", p, pdb, prev[p], res.Sum)
			}
			prev[p] = res.Sum
		}
	}
}

func regionPoint(r RatePair) region.Point {
	return region.Point{Ra: r.Ra, Rb: r.Rb}
}
