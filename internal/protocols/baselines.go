package protocols

// This file implements the comparison schemes the paper positions itself
// against: the two-phase amplify-and-forward protocol of Popovski/Yomo and
// Rankov/Wittneben (references [7], [8] of the paper), and the full-duplex
// two-way decode-and-forward relay bounds of Rankov/Wittneben ([9]), whose
// half-duplex restriction is exactly what the paper's protocols manage.
// Both are Gaussian-case evaluations; they are extensions beyond the
// paper's own theorems and are kept out of the Compile path.

import (
	"fmt"
	"math"

	"bicoop/internal/xmath"
)

// AFSumRate evaluates the two-phase amplify-and-forward ("analog network
// coding") protocol: in phase 1 both terminals transmit simultaneously; in
// phase 2 the relay scales its received signal to its power budget and
// retransmits. Each terminal cancels its own self-interference (it knows
// its transmitted signal and, with full CSI, the round-trip gain) and
// decodes the other message from the remaining signal plus amplified noise.
//
// With unit-power noise, per-node power P, and duration split (Δ, 1−Δ),
// the relay's amplification factor is g² = P / (P·Gar + P·Gbr + 1) and the
// post-cancellation SNRs are
//
//	SNR_b←a = g²·Gar·Gbr·P / (g²·Gbr + 1)   (at terminal b)
//	SNR_a←b = g²·Gar·Gbr·P / (g²·Gar + 1)   (at terminal a),
//
// giving Ra ≤ Δ2·C(SNR_b←a), Rb ≤ Δ2·C(SNR_a←b) — phase 1 contributes no
// separate decoding constraint because the relay never decodes. Since both
// rates grow with Δ2 but the signal energy is captured in phase 1, the
// conventional AF protocol uses Δ1 = Δ2 = 1/2 (one symbol in, one symbol
// out); AFSumRate reports that operating point.
func AFSumRate(s Scenario) (SumRateResult, error) {
	if err := s.Validate(); err != nil {
		return SumRateResult{}, err
	}
	p, g := s.P, s.G
	amp2 := p / (p*g.AR + p*g.BR + 1)
	snrB := amp2 * g.AR * g.BR * p / (amp2*g.BR + 1)
	snrA := amp2 * g.AR * g.BR * p / (amp2*g.AR + 1)
	ra := 0.5 * xmath.C(snrB)
	rb := 0.5 * xmath.C(snrA)
	return SumRateResult{
		Protocol:  MABC, // AF shares MABC's two-phase schedule
		Kind:      BoundInner,
		Sum:       ra + rb,
		Rates:     RatePair{Ra: ra, Rb: rb},
		Durations: []float64{0.5, 0.5},
	}, nil
}

// AFRegionConstraints returns the AF achievable region's two half-plane
// caps (Ra ≤ ra*, Rb ≤ rb*) at the half/half schedule; the region is the
// axis-aligned rectangle (time sharing inside one AF session does not trade
// the two rates against each other, as both ride the same relay signal).
func AFRegionConstraints(s Scenario) (RatePair, error) {
	res, err := AFSumRate(s)
	if err != nil {
		return RatePair{}, err
	}
	return res.Rates, nil
}

// FullDuplexSumRate evaluates the decode-and-forward two-way relay bounds
// when all nodes are full duplex (reference [9]): with no half-duplex
// constraint there are no phases, the relay continuously decodes both
// messages while broadcasting the previous block's XOR, and the per-block
// constraints become
//
//	Ra ≤ min(I(Xa;Yr|Xb,Xr), I(Xr;Yb|Xb))
//	Rb ≤ min(I(Xb;Yr|Xa,Xr), I(Xr;Ya|Xa))
//	Ra + Rb ≤ I(Xa,Xb;Yr|Xr)
//
// which for independent Gaussian inputs evaluate to C(P·G) link terms with
// no Δ discounts. This is the ceiling every half-duplex protocol in the
// paper chases; the gap to it is the half-duplex penalty.
func FullDuplexSumRate(s Scenario) (SumRateResult, error) {
	li, err := LinkInfosFromScenario(s)
	if err != nil {
		return SumRateResult{}, err
	}
	ra := math.Min(li.MACAGivenB, li.RtoB)
	rb := math.Min(li.MACBGivenA, li.RtoA)
	sum := math.Min(ra+rb, li.MACSum)
	// Scale back individual rates proportionally if the MAC sum binds.
	if ra+rb > li.MACSum {
		scale := li.MACSum / (ra + rb)
		ra *= scale
		rb *= scale
	}
	return SumRateResult{
		Protocol:  HBC, // closest schedule-free analogue
		Kind:      BoundInner,
		Sum:       sum,
		Rates:     RatePair{Ra: ra, Rb: rb},
		Durations: nil, // no phases in full duplex
	}, nil
}

// HalfDuplexPenalty reports, for one protocol, the fraction of the
// full-duplex DF sum rate the half-duplex protocol retains at a scenario
// (1.0 means no penalty).
func HalfDuplexPenalty(p Protocol, s Scenario) (float64, error) {
	fd, err := FullDuplexSumRate(s)
	if err != nil {
		return 0, err
	}
	if fd.Sum <= 0 {
		return 0, fmt.Errorf("protocols: degenerate full-duplex sum rate %g", fd.Sum)
	}
	hd, err := OptimalSumRate(p, BoundInner, s)
	if err != nil {
		return 0, err
	}
	return hd.Sum / fd.Sum, nil
}
