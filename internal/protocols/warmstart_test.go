package protocols

import (
	"math"
	"testing"

	"bicoop/internal/channel"
)

// warmGrid is a relay-placement sweep row — adjacent points differ slightly,
// the regime where the warm-started basis should almost always be reused.
func warmGrid(t testing.TB, n int) []Scenario {
	t.Helper()
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		d := 0.05 + 0.9*float64(i)/float64(n-1)
		g, err := (channel.LineGeometry{RelayPos: d, Exponent: 3}).Gains()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Scenario{P: fromDB(15), G: g})
	}
	return out
}

// TestWarmStartMatchesCold pins the warm-started Naive4/HBC weighted-rate
// objectives to the cold ones at 1e-12 across a placement sweep — the
// contract the sharded grid sweeps rely on for cross-worker reproducibility.
func TestWarmStartMatchesCold(t *testing.T) {
	scenarios := warmGrid(t, 101)
	for _, proto := range []Protocol{Naive4, HBC} {
		for _, bound := range []Bound{BoundInner, BoundOuter} {
			warm := NewEvaluator()
			warm.SetWarmStart(true)
			cold := NewEvaluator()
			for i, s := range scenarios {
				w, err := warm.WeightedRate(proto, bound, s, 1, 1)
				if err != nil {
					t.Fatalf("%v %v point %d warm: %v", proto, bound, i, err)
				}
				c, err := cold.WeightedRate(proto, bound, s, 1, 1)
				if err != nil {
					t.Fatalf("%v %v point %d cold: %v", proto, bound, i, err)
				}
				if math.Abs(w.Objective-c.Objective) > 1e-12 {
					t.Errorf("%v %v point %d: warm %.17g, cold %.17g",
						proto, bound, i, w.Objective, c.Objective)
				}
			}
		}
	}
}

// TestWarmStartResetRestoresColdPath proves ResetWarmStart really drops the
// hints: after a reset, the next solve is bit-identical to a fresh
// evaluator's (the determinism chunk boundaries depend on exactly this).
func TestWarmStartResetRestoresColdPath(t *testing.T) {
	s := NewScenarioDB(10, -7, 0, 5)
	other := NewScenarioDB(0, -3, 2, 1)

	warm := NewEvaluator()
	warm.SetWarmStart(true)
	if _, err := warm.WeightedRate(HBC, BoundInner, other, 1, 1); err != nil {
		t.Fatal(err)
	}
	warm.ResetWarmStart()
	got, err := warm.WeightedRate(HBC, BoundInner, s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewEvaluator()
	fresh.SetWarmStart(true)
	want, err := fresh.WeightedRate(HBC, BoundInner, s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != want.Objective || got.Rates != want.Rates {
		t.Errorf("post-reset solve %+v, fresh-evaluator solve %+v", got, want)
	}
}

// TestWarmStartOffIsDefault pins that a fresh evaluator ignores warm state
// entirely: two interleaved histories produce bit-identical results.
func TestWarmStartOffIsDefault(t *testing.T) {
	s := NewScenarioDB(10, -7, 0, 5)
	a := NewEvaluator()
	if _, err := a.WeightedRate(HBC, BoundInner, NewScenarioDB(-5, -7, 0, 5), 1, 1); err != nil {
		t.Fatal(err)
	}
	got, err := a.WeightedRate(HBC, BoundInner, s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEvaluator().WeightedRate(HBC, BoundInner, s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != want.Objective {
		t.Errorf("history changed a cold evaluator's result: %.17g vs %.17g",
			got.Objective, want.Objective)
	}
}

// TestWarmStartZeroAlloc keeps the warm path on the allocation-free budget
// of the evaluator hot path.
func TestWarmStartZeroAlloc(t *testing.T) {
	ev := NewEvaluator()
	ev.SetWarmStart(true)
	scenarios := warmGrid(t, 8)
	li := make([]LinkInfos, len(scenarios))
	for i, s := range scenarios {
		var err error
		if li[i], err = LinkInfosFromScenario(s); err != nil {
			t.Fatal(err)
		}
	}
	// Prime sizes and the first basis.
	if _, err := ev.WeightedRateLinks(HBC, BoundInner, li[0], 1, 1); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for i := range li {
			if _, err := ev.WeightedRateLinks(HBC, BoundInner, li[i], 1, 1); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("warm-started HBC solves allocate %.1f/op, want 0", allocs)
	}
}
