package protocols

import (
	"errors"
	"fmt"

	"bicoop/internal/dmc"
	"bicoop/internal/prob"
)

// DMCNetwork describes the three-node half-duplex network of Section II for
// arbitrary finite alphabets: one point-to-point DMC per directed link that
// the protocols use, plus a two-input MAC channel at the relay. Outputs at
// distinct receivers are conditionally independent given the inputs (the
// standard memoryless broadcast decomposition), which is how the SIMO
// cut-set terms are assembled.
type DMCNetwork struct {
	// AtoR, BtoR, AtoB, BtoA, RtoA, RtoB are the single-transmitter link
	// channels W(y_receiver | x_transmitter).
	AtoR, BtoR, AtoB, BtoA, RtoA, RtoB dmc.Channel
	// MACatR is the relay's multiple-access channel W(yr | xa, xb) with the
	// input pair indexed as xa·NxB + xb (NxB = number of b-inputs).
	MACatR dmc.Channel
	// NxA and NxB are the MAC input alphabet sizes for de-indexing MACatR.
	NxA, NxB int
}

// Inputs carries the per-node input distributions used to evaluate the
// mutual-information terms (the paper's p(ℓ)(x·|q); |Q| = 1 here — callers
// needing time sharing evaluate several Inputs and convexify).
type Inputs struct {
	A, B, R prob.PMF
}

// ErrBadNetwork reports an inconsistent DMCNetwork.
var ErrBadNetwork = errors.New("protocols: inconsistent DMC network")

// Validate checks alphabet consistency across the network's channels.
func (n DMCNetwork) Validate() error {
	if n.NxA <= 0 || n.NxB <= 0 {
		return fmt.Errorf("%w: MAC input sizes (%d, %d)", ErrBadNetwork, n.NxA, n.NxB)
	}
	if n.MACatR.Nx() != n.NxA*n.NxB {
		return fmt.Errorf("%w: MAC has %d inputs, want %d*%d", ErrBadNetwork, n.MACatR.Nx(), n.NxA, n.NxB)
	}
	if n.AtoR.Nx() != n.NxA || n.AtoB.Nx() != n.NxA {
		return fmt.Errorf("%w: a-transmitter alphabet mismatch", ErrBadNetwork)
	}
	if n.BtoR.Nx() != n.NxB || n.BtoA.Nx() != n.NxB {
		return fmt.Errorf("%w: b-transmitter alphabet mismatch", ErrBadNetwork)
	}
	if n.RtoA.Nx() != n.RtoB.Nx() {
		return fmt.Errorf("%w: relay alphabet mismatch", ErrBadNetwork)
	}
	return nil
}

// LinkInfosFromDMC evaluates every term of LinkInfos for the network under
// the given input distributions, using exact finite-alphabet computations.
// This realizes the general (non-Gaussian) forms of Theorems 2-6.
func LinkInfosFromDMC(n DMCNetwork, in Inputs) (LinkInfos, error) {
	if err := n.Validate(); err != nil {
		return LinkInfos{}, err
	}
	if len(in.A) != n.NxA || len(in.B) != n.NxB || len(in.R) != n.RtoA.Nx() {
		return LinkInfos{}, fmt.Errorf("%w: input dimensions (%d, %d, %d)", ErrBadNetwork, len(in.A), len(in.B), len(in.R))
	}
	for _, p := range []prob.PMF{in.A, in.B, in.R} {
		if err := p.Validate(); err != nil {
			return LinkInfos{}, err
		}
	}

	var li LinkInfos
	var err error
	if li.AtoR, err = n.AtoR.MutualInformation(in.A); err != nil {
		return LinkInfos{}, err
	}
	if li.BtoR, err = n.BtoR.MutualInformation(in.B); err != nil {
		return LinkInfos{}, err
	}
	if li.AtoB, err = n.AtoB.MutualInformation(in.A); err != nil {
		return LinkInfos{}, err
	}
	if li.BtoA, err = n.BtoA.MutualInformation(in.B); err != nil {
		return LinkInfos{}, err
	}
	if li.RtoA, err = n.RtoA.MutualInformation(in.R); err != nil {
		return LinkInfos{}, err
	}
	if li.RtoB, err = n.RtoB.MutualInformation(in.R); err != nil {
		return LinkInfos{}, err
	}

	// MAC terms: joint p(xa, xb, yr) = pa(xa)·pb(xb)·W(yr | xa, xb).
	nyR := n.MACatR.Ny()
	// I(Xa; Yr | Xb): Joint3 with (X=Xa, Y=Yr, Z=Xb).
	jAgB := prob.NewJoint3(n.NxA, nyR, n.NxB)
	// I(Xb; Yr | Xa): Joint3 with (X=Xb, Y=Yr, Z=Xa).
	jBgA := prob.NewJoint3(n.NxB, nyR, n.NxA)
	// I(Xa,Xb; Yr): Joint over the product input.
	jSum := prob.NewJoint(n.NxA*n.NxB, nyR)
	for xa := 0; xa < n.NxA; xa++ {
		for xb := 0; xb < n.NxB; xb++ {
			pin := in.A[xa] * in.B[xb]
			if pin == 0 {
				continue
			}
			row := n.MACatR.W[xa*n.NxB+xb]
			for y, w := range row {
				v := pin * w
				jAgB.P[xa][y][xb] += v
				jBgA.P[xb][y][xa] += v
				jSum.P[xa*n.NxB+xb][y] += v
			}
		}
	}
	li.MACAGivenB = jAgB.ConditionalMI()
	li.MACBGivenA = jBgA.ConditionalMI()
	li.MACSum = jSum.MutualInformation()

	// SIMO terms: the pair (Yr, Yb) given Xa with conditionally independent
	// observations: W'(yr, yb | xa) = AtoR(yr|xa)·AtoB(yb|xa).
	li.AtoRB, err = simoMI(n.AtoR, n.AtoB, in.A)
	if err != nil {
		return LinkInfos{}, err
	}
	li.BtoRA, err = simoMI(n.BtoR, n.BtoA, in.B)
	if err != nil {
		return LinkInfos{}, err
	}
	return li, nil
}

// simoMI computes I(X; Y1, Y2) for one transmitter heard by two receivers
// with conditionally independent channels c1 and c2.
func simoMI(c1, c2 dmc.Channel, px prob.PMF) (float64, error) {
	if c1.Nx() != c2.Nx() {
		return 0, fmt.Errorf("%w: SIMO input alphabets %d vs %d", ErrBadNetwork, c1.Nx(), c2.Nx())
	}
	ny1, ny2 := c1.Ny(), c2.Ny()
	w := make([][]float64, c1.Nx())
	for x := 0; x < c1.Nx(); x++ {
		row := make([]float64, ny1*ny2)
		for y1 := 0; y1 < ny1; y1++ {
			for y2 := 0; y2 < ny2; y2++ {
				row[y1*ny2+y2] = c1.W[x][y1] * c2.W[x][y2]
			}
		}
		w[x] = row
	}
	joint, err := prob.JointFromInputChannel(px, w)
	if err != nil {
		return 0, err
	}
	return joint.MutualInformation(), nil
}

// SymmetricBSCNetwork builds a DMCNetwork in which every link is a binary
// symmetric channel: the relay links have crossover epsR (both sides), the
// direct link epsD, and the MAC at the relay is modeled as the paper's
// half-duplex constraint allows — the relay observes the XOR of the two
// transmitted bits through a BSC(epsR) (a binary multiple-access abstraction
// that keeps every theorem term finite-alphabet computable).
func SymmetricBSCNetwork(epsR, epsD float64) DMCNetwork {
	bscR := dmc.BSC(epsR)
	bscD := dmc.BSC(epsD)
	// MAC: yr = (xa xor xb) with flip probability epsR.
	mac := make([][]float64, 4)
	for xa := 0; xa < 2; xa++ {
		for xb := 0; xb < 2; xb++ {
			row := make([]float64, 2)
			x := xa ^ xb
			row[x] = 1 - epsR
			row[1-x] = epsR
			mac[xa*2+xb] = row
		}
	}
	return DMCNetwork{
		AtoR: bscR, BtoR: bscR,
		AtoB: bscD, BtoA: bscD,
		RtoA: bscR, RtoB: bscR,
		MACatR: dmc.Channel{W: mac},
		NxA:    2, NxB: 2,
	}
}
