package protocols

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRegionHonorsContext pins the serial region sweep's cancellation hook:
// a pre-cancelled RegionOptions.Ctx stops the sweep before (or between) LP
// solves, for both the Spec and Evaluator paths.
func TestRegionHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := testScenario(10)
	spec, err := CompileGaussian(HBC, BoundInner, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Region(RegionOptions{Angles: 1 << 20, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("Spec.Region err = %v, want context.Canceled", err)
	}
	ev := NewEvaluator()
	start := time.Now()
	if _, err := ev.Region(HBC, BoundInner, s, RegionOptions{Angles: 1 << 20, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluator.Region err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled Evaluator.Region took %v, want immediate return", elapsed)
	}
	// A live context must leave results untouched.
	pg, err := ev.Region(HBC, BoundInner, s, RegionOptions{Angles: 31, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if pg.IsEmpty() {
		t.Error("region empty under a live context")
	}
}
