package protocols

import (
	"errors"
	"math"
	"testing"

	"bicoop/internal/channel"
	"bicoop/internal/xmath"
)

// testScenario returns the paper's Fig 4 evaluation point at the given power
// (dB): Gab = -7 dB, Gar = 0 dB, Gbr = 5 dB.
func testScenario(pDB float64) Scenario {
	return NewScenarioDB(pDB, -7, 0, 5)
}

func mustInfos(t *testing.T, s Scenario) LinkInfos {
	t.Helper()
	li, err := LinkInfosFromScenario(s)
	if err != nil {
		t.Fatalf("LinkInfosFromScenario: %v", err)
	}
	return li
}

func mustCompile(t *testing.T, p Protocol, b Bound, s Scenario) Spec {
	t.Helper()
	spec, err := CompileGaussian(p, b, s)
	if err != nil {
		t.Fatalf("CompileGaussian(%v, %v): %v", p, b, err)
	}
	return spec
}

func TestProtocolStringsAndPhases(t *testing.T) {
	tests := []struct {
		p          Protocol
		wantName   string
		wantPhases int
	}{
		{DT, "DT", 2},
		{Naive4, "Naive4", 4},
		{MABC, "MABC", 2},
		{TDBC, "TDBC", 3},
		{HBC, "HBC", 4},
		{Protocol(0), "Protocol(0)", 0},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.wantName {
			t.Errorf("String = %q, want %q", got, tt.wantName)
		}
		if got := tt.p.Phases(); got != tt.wantPhases {
			t.Errorf("%v.Phases = %d, want %d", tt.p, got, tt.wantPhases)
		}
	}
	if got := BoundInner.String(); got != "inner" {
		t.Errorf("BoundInner = %q", got)
	}
	if got := BoundOuter.String(); got != "outer" {
		t.Errorf("BoundOuter = %q", got)
	}
	if got := Bound(9).String(); got != "Bound(9)" {
		t.Errorf("Bound(9) = %q", got)
	}
}

func TestScenarioValidate(t *testing.T) {
	tests := []struct {
		name string
		s    Scenario
		ok   bool
	}{
		{name: "good", s: testScenario(10), ok: true},
		{name: "zero power", s: Scenario{P: 0, G: channel.Gains{AB: 1, AR: 1, BR: 1}}, ok: false},
		{name: "bad gains", s: Scenario{P: 1, G: channel.Gains{}}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.s.Validate()
			if tt.ok != (err == nil) {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestLinkInfosFromScenarioClosedForms(t *testing.T) {
	s := testScenario(10) // P = 10, Gab = 10^-0.7, Gar = 1, Gbr = 10^0.5
	li := mustInfos(t, s)
	p := s.P
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"AtoR", li.AtoR, xmath.C(p * 1)},
		{"BtoR", li.BtoR, xmath.C(p * math.Pow(10, 0.5))},
		{"AtoB", li.AtoB, xmath.C(p * math.Pow(10, -0.7))},
		{"BtoA", li.BtoA, li.AtoB}, // reciprocity
		{"RtoA", li.RtoA, li.AtoR},
		{"RtoB", li.RtoB, li.BtoR},
		{"MACAGivenB", li.MACAGivenB, xmath.C(p * 1)},
		{"MACBGivenA", li.MACBGivenA, li.BtoR},
		{"MACSum", li.MACSum, xmath.C(p * (1 + math.Pow(10, 0.5)))},
		{"AtoRB", li.AtoRB, xmath.C(p * (1 + math.Pow(10, -0.7)))},
		{"BtoRA", li.BtoRA, xmath.C(p * (math.Pow(10, 0.5) + math.Pow(10, -0.7)))},
	}
	for _, c := range checks {
		if !xmath.ApproxEqual(c.got, c.want, 1e-12) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if err := li.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLinkInfosValidateNegative(t *testing.T) {
	li := mustInfos(t, testScenario(0))
	li.MACSum = -1
	if err := li.Validate(); err == nil {
		t.Error("negative term should fail validation")
	}
}

func TestCompileShapes(t *testing.T) {
	s := testScenario(10)
	tests := []struct {
		p        Protocol
		b        Bound
		wantCons int
		wantPh   int
		sumCons  int // how many constraints involve both rates
	}{
		{DT, BoundInner, 2, 2, 0},
		{DT, BoundOuter, 2, 2, 0},
		{Naive4, BoundInner, 4, 4, 0},
		{MABC, BoundInner, 5, 2, 1},
		{MABC, BoundOuter, 5, 2, 1},
		{TDBC, BoundInner, 4, 3, 0},
		{TDBC, BoundOuter, 5, 3, 1},
		{HBC, BoundInner, 5, 4, 1},
		{HBC, BoundOuter, 5, 4, 1},
	}
	for _, tt := range tests {
		spec := mustCompile(t, tt.p, tt.b, s)
		if len(spec.Cons) != tt.wantCons {
			t.Errorf("%v/%v: %d constraints, want %d", tt.p, tt.b, len(spec.Cons), tt.wantCons)
		}
		if spec.Phases != tt.wantPh {
			t.Errorf("%v/%v: %d phases, want %d", tt.p, tt.b, spec.Phases, tt.wantPh)
		}
		var both int
		for _, c := range spec.Cons {
			if c.CoefRa != 0 && c.CoefRb != 0 {
				both++
			}
			if len(c.PhaseCap) != spec.Phases {
				t.Errorf("%v/%v %q: PhaseCap has %d entries, want %d", tt.p, tt.b, c.Label, len(c.PhaseCap), spec.Phases)
			}
			if c.Label == "" {
				t.Errorf("%v/%v: unlabeled constraint", tt.p, tt.b)
			}
		}
		if both != tt.sumCons {
			t.Errorf("%v/%v: %d sum constraints, want %d", tt.p, tt.b, both, tt.sumCons)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	li := mustInfos(t, testScenario(0))
	if _, err := Compile(Protocol(42), BoundInner, li); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("unknown protocol: err = %v", err)
	}
	if _, err := Compile(MABC, Bound(42), li); !errors.Is(err, ErrUnknownBound) {
		t.Errorf("unknown bound: err = %v", err)
	}
	bad := li
	bad.AtoR = -1
	if _, err := Compile(MABC, BoundInner, bad); err == nil {
		t.Error("invalid infos should error")
	}
	if _, err := CompileGaussian(MABC, BoundInner, Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
}

func TestHeuristicFlag(t *testing.T) {
	s := testScenario(10)
	for _, p := range Protocols() {
		for _, b := range []Bound{BoundInner, BoundOuter} {
			spec := mustCompile(t, p, b, s)
			wantHeur := p == HBC && b == BoundOuter
			if spec.Heuristic != wantHeur {
				t.Errorf("%v/%v: Heuristic = %v, want %v", p, b, spec.Heuristic, wantHeur)
			}
		}
	}
	relaxed, err := HBCOuterRelaxed(s)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Heuristic {
		t.Error("HBCOuterRelaxed must not be marked heuristic: it is a valid bound")
	}
}

func TestMABCOuterNoRelayDecoding(t *testing.T) {
	s := testScenario(10)
	li := mustInfos(t, s)
	relaxed, err := MABCOuterNoRelayDecoding(li)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed.Cons) != 4 {
		t.Fatalf("relaxed MABC has %d constraints, want 4", len(relaxed.Cons))
	}
	// The relaxed region must contain the capacity region.
	full := mustCompile(t, MABC, BoundInner, s)
	fullR, err := full.Region(RegionOptions{Angles: 61})
	if err != nil {
		t.Fatal(err)
	}
	relaxedR, err := relaxed.Region(RegionOptions{Angles: 61})
	if err != nil {
		t.Fatal(err)
	}
	if !fullR.SubsetOf(relaxedR, 1e-7) {
		t.Error("capacity region must be inside the no-decode outer bound")
	}
	bad := li
	bad.RtoA = -1
	if _, err := MABCOuterNoRelayDecoding(bad); err == nil {
		t.Error("invalid infos should error")
	}
}

func TestHBCOuterRelaxedContainsInner(t *testing.T) {
	for _, pdb := range []float64{0, 10} {
		s := testScenario(pdb)
		inner, err := GaussianRegion(HBC, BoundInner, s, RegionOptions{Angles: 61})
		if err != nil {
			t.Fatal(err)
		}
		relaxedSpec, err := HBCOuterRelaxed(s)
		if err != nil {
			t.Fatal(err)
		}
		relaxed, err := relaxedSpec.Region(RegionOptions{Angles: 61})
		if err != nil {
			t.Fatal(err)
		}
		if !inner.SubsetOf(relaxed, 1e-7) {
			t.Errorf("P=%vdB: HBC inner escapes the relaxed outer bound", pdb)
		}
		// And the relaxed bound must contain the heuristic outer bound too
		// (relaxation can only grow the region).
		heur, err := GaussianRegion(HBC, BoundOuter, s, RegionOptions{Angles: 61})
		if err != nil {
			t.Fatal(err)
		}
		if !heur.SubsetOf(relaxed, 1e-7) {
			t.Errorf("P=%vdB: heuristic HBC outer escapes the relaxed bound", pdb)
		}
	}
}

func TestHBCOuterRelaxedErrors(t *testing.T) {
	if _, err := HBCOuterRelaxed(Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
}
