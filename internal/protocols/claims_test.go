package protocols

// This file verifies the paper's headline findings (Section IV) as
// executable assertions — the qualitative shape of Figs 3 and 4 and the
// textual claims around them.

import (
	"math"
	"testing"

	"bicoop/internal/channel"
	"bicoop/internal/xmath"
)

func TestMABCCapacityTightness(t *testing.T) {
	// Theorem 2 is tight: the MABC inner and outer bounds must coincide for
	// every scenario.
	for _, pdb := range []float64{-10, -3, 0, 7, 14} {
		s := testScenario(pdb)
		inner, err := GaussianRegion(MABC, BoundInner, s, RegionOptions{Angles: 91})
		if err != nil {
			t.Fatal(err)
		}
		outer, err := GaussianRegion(MABC, BoundOuter, s, RegionOptions{Angles: 91})
		if err != nil {
			t.Fatal(err)
		}
		if !inner.SubsetOf(outer, 1e-7) || !outer.SubsetOf(inner, 1e-7) {
			t.Errorf("P=%vdB: MABC inner and outer differ (capacity should be tight)", pdb)
		}
	}
}

func TestInnerInsideOuter(t *testing.T) {
	// Achievability never exceeds the converse, for every protocol and
	// scenario (for HBC the Gaussian outer is the heuristic independent-
	// input evaluation, which still dominates the independent-input inner
	// region by construction).
	for _, pdb := range []float64{-5, 0, 5, 10} {
		s := testScenario(pdb)
		for _, p := range Protocols() {
			inner, err := GaussianRegion(p, BoundInner, s, RegionOptions{Angles: 61})
			if err != nil {
				t.Fatal(err)
			}
			outerSpec := mustCompile(t, p, BoundOuter, s)
			// Exact check via LP feasibility: every inner vertex must be
			// feasible for the outer bound (polygon containment at finite
			// angle resolution under-approximates the outer region, so it
			// is not used here).
			for _, v := range inner.Vertices() {
				// Retract strictly inside to dodge boundary float noise.
				pt := RatePair{Ra: v.Ra * (1 - 1e-9), Rb: v.Rb * (1 - 1e-9)}
				feas, err := outerSpec.Feasible(pt)
				if err != nil {
					t.Fatal(err)
				}
				if !feas {
					t.Errorf("%v at P=%vdB: inner vertex %+v escapes outer bound", p, pdb, v)
				}
			}
		}
	}
}

func TestClaimHBCSumRateDominates(t *testing.T) {
	// "the optimal sum rate of the HBC protocol is always greater than or
	// equal to those of the other protocols since the MABC and TDBC
	// protocols are special cases of the HBC protocol" — and strictly
	// greater somewhere.
	strictly := false
	// Sweep both the Fig 4 gain point over power and the Fig 3 relay
	// placement sweep.
	var scenarios []Scenario
	for _, pdb := range []float64{-10, -5, 0, 5, 10, 15, 20} {
		scenarios = append(scenarios, testScenario(pdb))
	}
	for _, d := range []float64{0.2, 0.3, 0.5, 0.7} {
		scenarios = append(scenarios, Scenario{
			P: xmath.FromDB(15),
			G: placementGains(d, 3),
		})
	}
	for _, s := range scenarios {
		cmp, err := CompareSumRates(s)
		if err != nil {
			t.Fatal(err)
		}
		hbc := cmp.BySumRate[HBC]
		mabc := cmp.BySumRate[MABC]
		tdbc := cmp.BySumRate[TDBC]
		if hbc < mabc-1e-7 || hbc < tdbc-1e-7 {
			t.Errorf("HBC %v below MABC %v or TDBC %v at %+v", hbc, mabc, tdbc, s)
		}
		if hbc > math.Max(mabc, tdbc)+1e-4 {
			strictly = true
		}
		// DT and Naive4 are baselines: HBC at least matches DT through the
		// degenerate allocation only when the direct link is not dominant;
		// no general ordering is asserted for them here.
	}
	if !strictly {
		t.Error("HBC sum rate never strictly exceeded max(MABC, TDBC); the paper finds it does in some regimes")
	}
}

func TestClaimMABCTDBCCrossover(t *testing.T) {
	// "in the low SNR regime, the MABC protocol dominates the TDBC
	// protocol, while the latter is better in the high SNR regime."
	low := testScenario(0)
	high := testScenario(20)
	cmpLow, err := CompareSumRates(low)
	if err != nil {
		t.Fatal(err)
	}
	cmpHigh, err := CompareSumRates(high)
	if err != nil {
		t.Fatal(err)
	}
	if cmpLow.BySumRate[MABC] <= cmpLow.BySumRate[TDBC] {
		t.Errorf("low SNR: MABC %v should dominate TDBC %v",
			cmpLow.BySumRate[MABC], cmpLow.BySumRate[TDBC])
	}
	if cmpHigh.BySumRate[TDBC] <= cmpHigh.BySumRate[MABC] {
		t.Errorf("high SNR: TDBC %v should dominate MABC %v",
			cmpHigh.BySumRate[TDBC], cmpHigh.BySumRate[MABC])
	}
}

func TestClaimHBCOutsideOuterBounds(t *testing.T) {
	// "Surprisingly, we find that in some cases, the achievable rate region
	// of the four phase protocol contains points that are outside the outer
	// bounds of the other two protocols."
	found := false
	for _, pdb := range []float64{0, 5, 10, 15} {
		esc, err := HBCEscapePoints(testScenario(pdb), RegionOptions{Angles: 121})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range esc {
			if e.Margin > 1e-3 {
				found = true
				// Escape witnesses must genuinely be achievable HBC points.
				spec := mustCompile(t, HBC, BoundInner, testScenario(pdb))
				feas, err := spec.Feasible(RatePair{Ra: e.Point.Ra, Rb: e.Point.Rb})
				if err != nil {
					t.Fatal(err)
				}
				if !feas {
					t.Errorf("P=%vdB: escape witness %+v is not HBC-achievable", pdb, e.Point)
				}
			}
		}
	}
	if !found {
		t.Error("no HBC points found outside both MABC and TDBC outer bounds")
	}
}

func TestClaimMABCvsTDBCRegionsLowHighSNR(t *testing.T) {
	// Fig 4's qualitative shape: at low SNR the MABC region contains most
	// of the TDBC region (MABC sum-rate corner dominates); at high SNR the
	// TDBC region pushes past MABC. Compare via max sum rate and area.
	low := testScenario(0)
	high := testScenario(10)
	mabcLow, err := GaussianRegion(MABC, BoundInner, low, RegionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tdbcLow, err := GaussianRegion(TDBC, BoundInner, low, RegionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mabcLow.Area() <= tdbcLow.Area() {
		t.Errorf("P=0dB: MABC area %v should exceed TDBC area %v", mabcLow.Area(), tdbcLow.Area())
	}
	mabcHigh, err := GaussianRegion(MABC, BoundInner, high, RegionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tdbcHigh, err := GaussianRegion(TDBC, BoundInner, high, RegionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// At 10 dB (Fig 4 bottom) TDBC has not yet overtaken MABC in sum rate
	// at these gains, but the regions must already be non-nested: each
	// protocol achieves points the other cannot.
	tdbcEscapes := tdbcHigh.PointsOutside(1e-7, mabcHigh)
	mabcEscapes := mabcHigh.PointsOutside(1e-7, tdbcHigh)
	if len(tdbcEscapes) == 0 && len(mabcEscapes) == 0 {
		t.Error("P=10dB: expected MABC and TDBC regions to be non-nested")
	}
}

func TestFig3ShapeRelayPlacement(t *testing.T) {
	// Shape checks of the Fig 3 reproduction: symmetric in the relay
	// position, HBC strictly above both MABC and TDBC somewhere, TDBC
	// peaking at the midpoint, MABC dipping at the midpoint (its MAC sum
	// constraint binds hardest there at high SNR).
	p := xmath.FromDB(15)
	sum := func(proto Protocol, d float64) float64 {
		res, err := OptimalSumRate(proto, BoundInner, Scenario{P: p, G: placementGains(d, 3)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Sum
	}
	for _, d := range []float64{0.2, 0.35} {
		for _, proto := range Protocols() {
			a, b := sum(proto, d), sum(proto, 1-d)
			if !xmath.ApproxEqual(a, b, 1e-6) {
				t.Errorf("%v: sum rate asymmetric: f(%v)=%v, f(%v)=%v", proto, d, a, 1-d, b)
			}
		}
	}
	strict := false
	for _, d := range []float64{0.25, 0.3, 0.35} {
		h, m, td := sum(HBC, d), sum(MABC, d), sum(TDBC, d)
		if h > math.Max(m, td)+1e-4 {
			strict = true
		}
	}
	if !strict {
		t.Error("HBC not strictly best anywhere in the placement sweep")
	}
	if sum(TDBC, 0.5) <= sum(TDBC, 0.15) {
		t.Error("TDBC should prefer a central relay")
	}
}

// placementGains maps a relay position to line-geometry gains with Gab = 1.
func placementGains(d, gamma float64) channel.Gains {
	return channel.Gains{
		AB: 1,
		AR: math.Pow(d, -gamma),
		BR: math.Pow(1-d, -gamma),
	}
}
