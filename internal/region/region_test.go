package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bicoop/internal/xmath"
)

func mustRegion(t *testing.T, hs []HalfPlane) Polygon {
	t.Helper()
	pg, err := FromHalfPlanes(hs, 100)
	if err != nil {
		t.Fatalf("FromHalfPlanes: %v", err)
	}
	return pg
}

func TestFromHalfPlanesTriangle(t *testing.T) {
	// Ra + Rb <= 1 in the positive quadrant: right triangle of area 1/2.
	pg := mustRegion(t, []HalfPlane{{A: 1, B: 1, C: 1}})
	if !xmath.ApproxEqual(pg.Area(), 0.5, 1e-9) {
		t.Errorf("area = %v, want 0.5", pg.Area())
	}
	if !pg.Contains(Point{0.25, 0.25}, 0) {
		t.Error("interior point not contained")
	}
	if pg.Contains(Point{0.75, 0.75}, 0) {
		t.Error("exterior point contained")
	}
	// Boundary point.
	if !pg.Contains(Point{0.5, 0.5}, 1e-9) {
		t.Error("boundary point not contained")
	}
}

func TestFromHalfPlanesBox(t *testing.T) {
	pg := mustRegion(t, []HalfPlane{
		{A: 1, B: 0, C: 2},
		{A: 0, B: 1, C: 3},
	})
	if !xmath.ApproxEqual(pg.Area(), 6, 1e-9) {
		t.Errorf("area = %v, want 6", pg.Area())
	}
	if got := pg.MaxSumRate(); !xmath.ApproxEqual(got, 5, 1e-9) {
		t.Errorf("MaxSumRate = %v, want 5", got)
	}
}

func TestFromHalfPlanesEmpty(t *testing.T) {
	_, err := FromHalfPlanes([]HalfPlane{
		{A: 1, B: 0, C: -1}, // Ra <= -1 impossible in the quadrant
	}, 10)
	if err == nil {
		t.Fatal("want ErrEmptyRegion")
	}
}

func TestPentagonMACRegion(t *testing.T) {
	// Classic MAC pentagon: Ra <= 1, Rb <= 1.5, Ra+Rb <= 2.
	pg := mustRegion(t, []HalfPlane{
		{A: 1, B: 0, C: 1},
		{A: 0, B: 1, C: 1.5},
		{A: 1, B: 1, C: 2},
	})
	// Vertices: (0,0), (1,0), (1,1), (0.5,1.5), (0,1.5).
	wantArea := 1.0*1.5 - 0.5*0.5*0.5 // box minus cut corner
	if !xmath.ApproxEqual(pg.Area(), wantArea, 1e-9) {
		t.Errorf("area = %v, want %v", pg.Area(), wantArea)
	}
	if got := pg.MaxSumRate(); !xmath.ApproxEqual(got, 2, 1e-9) {
		t.Errorf("MaxSumRate = %v, want 2", got)
	}
	if len(pg.Vertices()) != 5 {
		t.Errorf("vertex count = %d, want 5 (%v)", len(pg.Vertices()), pg.Vertices())
	}
}

func TestConvexHull(t *testing.T) {
	t.Run("square with interior points", func(t *testing.T) {
		pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
		hull := ConvexHull(pts)
		if !xmath.ApproxEqual(hull.Area(), 1, 1e-9) {
			t.Errorf("area = %v, want 1", hull.Area())
		}
		if len(hull.Vertices()) != 4 {
			t.Errorf("vertices = %v, want the 4 corners", hull.Vertices())
		}
	})
	t.Run("collinear", func(t *testing.T) {
		hull := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}})
		if hull.Area() != 0 {
			t.Errorf("area = %v, want 0", hull.Area())
		}
		if len(hull.Vertices()) > 2 {
			t.Errorf("collinear hull has %d vertices", len(hull.Vertices()))
		}
	})
	t.Run("single point", func(t *testing.T) {
		hull := ConvexHull([]Point{{3, 4}})
		if hull.IsEmpty() {
			t.Fatal("single-point hull should not be empty")
		}
		if !hull.Contains(Point{3, 4}, 1e-9) {
			t.Error("hull does not contain its own point")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if !ConvexHull(nil).IsEmpty() {
			t.Error("empty hull should be empty")
		}
	})
	t.Run("duplicates", func(t *testing.T) {
		hull := ConvexHull([]Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}})
		if !xmath.ApproxEqual(hull.Area(), 0.5, 1e-9) {
			t.Errorf("area = %v, want 0.5", hull.Area())
		}
	})
}

func TestContainsDegenerate(t *testing.T) {
	seg := ConvexHull([]Point{{0, 0}, {2, 0}})
	if !seg.Contains(Point{1, 0}, 1e-9) {
		t.Error("segment should contain its midpoint")
	}
	if seg.Contains(Point{1, 0.5}, 1e-9) {
		t.Error("segment should not contain an off-segment point")
	}
	if (Polygon{}).Contains(Point{0, 0}, 1) {
		t.Error("empty polygon contains nothing")
	}
}

func TestSupport(t *testing.T) {
	pg := mustRegion(t, []HalfPlane{
		{A: 1, B: 0, C: 2},
		{A: 0, B: 1, C: 3},
	})
	val, arg := pg.Support(1, 0)
	if !xmath.ApproxEqual(val, 2, 1e-9) {
		t.Errorf("support(1,0) = %v, want 2", val)
	}
	if !xmath.ApproxEqual(arg.Ra, 2, 1e-9) {
		t.Errorf("arg = %+v, want Ra=2", arg)
	}
	val, _ = pg.Support(0, 1)
	if !xmath.ApproxEqual(val, 3, 1e-9) {
		t.Errorf("support(0,1) = %v, want 3", val)
	}
}

func TestSubsetOf(t *testing.T) {
	small := mustRegion(t, []HalfPlane{{A: 1, B: 1, C: 1}})
	big := mustRegion(t, []HalfPlane{{A: 1, B: 1, C: 2}})
	if !small.SubsetOf(big, 1e-9) {
		t.Error("small should be subset of big")
	}
	if big.SubsetOf(small, 1e-9) {
		t.Error("big should not be subset of small")
	}
	if !(Polygon{}).SubsetOf(small, 0) {
		t.Error("empty is subset of anything")
	}
	if small.SubsetOf(Polygon{}, 0) {
		t.Error("nonempty is not subset of empty")
	}
}

func TestRbAt(t *testing.T) {
	pg := mustRegion(t, []HalfPlane{
		{A: 1, B: 0, C: 1},
		{A: 0, B: 1, C: 1.5},
		{A: 1, B: 1, C: 2},
	})
	tests := []struct {
		name   string
		ra     float64
		wantRb float64
		wantOK bool
	}{
		{name: "origin edge", ra: 0, wantRb: 1.5, wantOK: true},
		{name: "pre-corner", ra: 0.5, wantRb: 1.5, wantOK: true},
		{name: "on sum edge", ra: 0.75, wantRb: 1.25, wantOK: true},
		{name: "at max ra", ra: 1, wantRb: 1, wantOK: true},
		{name: "beyond", ra: 1.5, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rb, ok := pg.RbAt(tt.ra)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !xmath.ApproxEqual(rb, tt.wantRb, 1e-9) {
				t.Errorf("RbAt(%v) = %v, want %v", tt.ra, rb, tt.wantRb)
			}
		})
	}
}

func TestUnion(t *testing.T) {
	a := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 2}, {A: 0, B: 1, C: 1}})
	b := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 1}, {A: 0, B: 1, C: 2}})
	u := Union(a, b)
	if !a.SubsetOf(u, 1e-9) || !b.SubsetOf(u, 1e-9) {
		t.Error("union must contain both operands")
	}
	// Time-sharing point (1.5, 1.5) lies in the hull of the two boxes.
	if !u.Contains(Point{1.4, 1.4}, 1e-9) {
		t.Error("union hull should contain the time-sharing midpoint")
	}
	// But not the corner (2, 2).
	if u.Contains(Point{2, 2}, 1e-9) {
		t.Error("union hull should not contain (2,2)")
	}
}

func TestParetoFrontier(t *testing.T) {
	pg := mustRegion(t, []HalfPlane{
		{A: 1, B: 0, C: 1},
		{A: 0, B: 1, C: 1.5},
		{A: 1, B: 1, C: 2},
	})
	fr := pg.ParetoFrontier()
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range fr {
		// No frontier point dominated by another.
		for _, q := range fr {
			if q.Ra > p.Ra+1e-9 && q.Rb > p.Rb+1e-9 {
				t.Errorf("frontier point %+v dominated by %+v", p, q)
			}
		}
		// Origin and pure-axis interior points are excluded.
		if p.Ra <= 1e-9 && p.Rb <= 1e-9 {
			t.Errorf("origin in frontier: %+v", p)
		}
	}
	// Sorted by Ra.
	for i := 1; i < len(fr); i++ {
		if fr[i].Ra < fr[i-1].Ra {
			t.Error("frontier not sorted by Ra")
		}
	}
}

func TestScaleAndSwap(t *testing.T) {
	pg := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 1}, {A: 0, B: 1, C: 2}})
	doubled := pg.Scale(2)
	if !xmath.ApproxEqual(doubled.Area(), 4*pg.Area(), 1e-9) {
		t.Errorf("scaled area = %v, want %v", doubled.Area(), 4*pg.Area())
	}
	sw := pg.Swap()
	if v, _ := sw.Support(1, 0); !xmath.ApproxEqual(v, 2, 1e-9) {
		t.Errorf("swap support Ra = %v, want 2", v)
	}
	if v, _ := sw.Support(0, 1); !xmath.ApproxEqual(v, 1, 1e-9) {
		t.Errorf("swap support Rb = %v, want 1", v)
	}
	// Swap twice is identity (as a set).
	if !sw.Swap().SubsetOf(pg, 1e-9) || !pg.SubsetOf(sw.Swap(), 1e-9) {
		t.Error("double swap is not identity")
	}
}

func TestPointsOutside(t *testing.T) {
	inner := mustRegion(t, []HalfPlane{{A: 1, B: 1, C: 1}})
	outerA := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 0.4}, {A: 0, B: 1, C: 2}})
	outerB := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 2}, {A: 0, B: 1, C: 0.4}})
	// inner's corner (1, 0) escapes outerA (Ra<=0.4) but lies inside outerB;
	// mid-edge points with Ra and Rb both above 0.4 escape both outers.
	esc := inner.PointsOutside(1e-9, outerA, outerB)
	for _, p := range esc {
		if outerA.Contains(p, 1e-9) || outerB.Contains(p, 1e-9) {
			t.Errorf("escape witness %+v is actually contained", p)
		}
	}
	// The diagonal midpoint (0.5, 0.5) escapes both.
	found := false
	for _, p := range esc {
		if samePoint(p, Point{0.5, 0.5}) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected (0.5,0.5) as escape witness, got %v", esc)
	}
}

func TestRandomizedHullInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
		}
		hull := ConvexHull(pts)
		// Every input point is inside the hull.
		for _, p := range pts {
			if !hull.Contains(p, 1e-7) {
				t.Fatalf("trial %d: point %+v outside own hull %v", trial, p, hull.Vertices())
			}
		}
		// Hull vertices are a subset of the inputs.
		for _, v := range hull.Vertices() {
			found := false
			for _, p := range pts {
				if samePoint(v, p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: hull vertex %+v not an input point", trial, v)
			}
		}
		// Area is invariant under a<->b swap.
		if !xmath.ApproxEqual(hull.Area(), hull.Swap().Area(), 1e-6) {
			t.Fatalf("trial %d: swap changed area", trial)
		}
	}
}

func TestClippingAgainstMonteCarloArea(t *testing.T) {
	// Estimate the clipped area by Monte Carlo and compare to shoelace.
	hs := []HalfPlane{
		{A: 2, B: 1, C: 3},
		{A: 1, B: 3, C: 4},
		{A: 1, B: 0, C: 1.2},
	}
	pg, err := FromHalfPlanes(hs, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	const n = 400000
	in := 0
	for i := 0; i < n; i++ {
		p := Point{r.Float64() * 2, r.Float64() * 2}
		ok := true
		for _, h := range hs {
			if h.Eval(p) > 0 {
				ok = false
				break
			}
		}
		if ok {
			in++
		}
	}
	mcArea := 4 * float64(in) / n
	if math.Abs(mcArea-pg.Area()) > 0.02 {
		t.Errorf("Monte Carlo area %v vs shoelace %v", mcArea, pg.Area())
	}
}

func TestDistance(t *testing.T) {
	inner := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 1}, {A: 0, B: 1, C: 1}})
	outer := mustRegion(t, []HalfPlane{{A: 1, B: 0, C: 2}, {A: 0, B: 1, C: 2}})
	t.Run("contained is zero", func(t *testing.T) {
		if d := inner.Distance(outer); d != 0 {
			t.Errorf("Distance(inner, outer) = %v, want 0", d)
		}
	})
	t.Run("protrusion measured", func(t *testing.T) {
		// outer's corner (2,2) is sqrt(2) beyond inner's corner (1,1).
		d := outer.Distance(inner)
		if !xmath.ApproxEqual(d, math.Sqrt2, 1e-6) {
			t.Errorf("Distance(outer, inner) = %v, want sqrt(2)", d)
		}
	})
	t.Run("self distance zero", func(t *testing.T) {
		if d := inner.Distance(inner); d != 0 {
			t.Errorf("self distance = %v", d)
		}
	})
	t.Run("empty cases", func(t *testing.T) {
		if d := (Polygon{}).Distance(inner); d != 0 {
			t.Errorf("empty source distance = %v", d)
		}
		if d := inner.Distance(Polygon{}); !math.IsInf(d, 1) {
			t.Errorf("empty target distance = %v, want +Inf", d)
		}
	})
	t.Run("degenerate target point", func(t *testing.T) {
		pt := ConvexHull([]Point{{0, 0}})
		seg := ConvexHull([]Point{{0, 0}, {3, 4}})
		if d := seg.Distance(pt); !xmath.ApproxEqual(d, 5, 1e-9) {
			t.Errorf("distance to point = %v, want 5", d)
		}
	})
}

func TestConvexHullIdempotentProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * 5, r.Float64() * 5}
		}
		h1 := ConvexHull(pts)
		h2 := ConvexHull(h1.Vertices())
		return h1.SubsetOf(h2, 1e-9) && h2.SubsetOf(h1, 1e-9) &&
			xmath.ApproxEqual(h1.Area(), h2.Area(), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
