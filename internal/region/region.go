// Package region represents two-dimensional rate regions — the sets of
// achievable (Ra, Rb) pairs of the paper's Theorems 2-6 — as convex polygons
// in the non-negative quadrant. It provides construction from half-plane
// constraints, convex hulls, containment tests, Pareto frontiers, unions, and
// comparison utilities used to verify the paper's region-inclusion claims
// (e.g., "some achievable HBC rate pairs are outside the outer bounds of the
// MABC and TDBC protocols").
package region

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a rate pair (Ra, Rb) in bits per channel use.
type Point struct {
	Ra, Rb float64
}

// HalfPlane is the constraint A·Ra + B·Rb ≤ C.
type HalfPlane struct {
	A, B, C float64
}

// Eval returns A·Ra + B·Rb - C; non-positive values satisfy the constraint.
func (h HalfPlane) Eval(p Point) float64 {
	return h.A*p.Ra + h.B*p.Rb - h.C
}

// ErrEmptyRegion is returned when an intersection of half-planes is empty.
var ErrEmptyRegion = errors.New("region: empty region")

// Polygon is a convex polygon with vertices in counter-clockwise order.
// A nil/empty polygon is the empty region. Rate regions always include the
// origin and the axes segments down from any achievable point (rates can be
// reduced), so constructors clip to the non-negative quadrant.
type Polygon struct {
	v []Point
}

// Vertices returns a copy of the polygon's vertex list.
func (pg Polygon) Vertices() []Point {
	out := make([]Point, len(pg.v))
	copy(out, pg.v)
	return out
}

// IsEmpty reports whether the polygon has no area and no vertices.
func (pg Polygon) IsEmpty() bool { return len(pg.v) == 0 }

// eps is the geometric tolerance for clipping and dedup.
const eps = 1e-9

// FromHalfPlanes intersects the given half-planes with the non-negative
// quadrant and a generous bounding box, returning the resulting convex
// polygon. The box edge must exceed any achievable rate in this module
// (rates are at most ~C(P·G) ≈ tens of bits).
func FromHalfPlanes(hs []HalfPlane, boxEdge float64) (Polygon, error) {
	if boxEdge <= 0 {
		boxEdge = 1e6
	}
	// Start from the box [0, boxEdge]^2 as a CCW polygon.
	poly := []Point{{0, 0}, {boxEdge, 0}, {boxEdge, boxEdge}, {0, boxEdge}}
	for _, h := range hs {
		poly = clip(poly, h)
		if len(poly) == 0 {
			return Polygon{}, fmt.Errorf("%w: after constraint %+v", ErrEmptyRegion, h)
		}
	}
	return Polygon{v: dedupe(poly)}, nil
}

// clip applies Sutherland-Hodgman clipping of a CCW polygon against the
// feasible side of h.
func clip(poly []Point, h HalfPlane) []Point {
	if len(poly) == 0 {
		return nil
	}
	out := make([]Point, 0, len(poly)+2)
	for i := range poly {
		cur := poly[i]
		prev := poly[(i+len(poly)-1)%len(poly)]
		curIn := h.Eval(cur) <= eps
		prevIn := h.Eval(prev) <= eps
		switch {
		case curIn && prevIn:
			out = append(out, cur)
		case curIn && !prevIn:
			out = append(out, intersect(prev, cur, h), cur)
		case !curIn && prevIn:
			out = append(out, intersect(prev, cur, h))
		}
	}
	return out
}

// intersect returns the point where segment pq crosses the boundary of h.
func intersect(p, q Point, h HalfPlane) Point {
	fp, fq := h.Eval(p), h.Eval(q)
	t := fp / (fp - fq)
	if math.IsNaN(t) || math.IsInf(t, 0) {
		t = 0.5
	}
	return Point{
		Ra: p.Ra + t*(q.Ra-p.Ra),
		Rb: p.Rb + t*(q.Rb-p.Rb),
	}
}

func dedupe(poly []Point) []Point {
	if len(poly) == 0 {
		return nil
	}
	out := make([]Point, 0, len(poly))
	for _, p := range poly {
		if len(out) > 0 && samePoint(out[len(out)-1], p) {
			continue
		}
		out = append(out, p)
	}
	for len(out) > 1 && samePoint(out[0], out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

func samePoint(a, b Point) bool {
	return math.Abs(a.Ra-b.Ra) <= eps && math.Abs(a.Rb-b.Rb) <= eps
}

// ConvexHull returns the convex hull of the given points (Andrew's monotone
// chain), as a CCW polygon. Degenerate inputs (all collinear) yield the
// extreme segment or point.
func ConvexHull(pts []Point) Polygon {
	if len(pts) == 0 {
		return Polygon{}
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	// Snap near-zero coordinates to exactly zero: optimizer outputs carry
	// O(1e-16) jitter, and a point like (-1e-16, y) sorts ahead of (0, 0),
	// separating it from its true duplicate (0, y) and corrupting the chain.
	for i := range ps {
		if math.Abs(ps[i].Ra) < eps {
			ps[i].Ra = 0
		}
		if math.Abs(ps[i].Rb) < eps {
			ps[i].Rb = 0
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Ra != ps[j].Ra {
			return ps[i].Ra < ps[j].Ra
		}
		return ps[i].Rb < ps[j].Rb
	})
	// Remove duplicates.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !samePoint(uniq[len(uniq)-1], p) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) == 1 {
		return Polygon{v: ps}
	}
	cross := func(o, a, b Point) float64 {
		return (a.Ra-o.Ra)*(b.Rb-o.Rb) - (a.Rb-o.Rb)*(b.Ra-o.Ra)
	}
	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= eps {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= eps {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Polygon{v: dedupe(hull)}
}

// Contains reports whether p lies in the polygon (within tol; tol <= 0 uses
// the package default).
func (pg Polygon) Contains(p Point, tol float64) bool {
	if tol <= 0 {
		tol = eps
	}
	n := len(pg.v)
	if n == 0 {
		return false
	}
	if n == 1 {
		return math.Abs(p.Ra-pg.v[0].Ra) <= tol && math.Abs(p.Rb-pg.v[0].Rb) <= tol
	}
	if n == 2 {
		// Degenerate segment: distance to segment within tol.
		return distToSegment(p, pg.v[0], pg.v[1]) <= tol
	}
	for i := 0; i < n; i++ {
		a, b := pg.v[i], pg.v[(i+1)%n]
		// CCW: interior is to the left of each edge.
		crossV := (b.Ra-a.Ra)*(p.Rb-a.Rb) - (b.Rb-a.Rb)*(p.Ra-a.Ra)
		// Scale tolerance by edge length so long edges are not stricter.
		length := math.Hypot(b.Ra-a.Ra, b.Rb-a.Rb)
		if crossV < -tol*math.Max(length, 1) {
			return false
		}
	}
	return true
}

func distToSegment(p, a, b Point) float64 {
	dx, dy := b.Ra-a.Ra, b.Rb-a.Rb
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(p.Ra-a.Ra, p.Rb-a.Rb)
	}
	t := ((p.Ra-a.Ra)*dx + (p.Rb-a.Rb)*dy) / l2
	t = math.Max(0, math.Min(1, t))
	return math.Hypot(p.Ra-(a.Ra+t*dx), p.Rb-(a.Rb+t*dy))
}

// Area returns the polygon's area by the shoelace formula.
func (pg Polygon) Area() float64 {
	n := len(pg.v)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		a, b := pg.v[i], pg.v[(i+1)%n]
		s += a.Ra*b.Rb - b.Ra*a.Rb
	}
	return math.Abs(s) / 2
}

// Support returns the support value max{ u·Ra + v·Rb : (Ra,Rb) in region }
// and an attaining vertex.
func (pg Polygon) Support(u, v float64) (float64, Point) {
	best := math.Inf(-1)
	var arg Point
	for _, p := range pg.v {
		if val := u*p.Ra + v*p.Rb; val > best {
			best, arg = val, p
		}
	}
	return best, arg
}

// MaxSumRate returns max Ra+Rb over the region, 0 for the empty region.
func (pg Polygon) MaxSumRate() float64 {
	if pg.IsEmpty() {
		return 0
	}
	s, _ := pg.Support(1, 1)
	return math.Max(s, 0)
}

// SubsetOf reports whether every vertex of pg lies inside other (within tol).
// For convex polygons this is equivalent to region inclusion.
func (pg Polygon) SubsetOf(other Polygon, tol float64) bool {
	if pg.IsEmpty() {
		return true
	}
	if other.IsEmpty() {
		return false
	}
	for _, p := range pg.v {
		if !other.Contains(p, tol) {
			return false
		}
	}
	return true
}

// ParetoFrontier returns the polygon's Pareto-efficient boundary points
// (vertices not dominated by any other vertex), sorted by increasing Ra.
func (pg Polygon) ParetoFrontier() []Point {
	var out []Point
	for _, p := range pg.v {
		dominated := false
		for _, q := range pg.v {
			if q.Ra >= p.Ra+eps && q.Rb >= p.Rb-eps || q.Ra >= p.Ra-eps && q.Rb >= p.Rb+eps {
				if q.Ra >= p.Ra && q.Rb >= p.Rb && !samePoint(p, q) {
					dominated = true
					break
				}
			}
		}
		if !dominated && (p.Ra > eps || p.Rb > eps) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ra < out[j].Ra })
	return out
}

// RbAt returns the maximum Rb such that (ra, Rb) is in the region, or
// (0, false) if ra exceeds the region's Ra range.
func (pg Polygon) RbAt(ra float64) (float64, bool) {
	if pg.IsEmpty() {
		return 0, false
	}
	maxRa, _ := pg.Support(1, 0)
	if ra > maxRa+eps {
		return 0, false
	}
	best := math.Inf(-1)
	n := len(pg.v)
	found := false
	for i := 0; i < n; i++ {
		a, b := pg.v[i], pg.v[(i+1)%n]
		lo, hi := a, b
		if lo.Ra > hi.Ra {
			lo, hi = hi, lo
		}
		if ra < lo.Ra-eps || ra > hi.Ra+eps {
			continue
		}
		var rb float64
		if math.Abs(hi.Ra-lo.Ra) <= eps {
			rb = math.Max(lo.Rb, hi.Rb)
		} else {
			t := (ra - lo.Ra) / (hi.Ra - lo.Ra)
			rb = lo.Rb + t*(hi.Rb-lo.Rb)
		}
		if rb > best {
			best = rb
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return math.Max(best, 0), true
}

// Union returns the convex hull of the union of the polygons (the time-
// sharing closure of operating points drawn from each).
func Union(pgs ...Polygon) Polygon {
	var pts []Point
	for _, pg := range pgs {
		pts = append(pts, pg.v...)
	}
	return ConvexHull(pts)
}

// Scale returns the polygon with both coordinates multiplied by k >= 0.
func (pg Polygon) Scale(k float64) Polygon {
	out := make([]Point, len(pg.v))
	for i, p := range pg.v {
		out[i] = Point{Ra: k * p.Ra, Rb: k * p.Rb}
	}
	return Polygon{v: out}
}

// Swap returns the polygon reflected across the Ra = Rb diagonal (the a<->b
// role swap used in symmetry tests).
func (pg Polygon) Swap() Polygon {
	pts := make([]Point, len(pg.v))
	for i, p := range pg.v {
		pts[i] = Point{Ra: p.Rb, Rb: p.Ra}
	}
	return ConvexHull(pts)
}

// Distance returns the directed Hausdorff-style distance from pg to other:
// the maximum, over sampled boundary points of pg, of the point's Euclidean
// distance to other's boundary (zero when the point is inside). It measures
// how far pg protrudes beyond other; Distance(inner, outer) ≈ 0 certifies
// containment, and max(Distance(a,b), Distance(b,a)) is a symmetric gap
// metric between two bounds.
func (pg Polygon) Distance(other Polygon) float64 {
	if pg.IsEmpty() {
		return 0
	}
	if other.IsEmpty() {
		return math.Inf(1)
	}
	const edgeSamples = 16
	var worst float64
	n := len(pg.v)
	measure := func(p Point) {
		if other.Contains(p, eps) {
			return
		}
		best := math.Inf(1)
		m := len(other.v)
		for i := 0; i < m; i++ {
			d := distToSegment(p, other.v[i], other.v[(i+1)%m])
			if d < best {
				best = d
			}
		}
		if m == 1 {
			best = math.Hypot(p.Ra-other.v[0].Ra, p.Rb-other.v[0].Rb)
		}
		if best > worst {
			worst = best
		}
	}
	for i := 0; i < n; i++ {
		a := pg.v[i]
		measure(a)
		if n < 2 {
			continue
		}
		b := pg.v[(i+1)%n]
		for k := 1; k < edgeSamples; k++ {
			t := float64(k) / edgeSamples
			measure(Point{Ra: a.Ra + t*(b.Ra-a.Ra), Rb: a.Rb + t*(b.Rb-a.Rb)})
		}
	}
	return worst
}

// PointsOutside returns boundary points of pg that are not contained in any
// of the others (within tol): witnesses that pg escapes the union of the
// others. Both vertices and sampled points along each edge are tested, since
// an escape witness can lie strictly between two vertices (this is exactly
// how the paper's "HBC points outside both outer bounds" claim manifests).
func (pg Polygon) PointsOutside(tol float64, others ...Polygon) []Point {
	const edgeSamples = 32
	n := len(pg.v)
	var out []Point
	seen := make(map[[2]float64]bool, n*edgeSamples)
	test := func(p Point) {
		key := [2]float64{math.Round(p.Ra / eps), math.Round(p.Rb / eps)}
		if seen[key] {
			return
		}
		seen[key] = true
		for _, o := range others {
			if o.Contains(p, tol) {
				return
			}
		}
		out = append(out, p)
	}
	for i := 0; i < n; i++ {
		a := pg.v[i]
		test(a)
		if n < 2 {
			continue
		}
		b := pg.v[(i+1)%n]
		for k := 1; k < edgeSamples; k++ {
			t := float64(k) / edgeSamples
			test(Point{Ra: a.Ra + t*(b.Ra-a.Ra), Rb: a.Rb + t*(b.Rb-a.Rb)})
		}
	}
	return out
}
