// Package plot renders the reproduction's figures as ASCII line charts and
// aligned tables, and emits CSV for external plotting. It keeps the module
// free of graphics dependencies while still letting a terminal user see the
// shape of Figs 3 and 4.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Errors returned by this package.
var (
	ErrNoData = errors.New("plot: no data")
	ErrShape  = errors.New("plot: series length mismatch")
)

// Series is one named curve sampled at shared X positions.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a multi-series ASCII line chart over a shared X axis.
type Chart struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// X holds the shared x positions (ascending).
	X []float64
	// Series holds the curves.
	Series []Series
	// Width and Height are the plot area size in characters; zero values
	// default to 72x20.
	Width, Height int
}

// seriesMarks assigns one glyph per series, cycling if necessary.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart to w.
func (c Chart) Render(w io.Writer) error {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return ErrNoData
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("%w: series %q has %d points, x has %d", ErrShape, s.Name, len(s.Y), len(c.X))
		}
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	xmin, xmax := c.X[0], c.X[len(c.X)-1]
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		return ErrNoData
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			col := int(math.Round((c.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3f", ymin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3f%*.3f\n", strings.Repeat(" ", 8), width/2, xmin, width-width/2, xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), c.XLabel)
	}
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
	_, err := io.WriteString(w, b.String())
	return err
}

// TableRenderer is the common interface of the two table flavours: the
// string-celled Table and the numeric streaming ColumnTable. Both render an
// aligned text table and a CSV twin of the same values.
type TableRenderer interface {
	Render(w io.Writer) error
	WriteCSV(w io.Writer) error
}

// Table renders rows of labeled numeric columns with aligned headers — the
// textual twin of each figure, listing the exact values.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of preformatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNumericRow appends a row formatting every float with 4 decimals after
// an initial label column.
func (t *Table) AddNumericRow(label string, values ...float64) {
	cells := make([]string, 0, 1+len(values))
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, strconv.FormatFloat(v, 'f', 4, 64))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table to w.
func (t Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return ErrNoData
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the table as CSV: the header row followed by every data
// row, cells escaped as needed.
func (t Table) WriteCSV(w io.Writer) error {
	if len(t.Headers) == 0 {
		return ErrNoData
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Headers {
			if i > 0 {
				b.WriteByte(',')
			}
			if i < len(cells) {
				b.WriteString(csvEscape(cells[i]))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Col describes one ColumnTable column: its header and the fixed decimal
// precision its text rendering uses (negative selects the shortest
// round-trip form; CSV output always uses that form regardless).
type Col struct {
	Name string
	Prec int
}

// ColumnTable is the streaming twin of Table for purely numeric figures.
// Producers append raw float rows as a sweep streams by — no per-cell
// fmt.Sprintf on the accumulation path — and every cell is formatted in a
// single strconv pass when the table is rendered or flushed to CSV. This is
// what moved the figure experiments from formatting-bound to math-bound.
type ColumnTable struct {
	Title string
	Cols  []Col
	cells []float64 // row-major accumulation
}

// NewColumnTable builds an empty table with the given columns.
func NewColumnTable(title string, cols ...Col) *ColumnTable {
	return &ColumnTable{Title: title, Cols: cols}
}

// Append adds one row of raw values. It panics on an arity mismatch — a
// programmer error, like a malformed format string.
func (t *ColumnTable) Append(row ...float64) {
	if len(row) != len(t.Cols) {
		panic(fmt.Sprintf("plot: ColumnTable row has %d cells, table has %d columns", len(row), len(t.Cols)))
	}
	t.cells = append(t.cells, row...)
}

// Rows returns the number of appended rows.
func (t *ColumnTable) Rows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.cells) / len(t.Cols)
}

// Column returns a copy of one accumulated column — handy for deriving
// findings from the same numbers the table renders.
func (t *ColumnTable) Column(i int) []float64 {
	n := t.Rows()
	out := make([]float64, n)
	for r := 0; r < n; r++ {
		out[r] = t.cells[r*len(t.Cols)+i]
	}
	return out
}

// format writes every cell once into a shared arena using each column's
// precision and returns per-cell spans — the single formatting pass both
// Render and WriteCSV are built on.
func (t *ColumnTable) format(csv bool) (arena []byte, spans [][2]int) {
	spans = make([][2]int, len(t.cells))
	arena = make([]byte, 0, 12*len(t.cells))
	nc := len(t.Cols)
	for i, v := range t.cells {
		start := len(arena)
		prec := t.Cols[i%nc].Prec
		if csv || prec < 0 {
			arena = strconv.AppendFloat(arena, v, 'g', -1, 64)
		} else {
			arena = strconv.AppendFloat(arena, v, 'f', prec, 64)
		}
		spans[i] = [2]int{start, len(arena)}
	}
	return arena, spans
}

// Render writes the aligned text table to w.
func (t *ColumnTable) Render(w io.Writer) error {
	if len(t.Cols) == 0 {
		return ErrNoData
	}
	arena, spans := t.format(false)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c.Name)
	}
	for i, sp := range spans {
		if l := sp[1] - sp[0]; l > widths[i%len(t.Cols)] {
			widths[i%len(t.Cols)] = l
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	pad := func(n int) {
		for ; n > 0; n-- {
			b.WriteByte(' ')
		}
	}
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(c.Name)
		pad(widths[i] - len(c.Name))
	}
	b.WriteByte('\n')
	for i := range t.Cols {
		if i > 0 {
			b.WriteString("  ")
		}
		for n := widths[i]; n > 0; n-- {
			b.WriteByte('-')
		}
	}
	b.WriteByte('\n')
	nc := len(t.Cols)
	for i, sp := range spans {
		col := i % nc
		if col > 0 {
			b.WriteString("  ")
		}
		cell := arena[sp[0]:sp[1]]
		b.Write(cell)
		if col == nc-1 {
			b.WriteByte('\n')
		} else {
			pad(widths[col] - len(cell))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the accumulated columns as CSV in full (round-trip)
// precision.
func (t *ColumnTable) WriteCSV(w io.Writer) error {
	if len(t.Cols) == 0 {
		return ErrNoData
	}
	arena, spans := t.format(true)
	var b strings.Builder
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(c.Name))
	}
	b.WriteByte('\n')
	nc := len(t.Cols)
	for i, sp := range spans {
		if col := i % nc; col > 0 {
			b.WriteByte(',')
		}
		b.Write(arena[sp[0]:sp[1]])
		if i%nc == nc-1 {
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the chart data as CSV: x column followed by one column per
// series.
func (c Chart) WriteCSV(w io.Writer) error {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return ErrNoData
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("%w: series %q", ErrShape, s.Name)
		}
	}
	var b strings.Builder
	b.WriteString("x")
	for _, s := range c.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for i, x := range c.X {
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range c.Series {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RegionPlot renders one or more rate-region frontiers (as (Ra, Rb) vertex
// sequences) on a shared scatter grid — the ASCII twin of Fig 4.
type RegionPlot struct {
	Title  string
	Curves []RegionCurve
	Width  int
	Height int
}

// RegionCurve is one region frontier to draw.
type RegionCurve struct {
	Name   string
	Points []struct{ Ra, Rb float64 }
}

// CurveFromPairs converts coordinate pairs into a RegionCurve.
func CurveFromPairs(name string, ra, rb []float64) (RegionCurve, error) {
	if len(ra) != len(rb) {
		return RegionCurve{}, fmt.Errorf("%w: %d vs %d", ErrShape, len(ra), len(rb))
	}
	c := RegionCurve{Name: name}
	c.Points = make([]struct{ Ra, Rb float64 }, len(ra))
	for i := range ra {
		c.Points[i] = struct{ Ra, Rb float64 }{ra[i], rb[i]}
	}
	return c, nil
}

// Render draws the region scatter to w.
func (rp RegionPlot) Render(w io.Writer) error {
	if len(rp.Curves) == 0 {
		return ErrNoData
	}
	width, height := rp.Width, rp.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 24
	}
	var maxRa, maxRb float64
	for _, c := range rp.Curves {
		for _, p := range c.Points {
			maxRa = math.Max(maxRa, p.Ra)
			maxRb = math.Max(maxRb, p.Rb)
		}
	}
	if maxRa == 0 {
		maxRa = 1
	}
	if maxRb == 0 {
		maxRb = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range rp.Curves {
		mark := seriesMarks[ci%len(seriesMarks)]
		// Draw interpolated segments between consecutive frontier points so
		// the region boundary reads as a curve.
		pts := c.Points
		sort.Slice(pts, func(i, j int) bool { return pts[i].Ra < pts[j].Ra })
		for i := 0; i < len(pts); i++ {
			plotAt(grid, pts[i].Ra/maxRa, pts[i].Rb/maxRb, mark, width, height)
			if i+1 < len(pts) {
				const interp = 12
				for k := 1; k < interp; k++ {
					t := float64(k) / interp
					ra := pts[i].Ra + t*(pts[i+1].Ra-pts[i].Ra)
					rb := pts[i].Rb + t*(pts[i+1].Rb-pts[i].Rb)
					plotAt(grid, ra/maxRa, rb/maxRb, mark, width, height)
				}
			}
		}
	}
	var b strings.Builder
	if rp.Title != "" {
		fmt.Fprintf(&b, "%s\n", rp.Title)
	}
	fmt.Fprintf(&b, "Rb (max %.3f)\n", maxRb)
	for _, line := range grid {
		fmt.Fprintf(&b, " |%s|\n", string(line))
	}
	fmt.Fprintf(&b, " +%s+ Ra (max %.3f)\n", strings.Repeat("-", width), maxRa)
	legend := make([]string, 0, len(rp.Curves))
	for ci, c := range rp.Curves {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[ci%len(seriesMarks)], c.Name))
	}
	fmt.Fprintf(&b, " legend: %s\n", strings.Join(legend, "   "))
	_, err := io.WriteString(w, b.String())
	return err
}

func plotAt(grid [][]byte, xFrac, yFrac float64, mark byte, width, height int) {
	col := int(math.Round(xFrac * float64(width-1)))
	row := height - 1 - int(math.Round(yFrac*float64(height-1)))
	if col >= 0 && col < width && row >= 0 && row < height {
		grid[row][col] = mark
	}
}
