package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	var sb strings.Builder
	c := Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "lin", Y: []float64{0, 1, 2, 3}},
			{Name: "quad", Y: []float64{0, 1, 4, 9}},
		},
		Width:  40,
		Height: 10,
	}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "legend:", "* lin", "o quad", "9.000", "0.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Plot area lines have the expected width.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) != 40 {
				t.Errorf("plot row width %d, want 40: %q", len(inner), line)
			}
		}
	}
}

func TestChartErrors(t *testing.T) {
	var sb strings.Builder
	if err := (Chart{}).Render(&sb); !errors.Is(err, ErrNoData) {
		t.Errorf("empty chart: err = %v", err)
	}
	bad := Chart{X: []float64{0, 1}, Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := bad.Render(&sb); !errors.Is(err, ErrShape) {
		t.Errorf("ragged chart: err = %v", err)
	}
	nan := Chart{X: []float64{0, 1}, Series: []Series{{Name: "s", Y: []float64{math.NaN(), math.NaN()}}}}
	if err := nan.Render(&sb); !errors.Is(err, ErrNoData) {
		t.Errorf("all-NaN chart: err = %v", err)
	}
}

func TestChartFlatSeries(t *testing.T) {
	// A constant series must not divide by zero.
	var sb strings.Builder
	c := Chart{
		X:      []float64{0, 1},
		Series: []Series{{Name: "flat", Y: []float64{2, 2}}},
	}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	var sb strings.Builder
	tab := Table{
		Title:   "numbers",
		Headers: []string{"name", "v1", "v2"},
	}
	tab.AddNumericRow("alpha", 1.5, 2.25)
	tab.AddRow("beta", "x", "y")
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"numbers", "name", "alpha", "1.5000", "2.2500", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
}

func TestTableEmpty(t *testing.T) {
	var sb strings.Builder
	if err := (Table{}).Render(&sb); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	c := Chart{
		X: []float64{0, 0.5},
		Series: []Series{
			{Name: "plain", Y: []float64{1, 2}},
			{Name: "with,comma", Y: []float64{3, 4}},
		},
	}
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "x,plain,\"with,comma\"\n0,1,3\n0.5,2,4\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := (Chart{}).WriteCSV(&sb); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	bad := Chart{X: []float64{0}, Series: []Series{{Name: "s", Y: nil}}}
	if err := bad.WriteCSV(&sb); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestRegionPlot(t *testing.T) {
	curve, err := CurveFromPairs("r1", []float64{0, 1, 2}, []float64{2, 1.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rp := RegionPlot{
		Title:  "regions",
		Curves: []RegionCurve{curve},
		Width:  30,
		Height: 12,
	}
	if err := rp.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"regions", "legend:", "* r1", "max 2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegionPlotErrors(t *testing.T) {
	var sb strings.Builder
	if err := (RegionPlot{}).Render(&sb); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := CurveFromPairs("bad", []float64{1}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestRegionPlotDegenerate(t *testing.T) {
	// All-zero curves must not divide by zero.
	curve, err := CurveFromPairs("zero", []float64{0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := (RegionPlot{Curves: []RegionCurve{curve}}).Render(&sb); err != nil {
		t.Fatal(err)
	}
}
