package plot

import (
	"errors"
	"strings"
	"testing"
)

func sampleColumnTable() *ColumnTable {
	t := NewColumnTable("sample",
		Col{Name: "x", Prec: 2},
		Col{Name: "wide header", Prec: 4},
		Col{Name: "g", Prec: -1},
	)
	t.Append(0.05, 1.23456789, 0.5)
	t.Append(10, -2, 1.0/3)
	return t
}

func TestColumnTableRender(t *testing.T) {
	ct := sampleColumnTable()
	var sb strings.Builder
	if err := ct.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want title+header+sep+2 rows:\n%s", len(lines), out)
	}
	if lines[0] != "sample" {
		t.Errorf("title line %q", lines[0])
	}
	for _, want := range []string{"0.05", "1.2346", "-2.0000", "0.3333333333333333"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Alignment: the separator row mirrors the widest cell of each column.
	if !strings.Contains(out, "wide header") || !strings.Contains(out, "-----------") {
		t.Errorf("header alignment broken:\n%s", out)
	}
}

func TestColumnTableCSV(t *testing.T) {
	ct := sampleColumnTable()
	var sb strings.Builder
	if err := ct.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), sb.String())
	}
	if lines[0] != "x,wide header,g" {
		t.Errorf("header row %q", lines[0])
	}
	// CSV always uses full round-trip precision, regardless of Prec.
	if lines[1] != "0.05,1.23456789,0.5" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestColumnTableAccessors(t *testing.T) {
	ct := sampleColumnTable()
	if ct.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", ct.Rows())
	}
	col := ct.Column(1)
	if len(col) != 2 || col[0] != 1.23456789 || col[1] != -2 {
		t.Errorf("Column(1) = %v", col)
	}
}

func TestColumnTableEmpty(t *testing.T) {
	var ct ColumnTable
	if err := ct.Render(&strings.Builder{}); !errors.Is(err, ErrNoData) {
		t.Errorf("Render err = %v, want ErrNoData", err)
	}
	if err := ct.WriteCSV(&strings.Builder{}); !errors.Is(err, ErrNoData) {
		t.Errorf("WriteCSV err = %v, want ErrNoData", err)
	}
}

func TestColumnTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	NewColumnTable("t", Col{Name: "a"}).Append(1, 2)
}

func TestTableWriteCSV(t *testing.T) {
	tab := Table{
		Headers: []string{"name", "value"},
		Rows:    [][]string{{"plain", "1"}, {`needs "quoting", yes`, "2"}},
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1\n\"needs \"\"quoting\"\", yes\",2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
	if err := (Table{}).WriteCSV(&sb); !errors.Is(err, ErrNoData) {
		t.Errorf("empty table err = %v, want ErrNoData", err)
	}
}

// TestTableRendererInterface pins that both table flavours satisfy the
// interface the experiments Result carries.
func TestTableRendererInterface(t *testing.T) {
	var renderers = []TableRenderer{
		Table{Headers: []string{"h"}, Rows: [][]string{{"v"}}},
		sampleColumnTable(),
	}
	for i, r := range renderers {
		var sb strings.Builder
		if err := r.Render(&sb); err != nil {
			t.Errorf("renderer %d Render: %v", i, err)
		}
		if err := r.WriteCSV(&sb); err != nil {
			t.Errorf("renderer %d WriteCSV: %v", i, err)
		}
	}
}
