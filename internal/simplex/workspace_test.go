package simplex

import (
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/xmath"
)

// randomBoundedLP draws a random LP with box constraints so it always has a
// finite optimum: maximize c·x s.t. random inequality rows plus x_i ≤ 10.
func randomBoundedLP(rng *rand.Rand) Problem {
	n := 2 + rng.Intn(5)
	mIneq := 1 + rng.Intn(5)
	p := Problem{C: make([]float64, n)}
	for j := range p.C {
		p.C[j] = rng.NormFloat64()
	}
	for i := 0; i < mIneq; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, 2*rng.NormFloat64())
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, 10)
	}
	if rng.Intn(2) == 0 {
		// A random convex-combination equality keeps the LP interesting but
		// feasible: sum of a random subset equals a reachable value.
		row := make([]float64, n)
		for j := range row {
			row[j] = 1
		}
		p.AEq = append(p.AEq, row)
		p.BEq = append(p.BEq, 1+4*rng.Float64())
	}
	return p
}

// TestSolveInMatchesSolve checks the workspace entry point against the
// allocating wrapper across random LPs, reusing one workspace throughout so
// shape changes between solves are exercised too.
func TestSolveInMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ws Workspace
	agreed := 0
	for trial := 0; trial < 300; trial++ {
		p := randomBoundedLP(rng)
		ref, refErr := p.Solve()
		got, gotErr := p.SolveIn(&ws)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: Solve err %v vs SolveIn err %v", trial, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		if !xmath.ApproxEqual(ref.Objective, got.Objective, 1e-7*(1+math.Abs(ref.Objective))) {
			t.Errorf("trial %d: objective %g vs %g", trial, ref.Objective, got.Objective)
		}
		agreed++
	}
	if agreed < 100 {
		t.Fatalf("only %d solvable trials; generator too restrictive", agreed)
	}
}

// TestSolveInZeroAllocs asserts the steady-state workspace solve does not
// allocate once the workspace has grown to the problem size.
func TestSolveInZeroAllocs(t *testing.T) {
	p := Problem{
		C: []float64{1, 1, 0, 0, 0},
		AUb: [][]float64{
			{1, 0, -1.14, 0, 0},
			{1, 0, -0.26, 0, -2.05},
			{0, 1, 0, -2.05, 0},
			{0, 1, 0, -0.26, -1.0},
			{1, 1, -1.0, -2.05, 0},
		},
		BUb: []float64{0, 0, 0, 0, 0},
		AEq: [][]float64{{0, 0, 1, 1, 1}},
		BEq: []float64{1},
	}
	var ws Workspace
	if _, err := p.SolveIn(&ws); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := p.SolveIn(&ws); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("SolveIn allocates %.1f/op, want 0", n)
	}
}

// TestSolveInShrinkGrow reuses one workspace across alternating problem
// sizes to catch stale-state bugs (leftover tableau entries, basis indices).
func TestSolveInShrinkGrow(t *testing.T) {
	big := Problem{
		C:   []float64{3, 5, 0, 1},
		AUb: [][]float64{{1, 0, 0, 0}, {0, 2, 0, 1}, {3, 2, 1, 0}},
		BUb: []float64{4, 12, 18},
	}
	small := Problem{
		C:   []float64{1, 1},
		AUb: [][]float64{{1, 0}, {0, 1}},
		BUb: []float64{2, 3},
	}
	var ws Workspace
	for i := 0; i < 10; i++ {
		bigRef, err := big.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got, err := big.SolveIn(&ws)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(got.Objective, bigRef.Objective, 1e-9) {
			t.Fatalf("iter %d big: %g want %g", i, got.Objective, bigRef.Objective)
		}
		got, err = small.SolveIn(&ws)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(got.Objective, 5, 1e-9) {
			t.Fatalf("iter %d small: %g want 5", i, got.Objective)
		}
	}
}

// TestSolveInStatuses checks infeasible and unbounded detection through the
// workspace path.
func TestSolveInStatuses(t *testing.T) {
	var ws Workspace
	// x ≥ 0 with x ≤ -1 is infeasible.
	_, err := (Problem{C: []float64{1}, AUb: [][]float64{{1}}, BUb: []float64{-1}}).SolveIn(&ws)
	if err == nil {
		t.Error("infeasible LP solved")
	}
	// maximize x with no constraints is unbounded.
	_, err = (Problem{C: []float64{1}}).SolveIn(&ws)
	if err == nil {
		t.Error("unbounded LP solved")
	}
}
