package simplex

import (
	"errors"
	"math"
	"testing"
)

// warmProblem is an inequality-form LP of the shape the evaluator's
// equality-free phase-duration LPs take (non-negative RHS, all-slack start).
func warmProblem(shift float64) Problem {
	return Problem{
		C: []float64{1, 1, 0, 0, 0},
		AUb: [][]float64{
			{1, 0, 1.14 + shift, 0, 0},
			{1, 0, 0.26 + shift, 0, 2.05},
			{0, 1, 0, 2.05 + shift, 0},
			{0, 1, 0, 0.26, 1.0 + shift},
			{1, 1, 1.0, 2.05 + shift, 0},
			{0, 0, 1, 1, 1},
		},
		BUb: []float64{1.14, 0.26, 2.05, 0.26 + shift, 1.0, 1},
	}
}

// TestSolveWarmMatchesCold sweeps a perturbation axis, warm-starting each
// solve from the previous basis, and pins the warm objective to the cold one
// at 1e-12 — the contract the grid sweeps rely on.
func TestSolveWarmMatchesCold(t *testing.T) {
	var warmWS, coldWS Workspace
	var basis []int
	for i := 0; i <= 40; i++ {
		shift := -0.2 + 0.01*float64(i)
		p := warmProblem(shift)
		warm, err := p.SolveWarmIn(&warmWS, basis)
		if err != nil {
			t.Fatalf("shift %g: warm solve: %v", shift, err)
		}
		cold, err := p.SolveIn(&coldWS)
		if err != nil {
			t.Fatalf("shift %g: cold solve: %v", shift, err)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-12 {
			t.Errorf("shift %g: warm objective %.17g, cold %.17g", shift, warm.Objective, cold.Objective)
		}
		for j := range cold.X {
			if math.Abs(warm.X[j]-cold.X[j]) > 1e-9 {
				t.Errorf("shift %g: x[%d] warm %g cold %g", shift, j, warm.X[j], cold.X[j])
			}
		}
		basis = warmWS.Basis(basis[:0])
	}
}

// TestSolveWarmRepeatIsInstant re-solves the identical problem from its own
// optimal basis: the crash must land on an already-optimal vertex, so phase 2
// performs no pivots beyond the crash itself.
func TestSolveWarmRepeatIsInstant(t *testing.T) {
	var ws Workspace
	p := warmProblem(0)
	first, err := p.SolveIn(&ws)
	if err != nil {
		t.Fatal(err)
	}
	basis := ws.Basis(nil)
	again, err := p.SolveWarmIn(&ws, basis)
	if err != nil {
		t.Fatal(err)
	}
	if again.Objective != first.Objective {
		t.Errorf("objective drifted on identical re-solve: %.17g vs %.17g", again.Objective, first.Objective)
	}
	if again.Iterations > len(basis) {
		t.Errorf("warm re-solve took %d iterations, want at most the %d crash pivots", again.Iterations, len(basis))
	}
}

// TestSolveWarmBadHints proves every unusable hint falls back to the cold
// path and still returns the true optimum.
func TestSolveWarmBadHints(t *testing.T) {
	p := warmProblem(0)
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m := len(p.AUb)
	hints := map[string][]int{
		"nil":          nil,
		"short":        {0},
		"out of range": {0, 1, 2, 3, 4, 99},
		"negative":     {0, 1, 2, 3, 4, -1},
		"duplicate":    {0, 0, 1, 2, 3, 4},
		"all slack":    {5, 6, 7, 8, 9, 10},
	}
	for name, hint := range hints {
		if name != "nil" && name != "short" && len(hint) != m {
			t.Fatalf("bad fixture %q", name)
		}
		var ws Workspace
		got, err := p.SolveWarmIn(&ws, hint)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-12 {
			t.Errorf("%s: objective %g, want %g", name, got.Objective, want.Objective)
		}
	}
}

// TestSolveWarmRejectsEqualityForm pins that problems outside the inequality
// fast shape (equality rows, negative RHS) ignore the hint but still solve.
func TestSolveWarmRejectsEqualityForm(t *testing.T) {
	p := Problem{
		C:   []float64{1, 1, 0, 0, 0},
		AUb: [][]float64{{1, 0, -1.14, 0, 0}, {0, 1, 0, -2.05, 0}, {1, 1, -1.0, -2.05, 0}},
		BUb: []float64{0, 0, 0},
		AEq: [][]float64{{0, 0, 1, 1, 1}},
		BEq: []float64{1},
	}
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	got, err := p.SolveWarmIn(&ws, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Objective-want.Objective) > 1e-12 {
		t.Errorf("objective %g, want %g", got.Objective, want.Objective)
	}
}

// TestSolveWarmUnbounded pins the error contract from a feasible warm basis.
func TestSolveWarmUnbounded(t *testing.T) {
	p := Problem{
		C:   []float64{1, 0},
		AUb: [][]float64{{0, 1}},
		BUb: []float64{1},
	}
	var ws Workspace
	if _, err := p.SolveIn(&ws); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("cold err = %v, want ErrUnbounded", err)
	}
	if _, err := p.SolveWarmIn(&ws, []int{2}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("warm err = %v, want ErrUnbounded", err)
	}
}

// TestSolveWarmZeroAlloc gates the warm path's steady-state allocation, like
// the SolveIn gate in workspace_test.go.
func TestSolveWarmZeroAlloc(t *testing.T) {
	var ws Workspace
	p := warmProblem(0)
	if _, err := p.SolveIn(&ws); err != nil {
		t.Fatal(err)
	}
	basis := ws.Basis(make([]int, 0, len(p.AUb)))
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.SolveWarmIn(&ws, basis); err != nil {
			t.Fatal(err)
		}
		basis = ws.Basis(basis[:0])
	}); allocs != 0 {
		t.Errorf("warm solve allocates %.1f/op, want 0", allocs)
	}
}
