// Package simplex implements a small dense linear-programming solver used to
// optimize the phase durations Δℓ of the paper's protocols (Section IV:
// "Linear programming may then be used to find optimal time durations").
//
// The solver is a textbook two-phase primal simplex on the standard form
//
//	maximize    c·x
//	subject to  A_ub·x ≤ b_ub,  A_eq·x = b_eq,  x ≥ 0,
//
// with Bland's rule for anti-cycling. The LPs in this module are tiny (at
// most a dozen variables and constraints), so clarity is preferred over
// sparse-matrix machinery.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded above.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("simplex: infeasible")
	ErrUnbounded  = errors.New("simplex: unbounded")
	ErrShape      = errors.New("simplex: dimension mismatch")
	ErrCycle      = errors.New("simplex: iteration limit exceeded")
)

// Problem is a linear program in standard inequality/equality form over
// non-negative variables.
type Problem struct {
	// C is the objective row: maximize C·x.
	C []float64
	// AUb and BUb give inequality rows AUb[i]·x ≤ BUb[i].
	AUb [][]float64
	BUb []float64
	// AEq and BEq give equality rows AEq[i]·x = BEq[i].
	AEq [][]float64
	BEq []float64
}

// Solution is an optimal LP solution.
type Solution struct {
	// X is the optimal primal point.
	X []float64
	// Objective is C·X.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const (
	pivotTol   = 1e-9
	feasTol    = 1e-7
	iterFactor = 200 // iteration cap multiplier on (rows + cols)
)

// Solve maximizes the problem and returns the optimal solution. It returns
// ErrInfeasible or ErrUnbounded wrapped with context when the LP has no
// optimum.
func (p Problem) Solve() (Solution, error) {
	n := len(p.C)
	if n == 0 {
		return Solution{}, fmt.Errorf("%w: empty objective", ErrShape)
	}
	for i, row := range p.AUb {
		if len(row) != n {
			return Solution{}, fmt.Errorf("%w: AUb row %d has %d entries, want %d", ErrShape, i, len(row), n)
		}
	}
	for i, row := range p.AEq {
		if len(row) != n {
			return Solution{}, fmt.Errorf("%w: AEq row %d has %d entries, want %d", ErrShape, i, len(row), n)
		}
	}
	if len(p.AUb) != len(p.BUb) || len(p.AEq) != len(p.BEq) {
		return Solution{}, fmt.Errorf("%w: rows %d/%d vs rhs %d/%d", ErrShape, len(p.AUb), len(p.AEq), len(p.BUb), len(p.BEq))
	}

	t := newTableau(p)
	if err := t.phase1(); err != nil {
		return Solution{}, err
	}
	if err := t.phase2(); err != nil {
		return Solution{}, err
	}
	return t.solution(), nil
}

// tableau holds the dense simplex tableau. Columns are laid out as
// [structural vars | slack vars | artificial vars | RHS]; the last two rows
// are the phase-2 objective and the phase-1 objective.
type tableau struct {
	rows      [][]float64 // constraint rows
	obj       []float64   // phase-2 objective row (reduced costs)
	art       []float64   // phase-1 objective row
	basis     []int       // basic variable of each row
	nStruct   int
	nSlack    int
	nArt      int
	nCols     int // total variable columns (excludes RHS)
	iterCount int
}

func newTableau(p Problem) *tableau {
	nStruct := len(p.C)
	nSlack := len(p.AUb)
	mRows := len(p.AUb) + len(p.AEq)

	// Artificial variables: one per equality row and per inequality row with
	// negative RHS (after sign flip those become ≥ rows needing artificials).
	// For simplicity every row receives an artificial; phase 1 drives them
	// out. This is slightly wasteful but robust, and the LPs here are tiny.
	nArt := mRows
	nCols := nStruct + nSlack + nArt

	t := &tableau{
		rows:    make([][]float64, mRows),
		obj:     make([]float64, nCols+1),
		art:     make([]float64, nCols+1),
		basis:   make([]int, mRows),
		nStruct: nStruct,
		nSlack:  nSlack,
		nArt:    nArt,
		nCols:   nCols,
	}

	for i := 0; i < mRows; i++ {
		row := make([]float64, nCols+1)
		var src []float64
		var rhs float64
		if i < len(p.AUb) {
			src, rhs = p.AUb[i], p.BUb[i]
		} else {
			src, rhs = p.AEq[i-len(p.AUb)], p.BEq[i-len(p.AUb)]
		}
		copy(row, src)
		if i < len(p.AUb) {
			row[nStruct+i] = 1 // slack
		}
		row[nCols] = rhs
		// Normalize to a non-negative RHS so the artificial basis is feasible.
		if row[nCols] < 0 {
			for j := range row {
				row[j] = -row[j]
			}
		}
		row[nStruct+nSlack+i] = 1 // artificial
		t.rows[i] = row
		t.basis[i] = nStruct + nSlack + i
	}

	// Phase-2 objective (stored negated: we minimize -c·x).
	for j := 0; j < nStruct; j++ {
		t.obj[j] = -p.C[j]
	}
	// Phase-1 objective: minimize the sum of artificials. Express the reduced
	// costs with the artificial basis priced out.
	for j := 0; j <= nCols; j++ {
		var s float64
		for i := range t.rows {
			s += t.rows[i][j]
		}
		t.art[j] = -s
	}
	for i := range t.rows {
		t.art[t.basis[i]] = 0
	}
	return t
}

func (t *tableau) maxIter() int {
	return iterFactor * (len(t.rows) + t.nCols + 1)
}

// pivot performs a standard simplex pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	for i := range t.rows {
		if i == row {
			continue
		}
		factor := t.rows[i][col]
		if factor == 0 {
			continue
		}
		r := t.rows[i]
		for j := range r {
			r[j] -= factor * pr[j]
		}
	}
	for _, objRow := range [][]float64{t.obj, t.art} {
		factor := objRow[col]
		if factor != 0 {
			for j := range objRow {
				objRow[j] -= factor * pr[j]
			}
		}
	}
	t.basis[row] = col
	t.iterCount++
}

// ratioRow picks the leaving row by the minimum-ratio test with Bland
// tie-breaking (smallest basis index). Returns -1 when unbounded.
func (t *tableau) ratioRow(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i, r := range t.rows {
		a := r[col]
		if a <= pivotTol {
			continue
		}
		ratio := r[t.nCols] / a
		if ratio < bestRatio-pivotTol ||
			(math.Abs(ratio-bestRatio) <= pivotTol && (bestRow == -1 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// iterate runs simplex pivots against the given objective row until no
// entering column remains. allowCols limits candidate entering columns.
func (t *tableau) iterate(objRow []float64, allowCols int) error {
	limit := t.maxIter()
	for {
		if t.iterCount > limit {
			return ErrCycle
		}
		// Bland's rule: first column with a negative reduced cost.
		col := -1
		for j := 0; j < allowCols; j++ {
			if objRow[j] < -pivotTol {
				col = j
				break
			}
		}
		if col == -1 {
			return nil
		}
		row := t.ratioRow(col)
		if row == -1 {
			return ErrUnbounded
		}
		t.pivot(row, col)
	}
}

func (t *tableau) phase1() error {
	if err := t.iterate(t.art, t.nCols); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// Phase-1 objective is bounded below by 0; unbounded here means a
			// numerical anomaly, treat as infeasible.
			return fmt.Errorf("%w: phase-1 anomaly", ErrInfeasible)
		}
		return err
	}
	// art row's RHS holds -(sum of artificials) at optimum.
	if -t.art[t.nCols] > feasTol {
		return fmt.Errorf("%w: artificial residual %g", ErrInfeasible, -t.art[t.nCols])
	}
	// Drive any artificial variables still in the basis (at zero level) out.
	for i := range t.rows {
		if t.basis[i] < t.nStruct+t.nSlack {
			continue
		}
		swapped := false
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if math.Abs(t.rows[i][j]) > pivotTol {
				t.pivot(i, j)
				swapped = true
				break
			}
		}
		if !swapped {
			// The row is redundant (all-zero over real columns); zero it.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
	return nil
}

func (t *tableau) phase2() error {
	// Exclude artificial columns from entering.
	if err := t.iterate(t.obj, t.nStruct+t.nSlack); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return ErrUnbounded
		}
		return err
	}
	return nil
}

func (t *tableau) solution() Solution {
	x := make([]float64, t.nStruct)
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rows[i][t.nCols]
		}
	}
	// obj row RHS holds c·x (minimization of -c·x stores the negated value).
	return Solution{X: x, Objective: t.obj[t.nCols], Iterations: t.iterCount}
}
