// Package simplex implements a small dense linear-programming solver used to
// optimize the phase durations Δℓ of the paper's protocols (Section IV:
// "Linear programming may then be used to find optimal time durations").
//
// The solver is a textbook two-phase primal simplex on the standard form
//
//	maximize    c·x
//	subject to  A_ub·x ≤ b_ub,  A_eq·x = b_eq,  x ≥ 0,
//
// with Bland's rule for anti-cycling. The LPs in this module are tiny (at
// most a dozen variables and constraints), so clarity is preferred over
// sparse-matrix machinery — but the solver is on the Monte Carlo hot path
// (one LP per protocol per fading block), so the tableau lives in a reusable
// Workspace and steady-state solves perform no heap allocation. Artificial
// variables are introduced only where a starting basis actually needs them
// (equality rows and inequality rows with negative right-hand sides), which
// keeps phase 1 to a handful of pivots on the phase-duration LPs.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded above.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("simplex: infeasible")
	ErrUnbounded  = errors.New("simplex: unbounded")
	ErrShape      = errors.New("simplex: dimension mismatch")
	ErrCycle      = errors.New("simplex: iteration limit exceeded")
)

// Problem is a linear program in standard inequality/equality form over
// non-negative variables.
type Problem struct {
	// C is the objective row: maximize C·x.
	C []float64
	// AUb and BUb give inequality rows AUb[i]·x ≤ BUb[i].
	AUb [][]float64
	BUb []float64
	// AEq and BEq give equality rows AEq[i]·x = BEq[i].
	AEq [][]float64
	BEq []float64
}

// Solution is an optimal LP solution.
type Solution struct {
	// X is the optimal primal point. For SolveIn it aliases workspace
	// memory and is valid until the workspace's next solve.
	X []float64
	// Objective is C·X.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const (
	pivotTol   = 1e-9
	feasTol    = 1e-7
	iterFactor = 200 // iteration cap multiplier on (rows + cols)
)

// Workspace holds the solver's tableau storage so repeated solves reuse one
// set of buffers. The zero value is ready to use; it grows to fit the largest
// problem it has seen and is then allocation-free for problems of that size
// or smaller. A Workspace must not be used from multiple goroutines
// concurrently.
type Workspace struct {
	flat  []float64   // row-major tableau backing, mRows × (nCols+1)
	rows  [][]float64 // row headers into flat
	obj   []float64   // phase-2 objective row (reduced costs)
	art   []float64   // phase-1 objective row
	basis []int       // basic variable of each row
	x     []float64   // solution buffer returned via Solution.X
}

// ensure sizes the workspace for a tableau of mRows rows and nCols variable
// columns (plus the RHS column) and nStruct structural variables, zeroing the
// region that will be used.
func (ws *Workspace) ensure(mRows, nCols, nStruct int) {
	stride := nCols + 1
	need := mRows * stride
	if cap(ws.flat) < need {
		ws.flat = make([]float64, need)
	}
	ws.flat = ws.flat[:need]
	clear(ws.flat)
	if cap(ws.rows) < mRows {
		ws.rows = make([][]float64, mRows)
	}
	ws.rows = ws.rows[:mRows]
	for i := 0; i < mRows; i++ {
		ws.rows[i] = ws.flat[i*stride : (i+1)*stride]
	}
	if cap(ws.obj) < stride {
		ws.obj = make([]float64, stride)
		ws.art = make([]float64, stride)
	}
	ws.obj = ws.obj[:stride]
	ws.art = ws.art[:stride]
	clear(ws.obj)
	clear(ws.art)
	if cap(ws.basis) < mRows {
		ws.basis = make([]int, mRows)
	}
	ws.basis = ws.basis[:mRows]
	if cap(ws.x) < nStruct {
		ws.x = make([]float64, nStruct)
	}
	ws.x = ws.x[:nStruct]
	clear(ws.x)
}

// Solve maximizes the problem and returns the optimal solution. It returns
// ErrInfeasible or ErrUnbounded wrapped with context when the LP has no
// optimum. Each call uses a fresh workspace; use SolveIn to amortize the
// allocations across repeated solves.
func (p Problem) Solve() (Solution, error) {
	var ws Workspace
	return p.SolveIn(&ws)
}

// Basis appends the basic-variable column index of each tableau row of the
// workspace's most recent solve to dst and returns the extended slice — a
// warm-start hint for SolveWarmIn on a nearby problem. The snapshot is only
// meaningful while the problem shape is unchanged; SolveWarmIn validates it
// and ignores unusable hints.
func (ws *Workspace) Basis(dst []int) []int {
	return append(dst, ws.basis...)
}

// SolveWarmIn is SolveIn with a warm-start hint: basis is a Basis snapshot
// from a previous solve of a same-shaped problem (grid sweeps re-solve the
// same LP with slightly perturbed coefficients, where the optimal basis
// rarely changes between adjacent points). The hint is used only when it is
// sound end to end — the problem is in pure inequality form with
// non-negative right-hand sides, the basis indexes structural/slack columns
// bijectively, the crash pivots are numerically stable, and the crashed
// vertex is primal feasible; in every other case the call falls back to
// SolveIn. SolveWarmIn therefore never fails where SolveIn would succeed,
// and always returns an optimum of p itself.
func (p Problem) SolveWarmIn(ws *Workspace, basis []int) (Solution, error) {
	if sol, ok, err := p.trySolveWarm(ws, basis); ok {
		return sol, err
	}
	return p.SolveIn(ws)
}

// trySolveWarm attempts the warm-started solve. ok reports whether the hint
// applied; when false the caller must run the cold path (the workspace may
// have been dirtied, which SolveIn's ensure resets).
func (p Problem) trySolveWarm(ws *Workspace, basis []int) (Solution, bool, error) {
	nStruct := len(p.C)
	nSlack := len(p.AUb)
	if nStruct == 0 || nSlack == 0 || len(p.AEq) != 0 || len(p.BEq) != 0 ||
		len(basis) != nSlack || len(p.BUb) != nSlack {
		return Solution{}, false, nil
	}
	for _, row := range p.AUb {
		if len(row) != nStruct {
			return Solution{}, false, nil
		}
	}
	for _, b := range p.BUb {
		if b < 0 {
			return Solution{}, false, nil
		}
	}
	nCols := nStruct + nSlack
	if nCols > 64 {
		// The bitmap below caps the column count; the LPs this fast path
		// serves are far smaller.
		return Solution{}, false, nil
	}
	var seen uint64
	for _, b := range basis {
		if b < 0 || b >= nCols || seen&(1<<uint(b)) != 0 {
			return Solution{}, false, nil
		}
		seen |= 1 << uint(b)
	}

	ws.ensure(nSlack, nCols, nStruct)
	t := tableau{
		rows:    ws.rows,
		obj:     ws.obj,
		art:     ws.art,
		basis:   ws.basis,
		nStruct: nStruct,
		nSlack:  nSlack,
		nCols:   nCols,
	}
	for i, src := range p.AUb {
		row := t.rows[i]
		copy(row, src)
		row[nStruct+i] = 1
		row[nCols] = p.BUb[i]
		t.basis[i] = nStruct + i
	}
	for j := 0; j < nStruct; j++ {
		t.obj[j] = -p.C[j]
	}

	// Basis crash: pivot each hinted basic column into its row. Pivots keep
	// the tableau exactly consistent in any order; a (near-)zero pivot
	// element means the hinted basis is singular for this problem, so hand
	// back to the cold path.
	for i, col := range basis {
		if t.basis[i] == col {
			continue
		}
		if math.Abs(t.rows[i][col]) <= pivotTol {
			return Solution{}, false, nil
		}
		t.pivot(i, col)
	}
	// The crashed vertex must be primal feasible to start phase 2; a hinted
	// basis that turned infeasible at this grid point is a genuine vertex
	// change, not an error — cold-solve it.
	for _, r := range t.rows {
		if r[t.nCols] < 0 {
			return Solution{}, false, nil
		}
	}
	if err := t.iterate(t.obj, t.nCols); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// From a feasible basis, unboundedness is a property of p itself.
			return Solution{}, true, ErrUnbounded
		}
		// Iteration-limit anomalies may be an artifact of the warm path's
		// pivot history; let the cold path decide.
		return Solution{}, false, nil
	}
	sol := t.solution(ws)
	p.refineSolution(ws, &t, &sol)
	return sol, true, nil
}

// SolveIn maximizes the problem using the given workspace's storage. Repeat
// solves of same-shaped (or smaller) problems perform no heap allocation.
// The returned Solution.X aliases workspace memory: it is valid until the
// workspace's next solve, so copy it out if it must survive longer.
func (p Problem) SolveIn(ws *Workspace) (Solution, error) {
	n := len(p.C)
	if n == 0 {
		return Solution{}, fmt.Errorf("%w: empty objective", ErrShape)
	}
	for i, row := range p.AUb {
		if len(row) != n {
			return Solution{}, fmt.Errorf("%w: AUb row %d has %d entries, want %d", ErrShape, i, len(row), n)
		}
	}
	for i, row := range p.AEq {
		if len(row) != n {
			return Solution{}, fmt.Errorf("%w: AEq row %d has %d entries, want %d", ErrShape, i, len(row), n)
		}
	}
	if len(p.AUb) != len(p.BUb) || len(p.AEq) != len(p.BEq) {
		return Solution{}, fmt.Errorf("%w: rows %d/%d vs rhs %d/%d", ErrShape, len(p.AUb), len(p.AEq), len(p.BUb), len(p.BEq))
	}

	t := newTableau(p, ws)
	if err := t.phase1(); err != nil {
		return Solution{}, err
	}
	if err := t.phase2(); err != nil {
		return Solution{}, err
	}
	sol := t.solution(ws)
	p.refineSolution(ws, &t, &sol)
	return sol, nil
}

// refineSolution recomputes the basic variables of an optimal solution
// directly from the original problem data given the final basis, via dense
// Gaussian elimination with partial pivoting. It applies to pure-inequality
// problems with non-negative right-hand sides (the shape the evaluator hot
// path emits and SolveWarmIn accepts). The tableau's pivot history then no
// longer influences the returned numbers: every solve ending in the same
// basis returns bitwise-identical results, which is what makes warm-started
// sweeps agree with cold ones to ~1e-12 instead of accumulated pivot
// rounding. On a singular or out-of-shape system it leaves the tableau
// solution untouched.
func (p Problem) refineSolution(ws *Workspace, t *tableau, sol *Solution) {
	if len(p.AEq) != 0 || t.nArt != 0 {
		return
	}
	for _, b := range p.BUb {
		if b < 0 {
			return
		}
	}
	m := len(t.rows)
	// Reuse the (no longer needed) tableau rows as the m x (m+1) augmented
	// system M·y = b, where unknown y_k is the value of row k's basic
	// variable: M[i][k] is that variable's coefficient in original row i.
	aug := t.rows
	for i := 0; i < m; i++ {
		row := aug[i]
		for k := 0; k < m; k++ {
			j := t.basis[k]
			switch {
			case j < t.nStruct:
				row[k] = p.AUb[i][j]
			case j-t.nStruct == i:
				row[k] = 1
			default:
				row[k] = 0
			}
		}
		row[m] = p.BUb[i]
	}
	for col := 0; col < m; col++ {
		piv, best := col, math.Abs(aug[col][col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(aug[r][col]); a > best {
				piv, best = r, a
			}
		}
		if best < 1e-12 {
			return // singular basis system; keep the tableau solution
		}
		aug[piv], aug[col] = aug[col], aug[piv]
		prow := aug[col]
		for r := col + 1; r < m; r++ {
			f := aug[r][col] / prow[col]
			if f == 0 {
				continue
			}
			row := aug[r]
			for c := col + 1; c <= m; c++ {
				row[c] -= f * prow[c]
			}
			row[col] = 0
		}
	}
	y := ws.art[:m] // phase-1 row storage is free after the solve
	for k := m - 1; k >= 0; k-- {
		v := aug[k][m]
		for c := k + 1; c < m; c++ {
			v -= aug[k][c] * y[c]
		}
		y[k] = v / aug[k][k]
	}
	clear(ws.x)
	for k := 0; k < m; k++ {
		if j := t.basis[k]; j < t.nStruct {
			ws.x[j] = y[k]
		}
	}
	obj := 0.0
	for j, c := range p.C {
		obj += c * ws.x[j]
	}
	sol.X = ws.x
	sol.Objective = obj
}

// tableau holds the dense simplex tableau. Columns are laid out as
// [structural vars | slack vars | artificial vars | RHS]. Artificial
// variables exist only for rows whose starting basis cannot be a slack:
// equality rows and inequality rows whose RHS was negative (those are sign-
// flipped, turning the slack coefficient to -1).
type tableau struct {
	rows      [][]float64 // constraint rows
	obj       []float64   // phase-2 objective row (reduced costs)
	art       []float64   // phase-1 objective row
	basis     []int       // basic variable of each row
	nStruct   int
	nSlack    int
	nArt      int
	nCols     int // total variable columns (excludes RHS)
	iterCount int
}

func newTableau(p Problem, ws *Workspace) tableau {
	nStruct := len(p.C)
	nSlack := len(p.AUb)
	mRows := len(p.AUb) + len(p.AEq)

	// Count the rows that need an artificial basis variable: every equality
	// row, and every inequality row whose RHS is negative (the sign flip that
	// makes the RHS non-negative also flips its slack to -1).
	nArt := len(p.AEq)
	for _, b := range p.BUb {
		if b < 0 {
			nArt++
		}
	}
	nCols := nStruct + nSlack + nArt

	ws.ensure(mRows, nCols, nStruct)
	t := tableau{
		rows:    ws.rows,
		obj:     ws.obj,
		art:     ws.art,
		basis:   ws.basis,
		nStruct: nStruct,
		nSlack:  nSlack,
		nArt:    nArt,
		nCols:   nCols,
	}

	artNext := nStruct + nSlack // next artificial column to hand out
	for i := 0; i < mRows; i++ {
		row := t.rows[i]
		var src []float64
		var rhs float64
		isEq := i >= len(p.AUb)
		if isEq {
			src, rhs = p.AEq[i-len(p.AUb)], p.BEq[i-len(p.AUb)]
		} else {
			src, rhs = p.AUb[i], p.BUb[i]
		}
		copy(row, src)
		if !isEq {
			row[nStruct+i] = 1 // slack
		}
		row[nCols] = rhs
		// Normalize to a non-negative RHS so the starting basis is feasible.
		if row[nCols] < 0 {
			for j := range row {
				row[j] = -row[j]
			}
		}
		if isEq || (!isEq && row[nStruct+i] < 0) {
			row[artNext] = 1
			t.basis[i] = artNext
			artNext++
		} else {
			t.basis[i] = nStruct + i
		}
	}

	// Phase-2 objective (stored negated: we minimize -c·x).
	for j := 0; j < nStruct; j++ {
		t.obj[j] = -p.C[j]
	}
	if nArt > 0 {
		// Phase-1 objective: minimize the sum of artificials. Express the
		// reduced costs with the starting basis priced out: subtracting each
		// artificial-basis row cancels that artificial's unit cost and leaves
		// -Σ(rows with artificials) on the remaining columns.
		for i := range t.rows {
			if t.basis[i] < nStruct+nSlack {
				continue
			}
			row := t.rows[i]
			for j := 0; j <= nCols; j++ {
				t.art[j] -= row[j]
			}
		}
		for i := range t.rows {
			t.art[t.basis[i]] = 0
		}
	}
	return t
}

func (t *tableau) maxIter() int {
	return iterFactor * (len(t.rows) + t.nCols + 1)
}

// pivot performs a standard simplex pivot on (row, col).
//
//bicoop:noalloc
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	for i := range t.rows {
		if i == row {
			continue
		}
		factor := t.rows[i][col]
		if factor == 0 {
			continue
		}
		r := t.rows[i]
		for j := range r {
			r[j] -= factor * pr[j]
		}
	}
	t.eliminateObjRow(t.obj, col, pr)
	t.eliminateObjRow(t.art, col, pr)
	t.basis[row] = col
	t.iterCount++
}

//bicoop:noalloc
func (t *tableau) eliminateObjRow(objRow []float64, col int, pr []float64) {
	factor := objRow[col]
	if factor == 0 {
		return
	}
	for j := range objRow {
		objRow[j] -= factor * pr[j]
	}
}

// ratioRow picks the leaving row by the minimum-ratio test with Bland
// tie-breaking (smallest basis index). Returns -1 when unbounded.
//
//bicoop:noalloc
func (t *tableau) ratioRow(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i, r := range t.rows {
		a := r[col]
		if a <= pivotTol {
			continue
		}
		ratio := r[t.nCols] / a
		if ratio < bestRatio-pivotTol ||
			(math.Abs(ratio-bestRatio) <= pivotTol && (bestRow == -1 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// iterate runs simplex pivots against the given objective row until no
// entering column remains. allowCols limits candidate entering columns.
// Entering columns are picked by Dantzig's rule (most negative reduced
// cost, fewest pivots in practice); if the iteration count ever reaches the
// Bland threshold — which only a degenerate cycle does on these tiny LPs —
// it switches to Bland's rule, whose termination guarantee then applies.
//
//bicoop:noalloc
func (t *tableau) iterate(objRow []float64, allowCols int) error {
	limit := t.maxIter()
	blandAt := limit / 2
	for {
		if t.iterCount > limit {
			return ErrCycle
		}
		col := -1
		if t.iterCount < blandAt {
			best := -pivotTol
			for j := 0; j < allowCols; j++ {
				if objRow[j] < best {
					best = objRow[j]
					col = j
				}
			}
		} else {
			// Bland's rule: first column with a negative reduced cost.
			for j := 0; j < allowCols; j++ {
				if objRow[j] < -pivotTol {
					col = j
					break
				}
			}
		}
		if col == -1 {
			return nil
		}
		row := t.ratioRow(col)
		if row == -1 {
			return ErrUnbounded
		}
		t.pivot(row, col)
	}
}

func (t *tableau) phase1() error {
	if t.nArt == 0 {
		return nil // the all-slack basis is already feasible
	}
	if err := t.iterate(t.art, t.nCols); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// Phase-1 objective is bounded below by 0; unbounded here means a
			// numerical anomaly, treat as infeasible.
			return fmt.Errorf("%w: phase-1 anomaly", ErrInfeasible)
		}
		return err
	}
	// art row's RHS holds -(sum of artificials) at optimum.
	if -t.art[t.nCols] > feasTol {
		return fmt.Errorf("%w: artificial residual %g", ErrInfeasible, -t.art[t.nCols])
	}
	// Drive any artificial variables still in the basis (at zero level) out.
	for i := range t.rows {
		if t.basis[i] < t.nStruct+t.nSlack {
			continue
		}
		swapped := false
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if math.Abs(t.rows[i][j]) > pivotTol {
				t.pivot(i, j)
				swapped = true
				break
			}
		}
		if !swapped {
			// The row is redundant (all-zero over real columns); zero it.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
	return nil
}

func (t *tableau) phase2() error {
	// Exclude artificial columns from entering.
	if err := t.iterate(t.obj, t.nStruct+t.nSlack); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return ErrUnbounded
		}
		return err
	}
	return nil
}

func (t *tableau) solution(ws *Workspace) Solution {
	x := ws.x
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rows[i][t.nCols]
		}
	}
	// obj row RHS holds c·x (minimization of -c·x stores the negated value).
	return Solution{X: x, Objective: t.obj[t.nCols], Iterations: t.iterCount}
}
