package simplex

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/xmath"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSimpleMax(t *testing.T) {
	// maximize x + y s.t. x <= 2, y <= 3 -> 5 at (2, 3).
	sol := solveOK(t, Problem{
		C:   []float64{1, 1},
		AUb: [][]float64{{1, 0}, {0, 1}},
		BUb: []float64{2, 3},
	})
	if !xmath.ApproxEqual(sol.Objective, 5, 1e-9) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
	if !xmath.ApproxEqual(sol.X[0], 2, 1e-9) || !xmath.ApproxEqual(sol.X[1], 3, 1e-9) {
		t.Errorf("X = %v, want [2 3]", sol.X)
	}
}

func TestClassicLP(t *testing.T) {
	// A standard production LP:
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum 36 at (2, 6).
	sol := solveOK(t, Problem{
		C:   []float64{3, 5},
		AUb: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		BUb: []float64{4, 12, 18},
	})
	if !xmath.ApproxEqual(sol.Objective, 36, 1e-9) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !xmath.ApproxEqual(sol.X[0], 2, 1e-9) || !xmath.ApproxEqual(sol.X[1], 6, 1e-9) {
		t.Errorf("X = %v, want [2 6]", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x s.t. x + y = 1, x <= 0.4 -> 0.4 at (0.4, 0.6).
	sol := solveOK(t, Problem{
		C:   []float64{1, 0},
		AUb: [][]float64{{1, 0}},
		BUb: []float64{0.4},
		AEq: [][]float64{{1, 1}},
		BEq: []float64{1},
	})
	if !xmath.ApproxEqual(sol.Objective, 0.4, 1e-9) {
		t.Errorf("objective = %v, want 0.4", sol.Objective)
	}
	if !xmath.ApproxEqual(sol.X[1], 0.6, 1e-9) {
		t.Errorf("y = %v, want 0.6", sol.X[1])
	}
}

func TestInfeasible(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
	}{
		{
			name: "contradictory inequalities",
			p: Problem{
				C:   []float64{1},
				AUb: [][]float64{{1}, {-1}},
				BUb: []float64{1, -2}, // x <= 1 and x >= 2
			},
		},
		{
			name: "equality out of reach",
			p: Problem{
				C:   []float64{1, 1},
				AUb: [][]float64{{1, 1}},
				BUb: []float64{1},
				AEq: [][]float64{{1, 1}},
				BEq: []float64{2},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.p.Solve(); !errors.Is(err, ErrInfeasible) {
				t.Errorf("err = %v, want ErrInfeasible", err)
			}
		})
	}
}

func TestUnbounded(t *testing.T) {
	// maximize x with no constraints binding it.
	_, err := Problem{
		C:   []float64{1, 0},
		AUb: [][]float64{{0, 1}},
		BUb: []float64{1},
	}.Solve()
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestShapeErrors(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
	}{
		{name: "empty objective", p: Problem{}},
		{name: "ragged aub", p: Problem{C: []float64{1, 2}, AUb: [][]float64{{1}}, BUb: []float64{1}}},
		{name: "ragged aeq", p: Problem{C: []float64{1, 2}, AEq: [][]float64{{1}}, BEq: []float64{1}}},
		{name: "rhs mismatch", p: Problem{C: []float64{1}, AUb: [][]float64{{1}}, BUb: nil}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.p.Solve(); !errors.Is(err, ErrShape) {
				t.Errorf("err = %v, want ErrShape", err)
			}
		})
	}
}

func TestNegativeRHS(t *testing.T) {
	// maximize -x s.t. -x <= -3  (i.e., x >= 3): optimum -3 at x = 3.
	sol := solveOK(t, Problem{
		C:   []float64{-1},
		AUb: [][]float64{{-1}},
		BUb: []float64{-3},
	})
	if !xmath.ApproxEqual(sol.X[0], 3, 1e-9) {
		t.Errorf("x = %v, want 3", sol.X[0])
	}
	if !xmath.ApproxEqual(sol.Objective, -3, 1e-9) {
		t.Errorf("objective = %v, want -3", sol.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate LP that stalls naive pivoting; Bland's rule must finish.
	sol := solveOK(t, Problem{
		C:   []float64{0.75, -150, 0.02, -6},
		AUb: [][]float64{{0.25, -60, -0.04, 9}, {0.5, -90, -0.02, 3}, {0, 0, 1, 0}},
		BUb: []float64{0, 0, 1},
	})
	if !xmath.ApproxEqual(sol.Objective, 0.05, 1e-9) {
		t.Errorf("objective = %v, want 0.05 (Beale's example)", sol.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	sol := solveOK(t, Problem{
		C:   []float64{1, 1},
		AEq: [][]float64{{1, 1}, {2, 2}},
		BEq: []float64{1, 2},
	})
	if !xmath.ApproxEqual(sol.Objective, 1, 1e-9) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestTimeShareLP(t *testing.T) {
	// The shape of this module's real workload: maximize Ra + Rb over
	// (Ra, Rb, d1, d2) with d1 + d2 = 1 and per-phase rate caps
	//   Ra <= 2·d1, Ra <= 3·d2, Rb <= 1.5·d1, Rb <= 2.5·d2,
	//   Ra + Rb <= 3·d1.
	// Variables: [Ra, Rb, d1, d2].
	p := Problem{
		C: []float64{1, 1, 0, 0},
		AUb: [][]float64{
			{1, 0, -2, 0},
			{1, 0, 0, -3},
			{0, 1, -1.5, 0},
			{0, 1, 0, -2.5},
			{1, 1, -3, 0},
		},
		BUb: []float64{0, 0, 0, 0, 0},
		AEq: [][]float64{{0, 0, 1, 1}},
		BEq: []float64{1},
	}
	sol := solveOK(t, p)
	// Cross-check against a fine grid search over d1.
	best := 0.0
	for _, d1 := range xmath.Linspace(0, 1, 100001) {
		d2 := 1 - d1
		ra := math.Min(2*d1, 3*d2)
		rb := math.Min(1.5*d1, 2.5*d2)
		sum := ra + rb
		if cap3 := 3 * d1; sum > cap3 {
			sum = cap3
		}
		if sum > best {
			best = sum
		}
	}
	if !xmath.ApproxEqual(sol.Objective, best, 1e-4) {
		t.Errorf("LP objective = %v, grid best = %v", sol.Objective, best)
	}
	// Durations must sum to one.
	if !xmath.ApproxEqual(sol.X[2]+sol.X[3], 1, 1e-9) {
		t.Errorf("d1+d2 = %v, want 1", sol.X[2]+sol.X[3])
	}
}

func TestRandomLPsAgainstGridSearch(t *testing.T) {
	// Random 2-variable LPs with box + halfplane constraints, validated
	// against brute-force corner enumeration on a fine grid.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		c := []float64{r.Float64()*4 - 2, r.Float64()*4 - 2}
		nCon := 2 + r.Intn(4)
		aub := make([][]float64, 0, nCon+2)
		bub := make([]float64, 0, nCon+2)
		// Box to keep it bounded.
		aub = append(aub, []float64{1, 0}, []float64{0, 1})
		bub = append(bub, 5, 5)
		for k := 0; k < nCon; k++ {
			aub = append(aub, []float64{r.Float64()*2 - 0.5, r.Float64()*2 - 0.5})
			bub = append(bub, r.Float64()*6)
		}
		sol, err := Problem{C: c, AUb: aub, BUb: bub}.Solve()
		if err != nil {
			// Random constraints can exclude the origin only via negative
			// rhs, which we did not generate; x = 0 is always feasible.
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Grid search.
		best := math.Inf(-1)
		const steps = 400
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := 5 * float64(i) / steps
				y := 5 * float64(j) / steps
				ok := true
				for k := range aub {
					if aub[k][0]*x+aub[k][1]*y > bub[k]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x + c[1]*y; v > best {
						best = v
					}
				}
			}
		}
		if sol.Objective < best-1e-6 {
			t.Fatalf("trial %d: LP %v below grid %v", trial, sol.Objective, best)
		}
		// LP must also be achievable: check feasibility of the returned X.
		for k := range aub {
			if aub[k][0]*sol.X[0]+aub[k][1]*sol.X[1] > bub[k]+1e-6 {
				t.Fatalf("trial %d: returned X violates constraint %d", trial, k)
			}
		}
		if sol.X[0] < -1e-9 || sol.X[1] < -1e-9 {
			t.Fatalf("trial %d: negative solution %v", trial, sol.X)
		}
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusOptimal, "optimal"},
		{StatusInfeasible, "infeasible"},
		{StatusUnbounded, "unbounded"},
		{Status(99), "Status(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}
