package service

// store.go — the durable job store. One directory per job under the store
// root:
//
//	j000001/
//	  spec.json        the submission, verbatim
//	  state.json       {"state": ..., "error": ...}, tmp+rename on every change
//	  results.csv      the streaming CSV output
//	  checkpoint.json  {"watermark", "offset"} resume state (ResultLog)
//
// Job creation is crash-atomic: the directory is populated under a dotted
// temp name and renamed into place, so a crash mid-create leaves only an
// ignorable .tmp-* directory, never a half-readable job. State changes are
// tmp+rename too, so state.json always parses. Recovery is a plain rescan:
// every job directory whose durable state is non-terminal goes back in the
// queue, and its ResultLog resumes from checkpoint.json.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// State is a job's lifecycle state. Queued and running are the non-terminal
// states a restart re-queues; the other four are terminal.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateTimeout  State = "timeout"
)

// Terminal reports whether the state is final — results are complete (done)
// or the job will never progress further (failed/canceled/timeout).
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateTimeout:
		return true
	}
	return false
}

// stateRecord is the durable form of a job's state.
type stateRecord struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// JobRecord is one recovered job: its id, parsed spec, and durable state.
type JobRecord struct {
	ID    string
	Spec  JobSpec
	State State
	Error string
}

// Store persists jobs under a root directory. It is safe for concurrent use
// by the service: each job's files are touched by one goroutine at a time,
// and id allocation — the only cross-job state — is internally locked.
type Store struct {
	root string

	mu   sync.Mutex
	next int // next job number to allocate
}

// OpenStore opens (creating if needed) a job store rooted at dir and scans
// it so freshly allocated ids never collide with existing jobs.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{root: dir, next: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "j%06d", &n); err == nil && n >= s.next {
			s.next = n + 1
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) dir(id string) string       { return filepath.Join(s.root, id) }
func (s *Store) specPath(id string) string  { return filepath.Join(s.dir(id), "spec.json") }
func (s *Store) statePath(id string) string { return filepath.Join(s.dir(id), "state.json") }

// ResultsPath returns the job's streaming CSV file.
func (s *Store) ResultsPath(id string) string { return filepath.Join(s.dir(id), "results.csv") }

// CheckpointPath returns the job's {watermark, offset} resume file.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.dir(id), "checkpoint.json")
}

// Create durably records a new queued job and returns its id. The directory
// appears atomically: populated under a temp name, then renamed.
//
//bicoop:atomicio — populates a temp directory, then renames it into place
func (s *Store) Create(spec JobSpec) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("j%06d", s.next)
	specData, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	stateData, err := json.Marshal(stateRecord{State: StateQueued})
	if err != nil {
		return "", err
	}
	tmp := filepath.Join(s.root, ".tmp-"+id)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	cleanup := func() { os.RemoveAll(tmp) }
	if err := os.WriteFile(filepath.Join(tmp, "spec.json"), specData, 0o644); err != nil {
		cleanup()
		return "", err
	}
	if err := os.WriteFile(filepath.Join(tmp, "state.json"), stateData, 0o644); err != nil {
		cleanup()
		return "", err
	}
	if err := os.Rename(tmp, s.dir(id)); err != nil {
		cleanup()
		return "", err
	}
	s.next++
	return id, nil
}

// SetState durably records a job's state transition (tmp+rename, so a crash
// mid-write keeps the previous state readable).
//
//bicoop:atomicio — tmp+rename of state.json
func (s *Store) SetState(id string, state State, errMsg string) error {
	data, err := json.Marshal(stateRecord{State: state, Error: errMsg})
	if err != nil {
		return err
	}
	tmp := s.statePath(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.statePath(id))
}

// Load reads one job's durable record.
func (s *Store) Load(id string) (JobRecord, error) {
	rec := JobRecord{ID: id}
	specData, err := os.ReadFile(s.specPath(id))
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(specData, &rec.Spec); err != nil {
		return rec, fmt.Errorf("job %s: corrupt spec.json: %w", id, err)
	}
	stateData, err := os.ReadFile(s.statePath(id))
	if err != nil {
		return rec, err
	}
	var sr stateRecord
	if err := json.Unmarshal(stateData, &sr); err != nil {
		return rec, fmt.Errorf("job %s: corrupt state.json: %w", id, err)
	}
	rec.State, rec.Error = sr.State, sr.Error
	return rec, nil
}

// LoadAll rescans the store, returning every job in id order. Temp
// directories from interrupted creates are removed, not surfaced — the
// submission never got its 201, so the job never existed.
func (s *Store) LoadAll() ([]JobRecord, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".") {
			os.RemoveAll(filepath.Join(s.root, e.Name()))
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "j%06d", &n); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	recs := make([]JobRecord, 0, len(ids))
	for _, id := range ids {
		rec, err := s.Load(id)
		if errors.Is(err, fs.ErrNotExist) {
			continue // raced with an external delete; skip
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
