package service

// kill_test.go — the service-level chaos harness: a real bccd-shaped server
// in a child process, SIGKILLed mid-job at seeded pseudo-random uptimes and
// restarted over the same store until the job completes, then the recovered
// results.csv pinned byte-identical to an uninterrupted in-process run — at
// several job worker counts, because both guarantees under test (fixed
// chunk boundaries and checkpointed byte-offset resume) must hold for every
// Workers setting. The child is this test binary re-exec'd (the TestMain
// hook), so the harness needs no separate build step.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bicoop"
	"bicoop/internal/sweep/chaos"
)

const (
	killChildStoreEnv = "BCCD_KILL_CHILD_STORE"
	killChildAddrEnv  = "BCCD_KILL_CHILD_ADDRFILE"
)

// TestMain re-execs this binary as the kill-test server child when the env
// var is set; otherwise it runs the tests normally.
func TestMain(m *testing.M) {
	if dir := os.Getenv(killChildStoreEnv); dir != "" {
		runKillChild(dir, os.Getenv(killChildAddrEnv))
		return // unreachable: runKillChild serves until killed
	}
	os.Exit(m.Run())
}

// runKillChild is the child's main: recover the store, run the service, and
// serve HTTP until SIGKILLed. It mirrors cmd/bccd without the flag surface.
func runKillChild(storeDir, addrFile string) {
	st, err := OpenStore(storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	svc := New(context.Background(), st, bicoop.NewEngine(), Options{})
	if err := svc.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	http.Serve(ln, NewHandler(svc))
}

// killJob is the chaos workload: big enough that no single uptime window
// below finishes it (the ordered emitter alone needs longer than MaxUptime
// to format the rows), so every subtest takes at least one SIGKILL mid-job.
func killJob(workers int) JobSpec {
	spec := JobSpec{Sweep: &SweepJob{
		Base:     testScenario,
		Workers:  workers,
		PowersDB: powerAxis(0, 20, 0.01),
	}}
	for i := 0; i < 24; i++ {
		spec.Sweep.Placements = append(spec.Sweep.Placements, bicoop.RelayPlacement{
			Pos: 0.05 + 0.9*float64(i)/23, Exponent: 3, GabDB: testScenario.GabDB,
		})
	}
	return spec
}

func TestKillNineResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("kill -9 chaos loop is not a -short test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// One uninterrupted reference; the bit-identical-across-Workers
	// guarantee means every subtest must reproduce these exact bytes.
	want := referenceCSV(t, killJob(1))

	for _, tc := range []struct {
		workers              int
		minUptime, maxUptime time.Duration
	}{
		{workers: 1, minUptime: 50 * time.Millisecond, maxUptime: 150 * time.Millisecond},
		{workers: 2, minUptime: 40 * time.Millisecond, maxUptime: 110 * time.Millisecond},
		{workers: 7, minUptime: 30 * time.Millisecond, maxUptime: 70 * time.Millisecond},
	} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			storeDir := filepath.Join(t.TempDir(), "jobs")
			addrFile := filepath.Join(t.TempDir(), "addr")
			statePath := filepath.Join(storeDir, "j000001", "state.json")
			submitted := false

			start := func() (*exec.Cmd, error) {
				os.Remove(addrFile) // each child binds a fresh port
				cmd := exec.Command(exe)
				cmd.Env = append(os.Environ(),
					killChildStoreEnv+"="+storeDir,
					killChildAddrEnv+"="+addrFile,
				)
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					return nil, err
				}
				addr, err := waitForFile(addrFile, 10*time.Second)
				if err != nil {
					cmd.Process.Kill()
					cmd.Wait()
					return nil, err
				}
				if !submitted {
					if err := submitKillJob(strings.TrimSpace(addr), killJob(tc.workers)); err != nil {
						cmd.Process.Kill()
						cmd.Wait()
						return nil, err
					}
					submitted = true
				}
				return cmd, nil
			}
			done := func() bool {
				data, err := os.ReadFile(statePath)
				return err == nil && bytes.Contains(data, []byte(`"done"`))
			}
			killer := chaos.ProcKiller{
				Seed:      int64(tc.workers)*1000 + 7,
				MinUptime: tc.minUptime,
				MaxUptime: tc.maxUptime,
				// The growth keeps the loop terminating under the race
				// detector's ~10x engine slowdown; plain builds finish
				// within a handful of kills before it matters.
				Grow:      15 * time.Millisecond,
				MaxRounds: 150,
			}
			kills, err := killer.Run(context.Background(), start, done)
			if err != nil {
				t.Fatal(err)
			}
			if kills < 1 {
				t.Fatalf("job survived with zero kills — the chaos loop exercised nothing; shrink MaxUptime or grow the job")
			}
			t.Logf("workers=%d: recovered from %d SIGKILLs", tc.workers, kills)
			got, err := os.ReadFile(filepath.Join(storeDir, "j000001", "results.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("recovered results differ from uninterrupted run: got %d bytes, want %d", len(got), len(want))
			}
		})
	}
}

// waitForFile polls for a file (the child's atomically-written address) and
// returns its contents.
func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return string(data), nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return "", fmt.Errorf("file %s did not appear within %s", path, timeout)
}

// submitKillJob POSTs the job and checks the 201.
func submitKillJob(addr string, spec JobSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	return nil
}
