package service

import (
	"os"
	"path/filepath"
	"testing"
)

func tinySweep(workers int) JobSpec {
	return JobSpec{Sweep: &SweepJob{
		Base:      testScenario,
		PowersDB:  []float64{0, 10},
		Protocols: nil, // all five
		Workers:   workers,
	}}
}

func TestStoreCreateLoadRoundTrip(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := st.Create(tinySweep(2))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != "j000001" {
		t.Fatalf("first id = %q, want j000001", id1)
	}
	id2, err := st.Create(tinySweep(0))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Load(id1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQueued || rec.Spec.Sweep == nil || rec.Spec.Sweep.Workers != 2 {
		t.Errorf("loaded record mismatch: %+v", rec)
	}
	if err := st.SetState(id2, StateDone, ""); err != nil {
		t.Fatal(err)
	}
	recs, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != id1 || recs[1].ID != id2 || recs[1].State != StateDone {
		t.Errorf("LoadAll = %+v", recs)
	}
}

func TestStoreReopenContinuesIDs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(tinySweep(0)); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := st2.Create(tinySweep(0))
	if err != nil {
		t.Fatal(err)
	}
	if id != "j000002" {
		t.Errorf("id after reopen = %q, want j000002 (no collision with existing jobs)", id)
	}
}

func TestStoreIgnoresInterruptedCreate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-create: a temp directory that never got renamed.
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-j000009"), 0o755); err != nil {
		t.Fatal(err)
	}
	recs, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("interrupted create surfaced as a job: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-j000009")); !os.IsNotExist(err) {
		t.Error("interrupted create directory not cleaned up by rescan")
	}
}
