package service

// cachelog.go — the durable shared tier of the scenario-keyed result
// cache (internal/cache). The log sits next to the job store and holds
// one fixed-size CRC-checked record per cached solve, append-only.
// Startup replays it into the in-process store, so repeat jobs hit cache
// across daemon restarts; every fill is appended through a write-behind
// buffer. Fills are cache warmth, not correctness: a crash loses at most
// the buffered tail, which the next run simply re-solves — the byte-exact
// durability contract of the job store is not needed here, only the
// guarantee that a torn or corrupt tail can never poison replay, which
// the record CRCs plus truncate-on-replay compaction provide.

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"bicoop/internal/cache"
)

// CacheLog is the append-only durable tier behind one cache store.
type CacheLog struct {
	path  string
	store *cache.Store

	mu      sync.Mutex
	f       *os.File
	buf     *bufio.Writer
	scratch []byte
}

// OpenCacheLog replays the cache log at path into store, compacts it when
// its tail is torn or stale records have bloated it, registers the log as
// the store's fill sink, and returns the open log ready for appends.
// A missing file is an empty cache, not an error.
//
// Compaction rewrites via tmp+rename; the live file only ever grows by
// whole appended records, and replay stops at the first record whose CRC
// fails, so a crash at any point leaves a replayable log.
//
//bicoop:atomicio — append-only log; compaction goes through tmp+rename
func OpenCacheLog(path string, store *cache.Store) (*CacheLog, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("reading cache log: %w", err)
	}
	records := 0
	_, clean := cache.Replay(data, func(k cache.Key, v cache.Value) {
		records++
		store.Add(k, v)
	})
	// Compact when the tail is torn (crash mid-append) or when evicted and
	// superseded records have bloated the log past twice the live entry
	// count: snapshot the surviving entries via tmp+rename.
	if !clean || records > 2*store.Len() {
		if err := snapshotCacheLog(path, store); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening cache log: %w", err)
	}
	l := &CacheLog{path: path, store: store, f: f, buf: bufio.NewWriterSize(f, 1<<16)}
	store.SetSink(l.record)
	return l, nil
}

// snapshotCacheLog rewrites the log as a snapshot of the store's live
// entries.
//
//bicoop:atomicio — tmp+rename so a crash mid-compaction leaves the old log
func snapshotCacheLog(path string, store *cache.Store) error {
	var buf []byte
	store.Range(func(k cache.Key, v cache.Value) bool {
		buf = cache.AppendRecord(buf, k, v)
		return true
	})
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("writing cache snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("installing cache snapshot: %w", err)
	}
	return nil
}

// record appends one fill through the write-behind buffer; it is the
// store's fill sink. A bufio error is sticky and surfaces on Flush/Close.
func (l *CacheLog) record(k cache.Key, v cache.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scratch = cache.AppendRecord(l.scratch[:0], k, v)
	l.buf.Write(l.scratch)
}

// Flush pushes buffered records to the file. The service flushes after
// every job, bounding what a crash can lose to one job's unflushed tail.
func (l *CacheLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.buf.Flush(); err != nil {
		return fmt.Errorf("flushing cache log: %w", err)
	}
	return nil
}

// Close flushes and closes the log file. The store's sink is left in
// place but writes after Close surface errors on the next Flush; close
// the log only after the engine is done filling.
func (l *CacheLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.buf.Flush()
	cerr := l.f.Close()
	if ferr != nil {
		return fmt.Errorf("flushing cache log: %w", ferr)
	}
	if cerr != nil {
		return fmt.Errorf("closing cache log: %w", cerr)
	}
	return nil
}

// Compact flushes pending appends and rewrites the log as a snapshot of
// the store's live entries, dropping evicted and superseded records.
//
// The snapshot installs via tmp+rename; the append handle is reopened
// O_APPEND afterwards, so a crash between the two leaves a valid snapshot
// and the next open just replays it.
//
//bicoop:atomicio — snapshot installs via tmp+rename, then reopen O_APPEND
func (l *CacheLog) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.buf.Flush(); err != nil {
		return fmt.Errorf("flushing cache log: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("closing cache log for compaction: %w", err)
	}
	if err := snapshotCacheLog(l.path, l.store); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("reopening cache log: %w", err)
	}
	l.f = f
	l.buf.Reset(f)
	return nil
}
