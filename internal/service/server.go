package service

// server.go — the HTTP/JSON face of the job service. Routes:
//
//	POST   /v1/jobs              submit a JobSpec        → 201 {"id",...}
//	GET    /v1/jobs              list jobs               → 200 [JobStatus]
//	GET    /v1/jobs/{id}         one job's status        → 200 JobStatus
//	GET    /v1/jobs/{id}/results CSV (checkpointed prefix while live)
//	DELETE /v1/jobs/{id}         cancel                  → 202 JobStatus
//	GET    /healthz              liveness + drain flag
//	GET    /stats                result-cache counters   → 200 {"cache":...}
//
// Failure surfaces are structured and typed: validation errors are 400s
// carrying the facade's sentinel text, an unknown id is 404, a full queue
// sheds with 429 + Retry-After, a draining server refuses with 503, and a
// handler panic is contained to a 500 by the recovery middleware — the
// service keeps running, matching the engine's own panic containment.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"

	"bicoop"
)

// maxSpecBytes bounds a submission body; a campaign of thousands of specs
// fits comfortably, a runaway client does not.
const maxSpecBytes = 8 << 20

// retryAfterSeconds is the backoff hint sent with 429 and 503 responses.
const retryAfterSeconds = 5

// httpError is the structured error body of every non-2xx response.
type httpError struct {
	Error string `json:"error"`
}

// NewHandler builds the service's HTTP handler.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			writeError(w, fmt.Errorf("%w: reading body: %w", ErrInvalidJob, err))
			return
		}
		if len(body) > maxSpecBytes {
			writeError(w, fmt.Errorf("%w: spec exceeds %d bytes", ErrInvalidJob, maxSpecBytes))
			return
		}
		spec, err := ParseJobSpec(body)
		if err != nil {
			writeError(w, err)
			return
		}
		id, err := svc.Submit(spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, JobStatus{ID: id, State: StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := svc.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		data, state, err := svc.Results(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("X-Job-State", string(state))
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := svc.Cancel(id); err != nil {
			writeError(w, err)
			return
		}
		st, err := svc.Status(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": svc.Draining()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"cache": svc.CacheStats()})
	})
	return recoverPanics(mux)
}

// recoverPanics contains a handler panic to a structured 500 so one bad
// request cannot take the service down.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				debug.PrintStack()
				writeJSON(w, http.StatusInternalServerError,
					httpError{Error: fmt.Sprintf("internal panic: %v", v)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// writeError maps service and facade sentinels to status codes with a
// structured body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrInvalidJob),
		errors.Is(err, bicoop.ErrInvalidSweepSpec),
		errors.Is(err, bicoop.ErrInvalidRegionSpec),
		errors.Is(err, bicoop.ErrInvalidSimSpec),
		errors.Is(err, bicoop.ErrInvalidScenario),
		errors.Is(err, bicoop.ErrInvalidRates),
		errors.Is(err, bicoop.ErrInvalidTrials),
		errors.Is(err, bicoop.ErrInvalidBlockLength),
		errors.Is(err, bicoop.ErrUnknownProtocol),
		errors.Is(err, bicoop.ErrUnknownBound):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, httpError{Error: err.Error()})
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
