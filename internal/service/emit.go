package service

// emit.go — the CSV emitters binding each streaming engine entry point to a
// ResultLog. Each emitter wires the full resume recipe in one place: Start
// from the log's loaded watermark, header exactly when fresh, Checkpoint
// when the log persists one, and a final flush so rows past the last
// checkpoint survive a graceful stop as valid partial output. The sweep row
// format is the bcc CLI's, unchanged — the CLI now emits through RunSweep,
// so there is exactly one tested implementation of the byte-offset resume
// discipline.

import (
	"context"
	"strconv"

	"bicoop"
)

// sweepHeader/sweepRow: one row per grid point, bcc's historical format.
const (
	sweepHeader = "index,power_db,gab_db,gar_db,gbr_db,protocol,bound,ra,rb,sum\n"
	sweepRow    = "%d,%g,%g,%g,%g,%s,%s,%.12g,%.12g,%.12g\n"
)

// RunSweep streams a sweep's points into the log as CSV, resuming past the
// log's watermark. The watermark unit is grid points.
func RunSweep(ctx context.Context, eng *bicoop.Engine, spec bicoop.SweepSpec, log *ResultLog) error {
	spec.Start = log.Watermark()
	if log.Checkpointed() {
		spec.Checkpoint = log
	}
	if log.Fresh() {
		if err := log.Printf(sweepHeader); err != nil {
			return err
		}
	}
	runErr := eng.Sweep(ctx, spec, func(pt bicoop.SweepPoint) error {
		return log.Printf(sweepRow,
			pt.Index, pt.PowerDB, pt.Scenario.GabDB, pt.Scenario.GarDB, pt.Scenario.GbrDB,
			pt.Protocol, pt.Bound, pt.Result.Point.Ra, pt.Result.Point.Rb, pt.Result.Sum)
	})
	if err := log.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// regionHeader/regionRow: one row per polygon vertex, curves in enumeration
// order (scenario-major). The watermark unit is whole curves, matching
// RegionBatch yields.
const (
	regionHeader = "scenario_idx,curve_idx,protocol,bound,vertex,ra,rb\n"
	regionRow    = "%d,%d,%s,%s,%d,%.12g,%.12g\n"
)

// RunRegionBatch streams a region batch's completed curves into the log as
// CSV, one row per vertex, resuming past the log's watermark (in curves).
func RunRegionBatch(ctx context.Context, eng *bicoop.Engine, spec bicoop.RegionBatchSpec, log *ResultLog) error {
	spec.Start = log.Watermark()
	if log.Checkpointed() {
		spec.Checkpoint = log
	}
	if log.Fresh() {
		if err := log.Printf(regionHeader); err != nil {
			return err
		}
	}
	runErr := eng.RegionBatch(ctx, spec, func(pt bicoop.RegionBatchPoint) error {
		for v, p := range pt.Region.Vertices() {
			if err := log.Printf(regionRow,
				pt.ScenarioIdx, pt.CurveIdx, pt.Curve.Protocol, pt.Curve.Bound, v, p.Ra, p.Rb); err != nil {
				return err
			}
		}
		return nil
	})
	if err := log.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// campaignHeader/campaign rows: long format, one row per (run, metric,
// label) triple, so heterogeneous campaigns (fading and bit-true specs
// mixed) share one schema. Fading protocols emit in AllProtocols order so
// the file is deterministic despite the map-typed result. The watermark
// unit is completed runs, matching SimulateBatch yields.
const (
	campaignHeader   = "run,metric,label,value\n"
	campaignFloatRow = "%d,%s,%s,%.12g\n"
	campaignIntRow   = "%d,%s,%s,%d\n"
)

// RunCampaign streams a campaign's completed runs into the log as long-form
// CSV, resuming past the log's watermark (in runs).
func RunCampaign(ctx context.Context, eng *bicoop.Engine, spec bicoop.CampaignSpec, log *ResultLog) error {
	spec.Start = log.Watermark()
	if log.Checkpointed() {
		spec.Checkpoint = log
	}
	if log.Fresh() {
		if err := log.Printf(campaignHeader); err != nil {
			return err
		}
	}
	_, runErr := eng.SimulateBatch(ctx, spec, func(i int, r bicoop.SimResult) error {
		return emitSimResult(log, i, r)
	})
	if err := log.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// emitSimResult writes one completed run's rows.
func emitSimResult(log *ResultLog, run int, r bicoop.SimResult) error {
	if err := log.Printf(campaignIntRow, run, "trials", "", r.Trials); err != nil {
		return err
	}
	if r.Fading != nil {
		for _, p := range bicoop.AllProtocols() {
			st, ok := r.Fading[p]
			if !ok {
				continue
			}
			if err := log.Printf(campaignFloatRow, run, "mean_opt_sum_rate", p.String(), st.MeanOptSumRate); err != nil {
				return err
			}
			if err := log.Printf(campaignFloatRow, run, "outage_prob", p.String(), st.OutageProb); err != nil {
				return err
			}
		}
	}
	if r.BitTrue != nil {
		if err := log.Printf(campaignFloatRow, run, "success_prob", "", r.BitTrue.SuccessProb); err != nil {
			return err
		}
		if err := log.Printf(campaignIntRow, run, "relay_failures", "", r.BitTrue.RelayFailures); err != nil {
			return err
		}
		if err := log.Printf(campaignIntRow, run, "terminal_failures", "", r.BitTrue.TerminalFailures); err != nil {
			return err
		}
	}
	for phase, d := range r.Durations {
		if err := log.Printf(campaignFloatRow, run, "duration", strconv.Itoa(phase), d); err != nil {
			return err
		}
	}
	return nil
}
