package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bicoop"
)

func TestLoadLogCheckpointEmptyFileIsFresh(t *testing.T) {
	// A crash between creating the checkpoint file and the first completed
	// write leaves a zero-length file; that is a fresh run, not corruption.
	path := filepath.Join(t.TempDir(), "ck")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := loadLogCheckpoint(path)
	if err != nil || ck.Watermark != 0 || ck.Offset != 0 {
		t.Fatalf("empty checkpoint: (%+v, %v), want fresh run", ck, err)
	}
}

func TestLoadLogCheckpointCorruptFailsLoud(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	for _, body := range []string{"not json", `{"watermark":-3,"offset":0}`, `{"watermark":1,"offset":-9}`} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := loadLogCheckpoint(path)
		if err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
			t.Errorf("body %q: err = %v, want corrupt-checkpoint error", body, err)
		}
	}
}

func TestOpenResultLogResumeNeedsOutputFile(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "ck")
	if err := os.WriteFile(ckPath, []byte(`{"watermark":5,"offset":100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenResultLog(filepath.Join(dir, "missing.csv"), ckPath)
	if err == nil || !strings.Contains(err.Error(), "expects output") {
		t.Errorf("resume without the output file: err = %v", err)
	}
}

// interruptResume drives an emitter through deadline interruptions until it
// completes, then checks the final file is byte-identical to want.
func interruptResume(t *testing.T, want []byte, run func(ctx context.Context, log *ResultLog) error) {
	t.Helper()
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "out.csv")
	ckPath := filepath.Join(dir, "ck")
	for attempt := 0; attempt < 200; attempt++ {
		log, err := OpenResultLog(csvPath, ckPath)
		if err != nil {
			t.Fatal(err)
		}
		// The budget grows with the attempt so the loop always terminates.
		budget := time.Duration(2+3*attempt) * time.Millisecond
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		runErr := run(ctx, log)
		cancel()
		if cerr := log.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if runErr == nil {
			// The harness proves nothing unless a deadline actually fired
			// mid-run at least once before the completing attempt.
			if attempt == 0 {
				t.Fatal("run completed within the first budget; grow the workload so resume is exercised")
			}
			got, err := os.ReadFile(csvPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("after %d interruptions: output differs from uninterrupted run (got %d bytes, want %d)", attempt, len(got), len(want))
			}
			return
		}
		if !errors.Is(runErr, context.DeadlineExceeded) {
			t.Fatalf("attempt %d: %v", attempt, runErr)
		}
	}
	t.Fatal("run never completed within the attempt budget")
}

func TestRunSweepInterruptResumeByteIdentical(t *testing.T) {
	eng := bicoop.NewEngine()
	spec := bicoop.SweepSpec{
		Base:     testScenario,
		PowersDB: powerAxis(0, 20, 0.05),
		Workers:  2,
	}
	want := referenceCSV(t, JobSpec{Sweep: &SweepJob{
		Base: spec.Base, PowersDB: spec.PowersDB, Workers: spec.Workers,
	}})
	interruptResume(t, want, func(ctx context.Context, log *ResultLog) error {
		return RunSweep(ctx, eng, spec, log)
	})
}

func TestRunRegionBatchInterruptResumeByteIdentical(t *testing.T) {
	eng := bicoop.NewEngine()
	spec := bicoop.RegionBatchSpec{
		Scenarios: []bicoop.Scenario{
			testScenario,
			{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 15, GabDB: -4, GarDB: 2, GbrDB: 3},
		},
		Curves: []bicoop.RegionCurve{
			{Protocol: bicoop.MABC, Bound: bicoop.Inner},
			{Protocol: bicoop.TDBC, Bound: bicoop.Inner},
			{Protocol: bicoop.HBC, Bound: bicoop.Outer},
		},
		// 241 angles keeps the batch comfortably larger than the first
		// interrupt budget on fast machines, so the resume path is always
		// exercised at least once.
		Angles:  241,
		Workers: 2,
	}
	want := referenceCSV(t, JobSpec{RegionBatch: &RegionJob{
		Scenarios: spec.Scenarios, Curves: spec.Curves, Angles: spec.Angles, Workers: spec.Workers,
	}})
	interruptResume(t, want, func(ctx context.Context, log *ResultLog) error {
		return RunRegionBatch(ctx, eng, spec, log)
	})
}

func TestRunCampaignInterruptResumeByteIdentical(t *testing.T) {
	eng := bicoop.NewEngine()
	var specs []bicoop.SimSpec
	var jobs []SimJob
	for seed := int64(1); seed <= 10; seed++ {
		specs = append(specs, bicoop.SimSpec{
			Fading: &bicoop.FadingSpec{Scenario: testScenario},
			Trials: 500, Seed: seed,
		})
		jobs = append(jobs, SimJob{
			Fading: &bicoop.FadingSpec{Scenario: testScenario},
			Trials: 500, Seed: seed,
		})
	}
	spec := bicoop.CampaignSpec{Specs: specs, Workers: 2}
	want := referenceCSV(t, JobSpec{Campaign: &CampaignJob{Specs: jobs, Workers: 2}})
	interruptResume(t, want, func(ctx context.Context, log *ResultLog) error {
		return RunCampaign(ctx, eng, spec, log)
	})
}
