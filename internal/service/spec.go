package service

// spec.go — the wire form of a job. The engine specs carry fields that
// cannot cross a JSON boundary (Checkpoint is an interface the service owns,
// Retry and Progress hold funcs), so the service accepts JSON-clean mirrors
// and converts at admission time. Enums travel as names via the facade's
// TextMarshalers ("MABC", "inner"); retry and deadline policy are plain
// numbers. Validation happens before a job is queued, with the facade's
// typed sentinels surfacing as HTTP 400s.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"bicoop"
)

// SweepJob mirrors bicoop.SweepSpec minus the service-owned resume fields.
type SweepJob struct {
	Protocols  []bicoop.Protocol       `json:"protocols,omitempty"`
	Bound      bicoop.Bound            `json:"bound,omitempty"`
	Base       bicoop.Scenario         `json:"base"`
	PowersDB   []float64               `json:"powers_db,omitempty"`
	Placements []bicoop.RelayPlacement `json:"placements,omitempty"`
	Erasures   []bicoop.ErasureLinks   `json:"erasures,omitempty"`
	Workers    int                     `json:"workers,omitempty"`
}

func (j *SweepJob) spec() bicoop.SweepSpec {
	return bicoop.SweepSpec{
		Protocols:  j.Protocols,
		Bound:      j.Bound,
		Base:       j.Base,
		PowersDB:   j.PowersDB,
		Placements: j.Placements,
		Erasures:   j.Erasures,
		Workers:    j.Workers,
	}
}

// RegionJob mirrors bicoop.RegionBatchSpec minus the resume fields.
type RegionJob struct {
	Scenarios []bicoop.Scenario    `json:"scenarios"`
	Curves    []bicoop.RegionCurve `json:"curves"`
	Angles    int                  `json:"angles,omitempty"`
	Workers   int                  `json:"workers,omitempty"`
}

func (j *RegionJob) spec() bicoop.RegionBatchSpec {
	return bicoop.RegionBatchSpec{
		Scenarios: j.Scenarios,
		Curves:    j.Curves,
		Angles:    j.Angles,
		Workers:   j.Workers,
	}
}

// SimJob mirrors bicoop.SimSpec minus the Progress callback.
type SimJob struct {
	Fading      *bicoop.FadingSpec      `json:"fading,omitempty"`
	BitTrueTDBC *bicoop.BitTrueTDBCSpec `json:"bit_true_tdbc,omitempty"`
	BitTrueMABC *bicoop.BitTrueMABCSpec `json:"bit_true_mabc,omitempty"`
	Trials      int                     `json:"trials,omitempty"`
	Seed        int64                   `json:"seed,omitempty"`
	Workers     int                     `json:"workers,omitempty"`
}

// CampaignJob mirrors bicoop.CampaignSpec minus the resume fields.
type CampaignJob struct {
	Specs   []SimJob `json:"specs"`
	Workers int      `json:"workers,omitempty"`
}

func (j *CampaignJob) spec() bicoop.CampaignSpec {
	out := bicoop.CampaignSpec{Workers: j.Workers}
	for _, s := range j.Specs {
		out.Specs = append(out.Specs, bicoop.SimSpec{
			Fading:      s.Fading,
			BitTrueTDBC: s.BitTrueTDBC,
			BitTrueMABC: s.BitTrueMABC,
			Trials:      s.Trials,
			Seed:        s.Seed,
			Workers:     s.Workers,
		})
	}
	return out
}

// RetryConfig is the wire form of bicoop.RetryPolicy: plain numbers, no
// classifier func (the service retries every chunk error).
type RetryConfig struct {
	MaxAttempts int   `json:"max_attempts"`
	BaseDelayMS int64 `json:"base_delay_ms,omitempty"`
	MaxDelayMS  int64 `json:"max_delay_ms,omitempty"`
}

func (c *RetryConfig) policy() *bicoop.RetryPolicy {
	if c == nil {
		return nil
	}
	return &bicoop.RetryPolicy{
		MaxAttempts: c.MaxAttempts,
		BaseDelay:   time.Duration(c.BaseDelayMS) * time.Millisecond,
		MaxDelay:    time.Duration(c.MaxDelayMS) * time.Millisecond,
	}
}

// JobSpec is a submitted job: exactly one of Sweep, RegionBatch and
// Campaign, plus optional retry policy and deadline. It is stored verbatim
// as the job's spec.json, so a restart re-derives exactly the work the
// submission described.
type JobSpec struct {
	Sweep       *SweepJob    `json:"sweep,omitempty"`
	RegionBatch *RegionJob   `json:"region_batch,omitempty"`
	Campaign    *CampaignJob `json:"campaign,omitempty"`
	// Retry arms chunk retries for the job (see bicoop.RetryPolicy).
	Retry *RetryConfig `json:"retry,omitempty"`
	// TimeoutMS bounds the job's total running time (resume time included
	// per process lifetime — the deadline restarts with the job). Zero means
	// no deadline. A job past its deadline lands in state "timeout" with its
	// partial results intact, mirroring bcc's exit-124 contract.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ErrInvalidJob tags admission failures that are not one of the facade's
// typed spec sentinels (wrong variant count, bad retry numbers).
var ErrInvalidJob = fmt.Errorf("service: invalid job")

// Validate checks the job without running it, with the same sentinels the
// engine would surface — a malformed job is rejected at admission, before
// anything is queued or persisted.
func (s JobSpec) Validate() error {
	variants := 0
	for _, set := range [...]bool{s.Sweep != nil, s.RegionBatch != nil, s.Campaign != nil} {
		if set {
			variants++
		}
	}
	if variants != 1 {
		return fmt.Errorf("%w: %d of sweep/region_batch/campaign set, want exactly 1", ErrInvalidJob, variants)
	}
	if s.Retry != nil && s.Retry.MaxAttempts <= 0 {
		return fmt.Errorf("%w: retry.max_attempts must be positive, got %d", ErrInvalidJob, s.Retry.MaxAttempts)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrInvalidJob, s.TimeoutMS)
	}
	switch {
	case s.Sweep != nil:
		return s.Sweep.spec().Validate()
	case s.RegionBatch != nil:
		return s.RegionBatch.spec().Validate()
	default:
		return s.Campaign.spec().Validate()
	}
}

// ParseJobSpec decodes and validates a JSON job submission. Unknown fields
// are rejected so a typo'd spec fails loud instead of silently running the
// default grid.
func ParseJobSpec(data []byte) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("%w: %w", ErrInvalidJob, err)
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// run executes the job's engine call through the log, with the service-owned
// resume fields wired by the emitters.
func (s JobSpec) run(ctx context.Context, eng *bicoop.Engine, log *ResultLog) error {
	switch {
	case s.Sweep != nil:
		spec := s.Sweep.spec()
		spec.Retry = s.Retry.policy()
		return RunSweep(ctx, eng, spec, log)
	case s.RegionBatch != nil:
		spec := s.RegionBatch.spec()
		spec.Retry = s.Retry.policy()
		return RunRegionBatch(ctx, eng, spec, log)
	default:
		spec := s.Campaign.spec()
		spec.Retry = s.Retry.policy()
		return RunCampaign(ctx, eng, spec, log)
	}
}
