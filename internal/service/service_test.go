package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bicoop"
)

// testScenario is the paper's Fig 3 reference geometry.
var testScenario = bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}

// longSweep is a grid big enough that a job is reliably observable in the
// running state and interruptible mid-flight — tens of thousands of LP
// points (warm-started LPs run in tens of microseconds, so "long" needs to
// be genuinely large).
func longSweep(workers int) JobSpec {
	spec := JobSpec{Sweep: &SweepJob{
		Base:     testScenario,
		Workers:  workers,
		PowersDB: powerAxis(0, 20, 0.1),
	}}
	for i := 0; i < 24; i++ {
		spec.Sweep.Placements = append(spec.Sweep.Placements, bicoop.RelayPlacement{
			Pos: 0.05 + 0.9*float64(i)/23, Exponent: 3, GabDB: testScenario.GabDB,
		})
	}
	return spec
}

// powerAxis builds an index-stepped power axis (no accumulated drift), the
// same construction the CLI uses so resumed runs rebuild identical grids.
func powerAxis(lo, hi, step float64) []float64 {
	var out []float64
	for i := 0; ; i++ {
		p := lo + float64(i)*step
		if p > hi+1e-9 {
			return out
		}
		out = append(out, p)
	}
}

// newTestService assembles a service over a fresh store in dir.
func newTestService(t *testing.T, dir string, opts Options) (*Service, *Store) {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(context.Background(), st, bicoop.NewEngine(), opts)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, st
}

// referenceCSV runs the job spec's engine call uninterrupted into a file and
// returns the bytes — the ground truth recovered runs must match exactly.
func referenceCSV(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.csv")
	log, err := OpenResultLog(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.run(context.Background(), bicoop.NewEngine(), log); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func waitState(t *testing.T, svc *Service, id string, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := svc.Status(id)
	t.Fatalf("job %s never reached state %s (currently %s, err %q)", id, want, st.State, st.Error)
}

func TestJobRunsToDone(t *testing.T) {
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{})
	spec := tinySweep(0)
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	got, state, err := svc.Results(id)
	if err != nil || state != StateDone {
		t.Fatalf("Results: state %s, err %v", state, err)
	}
	want := referenceCSV(t, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("service results differ from direct engine run:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{})
	if _, err := svc.Submit(JobSpec{}); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("empty job: err = %v, want ErrInvalidJob", err)
	}
	two := tinySweep(0)
	two.Campaign = &CampaignJob{Specs: []SimJob{{Fading: &bicoop.FadingSpec{Scenario: testScenario}}}}
	if _, err := svc.Submit(two); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("two variants: err = %v, want ErrInvalidJob", err)
	}
	region := JobSpec{RegionBatch: &RegionJob{Scenarios: []bicoop.Scenario{testScenario}}}
	if _, err := svc.Submit(region); !errors.Is(err, bicoop.ErrInvalidRegionSpec) {
		t.Errorf("region with no curves: err = %v, want ErrInvalidRegionSpec", err)
	}
	badRetry := tinySweep(0)
	badRetry.Retry = &RetryConfig{MaxAttempts: -1}
	if _, err := svc.Submit(badRetry); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("negative retry attempts: err = %v, want ErrInvalidJob", err)
	}
}

func TestQueueShedsWhenFull(t *testing.T) {
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{QueueCap: 2, Executors: 1})
	// Occupy the single executor with a long job, then fill the queue.
	id, err := svc.Submit(longSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, id, StateRunning, 10*time.Second)
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(tinySweep(0)); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := svc.Submit(tinySweep(0)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
}

func TestCancelRunningJobKeepsValidPrefix(t *testing.T) {
	spec := longSweep(2)
	want := referenceCSV(t, spec)
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{})
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some checkpointed progress before canceling.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Watermark > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s (err %q), want canceled", st.State, st.Error)
	}
	got, _, err := svc.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || !bytes.HasPrefix(want, got) {
		t.Errorf("canceled job's %d result bytes are not a prefix of the uninterrupted run", len(got))
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{Executors: 1})
	blocker, err := svc.Submit(longSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, blocker, StateRunning, 10*time.Second)
	id, err := svc.Submit(tinySweep(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("canceled queued job state = %s, want canceled", st.State)
	}
}

func TestJobDeadlineTimesOut(t *testing.T) {
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{})
	spec := longSweep(1)
	spec.TimeoutMS = 50
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateTimeout {
		t.Errorf("state = %s (err %q), want timeout", st.State, st.Error)
	}
}

func TestDrainParksRunningJobAndRestartResumes(t *testing.T) {
	spec := longSweep(2)
	want := referenceCSV(t, spec)
	dir := filepath.Join(t.TempDir(), "jobs")

	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(context.Background(), st1, bicoop.NewEngine(), Options{})
	if err := svc1.Start(); err != nil {
		t.Fatal(err)
	}
	id, err := svc1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for checkpointed progress so the drain actually parks mid-job.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		js, err := svc1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if js.Watermark > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := svc1.Drain(ctx); err != nil {
		t.Fatalf("drain did not finish within deadline: %v", err)
	}
	cancel()
	if _, err := svc1.Submit(tinySweep(0)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: err = %v, want ErrDraining", err)
	}
	rec, err := st1.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQueued {
		t.Fatalf("drained job durable state = %s, want queued (parked)", rec.State)
	}

	// "Restart": a fresh service over the same store resumes the parked job.
	svc2, _ := newTestService(t, dir, Options{})
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	js, err := svc2.Wait(wctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != StateDone {
		t.Fatalf("resumed job state = %s (err %q), want done", js.State, js.Error)
	}
	got, _, err := svc2.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("drain+resume results differ from uninterrupted run: got %d bytes, want %d", len(got), len(want))
	}
}

func TestCampaignJobRunsToDone(t *testing.T) {
	spec := JobSpec{Campaign: &CampaignJob{Specs: []SimJob{
		{Fading: &bicoop.FadingSpec{Scenario: testScenario}, Trials: 200, Seed: 7},
		{BitTrueTDBC: &bicoop.BitTrueTDBCSpec{
			Links: bicoop.ErasureLinks{EpsAR: 0.1, EpsBR: 0.1, EpsAB: 0.5},
			Rates: bicoop.RatePoint{Ra: 0.2, Rb: 0.2}, BlockLength: 64,
		}, Trials: 50, Seed: 3},
	}}}
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), Options{})
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	got, _, err := svc.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceCSV(t, spec); !bytes.Equal(got, want) {
		t.Errorf("campaign results differ from direct run")
	}
}
