package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bicoop"
	"bicoop/internal/cache"
	"bicoop/internal/protocols"
)

func logKey(i int) cache.Key {
	return cache.SumRateKey(protocols.MABC, protocols.BoundInner, float64(i), -7, 0, 5)
}

func TestCacheLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	st1 := cache.NewStore(1024)
	log1, err := OpenCacheLog(path, st1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		st1.Add(logKey(i), cache.MakeValue(float64(i), 1, 2, []float64{0.5, 0.5}))
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := cache.NewStore(1024)
	log2, err := OpenCacheLog(path, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if st2.Len() != 50 {
		t.Fatalf("replayed %d entries, want 50", st2.Len())
	}
	v, ok := st2.Lookup(logKey(17))
	if !ok || v.Sum != 17 || v.NDur != 2 {
		t.Fatalf("replayed entry 17: %+v ok=%v", v, ok)
	}
}

func TestCacheLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	st := cache.NewStore(1024)
	log, err := OpenCacheLog(path, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.Add(logKey(i), cache.MakeValue(float64(i), 0, 0, nil))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, cache.RecordSize/2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := cache.NewStore(1024)
	log2, err := OpenCacheLog(path, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if st2.Len() != 10 {
		t.Fatalf("replayed %d entries past torn tail, want 10", st2.Len())
	}
	// The torn tail must be compacted away so later appends stay aligned.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(10*cache.RecordSize) {
		t.Fatalf("log size %d after torn-tail recovery, want %d", info.Size(), 10*cache.RecordSize)
	}
}

func TestCacheLogCompactsBloat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	big := cache.NewStore(1024)
	log, err := OpenCacheLog(path, big)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		big.Add(logKey(i), cache.MakeValue(float64(i), 0, 0, nil))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Replaying 300 records into a 64-entry store leaves most of the log
	// dead; open must snapshot it down to the survivors.
	small := cache.NewStore(64)
	log2, err := OpenCacheLog(path, small)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(small.Len()*cache.RecordSize) {
		t.Fatalf("log size %d after compaction, want %d (%d live entries)",
			info.Size(), small.Len()*cache.RecordSize, small.Len())
	}
}

func TestCacheLogCompactMethod(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	st := cache.NewStore(1024)
	log, err := OpenCacheLog(path, st)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	for i := 0; i < 20; i++ {
		st.Add(logKey(i), cache.MakeValue(float64(i), 0, 0, nil))
	}
	if err := log.Compact(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(20*cache.RecordSize) {
		t.Fatalf("log size %d after Compact, want %d", info.Size(), 20*cache.RecordSize)
	}
	// Appends keep working after compaction.
	st.Add(logKey(99), cache.MakeValue(99, 0, 0, nil))
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	if info, err = os.Stat(path); err != nil || info.Size() != int64(21*cache.RecordSize) {
		t.Fatalf("log size %v (err %v) after post-compact append, want %d", info.Size(), err, 21*cache.RecordSize)
	}
}

// coldReferenceCSV runs the job spec uninterrupted on a cache-enabled
// engine with a throwaway in-memory store: every point misses and solves
// cold, which is exactly the canonical output cached runs must reproduce.
// (The warm-started cache-off reference is NOT comparable: degenerate LPs
// have multiple optimal vertices and the warm pivot path can pick a
// different one — see the cache package doc.)
func coldReferenceCSV(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.csv")
	log, err := OpenResultLog(path, "")
	if err != nil {
		t.Fatal(err)
	}
	eng := bicoop.NewEngine(bicoop.WithCacheStore(cache.NewStore(1 << 14)))
	if err := spec.run(context.Background(), eng, log); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServiceCacheAcrossRestart pins the durable tier's contract end to
// end: a cached service produces byte-identical results to the canonical
// cold run, and after a restart (new store replayed from the log) a
// repeat of the same job is served entirely from cache — hits observed,
// zero misses — with, again, byte-identical results.
func TestServiceCacheAcrossRestart(t *testing.T) {
	spec := tinySweep(2)
	want := coldReferenceCSV(t, spec)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "cache.log")

	runOnce := func(jobsDir string) []byte {
		cst := cache.NewStore(1 << 14)
		clog, err := OpenCacheLog(logPath, cst)
		if err != nil {
			t.Fatal(err)
		}
		defer clog.Close()
		st, err := OpenStore(filepath.Join(dir, jobsDir))
		if err != nil {
			t.Fatal(err)
		}
		eng := bicoop.NewEngine(bicoop.WithCacheStore(cst))
		svc := New(context.Background(), st, eng, Options{CacheLog: clog})
		if err := svc.Start(); err != nil {
			t.Fatal(err)
		}
		id, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		data, state, err := svc.Results(id)
		if err != nil || state != StateDone {
			t.Fatalf("results: state=%s err=%v", state, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		cs := svc.CacheStats()
		if jobsDir == "jobs1" {
			if cs.Fills == 0 {
				t.Fatal("first run filled nothing")
			}
		} else {
			if cs.Hits == 0 || cs.Misses != 0 {
				t.Fatalf("restarted run should be all hits: %+v", cs)
			}
		}
		return data
	}

	got1 := runOnce("jobs1")
	got2 := runOnce("jobs2")
	if !bytes.Equal(got1, want) {
		t.Error("cached run differs from the canonical cold reference")
	}
	if !bytes.Equal(got2, want) {
		t.Error("cache-served rerun differs from the canonical cold reference")
	}
}
