package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Service) {
	t.Helper()
	svc, _ := newTestService(t, filepath.Join(t.TempDir(), "jobs"), opts)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc
}

func postJob(t *testing.T, srv *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

const tinySweepJSON = `{"sweep": {"base": {"PowerDB": 10, "GabDB": -7, "GarDB": 0, "GbrDB": 5}, "powers_db": [0, 10], "protocols": ["MABC", "TDBC"]}}`

func TestHTTPSubmitAndLifecycle(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	resp := postJob(t, srv, tinySweepJSON)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit response: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := svc.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	get, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var got JobStatus
	if err := json.NewDecoder(get.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("status after wait: %+v", got)
	}

	res, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK || res.Header.Get("X-Job-State") != "done" {
		t.Fatalf("results: status %d, X-Job-State %q", res.StatusCode, res.Header.Get("X-Job-State"))
	}
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("index,power_db")) || bytes.Count(data, []byte("\n")) != 1+2*2 {
		t.Errorf("results CSV shape unexpected:\n%s", data)
	}

	list, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var all []JobStatus
	if err := json.NewDecoder(list.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Errorf("list = %+v", all)
	}
}

func TestHTTPValidationErrors(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	cases := []struct {
		name, body string
		wantSubstr string
	}{
		{"not json", "{", "invalid job"},
		{"no variant", "{}", "want exactly 1"},
		{"unknown field", `{"sweeep": {}}`, "unknown field"},
		{"unknown protocol", `{"sweep": {"base": {"PowerDB": 10, "GabDB": -7, "GarDB": 0, "GbrDB": 5}, "protocols": ["FDMA"]}}`, "unknown protocol"},
		{"bad scenario", `{"sweep": {"base": {"PowerDB": 1e999, "GabDB": -7, "GarDB": 0, "GbrDB": 5}}}`, "invalid job"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJob(t, srv, tc.body)
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", resp.StatusCode, body)
			}
			var he httpError
			if err := json.Unmarshal(body, &he); err != nil || he.Error == "" {
				t.Fatalf("error body not structured JSON: %s", body)
			}
			if !strings.Contains(he.Error, tc.wantSubstr) {
				t.Errorf("error %q does not mention %q", he.Error, tc.wantSubstr)
			}
		})
	}
}

func TestHTTPUnknownJobIs404(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/results"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHTTPQueueFullSheds429(t *testing.T) {
	srv, svc := newTestServer(t, Options{QueueCap: 1, Executors: 1})
	// Occupy the executor, then fill the one queue slot.
	id, err := svc.Submit(longSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, id, StateRunning, 10*time.Second)
	first := postJob(t, srv, tinySweepJSON)
	if first.StatusCode != http.StatusCreated {
		t.Fatalf("fill submit: status %d", first.StatusCode)
	}
	shed := postJob(t, srv, tinySweepJSON)
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

func TestHTTPCancel(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	id, err := svc.Submit(longSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, id, StateRunning, 10*time.Second)
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d, want 202", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("state after cancel = %s, want canceled", st.State)
	}
}

func TestHTTPDrainingRefusesWith503(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postJob(t, srv, tinySweepJSON)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || !h.Draining {
		t.Errorf("healthz while draining = %+v", h)
	}
}

func TestRecoverMiddlewareContainsPanics(t *testing.T) {
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(fmt.Errorf("workload exploded"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var he httpError
	if err := json.Unmarshal(rec.Body.Bytes(), &he); err != nil || !strings.Contains(he.Error, "workload exploded") {
		t.Errorf("panic body = %s", rec.Body.Bytes())
	}
}
