package service

// bench_test.go — prices the job-service wrapper against the bare engine
// call it wraps. BenchmarkServiceJobDirect runs a small sweep straight
// through the emitter to a results file; BenchmarkServiceJobOverhead pushes
// the same sweep through the full durable path (store create, queue,
// executor claim, checkpointed log, two state renames). The difference is
// the fixed per-job cost of durability — it must stay in the tens of
// milliseconds territory dominated by file churn, negligible against any
// real sweep.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"bicoop"
)

func benchJob() JobSpec {
	return JobSpec{Sweep: &SweepJob{
		Base:     testScenario,
		PowersDB: []float64{0, 5, 10, 15, 20},
	}}
}

func BenchmarkServiceJobOverhead(b *testing.B) {
	dir := b.TempDir()
	st, err := OpenStore(filepath.Join(dir, "jobs"))
	if err != nil {
		b.Fatal(err)
	}
	svc := New(context.Background(), st, bicoop.NewEngine(), Options{QueueCap: 1})
	if err := svc.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := svc.Submit(benchJob())
		if err != nil {
			b.Fatal(err)
		}
		st, err := svc.Wait(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone {
			b.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
		}
	}
}

func BenchmarkServiceJobDirect(b *testing.B) {
	dir := b.TempDir()
	eng := bicoop.NewEngine()
	ctx := context.Background()
	spec := benchJob()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log, err := OpenResultLog(filepath.Join(dir, "results.csv"), "")
		if err != nil {
			b.Fatal(err)
		}
		if err := spec.run(ctx, eng, log); err != nil {
			b.Fatal(err)
		}
		if err := log.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
