// Package service is the crash-safe bccd job service: a durable on-disk job
// store, a bounded admission queue with load shedding, a drain-aware runner
// that parks in-flight jobs on shutdown, and an HTTP/JSON front end. Every
// job streams its results through a ResultLog — the one byte-offset
// CSV resume implementation shared with the bcc CLI — so a kill -9 at any
// instant loses at most the rows past the last checkpoint, and a restart
// rewrites exactly those rows: the recovered file is byte-identical to an
// uninterrupted run's.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
)

// logCheckpoint is the durable resume state of a ResultLog: the engine
// watermark (in the spec's yield units — points, curves or runs) plus the
// CSV byte offset the watermarked prefix ends at. The offset makes resume
// robust to a kill between a yield and its checkpoint save — the rerun
// truncates the CSV back to the offset the watermark vouches for, so rows
// delivered but never checkpointed are rewritten rather than duplicated.
type logCheckpoint struct {
	Watermark int   `json:"watermark"`
	Offset    int64 `json:"offset"`
}

// loadLogCheckpoint reads a {watermark, offset} checkpoint. A missing or
// zero-length file — the latter is what a crash between creating the file
// and the first completed write leaves behind — is a fresh run, not
// corruption.
func loadLogCheckpoint(path string) (logCheckpoint, error) {
	var ck logCheckpoint
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return ck, nil // fresh run
	}
	if err != nil {
		return ck, err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return ck, nil // crash before the first save completed: fresh run
	}
	if err := json.Unmarshal(data, &ck); err != nil || ck.Watermark < 0 || ck.Offset < 0 {
		return ck, fmt.Errorf("corrupt checkpoint %s (delete it to start fresh)", path)
	}
	return ck, nil
}

// ResultLog owns a job's streaming CSV output and, when opened with a
// checkpoint path, persists {watermark, offset} atomically each time the
// engine's watermark advances — after flushing the rows the watermark
// covers, so a saved checkpoint never points past what is durably in the
// file. It implements bicoop.Checkpointer; feed Watermark back as the
// spec's Start and the concatenated output of the runs is byte-identical
// to an uninterrupted run's.
type ResultLog struct {
	f         *os.File // nil when wrapping a plain writer (stdout)
	buf       *bufio.Writer
	ckPath    string // "" disables checkpointing
	watermark int    // watermark loaded at open (the resume Start)
}

// OpenResultLog opens csvPath for a run's CSV stream. With ckPath empty the
// file is created fresh and nothing is checkpointed. With ckPath set, the
// checkpoint decides: missing/empty means a fresh run (csvPath is created,
// truncating any stale leftover), a saved watermark means resume (csvPath
// must exist; it is truncated to the checkpointed offset and appended to),
// and a corrupt checkpoint is a loud error, never a silent restart.
//
// The CSV stream is checkpoint-truncated rather than tmp+renamed: rows past
// the last Save are reproducible partial output by design.
//
//bicoop:atomicio — audited checkpoint-truncate open of the CSV stream
func OpenResultLog(csvPath, ckPath string) (*ResultLog, error) {
	l := &ResultLog{ckPath: ckPath}
	if ckPath != "" {
		ck, err := loadLogCheckpoint(ckPath)
		if err != nil {
			return nil, err
		}
		if ck.Watermark > 0 {
			f, err := os.OpenFile(csvPath, os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("checkpoint %s expects output %s: %w (delete the checkpoint to start fresh)", ckPath, csvPath, err)
			}
			if err := f.Truncate(ck.Offset); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Seek(ck.Offset, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			l.f = f
			l.watermark = ck.Watermark
		}
	}
	if l.f == nil {
		f, err := os.Create(csvPath)
		if err != nil {
			return nil, err
		}
		l.f = f
	}
	l.buf = bufio.NewWriter(l.f)
	return l, nil
}

// NewResultLog wraps a plain writer (stdout) with no resume and no
// checkpointing — the streaming-only mode of the bcc CLI.
func NewResultLog(w io.Writer) *ResultLog {
	return &ResultLog{buf: bufio.NewWriter(w)}
}

// Watermark returns the resume watermark loaded at open: 0 for a fresh run,
// the last checkpointed value for a resumed one. Feed it to the spec's
// Start field.
func (l *ResultLog) Watermark() int { return l.watermark }

// Fresh reports whether the run starts from the beginning — the caller
// writes the CSV header exactly when it does.
func (l *ResultLog) Fresh() bool { return l.watermark == 0 }

// Checkpointed reports whether the log persists a checkpoint; set the spec's
// Checkpoint field to l exactly when it does.
func (l *ResultLog) Checkpointed() bool { return l.ckPath != "" }

// Printf appends one formatted row to the stream.
func (l *ResultLog) Printf(format string, args ...any) error {
	_, err := fmt.Fprintf(l.buf, format, args...)
	return err
}

// Save implements bicoop.Checkpointer: flush the rows the watermark covers,
// then atomically replace the checkpoint with {watermark, current offset}.
//
//bicoop:atomicio — tmp+rename of the checkpoint file
func (l *ResultLog) Save(watermark int) error {
	if err := l.buf.Flush(); err != nil {
		return err
	}
	off, err := l.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	data, err := json.Marshal(logCheckpoint{Watermark: watermark, Offset: off})
	if err != nil {
		return err
	}
	tmp := l.ckPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, l.ckPath)
}

// Flush pushes buffered rows to the underlying file or writer. Rows past
// the last checkpoint are still valid partial output — a resume truncates
// them away before rewriting.
func (l *ResultLog) Flush() error { return l.buf.Flush() }

// Close flushes and closes the underlying file (a no-op close for a wrapped
// plain writer).
func (l *ResultLog) Close() error {
	err := l.buf.Flush()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
