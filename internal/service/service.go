package service

// service.go — the job runtime: a bounded FIFO admission queue, a fixed
// pool of executor goroutines, and the lifecycle glue between the durable
// store and the engine. The design center is crash-safety and graceful
// degradation:
//
//   - admission is load-shed, not buffered unbounded: a full queue rejects
//     with ErrQueueFull (HTTP 429) so a burst degrades loudly instead of
//     accumulating latent work;
//   - every state transition is durable before it is observable, and
//     results are flushed and closed before the terminal state is written,
//     so "done" on disk vouches for a complete results.csv;
//   - drain (SIGTERM) stops admitting, cancels running jobs with a parking
//     cause, checkpoints and re-queues them durably, and returns — a
//     restart picks every parked job up from its watermark;
//   - a kill -9 needs no cooperation at all: recovery rescans the store and
//     re-queues whatever was queued or running, and the ResultLog resume
//     discipline makes the recovered output byte-identical.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
	"time"

	"bicoop"
)

// Sentinel errors surfaced through the HTTP layer.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity — the load-shedding signal (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects a submission during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob reports an id with no job behind it (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")

	// errParkForDrain is the cancel cause distinguishing a drain (park the
	// job, re-queue durably) from a user cancel (terminal state canceled).
	errParkForDrain = errors.New("service: park for drain")
	// errCanceledByUser is the cancel cause of a DELETE.
	errCanceledByUser = errors.New("service: canceled by request")
)

// Options tunes a Service.
type Options struct {
	// QueueCap bounds the admission queue (jobs accepted but not yet
	// running); non-positive defaults to 16.
	QueueCap int
	// Executors is the number of jobs run concurrently; non-positive
	// defaults to 1 (each job shards internally via its Workers field).
	Executors int
	// CacheLog, when non-nil, is the durable tier of the engine's result
	// cache: the service flushes it after every job and on drain, so a
	// crash loses at most the running job's unflushed fills. The caller
	// owns opening (replay) and closing it — see OpenCacheLog.
	CacheLog *CacheLog
}

// job is the runtime state of one job; durable state lives in the store.
type job struct {
	id     string
	spec   JobSpec
	state  State
	errMsg string
	done   chan struct{}           // closed on terminal transition
	cancel context.CancelCauseFunc // non-nil while running
}

// Service runs jobs from a durable store through a bicoop engine.
type Service struct {
	store    *Store
	eng      *bicoop.Engine
	cacheLog *CacheLog

	queueCap  int
	executors int

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []string
	jobs     map[string]*job
	reserved int // submissions between capacity check and durable create
	draining bool
}

// New assembles a service over an opened store. Call Start to recover
// persisted jobs and begin executing. ctx is the service's root: every job
// execution derives from it, and cancelling it (in addition to Shutdown)
// stops in-flight work.
func New(ctx context.Context, store *Store, eng *bicoop.Engine, opts Options) *Service {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 1
	}
	s := &Service{
		store:     store,
		eng:       eng,
		cacheLog:  opts.CacheLog,
		queueCap:  opts.QueueCap,
		executors: opts.Executors,
		jobs:      make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancelCause(ctx)
	return s
}

// Start recovers the store and launches the executor pool. Every persisted
// job that was queued or running goes back in the queue — capacity does not
// apply to recovery, because those jobs were already admitted — and resumes
// from its checkpoint when it next runs. Terminal jobs are indexed so
// status and results queries keep working across restarts.
func (s *Service) Start() error {
	recs, err := s.store.LoadAll()
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, rec := range recs {
		j := &job{id: rec.ID, spec: rec.Spec, state: rec.State, errMsg: rec.Error, done: make(chan struct{})}
		if rec.State.Terminal() {
			close(j.done)
			s.jobs[j.id] = j
			continue
		}
		// A job found "running" died with its process; park it back to
		// queued durably so the on-disk record matches what will happen.
		if rec.State == StateRunning {
			if err := s.store.SetState(rec.ID, StateQueued, ""); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		j.state = StateQueued
		s.jobs[j.id] = j
		s.queue = append(s.queue, j.id)
	}
	s.mu.Unlock()
	for i := 0; i < s.executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return nil
}

// Submit validates, durably records, and enqueues a job, returning its id.
// A draining service refuses (ErrDraining); a full queue sheds
// (ErrQueueFull). The reservation protocol keeps the capacity check and the
// durable create atomic with respect to concurrent submissions without
// holding the lock across file writes.
func (s *Service) Submit(spec JobSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", ErrDraining
	}
	if len(s.queue)+s.reserved >= s.queueCap {
		s.mu.Unlock()
		return "", ErrQueueFull
	}
	s.reserved++
	s.mu.Unlock()

	id, err := s.store.Create(spec)

	s.mu.Lock()
	s.reserved--
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	j := &job{id: id, spec: spec, state: StateQueued, done: make(chan struct{})}
	s.jobs[id] = j
	s.queue = append(s.queue, id)
	s.cond.Signal()
	s.mu.Unlock()
	return id, nil
}

// executor claims queued jobs FIFO and runs them to a terminal state (or a
// drain park) one at a time.
func (s *Service) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		ctx, cancel := context.WithCancelCause(s.baseCtx)
		j.cancel = cancel
		j.state = StateRunning
		s.mu.Unlock()

		if err := s.store.SetState(id, StateRunning, ""); err != nil {
			s.finish(j, ctx, fmt.Errorf("recording running state: %w", err))
			cancel(nil)
			continue
		}
		err := s.runJob(ctx, j)
		s.finish(j, ctx, err)
		cancel(nil)
	}
}

// runJob opens the job's durable result log and executes the spec. The log
// is flushed and closed BEFORE the caller writes the terminal state, so a
// durable "done" always vouches for a complete results.csv.
func (s *Service) runJob(ctx context.Context, j *job) error {
	if j.spec.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	log, err := OpenResultLog(s.store.ResultsPath(j.id), s.store.CheckpointPath(j.id))
	if err != nil {
		return err
	}
	runErr := j.spec.run(ctx, s.eng, log)
	if cerr := log.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	// Make the job's cache fills durable before its terminal state, so a
	// repeat submission after a crash starts from a warm cache. A flush
	// failure surfaces like any other disk failure, but only when the job
	// itself succeeded — the results.csv contract stays with the
	// ResultLog above.
	if s.cacheLog != nil {
		if ferr := s.cacheLog.Flush(); ferr != nil && runErr == nil {
			runErr = ferr
		}
	}
	return runErr
}

// finish classifies a run's outcome and records it durably. Cancellation
// splits on its cause: a drain parks the job back to queued (a restart
// resumes it), a user cancel is terminal, a deadline is timeout — the same
// partial-results-are-valid contract as bcc's exit codes 130 and 124.
func (s *Service) finish(j *job, ctx context.Context, err error) {
	state, msg := StateDone, ""
	switch {
	case err == nil:
		state = StateDone
	case errors.Is(err, context.DeadlineExceeded):
		state = StateTimeout
	case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), errParkForDrain):
		state = StateQueued // parked: durable re-queue for the next process
	case errors.Is(err, context.Canceled):
		state = StateCanceled
	default:
		state, msg = StateFailed, err.Error()
	}
	if serr := s.store.SetState(j.id, state, msg); serr != nil && state == StateDone {
		// A job that ran to completion but could not record it must not
		// claim success; leave it queued on disk (state.json still says
		// running → re-queued on restart) and report the store failure.
		state, msg = StateFailed, serr.Error()
	}
	s.mu.Lock()
	j.state = state
	j.errMsg = msg
	j.cancel = nil
	if state.Terminal() {
		close(j.done)
	}
	s.mu.Unlock()
}

// Cancel stops a job: a queued job is removed from the queue and marked
// canceled; a running job's context is canceled and the executor records
// the terminal state once the engine unwinds (within one chunk). Canceling
// a terminal job is a no-op. Partial results already streamed remain valid.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		close(j.done)
		s.mu.Unlock()
		return s.store.SetState(id, StateCanceled, "")
	case StateRunning:
		if j.cancel != nil {
			j.cancel(errCanceledByUser)
		}
		s.mu.Unlock()
		return nil
	default:
		s.mu.Unlock()
		return nil
	}
}

// JobStatus is a job's queryable state.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Watermark is the last checkpointed progress (grid points, curves or
	// runs, depending on the job kind); 0 until the first checkpoint.
	Watermark int `json:"watermark"`
}

// Status reports one job's state and checkpointed progress.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	st := JobStatus{ID: j.id, State: j.state, Error: j.errMsg}
	s.mu.Unlock()
	if ck, err := loadLogCheckpoint(s.store.CheckpointPath(id)); err == nil {
		st.Watermark = ck.Watermark
	}
	return st, nil
}

// List reports every known job in id order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, err := s.Status(id); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// Results returns the job's CSV output and its state. For a terminal job
// the whole file is returned; for a live job, only the checkpointed prefix
// — the bytes the watermark vouches for — so a reader never observes rows a
// crash could retract.
func (s *Service) Results(id string) ([]byte, State, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, "", ErrUnknownJob
	}
	state := j.state
	s.mu.Unlock()
	data, err := os.ReadFile(s.store.ResultsPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		data, err = nil, nil // queued: no output yet
	}
	if err != nil {
		return nil, state, err
	}
	if !state.Terminal() {
		ck, err := loadLogCheckpoint(s.store.CheckpointPath(id))
		if err != nil {
			return nil, state, err
		}
		if int64(len(data)) > ck.Offset {
			data = data[:ck.Offset]
		}
	}
	return data, state, nil
}

// Wait blocks until the job reaches a terminal state (returning its status)
// or ctx is done. A job parked by a drain does not become terminal; waiters
// should carry a context tied to the server's lifetime.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: admission stops (submissions get
// ErrDraining), running jobs are canceled with the parking cause — they
// checkpoint their delivered prefix and are durably re-queued — and Drain
// returns once every executor has unwound, or with ctx's error if the
// deadline passes first. Either way the store is consistent: a restart
// resumes exactly the parked jobs from their watermarks.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	// Cancel through the base context so jobs claimed concurrently with the
	// drain still observe the parking cause.
	s.baseCancel(errParkForDrain)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.cacheLog != nil {
			return s.cacheLog.Flush()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats reports the engine's result-cache counters (all zero when
// the engine runs without a cache).
func (s *Service) CacheStats() bicoop.CacheStats {
	return s.eng.CacheStats()
}
