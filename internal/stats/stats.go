// Package stats provides the small statistical toolkit used to report
// Monte Carlo results honestly: streaming mean/variance (Welford), normal
// confidence intervals for means, and Wilson score intervals for the
// success/outage proportions the simulators estimate.
package stats

import (
	"errors"
	"math"
)

// ErrNoData is returned when an interval is requested with no samples.
var ErrNoData = errors.New("stats: no samples")

// Running accumulates a stream of observations with Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// zFor maps a confidence level to the two-sided normal quantile. Levels are
// snapped to the nearest supported table entry; the Monte Carlo consumers
// only ever ask for 90/95/99%.
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.995:
		return 2.807
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.960
	case confidence >= 0.90:
		return 1.645
	default:
		return 1.282 // 80%
	}
}

// MeanInterval returns the normal-approximation confidence interval for the
// accumulated mean.
func (r *Running) MeanInterval(confidence float64) (Interval, error) {
	if r.n == 0 {
		return Interval{}, ErrNoData
	}
	z := zFor(confidence)
	half := z * r.StdErr()
	return Interval{Lo: r.mean - half, Hi: r.mean + half}, nil
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with `successes` out of `trials`, which behaves sanely at the
// 0 and 1 boundaries where the simulators often live (success ≈ 1 below a
// bound, ≈ 0 above it).
func WilsonInterval(successes, trials int, confidence float64) (Interval, error) {
	if trials <= 0 {
		return Interval{}, ErrNoData
	}
	if successes < 0 || successes > trials {
		return Interval{}, errors.New("stats: successes out of range")
	}
	z := zFor(confidence)
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo := math.Max(0, center-half)
	hi := math.Min(1, center+half)
	return Interval{Lo: lo, Hi: hi}, nil
}
