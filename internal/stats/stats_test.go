package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/xmath"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if !xmath.ApproxEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !xmath.ApproxEqual(r.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want 32/7", r.Variance())
	}
	if !xmath.ApproxEqual(r.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", r.StdDev())
	}
}

func TestRunningMatchesBatchOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 1
			r.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		if !xmath.ApproxEqual(r.Mean(), mean, 1e-9) {
			t.Fatalf("mean %v vs batch %v", r.Mean(), mean)
		}
		if !xmath.ApproxEqual(r.Variance(), variance, 1e-9) {
			t.Fatalf("variance %v vs batch %v", r.Variance(), variance)
		}
	}
}

func TestMeanIntervalCoverage(t *testing.T) {
	// ~95% of 95% intervals over repeated experiments must contain the true
	// mean. Use 400 experiments of 100 N(7, 2²) samples.
	rng := rand.New(rand.NewSource(2))
	const experiments = 400
	covered := 0
	for e := 0; e < experiments; e++ {
		var r Running
		for i := 0; i < 100; i++ {
			r.Add(rng.NormFloat64()*2 + 7)
		}
		iv, err := r.MeanInterval(0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(7) {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("coverage = %v, want ~0.95", rate)
	}
}

func TestMeanIntervalErrors(t *testing.T) {
	var r Running
	if _, err := r.MeanInterval(0.95); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestWilsonInterval(t *testing.T) {
	tests := []struct {
		name      string
		succ, n   int
		wantLoMax float64 // Lo must be <= this
		wantHiMin float64 // Hi must be >= this
	}{
		{name: "half", succ: 50, n: 100, wantLoMax: 0.5, wantHiMin: 0.5},
		{name: "all success", succ: 30, n: 30, wantLoMax: 1.0, wantHiMin: 0.999},
		{name: "no success", succ: 0, n: 30, wantLoMax: 0.001, wantHiMin: 0.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			iv, err := WilsonInterval(tt.succ, tt.n, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
				t.Fatalf("malformed interval %+v", iv)
			}
			p := float64(tt.succ) / float64(tt.n)
			if !iv.Contains(p) {
				t.Errorf("interval %+v excludes the point estimate %v", iv, p)
			}
		})
	}
	t.Run("boundaries stay proper at n=1", func(t *testing.T) {
		iv, err := WilsonInterval(1, 1, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Hi != 1 || iv.Lo <= 0 {
			t.Errorf("n=1 interval %+v", iv)
		}
	})
}

func TestWilsonIntervalCoverage(t *testing.T) {
	// Empirical coverage for p = 0.1 with n = 50: Wilson should be close to
	// nominal even for small n and skewed p.
	rng := rand.New(rand.NewSource(3))
	const experiments = 600
	covered := 0
	for e := 0; e < experiments; e++ {
		succ := 0
		for i := 0; i < 50; i++ {
			if rng.Float64() < 0.1 {
				succ++
			}
		}
		iv, err := WilsonInterval(succ, 50, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(0.1) {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("Wilson coverage = %v, want ~0.95", rate)
	}
}

func TestWilsonIntervalErrors(t *testing.T) {
	if _, err := WilsonInterval(1, 0, 0.95); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := WilsonInterval(-1, 5, 0.95); err == nil {
		t.Error("negative successes should error")
	}
	if _, err := WilsonInterval(6, 5, 0.95); err == nil {
		t.Error("successes > trials should error")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3}
	if iv.Width() != 2 {
		t.Errorf("Width = %v", iv.Width())
	}
	if !iv.Contains(2) || iv.Contains(0) || iv.Contains(4) {
		t.Error("Contains misbehaves")
	}
}

func TestZForMonotone(t *testing.T) {
	prev := 0.0
	for _, c := range []float64{0.5, 0.90, 0.95, 0.99, 0.995} {
		z := zFor(c)
		if z < prev {
			t.Fatalf("zFor not monotone at %v", c)
		}
		prev = z
	}
}
