package lint

// load.go — the package loader behind cmd/bcclint and linttest. It does
// what x/tools' go/packages does in LoadAllSyntax mode for the target
// packages, with the standard library only:
//
//  1. `go list -export -deps -json <patterns>` resolves every target
//     package and its full dependency closure, compiling export data as a
//     side effect (the build cache makes repeat runs cheap);
//  2. each target's non-test Go files are parsed with comments;
//  3. go/types checks each target, importing every dependency — standard
//     library and intra-module alike — from the export data go list
//     reported, via the gc importer's Lookup hook.
//
// The result is full syntax plus full type information for exactly the
// packages named by the patterns, which is all the analyzers need.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and returns the decoded
// package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportLookup maps import paths to export data files and adapts them to
// the gc importer's Lookup hook.
type ExportLookup map[string]string

// Open implements the importer.Lookup signature.
func (m ExportLookup) Open(path string) (io.ReadCloser, error) {
	file, ok := m[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// ListExports resolves the dependency closure of the given import paths
// (run from dir, typically the module root) into an ExportLookup. linttest
// uses it to type-check fixture packages against real standard-library
// export data.
func ListExports(dir string, importPaths []string) (ExportLookup, error) {
	if len(importPaths) == 0 {
		return ExportLookup{}, nil
	}
	pkgs, err := goList(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(ExportLookup, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// TypeCheck parses nothing and checks the given already-parsed files as
// one package, importing dependencies through exports.
func TypeCheck(pkgPath string, fset *token.FileSet, files []*ast.File, exports ExportLookup) (*types.Package, *types.Info, error) {
	imp := importer.ForCompiler(fset, "gc", exports.Open)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return pkg, info, nil
}

// Load resolves the patterns (e.g. "./...") from dir and returns every
// matched package parsed and type-checked. Test files are not loaded —
// the invariants gate shipped code, and `go list -export` describes the
// non-test compilation unit.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(ExportLookup, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	var out []*Package
	for _, t := range targets {
		fset := token.NewFileSet()
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(t.ImportPath, fset, files, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath: t.ImportPath,
			Name:    t.Name,
			Fset:    fset,
			Files:   files,
			Pkg:     pkg,
			Info:    info,
		})
	}
	return out, nil
}

// RunAnalyzers applies every analyzer whose Match accepts the package and
// returns the combined, position-sorted diagnostics.
func RunAnalyzers(p *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(p.PkgPath, p.Name) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, p.PkgPath, err)
		}
	}
	SortDiagnostics(p.Fset, diags)
	return diags, nil
}
