package lint

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// repoRoot locates the module root from this package's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLoadTypeChecksModulePackage loads a real module package through the
// export-data pipeline and spot-checks that syntax and type information
// line up: every parsed file belongs to the right package and a known
// function resolves to a *types.Func with its documented signature.
func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/gf2")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "bicoop/internal/gf2" || p.Name != "gf2" {
		t.Fatalf("loaded %s (%s), want bicoop/internal/gf2 (gf2)", p.PkgPath, p.Name)
	}
	if len(p.Files) == 0 {
		t.Fatal("no files parsed")
	}
	dot := p.Pkg.Scope().Lookup("Dot")
	if dot == nil {
		t.Fatal("gf2.Dot not found in type-checked scope")
	}
	// Types must have flowed: Dot's identifier in the syntax resolves to
	// the same object the package scope holds.
	found := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Dot" && fd.Recv == nil {
				if p.Info.Defs[fd.Name] == dot {
					found = true
				}
			}
			return true
		})
	}
	if !found {
		t.Error("Dot's declaration does not resolve to the scope object; types and syntax are out of sync")
	}
}

// TestLoadDependencyViaExportData ensures intra-module imports resolve
// through export data: internal/sim imports gf2, protocols and netcode.
func TestLoadDependencyViaExportData(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Pkg.Scope().Lookup("RunBitTrueTDBC") == nil {
		t.Fatal("sim.RunBitTrueTDBC not found")
	}
}

// TestAllowDirectiveParsing pins the waiver grammar.
func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//bicoop:allow ctxflow — nil-Ctx default resolver", "ctxflow", true},
		{"//bicoop:allow detrand", "detrand", true},
		{"//bicoop:allow ", "", false},
		{"// bicoop:allow ctxflow", "", false},
		{"//bicoop:noalloc", "", false},
	}
	for _, c := range cases {
		name, ok := allowDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("allowDirective(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

// TestHasDirective pins the annotation grammar used by noalloc/atomicwrite.
func TestHasDirective(t *testing.T) {
	doc := &ast.CommentGroup{List: []*ast.Comment{
		{Text: "// reduce eliminates the spare row."},
		{Text: "//bicoop:noalloc"},
	}}
	if !HasDirective(doc, "noalloc") {
		t.Error("directive not detected")
	}
	if HasDirective(doc, "atomicio") {
		t.Error("wrong directive detected")
	}
	if HasDirective(nil, "noalloc") {
		t.Error("nil doc matched")
	}
	spaced := &ast.CommentGroup{List: []*ast.Comment{{Text: "// bicoop:noalloc"}}}
	if HasDirective(spaced, "noalloc") {
		t.Error("non-directive comment (space after //) must not match")
	}
}
