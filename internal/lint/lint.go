// Package lint is bcclint's analysis framework: a self-contained,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// surface the project's custom analyzers need. The repo builds with zero
// third-party modules (and must keep building in offline environments), so
// instead of depending on x/tools the package provides the same three
// load-bearing pieces itself:
//
//   - Analyzer/Pass/Diagnostic — the x/tools-shaped contract an analyzer
//     codes against (Pass carries the parsed files, the type-checked
//     package, and types.Info);
//   - Load — a package loader built on `go list -export -deps -json` plus
//     go/types with the gc export-data importer, the same mechanism
//     x/tools' go/packages uses underneath;
//   - directive helpers — //bicoop:noalloc, //bicoop:atomicio and
//     //bicoop:allow <analyzer> comment handling shared by the analyzers.
//
// The analyzers themselves live in internal/lint/analyzers; the
// multichecker driver is cmd/bcclint; internal/lint/linttest is the
// analysistest-style fixture runner.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //bicoop:allow <name> waivers.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Match, when non-nil, scopes the analyzer: drivers run it only on
	// packages for which Match(pkgPath, pkgName) is true. The fixture
	// runner (linttest) bypasses Match so fixtures can exercise analyzers
	// regardless of their repo scoping; Match itself is unit-tested
	// directly.
	Match func(pkgPath, pkgName string) bool
	// Run reports the package's violations through pass.Report.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	allowLines map[string]map[string]bool // analyzer name -> "file:line" set
}

// Reportf reports a formatted diagnostic at pos unless a
// //bicoop:allow waiver covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Allowed reports whether pos is covered by a //bicoop:allow <analyzer>
// waiver: a trailing comment on the same line, or a full comment line
// directly above. Waivers are the audited escape hatch for the rare spot
// where an invariant legitimately does not apply; each one should say why.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allowLines == nil {
		p.allowLines = collectAllows(p.Fset, p.Files)
	}
	lines := p.allowLines[p.Analyzer.Name]
	if lines == nil {
		return false
	}
	position := p.Fset.Position(pos)
	return lines[fileLine(position.Filename, position.Line)]
}

func fileLine(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// collectAllows indexes every //bicoop:allow directive: a waiver on line L
// covers L (trailing comment) and L+1 (comment line above the code) of the
// file it sits in.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := allowDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[name]
				if m == nil {
					m = make(map[string]bool)
					out[name] = m
				}
				m[fileLine(pos.Filename, pos.Line)] = true
				m[fileLine(pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return out
}

// allowDirective parses "//bicoop:allow <name> [— reason]".
func allowDirective(text string) (string, bool) {
	const prefix = "//bicoop:allow "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// HasDirective reports whether the comment group (typically a FuncDecl's
// doc) contains the directive comment //bicoop:<name>. Directive comments
// follow the compiler's convention: no space after "//", so gofmt leaves
// them alone.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//bicoop:" + name
	for _, c := range doc.List {
		text := c.Text
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// CalleeFunc resolves the package-level function or method a call
// expression invokes, or nil when the callee is not a statically known
// *types.Func (builtins, type conversions, calls through function values).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match: their receiver is non-nil).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// ErrorType is the predeclared error interface.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// ImplementsError reports whether t implements the error interface.
func ImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ErrorType)
}

// IsContextContext reports whether t is exactly context.Context.
func IsContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
