// Package linttest is bcclint's analysistest: it runs one analyzer over a
// fixture package (a directory of Go files under testdata/) and matches
// the produced diagnostics against `// want "regexp"` expectations in the
// fixture source, in both directions — every diagnostic needs a matching
// want on its line, every want needs a diagnostic.
//
// Fixture packages are parsed and type-checked for real: standard-library
// imports resolve through `go list -export` export data, so analyzers see
// exactly the type information they see in production. Analyzer Match
// scoping is deliberately bypassed (fixtures live outside the module
// path); Match functions are unit-tested directly instead.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"bicoop/internal/lint"
)

// exportCache shares one `go list -export` resolution per import-path set
// across a test binary's fixtures.
var exportCache = struct {
	sync.Mutex
	m map[string]lint.ExportLookup
}{m: map[string]lint.ExportLookup{}}

// stdExports resolves export data for the fixture's imports, cached.
func stdExports(t *testing.T, moduleDir string, imports []string) lint.ExportLookup {
	t.Helper()
	sort.Strings(imports)
	key := strings.Join(imports, ",")
	exportCache.Lock()
	defer exportCache.Unlock()
	if got, ok := exportCache.m[key]; ok {
		return got
	}
	exports, err := lint.ListExports(moduleDir, imports)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	exportCache.m[key] = exports
	return exports
}

// want is one expectation: a diagnostic whose message matches re on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run applies the analyzer to the fixture package in dir and asserts the
// diagnostics equal the fixture's `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	moduleDir, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("fixture import %s: %v", imp.Path.Value, err)
			}
			importSet[path] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	exports := stdExports(t, moduleDir, imports)

	pkgPath := "fixture/" + filepath.Base(dir)
	pkg, info, err := lint.TypeCheck(pkgPath, fset, files, exports)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	lint.SortDiagnostics(fset, diags)

	wants := collectWants(t, fset, files)
	matched := make([]bool, len(wants))
diagLoop:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				continue diagLoop
			}
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants parses `// want "regexp"` comments. The expectation applies
// to the line the comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				quoted := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s: malformed want %q: %v", fset.Position(c.Pos()), quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pattern, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}
