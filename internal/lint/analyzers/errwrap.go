package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"bicoop/internal/lint"
)

// Errwrap enforces the typed-sentinel error discipline: sentinels are
// matched with errors.Is (never ==/!=, which breaks the moment a wrap is
// added anywhere in the chain), and when an error is folded into a new
// fmt.Errorf message it is wrapped with %w, not flattened with %v/%s (which
// severs the chain errors.Is/As walk). Two deliberate exemptions keep the
// analyzer honest:
//
//   - the io package's sentinels (io.EOF and friends) are documented to be
//     returned unwrapped by the Read contract, so == comparison against
//     them is the established idiom;
//   - err.Error() formatted as a string is not an error operand and stays
//     legal — flattening on purpose is done by converting explicitly.
var Errwrap = &lint.Analyzer{
	Name:  "errwrap",
	Doc:   "compare sentinels with errors.Is; wrap errors with %w, not %v",
	Match: moduleNonLintPackage,
	Run:   runErrwrap,
}

func runErrwrap(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSentinelCompare flags err == ErrFoo / err != ErrFoo against
// package-level error sentinels.
func checkSentinelCompare(pass *lint.Pass, n *ast.BinaryExpr) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{n.X, n.Y} {
		v := sentinelVar(pass.TypesInfo, side)
		if v == nil {
			continue
		}
		other := n.X
		if side == n.X {
			other = n.Y
		}
		if !lint.ImplementsError(pass.TypesInfo.TypeOf(other)) {
			continue
		}
		pass.Reportf(n.Pos(), "errwrap: comparing against sentinel %s with %s breaks under wrapping; use errors.Is", v.Name(), n.Op)
		return
	}
}

// sentinelVar resolves an expression to a package-level error variable
// following the ErrFoo naming convention, excluding the io package's
// contract sentinels.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !lint.ImplementsError(v.Type()) {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") {
		return nil
	}
	if v.Pkg().Path() == "io" {
		return nil // io.EOF-style contract sentinels are compared by ==
	}
	return v
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand with
// %v or %s instead of wrapping it with %w.
func checkErrorfWrap(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if !lint.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass.TypesInfo, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIndex := 1 + i // args after the format string
		if verb != 'v' && verb != 's' {
			continue
		}
		if argIndex >= len(call.Args) {
			break
		}
		arg := call.Args[argIndex]
		if !lint.ImplementsError(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		pass.Reportf(arg.Pos(), "errwrap: error formatted with %%%c severs the chain; wrap it with %%w", verb)
	}
}

// constantString evaluates a compile-time constant string expression.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter consumed by each successive argument
// of a Printf-style format. '*' width/precision markers consume an
// argument and are recorded as '*'; explicit argument indexes (%[n]d) are
// rare in this codebase and abort the scan rather than risk misattribution.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0'", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return verbs // explicit index: bail out conservatively
		}
		// width
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			}
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
			i++
		}
	}
	return verbs
}
