package analyzers_test

import (
	"testing"

	"bicoop/internal/lint/analyzers"
	"bicoop/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, analyzers.Detrand, "testdata/detrand")
}

func TestNoalloc(t *testing.T) {
	linttest.Run(t, analyzers.Noalloc, "testdata/noalloc")
}

// TestNoallocPackageScope pins the package-wide mode: a //bicoop:noalloc
// directive on the package clause checks every function in the package,
// with //bicoop:allow noalloc doc waivers as the per-function opt-out.
func TestNoallocPackageScope(t *testing.T) {
	linttest.Run(t, analyzers.Noalloc, "testdata/noalloc_pkg")
}

func TestCtxflow(t *testing.T) {
	linttest.Run(t, analyzers.Ctxflow, "testdata/ctxflow")
}

// TestCtxflowMainExempt checks the package-main carve-out: the process root
// context is main's to create, so a fixture main package with
// context.Background produces zero diagnostics.
func TestCtxflowMainExempt(t *testing.T) {
	linttest.Run(t, analyzers.Ctxflow, "testdata/ctxflow_main")
}

func TestAtomicwrite(t *testing.T) {
	linttest.Run(t, analyzers.Atomicwrite, "testdata/atomicwrite")
}

func TestErrwrap(t *testing.T) {
	linttest.Run(t, analyzers.Errwrap, "testdata/errwrap")
}

func TestCachekey(t *testing.T) {
	linttest.Run(t, analyzers.Cachekey, "testdata/cachekey")
}

// TestMatchScoping pins the package-scoping predicates: which repo trees
// each analyzer patrols. linttest bypasses Match (fixtures live outside the
// module), so the scoping contract is asserted here directly.
func TestMatchScoping(t *testing.T) {
	cases := []struct {
		name    string
		match   func(pkgPath, pkgName string) bool
		pkgPath string
		pkgName string
		want    bool
	}{
		// detrand patrols result-producing packages only.
		{"detrand-phy", analyzers.Detrand.Match, "bicoop/internal/phy", "phy", true},
		{"detrand-sim", analyzers.Detrand.Match, "bicoop/internal/sim", "sim", true},
		{"detrand-chaos", analyzers.Detrand.Match, "bicoop/internal/sweep/chaos", "chaos", false},
		{"detrand-service", analyzers.Detrand.Match, "bicoop/internal/service", "service", false},
		{"detrand-main", analyzers.Detrand.Match, "bicoop/cmd/bccd", "main", false},
		{"detrand-lint", analyzers.Detrand.Match, "bicoop/internal/lint/analyzers", "analyzers", false},
		{"detrand-foreign", analyzers.Detrand.Match, "example.com/other", "other", false},

		// atomicwrite patrols exactly internal/service.
		{"atomicwrite-service", analyzers.Atomicwrite.Match, "bicoop/internal/service", "service", true},
		{"atomicwrite-phy", analyzers.Atomicwrite.Match, "bicoop/internal/phy", "phy", false},

		// ctxflow and errwrap patrol the whole module minus the lint tree.
		{"ctxflow-service", analyzers.Ctxflow.Match, "bicoop/internal/service", "service", true},
		{"ctxflow-main", analyzers.Ctxflow.Match, "bicoop/cmd/bccd", "main", true},
		{"ctxflow-lint", analyzers.Ctxflow.Match, "bicoop/internal/lint", "lint", false},
		{"errwrap-sim", analyzers.Errwrap.Match, "bicoop/internal/sim", "sim", true},
		{"errwrap-lint-testdata", analyzers.Errwrap.Match, "bicoop/internal/lint/analyzers", "analyzers", false},

		// cachekey patrols every module package except internal/cache
		// (home of the constructors and codec) and the lint tree.
		{"cachekey-root", analyzers.Cachekey.Match, "bicoop", "bicoop", true},
		{"cachekey-sweep", analyzers.Cachekey.Match, "bicoop/internal/sweep", "sweep", true},
		{"cachekey-service", analyzers.Cachekey.Match, "bicoop/internal/service", "service", true},
		{"cachekey-bccd", analyzers.Cachekey.Match, "bicoop/cmd/bccd", "main", true},
		{"cachekey-cache", analyzers.Cachekey.Match, "bicoop/internal/cache", "cache", false},
		{"cachekey-lint", analyzers.Cachekey.Match, "bicoop/internal/lint/analyzers", "analyzers", false},
		{"cachekey-foreign", analyzers.Cachekey.Match, "example.com/other", "other", false},
	}
	for _, tc := range cases {
		if got := tc.match(tc.pkgPath, tc.pkgName); got != tc.want {
			t.Errorf("%s: Match(%q, %q) = %v, want %v", tc.name, tc.pkgPath, tc.pkgName, got, tc.want)
		}
	}
}

// TestNoallocSelfScoped pins that noalloc has no Match: it scopes itself by
// annotation, so it must visit every package.
func TestNoallocSelfScoped(t *testing.T) {
	if analyzers.Noalloc.Match != nil {
		t.Fatal("Noalloc.Match should be nil: the //bicoop:noalloc annotation is its scope")
	}
}

// TestAll pins the registry contents and name uniqueness.
func TestAll(t *testing.T) {
	all := analyzers.All()
	if len(all) != 6 {
		t.Fatalf("All() returned %d analyzers, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"detrand", "noalloc", "ctxflow", "atomicwrite", "errwrap", "cachekey"} {
		if !seen[name] {
			t.Errorf("All() missing analyzer %q", name)
		}
	}
}

func TestByName(t *testing.T) {
	got, ok := analyzers.ByName("errwrap,detrand")
	if !ok {
		t.Fatal("ByName(errwrap,detrand) not found")
	}
	if len(got) != 2 || got[0].Name != "errwrap" || got[1].Name != "detrand" {
		t.Fatalf("ByName(errwrap,detrand) = %v", got)
	}
	if _, ok := analyzers.ByName("nonesuch"); ok {
		t.Fatal("ByName(nonesuch) should report not found")
	}
}
