// Package analyzers holds bcclint's analyzer suite: the project invariants
// that used to be enforced only after the fact (by regression tests, alloc
// gates and bench ledgers) encoded as compile-time checks. See doc.go's
// "Static analysis" section at the module root for the user-facing story.
//
// Scoping policy lives here, next to the analyzers, in the Match functions:
//
//   - resultPackage: packages whose output must be bit-identical across
//     worker counts — everything except main packages, the chaos harness
//     (whose whole point is wall-clock kill timing), the job service
//     (which legitimately reads time for deadlines and queue accounting)
//     and this lint tree itself.
//   - internal/service is the only package the atomicwrite analyzer
//     watches: that is where durable state lives.
//   - cacheClientPackage: every module package except internal/cache
//     itself — the cachekey analyzer keeps cache-key construction behind
//     that package's quantizing constructors.
package analyzers

import (
	"strings"

	"bicoop/internal/lint"
)

// All returns the full bcclint suite in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		Detrand,
		Noalloc,
		Ctxflow,
		Atomicwrite,
		Errwrap,
		Cachekey,
	}
}

// ByName resolves a comma-separated -only list against the suite.
func ByName(names string) ([]*lint.Analyzer, bool) {
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// modulePath is the import-path root of this repository.
const modulePath = "bicoop"

// resultPackage reports whether pkgPath produces results whose determinism
// the detrand invariant protects.
func resultPackage(pkgPath, pkgName string) bool {
	if pkgName == "main" {
		return false // CLIs and daemons may read the clock
	}
	if pkgPath != modulePath && !strings.HasPrefix(pkgPath, modulePath+"/") {
		return false // fixtures and other modules are out of scope by default
	}
	for _, excluded := range []string{
		modulePath + "/internal/sweep/chaos", // kill timing is wall-clock by design
		modulePath + "/internal/service",     // deadlines, queue accounting
		modulePath + "/internal/lint",        // the lint tree itself
	} {
		if pkgPath == excluded || strings.HasPrefix(pkgPath, excluded+"/") {
			return false
		}
	}
	return true
}

// servicePackage reports whether pkgPath is the durable-state package the
// atomicwrite invariant watches.
func servicePackage(pkgPath, pkgName string) bool {
	return pkgPath == modulePath+"/internal/service"
}

// moduleNonLintPackage scopes ctxflow: every package of this module except
// the lint tree (whose fixture-shaped helpers are not entry points).
func moduleNonLintPackage(pkgPath, pkgName string) bool {
	if pkgPath != modulePath && !strings.HasPrefix(pkgPath, modulePath+"/") {
		return false
	}
	lintTree := modulePath + "/internal/lint"
	return pkgPath != lintTree && !strings.HasPrefix(pkgPath, lintTree+"/")
}
