package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"bicoop/internal/lint"
)

// Detrand enforces the determinism invariant of every result-producing
// package: results must be bit-identical for a fixed (Seed, Trials,
// Workers) triple across runs and machines, which forbids the ambient
// nondeterminism sources — the process-global math/rand generators (and
// their auto-seeded math/rand/v2 cousins) and wall-clock reads. Randomness
// must flow through a per-worker *rand.Rand seeded from the spec
// (constructors like rand.New/rand.NewSource stay legal); time must not
// influence results at all.
var Detrand = &lint.Analyzer{
	Name:  "detrand",
	Doc:   "forbid global math/rand functions and wall-clock reads in result-producing packages",
	Match: resultPackage,
	Run:   runDetrand,
}

// forbiddenTimeFuncs are the wall-clock reads that leak nondeterminism into
// results. Timer/ticker constructors are concurrency plumbing and stay out
// of result packages for other reasons; the list stays tight to keep the
// analyzer precise.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
}

func runDetrand(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Float64) are the seeded path
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				// Constructors build seeded, owned generators; everything
				// else draws from the shared (or auto-seeded) global state.
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(id.Pos(), "nondeterministic: %s.%s uses the global generator; draw from a per-worker seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
				}
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(), "nondeterministic: time.%s reads the wall clock in a result-producing package", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
