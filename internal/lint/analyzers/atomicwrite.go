package analyzers

import (
	"go/ast"

	"bicoop/internal/lint"
)

// Atomicwrite guards the durability discipline of internal/service: every
// durable file lands through a tmp+rename helper, never a raw write, so a
// kill -9 at any instant leaves either the old content or the new — never
// a torn file. The analyzer flags the raw file-creation primitives
// (os.WriteFile, os.Create, os.OpenFile) anywhere in the package except
// inside functions annotated //bicoop:atomicio — the hand-audited store
// helpers that implement the tmp+rename (or truncate-to-checkpoint) dance
// itself. New service code must route durable state through those helpers
// or earn the annotation in review.
var Atomicwrite = &lint.Analyzer{
	Name:  "atomicwrite",
	Doc:   "durable files in internal/service land only via annotated tmp+rename helpers",
	Match: servicePackage,
	Run:   runAtomicwrite,
}

// rawWriteFuncs are the os primitives that create or clobber a file in
// place.
var rawWriteFuncs = map[string]bool{
	"WriteFile": true,
	"Create":    true,
	"OpenFile":  true,
}

func runAtomicwrite(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && lint.HasDirective(fd.Doc, "atomicio") {
				continue // an audited tmp+rename helper
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := lint.CalleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !rawWriteFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(call.Pos(), "atomicwrite: raw os.%s in internal/service; durable files go through a //bicoop:atomicio tmp+rename helper", fn.Name())
				return true
			})
		}
	}
	return nil
}
