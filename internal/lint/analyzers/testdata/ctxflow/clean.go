package fixture

import "context"

// RunGood threads ctx first: the contract.
func RunGood(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// Runtime is not an entry point — no word boundary after the Run prefix.
func Runtime() int { return 0 }

// Sweeper is not an entry point either.
func Sweeper() int { return 0 }

// runInternal is unexported: free to use whatever signature fits.
func runInternal(n int) int { return n }

// engine is unexported, so its Run method is internal machinery.
type engine struct{}

// Run on an unexported receiver is not public surface.
func (e *engine) Run(n int) error {
	_ = n
	return nil
}

// Waived documents an audited root context below main.
func Waived() context.Context {
	return context.Background() //bicoop:allow ctxflow — fixture waiver
}
