package fixture

import "context"

// RunBad misses the ctx-first contract entirely.
func RunBad(n int) error { // want "must take a context.Context"
	_ = n
	return nil
}

// SweepAllBad has no parameters at all.
func SweepAllBad() {} // want "must take a context.Context"

// SimulateDeep is an entry point by naming convention.
func SimulateDeep(trials int) int { // want "must take a context.Context"
	return trials
}

// RunLate takes ctx, but not first.
func RunLate(n int, ctx context.Context) error { // want "must take a context.Context"
	_ = ctx
	_ = n
	return nil
}

// Background conjures a detached root below main.
func Background() context.Context {
	return context.Background() // want "detaches work"
}

// Todo is no better.
func Todo() context.Context {
	return context.TODO() // want "detaches work"
}

// Engine is exported, so its Run method is public entry-point surface.
type Engine struct{}

// Run misses ctx on an exported method.
func (e *Engine) Run(n int) error { // want "must take a context.Context"
	_ = n
	return nil
}
