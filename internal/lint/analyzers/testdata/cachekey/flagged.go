package fixture

import (
	"bicoop/internal/cache"
	"bicoop/internal/protocols"
)

// literalKey assembles a key by hand: no quantization, no version stamp.
func literalKey(powerDB float64) cache.Key {
	return cache.Key{ // want "cache.Key literal bypasses the quantizing constructors"
		Version: 1,
		Kind:    cache.KindWeighted,
		A:       int64(powerDB * 1e9),
	}
}

// fieldWrite patches a constructed key, desynchronizing it from Quantize.
func fieldWrite(k cache.Key, garDB float64) cache.Key {
	k.C = int64(garDB * 1e9) // want "writing cache.Key field C"
	return k
}

// pointerFieldWrite does the same through a pointer.
func pointerFieldWrite(k *cache.Key) {
	k.Bound = uint8(protocols.BoundOuter) // want "writing cache.Key field Bound"
}

// emptyLiteral is still a hand-built key: its Version is 0, not KeyVersion.
func emptyLiteral() cache.Key {
	return cache.Key{} // want "cache.Key literal bypasses the quantizing constructors"
}
