package fixture

import (
	"bicoop/internal/cache"
	"bicoop/internal/protocols"
)

// constructors is the sanctioned path: keys come out of the cache
// package's quantizing constructors and are passed around as opaque
// comparable values.
func constructors(powerDB, muA, muB float64) []cache.Key {
	return []cache.Key{
		cache.SumRateKey(protocols.MABC, protocols.BoundInner, powerDB, -7, 0, 5),
		cache.WeightedKey(protocols.HBC, protocols.BoundInner, powerDB, -7, 0, 5, muA, muB),
		cache.ErasureKey(0.2, 0.1, 0.6),
	}
}

// readsAreFine reads Key fields and compares keys; only construction and
// mutation are restricted.
func readsAreFine(k, other cache.Key) bool {
	return k == other && k.Version == cache.KeyVersion && k.A > 0
}

// lookups move keys through the store without touching their fields.
func lookups(s *cache.Store, k cache.Key, v cache.Value) (cache.Value, bool) {
	s.Add(k, v)
	return s.Lookup(k)
}

// quantizeDirectly is legal: Quantize is exported exactly so ad-hoc
// consumers can reuse the canonical grid without hand-rolling it.
func quantizeDirectly(v float64) int64 {
	return cache.Quantize(v)
}
