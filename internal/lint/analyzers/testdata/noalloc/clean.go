package fixture

import (
	"errors"
	"fmt"
)

// ErrBad is the preallocated sentinel the clean kernels return.
var ErrBad = errors.New("fixture: bad input")

// CleanKernel shows the reuse idioms the analyzer must not flag: the
// self-append into a caller-owned buffer, copy, slicing, and the cold
// error path (fmt.Errorf directly in a return statement, arguments
// included).
//
//bicoop:noalloc
func CleanKernel(dst, src []int, n int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("fixture: negative n %d: %w", n, ErrBad)
	}
	dst = dst[:0]
	dst = append(dst, src...)
	copy(dst, src)
	return dst, nil
}

type pair struct{ a, b int }

// CleanStruct returns a by-value composite literal — stack, not heap.
//
//bicoop:noalloc
func CleanStruct(a, b int) pair {
	return pair{a: a, b: b}
}

// CleanSentinel returns a preallocated error: an error-typed variable
// flowing to an error result is interface-to-interface, no boxing.
//
//bicoop:noalloc
func CleanSentinel(bad bool) error {
	if bad {
		return ErrBad
	}
	return nil
}

// CleanPointer passes a pointer to an interface parameter: the interface
// data word holds the pointer directly, no boxing.
//
//bicoop:noalloc
func CleanPointer(p *pair, sink interface{ Take(any) }) {
	sink.Take(p)
}

// Unannotated functions allocate freely; the analyzer is opt-in.
func Unannotated(n int) []int {
	return make([]int, n)
}
