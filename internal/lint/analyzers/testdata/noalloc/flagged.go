package fixture

import "fmt"

// BadMake allocates a fresh buffer per call.
//
//bicoop:noalloc
func BadMake(n int) int {
	buf := make([]int, n) // want "make allocates"
	return len(buf)
}

// BadNew heap-allocates.
//
//bicoop:noalloc
func BadNew() *int {
	return new(int) // want "new allocates"
}

// BadAppend grows a slice it does not own.
//
//bicoop:noalloc
func BadAppend(dst, src []int) []int {
	out := append(dst, src...) // want "append outside"
	return out
}

// BadClosure captures onto the heap.
//
//bicoop:noalloc
func BadClosure(xs []int) int {
	f := func() int { return len(xs) } // want "function literal"
	return f()
}

// BadFmt formats in the hot path.
//
//bicoop:noalloc
func BadFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf allocates"
}

// BadBox boxes a scalar into an interface.
//
//bicoop:noalloc
func BadBox(x int) any {
	return x // want "int-to-interface conversion boxes"
}

// BadConcat builds a fresh string.
//
//bicoop:noalloc
func BadConcat(a, b string) string {
	return a + b // want "string concatenation"
}

// BadGo spawns per call.
//
//bicoop:noalloc
func BadGo(f func()) {
	go f() // want "go statement"
}

// BadSliceLit allocates backing storage.
//
//bicoop:noalloc
func BadSliceLit() []int {
	return []int{1, 2, 3} // want "composite literal allocates"
}

// BadStringConv copies the byte slice.
//
//bicoop:noalloc
func BadStringConv(b []byte) string {
	return string(b) // want "string conversion copies"
}
