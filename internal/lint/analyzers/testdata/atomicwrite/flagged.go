package fixture

import "os"

// persistRaw writes durable state without the tmp+rename discipline.
func persistRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "raw os.WriteFile"
}

// createRaw clobbers in place.
func createRaw(path string) (*os.File, error) {
	return os.Create(path) // want "raw os.Create"
}

// openRaw can create or truncate.
func openRaw(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // want "raw os.OpenFile"
}
