package fixture

import (
	"os"
	"path/filepath"
)

// saveAtomic is an audited tmp+rename helper: the annotation is the
// reviewed license to touch the raw primitives.
//
//bicoop:atomicio
func saveAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readOnly never creates: os.ReadFile (and os.Open) stay legal everywhere.
func readOnly(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, "state.json"))
}

// remove deletes; deletion is not a torn-write hazard.
func remove(path string) error {
	return os.Remove(path)
}
