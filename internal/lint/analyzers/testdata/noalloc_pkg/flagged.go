// Package fixture exercises the package-wide noalloc scope: the directive
// on the package clause puts every function in the package — annotated or
// not, in any file — under the allocation check.
//
//bicoop:noalloc
package fixture

// UnannotatedMake has no function-level directive, but the package-wide
// scope still flags it.
func UnannotatedMake(n int) int {
	buf := make([]byte, n) // want "make allocates"
	return len(buf)
}

// UnannotatedAppend grows a slice it does not own.
func UnannotatedAppend(dst, src []int) []int {
	out := append(dst, src...) // want "append outside"
	return out
}
