package fixture

// Hot is a kernel with no directive of its own: package scope covers it,
// and its reuse idioms stay clean.
func Hot(dst, src []int) []int {
	dst = dst[:0]
	dst = append(dst, src...)
	return dst
}

// NewBuffer is a cold constructor: it legitimately allocates, so it opts
// out of the package-wide scope with the audited waiver below.
//
//bicoop:allow noalloc — cold constructor, called once per worker
func NewBuffer(n int) []int {
	return make([]int, n)
}

// Annotated carries its own directive too (redundant under package scope
// but harmless) and must stay clean.
//
//bicoop:noalloc
func Annotated(x int) int {
	return x * 2
}
