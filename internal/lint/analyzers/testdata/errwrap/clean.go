package fixture

import (
	"errors"
	"fmt"
	"io"
)

// matches uses errors.Is: the blessed path.
func matches(err error) bool {
	return errors.Is(err, ErrSpec)
}

// wraps uses %w for every error operand (Go 1.20+ accepts several).
func wraps(err error) error {
	return fmt.Errorf("%w: %w", ErrSpec, err)
}

// nilCheck is not a sentinel comparison.
func nilCheck(err error) bool {
	return err == nil
}

// eofCompare follows the io.Reader contract: io's sentinels are documented
// to arrive unwrapped, so == is the established idiom there.
func eofCompare(err error) bool {
	return err == io.EOF
}

// flattenMessage formats the rendered message, not the error value —
// flattening on purpose looks like this.
func flattenMessage(err error) error {
	return fmt.Errorf("failed: %v", err.Error())
}

// widthVerb exercises the verb scanner: the starred width consumes an
// argument before the error reaches its %w.
func widthVerb(err error, pad int) error {
	return fmt.Errorf("%*d names: %w", pad, 7, err)
}
