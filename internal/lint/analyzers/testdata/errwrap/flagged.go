package fixture

import (
	"errors"
	"fmt"
)

// ErrSpec is a typed sentinel.
var ErrSpec = errors.New("fixture: bad spec")

// compareEq matches a sentinel with ==: breaks under wrapping.
func compareEq(err error) bool {
	return err == ErrSpec // want "use errors.Is"
}

// compareNeq matches with !=: same hazard.
func compareNeq(err error) bool {
	return err != ErrSpec // want "use errors.Is"
}

// flatten formats an error operand with %v, severing the chain.
func flatten(err error) error {
	return fmt.Errorf("running job: %v", err) // want "wrap it with %w"
}

// flattenS does the same with %s.
func flattenS(err error) error {
	return fmt.Errorf("running job: %s", err) // want "wrap it with %w"
}

// flattenSecond wraps the sentinel but flattens the cause.
func flattenSecond(err error) error {
	return fmt.Errorf("%w: %v", ErrSpec, err) // want "wrap it with %w"
}
