package fixture

import (
	"math/rand"
	"time"
)

// SeededDraw owns a seeded generator: rand.New/rand.NewSource are
// constructors, and methods on *rand.Rand are the blessed path — neither
// may be flagged.
func SeededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Render only manipulates a caller-supplied timestamp; time.Time methods
// and time constants are not wall-clock reads.
func Render(t time.Time) string {
	return t.Add(time.Second).String()
}

// Waived documents an audited exemption.
func Waived() int64 {
	return time.Now().UnixNano() //bicoop:allow detrand — fixture waiver
}
