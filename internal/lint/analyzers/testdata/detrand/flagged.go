package fixture

import (
	"math/rand"
	"time"
)

// Timestamp leaks the wall clock into a result.
func Timestamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Elapsed measures wall-clock time.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// GlobalDraw draws from the process-global generator.
func GlobalDraw() float64 {
	return rand.Float64() // want "global generator"
}

// GlobalShuffle permutes through the global generator.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global generator"
}
