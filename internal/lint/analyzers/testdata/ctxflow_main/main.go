// Command fixture shows main's exemption: the process root context is
// main's to create, so context.Background here is clean.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
}
