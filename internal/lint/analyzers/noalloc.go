package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"bicoop/internal/lint"
)

// Noalloc enforces the 0-allocs/block contract of the hot kernels. A
// function whose doc comment carries the //bicoop:noalloc directive may not
// contain allocating constructs:
//
//   - make/new and slice/map/chan composite literals;
//   - append, except the self-append reuse idiom `x = append(x, ...)`
//     (growth past the preallocated capacity is caught at runtime by the
//     AllocsPerRun gates; the lint catches the forms that always allocate
//     a fresh backing array or header);
//   - function literals (closure captures) and go statements;
//   - calls into fmt and errors.New;
//   - conversions of concrete non-pointer-shaped values to interface types
//     (implicit at call arguments, returns and assignments, or explicit),
//     which box the value on the heap;
//   - string concatenation and string<->[]byte/[]rune conversions.
//
// One carve-out keeps the real kernels annotatable: fmt.Errorf or
// errors.New directly inside a return statement is a cold error path —
// taken only on misuse, never in the steady state the runtime alloc gates
// measure — and is exempt, arguments included.
//
// The directive also scopes whole packages: //bicoop:noalloc in a package
// clause's doc comment (any file) checks every function in the package.
// Functions that legitimately allocate — cold constructors, Reserve-style
// scratch growers — opt out with a //bicoop:allow noalloc waiver as the
// last line of their doc comment, the same audited escape hatch used for
// line-level waivers.
//
// The analyzer is self-scoping: it inspects only annotated functions (or
// packages), so it runs on every package.
var Noalloc = &lint.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //bicoop:noalloc may not contain allocating constructs",
	Run:  runNoalloc,
}

func runNoalloc(pass *lint.Pass) error {
	pkgWide := false
	for _, f := range pass.Files {
		if lint.HasDirective(f.Doc, "noalloc") {
			pkgWide = true
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !lint.HasDirective(fd.Doc, "noalloc") {
				// In package-wide mode every function is in scope unless a
				// //bicoop:allow noalloc waiver ends its doc comment (which
				// covers the declaration's line).
				if !pkgWide || pass.Allowed(fd.Pos()) {
					continue
				}
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

// checkNoalloc walks one annotated function body.
func checkNoalloc(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	skip := make(map[ast.Node]bool) // cold-error-path calls, exempt wholesale
	selfAppend := make(map[ast.Node]bool)

	var sig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig, _ = obj.Type().(*types.Signature)
	}

	// Pre-pass: mark return-statement error constructors and self-appends.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isColdErrorCtor(info, call) {
					skip[call] = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
					continue
				}
				if types.ExprString(n.Lhs[i]) == types.ExprString(call.Args[0]) {
					selfAppend[call] = true
				}
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil || skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "noalloc: function literal captures escape to the heap")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "noalloc: go statement allocates a goroutine")
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					pass.Reportf(n.Pos(), "noalloc: %s composite literal allocates", types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "noalloc: string concatenation allocates")
					}
				}
			}
		case *ast.ReturnStmt:
			checkReturnConversions(pass, sig, n)
		case *ast.AssignStmt:
			checkAssignConversions(pass, n)
		case *ast.CallExpr:
			checkCall(pass, n, selfAppend)
		}
		// Default recursion.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			return walk(child)
		})
		return false
	}
	for _, stmt := range fd.Body.List {
		walk(stmt)
	}
}

// checkCall flags allocating builtins, error/fmt constructors, string
// conversions and implicit interface conversions at call arguments.
func checkCall(pass *lint.Pass, call *ast.CallExpr, selfAppend map[ast.Node]bool) {
	info := pass.TypesInfo
	switch {
	case isBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "noalloc: make allocates")
		return
	case isBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "noalloc: new allocates")
		return
	case isBuiltin(info, call, "append"):
		if !selfAppend[call] {
			pass.Reportf(call.Pos(), "noalloc: append outside the `x = append(x, ...)` reuse idiom allocates a fresh backing array")
		}
		return
	}

	// Explicit conversion T(x).
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(pass, call.Pos(), tv.Type, info.TypeOf(call.Args[0]))
		return
	}

	if fn := lint.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "noalloc: fmt.%s allocates (formatting boxes every operand)", fn.Name())
			return
		}
		if lint.IsPkgFunc(fn, "errors", "New") {
			pass.Reportf(call.Pos(), "noalloc: errors.New allocates; return a preallocated sentinel")
			return
		}
	}

	// Implicit interface conversions at the arguments.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param != nil {
			checkImplicitConversion(pass, arg.Pos(), param, info.TypeOf(arg))
		}
	}
}

// checkReturnConversions flags results boxed into interface return types.
func checkReturnConversions(pass *lint.Pass, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or comma-ok spread: nothing boxed lexically here
	}
	for i, res := range ret.Results {
		checkImplicitConversion(pass, res.Pos(), sig.Results().At(i).Type(), pass.TypesInfo.TypeOf(res))
	}
}

// checkAssignConversions flags concrete values boxed into interface-typed
// destinations.
func checkAssignConversions(pass *lint.Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lhs := pass.TypesInfo.TypeOf(n.Lhs[i])
		rhs := pass.TypesInfo.TypeOf(n.Rhs[i])
		checkImplicitConversion(pass, n.Rhs[i].Pos(), lhs, rhs)
	}
}

// checkImplicitConversion reports dst <- src when it boxes a concrete
// non-pointer-shaped value into an interface.
func checkImplicitConversion(pass *lint.Pass, pos token.Pos, dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return // interface to interface: no boxing
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(src) {
		return // the interface data word holds the pointer directly
	}
	pass.Reportf(pos, "noalloc: %s-to-interface conversion boxes on the heap", types.TypeString(src, types.RelativeTo(pass.Pkg)))
}

// checkConversion reports explicit conversions that allocate: interface
// boxing and string<->byte/rune-slice copies.
func checkConversion(pass *lint.Pass, pos token.Pos, dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if b, ok := du.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if s, ok := su.(*types.Slice); ok {
			if isByteOrRune(s.Elem()) {
				pass.Reportf(pos, "noalloc: string conversion copies the slice")
				return
			}
		}
	}
	if s, ok := du.(*types.Slice); ok && isByteOrRune(s.Elem()) {
		if b, ok := su.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			pass.Reportf(pos, "noalloc: byte/rune slice conversion copies the string")
			return
		}
	}
	checkImplicitConversion(pass, pos, dst, src)
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit the interface data word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isColdErrorCtor reports fmt.Errorf / errors.New calls, the constructors
// exempt when they sit directly in a return statement.
func isColdErrorCtor(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	return lint.IsPkgFunc(fn, "fmt", "Errorf") || lint.IsPkgFunc(fn, "errors", "New")
}

// isBuiltin reports whether call invokes the named predeclared builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
