package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"bicoop/internal/lint"
)

// Cachekey enforces the result cache's single-chokepoint rule: every
// cache.Key is built by the cache package's constructors (WeightedKey,
// SumRateKey, ErasureKey), which quantize coordinates through Quantize and
// stamp the layout version. A key assembled by hand — a cache.Key composite
// literal or a write to a Key field outside bicoop/internal/cache — can
// skip quantization or the version stamp, silently aliasing or orphaning
// entries in both cache tiers, so it is a finding even when the values
// happen to be correct today.
var Cachekey = &lint.Analyzer{
	Name:  "cachekey",
	Doc:   "build cache.Key only via the cache package's quantizing constructors",
	Match: cacheClientPackage,
	Run:   runCachekey,
}

// cacheKeyPath is the package whose Key type the invariant protects.
const cacheKeyPath = modulePath + "/internal/cache"

// cacheClientPackage scopes cachekey: every package of this module except
// internal/cache itself (home of the constructors and the record codec)
// and the lint tree.
func cacheClientPackage(pkgPath, pkgName string) bool {
	if pkgPath != modulePath && !strings.HasPrefix(pkgPath, modulePath+"/") {
		return false
	}
	for _, excluded := range []string{cacheKeyPath, modulePath + "/internal/lint"} {
		if pkgPath == excluded || strings.HasPrefix(pkgPath, excluded+"/") {
			return false
		}
	}
	return true
}

// isCacheKey reports whether t (or what it points to) is the named type
// bicoop/internal/cache.Key.
func isCacheKey(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Key" && obj.Pkg() != nil && obj.Pkg().Path() == cacheKeyPath
}

func runCachekey(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isCacheKey(pass.TypesInfo.TypeOf(n)) {
					pass.Reportf(n.Pos(), "cachekey: cache.Key literal bypasses the quantizing constructors; use cache.WeightedKey, cache.SumRateKey or cache.ErasureKey")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if isCacheKey(pass.TypesInfo.TypeOf(sel.X)) {
						pass.Reportf(lhs.Pos(), "cachekey: writing cache.Key field %s bypasses the quantizing constructors; use cache.WeightedKey, cache.SumRateKey or cache.ErasureKey", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}
