package analyzers

import (
	"go/ast"
	"strings"
	"unicode"
	"unicode/utf8"

	"bicoop/internal/lint"
)

// Ctxflow enforces the cancellation contract every long-running entry
// point has honored since the engine refactor: exported Run*/Sweep*/
// Simulate* functions and methods take a context.Context as their first
// parameter (so callers can always bound them), and nobody below main
// conjures a fresh root with context.Background()/context.TODO() (which
// would detach work from the caller's cancellation). Main packages keep
// the right to create the process root context; the rare legitimate
// non-main default (a nil-Ctx config resolver) carries an audited
// //bicoop:allow ctxflow waiver.
var Ctxflow = &lint.Analyzer{
	Name:  "ctxflow",
	Doc:   "exported Run*/Sweep*/Simulate* entry points take ctx first; no context.Background outside main",
	Match: moduleNonLintPackage,
	Run:   runCtxflow,
}

// entryPrefixes are the naming conventions marking a long-running entry
// point.
var entryPrefixes = []string{"Run", "Sweep", "Simulate"}

// isEntryPointName reports exported names like Run, RunOutage, SweepAll,
// SimulateBER — an entry prefix followed by nothing or an uppercase rune
// (so "Runtime" or "Sweeper" do not match).
func isEntryPointName(name string) bool {
	for _, prefix := range entryPrefixes {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if rest == "" {
			return true
		}
		r, _ := utf8.DecodeRuneInString(rest)
		if unicode.IsUpper(r) {
			return true
		}
	}
	return false
}

func runCtxflow(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkEntryPoint(pass, fd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if lint.IsPkgFunc(fn, "context", "Background") || lint.IsPkgFunc(fn, "context", "TODO") {
				if pass.Pkg.Name() == "main" {
					return true // the process root context belongs to main
				}
				pass.Reportf(call.Pos(), "ctxflow: context.%s detaches work from the caller's cancellation; thread a ctx parameter instead", fn.Name())
			}
			return true
		})
	}
	return nil
}

// checkEntryPoint flags exported Run*/Sweep*/Simulate* declarations whose
// first parameter is not a context.Context. Methods count when both the
// receiver type name and the method name are exported — that is the
// public entry-point surface.
func checkEntryPoint(pass *lint.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !ast.IsExported(name) || !isEntryPointName(name) {
		return
	}
	if fd.Recv != nil && !exportedReceiver(fd.Recv) {
		return // method on an unexported type: internal machinery
	}
	params := fd.Type.Params
	if params != nil && len(params.List) > 0 {
		if t := pass.TypesInfo.TypeOf(params.List[0].Type); t != nil && lint.IsContextContext(t) {
			// ctx must be the sole name of the first field (ctx, x int is
			// impossible anyway for distinct types; this is just the happy
			// path).
			return
		}
	}
	pass.Reportf(fd.Name.Pos(), "ctxflow: exported entry point %s must take a context.Context as its first parameter", name)
}

// exportedReceiver reports whether the method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return ast.IsExported(tt.Name)
		default:
			return false
		}
	}
}
