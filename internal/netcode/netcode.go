// Package netcode implements the network-coding primitives of the paper's
// achievability proofs (Section III): messages as elements of the additive
// group L = max(|Sa|, |Sb|), the relay combining step wr = wa ⊕ wb, random
// binning sa(wa) ⊕ sb(wb) for the TDBC protocol, and side-information
// recovery at the terminals.
package netcode

import (
	"errors"
	"fmt"
	"math/rand"

	"bicoop/internal/gf2"
)

// Errors returned by this package.
var (
	ErrRange = errors.New("netcode: message out of range")
	ErrBins  = errors.New("netcode: bin count must be positive")
)

// Group is the additive message group Z_L used by the relay. Per the paper,
// L = max(|Sa|, |Sb|): the relay combines the two (possibly different-rate)
// messages inside the larger group, and each terminal strips its own message
// to recover the other's.
type Group struct {
	l uint64
}

// NewGroup returns the group Z_max(la, lb) for message-set sizes la and lb.
func NewGroup(la, lb uint64) (Group, error) {
	if la == 0 || lb == 0 {
		return Group{}, fmt.Errorf("netcode: empty message set (%d, %d)", la, lb)
	}
	l := la
	if lb > l {
		l = lb
	}
	return Group{l: l}, nil
}

// Order returns |L|.
func (g Group) Order() uint64 { return g.l }

// Combine returns wa ⊕ wb in the group (modular addition; any abelian group
// operation works for the argument, and Z_L keeps the arithmetic explicit).
func (g Group) Combine(wa, wb uint64) (uint64, error) {
	if wa >= g.l || wb >= g.l {
		return 0, fmt.Errorf("%w: (%d, %d) in Z_%d", ErrRange, wa, wb, g.l)
	}
	return (wa + wb) % g.l, nil
}

// RecoverFrom returns the peer message given the relay broadcast wr and the
// node's own message own: wr ⊖ own.
func (g Group) RecoverFrom(wr, own uint64) (uint64, error) {
	if wr >= g.l || own >= g.l {
		return 0, fmt.Errorf("%w: (%d, %d) in Z_%d", ErrRange, wr, own, g.l)
	}
	return (wr + g.l - own) % g.l, nil
}

// Binning is a random partition of a message set into bins, realizing the
// paper's sa(wa)/sb(wb) indices for TDBC: the relay only needs to broadcast
// the (lower-rate) XOR of bin indices because the terminals hold side
// information that pins the message within its bin.
type Binning struct {
	bins  uint64
	index []uint64 // message -> bin
}

// NewBinning randomly partitions a set of `messages` messages into `bins`
// bins with a uniform independent assignment, exactly the random-partition
// construction in the proof of Theorem 3.
func NewBinning(messages, bins uint64, r *rand.Rand) (Binning, error) {
	if bins == 0 {
		return Binning{}, ErrBins
	}
	if messages == 0 {
		return Binning{}, fmt.Errorf("netcode: empty message set")
	}
	idx := make([]uint64, messages)
	for i := range idx {
		idx[i] = uint64(r.Int63n(int64(bins)))
	}
	return Binning{bins: bins, index: idx}, nil
}

// Bins returns the number of bins.
func (b Binning) Bins() uint64 { return b.bins }

// Messages returns the number of messages.
func (b Binning) Messages() uint64 { return uint64(len(b.index)) }

// Bin returns the bin index of message w.
func (b Binning) Bin(w uint64) (uint64, error) {
	if w >= uint64(len(b.index)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrRange, w, len(b.index))
	}
	return b.index[w], nil
}

// Members returns all messages in bin s. The decoder intersects this list
// with its channel-likelihood information (in the bit-true simulator, with
// its pool of linear equations).
func (b Binning) Members(s uint64) []uint64 {
	var out []uint64
	for w, bin := range b.index {
		if bin == s {
			out = append(out, uint64(w))
		}
	}
	return out
}

// XORWord combines two equal-length bit vectors, the Z_2^k realization the
// paper cites from Larsson et al. It is a thin wrapper over gf2 so protocol
// code does not import gf2 directly for this one operation.
func XORWord(wa, wb gf2.Vector) (gf2.Vector, error) {
	return wa.Xor(wb)
}

// PadCombine XORs two bit-vector messages of possibly different lengths by
// zero-padding the shorter to the longer — the Z_2^max(ka,kb) group of the
// paper when message sets have different rates.
func PadCombine(wa, wb gf2.Vector) gf2.Vector {
	n := wa.Len()
	if wb.Len() > n {
		n = wb.Len()
	}
	out := gf2.NewVector(n)
	// Lengths are max by construction, so PadCombineInto cannot fail.
	_ = PadCombineInto(&out, wa, wb)
	return out
}

// PadCombineInto computes the zero-padded XOR wa ⊕ wb into dst without
// allocating; dst must have max(len(wa), len(wb)) bits. This is the relay's
// per-block combining step in the bit-true simulator, done word-by-word.
func PadCombineInto(dst *gf2.Vector, wa, wb gf2.Vector) error {
	n := wa.Len()
	if wb.Len() > n {
		n = wb.Len()
	}
	if dst.Len() != n {
		return fmt.Errorf("netcode: pad-combine into %d bits, want %d", dst.Len(), n)
	}
	dst.CopyPrefix(wa)
	return dst.XorWith(wb)
}
