package netcode

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bicoop/internal/gf2"
)

func TestNewGroup(t *testing.T) {
	tests := []struct {
		name      string
		la, lb    uint64
		wantOrder uint64
		wantErr   bool
	}{
		{name: "equal", la: 8, lb: 8, wantOrder: 8},
		{name: "a larger", la: 16, lb: 4, wantOrder: 16},
		{name: "b larger", la: 2, lb: 32, wantOrder: 32},
		{name: "empty a", la: 0, lb: 4, wantErr: true},
		{name: "empty b", la: 4, lb: 0, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := NewGroup(tt.la, tt.lb)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.Order() != tt.wantOrder {
				t.Errorf("Order = %d, want %d", g.Order(), tt.wantOrder)
			}
		})
	}
}

func TestGroupRoundTrip(t *testing.T) {
	// The defining property of the scheme: each terminal recovers the peer
	// message from the combined broadcast and its own message.
	prop := func(rawA, rawB uint64) bool {
		g, err := NewGroup(1024, 512)
		if err != nil {
			return false
		}
		wa, wb := rawA%1024, rawB%512
		wr, err := g.Combine(wa, wb)
		if err != nil {
			return false
		}
		gotB, err1 := g.RecoverFrom(wr, wa) // at node a
		gotA, err2 := g.RecoverFrom(wr, wb) // at node b
		return err1 == nil && err2 == nil && gotB == wb && gotA == wa
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupRangeErrors(t *testing.T) {
	g, err := NewGroup(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Combine(4, 0); !errors.Is(err, ErrRange) {
		t.Errorf("Combine out of range: err = %v", err)
	}
	if _, err := g.RecoverFrom(0, 4); !errors.Is(err, ErrRange) {
		t.Errorf("RecoverFrom out of range: err = %v", err)
	}
}

func TestBinning(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b, err := NewBinning(1000, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 16 || b.Messages() != 1000 {
		t.Fatalf("dims = (%d bins, %d msgs)", b.Bins(), b.Messages())
	}
	// Every message has a bin in range, and Members is consistent with Bin.
	counts := make(map[uint64]int)
	for w := uint64(0); w < 1000; w++ {
		s, err := b.Bin(w)
		if err != nil {
			t.Fatal(err)
		}
		if s >= 16 {
			t.Fatalf("bin %d out of range", s)
		}
		counts[s]++
	}
	var total int
	for s := uint64(0); s < 16; s++ {
		members := b.Members(s)
		if len(members) != counts[s] {
			t.Errorf("bin %d: Members has %d, Bin counted %d", s, len(members), counts[s])
		}
		for _, w := range members {
			got, err := b.Bin(w)
			if err != nil || got != s {
				t.Errorf("member %d of bin %d maps to %d (err %v)", w, s, got, err)
			}
		}
		total += len(members)
	}
	if total != 1000 {
		t.Errorf("bins partition %d messages, want 1000", total)
	}
	// Bins are roughly balanced (uniform assignment): each ~62.5 expected.
	for s, c := range counts {
		if c < 30 || c > 100 {
			t.Errorf("bin %d badly unbalanced: %d members", s, c)
		}
	}
}

func TestBinningErrors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if _, err := NewBinning(10, 0, r); !errors.Is(err, ErrBins) {
		t.Errorf("zero bins: err = %v", err)
	}
	if _, err := NewBinning(0, 4, r); err == nil {
		t.Error("zero messages: want error")
	}
	b, err := NewBinning(10, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Bin(10); !errors.Is(err, ErrRange) {
		t.Errorf("out-of-range Bin: err = %v", err)
	}
}

func TestBinningSideInformationDecoding(t *testing.T) {
	// The TDBC decoding pattern: node a knows the bin index of wb (from the
	// relay) and narrows it to one message using side information. Here the
	// side information is simulated as "wb is one of a small candidate set".
	r := rand.New(rand.NewSource(3))
	const messages, bins = 4096, 64
	b, err := NewBinning(messages, bins, r)
	if err != nil {
		t.Fatal(err)
	}
	decodeOK := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		wb := uint64(r.Int63n(messages))
		s, err := b.Bin(wb)
		if err != nil {
			t.Fatal(err)
		}
		// Side information: a candidate set of ~messages/bins^2 wrong
		// messages plus the true one. With |bin| ≈ 64 and candidates ≈ 2,
		// the intersection is almost surely {wb}.
		candidates := map[uint64]bool{wb: true}
		for len(candidates) < 2 {
			candidates[uint64(r.Int63n(messages))] = true
		}
		var matches []uint64
		for w := range candidates {
			ws, err := b.Bin(w)
			if err != nil {
				t.Fatal(err)
			}
			if ws == s {
				matches = append(matches, w)
			}
		}
		if len(matches) == 1 && matches[0] == wb {
			decodeOK++
		}
	}
	if decodeOK < trials*95/100 {
		t.Errorf("side-information decoding succeeded %d/%d, want >= 95%%", decodeOK, trials)
	}
}

func TestXORWord(t *testing.T) {
	a := gf2.VectorFromBits([]bool{true, false, true})
	b := gf2.VectorFromBits([]bool{false, false, true})
	x, err := XORWord(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x.Bit(0) != 1 || x.Bit(1) != 0 || x.Bit(2) != 0 {
		t.Errorf("XORWord = %v", x)
	}
}

func TestPadCombine(t *testing.T) {
	// Different-length messages: pad the shorter with zeros.
	r := rand.New(rand.NewSource(4))
	wa := gf2.RandomVector(20, r)
	wb := gf2.RandomVector(12, r)
	wr := PadCombine(wa, wb)
	if wr.Len() != 20 {
		t.Fatalf("combined length = %d, want 20", wr.Len())
	}
	// Node a (knows wa) recovers wb: wr xor pad(wa).
	recB := PadCombine(wr, wa)
	for i := 0; i < 12; i++ {
		if recB.Bit(i) != wb.Bit(i) {
			t.Fatalf("bit %d: recovered %d, want %d", i, recB.Bit(i), wb.Bit(i))
		}
	}
	// Upper padding bits must be zero after recovery.
	for i := 12; i < 20; i++ {
		if recB.Bit(i) != 0 {
			t.Fatalf("padding bit %d nonzero after recovery", i)
		}
	}
	// Node b (knows wb) recovers wa.
	recA := PadCombine(wr, wb)
	if !recA.Equal(wa) {
		t.Error("node b failed to recover wa")
	}
}

func TestPadCombineInto(t *testing.T) {
	// The in-place variant must agree with PadCombine for every length
	// ordering, and reject a wrongly sized destination.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		la, lb := 1+r.Intn(150), 1+r.Intn(150)
		wa, wb := gf2.RandomVector(la, r), gf2.RandomVector(lb, r)
		want := PadCombine(wa, wb)
		dst := gf2.RandomVector(want.Len(), r) // junk pre-fill
		if err := PadCombineInto(&dst, wa, wb); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(want) {
			t.Fatalf("trial %d (la=%d lb=%d): PadCombineInto mismatch", trial, la, lb)
		}
	}
	short := gf2.NewVector(3)
	if err := PadCombineInto(&short, gf2.NewVector(5), gf2.NewVector(4)); err == nil {
		t.Error("want error for undersized destination")
	}
}
