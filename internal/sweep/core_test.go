package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoreHookLifecycle pins the generic worker-state contract: one
// NewWorker/CloseWorker pair per worker goroutine, ResetWorker exactly once
// per chunk, and chunk boundaries that depend only on (n, ChunkSize) — the
// invariant every workload's determinism rests on.
func TestRunCoreHookLifecycle(t *testing.T) {
	const n, cs = 103, 10
	for _, workers := range []int{1, 3} {
		var mu sync.Mutex
		news, closes, resets := 0, 0, 0
		var chunks [][2]int
		hooks := Hooks[*int]{
			NewWorker: func() *int {
				mu.Lock()
				defer mu.Unlock()
				news++
				return new(int)
			},
			ResetWorker: func(w *int) {
				mu.Lock()
				defer mu.Unlock()
				resets++
				*w = 0
			},
			CloseWorker: func(w *int) {
				mu.Lock()
				defer mu.Unlock()
				closes++
			},
		}
		prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: workers, ChunkSize: cs}, hooks,
			func(w *int, lo, hi int) error {
				if *w != 0 {
					return errors.New("worker state not reset at chunk boundary")
				}
				*w = hi - lo
				mu.Lock()
				chunks = append(chunks, [2]int{lo, hi})
				mu.Unlock()
				return nil
			}, nil)
		if err != nil || prefix != n {
			t.Fatalf("workers=%d: prefix=%d err=%v", workers, prefix, err)
		}
		if news != closes || news == 0 {
			t.Errorf("workers=%d: %d NewWorker vs %d CloseWorker calls", workers, news, closes)
		}
		wantChunks := (n + cs - 1) / cs
		if resets != wantChunks || len(chunks) != wantChunks {
			t.Errorf("workers=%d: %d resets, %d chunks, want %d", workers, resets, len(chunks), wantChunks)
		}
		seen := make(map[int]int, wantChunks)
		for _, c := range chunks {
			seen[c[0]] = c[1]
		}
		for c := 0; c < wantChunks; c++ {
			lo := c * cs
			hi := lo + cs
			if hi > n {
				hi = n
			}
			if seen[lo] != hi {
				t.Errorf("workers=%d: chunk [%d, %d) missing or misshapen (got hi=%d)", workers, lo, hi, seen[lo])
			}
		}
	}
}

// TestRunCoreChunkSizeOne covers the campaign shape: heavyweight points
// claimed one at a time, zero-state workers, ordered emission.
func TestRunCoreChunkSizeOne(t *testing.T) {
	const n = 9
	var ran atomic.Int64
	var emitted []int
	prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: 4, ChunkSize: 1}, Hooks[struct{}]{},
		func(_ struct{}, lo, hi int) error {
			if hi != lo+1 {
				return errors.New("chunk wider than 1")
			}
			ran.Add(1)
			return nil
		},
		func(lo, hi int) error {
			emitted = append(emitted, lo)
			return nil
		})
	if err != nil || prefix != n {
		t.Fatalf("prefix=%d err=%v", prefix, err)
	}
	if ran.Load() != n || len(emitted) != n {
		t.Fatalf("ran %d, emitted %d, want %d", ran.Load(), len(emitted), n)
	}
	for i, lo := range emitted {
		if lo != i {
			t.Fatalf("emission order %v, want ascending", emitted)
		}
	}
}

// TestRunCoreWorkerStateIsolation proves two workers never share a W: each
// chunk records the identity of the state that ran it, and the per-state
// chunk sets partition the chunk index space.
func TestRunCoreWorkerStateIsolation(t *testing.T) {
	const n, cs = 64, 4
	type worker struct{ id int }
	var nextID atomic.Int64
	owners := make([]*worker, (n+cs-1)/cs)
	hooks := Hooks[*worker]{
		NewWorker: func() *worker { return &worker{id: int(nextID.Add(1))} },
	}
	prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: 4, ChunkSize: cs}, hooks,
		func(w *worker, lo, hi int) error {
			owners[lo/cs] = w
			return nil
		}, nil)
	if err != nil || prefix != n {
		t.Fatalf("prefix=%d err=%v", prefix, err)
	}
	for c, w := range owners {
		if w == nil {
			t.Fatalf("chunk %d never ran", c)
		}
	}
}
