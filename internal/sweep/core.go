package sweep

// core.go — the workload-generic sharded execution core. Run (the
// evaluator-grid entry point in sweep.go), RegionBatch (region.go) and the
// facade's simulation campaigns all execute through RunCore: an indexed
// point set is split into fixed-size chunks pulled by a worker pool, each
// worker owning private state W supplied by Hooks and reset at every chunk
// boundary, with an ordered streaming emitter under bounded backpressure.
//
// The contract every workload inherits:
//
//   - chunk claim is one atomic add; chunk boundaries depend only on n and
//     the chunk size, never on Workers, so any per-chunk state reset happens
//     at the same indices for every worker count and results stay
//     bit-identical;
//   - emit(start, end) observes completed chunks in strictly ascending
//     order, with at most ~2×workers chunks of results live (ticket
//     semaphore), so streaming consumers hold O(workers) chunks, not the
//     whole point set;
//   - cancellation follows internal/sim's runGate pattern: a
//     context.AfterFunc flips one atomic flag polled per chunk, the pool
//     drains within one chunk per worker, and the contiguous prefix of
//     completed (and emitted) points is reported alongside the context
//     error.

import (
	"context"
	"sync"
	"sync/atomic"
)

// Hooks supplies the per-worker state of a generic sharded run. Every worker
// goroutine owns one W for its lifetime; ResetWorker runs at each chunk
// boundary so a chunk's results depend only on the chunk itself, never on
// which worker evaluated the previous one. All fields are optional: a nil
// NewWorker gives every worker W's zero value (stateless workloads such as
// simulation campaigns pass Hooks[struct{}]{}).
type Hooks[W any] struct {
	// NewWorker returns the state one worker owns (e.g. a leased warm
	// evaluator). Called once per worker goroutine.
	NewWorker func() W
	// ResetWorker clears any cross-chunk state (e.g. LP warm-start bases)
	// at every chunk boundary, before do runs on the chunk.
	ResetWorker func(W)
	// CloseWorker releases the state when the worker exits (e.g. returns
	// the evaluator to its pool). Runs even when the run halts early.
	CloseWorker func(W)
}

func (h Hooks[W]) newWorker() W {
	if h.NewWorker != nil {
		return h.NewWorker()
	}
	var zero W
	return zero
}

func (h Hooks[W]) reset(w W) {
	if h.ResetWorker != nil {
		h.ResetWorker(w)
	}
}

func (h Hooks[W]) close(w W) {
	if h.CloseWorker != nil {
		h.CloseWorker(w)
	}
}

// CoreOptions tunes a generic run.
type CoreOptions struct {
	// Workers bounds the goroutines evaluating chunks; non-positive means
	// GOMAXPROCS. The worker count affects scheduling only — results are
	// bit-identical for every value.
	Workers int
	// ChunkSize is the number of consecutive points one worker evaluates
	// per claim; non-positive means ChunkSize (64). Pick it per workload —
	// 1 for heavyweight points like whole simulation runs — but never
	// derive it from Workers: chunk boundaries are the worker-state reset
	// points, so determinism across worker counts depends on them being
	// fixed.
	ChunkSize int
	// Start resumes a run: points [0, Start) are assumed already evaluated
	// and emitted by an earlier run, so neither do nor emit sees them.
	// Start is floored to a chunk boundary (any watermark a Checkpointer
	// saved already is one); the returned prefix still counts from 0 and
	// includes the skipped points.
	Start int
	// Checkpoint, when non-nil, persists the emitter's watermark — the
	// contiguous emitted point prefix — each time it advances. A Save
	// error halts the run like an emit error. Feed the last saved value
	// back as Start to resume.
	Checkpoint Checkpointer
	// Retry re-runs failed chunks per the policy, recreating the worker's
	// state W through the run's Hooks between attempts; nil fails fast on
	// the first error. See RetryPolicy.
	Retry *RetryPolicy
}

func (o CoreOptions) workers() int {
	return Options{Workers: o.Workers}.workers()
}

func (o CoreOptions) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return ChunkSize
}

// RunCore evaluates n indexed points with per-worker state W. do(w, start,
// end) evaluates the contiguous chunk [start, end) — freshly reset via
// Hooks.ResetWorker — and must write its results into caller-owned,
// index-addressed storage; emit(start, end), when non-nil, is invoked for
// completed chunks in strictly ascending order (the streaming sink). A do or
// emit error, or context cancellation, halts the run within one chunk per
// worker.
//
// Failures are contained per chunk: a do error (including a recovered
// workload panic, surfaced as a *PanicError) is reported as a *ChunkError,
// and opts.Retry re-runs transiently failed chunks with fresh worker state.
// opts.Start resumes past an already-emitted prefix and opts.Checkpoint
// persists the emitted watermark as it advances (see CoreOptions).
//
// RunCore returns the length of the contiguous prefix of points whose chunks
// completed (and, when emit is set, were emitted) without error — n on
// success — plus the first error in enumeration order, with context errors
// taking precedence.
func RunCore[W any](ctx context.Context, n int, opts CoreOptions, hooks Hooks[W], do func(w W, start, end int) error, emit func(start, end int) error) (int, error) {
	if n <= 0 {
		return 0, ctxErr(ctx)
	}
	cs := opts.chunkSize()
	nChunks := (n + cs - 1) / cs
	startChunk := 0
	if opts.Start > 0 {
		if opts.Start >= n {
			// The watermark already covers every point; nothing to run.
			return n, ctxErr(ctx)
		}
		// Resume point: floor to a chunk boundary so the skipped prefix is
		// exactly a set of whole chunks (saved watermarks already are).
		startChunk = opts.Start / cs
	}
	workers := opts.workers()
	if workers > nChunks-startChunk {
		workers = nChunks - startChunk
	}
	if workers <= 1 {
		return runCoreSequential(ctx, n, nChunks, cs, startChunk, opts, hooks, do, emit)
	}

	var halted atomic.Bool
	haltCh := make(chan struct{})
	var haltOnce sync.Once
	halt := func() {
		haltOnce.Do(func() {
			halted.Store(true)
			close(haltCh)
		})
	}
	stop := func() bool { return false }
	if ctx != nil && ctx.Done() != nil {
		stop = context.AfterFunc(ctx, halt)
	}
	defer stop()

	// tickets bounds how far computation may run ahead of the emitter: a
	// worker takes one ticket per chunk claim and the emitter returns it
	// once the chunk has been streamed (or skipped past an error). This
	// caps the reorder buffer — and with it the caller's live per-chunk
	// result storage — at window chunks instead of the whole point set.
	window := 2 * workers
	if window < 4 {
		window = 4
	}
	if window > nChunks-startChunk {
		window = nChunks - startChunk
	}
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}

	var next atomic.Int64
	next.Store(int64(startChunk))
	chunkErr := make([]error, nChunks)
	completions := make(chan int, nChunks-startChunk)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := hooks.newWorker()
			defer func() { hooks.close(st) }()
			for {
				select {
				case <-tickets:
				case <-haltCh:
					return
				}
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo, hi := chunkBoundsOf(c, n, cs)
				if err := runChunkAttempts(ctx, hooks, &st, opts.Retry, c, lo, hi, do); err != nil {
					chunkErr[c] = err
					halt()
				}
				completions <- c
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	// The calling goroutine is the emitter: it advances a cursor over the
	// completed-chunk set and streams ready chunks in order, halting the
	// pool on an emit error but always draining it. Each advanced chunk
	// returns its backpressure ticket; ticket sends cannot block because at
	// most window claims are outstanding. (After a halt the remaining
	// tickets are irrelevant — workers exit via haltCh.)
	done := make([]bool, nChunks)
	nextEmit := startChunk
	emitting := emit != nil
	var ckErr error
	for c := range completions {
		done[c] = true
		advanced := false
		for nextEmit < nChunks && done[nextEmit] && chunkErr[nextEmit] == nil {
			if emitting {
				lo, hi := chunkBoundsOf(nextEmit, n, cs)
				if err := emit(lo, hi); err != nil {
					chunkErr[nextEmit] = err
					halt()
					emitting = false
					break
				}
			}
			nextEmit++
			advanced = true
			tickets <- struct{}{}
		}
		if advanced && opts.Checkpoint != nil && ckErr == nil {
			if err := opts.Checkpoint.Save(watermarkOf(nextEmit, n, cs)); err != nil {
				ckErr = err
				halt()
			}
		}
	}

	prefix := watermarkOf(nextEmit, n, cs)
	if err := ctxErr(ctx); err != nil {
		return prefix, err
	}
	for _, err := range chunkErr {
		if err != nil {
			return prefix, err
		}
	}
	return prefix, ckErr
}

// watermarkOf converts an emitted-chunk cursor to the emitted point prefix.
func watermarkOf(nextEmit, n, cs int) int {
	w := nextEmit * cs
	if w > n {
		w = n
	}
	return w
}

// runCoreSequential is the single-worker path: same chunk boundaries and
// worker-state resets as the pool, so its outputs are bit-identical, without
// goroutine or channel overhead.
func runCoreSequential[W any](ctx context.Context, n, nChunks, cs, startChunk int, opts CoreOptions, hooks Hooks[W], do func(w W, start, end int) error, emit func(start, end int) error) (int, error) {
	st := hooks.newWorker()
	defer func() { hooks.close(st) }()
	for c := startChunk; c < nChunks; c++ {
		if err := ctxErr(ctx); err != nil {
			return c * cs, err
		}
		lo, hi := chunkBoundsOf(c, n, cs)
		if err := runChunkAttempts(ctx, hooks, &st, opts.Retry, c, lo, hi, do); err != nil {
			return lo, err
		}
		if emit != nil {
			if err := emit(lo, hi); err != nil {
				return lo, err
			}
		}
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint.Save(watermarkOf(c+1, n, cs)); err != nil {
				return watermarkOf(c+1, n, cs), err
			}
		}
	}
	return n, nil
}

func chunkBoundsOf(c, n, cs int) (lo, hi int) {
	lo = c * cs
	hi = lo + cs
	if hi > n {
		hi = n
	}
	return lo, hi
}
