package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bicoop/internal/protocols"
	"bicoop/internal/sweep/chaos"
)

// resilienceWorkers are the worker counts every resilience pin runs at: the
// sequential path, a small pool, and a pool wider than the chunk window.
var resilienceWorkers = []int{1, 2, 7}

// TestRunCoreChaosBitIdentical is the headline resilience pin: a run with
// ~20% injected transient chunk faults, retried through the policy with
// per-retry worker-state teardown, completes with results == to a fault-free
// run at every worker count. The workload's output depends on chunk-fresh
// worker state, so any retry that leaked state across attempts would change
// the bits.
func TestRunCoreChaosBitIdentical(t *testing.T) {
	const n, cs = 40*8 + 5, 8
	run := func(workers int, inj *chaos.Injector) ([]int, error) {
		out := make([]int, n)
		// W is a per-worker accumulator reset at chunk boundaries: each
		// point records its position within the chunk, so results expose
		// both chunk boundaries and any stale worker state.
		hooks := Hooks[*int]{
			NewWorker:   func() *int { return new(int) },
			ResetWorker: func(w *int) { *w = 0 },
		}
		do := func(w *int, lo, hi int) error {
			for i := lo; i < hi; i++ {
				*w++
				out[i] = i*1000 + *w
			}
			return nil
		}
		if inj != nil {
			do = chaos.Wrap(inj, do)
		}
		prefix, err := RunCore(context.Background(), n, CoreOptions{
			Workers:   workers,
			ChunkSize: cs,
			Retry:     &RetryPolicy{MaxAttempts: 3, IsTransient: chaos.Transient},
		}, hooks, do, nil)
		if err == nil && prefix != n {
			t.Fatalf("workers=%d: prefix=%d, want %d", workers, prefix, n)
		}
		return out, err
	}

	clean, err := run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range resilienceWorkers {
		inj := &chaos.Injector{Seed: 7, TransientRate: 0.2}
		got, err := run(workers, inj)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, clean) {
			t.Fatalf("workers=%d: chaos run differs from fault-free run", workers)
		}
	}
}

// TestRunChaosWarmEvaluators runs the real warm-evaluator workload (HBC LPs
// warm-started within chunks) under injected faults and pins bit-identical
// results: a retried chunk recreates its evaluator through the hooks, so the
// warm-start state a retry sees matches a first attempt exactly.
func TestRunChaosWarmEvaluators(t *testing.T) {
	scen := testScenarios(3*ChunkSize + 11)
	type opt3 struct{ Sum, Ra, Rb float64 }
	run := func(workers int, inj *chaos.Injector) []opt3 {
		t.Helper()
		out := make([]opt3, len(scen))
		do := func(ev *protocols.Evaluator, lo, hi int) error {
			var memo scenarioMemo
			for i := lo; i < hi; i++ {
				opt, err := ev.WeightedRate(protocols.HBC, protocols.BoundInner, memo.internal(scen[i]), 1, 1)
				if err != nil {
					return err
				}
				out[i] = opt3{Sum: opt.Objective, Ra: opt.Rates.Ra, Rb: opt.Rates.Rb}
			}
			return nil
		}
		opts := Options{Workers: workers}
		if inj != nil {
			do = chaos.Wrap(inj, do)
			opts.Retry = &RetryPolicy{MaxAttempts: 4, IsTransient: chaos.Transient}
		}
		prefix, err := Run(context.Background(), len(scen), opts, do, nil)
		if err != nil || prefix != len(scen) {
			t.Fatalf("workers=%d: prefix=%d err=%v", workers, prefix, err)
		}
		return out
	}
	clean := run(1, nil)
	for _, workers := range resilienceWorkers {
		got := run(workers, &chaos.Injector{Seed: 3, TransientRate: 0.2})
		for i := range clean {
			if got[i] != clean[i] {
				t.Fatalf("workers=%d: point %d differs under chaos: %+v vs %+v", workers, i, got[i], clean[i])
			}
		}
	}
}

// TestRunCorePanicContained pins panic containment: an injected worker panic
// surfaces as a *ChunkError wrapping a *PanicError — the process stays alive
// — and without a retry policy the run halts with the panicking chunk
// identified.
func TestRunCorePanicContained(t *testing.T) {
	const n, cs = 96, 8
	const panicLo = 5 * cs
	for _, workers := range resilienceWorkers {
		inj := &chaos.Injector{Seed: 1, PanicStarts: []int{panicLo}}
		_, err := RunCore(context.Background(), n, CoreOptions{Workers: workers, ChunkSize: cs}, Hooks[struct{}]{},
			chaos.Wrap(inj, func(_ struct{}, lo, hi int) error { return nil }), nil)
		var cerr *ChunkError
		if !errors.As(err, &cerr) {
			t.Fatalf("workers=%d: err = %v, want a *ChunkError", workers, err)
		}
		if cerr.Chunk != panicLo/cs || cerr.Start != panicLo || cerr.Attempt != 1 {
			t.Errorf("workers=%d: ChunkError = %+v, want chunk %d at [%d,...) attempt 1", workers, cerr, panicLo/cs, panicLo)
		}
		var perr *PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("workers=%d: err = %v, want a wrapped *PanicError", workers, err)
		}
		if perr.Value == nil || len(perr.Stack) == 0 {
			t.Errorf("workers=%d: PanicError missing value or stack: %+v", workers, perr)
		}
	}
}

// TestRunCorePanicRetried pins that a panic is just another chunk failure to
// the retry layer: with a policy that classifies it transient, the run
// completes and the results match a fault-free run.
func TestRunCorePanicRetried(t *testing.T) {
	const n, cs = 96, 8
	for _, workers := range resilienceWorkers {
		out := make([]int, n)
		inj := &chaos.Injector{Seed: 1, PanicStarts: []int{0, 5 * cs}}
		prefix, err := RunCore(context.Background(), n, CoreOptions{
			Workers:   workers,
			ChunkSize: cs,
			Retry:     &RetryPolicy{MaxAttempts: 2}, // nil IsTransient: retry everything
		}, Hooks[struct{}]{},
			chaos.Wrap(inj, func(_ struct{}, lo, hi int) error {
				for i := lo; i < hi; i++ {
					out[i] = i + 1
				}
				return nil
			}), nil)
		if err != nil || prefix != n {
			t.Fatalf("workers=%d: prefix=%d err=%v", workers, prefix, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: point %d = %d, want %d", workers, i, v, i+1)
			}
		}
	}
}

// TestRunCorePermanentFaultPrefix pins the halt semantics of a
// non-transient fault under retry: the error identifies the failed chunk
// with one attempt spent, the emitted prefix never passes the failed chunk,
// and the sequential path stops exactly at it.
func TestRunCorePermanentFaultPrefix(t *testing.T) {
	const n, cs = 120, 8
	const permLo = 7 * cs
	for _, workers := range resilienceWorkers {
		inj := &chaos.Injector{Seed: 9, PermanentStarts: []int{permLo}}
		var emitted atomic.Int64
		prefix, err := RunCore(context.Background(), n, CoreOptions{
			Workers:   workers,
			ChunkSize: cs,
			Retry:     &RetryPolicy{MaxAttempts: 5, IsTransient: chaos.Transient},
		}, Hooks[struct{}]{},
			chaos.Wrap(inj, func(_ struct{}, lo, hi int) error { return nil }),
			func(lo, hi int) error { emitted.Store(int64(hi)); return nil })
		var cerr *ChunkError
		if !errors.As(err, &cerr) || !errors.Is(err, chaos.ErrPermanent) {
			t.Fatalf("workers=%d: err = %v, want ChunkError wrapping ErrPermanent", workers, err)
		}
		if cerr.Chunk != permLo/cs || cerr.Attempt != 1 {
			t.Errorf("workers=%d: ChunkError = %+v, want chunk %d after 1 attempt", workers, cerr, permLo/cs)
		}
		if prefix > permLo || int(emitted.Load()) != prefix {
			t.Errorf("workers=%d: prefix=%d emitted=%d, want prefix <= %d and equal", workers, prefix, emitted.Load(), permLo)
		}
		if workers == 1 && prefix != permLo {
			t.Errorf("sequential prefix = %d, want exactly %d", prefix, permLo)
		}
	}
}

// TestRunCoreTransientExhaustion pins that a chunk whose faults outlast
// MaxAttempts fails with the final attempt recorded.
func TestRunCoreTransientExhaustion(t *testing.T) {
	inj := &chaos.Injector{Seed: 2, TransientRate: 1, MaxFaults: 10}
	_, err := RunCore(context.Background(), 32, CoreOptions{Workers: 2, ChunkSize: 8,
		Retry: &RetryPolicy{MaxAttempts: 3, IsTransient: chaos.Transient}},
		Hooks[struct{}]{},
		chaos.Wrap(inj, func(_ struct{}, lo, hi int) error { return nil }), nil)
	var cerr *ChunkError
	if !errors.As(err, &cerr) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ChunkError wrapping ErrInjected", err)
	}
	if cerr.Attempt != 3 {
		t.Errorf("gave up at attempt %d, want 3 (MaxAttempts)", cerr.Attempt)
	}
}

// TestRunCoreRetryRecreatesWorkerState pins the teardown contract: every
// retry closes the failed attempt's worker state and creates a fresh one, so
// NewWorker/CloseWorker stay paired with exactly one extra pair per injected
// fault.
func TestRunCoreRetryRecreatesWorkerState(t *testing.T) {
	const n, cs = 80, 8
	for _, workers := range resilienceWorkers {
		var mu sync.Mutex
		news, closes := 0, 0
		hooks := Hooks[*int]{
			NewWorker:   func() *int { mu.Lock(); news++; mu.Unlock(); return new(int) },
			CloseWorker: func(*int) { mu.Lock(); closes++; mu.Unlock() },
		}
		// TransientRate 1 faults the first attempt of every chunk exactly
		// once (MaxFaults defaults to 1).
		inj := &chaos.Injector{Seed: 4, TransientRate: 1}
		nChunks := n / cs
		prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: workers, ChunkSize: cs,
			Retry: &RetryPolicy{MaxAttempts: 2, IsTransient: chaos.Transient}},
			hooks,
			chaos.Wrap(inj, func(_ *int, lo, hi int) error { return nil }), nil)
		if err != nil || prefix != n {
			t.Fatalf("workers=%d: prefix=%d err=%v", workers, prefix, err)
		}
		if news != closes {
			t.Errorf("workers=%d: %d NewWorker vs %d CloseWorker — retries must keep them paired", workers, news, closes)
		}
		// One state per worker goroutine plus one recreation per faulted
		// chunk (every chunk faulted once).
		wantExtra := nChunks
		if news < wantExtra+1 || news > wantExtra+workers {
			t.Errorf("workers=%d: %d worker states created, want %d faults + <=%d workers", workers, news, wantExtra, workers)
		}
	}
}

// TestRunCoreCheckpointResume pins the checkpoint/resume round trip at the
// core: watermarks advance monotonically to n, and a second run started from
// any saved watermark evaluates and emits exactly the missing suffix,
// reproducing the remaining results bit-for-bit.
func TestRunCoreCheckpointResume(t *testing.T) {
	const n, cs = 137, 8
	full := make([]int, n)
	ck := &recordingCheckpointer{}
	prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: 3, ChunkSize: cs, Checkpoint: ck},
		Hooks[struct{}]{},
		func(_ struct{}, lo, hi int) error {
			for i := lo; i < hi; i++ {
				full[i] = 7 * i
			}
			return nil
		},
		func(lo, hi int) error { return nil })
	if err != nil || prefix != n {
		t.Fatalf("prefix=%d err=%v", prefix, err)
	}
	saves := ck.snapshot()
	if len(saves) == 0 || saves[len(saves)-1] != n {
		t.Fatalf("saves = %v, want a final watermark of %d", saves, n)
	}
	for i := 1; i < len(saves); i++ {
		if saves[i] <= saves[i-1] {
			t.Fatalf("watermarks not strictly increasing: %v", saves)
		}
	}
	for _, resumeAt := range []int{saves[0], saves[len(saves)/2], n} {
		for _, workers := range resilienceWorkers {
			out := make([]int, n)
			var lowest atomic.Int64
			lowest.Store(int64(n + 1))
			var emitLow atomic.Int64
			emitLow.Store(int64(n + 1))
			prefix, err := RunCore(context.Background(), n,
				CoreOptions{Workers: workers, ChunkSize: cs, Start: resumeAt},
				Hooks[struct{}]{},
				func(_ struct{}, lo, hi int) error {
					if int64(lo) < lowest.Load() {
						lowest.Store(int64(lo))
					}
					for i := lo; i < hi; i++ {
						out[i] = 7 * i
					}
					return nil
				},
				func(lo, hi int) error {
					if int64(lo) < emitLow.Load() {
						emitLow.Store(int64(lo))
					}
					return nil
				})
			if err != nil || prefix != n {
				t.Fatalf("resume@%d workers=%d: prefix=%d err=%v", resumeAt, workers, prefix, err)
			}
			if resumeAt < n {
				if got := int(lowest.Load()); got != resumeAt {
					t.Errorf("resume@%d workers=%d: first evaluated point %d, want %d", resumeAt, workers, got, resumeAt)
				}
				if got := int(emitLow.Load()); got != resumeAt {
					t.Errorf("resume@%d workers=%d: first emitted chunk at %d, want %d", resumeAt, workers, got, resumeAt)
				}
				if !reflect.DeepEqual(out[resumeAt:], full[resumeAt:]) {
					t.Errorf("resume@%d workers=%d: resumed suffix differs", resumeAt, workers)
				}
			} else if lowest.Load() != int64(n+1) {
				t.Errorf("resume@%d: nothing should run, but point %d was evaluated", resumeAt, lowest.Load())
			}
		}
	}
}

// TestRunCoreCheckpointSaveError pins that a failing Checkpointer halts the
// run like an emit error, surfacing the save error.
func TestRunCoreCheckpointSaveError(t *testing.T) {
	sentinel := errors.New("disk full")
	for _, workers := range []int{1, 4} {
		ck := &failingCheckpointer{failAt: 32, err: sentinel}
		_, err := RunCore(context.Background(), 128, CoreOptions{Workers: workers, ChunkSize: 8, Checkpoint: ck},
			Hooks[struct{}]{},
			func(_ struct{}, lo, hi int) error { return nil }, nil)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want the checkpointer's error", workers, err)
		}
	}
}

// TestRunCoreEmitErrorParity is the emit-error semantics pin: when emit
// fails partway, (prefix, err) agree between the sequential path and the
// pooled path at every worker count — same prefix, same verbatim error.
func TestRunCoreEmitErrorParity(t *testing.T) {
	const n, cs = 10*8 + 5, 8
	sentinel := errors.New("sink full")
	stopAt := 4 * cs
	type outcome struct {
		prefix int
		err    error
	}
	var ref *outcome
	for _, workers := range resilienceWorkers {
		prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: workers, ChunkSize: cs},
			Hooks[struct{}]{},
			func(_ struct{}, lo, hi int) error { return nil },
			func(lo, hi int) error {
				if lo == stopAt {
					return sentinel
				}
				return nil
			})
		got := outcome{prefix, err}
		if ref == nil {
			ref = &got
			if prefix != stopAt {
				t.Fatalf("workers=%d: prefix=%d, want %d", workers, prefix, stopAt)
			}
			if err != sentinel {
				t.Fatalf("workers=%d: err=%v, want the sentinel verbatim", workers, err)
			}
			continue
		}
		if got.prefix != ref.prefix || got.err != ref.err {
			t.Fatalf("workers=%d: (prefix, err) = (%d, %v), sequential gave (%d, %v)",
				workers, got.prefix, got.err, ref.prefix, ref.err)
		}
	}
}

// TestRunCoreEmitErrorParityWithRetry repeats the parity pin with the retry
// layer enabled and transient faults injected before the emit failure: the
// resilience layer must not perturb the emit-error contract.
func TestRunCoreEmitErrorParityWithRetry(t *testing.T) {
	const n, cs = 12 * 8, 8
	sentinel := errors.New("sink full")
	stopAt := 6 * cs
	for _, workers := range resilienceWorkers {
		inj := &chaos.Injector{Seed: 11, TransientRate: 0.3}
		prefix, err := RunCore(context.Background(), n, CoreOptions{Workers: workers, ChunkSize: cs,
			Retry: &RetryPolicy{MaxAttempts: 3, IsTransient: chaos.Transient}},
			Hooks[struct{}]{},
			chaos.Wrap(inj, func(_ struct{}, lo, hi int) error { return nil }),
			func(lo, hi int) error {
				if lo == stopAt {
					return sentinel
				}
				return nil
			})
		if prefix != stopAt || err != sentinel {
			t.Fatalf("workers=%d: (prefix, err) = (%d, %v), want (%d, sentinel)", workers, prefix, err, stopAt)
		}
	}
}

// TestRetryPolicyDelay pins the backoff shape: pure function of (chunk,
// attempt), exponential growth, MaxDelay cap, jitter within [d, 1.5d).
func TestRetryPolicyDelay(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for c := 0; c < 5; c++ {
		for a := 1; a <= 4; a++ {
			d1, d2 := p.delay(c, a), p.delay(c, a)
			if d1 != d2 {
				t.Fatalf("delay(%d,%d) not deterministic: %v vs %v", c, a, d1, d2)
			}
			base := 10 * time.Millisecond << (a - 1)
			if base > p.MaxDelay {
				base = p.MaxDelay
			}
			if d1 < base || d1 >= base+base/2 {
				t.Errorf("delay(%d,%d) = %v, want in [%v, %v)", c, a, d1, base, base+base/2)
			}
		}
	}
	if d := p.delay(3, 1); d == p.delay(4, 1) {
		t.Log("adjacent chunks drew equal jitter (possible but unlikely); not a failure")
	}
	zero := &RetryPolicy{}
	if zero.delay(0, 1) != 0 {
		t.Error("zero BaseDelay must mean no waiting")
	}
}

// TestRetryPolicyNeverRetriesContextErrors pins that cancellation is not a
// retryable fault even under a retry-everything classifier.
func TestRetryPolicyNeverRetriesContextErrors(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 5}
	if p.retryable(context.Canceled) || p.retryable(fmt.Errorf("spec 3: %w", context.DeadlineExceeded)) {
		t.Error("context errors must never be retried")
	}
	if !p.retryable(errors.New("io timeout")) {
		t.Error("nil IsTransient must retry ordinary errors")
	}
}

// recordingCheckpointer collects watermarks.
type recordingCheckpointer struct {
	mu    sync.Mutex
	saves []int
}

func (c *recordingCheckpointer) Save(w int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.saves = append(c.saves, w)
	return nil
}

func (c *recordingCheckpointer) snapshot() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.saves...)
}

// failingCheckpointer fails once the watermark reaches failAt.
type failingCheckpointer struct {
	failAt int
	err    error
}

func (c *failingCheckpointer) Save(w int) error {
	if w >= c.failAt {
		return c.err
	}
	return nil
}
