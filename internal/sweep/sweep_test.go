package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bicoop/internal/protocols"
)

func testScenarios(n int) []Scenario {
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Scenario{
			PowerDB: -5 + 25*float64(i)/float64(n),
			GabDB:   -7 + float64(i%5),
			GarDB:   0,
			GbrDB:   5,
		})
	}
	return out
}

func testSpec() Spec {
	places := make([]Placement, 0, 12)
	for i := 0; i < 12; i++ {
		places = append(places, Placement{Pos: 0.08 + 0.07*float64(i), Exponent: 3})
	}
	return Spec{
		Base:       Scenario{GabDB: -7, GarDB: 0, GbrDB: 5},
		PowersDB:   []float64{0, 5, 10, 15},
		Placements: places,
		Erasures:   []Erasure{{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}, {EpsAR: 0.3, EpsBR: 0.3, EpsAB: 0.5}},
	}
}

// TestBatchBitIdenticalAcrossWorkers is the sharding determinism contract:
// every worker count produces the same bits, for the fast-path protocols and
// for the warm-started simplex ones alike.
func TestBatchBitIdenticalAcrossWorkers(t *testing.T) {
	scen := testScenarios(5*ChunkSize + 17)
	runBatch := func(proto protocols.Protocol, workers int) []Result {
		t.Helper()
		out := make([]Result, len(scen))
		n, err := Batch(context.Background(), proto, protocols.BoundInner, len(scen), Options{Workers: workers},
			func(i int) Scenario { return scen[i] },
			func(i int, r Result) { out[i] = r })
		if err != nil || n != len(scen) {
			t.Fatalf("%v workers=%d: n=%d err=%v", proto, workers, n, err)
		}
		return out
	}
	for _, proto := range []protocols.Protocol{protocols.TDBC, protocols.Naive4, protocols.HBC} {
		ref := runBatch(proto, 1)
		for _, workers := range []int{2, 3, 8} {
			got := runBatch(proto, workers)
			for i := range ref {
				if got[i].Sum != ref[i].Sum || got[i].Ra != ref[i].Ra || got[i].Rb != ref[i].Rb ||
					!reflect.DeepEqual(got[i].Durations, ref[i].Durations) {
					t.Fatalf("%v workers=%d: result %d differs: %+v vs %+v", proto, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestSweepBitIdenticalAcrossWorkers pins sweep points — order, coordinates
// and every result bit — across worker counts.
func TestSweepBitIdenticalAcrossWorkers(t *testing.T) {
	spec := testSpec()
	collect := func(workers int) []Point {
		var pts []Point
		err := Sweep(context.Background(), spec, Options{Workers: workers}, func(pt Point) error {
			pts = append(pts, pt)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	ref := collect(1)
	if len(ref) != spec.Size() {
		t.Fatalf("got %d points, want %d", len(ref), spec.Size())
	}
	for i, pt := range ref {
		if pt.Index != i {
			t.Fatalf("point %d carries Index %d", i, pt.Index)
		}
	}
	for _, workers := range []int{2, 8} {
		got := collect(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d sweep differs from sequential", workers)
		}
	}
}

// TestSweepWarmMatchesColdObjectives re-derives every Naive4/HBC sweep point
// with a cold evaluator and pins the warm-started objective to 1e-12.
func TestSweepWarmMatchesColdObjectives(t *testing.T) {
	spec := testSpec()
	spec.Protocols = []protocols.Protocol{protocols.Naive4, protocols.HBC}
	cold := protocols.NewEvaluator()
	err := Sweep(context.Background(), spec, Options{Workers: 1}, func(pt Point) error {
		if pt.ErasureIdx >= 0 {
			return nil
		}
		opt, err := cold.WeightedRate(pt.Proto, pt.Bound, pt.Scenario.internal(), 1, 1)
		if err != nil {
			return err
		}
		if d := pt.Sum - opt.Objective; d > 1e-12 || d < -1e-12 {
			t.Errorf("point %d (%v): warm %.17g cold %.17g", pt.Index, pt.Proto, pt.Sum, opt.Objective)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunEmitOrderAndPrefix checks the streaming sink contract under real
// concurrency: ascending chunk order, and a yield error halting the pool.
func TestRunEmitOrderAndPrefix(t *testing.T) {
	const n = 10*ChunkSize + 5
	var emitted []int
	sentinel := errors.New("stop")
	stopAt := 4 * ChunkSize
	prefix, err := Run(context.Background(), n, Options{Workers: 4},
		func(ev *protocols.Evaluator, lo, hi int) error { return nil },
		func(lo, hi int) error {
			if lo != len(emitted)*ChunkSize {
				return fmt.Errorf("emit out of order: lo=%d after %d chunks", lo, len(emitted))
			}
			emitted = append(emitted, lo)
			if lo == stopAt {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if prefix != stopAt {
		t.Errorf("prefix = %d, want %d", prefix, stopAt)
	}
}

// TestRunDoErrorOrder pins that the reported error is the first one in
// enumeration order, not completion order.
func TestRunDoErrorOrder(t *testing.T) {
	const n = 8 * ChunkSize
	early := errors.New("early")
	late := errors.New("late")
	_, err := Run(context.Background(), n, Options{Workers: 4},
		func(ev *protocols.Evaluator, lo, hi int) error {
			switch lo / ChunkSize {
			case 2:
				time.Sleep(20 * time.Millisecond)
				return early
			case 6:
				return late
			}
			return nil
		}, nil)
	if !errors.Is(err, early) {
		t.Fatalf("err = %v, want the error of the earliest chunk", err)
	}
}

// TestRunCancellation proves a cancelled run stops promptly, reports the
// contiguous completed prefix, and leaks no goroutines.
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Bool
	go func() {
		for !started.Load() {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	var completed atomic.Int64
	const n = 1 << 20
	prefix, err := Run(ctx, n, Options{Workers: 2},
		func(ev *protocols.Evaluator, lo, hi int) error {
			started.Store(true)
			time.Sleep(time.Millisecond)
			completed.Add(1)
			return nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if prefix < 0 || prefix >= n {
		t.Errorf("prefix = %d, want a strict partial prefix", prefix)
	}
	if int(completed.Load()) >= n/ChunkSize {
		t.Error("run ignored cancellation")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestRunCancellationCause pins the wrapped-cause contract shared with
// internal/sim.
func TestRunCancellationCause(t *testing.T) {
	cause := errors.New("shutting down")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	_, err := Run(ctx, 1000, Options{Workers: 4},
		func(ev *protocols.Evaluator, lo, hi int) error { return nil }, nil)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, cause) {
		t.Errorf("err = %v, want context.Canceled wrapping the cause", err)
	}
}

// TestSpecSizeAndErasures covers axis defaulting and the erasures-only
// shape.
func TestSpecSizeAndErasures(t *testing.T) {
	spec := testSpec()
	want := 4*12*len(protocols.Protocols()) + 2
	if got := spec.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	only := Spec{Erasures: spec.Erasures}
	if got := only.Size(); got != 2 {
		t.Fatalf("erasures-only Size = %d, want 2", got)
	}
	var pts []Point
	if err := Sweep(context.Background(), only, Options{Workers: 1}, func(pt Point) error {
		pts = append(pts, pt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].ErasureIdx != 0 || pts[1].ErasureIdx != 1 {
		t.Fatalf("erasures-only sweep yielded %+v", pts)
	}
	for _, pt := range pts {
		if pt.Proto != protocols.TDBC || pt.Bound != protocols.BoundInner {
			t.Errorf("erasure point evaluated %v %v, want TDBC inner", pt.Proto, pt.Bound)
		}
	}
}
