package sweep

import (
	"context"
	"errors"
	"fmt"

	"bicoop/internal/cache"
	"bicoop/internal/channel"
	"bicoop/internal/protocols"
	"bicoop/internal/sim"
	"bicoop/internal/xmath"
)

// ErrSpec reports a grid spec that failed axis resolution (an invalid
// placement or erasure network). The facade maps it to its public
// ErrInvalidSweepSpec sentinel.
var ErrSpec = errors.New("sweep: invalid spec")

// Scenario is a Gaussian evaluation point in dB quantities, mirroring the
// facade's scenario type field for field so the dB→linear conversion happens
// inside the worker that evaluates the point.
type Scenario struct {
	PowerDB, GabDB, GarDB, GbrDB float64
}

// internal converts to the linear-scale protocols scenario.
func (s Scenario) internal() protocols.Scenario {
	return protocols.NewScenarioDB(s.PowerDB, s.GabDB, s.GarDB, s.GbrDB)
}

// Placement derives link gains from a relay position on the a-b segment with
// a path-loss exponent, like the facade's RelayPlacement.
type Placement struct {
	Pos, Exponent float64
	// GabDB normalizes the direct link (dB).
	GabDB float64
}

// scenario resolves the placement at a power, via the same geometry → gains
// → dB round trip as the facade so both paths yield identical numbers.
func (pl Placement) scenario(powerDB float64) (Scenario, error) {
	g, err := (channel.LineGeometry{
		RelayPos:  pl.Pos,
		Exponent:  pl.Exponent,
		RefGainAB: xmath.FromDB(pl.GabDB),
	}).Gains()
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		PowerDB: powerDB,
		GabDB:   xmath.DB(g.AB),
		GarDB:   xmath.DB(g.AR),
		GbrDB:   xmath.DB(g.BR),
	}, nil
}

// Erasure is one erasure-network axis entry, evaluated on the TDBC inner
// bound.
type Erasure struct {
	EpsAR, EpsBR, EpsAB float64
}

// Spec declares a grid: the Gaussian cross product PowersDB × Placements ×
// Protocols plus an independent erasure-network axis. Zero-value fields
// default like the facade's SweepSpec: Protocols to all five, Bound to
// inner, PowersDB to {Base.PowerDB}; an empty Placements axis evaluates the
// Base gains. A spec with Erasures and no Gaussian axis skips the Base
// scenario entirely.
type Spec struct {
	Protocols  []protocols.Protocol
	Bound      protocols.Bound
	Base       Scenario
	PowersDB   []float64
	Placements []Placement
	Erasures   []Erasure
}

func (spec Spec) gaussian() bool {
	return len(spec.PowersDB) > 0 || len(spec.Placements) > 0 || len(spec.Erasures) == 0
}

func (spec Spec) protos() []protocols.Protocol {
	if len(spec.Protocols) > 0 {
		return spec.Protocols
	}
	return protocols.Protocols()
}

func (spec Spec) bound() protocols.Bound {
	if spec.Bound != 0 {
		return spec.Bound
	}
	return protocols.BoundInner
}

// Size returns the number of points the sweep will yield.
func (spec Spec) Size() int {
	n := len(spec.Erasures)
	if !spec.gaussian() {
		return n
	}
	powers := len(spec.PowersDB)
	if powers == 0 {
		powers = 1
	}
	places := len(spec.Placements)
	if places == 0 {
		places = 1
	}
	return powers*places*len(spec.protos()) + n
}

// Point is one evaluated grid point with its coordinates and optimum.
type Point struct {
	// Index is the point's position in enumeration order: power outer,
	// placement middle, protocol inner, then the erasure axis.
	Index int
	// PowerDB is the transmit power of a Gaussian point.
	PowerDB float64
	// PlacementIdx indexes Spec.Placements, -1 for base-gains and erasure
	// points. ErasureIdx indexes Spec.Erasures, -1 for Gaussian points.
	PlacementIdx, ErasureIdx int
	// Scenario is the resolved Gaussian scenario (zero for erasure points).
	Scenario Scenario
	// Proto and Bound identify the evaluated bound (erasure points are
	// always TDBC inner).
	Proto protocols.Protocol
	Bound protocols.Bound
	// Sum, Ra, Rb and Durations are the LP optimum at the point.
	Sum, Ra, Rb float64
	Durations   []float64
}

// resolvedGrid is the up-front materialization of a spec's axes: one entry
// per (power, placement) pair, aligned placement indices, and the erasure
// link informations.
type resolvedGrid struct {
	protos   []protocols.Protocol
	bound    protocols.Bound
	scen     []Scenario
	placeIdx []int // aligned with scen; -1 for base gains
	powerOf  []float64
	erasures []protocols.LinkInfos
	erasSpec []Erasure // aligned with erasures; retained for cache keys
	gaussN   int
}

func (spec Spec) resolve() (resolvedGrid, error) {
	g := resolvedGrid{protos: spec.protos(), bound: spec.bound()}
	powers := spec.PowersDB
	if len(powers) == 0 {
		powers = []float64{spec.Base.PowerDB}
	}
	if !spec.gaussian() {
		powers = nil
	}
	for _, pdb := range powers {
		if len(spec.Placements) == 0 {
			s := spec.Base
			s.PowerDB = pdb
			g.scen = append(g.scen, s)
			g.placeIdx = append(g.placeIdx, -1)
			g.powerOf = append(g.powerOf, pdb)
			continue
		}
		for pi, pl := range spec.Placements {
			s, err := pl.scenario(pdb)
			if err != nil {
				return resolvedGrid{}, fmt.Errorf("%w: placement %d: %w", ErrSpec, pi, err)
			}
			g.scen = append(g.scen, s)
			g.placeIdx = append(g.placeIdx, pi)
			g.powerOf = append(g.powerOf, pdb)
		}
	}
	g.gaussN = len(g.scen) * len(g.protos)
	for i, e := range spec.Erasures {
		net := sim.ErasureNetwork{EpsAR: e.EpsAR, EpsBR: e.EpsBR, EpsAB: e.EpsAB}
		if err := net.Validate(); err != nil {
			return resolvedGrid{}, fmt.Errorf("%w: erasure %d: %w", ErrSpec, i, err)
		}
		g.erasures = append(g.erasures, net.LinkInfos())
		g.erasSpec = append(g.erasSpec, e)
	}
	return g, nil
}

// Sweep evaluates the grid across opts.Workers and streams every point to
// yield in enumeration order. One warm evaluator is held per worker; within
// each fixed-size chunk the Naive4/HBC LPs warm-start from the previous
// point's basis, and the warm state resets at chunk boundaries so results
// are bit-identical for every worker count. A yield error or context
// cancellation stops the sweep within one chunk per worker.
func Sweep(ctx context.Context, spec Spec, opts Options, yield func(Point) error) error {
	grid, err := spec.resolve()
	if err != nil {
		return err
	}
	n := grid.gaussN + len(grid.erasures)
	// Results are buffered per chunk and released right after emission, so
	// together with Run's backpressure window the sweep holds O(workers)
	// chunks of points live, not the whole grid.
	chunks := make([][]Point, (n+ChunkSize-1)/ChunkSize)
	nP := len(grid.protos)
	do := func(ev *protocols.Evaluator, lo, hi int) error {
		buf := make([]Point, hi-lo)
		lastScen := -1
		var li protocols.LinkInfos
		durs := make([]float64, 0, 4*(hi-lo)) // one backing array per chunk, carved per point
		for i := lo; i < hi; i++ {
			pt := Point{Index: i, PlacementIdx: -1, ErasureIdx: -1}
			var proto protocols.Protocol
			var bound protocols.Bound
			var key cache.Key
			gaussian := i < grid.gaussN
			si := -1
			if gaussian {
				si = i / nP
				proto, bound = grid.protos[i%nP], grid.bound
				pt.PowerDB = grid.powerOf[si]
				pt.PlacementIdx = grid.placeIdx[si]
				pt.Scenario = grid.scen[si]
			} else {
				proto, bound = protocols.TDBC, protocols.BoundInner
				pt.ErasureIdx = i - grid.gaussN
			}
			pt.Proto, pt.Bound = proto, bound
			if opts.Cache != nil {
				if gaussian {
					s := grid.scen[si]
					key = cache.SumRateKey(proto, bound, s.PowerDB, s.GabDB, s.GarDB, s.GbrDB)
				} else {
					e := grid.erasSpec[pt.ErasureIdx]
					key = cache.ErasureKey(e.EpsAR, e.EpsBR, e.EpsAB)
				}
				if v, ok := opts.Cache.Lookup(key); ok {
					start := len(durs)
					durs = append(durs, v.Dur[:v.NDur]...)
					pt.Sum, pt.Ra, pt.Rb = v.Sum, v.Ra, v.Rb
					pt.Durations = durs[start:len(durs):len(durs)]
					buf[i-lo] = pt
					continue
				}
			}
			if gaussian {
				if si != lastScen {
					var err error
					if li, err = protocols.LinkInfosFromScenario(grid.scen[si].internal()); err != nil {
						return fmt.Errorf("sweep point %d: %w", i, err)
					}
					lastScen = si
				}
			} else {
				li = grid.erasures[pt.ErasureIdx]
				lastScen = -1
			}
			opt, err := ev.WeightedRateLinks(proto, bound, li, 1, 1)
			if err != nil {
				return fmt.Errorf("sweep point %d: %w", i, err)
			}
			if opts.Cache != nil {
				opts.Cache.Add(key, cache.MakeValue(opt.Objective, opt.Rates.Ra, opt.Rates.Rb, opt.Durations))
			}
			start := len(durs)
			durs = append(durs, opt.Durations...)
			pt.Sum, pt.Ra, pt.Rb = opt.Objective, opt.Rates.Ra, opt.Rates.Rb
			pt.Durations = durs[start:len(durs):len(durs)]
			buf[i-lo] = pt
		}
		chunks[lo/ChunkSize] = buf
		return nil
	}
	// On a resumed run the core floors opts.Start to a chunk boundary; the
	// first emitted chunk may then straddle the resume point, so yields are
	// additionally gated on the exact Start index — callers see points from
	// precisely the first one a previous run never yielded.
	emit := func(lo, hi int) error {
		c := lo / ChunkSize
		buf := chunks[c]
		chunks[c] = nil // release as soon as the chunk is streamed
		for i := lo; i < hi; i++ {
			if i < opts.Start {
				continue
			}
			if err := yield(buf[i-lo]); err != nil {
				return err
			}
		}
		return nil
	}
	_, err = Run(ctx, n, opts, do, emit)
	return err
}

// Result is one Batch optimum.
type Result struct {
	Sum, Ra, Rb float64
	Durations   []float64
}

// dbMemo caches one dB→linear conversion. Grid batches typically vary one or
// two axes at a time, so consecutive scenarios share most fields and the
// math.Pow behind each repeated field is paid once per change instead of
// once per scenario. Scoped to a chunk so results stay order-independent
// across worker counts (the conversion is bit-identical either way — both
// paths funnel through xmath.FromDB).
type dbMemo struct {
	db, lin float64
	set     bool
}

func (m *dbMemo) of(db float64) float64 {
	if !m.set || db != m.db {
		m.db, m.lin, m.set = db, xmath.FromDB(db), true
	}
	return m.lin
}

// scenarioMemo converts dB scenarios to internal (linear) form with a
// per-field conversion cache.
type scenarioMemo struct{ p, ab, ar, br dbMemo }

func (m *scenarioMemo) internal(s Scenario) protocols.Scenario {
	return protocols.Scenario{
		P: m.p.of(s.PowerDB),
		G: channel.Gains{AB: m.ab.of(s.GabDB), AR: m.ar.of(s.GarDB), BR: m.br.of(s.GbrDB)},
	}
}

// Batch evaluates the bound's optimum for n scenarios, sharded like Sweep.
// scen(i) supplies scenario i and store(i, r) receives its result; both are
// called from worker goroutines (each index exactly once, distinct indices
// concurrently), which lets callers read from and write into their own
// result-shaped storage without intermediate arrays. Batch returns the
// length of the contiguous prefix of completed results — n on success — so
// callers can surface partial results on cancellation.
func Batch(ctx context.Context, proto protocols.Protocol, bound protocols.Bound, n int, opts Options, scen func(int) Scenario, store func(int, Result)) (int, error) {
	do := func(ev *protocols.Evaluator, lo, hi int) error {
		var memo scenarioMemo
		durs := make([]float64, 0, 4*(hi-lo)) // one backing array per chunk
		for i := lo; i < hi; i++ {
			s := scen(i)
			var key cache.Key
			if opts.Cache != nil {
				key = cache.SumRateKey(proto, bound, s.PowerDB, s.GabDB, s.GarDB, s.GbrDB)
				if v, ok := opts.Cache.Lookup(key); ok {
					start := len(durs)
					durs = append(durs, v.Dur[:v.NDur]...)
					store(i, Result{
						Sum: v.Sum, Ra: v.Ra, Rb: v.Rb,
						Durations: durs[start:len(durs):len(durs)],
					})
					continue
				}
			}
			opt, err := ev.WeightedRate(proto, bound, memo.internal(s), 1, 1)
			if err != nil {
				return fmt.Errorf("scenario %d: %w", i, err)
			}
			if opts.Cache != nil {
				opts.Cache.Add(key, cache.MakeValue(opt.Objective, opt.Rates.Ra, opt.Rates.Rb, opt.Durations))
			}
			start := len(durs)
			durs = append(durs, opt.Durations...)
			store(i, Result{
				Sum: opt.Objective, Ra: opt.Rates.Ra, Rb: opt.Rates.Rb,
				Durations: durs[start:len(durs):len(durs)],
			})
		}
		return nil
	}
	return Run(ctx, n, opts, do, nil)
}
