package sweep

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"bicoop/internal/protocols"
)

func regionTestSpec(angles int) RegionSpec {
	return RegionSpec{
		Scenarios: []Scenario{
			{PowerDB: 0, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 15, GabDB: -3, GarDB: 2, GbrDB: 4},
		},
		Curves: []RegionCurve{
			{Proto: protocols.DT, Bound: protocols.BoundInner},
			{Proto: protocols.MABC, Bound: protocols.BoundInner},
			{Proto: protocols.TDBC, Bound: protocols.BoundOuter},
			{Proto: protocols.HBC, Bound: protocols.BoundInner},
			{Proto: protocols.Naive4, Bound: protocols.BoundInner},
		},
		Angles: angles,
	}
}

func collectRegions(t *testing.T, spec RegionSpec, workers int) []RegionResult {
	t.Helper()
	var out []RegionResult
	err := RegionBatch(context.Background(), spec, Options{Workers: workers}, func(r RegionResult) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return out
}

// TestRegionBatchBitIdenticalAcrossWorkers is the sharding determinism
// contract for the region workload: every worker count must produce the
// same polygon vertices bit for bit, warm-started Naive4/HBC curves
// included.
func TestRegionBatchBitIdenticalAcrossWorkers(t *testing.T) {
	spec := regionTestSpec(61)
	ref := collectRegions(t, spec, 1)
	if len(ref) != spec.Size() {
		t.Fatalf("got %d curves, want %d", len(ref), spec.Size())
	}
	for _, workers := range []int{2, 7} {
		got := collectRegions(t, spec, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d curves, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].ScenarioIdx != ref[i].ScenarioIdx || got[i].CurveIdx != ref[i].CurveIdx {
				t.Fatalf("workers=%d: curve %d coordinates differ: %+v vs %+v",
					workers, i, got[i], ref[i])
			}
			gv, rv := got[i].Polygon.Vertices(), ref[i].Polygon.Vertices()
			if !reflect.DeepEqual(gv, rv) {
				t.Fatalf("workers=%d: curve %d vertices differ:\n  got  %v\n  want %v",
					workers, i, gv, rv)
			}
		}
	}
}

// TestRegionBatchEnumerationOrder pins the streaming order: scenario-major,
// curve-minor, regardless of completion order.
func TestRegionBatchEnumerationOrder(t *testing.T) {
	spec := regionTestSpec(33)
	got := collectRegions(t, spec, 4)
	for i, r := range got {
		wantScen, wantCurve := i/len(spec.Curves), i%len(spec.Curves)
		if r.ScenarioIdx != wantScen || r.CurveIdx != wantCurve {
			t.Fatalf("curve %d arrived as (%d, %d), want (%d, %d)",
				i, r.ScenarioIdx, r.CurveIdx, wantScen, wantCurve)
		}
	}
}

// TestRegionBatchMatchesSerialRegion cross-checks the sharded path against
// the serial Evaluator.Region sweep. The closed-form protocols (DT, MABC,
// TDBC) never touch the warm-started simplex, so their polygons must agree
// bit for bit; the simplex-solved HBC/Naive4 curves agree to LP-refinement
// tolerance.
func TestRegionBatchMatchesSerialRegion(t *testing.T) {
	spec := regionTestSpec(45)
	got := collectRegions(t, spec, 3)
	for _, r := range got {
		c := spec.Curves[r.CurveIdx]
		s := spec.Scenarios[r.ScenarioIdx]
		want, err := protocols.GaussianRegion(c.Proto, c.Bound, s.internal(),
			protocols.RegionOptions{Angles: spec.Angles})
		if err != nil {
			t.Fatal(err)
		}
		gv, wv := r.Polygon.Vertices(), want.Vertices()
		fast := c.Proto == protocols.DT || c.Proto == protocols.MABC || c.Proto == protocols.TDBC
		if fast {
			if !reflect.DeepEqual(gv, wv) {
				t.Errorf("%v %v scenario %d: sharded vertices differ from serial:\n  got  %v\n  want %v",
					c.Proto, c.Bound, r.ScenarioIdx, gv, wv)
			}
			continue
		}
		if d := math.Abs(r.Polygon.Area() - want.Area()); d > 1e-9 {
			t.Errorf("%v %v scenario %d: area gap %g between sharded and serial",
				c.Proto, c.Bound, r.ScenarioIdx, d)
		}
		for _, v := range wv {
			if !r.Polygon.Contains(v, 1e-7) {
				t.Errorf("%v %v scenario %d: serial vertex %v outside sharded polygon",
					c.Proto, c.Bound, r.ScenarioIdx, v)
			}
		}
	}
}

// TestRegionBatchCancellation proves a long region batch stops sub-second on
// cancellation and leaks no goroutines — the contract a Ctrl-C in `bcc
// region` relies on.
func TestRegionBatchCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	spec := RegionSpec{
		Scenarios: []Scenario{{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}},
		Curves:    []RegionCurve{{Proto: protocols.HBC, Bound: protocols.BoundInner}},
		// Hours of LP solves if cancellation were ignored.
		Angles: 5_000_000,
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	yields := 0
	err := RegionBatch(ctx, spec, Options{Workers: 2}, func(RegionResult) error {
		yields++
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled region batch took %v, want sub-second", elapsed)
	}
	if yields != 0 {
		t.Errorf("incomplete curve yielded %d times", yields)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestRegionBatchYieldError pins that a yield error stops the batch and is
// returned verbatim.
func TestRegionBatchYieldError(t *testing.T) {
	sentinel := errors.New("stop")
	spec := regionTestSpec(21)
	n := 0
	err := RegionBatch(context.Background(), spec, Options{Workers: 2}, func(RegionResult) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Fatalf("err = %v after %d yields, want sentinel after 3", err, n)
	}
}

// TestRegionBatchDegenerateSpecs covers the empty and invalid shapes.
func TestRegionBatchDegenerateSpecs(t *testing.T) {
	if err := RegionBatch(context.Background(), RegionSpec{}, Options{}, func(RegionResult) error {
		t.Fatal("yield on empty spec")
		return nil
	}); err != nil {
		t.Fatalf("empty spec err = %v, want nil", err)
	}
	bad := regionTestSpec(1) // a 1-angle sweep cannot define directions
	if err := RegionBatch(context.Background(), bad, Options{}, func(RegionResult) error { return nil }); !errors.Is(err, ErrSpec) {
		t.Fatalf("angles=1 err = %v, want ErrSpec", err)
	}
	nan := regionTestSpec(11)
	nan.Scenarios[0].PowerDB = math.NaN()
	if err := RegionBatch(context.Background(), nan, Options{}, func(RegionResult) error { return nil }); err == nil {
		t.Fatal("NaN scenario accepted")
	}
}

// TestRegionBatchAxisAnchors pins that every polygon's per-user maxima come
// from the exact axis solves: the support in each axis direction equals the
// dedicated (1,0)/(0,1) solve, not a nearby swept angle.
func TestRegionBatchAxisAnchors(t *testing.T) {
	spec := regionTestSpec(9) // coarse sweep: anchors must still be exact
	got := collectRegions(t, spec, 2)
	ev := protocols.NewEvaluator()
	for _, r := range got {
		c := spec.Curves[r.CurveIdx]
		li, err := protocols.LinkInfosFromScenario(spec.Scenarios[r.ScenarioIdx].internal())
		if err != nil {
			t.Fatal(err)
		}
		raOpt, err := ev.WeightedRateLinks(c.Proto, c.Bound, li, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		rbOpt, err := ev.WeightedRateLinks(c.Proto, c.Bound, li, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		maxRa, _ := r.Polygon.Support(1, 0)
		maxRb, _ := r.Polygon.Support(0, 1)
		if math.Abs(maxRa-raOpt.Rates.Ra) > 1e-9 || math.Abs(maxRb-rbOpt.Rates.Rb) > 1e-9 {
			t.Errorf("%v %v scenario %d: axis maxima (%g, %g), want (%g, %g)",
				c.Proto, c.Bound, r.ScenarioIdx, maxRa, maxRb, raOpt.Rates.Ra, rbOpt.Rates.Rb)
		}
	}
}
