package sweep

import (
	"context"
	"math"
	"testing"
)

// benchCoreRun drives RunCore over a synthetic arithmetic workload — enough
// math per point that the claim/emit machinery is a measurable overhead
// rather than the whole benchmark, but no LP state so the two variants below
// isolate the core itself.
func benchCoreRun(b *testing.B, opts CoreOptions) {
	const n = 8192
	out := make([]float64, n)
	do := func(_ struct{}, lo, hi int) error {
		for i := lo; i < hi; i++ {
			x := float64(i)
			out[i] = math.Log1p(x) * math.Sqrt(x+1)
		}
		return nil
	}
	emit := func(lo, hi int) error { return nil }
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix, err := RunCore(ctx, n, opts, Hooks[struct{}]{}, do, emit)
		if err != nil || prefix != n {
			b.Fatalf("prefix=%d err=%v", prefix, err)
		}
	}
}

// BenchmarkRunCore is the baseline for the resilience-overhead pair: the
// sharded core with no retry policy, no checkpointer.
func BenchmarkRunCore(b *testing.B) {
	benchCoreRun(b, CoreOptions{Workers: 4})
}

// BenchmarkRunCoreResilient runs the identical workload with the full
// resilience layer armed — retry policy installed, per-chunk attempt
// accounting, checkpointer saving every watermark advance — but zero faults,
// so the delta against BenchmarkRunCore is the price of resilience on the
// happy path. The ledger gate keeps that price from creeping.
func BenchmarkRunCoreResilient(b *testing.B) {
	benchCoreRun(b, CoreOptions{
		Workers:    4,
		Retry:      &RetryPolicy{MaxAttempts: 3},
		Checkpoint: nullCheckpointer{},
	})
}

type nullCheckpointer struct{}

func (nullCheckpointer) Save(int) error { return nil }
