// Package chaos injects deterministic faults into sweep workloads, for
// testing the resilience layer of internal/sweep (retry, panic containment,
// checkpoint/resume) without any real failure source. Every injection
// decision is a pure function of (Seed, chunk start, attempt number) — never
// of timing, worker identity, or worker count — so a chaos-wrapped run
// retried to completion produces results bit-identical to a fault-free run
// at every Workers setting, which is exactly the property the resilience
// tests pin.
//
// Downstream packages use it the same way the sweep tests do: wrap the do
// function handed to sweep.Run/RunCore,
//
//	inj := chaos.Injector{Seed: 7, TransientRate: 0.2}
//	_, err := sweep.RunCore(ctx, n, sweep.CoreOptions{
//	        Retry: &sweep.RetryPolicy{IsTransient: chaos.Transient},
//	    }, hooks, chaos.Wrap(&inj, do), emit)
//
// and assert the results match an unwrapped run.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the transient fault the injector returns; classify it with
// Transient (the natural RetryPolicy.IsTransient for chaos tests).
var ErrInjected = errors.New("chaos: injected transient fault")

// ErrPermanent is the non-transient fault injected at PermanentStarts.
var ErrPermanent = errors.New("chaos: injected permanent fault")

// Transient reports whether err is (or wraps) an injected transient fault —
// a ready-made RetryPolicy.IsTransient classifier that retries injected
// transients and lets ErrPermanent halt the run.
func Transient(err error) bool { return errors.Is(err, ErrInjected) }

// Injector configures deterministic fault injection, keyed by the start
// index of each chunk (the lo argument of do), which identifies a chunk
// independently of worker count and chunk size.
type Injector struct {
	// Seed drives the per-chunk fault draws.
	Seed int64
	// TransientRate is the probability in [0, 1] that a chunk's first
	// attempt fails with ErrInjected; with MaxFaults > 1, later attempts
	// fail with the same per-attempt rate up to the cap.
	TransientRate float64
	// MaxFaults caps consecutive injected transient failures per chunk;
	// non-positive means 1, so a single retry always clears an injected
	// transient.
	MaxFaults int
	// PanicStarts lists chunk start indices whose first attempt panics
	// (subsequent attempts run clean — an injected panic is transient).
	PanicStarts []int
	// PermanentStarts lists chunk start indices that fail every attempt
	// with ErrPermanent.
	PermanentStarts []int
	// DelayRate and Delay inject latency: each chunk attempt drawn at
	// DelayRate sleeps Delay before running. Delays perturb scheduling
	// only, never results.
	DelayRate float64
	Delay     time.Duration

	mu       sync.Mutex
	attempts map[int]int
}

// faults returns how many leading attempts of the chunk starting at lo fail
// transiently — a pure function of (Seed, lo), identical for every worker
// count.
func (inj *Injector) faults(lo int) int {
	max := inj.MaxFaults
	if max <= 0 {
		max = 1
	}
	k := 0
	for k < max && inj.draw(lo, k, 0) < inj.TransientRate {
		k++
	}
	return k
}

// draw maps (Seed, lo, attempt, stream) to a float in [0, 1) via splitmix64.
func (inj *Injector) draw(lo, attempt, stream int) float64 {
	x := uint64(inj.Seed)
	x = splitmix64(x ^ uint64(lo)*0x9E3779B97F4A7C15)
	x = splitmix64(x ^ uint64(attempt)*0xBF58476D1CE4E5B9)
	x = splitmix64(x ^ uint64(stream)*0x94D049BB133111EB)
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 is the standard splitmix64 finalizer (the same mixer the retry
// policy uses for its jitter).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// attempt records and returns the 1-based attempt count for the chunk at lo.
// Retries of one chunk are sequential (the worker's retry loop), so the
// count is deterministic even though distinct chunks run concurrently.
func (inj *Injector) attempt(lo int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.attempts == nil {
		inj.attempts = make(map[int]int)
	}
	inj.attempts[lo]++
	return inj.attempts[lo]
}

// Reset clears the per-chunk attempt counters so the injector replays the
// same fault schedule on a fresh run.
func (inj *Injector) Reset() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.attempts = nil
}

// Wrap returns a do function that injects inj's faults before delegating to
// do. A faulted attempt fails before any workload code runs, so caller
// storage is untouched until an attempt goes through — and a retried chunk
// overwrites its slots wholesale either way.
func Wrap[W any](inj *Injector, do func(W, int, int) error) func(W, int, int) error {
	panics := indexSet(inj.PanicStarts)
	perms := indexSet(inj.PermanentStarts)
	return func(w W, lo, hi int) error {
		a := inj.attempt(lo)
		if inj.Delay > 0 && inj.DelayRate > 0 && inj.draw(lo, a, 1) < inj.DelayRate {
			time.Sleep(inj.Delay)
		}
		if perms[lo] {
			return fmt.Errorf("chunk [%d,%d): %w", lo, hi, ErrPermanent)
		}
		if panics[lo] && a == 1 {
			panic(fmt.Sprintf("chaos: injected panic at chunk [%d,%d)", lo, hi))
		}
		if a <= inj.faults(lo) {
			return fmt.Errorf("chunk [%d,%d) attempt %d: %w", lo, hi, a, ErrInjected)
		}
		return do(w, lo, hi)
	}
}

func indexSet(idx []int) map[int]bool {
	if len(idx) == 0 {
		return nil
	}
	set := make(map[int]bool, len(idx))
	for _, i := range idx {
		set[i] = true
	}
	return set
}
