package chaos

// proc.go — process-level chaos: kill -9 a worker process at deterministic
// (but varied) uptimes and restart it until its durable work completes. The
// in-process injector above exercises the resilience layer's error paths;
// ProcKiller exercises the one failure no in-process test can — the process
// disappearing between any two instructions — which is exactly what the
// checkpoint/resume discipline (tmp+rename saves, truncate-to-offset
// resume) must survive. Uptimes are drawn from the same splitmix64 mixer as
// the fault injector, so a failing schedule reproduces from its seed.

import (
	"context"
	"fmt"
	"os/exec"
	"time"
)

// ProcKiller repeatedly starts a process, SIGKILLs it after a seeded
// pseudo-random uptime, and restarts it, until the caller reports the work
// done or MaxRounds passes without completion.
type ProcKiller struct {
	// Seed drives the uptime draws; a fixed seed replays the kill schedule.
	Seed int64
	// MinUptime and MaxUptime bound each round's uptime draw. MinUptime
	// should comfortably cover process startup plus at least one checkpoint
	// save, so every round makes durable progress and the loop terminates.
	MinUptime, MaxUptime time.Duration
	// Grow lengthens each round's uptime by Grow*round. Small uptimes keep
	// the early kills landing mid-work on fast machines; the growth
	// guarantees the loop terminates on slow ones (race-instrumented builds,
	// loaded CI runners) without retuning the base window.
	Grow time.Duration
	// MaxRounds caps kill rounds (a liveness backstop, not a target);
	// non-positive means 50.
	MaxRounds int
}

// Uptime returns round r's uptime: MinUptime plus a splitmix64 draw of the
// span plus the linear growth term, a pure function of (Seed, r).
func (k *ProcKiller) Uptime(r int) time.Duration {
	grow := k.Grow * time.Duration(r)
	span := k.MaxUptime - k.MinUptime
	if span <= 0 {
		return k.MinUptime + grow
	}
	x := splitmix64(uint64(k.Seed) ^ uint64(r)*0x9E3779B97F4A7C15)
	return k.MinUptime + time.Duration(x%uint64(span)) + grow
}

// Run drives the kill loop: start launches the process (already started or
// ready to Start — Run calls Start if it has not been), done polls the
// durable completion condition. Each round the process runs for the round's
// uptime (polling done throughout), then is SIGKILLed and restarted. When
// done reports true the current process is killed a final time and Run
// returns the number of kills performed. The final state is whatever the
// durable store says — the caller asserts on that, not on process exit.
// Cancelling ctx kills the current process and returns ctx's error.
func (k *ProcKiller) Run(ctx context.Context, start func() (*exec.Cmd, error), done func() bool) (kills int, err error) {
	rounds := k.MaxRounds
	if rounds <= 0 {
		rounds = 50
	}
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return kills, err
		}
		cmd, err := start()
		if err != nil {
			return kills, fmt.Errorf("round %d: start: %w", r, err)
		}
		if cmd.Process == nil {
			if err := cmd.Start(); err != nil {
				return kills, fmt.Errorf("round %d: start: %w", r, err)
			}
		}
		deadline := time.Now().Add(k.Uptime(r))
		finished := false
		canceled := false
		for time.Now().Before(deadline) {
			if ctx.Err() != nil {
				canceled = true
				break
			}
			if done() {
				finished = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		// SIGKILL regardless: if the work finished, the kill only tears the
		// now-idle process down; if not, this is the chaos. Wait reaps the
		// child so the next round's start never races a zombie holding the
		// store.
		cmd.Process.Kill()
		cmd.Wait()
		if canceled {
			return kills, ctx.Err()
		}
		if !finished && done() {
			finished = true // completed in the instant before the kill landed
		}
		if finished {
			return kills, nil
		}
		kills++
	}
	return kills, fmt.Errorf("work not done after %d kill rounds (min uptime %s may be too short for one checkpoint)", rounds, k.MinUptime)
}
