package chaos

import (
	"errors"
	"testing"
)

// TestFaultScheduleDeterministic pins that the fault schedule is a pure
// function of (Seed, chunk start): two injectors with the same seed agree on
// every chunk, and the schedule survives Reset.
func TestFaultScheduleDeterministic(t *testing.T) {
	a := &Injector{Seed: 42, TransientRate: 0.3, MaxFaults: 3}
	b := &Injector{Seed: 42, TransientRate: 0.3, MaxFaults: 3}
	for lo := 0; lo < 4096; lo += 64 {
		if a.faults(lo) != b.faults(lo) {
			t.Fatalf("chunk %d: schedules disagree between same-seed injectors", lo)
		}
	}
	before := a.faults(128)
	a.Reset()
	if a.faults(128) != before {
		t.Error("Reset must not change the fault schedule, only the attempt counters")
	}
}

// TestFaultRate sanity-checks that the configured rate roughly matches the
// fraction of faulted chunks.
func TestFaultRate(t *testing.T) {
	inj := &Injector{Seed: 1, TransientRate: 0.2}
	faulted := 0
	const chunks = 2000
	for c := 0; c < chunks; c++ {
		if inj.faults(c*64) > 0 {
			faulted++
		}
	}
	got := float64(faulted) / chunks
	if got < 0.15 || got > 0.25 {
		t.Errorf("fault rate %.3f, want ~0.2", got)
	}
}

// TestSeedVariesSchedule pins that distinct seeds give distinct schedules.
func TestSeedVariesSchedule(t *testing.T) {
	a := &Injector{Seed: 1, TransientRate: 0.5}
	b := &Injector{Seed: 2, TransientRate: 0.5}
	same := true
	for lo := 0; lo < 64*64; lo += 64 {
		if a.faults(lo) != b.faults(lo) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical schedules over 64 chunks")
	}
}

// TestWrapTransientThenClean pins the attempt progression: a faulted chunk's
// first attempt(s) return ErrInjected, then the wrapped do runs.
func TestWrapTransientThenClean(t *testing.T) {
	inj := &Injector{Seed: 3, TransientRate: 1, MaxFaults: 2}
	ran := 0
	do := Wrap(inj, func(_ struct{}, lo, hi int) error { ran++; return nil })
	for a := 1; a <= 2; a++ {
		if err := do(struct{}{}, 0, 64); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", a, err)
		}
	}
	if err := do(struct{}{}, 0, 64); err != nil || ran != 1 {
		t.Fatalf("attempt 3: err = %v ran = %d, want clean pass-through", err, ran)
	}
}

// TestWrapPermanent pins that permanent faults hit every attempt and are not
// classified transient.
func TestWrapPermanent(t *testing.T) {
	inj := &Injector{Seed: 3, PermanentStarts: []int{64}}
	do := Wrap(inj, func(_ struct{}, lo, hi int) error { return nil })
	for a := 0; a < 3; a++ {
		err := do(struct{}{}, 64, 128)
		if !errors.Is(err, ErrPermanent) {
			t.Fatalf("attempt %d: err = %v, want ErrPermanent", a+1, err)
		}
		if Transient(err) {
			t.Fatal("ErrPermanent must not classify as transient")
		}
	}
	if err := do(struct{}{}, 0, 64); err != nil {
		t.Errorf("unlisted chunk faulted: %v", err)
	}
}

// TestWrapPanicOnce pins that an injected panic fires on the first attempt
// only — it models a transient crash a retry clears.
func TestWrapPanicOnce(t *testing.T) {
	inj := &Injector{Seed: 3, PanicStarts: []int{0}}
	do := Wrap(inj, func(_ struct{}, lo, hi int) error { return nil })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("first attempt did not panic")
			}
		}()
		_ = do(struct{}{}, 0, 64)
	}()
	if err := do(struct{}{}, 0, 64); err != nil {
		t.Errorf("second attempt: %v, want clean", err)
	}
}

// TestTransientClassifier pins the classifier against wrapped and foreign
// errors.
func TestTransientClassifier(t *testing.T) {
	if !Transient(ErrInjected) {
		t.Error("ErrInjected must be transient")
	}
	if Transient(errors.New("io timeout")) {
		t.Error("foreign errors must not be transient")
	}
}
