package chaos

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

func TestProcKillerUptimeDeterministicAndBounded(t *testing.T) {
	k := ProcKiller{Seed: 42, MinUptime: 10 * time.Millisecond, MaxUptime: 50 * time.Millisecond}
	for r := 0; r < 100; r++ {
		u := k.Uptime(r)
		if u != k.Uptime(r) {
			t.Fatalf("round %d: Uptime is not a pure function of (Seed, r)", r)
		}
		if u < k.MinUptime || u >= k.MaxUptime {
			t.Fatalf("round %d: uptime %s outside [%s, %s)", r, u, k.MinUptime, k.MaxUptime)
		}
	}
	other := ProcKiller{Seed: 43, MinUptime: k.MinUptime, MaxUptime: k.MaxUptime}
	same := 0
	for r := 0; r < 100; r++ {
		if k.Uptime(r) == other.Uptime(r) {
			same++
		}
	}
	if same == 100 {
		t.Error("seeds 42 and 43 draw identical schedules; the seed is not mixed in")
	}
}

func TestProcKillerUptimeDegenerateSpan(t *testing.T) {
	k := ProcKiller{Seed: 1, MinUptime: 20 * time.Millisecond, MaxUptime: 20 * time.Millisecond}
	if got := k.Uptime(3); got != 20*time.Millisecond {
		t.Errorf("zero-span uptime = %s, want MinUptime", got)
	}
}

func TestProcKillerRunGivesUpAfterMaxRounds(t *testing.T) {
	k := ProcKiller{Seed: 7, MinUptime: time.Millisecond, MaxUptime: 2 * time.Millisecond, MaxRounds: 3}
	starts := 0
	start := func() (*exec.Cmd, error) {
		starts++
		return exec.Command("sleep", "60"), nil
	}
	kills, err := k.Run(context.Background(), start, func() bool { return false })
	if err == nil {
		t.Fatal("Run with never-done work returned nil error")
	}
	if starts != 3 || kills != 3 {
		t.Errorf("starts = %d, kills = %d, want 3 rounds then give up", starts, kills)
	}
}
