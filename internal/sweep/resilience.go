package sweep

// resilience.go — the fault-tolerance layer of the generic core. RunCore's
// original contract killed the whole process on a workload panic and lost
// the whole run to one failed chunk; long campaigns (rare-event outage
// sweeps at 1e-9 tail probabilities, multi-hour region batches) and the
// planned network dispatcher need chunks to survive failure instead. Three
// mechanisms, all preserving the bit-identical-across-Workers guarantee:
//
//   - panic containment: every do invocation runs under a recover that
//     converts a workload panic into a *PanicError, surfaced (like any do
//     error) inside a *ChunkError instead of crashing the process;
//   - retry with backoff: CoreOptions.Retry re-runs failed chunks whose
//     error the policy classifies transient, after tearing down and
//     recreating the worker's state W through the run's Hooks — a retried
//     chunk starts from exactly the fresh state a first attempt gets, so
//     retries cannot perturb results. Backoff is capped exponential with
//     deterministic jitter derived from the chunk index;
//   - checkpointing: CoreOptions.Checkpoint observes the ordered emitter's
//     watermark (the contiguous emitted point prefix) as it advances, and
//     CoreOptions.Start resumes a later run past a saved watermark — the
//     prefix-on-cancel semantics make the watermark exactly the safe
//     resume point.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ChunkError reports the failure of one chunk of a sharded run: which chunk,
// its point range, how many attempts it was given, and the underlying error
// (a *PanicError when the workload panicked). It unwraps to Err, so
// errors.Is/As see through it.
type ChunkError struct {
	// Chunk is the chunk index; Start and End delimit its points [Start, End).
	Chunk, Start, End int
	// Attempt is the 1-based attempt count at which the chunk gave up.
	Attempt int
	// Err is the underlying do error.
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("chunk %d [%d,%d) attempt %d: %v", e.Chunk, e.Start, e.End, e.Attempt, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// PanicError is a workload panic captured by the worker loop's recover. It
// surfaces inside a *ChunkError; the process stays alive.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", e.Value) }

// RetryPolicy re-runs failed chunks. The zero value retries every transient
// failure up to DefaultMaxAttempts with no backoff delay.
type RetryPolicy struct {
	// MaxAttempts caps total attempts per chunk, the first try included;
	// non-positive means DefaultMaxAttempts (3), 1 means fail fast.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, doubled per further
	// attempt and capped at MaxDelay; zero retries immediately. Each delay
	// is stretched by a deterministic jitter fraction derived from the
	// chunk index, so colliding retries decorrelate reproducibly.
	BaseDelay, MaxDelay time.Duration
	// IsTransient classifies retryable errors; nil treats every error as
	// transient. Context cancellation and deadline errors are never
	// retried, regardless of the classifier.
	IsTransient func(error) bool
}

// DefaultMaxAttempts is the per-chunk attempt cap of a RetryPolicy that
// leaves MaxAttempts unset.
const DefaultMaxAttempts = 3

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

// retryable reports whether err warrants another attempt: a run being torn
// down by its context never retries, everything else asks the classifier.
func (p *RetryPolicy) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if p.IsTransient == nil {
		return true
	}
	return p.IsTransient(err)
}

// delay returns the backoff before retrying chunk c after failed attempt
// a (1-based): BaseDelay << (a-1), capped at MaxDelay, stretched by a
// deterministic jitter in [1.0, 1.5) derived from (c, a). A pure function
// of its arguments — reproducible run to run, worker count to worker count.
func (p *RetryPolicy) delay(c, a int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < a && d < (1<<62); i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter fraction in [0, 0.5) from a splitmix64 finalizer over (c, a).
	h := splitmix64(uint64(c)*0x9E3779B97F4A7C15 + uint64(a))
	frac := float64(h>>11) / float64(1<<53) // [0, 1)
	return d + time.Duration(float64(d)*frac/2)
}

// splitmix64 is the standard splitmix64 finalizer: a cheap, well-mixed hash
// used for deterministic jitter and by the chaos injector's fault draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Checkpointer persists the ordered emitter's watermark — the contiguous
// prefix of points emitted without error. Save observes strictly increasing
// watermarks from the single emitter goroutine (implementations need no
// locking against the run itself); feeding the last saved value back as
// CoreOptions.Start resumes a later run past the already-emitted prefix. A
// Save error halts the run like an emit error.
type Checkpointer interface {
	Save(watermark int) error
}

// runChunkOnce runs one attempt of do under panic containment: a workload
// panic becomes a *PanicError instead of killing the process.
func runChunkOnce[W any](do func(W, int, int) error, w W, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return do(w, lo, hi)
}

// runChunkAttempts evaluates chunk c with the retry policy: each attempt
// resets (and, between attempts, tears down and recreates) the worker state
// *st through hooks, so a retried chunk starts from the same fresh state a
// first attempt gets and the bit-identical-across-Workers guarantee holds
// through failures. Returns nil on success, or the final attempt's
// *ChunkError.
func runChunkAttempts[W any](ctx context.Context, hooks Hooks[W], st *W, retry *RetryPolicy, c, lo, hi int, do func(W, int, int) error) error {
	for attempt := 1; ; attempt++ {
		hooks.reset(*st)
		err := runChunkOnce(do, *st, lo, hi)
		if err == nil {
			return nil
		}
		cerr := &ChunkError{Chunk: c, Start: lo, End: hi, Attempt: attempt, Err: err}
		if retry == nil || attempt >= retry.maxAttempts() || !retry.retryable(err) || ctxErr(ctx) != nil {
			return cerr
		}
		// The failed attempt may have left W in an arbitrary state (it may
		// have panicked mid-update); recreate it from scratch.
		hooks.close(*st)
		*st = hooks.newWorker()
		if !sleepCtx(ctx, retry.delay(c, attempt)) {
			return cerr
		}
	}
}

// sleepCtx waits d unless the context ends first; reports whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
