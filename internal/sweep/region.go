package sweep

// region.go — the rate-region workload on the generic core. A region curve
// (one curve of the paper's Fig 4) is a support-function sweep: one
// weighted-rate LP per support direction plus two exact axis solves, hulled
// into a convex polygon. RegionBatch flattens a whole batch of curves
// (scenarios × protocol bounds) into one indexed point set — every support
// direction of every curve is one point — and runs it through RunCore, so
// the angle axis shards exactly like the grid axes: fixed 64-point chunks,
// per-worker warm evaluators reset at chunk boundaries, bounded streaming,
// runGate cancellation. Completed curves are assembled and streamed in
// enumeration order; results are bit-identical for every worker count.

import (
	"context"
	"fmt"

	"bicoop/internal/cache"
	"bicoop/internal/protocols"
	"bicoop/internal/region"
)

// RegionCurve selects one protocol bound whose rate region is computed for
// every scenario of a RegionSpec.
type RegionCurve struct {
	Proto protocols.Protocol
	Bound protocols.Bound
}

// RegionSpec declares a batch of region computations: the cross product
// Scenarios × Curves, each curve swept at the same angular resolution.
type RegionSpec struct {
	Scenarios []Scenario
	Curves    []RegionCurve
	// Angles is the per-curve support-direction count; zero defaults to
	// protocols.DefaultRegionAngles (181).
	Angles int
	// Start resumes the batch at curve index Start (scenario-major
	// enumeration): earlier curves are assumed already yielded by a
	// previous run and are neither recomputed nor yielded again.
	Start int
	// Checkpoint, when non-nil, observes the contiguous yielded curve
	// count as it advances — curve units, unlike the point-level
	// Options.Checkpoint, which RegionBatch overrides. Feed the last saved
	// value back as Start to resume.
	Checkpoint Checkpointer
}

// angles resolves the sweep resolution.
func (spec RegionSpec) angles() int {
	if spec.Angles > 0 {
		return spec.Angles
	}
	return protocols.DefaultRegionAngles
}

// Size returns the number of curves the batch will yield.
func (spec RegionSpec) Size() int { return len(spec.Scenarios) * len(spec.Curves) }

// RegionResult is one completed curve: the polygon plus its batch
// coordinates (ScenarioIdx × CurveIdx, scenario-major enumeration).
type RegionResult struct {
	ScenarioIdx, CurveIdx int
	Polygon               region.Polygon
}

// RegionBatch computes every curve of the batch and streams completed
// polygons to yield in enumeration order (scenario outer, curve inner). The
// flattened support-direction axis — angles + 2 exact axis solves per curve
// — is sharded across opts.Workers via RunCore with warm per-worker
// evaluators: within a chunk the Naive4/HBC weighted-rate LPs warm-start
// from the previous direction's basis, and warm state resets at fixed chunk
// boundaries, so every polygon is bit-identical for every worker count. A
// yield error or context cancellation stops the batch within one chunk per
// worker; curves yielded before the stop are complete and valid.
func RegionBatch(ctx context.Context, spec RegionSpec, opts Options, yield func(RegionResult) error) error {
	nCurvesPerScen := len(spec.Curves)
	nCurves := spec.Size()
	if nCurves == 0 {
		return ctxErr(ctx)
	}
	angles := spec.angles()
	if angles < 2 {
		return fmt.Errorf("%w: region sweep needs at least 2 angles, got %d", ErrSpec, angles)
	}
	// Link informations are scenario-level and shared by every curve and
	// direction, so they are resolved once up front (full, unmasked — the
	// same values the serial Evaluator.Region path uses).
	lis := make([]protocols.LinkInfos, len(spec.Scenarios))
	for si, s := range spec.Scenarios {
		li, err := protocols.LinkInfosFromScenario(s.internal())
		if err != nil {
			return fmt.Errorf("region scenario %d: %w", si, err)
		}
		lis[si] = li
	}

	// One flattened point per LP solve: the angles swept directions followed
	// by the two exact axis solves, stored pre-projected so curve assembly
	// is a straight AssembleRegion call over a contiguous slice.
	perCurve := angles + 2
	n := nCurves * perCurve
	pts := make([]region.Point, n)

	// Resume + checkpoint in curve units: the point-level start is the
	// resumed curve's first flattened index (the core floors it to a chunk
	// boundary, re-solving at most one chunk of directions below it, so
	// every direction of every unyielded curve is computed), and the
	// point-level watermark is translated back to whole curves before it
	// reaches the caller's Checkpointer.
	startCurve := spec.Start
	if startCurve < 0 {
		startCurve = 0
	}
	if startCurve > nCurves {
		startCurve = nCurves
	}
	opts.Start = startCurve * perCurve
	if spec.Checkpoint != nil {
		opts.Checkpoint = &curveCheckpoint{inner: spec.Checkpoint, perCurve: perCurve, last: startCurve}
	} else {
		opts.Checkpoint = nil
	}

	do := func(ev *protocols.Evaluator, lo, hi int) error {
		for i := lo; i < hi; i++ {
			k, j := i/perCurve, i%perCurve
			si := k / nCurvesPerScen
			c := spec.Curves[k%nCurvesPerScen]
			var muA, muB float64
			switch {
			case j < angles:
				muA, muB = protocols.RegionDirection(j, angles)
			case j == angles:
				muA, muB = 1, 0
			default:
				muA, muB = 0, 1
			}
			// Region vertices cache as raw weighted solves keyed by the
			// support direction; the axis projection and jitter clamp are
			// re-applied on hit, so hits and misses land in pts identically.
			var ra, rb float64
			var key cache.Key
			hit := false
			if opts.Cache != nil {
				s := spec.Scenarios[si]
				key = cache.WeightedKey(c.Proto, c.Bound, s.PowerDB, s.GabDB, s.GarDB, s.GbrDB, muA, muB)
				if v, ok := opts.Cache.Lookup(key); ok {
					ra, rb, hit = v.Ra, v.Rb, true
				}
			}
			if !hit {
				opt, err := ev.WeightedRateLinks(c.Proto, c.Bound, lis[si], muA, muB)
				if err != nil {
					return fmt.Errorf("region curve %d (%v %v, scenario %d), direction %d: %w",
						k, c.Proto, c.Bound, si, j, err)
				}
				ra, rb = opt.Rates.Ra, opt.Rates.Rb
				if opts.Cache != nil {
					opts.Cache.Add(key, cache.MakeValue(opt.Objective, ra, rb, opt.Durations))
				}
			}
			switch {
			case j < angles:
				// Rates are non-negative by construction; clear solver jitter.
				pts[i] = region.Point{Ra: max(ra, 0), Rb: max(rb, 0)}
			case j == angles:
				pts[i] = region.Point{Ra: ra} // exact max Ra, projected
			default:
				pts[i] = region.Point{Rb: rb} // exact max Rb, projected
			}
		}
		return nil
	}
	nextCurve := startCurve
	emit := func(lo, hi int) error {
		for ; (nextCurve+1)*perCurve <= hi; nextCurve++ {
			base := nextCurve * perCurve
			pg := protocols.AssembleRegion(
				pts[base:base+angles],
				pts[base+angles].Ra,
				pts[base+angles+1].Rb,
			)
			if err := yield(RegionResult{
				ScenarioIdx: nextCurve / nCurvesPerScen,
				CurveIdx:    nextCurve % nCurvesPerScen,
				Polygon:     pg,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := Run(ctx, n, opts, do, emit)
	return err
}

// curveCheckpoint adapts a curve-unit Checkpointer to the core's point-level
// watermark: saves fire only when another whole curve has been emitted. Only
// the emitter goroutine calls Save, so last needs no locking.
type curveCheckpoint struct {
	inner    Checkpointer
	perCurve int
	last     int
}

func (c *curveCheckpoint) Save(watermark int) error {
	curves := watermark / c.perCurve
	if curves <= c.last {
		return nil
	}
	c.last = curves
	return c.inner.Save(curves)
}
