// Package sweep is the sharded execution core behind the facade's batch,
// sweep, region and campaign APIs and the figure harness in
// internal/experiments. The workload-generic machinery lives in RunCore
// (core.go): an indexed point set is split into fixed-size chunks pulled by
// a worker pool, each worker owning private state supplied by Hooks and
// reset at every chunk boundary, so the numbers a chunk produces depend
// only on the chunk itself — results are bit-identical for every worker
// count, and the streaming emit callback observes points in strict
// enumeration order regardless of completion order.
//
// This file instantiates the core for the evaluator-grid workloads (Run,
// Batch, Sweep): each worker owns a warm protocols.Evaluator whose LP
// warm-start state is the per-chunk reset. region.go instantiates it for
// rate-region support sweeps; the facade instantiates it (stateless) for
// simulation campaigns.
//
// Cancellation follows internal/sim's runGate pattern: a context.AfterFunc
// flips one atomic flag the workers poll per chunk, so an uncancelled run
// never touches the context's mutex on the hot path and a cancelled one
// stops within a chunk. The contiguous prefix of completed points is
// reported alongside the context error, so callers can return partial
// results.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"bicoop/internal/cache"
	"bicoop/internal/protocols"
)

// ChunkSize is the number of consecutive points one worker evaluates per
// claim. It is a fixed constant — never derived from the worker count — so
// chunk boundaries (and with them the warm-start reset points, and hence
// every result bit) are identical no matter how many workers run. 64 points
// amortize the claim and reset cost while keeping cancellation latency and
// tail imbalance to a few milliseconds of work.
const ChunkSize = 64

// Pool supplies worker evaluators. Implementations must be safe for
// concurrent use; the facade's Engine plugs its own sync.Pool in so sweeps
// share evaluators with the rest of the session.
type Pool interface {
	Get() *protocols.Evaluator
	Put(*protocols.Evaluator)
}

// pkgPool backs runs that do not bring their own pool (the experiments
// harness).
var pkgPool = sync.Pool{New: func() any { return protocols.NewEvaluator() }}

type defaultPool struct{}

func (defaultPool) Get() *protocols.Evaluator   { return pkgPool.Get().(*protocols.Evaluator) }
func (defaultPool) Put(ev *protocols.Evaluator) { pkgPool.Put(ev) }

// Options tunes a run.
type Options struct {
	// Workers bounds the goroutines evaluating chunks; non-positive means
	// GOMAXPROCS. The worker count affects scheduling only — results are
	// bit-identical for every value.
	Workers int
	// Pool supplies worker evaluators; nil uses a package-level pool.
	Pool Pool
	// Start resumes a run past an already-emitted point prefix; Checkpoint
	// persists the emitted watermark as it advances; Retry re-runs
	// transiently failed chunks with fresh worker state. All three are
	// forwarded to the core verbatim — see CoreOptions.
	Start      int
	Checkpoint Checkpointer
	Retry      *RetryPolicy
	// Cache, when non-nil, serves already-solved points from the
	// scenario-keyed result store and fills it on misses. Cache-enabled
	// runs disable LP warm starting, making every solve the canonical
	// cold solve: a warm-started solve's last bits depend on the pivot
	// history of the points before it, which a cache hit would otherwise
	// perturb. Cold solves are position-independent, so cached results
	// are bit-identical to a cache-off run of the same points and to the
	// facade's single-point solves, at every worker count.
	Cache *cache.Store
}

func (o Options) pool() Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return defaultPool{}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctxErr mirrors internal/sim's post-drain context check: the result always
// satisfies errors.Is(err, ctx.Err()) and additionally wraps a distinct
// cancellation cause when one was supplied.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, err) {
		return fmt.Errorf("%w: %w", err, cause)
	}
	return err
}

// evalHooks builds the warm-evaluator worker hooks shared by Run and
// RegionBatch: each worker leases one evaluator from the pool with LP warm
// starting enabled, the warm bases reset at every chunk boundary, and the
// evaluator is returned (warm state dropped) when the worker exits.
func evalHooks(pool Pool) Hooks[*protocols.Evaluator] {
	return Hooks[*protocols.Evaluator]{
		NewWorker: func() *protocols.Evaluator {
			ev := pool.Get()
			ev.SetWarmStart(true)
			return ev
		},
		ResetWorker: func(ev *protocols.Evaluator) { ev.ResetWarmStart() },
		CloseWorker: func(ev *protocols.Evaluator) {
			ev.SetWarmStart(false) // drops warm state before re-pooling
			pool.Put(ev)
		},
	}
}

// coldEvalHooks leases evaluators with warm starting disabled, for
// cache-enabled runs: every miss must be the canonical cold solve (see
// Options.Cache), so the per-chunk reset is a no-op — there is no warm
// state to reset.
func coldEvalHooks(pool Pool) Hooks[*protocols.Evaluator] {
	return Hooks[*protocols.Evaluator]{
		NewWorker: func() *protocols.Evaluator {
			ev := pool.Get()
			ev.SetWarmStart(false)
			return ev
		},
		ResetWorker: func(*protocols.Evaluator) {},
		CloseWorker: func(ev *protocols.Evaluator) { pool.Put(ev) },
	}
}

// Run evaluates n indexed points. do(ev, start, end) evaluates the
// contiguous chunk [start, end) with a warm evaluator (warm starting
// enabled, reset at the chunk's start) and must write its results into
// caller-owned, index-addressed storage; emit(start, end), when non-nil, is
// invoked for completed chunks in strictly ascending order — the streaming
// sink. A do or emit error, or context cancellation, halts the run within
// one chunk per worker.
//
// Run returns the length of the contiguous prefix of points whose chunks
// completed (and, when emit is set, were emitted) without error — n on
// success — plus the first error in enumeration order, with context errors
// taking precedence. It is the evaluator-typed instantiation of RunCore.
func Run(ctx context.Context, n int, opts Options, do func(ev *protocols.Evaluator, start, end int) error, emit func(start, end int) error) (int, error) {
	core := CoreOptions{
		Workers:    opts.Workers,
		Start:      opts.Start,
		Checkpoint: opts.Checkpoint,
		Retry:      opts.Retry,
	}
	hooks := evalHooks(opts.pool())
	if opts.Cache != nil {
		hooks = coldEvalHooks(opts.pool())
	}
	return RunCore(ctx, n, core, hooks, do, emit)
}
