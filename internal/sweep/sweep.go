// Package sweep is the sharded grid-evaluation core behind the facade's
// SumRateBatch and Sweep and the figure harness in internal/experiments. It
// splits an indexed point set into fixed-size chunks pulled by a worker
// pool; each worker owns a warm protocols.Evaluator whose LP warm-start
// state is reset at every chunk boundary, so the numbers a chunk produces
// depend only on the chunk itself — results are bit-identical for every
// worker count, and the streaming emit callback observes points in strict
// enumeration order regardless of completion order.
//
// Cancellation follows internal/sim's runGate pattern: a context.AfterFunc
// flips one atomic flag the workers poll per chunk, so an uncancelled run
// never touches the context's mutex on the hot path and a cancelled one
// stops within a chunk. The contiguous prefix of completed points is
// reported alongside the context error, so callers can return partial
// results.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bicoop/internal/protocols"
)

// ChunkSize is the number of consecutive points one worker evaluates per
// claim. It is a fixed constant — never derived from the worker count — so
// chunk boundaries (and with them the warm-start reset points, and hence
// every result bit) are identical no matter how many workers run. 64 points
// amortize the claim and reset cost while keeping cancellation latency and
// tail imbalance to a few milliseconds of work.
const ChunkSize = 64

// Pool supplies worker evaluators. Implementations must be safe for
// concurrent use; the facade's Engine plugs its own sync.Pool in so sweeps
// share evaluators with the rest of the session.
type Pool interface {
	Get() *protocols.Evaluator
	Put(*protocols.Evaluator)
}

// pkgPool backs runs that do not bring their own pool (the experiments
// harness).
var pkgPool = sync.Pool{New: func() any { return protocols.NewEvaluator() }}

type defaultPool struct{}

func (defaultPool) Get() *protocols.Evaluator   { return pkgPool.Get().(*protocols.Evaluator) }
func (defaultPool) Put(ev *protocols.Evaluator) { pkgPool.Put(ev) }

// Options tunes a run.
type Options struct {
	// Workers bounds the goroutines evaluating chunks; non-positive means
	// GOMAXPROCS. The worker count affects scheduling only — results are
	// bit-identical for every value.
	Workers int
	// Pool supplies worker evaluators; nil uses a package-level pool.
	Pool Pool
}

func (o Options) pool() Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return defaultPool{}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctxErr mirrors internal/sim's post-drain context check: the result always
// satisfies errors.Is(err, ctx.Err()) and additionally wraps a distinct
// cancellation cause when one was supplied.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, err) {
		return fmt.Errorf("%w: %w", err, cause)
	}
	return err
}

// Run evaluates n indexed points. do(ev, start, end) evaluates the
// contiguous chunk [start, end) with a warm evaluator (warm starting
// enabled, reset at the chunk's start) and must write its results into
// caller-owned, index-addressed storage; emit(start, end), when non-nil, is
// invoked for completed chunks in strictly ascending order — the streaming
// sink. A do or emit error, or context cancellation, halts the run within
// one chunk per worker.
//
// Run returns the length of the contiguous prefix of points whose chunks
// completed (and, when emit is set, were emitted) without error — n on
// success — plus the first error in enumeration order, with context errors
// taking precedence.
func Run(ctx context.Context, n int, opts Options, do func(ev *protocols.Evaluator, start, end int) error, emit func(start, end int) error) (int, error) {
	if n <= 0 {
		return 0, ctxErr(ctx)
	}
	nChunks := (n + ChunkSize - 1) / ChunkSize
	workers := opts.workers()
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		return runSequential(ctx, n, nChunks, opts, do, emit)
	}

	var halted atomic.Bool
	haltCh := make(chan struct{})
	var haltOnce sync.Once
	halt := func() {
		haltOnce.Do(func() {
			halted.Store(true)
			close(haltCh)
		})
	}
	stop := func() bool { return false }
	if ctx != nil && ctx.Done() != nil {
		stop = context.AfterFunc(ctx, halt)
	}
	defer stop()

	// tickets bounds how far computation may run ahead of the emitter: a
	// worker takes one ticket per chunk claim and the emitter returns it
	// once the chunk has been streamed (or skipped past an error). This
	// caps the reorder buffer — and with it the caller's live per-chunk
	// result storage — at window chunks instead of the whole grid.
	window := 2 * workers
	if window < 4 {
		window = 4
	}
	if window > nChunks {
		window = nChunks
	}
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}

	var next atomic.Int64
	chunkErr := make([]error, nChunks)
	completions := make(chan int, nChunks)
	pool := opts.pool()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := pool.Get()
			ev.SetWarmStart(true)
			defer func() {
				ev.SetWarmStart(false) // drops warm state before re-pooling
				pool.Put(ev)
			}()
			for {
				select {
				case <-tickets:
				case <-haltCh:
					return
				}
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo, hi := chunkBounds(c, n)
				ev.ResetWarmStart()
				if err := do(ev, lo, hi); err != nil {
					chunkErr[c] = err
					halt()
				}
				completions <- c
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	// The calling goroutine is the emitter: it advances a cursor over the
	// completed-chunk set and streams ready chunks in order, halting the
	// pool on an emit error but always draining it. Each advanced chunk
	// returns its backpressure ticket; ticket sends cannot block because at
	// most window claims are outstanding. (After a halt the remaining
	// tickets are irrelevant — workers exit via haltCh.)
	done := make([]bool, nChunks)
	nextEmit := 0
	emitting := emit != nil
	for c := range completions {
		done[c] = true
		for nextEmit < nChunks && done[nextEmit] && chunkErr[nextEmit] == nil {
			if emitting {
				lo, hi := chunkBounds(nextEmit, n)
				if err := emit(lo, hi); err != nil {
					chunkErr[nextEmit] = err
					halt()
					emitting = false
					break
				}
			}
			nextEmit++
			tickets <- struct{}{}
		}
	}

	prefix := nextEmit * ChunkSize
	if prefix > n {
		prefix = n
	}
	if err := ctxErr(ctx); err != nil {
		return prefix, err
	}
	for _, err := range chunkErr {
		if err != nil {
			return prefix, err
		}
	}
	return prefix, nil
}

// runSequential is the single-worker path: same chunk boundaries and
// warm-start resets as the pool, so its outputs are bit-identical, without
// goroutine or channel overhead.
func runSequential(ctx context.Context, n, nChunks int, opts Options, do func(ev *protocols.Evaluator, start, end int) error, emit func(start, end int) error) (int, error) {
	pool := opts.pool()
	ev := pool.Get()
	ev.SetWarmStart(true)
	defer func() {
		ev.SetWarmStart(false)
		pool.Put(ev)
	}()
	for c := 0; c < nChunks; c++ {
		if err := ctxErr(ctx); err != nil {
			return c * ChunkSize, err
		}
		lo, hi := chunkBounds(c, n)
		ev.ResetWarmStart()
		if err := do(ev, lo, hi); err != nil {
			return lo, err
		}
		if emit != nil {
			if err := emit(lo, hi); err != nil {
				return lo, err
			}
		}
	}
	return n, nil
}

func chunkBounds(c, n int) (lo, hi int) {
	lo = c * ChunkSize
	hi = lo + ChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}
