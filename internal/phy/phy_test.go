package phy

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/xmath"
)

func TestModulationStrings(t *testing.T) {
	tests := []struct {
		m    Modulation
		name string
		bps  int
	}{
		{BPSK, "BPSK", 1},
		{QPSK, "QPSK", 2},
		{QAM16, "16-QAM", 4},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.name {
			t.Errorf("String = %q, want %q", got, tt.name)
		}
		bps, err := tt.m.BitsPerSymbol()
		if err != nil || bps != tt.bps {
			t.Errorf("%v.BitsPerSymbol = (%d, %v), want %d", tt.m, bps, err, tt.bps)
		}
	}
	if got := Modulation(0).String(); got != "Modulation(0)" {
		t.Errorf("unknown String = %q", got)
	}
	if _, err := Modulation(0).BitsPerSymbol(); !errors.Is(err, ErrUnknownModulation) {
		t.Error("want ErrUnknownModulation")
	}
}

func TestModulateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Modulation{BPSK, QPSK, QAM16} {
		t.Run(m.String(), func(t *testing.T) {
			bps, err := m.BitsPerSymbol()
			if err != nil {
				t.Fatal(err)
			}
			bits := make([]int, 240*bps/bps*bps)
			for i := range bits {
				bits[i] = rng.Intn(2)
			}
			syms, err := Modulate(m, bits)
			if err != nil {
				t.Fatal(err)
			}
			if len(syms) != len(bits)/bps {
				t.Fatalf("symbol count %d, want %d", len(syms), len(bits)/bps)
			}
			got, err := Demodulate(m, syms)
			if err != nil {
				t.Fatal(err)
			}
			for i := range bits {
				if bits[i] != got[i] {
					t.Fatalf("noiseless round trip flipped bit %d", i)
				}
			}
		})
	}
}

func TestConstellationUnitEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []Modulation{BPSK, QPSK, QAM16} {
		bps, _ := m.BitsPerSymbol()
		const nSym = 50000
		bits := make([]int, nSym*bps)
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for _, s := range syms {
			e += real(s)*real(s) + imag(s)*imag(s)
		}
		if avg := e / float64(len(syms)); math.Abs(avg-1) > 0.02 {
			t.Errorf("%v average symbol energy = %v, want 1", m, avg)
		}
	}
}

func TestModulateErrors(t *testing.T) {
	if _, err := Modulate(QPSK, []int{1}); !errors.Is(err, ErrBitCount) {
		t.Errorf("err = %v, want ErrBitCount", err)
	}
	if _, err := Modulate(Modulation(9), []int{1}); !errors.Is(err, ErrUnknownModulation) {
		t.Errorf("err = %v, want ErrUnknownModulation", err)
	}
	if _, err := Demodulate(Modulation(9), nil); !errors.Is(err, ErrUnknownModulation) {
		t.Errorf("err = %v, want ErrUnknownModulation", err)
	}
}

func TestQFunction(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.0, 0.15865525393145707},
		{2.0, 0.02275013194817921},
		{-1.0, 0.8413447460685429},
	}
	for _, tt := range tests {
		if got := Q(tt.x); !xmath.ApproxEqual(got, tt.want, 1e-12) {
			t.Errorf("Q(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestTheoreticalBERKnownValues(t *testing.T) {
	// BPSK at Es/N0 = 10 (10 dB): Q(sqrt(20)) ≈ 3.87e-6.
	ber, err := TheoreticalBER(BPSK, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.ApproxEqual(ber, Q(math.Sqrt(20)), 1e-15) {
		t.Errorf("BPSK BER = %v", ber)
	}
	// QPSK needs 3 dB more symbol SNR for the same BER as BPSK.
	bpsk, _ := TheoreticalBER(BPSK, 5)
	qpsk, _ := TheoreticalBER(QPSK, 10)
	if !xmath.ApproxEqual(bpsk, qpsk, 1e-12) {
		t.Errorf("BPSK@5 %v != QPSK@10 %v", bpsk, qpsk)
	}
	// Ordering at fixed SNR: BPSK < QPSK < 16-QAM.
	b, _ := TheoreticalBER(BPSK, 8)
	q, _ := TheoreticalBER(QPSK, 8)
	qa, _ := TheoreticalBER(QAM16, 8)
	if !(b < q && q < qa) {
		t.Errorf("BER ordering broken: %v %v %v", b, q, qa)
	}
	if _, err := TheoreticalBER(Modulation(9), 1); err == nil {
		t.Error("want error for unknown modulation")
	}
	// Negative SNR clamps to the 0.5 floor region rather than NaN.
	if ber, err := TheoreticalBER(BPSK, -1); err != nil || ber != 0.5 {
		t.Errorf("negative snr: (%v, %v)", ber, err)
	}
}

func TestSimulatedBERMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		m   Modulation
		snr float64
	}{
		{BPSK, 2.0},
		{BPSK, 4.0},
		{QPSK, 4.0},
		{QPSK, 8.0},
		{QAM16, 10.0},
		{QAM16, 20.0},
	}
	for _, tt := range tests {
		t.Run(tt.m.String(), func(t *testing.T) {
			want, err := TheoreticalBER(tt.m, tt.snr)
			if err != nil {
				t.Fatal(err)
			}
			// Enough bits for ~1000 expected errors.
			nBits := int(math.Max(2e5, 1000/want))
			got, err := SimulateBER(context.Background(), tt.m, tt.snr, nBits, rng)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 0.15*want+1e-4 {
				t.Errorf("%v at snr %v: simulated %v vs theory %v", tt.m, tt.snr, got, want)
			}
		})
	}
}

func TestSimulateBERValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := SimulateBER(context.Background(), BPSK, 1, 100, nil); err == nil {
		t.Error("nil RNG should error")
	}
	if _, err := SimulateBER(context.Background(), BPSK, 1, 0, rng); err == nil {
		t.Error("zero bits should error")
	}
	if _, err := SimulateBER(context.Background(), Modulation(9), 1, 100, rng); err == nil {
		t.Error("unknown modulation should error")
	}
}

func TestAFLinkSNR(t *testing.T) {
	// Closed-form spot check: p = 10, g1 = 1, g2 = 2:
	// a² = 10/11, snr = 10·1·(10/11)·2 / ((10/11)·2 + 1) ≈ 6.45.
	got := AFLinkSNR(10, 1, 2)
	a2 := 10.0 / 11.0
	want := 10 * 1 * a2 * 2 / (a2*2 + 1)
	if !xmath.ApproxEqual(got, want, 1e-12) {
		t.Errorf("AFLinkSNR = %v, want %v", got, want)
	}
	// The AF path is worse than either hop alone (noise accumulates).
	if got >= 10*1 || got >= 10*2*a2*10/(a2*10) {
		t.Errorf("AF SNR %v should be below the single-hop SNRs", got)
	}
	// Degenerate inputs.
	if AFLinkSNR(0, 1, 1) != 0 || AFLinkSNR(1, 0, 1) != 0 || AFLinkSNR(1, 1, 0) != 0 {
		t.Error("degenerate AFLinkSNR should be 0")
	}
}

func TestAFLinkSNRMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{0.1, 1, 10, 100} {
		s := AFLinkSNR(p, 1, 3)
		if s < prev {
			t.Fatalf("AF SNR decreased with power at p=%v", p)
		}
		prev = s
	}
	// High-power limit: snr -> p·g1·g2/(g1+g2) ... for g1=1, g2=3 the
	// harmonic combination; check the ratio approaches it.
	p := 1e6
	limit := p * 1 * 3 / (1 + 3 + 0) // a²≈1/g1: snr ≈ p·g2·(g1/(g1+g2))
	got := AFLinkSNR(p, 1, 3)
	if math.Abs(got-limit)/limit > 0.01 {
		t.Errorf("high-power AF SNR %v, want ≈ %v", got, limit)
	}
}

func TestSimulateAFBERMatchesEffectiveSNRTheory(t *testing.T) {
	// The central cross-validation: symbol-level AF simulation must match
	// the closed-form effective-SNR BER used by the AF baseline analysis.
	rng := rand.New(rand.NewSource(5))
	tests := []struct {
		m         Modulation
		p, g1, g2 float64
	}{
		{BPSK, 5, 1, 2},
		{QPSK, 10, 1, 3.16},
		{QAM16, 50, 2, 2},
	}
	for _, tt := range tests {
		t.Run(tt.m.String(), func(t *testing.T) {
			eff := AFLinkSNR(tt.p, tt.g1, tt.g2)
			want, err := TheoreticalBER(tt.m, eff)
			if err != nil {
				t.Fatal(err)
			}
			nBits := int(math.Max(2e5, 1000/math.Max(want, 1e-6)))
			if nBits > 4e6 {
				nBits = 4e6
			}
			got, err := SimulateAFBER(context.Background(), tt.m, tt.p, tt.g1, tt.g2, nBits, rng)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 0.15*want+2e-4 {
				t.Errorf("AF %v: simulated %v vs effective-SNR theory %v (eff snr %v)", tt.m, got, want, eff)
			}
		})
	}
}

func TestSimulateAFBERValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := SimulateAFBER(context.Background(), BPSK, 1, 1, 1, 100, nil); err == nil {
		t.Error("nil RNG should error")
	}
	if _, err := SimulateAFBER(context.Background(), BPSK, 0, 1, 1, 100, rng); err == nil {
		t.Error("zero power should error")
	}
	if _, err := SimulateAFBER(context.Background(), BPSK, 1, 1, 1, 0, rng); err == nil {
		t.Error("zero bits should error")
	}
	if _, err := SimulateAFBER(context.Background(), Modulation(9), 1, 1, 1, 100, rng); err == nil {
		t.Error("unknown modulation should error")
	}
}
