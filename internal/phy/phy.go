// Package phy provides the physical-layer substrate of the reproduction:
// linear modulations (BPSK, Gray-mapped QPSK and 16-QAM) over the complex
// AWGN channel of Section IV, closed-form bit-error rates, and Monte Carlo
// BER simulation for both direct links and the two-hop amplify-and-forward
// relay path — validating the effective-SNR formula behind the AF baseline
// in internal/protocols against actual symbol transmission.
//
// Conventions match internal/channel: unit-power circularly-symmetric
// complex noise, transmit power P, link amplitude sqrt(G).
package phy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// cancelCheckEvery is the symbol stride between context checks in the Monte
// Carlo loops: coarse enough to cost nothing, fine enough to stop a long
// run promptly.
const cancelCheckEvery = 1 << 14

// Modulation selects a constellation. All constellations are normalized to
// unit average symbol energy.
type Modulation int

const (
	// BPSK maps one bit per symbol onto the real axis.
	BPSK Modulation = iota + 1
	// QPSK maps two Gray-coded bits per symbol.
	QPSK
	// QAM16 maps four Gray-coded bits per symbol (two per dimension).
	QAM16
)

// Errors returned by this package.
var (
	ErrUnknownModulation = errors.New("phy: unknown modulation")
	ErrBitCount          = errors.New("phy: bit count not a multiple of bits per symbol")
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the number of bits carried per symbol.
func (m Modulation) BitsPerSymbol() (int, error) {
	switch m {
	case BPSK:
		return 1, nil
	case QPSK:
		return 2, nil
	case QAM16:
		return 4, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownModulation, int(m))
	}
}

// pam4 is the Gray-coded 4-PAM amplitude for a 2-bit label, normalized so
// that the average per-dimension energy of 16-QAM is 1/2 (unit symbol
// energy): levels ±1/√10, ±3/√10.
func pam4(b1, b0 int) float64 {
	// Gray order over (b1 b0): 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3.
	var level float64
	switch {
	case b1 == 0 && b0 == 0:
		level = -3
	case b1 == 0 && b0 == 1:
		level = -1
	case b1 == 1 && b0 == 1:
		level = +1
	default:
		level = +3
	}
	return level / math.Sqrt(10)
}

// pam4Demod inverts pam4 with minimum-distance slicing.
func pam4Demod(x float64) (b1, b0 int) {
	s := x * math.Sqrt(10)
	switch {
	case s < -2:
		return 0, 0
	case s < 0:
		return 0, 1
	case s < 2:
		return 1, 1
	default:
		return 1, 0
	}
}

// Modulate maps bits (0/1) to unit-energy constellation symbols.
func Modulate(m Modulation, bits []int) ([]complex128, error) {
	bps, err := m.BitsPerSymbol()
	if err != nil {
		return nil, err
	}
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("%w: %d bits for %v", ErrBitCount, len(bits), m)
	}
	syms := make([]complex128, 0, len(bits)/bps)
	for i := 0; i < len(bits); i += bps {
		switch m {
		case BPSK:
			v := 1.0
			if bits[i] == 1 {
				v = -1.0
			}
			syms = append(syms, complex(v, 0))
		case QPSK:
			re := 1.0
			if bits[i] == 1 {
				re = -1.0
			}
			im := 1.0
			if bits[i+1] == 1 {
				im = -1.0
			}
			syms = append(syms, complex(re/math.Sqrt2, im/math.Sqrt2))
		case QAM16:
			syms = append(syms, complex(
				pam4(bits[i], bits[i+1]),
				pam4(bits[i+2], bits[i+3]),
			))
		}
	}
	return syms, nil
}

// Demodulate hard-slices symbols back to bits (nearest constellation point;
// for these Gray mappings that is per-dimension threshold slicing).
func Demodulate(m Modulation, syms []complex128) ([]int, error) {
	bps, err := m.BitsPerSymbol()
	if err != nil {
		return nil, err
	}
	bits := make([]int, 0, len(syms)*bps)
	for _, s := range syms {
		switch m {
		case BPSK:
			b := 0
			if real(s) < 0 {
				b = 1
			}
			bits = append(bits, b)
		case QPSK:
			bRe, bIm := 0, 0
			if real(s) < 0 {
				bRe = 1
			}
			if imag(s) < 0 {
				bIm = 1
			}
			bits = append(bits, bRe, bIm)
		case QAM16:
			b1, b0 := pam4Demod(real(s))
			b3, b2 := pam4Demod(imag(s))
			bits = append(bits, b1, b0, b3, b2)
		}
	}
	return bits, nil
}

// Q is the Gaussian tail function Q(x) = P(N(0,1) > x).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// TheoreticalBER returns the exact AWGN bit-error rate at received SNR
// `snr` (symbol energy over total complex-noise power, i.e. Es/N0) under
// hard per-dimension slicing, for all three Gray-mapped constellations.
func TheoreticalBER(m Modulation, snr float64) (float64, error) {
	if snr < 0 {
		snr = 0
	}
	switch m {
	case BPSK:
		// All energy on the real axis; per-dimension noise power 1/2.
		return Q(math.Sqrt(2 * snr)), nil
	case QPSK:
		// Each bit rides one dimension with half the symbol energy.
		return Q(math.Sqrt(snr)), nil
	case QAM16:
		// Exact Gray 4-PAM per dimension (levels ±1, ±3 scaled to unit
		// average symbol energy): with u = sqrt(snr/5),
		//   sign bit:      (1/2)(Q(u) + Q(3u))
		//   magnitude bit: Q(u) + (1/2)Q(3u) − (1/2)Q(5u)
		// averaged over the two bits.
		u := math.Sqrt(snr / 5)
		return 0.75*Q(u) + 0.5*Q(3*u) - 0.25*Q(5*u), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownModulation, int(m))
	}
}

// SimulateBER measures the BER of a direct link at SNR `snr` over nBits
// information bits using hard-decision demodulation. ctx bounds the run;
// cancellation is observed between symbol batches.
func SimulateBER(ctx context.Context, m Modulation, snr float64, nBits int, rng *rand.Rand) (float64, error) {
	if rng == nil {
		return 0, errors.New("phy: nil RNG")
	}
	bps, err := m.BitsPerSymbol()
	if err != nil {
		return 0, err
	}
	if nBits <= 0 {
		return 0, errors.New("phy: nBits must be positive")
	}
	nBits -= nBits % bps
	if nBits == 0 {
		nBits = bps
	}
	bits := randomBits(nBits, rng)
	syms, err := Modulate(m, bits)
	if err != nil {
		return 0, err
	}
	amp := math.Sqrt(snr)
	rx := make([]complex128, len(syms))
	for i, s := range syms {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		rx[i] = complex(amp, 0)*s + awgn(rng)
	}
	// Coherent scaling does not change hard decisions for these symmetric
	// constellations as long as the amplitude is positive, but normalize
	// anyway so slicing thresholds are in constellation units.
	for i := range rx {
		rx[i] /= complex(amp, 0)
	}
	got, err := Demodulate(m, rx)
	if err != nil {
		return 0, err
	}
	return bitErrorRate(bits, got), nil
}

// AFLinkSNR returns the effective end-to-end SNR of the two-hop
// amplify-and-forward path src -> relay -> dst with per-node power p and
// link gains gSrcRelay, gRelayDst: the relay scales its observation to
// power p and retransmits, so
//
//	snr_eff = p·g1·a²·g2 / (a²·g2 + 1),  a² = p / (p·g1 + 1).
func AFLinkSNR(p, gSrcRelay, gRelayDst float64) float64 {
	if p <= 0 || gSrcRelay <= 0 || gRelayDst <= 0 {
		return 0
	}
	a2 := p / (p*gSrcRelay + 1)
	return p * gSrcRelay * a2 * gRelayDst / (a2*gRelayDst + 1)
}

// SimulateAFBER measures the BER of the two-hop AF path at the symbol
// level: the source modulates, the relay amplifies its noisy observation,
// and the destination coherently rescales and hard-slices. The measured
// BER must match TheoreticalBER(m, AFLinkSNR(...)), which tests assert.
// ctx bounds the run; cancellation is observed between symbol batches.
func SimulateAFBER(ctx context.Context, m Modulation, p, gSrcRelay, gRelayDst float64, nBits int, rng *rand.Rand) (float64, error) {
	if rng == nil {
		return 0, errors.New("phy: nil RNG")
	}
	bps, err := m.BitsPerSymbol()
	if err != nil {
		return 0, err
	}
	if nBits <= 0 {
		return 0, errors.New("phy: nBits must be positive")
	}
	if p <= 0 || gSrcRelay <= 0 || gRelayDst <= 0 {
		return 0, errors.New("phy: power and gains must be positive")
	}
	nBits -= nBits % bps
	if nBits == 0 {
		nBits = bps
	}
	bits := randomBits(nBits, rng)
	syms, err := Modulate(m, bits)
	if err != nil {
		return 0, err
	}
	ampTx := math.Sqrt(p)
	h1 := math.Sqrt(gSrcRelay)
	h2 := math.Sqrt(gRelayDst)
	a := math.Sqrt(p / (p*gSrcRelay + 1)) // relay amplification
	rx := make([]complex128, len(syms))
	scale := ampTx * h1 * a * h2 // coherent end-to-end signal amplitude
	for i, s := range syms {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		yr := complex(ampTx*h1, 0)*s + awgn(rng)
		yd := complex(a*h2, 0)*yr + awgn(rng)
		rx[i] = yd / complex(scale, 0)
	}
	got, err := Demodulate(m, rx)
	if err != nil {
		return 0, err
	}
	return bitErrorRate(bits, got), nil
}

func randomBits(n int, rng *rand.Rand) []int {
	bits := make([]int, n)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	return bits
}

func awgn(rng *rand.Rand) complex128 {
	s := math.Sqrt(0.5)
	return complex(s*rng.NormFloat64(), s*rng.NormFloat64())
}

func bitErrorRate(want, got []int) float64 {
	errs := 0
	for i := range want {
		if want[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(want))
}
