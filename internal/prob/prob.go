// Package prob implements finite discrete probability: probability mass
// functions, joint distributions, entropies, and mutual informations. These
// are the primitives behind the general (discrete memoryless) forms of the
// paper's Theorems 2-6, where every bound is a sum of terms
// Δℓ · I(X_S; Y_T | X_Sc, Q).
//
// Conventions: all entropies and informations are in bits. 0·log(0) is 0.
// Distributions are dense float64 slices/matrices indexed by symbol.
package prob

import (
	"errors"
	"fmt"
	"math"
)

// tol is the slack allowed when validating that probabilities sum to one.
const tol = 1e-9

// Errors returned by validation.
var (
	ErrEmpty         = errors.New("prob: empty distribution")
	ErrNegative      = errors.New("prob: negative probability")
	ErrNotNormalized = errors.New("prob: probabilities do not sum to 1")
	ErrShape         = errors.New("prob: dimension mismatch")
)

// PMF is a probability mass function over the alphabet {0, ..., len-1}.
type PMF []float64

// NewUniform returns the uniform PMF over n symbols.
func NewUniform(n int) PMF {
	if n <= 0 {
		return nil
	}
	p := make(PMF, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

// NewPoint returns the degenerate PMF putting all mass on symbol k of an
// n-symbol alphabet.
func NewPoint(n, k int) PMF {
	if n <= 0 || k < 0 || k >= n {
		return nil
	}
	p := make(PMF, n)
	p[k] = 1
	return p
}

// NewBernoulli returns the PMF (1-p, p) over {0, 1}.
func NewBernoulli(p float64) PMF {
	return PMF{1 - p, p}
}

// Validate checks that p is a proper distribution.
func (p PMF) Validate() error {
	if len(p) == 0 {
		return ErrEmpty
	}
	var sum float64
	for i, v := range p {
		if v < -tol {
			return fmt.Errorf("%w: p[%d] = %g", ErrNegative, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("%w: sum = %g", ErrNotNormalized, sum)
	}
	return nil
}

// Clone returns a deep copy of p.
func (p PMF) Clone() PMF {
	out := make(PMF, len(p))
	copy(out, p)
	return out
}

// Normalize scales p in place to sum to one and returns it. A zero vector is
// left unchanged.
func (p PMF) Normalize() PMF {
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Entropy returns H(p) in bits.
func (p PMF) Entropy() float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// Expect returns the expectation of f over p.
func (p PMF) Expect(f func(i int) float64) float64 {
	var e float64
	for i, v := range p {
		if v > 0 {
			e += v * f(i)
		}
	}
	return e
}

// KL returns the Kullback-Leibler divergence D(p || q) in bits. It is +Inf
// when p has mass where q has none, and an error when shapes differ.
func KL(p, q PMF) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: len(p)=%d len(q)=%d", ErrShape, len(p), len(q))
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	return d, nil
}

// Joint is a joint distribution p(x, y) over {0..nx-1} x {0..ny-1}, stored
// row-major: P[x][y].
type Joint struct {
	P [][]float64
}

// NewJoint allocates an nx-by-ny joint distribution of zeros.
func NewJoint(nx, ny int) Joint {
	p := make([][]float64, nx)
	buf := make([]float64, nx*ny)
	for i := range p {
		p[i], buf = buf[:ny:ny], buf[ny:]
	}
	return Joint{P: p}
}

// JointFromInputChannel builds the joint distribution p(x,y) = p(x)·W(y|x)
// from an input PMF and a row-stochastic channel matrix W (W[x][y]).
func JointFromInputChannel(px PMF, w [][]float64) (Joint, error) {
	if len(px) != len(w) {
		return Joint{}, fmt.Errorf("%w: input %d rows, channel %d rows", ErrShape, len(px), len(w))
	}
	if len(w) == 0 || len(w[0]) == 0 {
		return Joint{}, ErrEmpty
	}
	ny := len(w[0])
	j := NewJoint(len(px), ny)
	for x := range w {
		if len(w[x]) != ny {
			return Joint{}, fmt.Errorf("%w: ragged channel row %d", ErrShape, x)
		}
		for y := 0; y < ny; y++ {
			j.P[x][y] = px[x] * w[x][y]
		}
	}
	return j, nil
}

// Nx returns the X-alphabet size.
func (j Joint) Nx() int { return len(j.P) }

// Ny returns the Y-alphabet size.
func (j Joint) Ny() int {
	if len(j.P) == 0 {
		return 0
	}
	return len(j.P[0])
}

// Validate checks that j is a proper joint distribution.
func (j Joint) Validate() error {
	if j.Nx() == 0 || j.Ny() == 0 {
		return ErrEmpty
	}
	var sum float64
	for x, row := range j.P {
		for y, v := range row {
			if v < -tol {
				return fmt.Errorf("%w: p[%d][%d] = %g", ErrNegative, x, y, v)
			}
			sum += v
		}
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("%w: sum = %g", ErrNotNormalized, sum)
	}
	return nil
}

// MarginalX returns p(x) = Σ_y p(x, y).
func (j Joint) MarginalX() PMF {
	out := make(PMF, j.Nx())
	for x, row := range j.P {
		var s float64
		for _, v := range row {
			s += v
		}
		out[x] = s
	}
	return out
}

// MarginalY returns p(y) = Σ_x p(x, y).
func (j Joint) MarginalY() PMF {
	out := make(PMF, j.Ny())
	for _, row := range j.P {
		for y, v := range row {
			out[y] += v
		}
	}
	return out
}

// EntropyJoint returns H(X, Y) in bits.
func (j Joint) EntropyJoint() float64 {
	var h float64
	for _, row := range j.P {
		for _, v := range row {
			if v > 0 {
				h -= v * math.Log2(v)
			}
		}
	}
	return h
}

// MutualInformation returns I(X; Y) = H(X) + H(Y) - H(X,Y) in bits, computed
// directly from the joint for numerical robustness:
// I = Σ p(x,y) log2( p(x,y) / (p(x)p(y)) ).
func (j Joint) MutualInformation() float64 {
	px := j.MarginalX()
	py := j.MarginalY()
	var mi float64
	for x, row := range j.P {
		for y, v := range row {
			if v > 0 {
				mi += v * math.Log2(v/(px[x]*py[y]))
			}
		}
	}
	// Tiny negative values can arise from rounding; information is >= 0.
	if mi < 0 && mi > -1e-12 {
		return 0
	}
	return mi
}

// ConditionalEntropyYgivenX returns H(Y | X) in bits.
func (j Joint) ConditionalEntropyYgivenX() float64 {
	return j.EntropyJoint() - j.MarginalX().Entropy()
}

// ConditionalEntropyXgivenY returns H(X | Y) in bits.
func (j Joint) ConditionalEntropyXgivenY() float64 {
	return j.EntropyJoint() - j.MarginalY().Entropy()
}

// Transpose returns the joint with the roles of X and Y swapped.
func (j Joint) Transpose() Joint {
	out := NewJoint(j.Ny(), j.Nx())
	for x, row := range j.P {
		for y, v := range row {
			out.P[y][x] = v
		}
	}
	return out
}

// Joint3 is a joint distribution p(x, y, z) over a triple of finite
// alphabets, stored as P[x][y][z]. It supports the conditional mutual
// information I(X; Y | Z) that appears throughout the paper's bounds.
type Joint3 struct {
	P [][][]float64
}

// NewJoint3 allocates an nx-by-ny-by-nz joint distribution of zeros.
func NewJoint3(nx, ny, nz int) Joint3 {
	p := make([][][]float64, nx)
	for x := range p {
		p[x] = make([][]float64, ny)
		buf := make([]float64, ny*nz)
		for y := range p[x] {
			p[x][y], buf = buf[:nz:nz], buf[nz:]
		}
	}
	return Joint3{P: p}
}

// Dims returns the three alphabet sizes.
func (j Joint3) Dims() (nx, ny, nz int) {
	nx = len(j.P)
	if nx == 0 {
		return 0, 0, 0
	}
	ny = len(j.P[0])
	if ny == 0 {
		return nx, 0, 0
	}
	return nx, ny, len(j.P[0][0])
}

// Validate checks that j is a proper distribution.
func (j Joint3) Validate() error {
	nx, ny, nz := j.Dims()
	if nx == 0 || ny == 0 || nz == 0 {
		return ErrEmpty
	}
	var sum float64
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				v := j.P[x][y][z]
				if v < -tol {
					return fmt.Errorf("%w: p[%d][%d][%d] = %g", ErrNegative, x, y, z, v)
				}
				sum += v
			}
		}
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("%w: sum = %g", ErrNotNormalized, sum)
	}
	return nil
}

// MarginalZ returns p(z).
func (j Joint3) MarginalZ() PMF {
	nx, ny, nz := j.Dims()
	out := make(PMF, nz)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				out[z] += j.P[x][y][z]
			}
		}
	}
	return out
}

// MarginalXY returns the joint distribution of (X, Y) with Z summed out.
func (j Joint3) MarginalXY() Joint {
	nx, ny, nz := j.Dims()
	out := NewJoint(nx, ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				out.P[x][y] += j.P[x][y][z]
			}
		}
	}
	return out
}

// ConditionalMI returns I(X; Y | Z) in bits:
// Σ_z p(z) · I(X; Y | Z=z).
func (j Joint3) ConditionalMI() float64 {
	nx, ny, nz := j.Dims()
	pz := j.MarginalZ()
	var mi float64
	for z := 0; z < nz; z++ {
		if pz[z] <= 0 {
			continue
		}
		slice := NewJoint(nx, ny)
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				slice.P[x][y] = j.P[x][y][z] / pz[z]
			}
		}
		mi += pz[z] * slice.MutualInformation()
	}
	return mi
}

// ProductPMF returns the product distribution p(x)·q(y) as a Joint.
func ProductPMF(p, q PMF) Joint {
	j := NewJoint(len(p), len(q))
	for x := range p {
		for y := range q {
			j.P[x][y] = p[x] * q[y]
		}
	}
	return j
}
