package prob

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// TestWordBernoulliEdgeCases pins the degenerate samplers: p <= 0 (and NaN)
// always return the empty mask, p >= 1 the full mask, and neither consumes
// randomness — the draw count is part of the canonical stream contract.
func TestWordBernoulliEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0, -0.5, math.NaN()} {
		g := NewWordBernoulli(p)
		if got := g.Mask(rng); got != 0 {
			t.Errorf("NewWordBernoulli(%v).Mask() = %#x, want 0", p, got)
		}
		if g.P() != 0 {
			t.Errorf("NewWordBernoulli(%v).P() = %v, want 0", p, g.P())
		}
	}
	for _, p := range []float64{1, 1.5} {
		g := NewWordBernoulli(p)
		if got := g.Mask(rng); got != ^uint64(0) {
			t.Errorf("NewWordBernoulli(%v).Mask() = %#x, want all ones", p, got)
		}
		if g.P() != 1 {
			t.Errorf("NewWordBernoulli(%v).P() = %v, want 1", p, g.P())
		}
	}
	// No draws consumed above: the stream position must be untouched.
	want := rand.New(rand.NewSource(1)).Uint64()
	if got := rng.Uint64(); got != want {
		t.Errorf("degenerate samplers consumed randomness: next draw %#x, want %#x", got, want)
	}
}

// TestWordBernoulliDyadicExact pins the refinement against hand-computable
// dyadic probabilities: p = 1/2 is exactly the complement of one Uint64
// draw, and p = 1/4 the NOR of two.
func TestWordBernoulliDyadicExact(t *testing.T) {
	u1 := rand.New(rand.NewSource(9)).Uint64()
	if got, want := NewWordBernoulli(0.5).Mask(rand.New(rand.NewSource(9))), ^u1; got != want {
		t.Errorf("p=1/2 mask = %#x, want ^first draw %#x", got, want)
	}
	ref := rand.New(rand.NewSource(9))
	a, b := ref.Uint64(), ref.Uint64()
	if got, want := NewWordBernoulli(0.25).Mask(rand.New(rand.NewSource(9))), ^a & ^b; got != want {
		t.Errorf("p=1/4 mask = %#x, want NOR of two draws %#x", got, want)
	}
}

// TestWordBernoulliP pins the fixed-point round trip to float64 accuracy.
func TestWordBernoulliP(t *testing.T) {
	for _, p := range []float64{0.1, 0.2, 0.35, 0.5, 0.6, 0.9, 1e-6, 1 - 1e-9} {
		if got := NewWordBernoulli(p).P(); math.Abs(got-p) > 1e-12 {
			t.Errorf("P() round trip %v -> %v", p, got)
		}
	}
}

// TestWordBernoulliMarginalsVsScalarOracle is the seeded two-sample check
// against the scalar path the masks replaced: per-lane frequencies from the
// word sampler and from rng.Float64() < p must agree with each other and
// with p within 4 standard errors. Seeds are fixed, so this is
// deterministic — the margin documents expected agreement, not flakiness.
func TestWordBernoulliMarginalsVsScalarOracle(t *testing.T) {
	const words = 4000 // 256k lanes per operating point
	for _, p := range []float64{0.1, 0.2, 0.35, 0.5, 0.6, 0.9} {
		g := NewWordBernoulli(p)
		rng := rand.New(rand.NewSource(int64(1000 * p)))
		ones := 0
		for i := 0; i < words; i++ {
			ones += bits.OnesCount64(g.Mask(rng))
		}
		oracle := rand.New(rand.NewSource(int64(1000*p) + 7))
		scalarOnes := 0
		for i := 0; i < words*64; i++ {
			if oracle.Float64() < p {
				scalarOnes++
			}
		}
		n := float64(words * 64)
		se := math.Sqrt(p * (1 - p) / n)
		if f := float64(ones) / n; math.Abs(f-p) > 4*se {
			t.Errorf("p=%v: word marginal %.5f off by more than 4 SE (%.5f)", p, f, 4*se)
		}
		if f := float64(scalarOnes) / n; math.Abs(f-p) > 4*se {
			t.Errorf("p=%v: scalar oracle marginal %.5f off by more than 4 SE — oracle broken?", p, f)
		}
		if diff := math.Abs(float64(ones)-float64(scalarOnes)) / n; diff > 4*math.Sqrt2*se {
			t.Errorf("p=%v: word vs scalar marginals differ by %.5f (> 4 combined SE)", p, diff)
		}
	}
}

// TestWordBernoulliPerLaneChiSquare checks lane uniformity: the 64 per-lane
// success counts over N masks form a chi-square statistic with 63 degrees
// of freedom; a lane bias (e.g. the refinement favouring low bits) would
// blow it up. The bound is mean + 5·sd of chi2(63), far beyond any sane
// quantile, and the seed is fixed.
func TestWordBernoulliPerLaneChiSquare(t *testing.T) {
	const (
		p     = 0.3
		masks = 20000
	)
	g := NewWordBernoulli(p)
	rng := rand.New(rand.NewSource(42))
	var lane [64]int
	for i := 0; i < masks; i++ {
		m := g.Mask(rng)
		for ; m != 0; m &= m - 1 {
			lane[bits.TrailingZeros64(m)]++
		}
	}
	var chi2 float64
	for _, c := range lane {
		d := float64(c) - p*masks
		chi2 += d * d / (p * masks * (1 - p))
	}
	// chi2(63): mean 63, variance 126.
	if limit := 63 + 5*math.Sqrt(126); chi2 > limit {
		t.Errorf("per-lane chi-square %.1f exceeds %.1f: lanes are biased", chi2, limit)
	}
}

// TestWordBernoulliLanePairIndependence checks pairwise independence of
// adjacent lanes within a mask and of the same lane across consecutive
// masks: the four cell counts of each pair must match the product
// distribution by chi-square with 3 degrees of freedom (bound mean + 5·sd,
// fixed seed).
func TestWordBernoulliLanePairIndependence(t *testing.T) {
	const (
		p     = 0.4
		masks = 20000
	)
	g := NewWordBernoulli(p)
	rng := rand.New(rand.NewSource(13))
	var adj [4]int    // (lane j, lane j+1) for even j, within one mask
	var serial [4]int // (lane 0 of mask i, lane 0 of mask i+1)
	prev := -1
	for i := 0; i < masks; i++ {
		m := g.Mask(rng)
		for j := 0; j < 64; j += 2 {
			adj[int(m>>uint(j)&1)<<1|int(m>>uint(j+1)&1)]++
		}
		b0 := int(m & 1)
		if prev >= 0 {
			serial[prev<<1|b0]++
		}
		prev = b0
	}
	check := func(name string, cells [4]int, n int) {
		t.Helper()
		exp := [4]float64{
			(1 - p) * (1 - p) * float64(n), (1 - p) * p * float64(n),
			p * (1 - p) * float64(n), p * p * float64(n),
		}
		var chi2 float64
		for i, c := range cells {
			d := float64(c) - exp[i]
			chi2 += d * d / exp[i]
		}
		if limit := 3 + 5*math.Sqrt(6.0); chi2 > limit {
			t.Errorf("%s chi-square %.1f exceeds %.1f: lanes are correlated", name, chi2, limit)
		}
	}
	check("adjacent-lane", adj, masks*32)
	check("serial", serial, masks-1)
}

// TestWordBernoulliZeroAlloc gates the mask fast path at 0 allocations —
// the simulators draw it inside their 0-allocs/block kernels.
func TestWordBernoulliZeroAlloc(t *testing.T) {
	g := NewWordBernoulli(0.2)
	rng := rand.New(rand.NewSource(3))
	var sink uint64
	if n := testing.AllocsPerRun(1000, func() { sink ^= g.Mask(rng) }); n != 0 {
		t.Errorf("Mask allocates %.2f/op, want 0", n)
	}
	_ = sink
}
