package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bicoop/internal/xmath"
)

func randomPMF(r *rand.Rand, n int) PMF {
	p := make(PMF, n)
	for i := range p {
		p[i] = r.Float64()
	}
	return p.Normalize()
}

func randomJoint(r *rand.Rand, nx, ny int) Joint {
	j := NewJoint(nx, ny)
	var sum float64
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			v := r.Float64()
			j.P[x][y] = v
			sum += v
		}
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			j.P[x][y] /= sum
		}
	}
	return j
}

func TestNewUniform(t *testing.T) {
	tests := []struct {
		name string
		n    int
		ok   bool
	}{
		{name: "binary", n: 2, ok: true},
		{name: "large", n: 17, ok: true},
		{name: "zero", n: 0, ok: false},
		{name: "negative", n: -3, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := NewUniform(tt.n)
			if !tt.ok {
				if p != nil {
					t.Fatalf("NewUniform(%d) = %v, want nil", tt.n, p)
				}
				return
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !xmath.ApproxEqual(p.Entropy(), math.Log2(float64(tt.n)), 1e-12) {
				t.Errorf("Entropy = %v, want log2(%d)", p.Entropy(), tt.n)
			}
		})
	}
}

func TestNewPoint(t *testing.T) {
	p := NewPoint(5, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Entropy() != 0 {
		t.Errorf("point mass entropy = %v, want 0", p.Entropy())
	}
	if NewPoint(3, 5) != nil {
		t.Error("out-of-range point should be nil")
	}
	if NewPoint(0, 0) != nil {
		t.Error("empty alphabet should be nil")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		p    PMF
		ok   bool
	}{
		{name: "empty", p: PMF{}, ok: false},
		{name: "negative", p: PMF{-0.5, 1.5}, ok: false},
		{name: "unnormalized", p: PMF{0.2, 0.2}, ok: false},
		{name: "good", p: PMF{0.25, 0.75}, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestEntropyBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		p := randomPMF(r, n)
		h := p.Entropy()
		if h < 0 {
			t.Fatalf("negative entropy %v for %v", h, p)
		}
		if h > math.Log2(float64(n))+1e-9 {
			t.Fatalf("entropy %v above log2(%d) for %v", h, n, p)
		}
	}
}

func TestBernoulliEntropy(t *testing.T) {
	prop := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		return xmath.ApproxEqual(NewBernoulli(p).Entropy(), xmath.EntropyBinary(p), 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKL(t *testing.T) {
	t.Run("self is zero", func(t *testing.T) {
		p := PMF{0.3, 0.7}
		d, err := KL(p, p)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(d, 0, 1e-12) {
			t.Errorf("KL(p,p) = %v, want 0", d)
		}
	})
	t.Run("nonnegative", func(t *testing.T) {
		r := rand.New(rand.NewSource(2))
		for trial := 0; trial < 100; trial++ {
			p, q := randomPMF(r, 4), randomPMF(r, 4)
			d, err := KL(p, q)
			if err != nil {
				t.Fatal(err)
			}
			if d < -1e-12 {
				t.Fatalf("KL = %v < 0 for p=%v q=%v", d, p, q)
			}
		}
	})
	t.Run("infinite on support mismatch", func(t *testing.T) {
		d, err := KL(PMF{0.5, 0.5}, PMF{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(d, 1) {
			t.Errorf("KL = %v, want +Inf", d)
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		if _, err := KL(PMF{1}, PMF{0.5, 0.5}); err == nil {
			t.Error("want shape error")
		}
	})
}

func TestJointMarginals(t *testing.T) {
	j := Joint{P: [][]float64{
		{0.1, 0.2},
		{0.3, 0.4},
	}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	px := j.MarginalX()
	py := j.MarginalY()
	wantX := PMF{0.3, 0.7}
	wantY := PMF{0.4, 0.6}
	for i := range px {
		if !xmath.ApproxEqual(px[i], wantX[i], 1e-12) {
			t.Errorf("px[%d] = %v, want %v", i, px[i], wantX[i])
		}
	}
	for i := range py {
		if !xmath.ApproxEqual(py[i], wantY[i], 1e-12) {
			t.Errorf("py[%d] = %v, want %v", i, py[i], wantY[i])
		}
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	p := PMF{0.2, 0.8}
	q := PMF{0.5, 0.25, 0.25}
	j := ProductPMF(p, q)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if mi := j.MutualInformation(); !xmath.ApproxEqual(mi, 0, 1e-12) {
		t.Errorf("MI of product = %v, want 0", mi)
	}
}

func TestMutualInformationPerfectCorrelation(t *testing.T) {
	// X = Y uniform over 4 symbols: I(X;Y) = H(X) = 2 bits.
	j := NewJoint(4, 4)
	for i := 0; i < 4; i++ {
		j.P[i][i] = 0.25
	}
	if mi := j.MutualInformation(); !xmath.ApproxEqual(mi, 2, 1e-12) {
		t.Errorf("MI = %v, want 2", mi)
	}
}

func TestMutualInformationBSC(t *testing.T) {
	// Uniform input through BSC(eps): I = 1 - h(eps).
	tests := []struct {
		name string
		eps  float64
	}{
		{name: "clean", eps: 0},
		{name: "noisy", eps: 0.11},
		{name: "useless", eps: 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := [][]float64{
				{1 - tt.eps, tt.eps},
				{tt.eps, 1 - tt.eps},
			}
			j, err := JointFromInputChannel(NewUniform(2), w)
			if err != nil {
				t.Fatal(err)
			}
			want := 1 - xmath.EntropyBinary(tt.eps)
			if mi := j.MutualInformation(); !xmath.ApproxEqual(mi, want, 1e-12) {
				t.Errorf("MI = %v, want %v", mi, want)
			}
		})
	}
}

func TestMutualInformationProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		j := randomJoint(r, 2+r.Intn(4), 2+r.Intn(4))
		mi := j.MutualInformation()
		if mi < 0 {
			t.Fatalf("negative MI %v", mi)
		}
		// Symmetry: I(X;Y) == I(Y;X).
		if mt := j.Transpose().MutualInformation(); !xmath.ApproxEqual(mi, mt, 1e-9) {
			t.Fatalf("MI not symmetric: %v vs %v", mi, mt)
		}
		// I(X;Y) <= min(H(X), H(Y)).
		hx, hy := j.MarginalX().Entropy(), j.MarginalY().Entropy()
		if mi > math.Min(hx, hy)+1e-9 {
			t.Fatalf("MI %v exceeds min(H(X)=%v, H(Y)=%v)", mi, hx, hy)
		}
		// Identity: I = H(X) + H(Y) - H(X,Y).
		if alt := hx + hy - j.EntropyJoint(); !xmath.ApproxEqual(mi, alt, 1e-9) {
			t.Fatalf("MI identity broken: %v vs %v", mi, alt)
		}
	}
}

func TestConditionalEntropy(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		j := randomJoint(r, 3, 4)
		// Chain rule: H(X,Y) = H(X) + H(Y|X).
		lhs := j.EntropyJoint()
		rhs := j.MarginalX().Entropy() + j.ConditionalEntropyYgivenX()
		if !xmath.ApproxEqual(lhs, rhs, 1e-9) {
			t.Fatalf("chain rule broken: %v vs %v", lhs, rhs)
		}
		// Conditioning reduces entropy.
		if j.ConditionalEntropyYgivenX() > j.MarginalY().Entropy()+1e-9 {
			t.Fatal("conditioning increased entropy")
		}
	}
}

func TestJointFromInputChannelErrors(t *testing.T) {
	if _, err := JointFromInputChannel(PMF{1}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}); err == nil {
		t.Error("want shape error for mismatched rows")
	}
	if _, err := JointFromInputChannel(PMF{0.5, 0.5}, [][]float64{{0.5, 0.5}, {1}}); err == nil {
		t.Error("want shape error for ragged channel")
	}
	if _, err := JointFromInputChannel(PMF{}, [][]float64{}); err == nil {
		t.Error("want error for empty")
	}
}

func TestJoint3ConditionalMI(t *testing.T) {
	t.Run("z independent of correlated xy", func(t *testing.T) {
		// (X,Y) perfectly correlated uniform bits, Z independent uniform bit:
		// I(X;Y|Z) = 1.
		j := NewJoint3(2, 2, 2)
		for x := 0; x < 2; x++ {
			for z := 0; z < 2; z++ {
				j.P[x][x][z] = 0.25
			}
		}
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if mi := j.ConditionalMI(); !xmath.ApproxEqual(mi, 1, 1e-12) {
			t.Errorf("I(X;Y|Z) = %v, want 1", mi)
		}
	})
	t.Run("x y conditionally independent given z", func(t *testing.T) {
		// X and Y are independent copies given Z: I(X;Y|Z) = 0 even though
		// marginally X and Y are correlated through Z.
		j := NewJoint3(2, 2, 2)
		for z := 0; z < 2; z++ {
			// Given Z=z, X and Y are iid Bernoulli biased toward z.
			p := 0.9
			if z == 1 {
				p = 0.1
			}
			px := []float64{p, 1 - p}
			for x := 0; x < 2; x++ {
				for y := 0; y < 2; y++ {
					j.P[x][y][z] = 0.5 * px[x] * px[y]
				}
			}
		}
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if mi := j.ConditionalMI(); !xmath.ApproxEqual(mi, 0, 1e-12) {
			t.Errorf("I(X;Y|Z) = %v, want 0", mi)
		}
		// Sanity: marginally X and Y must be dependent.
		if mXY := j.MarginalXY().MutualInformation(); mXY <= 0.1 {
			t.Errorf("marginal I(X;Y) = %v, expected visibly positive", mXY)
		}
	})
}

func TestJoint3Validate(t *testing.T) {
	j := NewJoint3(2, 2, 2)
	if err := j.Validate(); err == nil {
		t.Error("all-zero joint should fail validation")
	}
	j.P[0][0][0] = 1
	if err := j.Validate(); err != nil {
		t.Errorf("point mass should validate: %v", err)
	}
	empty := Joint3{}
	if err := empty.Validate(); err == nil {
		t.Error("empty joint should fail validation")
	}
}

func TestNormalize(t *testing.T) {
	p := PMF{2, 6}
	p.Normalize()
	if !xmath.ApproxEqual(p[0], 0.25, 1e-12) || !xmath.ApproxEqual(p[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v, want [0.25 0.75]", p)
	}
	z := PMF{0, 0}
	z.Normalize() // must not divide by zero
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize of zero vector changed it: %v", z)
	}
}

func TestClone(t *testing.T) {
	p := PMF{0.5, 0.5}
	q := p.Clone()
	q[0] = 0.1
	if p[0] != 0.5 {
		t.Error("Clone aliased underlying array")
	}
}

func TestExpect(t *testing.T) {
	p := PMF{0.25, 0.25, 0.5}
	got := p.Expect(func(i int) float64 { return float64(i) })
	if !xmath.ApproxEqual(got, 1.25, 1e-12) {
		t.Errorf("Expect = %v, want 1.25", got)
	}
}
