package prob

import (
	"math"
	"math/rand"
)

// WordBernoulli draws 64 independent Bernoulli(p) bits at a time as one
// uint64 mask — the word-parallel replacement for 64 separate
// rng.Float64() < p comparisons in the bit-true simulators' erasure
// sampling. The success probability is held in 64-bit fixed point
// (weight 2^-1 at the MSB), eleven bits finer than a Float64 draw can
// resolve, so the per-lane marginal matches the scalar oracle exactly at
// float64 precision.
//
// Sampling uses bit-sliced binary refinement: round i draws one Uint64
// whose lane bits are the i-th binary digit of each lane's virtual uniform
// U_j, and compares them against the i-th digit of p. A lane is decided the
// first round its digit differs from p's (U_j < p iff the lane bit is 0
// where p's is 1), so each round resolves half the undecided lanes in
// expectation and a full 64-lane mask costs ~log2(64)+2 ≈ 8 Uint64 draws —
// and exactly ceil(-log2(ulp)) draws in the worst case. Dyadic p is even
// cheaper: the refinement stops when p has no digits left (p = 1/2 is a
// single draw). The draw count depends only on p's digits and the drawn
// words, so a fixed seed yields a fixed mask stream.
//
// The zero value is Bernoulli(0): Mask always returns 0.
type WordBernoulli struct {
	// bits is p in 64-bit fixed point: p ≈ bits/2^64, MSB first.
	bits uint64
	// full marks p == 1, which fixed point cannot represent.
	full bool
}

// NewWordBernoulli returns a sampler with success probability p. Following
// the package's lenient-constructor convention (NewUniform, NewPoint), p is
// clamped into [0, 1]; NaN clamps to 0.
func NewWordBernoulli(p float64) WordBernoulli {
	if math.IsNaN(p) || p <= 0 {
		return WordBernoulli{}
	}
	if p >= 1 {
		return WordBernoulli{full: true}
	}
	// Exact binary scaling: p < 1 keeps p * 2^64 below 2^64, and a float64
	// product by a power of two loses no mantissa bits. Truncation to
	// uint64 biases the marginal by less than 2^-64.
	return WordBernoulli{bits: uint64(p * 0x1p64)}
}

// P returns the sampler's success probability.
func (g WordBernoulli) P() float64 {
	if g.full {
		return 1
	}
	return float64(g.bits) * 0x1p-64
}

// Mask draws the next 64-lane word: bit j is 1 with probability p,
// independent across lanes and across calls. The caller owns tail masking
// when fewer than 64 lanes are live.
//
//bicoop:noalloc
func (g WordBernoulli) Mask(r *rand.Rand) uint64 {
	if g.full {
		return ^uint64(0)
	}
	rest := g.bits
	if rest == 0 {
		return 0
	}
	var ones uint64
	undecided := ^uint64(0)
	for {
		u := r.Uint64()
		if rest&(1<<63) != 0 {
			// p's digit is 1: lanes whose digit is 0 decide U < p.
			ones |= undecided &^ u
			undecided &= u
		} else {
			// p's digit is 0: lanes whose digit is 1 decide U >= p.
			undecided &^= u
		}
		rest <<= 1
		if undecided == 0 || rest == 0 {
			// rest == 0: every remaining digit of p is 0, so no still-tied
			// lane can end below p — they all decide 0.
			return ones
		}
	}
}
