// Package gf2 implements linear algebra over GF(2) with 64-bit packed rows:
// matrices, Gaussian elimination, rank, and linear-system solving. It backs
// the bit-true simulation of the paper's achievability arguments, where
// random coding and random binning are realized as random linear maps and
// maximum-likelihood decoding over erasure links reduces to solving a linear
// system.
//
// The hot-path entry points are the in-place ones: Matrix.Rerandomize redraws
// a generator without allocating, Solver.SolveInto eliminates in a persistent
// word-level tableau, and the Vector methods Randomize, CopyPrefix, XorWith
// and the Dot function operate on whole 64-bit words. The original
// allocate-per-call API (RandomMatrix, Matrix.Solve, DecodeEquations, ...)
// remains as thin wrappers.
//
// The package directive below puts the whole package under the noalloc
// analyzer: every function is held to the 0-allocs contract unless its doc
// comment ends with an audited //bicoop:allow noalloc waiver (the cold
// constructors and scratch growers).
//
//bicoop:noalloc
package gf2

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// Errors returned by this package.
var (
	ErrShape           = errors.New("gf2: dimension mismatch")
	ErrInconsistent    = errors.New("gf2: inconsistent linear system")
	ErrUnderdetermined = errors.New("gf2: underdetermined linear system")
)

// wordsFor returns the number of 64-bit words packing n bits.
func wordsFor(n int) int { return (n + 63) / 64 }

// Vector is a packed bit vector of fixed logical length. The words beyond
// the logical length are kept zero (the invariant every word-level operation
// in this package relies on).
type Vector struct {
	n     int
	words []uint64
}

// NewVector returns an all-zero vector of n bits.
//
//bicoop:allow noalloc — cold constructor; hot paths reuse via the In-place API
func NewVector(n int) Vector {
	return Vector{n: n, words: make([]uint64, wordsFor(n))}
}

// RandomVector returns a uniformly random n-bit vector drawn from r.
func RandomVector(n int, r *rand.Rand) Vector {
	v := NewVector(n)
	v.Randomize(r)
	return v
}

// Randomize refills v with uniformly random bits drawn from r, in place.
// It consumes exactly one Uint64 per backing word, like RandomVector.
//
//bicoop:noalloc
func (v *Vector) Randomize(r *rand.Rand) {
	for i := range v.words {
		v.words[i] = r.Uint64()
	}
	v.maskTail()
}

// VectorFromBits builds a vector from a bool slice.
func VectorFromBits(bits []bool) Vector {
	v := NewVector(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, 1)
		}
	}
	return v
}

func (v *Vector) maskTail() {
	if v.n%64 != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (uint64(1) << (v.n % 64)) - 1
	}
}

// Len returns the logical bit length.
func (v Vector) Len() int { return v.n }

// Bit returns bit i as 0 or 1.
func (v Vector) Bit(i int) int {
	return int(v.words[i/64] >> (i % 64) & 1)
}

// Set sets bit i to b (0 or 1).
func (v *Vector) Set(i, b int) {
	if b != 0 {
		v.words[i/64] |= 1 << (i % 64)
	} else {
		v.words[i/64] &^= 1 << (i % 64)
	}
}

// Xor returns v ⊕ w. Lengths must match.
func (v Vector) Xor(w Vector) (Vector, error) {
	if v.n != w.n {
		return Vector{}, fmt.Errorf("%w: %d vs %d bits", ErrShape, v.n, w.n)
	}
	out := NewVector(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] ^ w.words[i]
	}
	return out, nil
}

// XorWith adds w into v in place (v ^= w), zero-extending w when it is
// shorter than v. It is the allocation-free companion of Xor for hot loops
// (stripping known side information, accumulating a padded XOR).
//
//bicoop:noalloc
func (v *Vector) XorWith(w Vector) error {
	if w.n > v.n {
		return fmt.Errorf("%w: xor of %d bits into %d", ErrShape, w.n, v.n)
	}
	for i := range w.words {
		v.words[i] ^= w.words[i]
	}
	return nil
}

// CopyPrefix fills v with the first v.Len() bits of src, zero-padding when
// src is shorter than v. It is the word-level primitive behind both row
// truncation (v shorter than src) and zero-padded embedding (v longer).
//
//bicoop:noalloc
func (v *Vector) CopyPrefix(src Vector) {
	nw := len(src.words)
	if len(v.words) < nw {
		nw = len(v.words)
	}
	copy(v.words[:nw], src.words[:nw])
	for i := nw; i < len(v.words); i++ {
		v.words[i] = 0
	}
	v.maskTail()
}

// Dot returns the GF(2) inner product of the overlapping prefix of a and b
// (bits past the shorter vector's length contribute nothing). Word-level:
// XOR of per-word ANDs, then one popcount parity.
//
//bicoop:noalloc
func Dot(a, b Vector) int {
	nw := len(a.words)
	if len(b.words) < nw {
		nw = len(b.words)
	}
	var acc uint64
	for i := 0; i < nw; i++ {
		acc ^= a.words[i] & b.words[i]
	}
	return bits.OnesCount64(acc) & 1
}

// Equal reports bitwise equality.
func (v Vector) Equal(w Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Weight returns the Hamming weight.
func (v Vector) Weight() int {
	var c int
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
//
//bicoop:allow noalloc — cold copy; the kernels never clone
func (v Vector) Clone() Vector {
	out := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(out.words, v.words)
	return out
}

// String renders the vector as a bit string, LSB first.
//
//bicoop:allow noalloc — diagnostic rendering, never on the hot path
func (v Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		buf[i] = byte('0' + v.Bit(i))
	}
	return string(buf)
}

// Matrix is a dense GF(2) matrix backed by a single flat []uint64, packed
// row-major with a fixed word stride per row. The flat backing is what makes
// in-place re-randomization and row views allocation-free.
type Matrix struct {
	rows, cols int
	stride     int // words per row
	words      []uint64
}

// NewMatrix returns an all-zero rows-by-cols matrix.
//
//bicoop:allow noalloc — cold constructor; hot paths reuse via Rerandomize
func NewMatrix(rows, cols int) Matrix {
	s := wordsFor(cols)
	return Matrix{rows: rows, cols: cols, stride: s, words: make([]uint64, rows*s)}
}

// RandomMatrix returns a uniformly random rows-by-cols matrix.
func RandomMatrix(rows, cols int, r *rand.Rand) Matrix {
	m := NewMatrix(rows, cols)
	m.Rerandomize(r)
	return m
}

// Rerandomize redraws every entry uniformly at random, in place: no
// allocation, same row-major draw order (one Uint64 per word) as
// RandomMatrix. This is how the bit-true simulator draws its three fresh
// codes per block without reallocating the generators. Row views and
// Received observations taken from the matrix before the redraw alias the
// new contents afterwards.
//
//bicoop:noalloc
func (m *Matrix) Rerandomize(r *rand.Rand) {
	for i := 0; i < m.rows; i++ {
		row := m.RowView(i)
		row.Randomize(r)
	}
}

// rowWords returns row i's backing words.
func (m Matrix) rowWords(i int) []uint64 {
	return m.words[i*m.stride : (i+1)*m.stride]
}

// Identity returns the n-by-n identity.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// At returns entry (i, j).
func (m Matrix) At(i, j int) int {
	return int(m.words[i*m.stride+j/64] >> (j % 64) & 1)
}

// Set sets entry (i, j).
func (m *Matrix) Set(i, j, b int) {
	if b != 0 {
		m.words[i*m.stride+j/64] |= 1 << (j % 64)
	} else {
		m.words[i*m.stride+j/64] &^= 1 << (j % 64)
	}
}

// Row returns a copy of row i.
func (m Matrix) Row(i int) Vector { return m.RowView(i).Clone() }

// RowView returns row i sharing the matrix's storage. The caller must treat
// it as read-only; it is the allocation-free companion of Row for hot loops
// that only read rows (e.g. accumulating decode equations). A later
// AppendRow may move the backing array, so views should not outlive
// structural changes to the matrix.
func (m Matrix) RowView(i int) Vector {
	return Vector{n: m.cols, words: m.rowWords(i)}
}

// AppendRow appends a copy of row v; v must have m.cols bits.
func (m *Matrix) AppendRow(v Vector) error {
	if v.n != m.cols {
		return fmt.Errorf("%w: row has %d bits, matrix has %d cols", ErrShape, v.n, m.cols)
	}
	m.words = append(m.words, v.words...)
	m.rows++
	return nil
}

// Clone returns a deep copy.
//
//bicoop:allow noalloc — cold copy; the kernels never clone
func (m Matrix) Clone() Matrix {
	out := Matrix{rows: m.rows, cols: m.cols, stride: m.stride, words: make([]uint64, len(m.words))}
	copy(out.words, m.words)
	return out
}

// MulVec returns m·x over GF(2); x must have m.cols bits. The result has
// m.rows bits, one parity per row.
func (m Matrix) MulVec(x Vector) (Vector, error) {
	out := NewVector(m.rows)
	if err := m.MulVecInto(&out, x); err != nil {
		return Vector{}, err
	}
	return out, nil
}

// MulVecInto computes m·x into dst without allocating; dst must have m.rows
// bits and x must have m.cols bits.
//
//bicoop:noalloc
func (m Matrix) MulVecInto(dst *Vector, x Vector) error {
	if x.n != m.cols {
		return fmt.Errorf("%w: vector %d bits, matrix %d cols", ErrShape, x.n, m.cols)
	}
	if dst.n != m.rows {
		return fmt.Errorf("%w: dst %d bits, matrix %d rows", ErrShape, dst.n, m.rows)
	}
	for i := range dst.words {
		dst.words[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.rowWords(i)
		var acc uint64
		for w, xw := range x.words {
			acc ^= row[w] & xw
		}
		dst.words[i/64] |= uint64(bits.OnesCount64(acc)&1) << (i % 64)
	}
	return nil
}

// Rank returns the GF(2) rank of the matrix.
func (m Matrix) Rank() int {
	var s Solver
	return s.Rank(m)
}

// Solve finds x with m·x = b (b has m.rows bits). It returns
// ErrInconsistent when no solution exists and ErrUnderdetermined when the
// solution is not unique; the bit-true decoder treats both as decoding
// failures. Solve allocates per call; hot loops should hold a Solver and
// use SolveInto.
func (m Matrix) Solve(b Vector) (Vector, error) {
	if b.n != m.rows {
		return Vector{}, fmt.Errorf("%w: rhs %d bits, matrix %d rows", ErrShape, b.n, m.rows)
	}
	var s Solver
	x := NewVector(m.cols)
	if err := s.SolveMatrixInto(&x, m, b); err != nil {
		return Vector{}, err
	}
	return x, nil
}

// Code is a random linear block code: k message bits mapped to n coded bits
// by x = G·w with a dense random generator G (n-by-k). Random linear codes
// achieve capacity on erasure channels, which is exactly the guarantee the
// paper's random-coding arguments need from this substrate.
type Code struct {
	// G is the n-by-k generator matrix.
	G Matrix
}

// NewCode draws a random (n, k) code from r.
func NewCode(n, k int, r *rand.Rand) Code {
	return Code{G: RandomMatrix(n, k, r)}
}

// Rerandomize redraws the generator in place (see Matrix.Rerandomize).
func (c *Code) Rerandomize(r *rand.Rand) { c.G.Rerandomize(r) }

// N returns the block length.
func (c Code) N() int { return c.G.rows }

// K returns the message length.
func (c Code) K() int { return c.G.cols }

// Encode maps a k-bit message to its n-bit codeword.
func (c Code) Encode(w Vector) (Vector, error) {
	return c.G.MulVec(w)
}

// EncodeInto maps a k-bit message to its n-bit codeword in dst without
// allocating; dst must have N() bits.
//
//bicoop:noalloc
func (c Code) EncodeInto(dst *Vector, w Vector) error {
	return c.G.MulVecInto(dst, w)
}

// Received is a partially erased codeword observation: for every surviving
// position i, the pair (row G[i], bit x[i]) is one linear equation about w.
type Received struct {
	Rows []Vector // generator rows that survived
	Bits []int    // corresponding received bits
}

// Observe applies an erasure pattern to a codeword: erased[i] true means
// position i was lost. The surviving equations are returned. The rows are
// read-only views of the generator (RowView), not copies: the decoder only
// reads them, and they stay valid until the generator is mutated — a later
// Rerandomize or AppendRow invalidates an outstanding Received.
func (c Code) Observe(x Vector, erased []bool) (Received, error) {
	if x.n != c.N() || len(erased) != c.N() {
		return Received{}, fmt.Errorf("%w: codeword %d bits, erasures %d, n %d", ErrShape, x.n, len(erased), c.N())
	}
	var rec Received
	for i := 0; i < c.N(); i++ {
		if !erased[i] {
			rec.Rows = append(rec.Rows, c.G.RowView(i))
			rec.Bits = append(rec.Bits, x.Bit(i))
		}
	}
	return rec, nil
}

// DecodeEquations solves an arbitrary stack of linear equations about a
// k-bit message: rows[i]·w = bits[i]. This is the general decoder used by
// the protocol simulator, where a node may pool equations from several
// phases (its own transmissions, overheard side information, and the relay
// broadcast) before solving. It allocates a fresh Solver per call; hot
// loops should hold a Solver and use SolveInto.
func DecodeEquations(k int, rows []Vector, rowBits []int) (Vector, error) {
	var s Solver
	x := NewVector(k)
	if err := s.SolveInto(&x, k, rows, rowBits); err != nil {
		return Vector{}, err
	}
	return x, nil
}

// Decode recovers the message from a Received observation.
func (c Code) Decode(rec Received) (Vector, error) {
	return DecodeEquations(c.K(), rec.Rows, rec.Bits)
}
