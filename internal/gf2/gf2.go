// Package gf2 implements linear algebra over GF(2) with 64-bit packed rows:
// matrices, Gaussian elimination, rank, and linear-system solving. It backs
// the bit-true simulation of the paper's achievability arguments, where
// random coding and random binning are realized as random linear maps and
// maximum-likelihood decoding over erasure links reduces to solving a linear
// system.
package gf2

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// Errors returned by this package.
var (
	ErrShape           = errors.New("gf2: dimension mismatch")
	ErrInconsistent    = errors.New("gf2: inconsistent linear system")
	ErrUnderdetermined = errors.New("gf2: underdetermined linear system")
)

// Vector is a packed bit vector of fixed logical length.
type Vector struct {
	n     int
	words []uint64
}

// NewVector returns an all-zero vector of n bits.
func NewVector(n int) Vector {
	return Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// RandomVector returns a uniformly random n-bit vector drawn from r.
func RandomVector(n int, r *rand.Rand) Vector {
	v := NewVector(n)
	for i := range v.words {
		v.words[i] = r.Uint64()
	}
	v.maskTail()
	return v
}

// VectorFromBits builds a vector from a bool slice.
func VectorFromBits(bits []bool) Vector {
	v := NewVector(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, 1)
		}
	}
	return v
}

func (v *Vector) maskTail() {
	if v.n%64 != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (uint64(1) << (v.n % 64)) - 1
	}
}

// Len returns the logical bit length.
func (v Vector) Len() int { return v.n }

// Bit returns bit i as 0 or 1.
func (v Vector) Bit(i int) int {
	return int(v.words[i/64] >> (i % 64) & 1)
}

// Set sets bit i to b (0 or 1).
func (v *Vector) Set(i, b int) {
	if b != 0 {
		v.words[i/64] |= 1 << (i % 64)
	} else {
		v.words[i/64] &^= 1 << (i % 64)
	}
}

// Xor returns v ⊕ w. Lengths must match.
func (v Vector) Xor(w Vector) (Vector, error) {
	if v.n != w.n {
		return Vector{}, fmt.Errorf("%w: %d vs %d bits", ErrShape, v.n, w.n)
	}
	out := NewVector(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] ^ w.words[i]
	}
	return out, nil
}

// Equal reports bitwise equality.
func (v Vector) Equal(w Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Weight returns the Hamming weight.
func (v Vector) Weight() int {
	var c int
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(out.words, v.words)
	return out
}

// String renders the vector as a bit string, LSB first.
func (v Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		buf[i] = byte('0' + v.Bit(i))
	}
	return string(buf)
}

// Matrix is a dense GF(2) matrix with packed rows.
type Matrix struct {
	rows, cols int
	data       []Vector
}

// NewMatrix returns an all-zero rows-by-cols matrix.
func NewMatrix(rows, cols int) Matrix {
	m := Matrix{rows: rows, cols: cols, data: make([]Vector, rows)}
	for i := range m.data {
		m.data[i] = NewVector(cols)
	}
	return m
}

// RandomMatrix returns a uniformly random rows-by-cols matrix.
func RandomMatrix(rows, cols int, r *rand.Rand) Matrix {
	m := Matrix{rows: rows, cols: cols, data: make([]Vector, rows)}
	for i := range m.data {
		m.data[i] = RandomVector(cols, r)
	}
	return m
}

// Identity returns the n-by-n identity.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i].Set(i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// At returns entry (i, j).
func (m Matrix) At(i, j int) int { return m.data[i].Bit(j) }

// Set sets entry (i, j).
func (m *Matrix) Set(i, j, b int) { m.data[i].Set(j, b) }

// Row returns a copy of row i.
func (m Matrix) Row(i int) Vector { return m.data[i].Clone() }

// RowView returns row i sharing the matrix's storage. The caller must treat
// it as read-only; it is the allocation-free companion of Row for hot loops
// that only read rows (e.g. accumulating decode equations, which AppendRow
// clones anyway).
func (m Matrix) RowView(i int) Vector { return m.data[i] }

// AppendRow appends a copy of row v; v must have m.cols bits.
func (m *Matrix) AppendRow(v Vector) error {
	if v.n != m.cols {
		return fmt.Errorf("%w: row has %d bits, matrix has %d cols", ErrShape, v.n, m.cols)
	}
	m.data = append(m.data, v.Clone())
	m.rows++
	return nil
}

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := Matrix{rows: m.rows, cols: m.cols, data: make([]Vector, m.rows)}
	for i := range m.data {
		out.data[i] = m.data[i].Clone()
	}
	return out
}

// MulVec returns m·x over GF(2); x must have m.cols bits. The result has
// m.rows bits, one parity per row.
func (m Matrix) MulVec(x Vector) (Vector, error) {
	if x.n != m.cols {
		return Vector{}, fmt.Errorf("%w: vector %d bits, matrix %d cols", ErrShape, x.n, m.cols)
	}
	out := NewVector(m.rows)
	for i, row := range m.data {
		var acc uint64
		for w := range row.words {
			acc ^= row.words[w] & x.words[w]
		}
		out.Set(i, bits.OnesCount64(acc)%2)
	}
	return out, nil
}

// Rank returns the GF(2) rank of the matrix.
func (m Matrix) Rank() int {
	work := m.Clone()
	rank, _ := work.eliminate(nil)
	return rank
}

// eliminate performs forward Gaussian elimination in place, optionally
// carrying an RHS vector (one bit per row) through the same row operations.
// It returns the rank and the pivot column of each pivot row.
func (m *Matrix) eliminate(rhs *Vector) (int, []int) {
	pivots := make([]int, 0, m.rows)
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// Find a pivot at or below row `rank`.
		sel := -1
		for i := rank; i < m.rows; i++ {
			if m.data[i].Bit(col) == 1 {
				sel = i
				break
			}
		}
		if sel == -1 {
			continue
		}
		m.data[rank], m.data[sel] = m.data[sel], m.data[rank]
		if rhs != nil && sel != rank {
			rb, sb := rhs.Bit(rank), rhs.Bit(sel)
			rhs.Set(rank, sb)
			rhs.Set(sel, rb)
		}
		// Eliminate this column from all other rows (full reduction keeps
		// back-substitution trivial).
		for i := 0; i < m.rows; i++ {
			if i != rank && m.data[i].Bit(col) == 1 {
				for w := range m.data[i].words {
					m.data[i].words[w] ^= m.data[rank].words[w]
				}
				if rhs != nil {
					rhs.Set(i, rhs.Bit(i)^rhs.Bit(rank))
				}
			}
		}
		pivots = append(pivots, col)
		rank++
	}
	return rank, pivots
}

// Solve finds x with m·x = b (b has m.rows bits). It returns
// ErrInconsistent when no solution exists and ErrUnderdetermined when the
// solution is not unique; the bit-true decoder treats both as decoding
// failures.
func (m Matrix) Solve(b Vector) (Vector, error) {
	if b.n != m.rows {
		return Vector{}, fmt.Errorf("%w: rhs %d bits, matrix %d rows", ErrShape, b.n, m.rows)
	}
	work := m.Clone()
	rhs := b.Clone()
	rank, pivots := work.eliminate(&rhs)
	// Inconsistency: a zero row with a non-zero RHS bit.
	for i := rank; i < work.rows; i++ {
		if rhs.Bit(i) == 1 {
			return Vector{}, ErrInconsistent
		}
	}
	if rank < m.cols {
		return Vector{}, fmt.Errorf("%w: rank %d of %d columns", ErrUnderdetermined, rank, m.cols)
	}
	x := NewVector(m.cols)
	for i, col := range pivots {
		x.Set(col, rhs.Bit(i))
	}
	return x, nil
}

// Code is a random linear block code: k message bits mapped to n coded bits
// by x = G·w with a dense random generator G (n-by-k). Random linear codes
// achieve capacity on erasure channels, which is exactly the guarantee the
// paper's random-coding arguments need from this substrate.
type Code struct {
	// G is the n-by-k generator matrix.
	G Matrix
}

// NewCode draws a random (n, k) code from r.
func NewCode(n, k int, r *rand.Rand) Code {
	return Code{G: RandomMatrix(n, k, r)}
}

// N returns the block length.
func (c Code) N() int { return c.G.rows }

// K returns the message length.
func (c Code) K() int { return c.G.cols }

// Encode maps a k-bit message to its n-bit codeword.
func (c Code) Encode(w Vector) (Vector, error) {
	return c.G.MulVec(w)
}

// Received is a partially erased codeword observation: for every surviving
// position i, the pair (row G[i], bit x[i]) is one linear equation about w.
type Received struct {
	Rows []Vector // generator rows that survived
	Bits []int    // corresponding received bits
}

// Observe applies an erasure pattern to a codeword: erased[i] true means
// position i was lost. The surviving equations are returned.
func (c Code) Observe(x Vector, erased []bool) (Received, error) {
	if x.n != c.N() || len(erased) != c.N() {
		return Received{}, fmt.Errorf("%w: codeword %d bits, erasures %d, n %d", ErrShape, x.n, len(erased), c.N())
	}
	var rec Received
	for i := 0; i < c.N(); i++ {
		if !erased[i] {
			rec.Rows = append(rec.Rows, c.G.Row(i))
			rec.Bits = append(rec.Bits, x.Bit(i))
		}
	}
	return rec, nil
}

// DecodeEquations solves an arbitrary stack of linear equations about a
// k-bit message: rows[i]·w = bits[i]. This is the general decoder used by
// the protocol simulator, where a node may pool equations from several
// phases (its own transmissions, overheard side information, and the relay
// broadcast) before solving.
func DecodeEquations(k int, rows []Vector, rowBits []int) (Vector, error) {
	m := NewMatrix(0, k)
	for _, row := range rows {
		if err := m.AppendRow(row); err != nil {
			return Vector{}, err
		}
	}
	b := NewVector(len(rowBits))
	for i, bit := range rowBits {
		b.Set(i, bit)
	}
	return m.Solve(b)
}

// Decode recovers the message from a Received observation.
func (c Code) Decode(rec Received) (Vector, error) {
	return DecodeEquations(c.K(), rec.Rows, rec.Bits)
}
