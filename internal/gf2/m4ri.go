package gf2

import "math/bits"

// Dense multi-column elimination — the "method of four Russians" (M4RI)
// path of Solver. The incremental basis (solver.go) eliminates one pivot
// column per row XOR; past ~10^3 unknowns most of the solve is spent
// re-XORing long rows one pivot at a time. This path loads the equations
// into a dense tableau and eliminates m4riStripe pivot columns per pass:
// the stripe's pivot rows are reduced to a local reduced row echelon form,
// all 2^found combinations of them are precomputed into a table, and every
// other row then clears the whole stripe with ONE table lookup + row XOR
// instead of up to m4riStripe pivot XORs.
//
// The result is the global reduced row echelon form, which two invariants
// keep exact:
//
//   - after a stripe is processed, every non-pivot row has zero bits in all
//     of the stripe's columns (pivot columns are cleared by the table XOR;
//     free columns only appear when every remaining row was examined and
//     reduced to a zero stripe);
//   - table rows are combinations of pivot rows drawn from below the pivot
//     block, which by the first invariant are zero on every earlier stripe
//     — so later passes never re-contaminate earlier columns.
//
// The invariants also bound the work: when stripe c0 is processed, every row
// XOR — pivot search, table build and table application alike — involves at
// least one operand that is zero on all words before c0's word, so the inner
// loops start there and the average row operation touches half the row.
//
// Hence at the end leftover rows are zero on every column and a surviving
// RHS bit is exactly an inconsistency, and each pivot row is a unit vector
// whose RHS bit is that unknown's value.

const (
	// m4riStripe is the number of pivot columns eliminated per table pass.
	// The stripe always fits one word (8 divides 64), the table holds
	// 2^8 = 256 rows, and the per-row index extraction is 8 shift-and-mask
	// steps against a full-row XOR saved — past the cutover the table cost
	// amortizes to well under one row XOR per row per stripe.
	m4riStripe = 8
	// m4riMinCols is the automatic cutover: systems with at least this
	// many unknowns eliminate densely, shorter blocks keep the incremental
	// basis (whose early-exit and truncated XORs win on small systems).
	m4riMinCols = 512
	// m4riSlack is the number of surplus equations loaded beyond the
	// unknown count in consistent mode: random systems reach full rank
	// within a handful of extra rows, so processing the full equation set
	// (the incremental path's early-exit advantage) is not needed; the
	// rare rank-deficient prefix falls back to the incremental path.
	m4riSlack = 64
)

// reserveDense pre-grows the dense tableau and combination table so the
// steady state allocates nothing (companion of Reserve).
//
//bicoop:allow noalloc — scratch grower: allocates here so solves never do
func (s *Solver) reserveDense(rows, cols int) {
	stride := wordsFor(cols) + 1
	if need := rows * stride; cap(s.dense) < need {
		s.dense = make([]uint64, 0, need)
	}
	if need := (1 << m4riStripe) * stride; cap(s.table) < need {
		s.table = make([]uint64, 0, need)
	}
}

// beginDense sizes the dense tableau for n equations over cols unknowns.
//
//bicoop:allow noalloc — scratch grower: allocates only on first use per shape
func (s *Solver) beginDense(n, cols int) {
	s.cols = cols
	s.stride = wordsFor(cols) + 1
	if need := n * s.stride; cap(s.dense) < need {
		s.dense = make([]uint64, need)
	} else {
		s.dense = s.dense[:need]
	}
	if need := (1 << m4riStripe) * s.stride; cap(s.table) < need {
		s.table = make([]uint64, need)
	} else {
		s.table = s.table[:need]
	}
	if cap(s.colRow) < cols {
		s.colRow = make([]int32, cols)
	} else {
		s.colRow = s.colRow[:cols]
	}
	for i := range s.colRow {
		s.colRow[i] = -1
	}
}

// solveRowsDense is the multi-column SolveInto/SolveConsistentInto engine.
// In consistent mode it loads only cols+m4riSlack equations — enough for
// full rank on all but adversarial systems — and falls back to the
// incremental path over the complete set when that prefix is rank
// deficient, preserving bit-exact agreement with the reference solver.
//
//bicoop:noalloc
func (s *Solver) solveRowsDense(dst *Vector, k int, rows []Vector, bits []int, consistent bool) error {
	n := len(rows)
	if consistent {
		if lim := k + m4riSlack; n > lim {
			n = lim
		}
	}
	s.beginDense(n, k)
	wpr := s.stride - 1
	for i := 0; i < n; i++ {
		t := s.dense[i*s.stride : (i+1)*s.stride]
		copy(t[:wpr], rows[i].words)
		for w := len(rows[i].words); w < wpr; w++ {
			t[w] = 0
		}
		t[wpr] = uint64(bits[i] & 1)
	}
	rank, inconsistent := s.eliminateDense(n)
	if consistent {
		if rank < k && n < len(rows) {
			// The loaded prefix fell short of full rank; the surplus
			// equations may still complete it.
			return s.solveRowsIncremental(dst, k, rows, bits, true)
		}
		inconsistent = false
	}
	return s.finishDense(dst, rank, inconsistent)
}

// finishDense mirrors finishSolve for the dense tableau: inconsistency
// takes precedence over underdetermination, and a full-rank system reads
// its solution straight off the reduced rows.
//
//bicoop:noalloc
func (s *Solver) finishDense(dst *Vector, rank int, inconsistent bool) error {
	if inconsistent {
		return ErrInconsistent
	}
	if rank < s.cols {
		return ErrUnderdetermined
	}
	wpr := s.stride - 1
	for w := range dst.words {
		dst.words[w] = 0
	}
	for c := 0; c < s.cols; c++ {
		row := s.dense[int(s.colRow[c])*s.stride:]
		dst.words[c>>6] |= (row[wpr] & 1) << uint(c&63)
	}
	return nil
}

// eliminateDense reduces the n-row dense tableau to reduced row echelon
// form, m4riStripe pivot columns per pass, and reports the rank and whether
// any dependent equation survived with a set RHS bit.
//
//bicoop:noalloc
func (s *Solver) eliminateDense(n int) (rank int, inconsistent bool) {
	stride := s.stride
	var cols [m4riStripe]int // this stripe's pivot columns, discovery order
	for c0 := 0; c0 < s.cols && rank < n; c0 += m4riStripe {
		ge := m4riStripe
		if s.cols-c0 < ge {
			ge = s.cols - c0
		}
		w0, shift := c0>>6, uint(c0&63)
		stripeMask := uint64(1)<<uint(ge) - 1

		// Pivot search: Gaussian elimination restricted to the stripe.
		// Each candidate is reduced against the stripe pivots found so
		// far; its lowest surviving stripe bit becomes a new pivot column,
		// the found pivots are back-reduced against it (local RREF), and
		// the row is swapped up to the pivot block.
		found := 0
		for i := rank; i < n && found < ge; i++ {
			// Candidate rows sit below every processed stripe, so they are
			// zero before word w0 and every XOR here can start there.
			row := s.dense[i*stride : (i+1)*stride]
			for j := 0; j < found; j++ {
				c := cols[j]
				if row[w0]>>uint(c&63)&1 != 0 {
					piv := s.dense[(rank+j)*stride : (rank+j+1)*stride]
					for w := w0; w < stride; w++ {
						row[w] ^= piv[w]
					}
				}
			}
			v := row[w0] >> shift & stripeMask
			if v == 0 {
				continue
			}
			c := c0 + bits.TrailingZeros64(v)
			for j := 0; j < found; j++ {
				piv := s.dense[(rank+j)*stride : (rank+j+1)*stride]
				if piv[w0]>>uint(c&63)&1 != 0 {
					for w := w0; w < stride; w++ {
						piv[w] ^= row[w]
					}
				}
			}
			if top := rank + found; i != top {
				other := s.dense[top*stride : (top+1)*stride]
				for w := w0; w < stride; w++ {
					row[w], other[w] = other[w], row[w]
				}
			}
			cols[found] = c
			found++
		}
		if found == 0 {
			continue
		}

		// Combination table: entry b is the XOR of the pivot rows selected
		// by b's bits, built in one row XOR each off a previous entry. Pivot
		// rows are zero before word w0, so entries are built (and later
		// applied) from w0 on; the words below keep stale bits from earlier
		// stripes that nothing reads.
		for w := w0; w < stride; w++ {
			s.table[w] = 0
		}
		for b := 1; b < 1<<uint(found); b++ {
			j := bits.TrailingZeros64(uint64(b))
			prev := s.table[(b&^(1<<uint(j)))*stride:]
			piv := s.dense[(rank+j)*stride:]
			t := s.table[b*stride : (b+1)*stride]
			for w := w0; w < stride; w++ {
				t[w] = prev[w] ^ piv[w]
			}
		}

		// One lookup + XOR clears the whole stripe in every other row —
		// rows above too, which is what maintains the global RREF. All of
		// the stripe's columns live in word w0 (m4riStripe divides 64), so
		// the table index gathers bits from a single loaded word.
		for i := 0; i < n; i++ {
			if i >= rank && i < rank+found {
				continue
			}
			row := s.dense[i*stride : (i+1)*stride]
			v := row[w0]
			idx := 0
			for j := 0; j < found; j++ {
				idx |= int(v>>uint(cols[j]&63)&1) << uint(j)
			}
			if idx == 0 {
				continue
			}
			t := s.table[idx*stride:]
			for w := w0; w < stride; w++ {
				row[w] ^= t[w]
			}
		}

		for j := 0; j < found; j++ {
			s.colRow[cols[j]] = int32(rank + j)
		}
		rank += found
	}

	wpr := stride - 1
	for i := rank; i < n; i++ {
		if s.dense[i*stride+wpr]&1 != 0 {
			return rank, true
		}
	}
	return rank, false
}
