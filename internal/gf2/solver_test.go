package gf2

import (
	"errors"
	"math/rand"
	"testing"
)

// --- Reference implementation ---
//
// refSolve is the original clone-based, bit-level Gaussian elimination this
// package shipped before the word-level Solver: full reduction over a cloned
// row matrix with a separate RHS vector. It is kept here as an independent
// oracle for the property tests — intentionally naive and obviously correct.

func refSolve(m Matrix, b Vector) (Vector, error) {
	if b.Len() != m.Rows() {
		return Vector{}, ErrShape
	}
	work := m.Clone()
	rhs := b.Clone()
	rank := 0
	var pivots []int
	for col := 0; col < work.Cols() && rank < work.Rows(); col++ {
		sel := -1
		for i := rank; i < work.Rows(); i++ {
			if work.At(i, col) == 1 {
				sel = i
				break
			}
		}
		if sel == -1 {
			continue
		}
		if sel != rank {
			for j := 0; j < work.Cols(); j++ {
				bi, bs := work.At(rank, j), work.At(sel, j)
				work.Set(rank, j, bs)
				work.Set(sel, j, bi)
			}
			rb, sb := rhs.Bit(rank), rhs.Bit(sel)
			rhs.Set(rank, sb)
			rhs.Set(sel, rb)
		}
		for i := 0; i < work.Rows(); i++ {
			if i != rank && work.At(i, col) == 1 {
				for j := 0; j < work.Cols(); j++ {
					work.Set(i, j, work.At(i, j)^work.At(rank, j))
				}
				rhs.Set(i, rhs.Bit(i)^rhs.Bit(rank))
			}
		}
		pivots = append(pivots, col)
		rank++
	}
	for i := rank; i < work.Rows(); i++ {
		if rhs.Bit(i) == 1 {
			return Vector{}, ErrInconsistent
		}
	}
	if rank < m.Cols() {
		return Vector{}, ErrUnderdetermined
	}
	x := NewVector(m.Cols())
	for i, col := range pivots {
		x.Set(col, rhs.Bit(i))
	}
	return x, nil
}

// randomSystem draws a random rows-by-cols system. kind shapes it:
// "square"/"tall"/"wide" control dimensions only; "rankdef" forces duplicate
// and XOR-dependent rows; "consistent" builds b = m·x from a planted x.
func randomSystem(t *testing.T, r *rand.Rand, kind string) (Matrix, Vector) {
	t.Helper()
	var rows, cols int
	switch kind {
	case "square":
		cols = 1 + r.Intn(90)
		rows = cols
	case "tall":
		cols = 1 + r.Intn(70)
		rows = cols + 1 + r.Intn(60)
	case "wide":
		rows = 1 + r.Intn(70)
		cols = rows + 1 + r.Intn(60)
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	m := RandomMatrix(rows, cols, r)
	if kind == "tall" && r.Intn(2) == 0 {
		// Rank-deficient variant: overwrite some rows with sums of others.
		for i := 0; i < rows/3; i++ {
			a, b := r.Intn(rows), r.Intn(rows)
			sum, err := m.Row(a).Xor(m.Row(b))
			if err != nil {
				t.Fatal(err)
			}
			dst := r.Intn(rows)
			for j := 0; j < cols; j++ {
				m.Set(dst, j, sum.Bit(j))
			}
		}
	}
	var b Vector
	if r.Intn(2) == 0 {
		// Consistent: plant a solution.
		x := RandomVector(cols, r)
		b, _ = m.MulVec(x)
	} else {
		// Arbitrary RHS: may be consistent or not — the oracle decides.
		b = RandomVector(rows, r)
	}
	return m, b
}

// matrixRows returns the rows of m as views, for the SolveInto signature.
func matrixRows(m Matrix) ([]Vector, []int) {
	rows := make([]Vector, m.Rows())
	for i := range rows {
		rows[i] = m.RowView(i)
	}
	return rows, nil
}

// TestSolverMatchesReference is the core property test: across randomized
// square, tall, wide (underdetermined), rank-deficient, consistent and
// inconsistent systems, Solver.SolveInto must return exactly the reference
// solver's solution or exactly its error class.
func TestSolverMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	var s Solver
	counts := map[string]int{}
	for trial := 0; trial < 400; trial++ {
		kind := []string{"square", "tall", "wide"}[trial%3]
		m, b := randomSystem(t, r, kind)
		want, wantErr := refSolve(m, b)

		rows, _ := matrixRows(m)
		bits := make([]int, m.Rows())
		for i := range bits {
			bits[i] = b.Bit(i)
		}
		got := NewVector(m.Cols())
		err := s.SolveInto(&got, m.Cols(), rows, bits)

		switch {
		case wantErr == nil:
			counts["unique"]++
			if err != nil {
				t.Fatalf("trial %d (%s): SolveInto err %v, reference solved", trial, kind, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (%s): solution mismatch", trial, kind)
			}
		case errors.Is(wantErr, ErrInconsistent):
			counts["inconsistent"]++
			if !errors.Is(err, ErrInconsistent) {
				t.Fatalf("trial %d (%s): err %v, want ErrInconsistent", trial, kind, err)
			}
		case errors.Is(wantErr, ErrUnderdetermined):
			counts["underdetermined"]++
			if !errors.Is(err, ErrUnderdetermined) {
				t.Fatalf("trial %d (%s): err %v, want ErrUnderdetermined", trial, kind, err)
			}
		default:
			t.Fatalf("trial %d: unexpected reference error %v", trial, wantErr)
		}

		// The legacy wrappers must agree with the Solver they now route to.
		mGot, mErr := m.Solve(b)
		if (mErr == nil) != (err == nil) || (err == nil && !mGot.Equal(got)) {
			t.Fatalf("trial %d (%s): Matrix.Solve diverged from SolveInto", trial, kind)
		}
	}
	// The sweep must actually have exercised every outcome class.
	for _, class := range []string{"unique", "inconsistent", "underdetermined"} {
		if counts[class] == 0 {
			t.Errorf("no %s systems generated — property sweep lost coverage", class)
		}
	}
}

// TestSolveConsistentMatchesSolveOnConsistentSystems pins the early-stop
// path: on systems built from a planted solution (always consistent, the
// bit-true decoders' regime) SolveConsistentInto must agree exactly with
// SolveInto, including the error class when underdetermined.
func TestSolveConsistentMatchesSolveOnConsistentSystems(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var s, sc Solver
	for trial := 0; trial < 300; trial++ {
		rows := 1 + r.Intn(120)
		cols := 1 + r.Intn(120)
		m := RandomMatrix(rows, cols, r)
		x := RandomVector(cols, r)
		b, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		rv, _ := matrixRows(m)
		bits := make([]int, rows)
		for i := range bits {
			bits[i] = b.Bit(i)
		}
		got := NewVector(cols)
		gotC := NewVector(cols)
		errFull := s.SolveInto(&got, cols, rv, bits)
		errCons := sc.SolveConsistentInto(&gotC, cols, rv, bits)
		if (errFull == nil) != (errCons == nil) {
			t.Fatalf("trial %d: SolveInto err %v vs SolveConsistentInto err %v", trial, errFull, errCons)
		}
		if errFull == nil {
			if !got.Equal(gotC) || !got.Equal(x) {
				t.Fatalf("trial %d: solutions diverge", trial)
			}
		} else if !errors.Is(errCons, ErrUnderdetermined) {
			t.Fatalf("trial %d: err %v, want ErrUnderdetermined", trial, errCons)
		}
	}
}

// TestSolverRankMatchesReference cross-checks the solver-backed Rank against
// a rank derived from the reference elimination.
func TestSolverRankMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	var s Solver
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+r.Intn(80), 1+r.Intn(80)
		m := RandomMatrix(rows, cols, r)
		// Reference rank: solve m·x = 0 and infer from the error class only
		// when square; instead count pivots directly with the naive sweep.
		want := refRank(m)
		if got := s.Rank(m); got != want {
			t.Fatalf("trial %d: Rank = %d, want %d", trial, got, want)
		}
		if got := m.Rank(); got != want {
			t.Fatalf("trial %d: Matrix.Rank = %d, want %d", trial, got, want)
		}
	}
}

// refRank is the bit-level rank companion of refSolve.
func refRank(m Matrix) int {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.Cols() && rank < work.Rows(); col++ {
		sel := -1
		for i := rank; i < work.Rows(); i++ {
			if work.At(i, col) == 1 {
				sel = i
				break
			}
		}
		if sel == -1 {
			continue
		}
		for j := 0; j < work.Cols(); j++ {
			bi, bs := work.At(rank, j), work.At(sel, j)
			work.Set(rank, j, bs)
			work.Set(sel, j, bi)
		}
		for i := 0; i < work.Rows(); i++ {
			if i != rank && work.At(i, col) == 1 {
				for j := 0; j < work.Cols(); j++ {
					work.Set(i, j, work.At(i, j)^work.At(rank, j))
				}
			}
		}
		rank++
	}
	return rank
}

// TestSolverReuseAcrossShapes checks that one Solver instance can be reused
// across systems of different shapes back to back (the worker pattern).
func TestSolverReuseAcrossShapes(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var s Solver
	for trial := 0; trial < 100; trial++ {
		cols := 1 + r.Intn(100)
		rows := cols + r.Intn(40)
		var m Matrix
		for {
			m = RandomMatrix(rows, cols, r)
			if m.Rank() == cols {
				break
			}
		}
		x := RandomVector(cols, r)
		b, _ := m.MulVec(x)
		got := NewVector(cols)
		rv, _ := matrixRows(m)
		bits := make([]int, rows)
		for i := range bits {
			bits[i] = b.Bit(i)
		}
		if err := s.SolveInto(&got, cols, rv, bits); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(x) {
			t.Fatalf("trial %d: wrong solution after shape change", trial)
		}
	}
}

// TestSolverShapeErrors covers the argument validation of the new entry
// points.
func TestSolverShapeErrors(t *testing.T) {
	var s Solver
	dst := NewVector(3)
	rows := []Vector{NewVector(3)}
	if err := s.SolveInto(&dst, 3, rows, nil); !errors.Is(err, ErrShape) {
		t.Errorf("rows/bits mismatch: err = %v, want ErrShape", err)
	}
	bad := NewVector(2)
	if err := s.SolveInto(&bad, 3, rows, []int{0}); !errors.Is(err, ErrShape) {
		t.Errorf("short dst: err = %v, want ErrShape", err)
	}
	if err := s.SolveInto(&dst, 3, []Vector{NewVector(4)}, []int{0}); !errors.Is(err, ErrShape) {
		t.Errorf("wrong row width: err = %v, want ErrShape", err)
	}
	m := NewMatrix(2, 3)
	if err := s.SolveMatrixInto(&dst, m, NewVector(1)); !errors.Is(err, ErrShape) {
		t.Errorf("rhs mismatch: err = %v, want ErrShape", err)
	}
	if err := s.SolveMatrixInto(&bad, m, NewVector(2)); !errors.Is(err, ErrShape) {
		t.Errorf("dst mismatch: err = %v, want ErrShape", err)
	}
}

// TestSolverZeroAllocSteadyState pins the allocation contract: after
// Reserve (or one warm solve), repeated solves of the same shape allocate
// nothing — including failing ones, whose sentinel errors are unwrapped.
func TestSolverZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	const rows, cols = 120, 90
	m := RandomMatrix(rows, cols, r)
	x := RandomVector(cols, r)
	b, _ := m.MulVec(x)
	rv, _ := matrixRows(m)
	bits := make([]int, rows)
	for i := range bits {
		bits[i] = b.Bit(i)
	}
	short := rv[:cols-5] // underdetermined variant
	shortBits := bits[:cols-5]

	var s Solver
	s.Reserve(rows, cols)
	dst := NewVector(cols)
	if n := testing.AllocsPerRun(100, func() {
		if err := s.SolveInto(&dst, cols, rv, bits); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("successful solve allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := s.SolveInto(&dst, cols, short, shortBits); !errors.Is(err, ErrUnderdetermined) {
			t.Fatalf("err = %v", err)
		}
	}); n != 0 {
		t.Errorf("failing solve allocates %.1f/op, want 0", n)
	}
}

// TestRerandomizeMatchesRandomMatrix pins the in-place redraw to the
// allocating constructor: from identical RNG states both must produce
// identical matrices (same draw order, one Uint64 per word), which is part
// of the bit-true simulators' canonical-stream contract (results a pure
// function of Seed/Trials/Workers).
func TestRerandomizeMatchesRandomMatrix(t *testing.T) {
	for _, dims := range [][2]int{{7, 5}, {64, 64}, {100, 130}, {3, 200}, {0, 10}} {
		r1 := rand.New(rand.NewSource(42))
		r2 := rand.New(rand.NewSource(42))
		want := RandomMatrix(dims[0], dims[1], r1)
		got := NewMatrix(dims[0], dims[1])
		got.Rerandomize(r2)
		for i := 0; i < dims[0]; i++ {
			if !got.RowView(i).Equal(want.RowView(i)) {
				t.Fatalf("dims %v: row %d differs", dims, i)
			}
		}
		// Tail masking: no stray bits beyond the logical width.
		for i := 0; i < dims[0]; i++ {
			if got.RowView(i).Weight() != want.RowView(i).Weight() {
				t.Fatalf("dims %v: weight mismatch row %d", dims, i)
			}
		}
	}
}

// TestVectorWordOps pins the word-level vector primitives against naive
// bit-by-bit equivalents.
func TestVectorWordOps(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+r.Intn(200), 1+r.Intn(200)
		a, b := RandomVector(na, r), RandomVector(nb, r)

		// Dot: inner product over the overlapping prefix.
		want := 0
		for i := 0; i < na && i < nb; i++ {
			want ^= a.Bit(i) & b.Bit(i)
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("Dot(%d,%d) = %d, want %d", na, nb, got, want)
		}

		// CopyPrefix: first dst.Len() bits of src, zero-padded.
		dst := RandomVector(na, r) // pre-fill with junk to catch stale words
		dst.CopyPrefix(b)
		for i := 0; i < na; i++ {
			want := 0
			if i < nb {
				want = b.Bit(i)
			}
			if dst.Bit(i) != want {
				t.Fatalf("CopyPrefix(%d<-%d): bit %d = %d, want %d", na, nb, i, dst.Bit(i), want)
			}
		}

		// XorWith: zero-extended in-place xor.
		if nb <= na {
			v := a.Clone()
			if err := v.XorWith(b); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < na; i++ {
				want := a.Bit(i)
				if i < nb {
					want ^= b.Bit(i)
				}
				if v.Bit(i) != want {
					t.Fatalf("XorWith: bit %d mismatch", i)
				}
			}
		} else {
			v := a.Clone()
			if err := v.XorWith(b); !errors.Is(err, ErrShape) {
				t.Fatalf("XorWith longer vector: err = %v, want ErrShape", err)
			}
		}
	}
}

// TestMulVecIntoMatchesMulVec pins the in-place encode against the
// allocating one.
func TestMulVecIntoMatchesMulVec(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+r.Intn(150), 1+r.Intn(150)
		m := RandomMatrix(rows, cols, r)
		x := RandomVector(cols, r)
		want, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		got := RandomVector(rows, r) // junk pre-fill
		if err := m.MulVecInto(&got, x); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: MulVecInto mismatch", trial)
		}
	}
	m := NewMatrix(3, 2)
	out := NewVector(2)
	if err := m.MulVecInto(&out, NewVector(2)); !errors.Is(err, ErrShape) {
		t.Errorf("short dst: err = %v, want ErrShape", err)
	}
}
