package gf2

import (
	"fmt"
	"math/bits"
)

// Solver performs Gaussian elimination over GF(2) in a persistent scratch
// tableau, so repeated solves (the bit-true simulator decodes four linear
// systems per block) reuse one allocation.
//
// The algorithm is an incremental word-level basis reduction: equations are
// consumed one at a time, each reduced against the pivot rows collected so
// far. A pivot row is stored with its leading column as pivot, so it has no
// set bit before that column and every XOR into a candidate row starts at
// the pivot's word. Leading columns are found with bits.TrailingZeros64 on
// the candidate's words (whose lower bits are zero by construction, so no
// per-bit scan is ever needed). Each tableau row carries the equation's RHS
// bit in one trailing word, riding along through every row operation. The
// basis can hold at most cols pivots, so the tableau is (cols+1) rows
// regardless of how many equations are fed in — dependent equations reduce
// to zero in the spare slot and are discarded (after their RHS bit is
// checked for consistency).
//
// Wide systems (at least m4riMinCols unknowns) are eliminated by the dense
// multi-column path in m4ri.go instead — same results, fewer row XORs; the
// incremental basis remains the short-block and underdetermined path.
//
// The zero value is ready to use. A Solver is NOT safe for concurrent use;
// give each goroutine its own (the simulator's worker pool does).
type Solver struct {
	tab    []uint64 // basis rows plus one spare slot, row-major
	colRow []int32  // pivot column -> tab row index, or -1
	cols   int
	stride int // words per tableau row, including the trailing RHS word

	dense []uint64 // m4ri tableau: every equation, row-major
	table []uint64 // m4ri combination table: 2^m4riStripe rows

	// force pins the elimination path for tests and benchmarks:
	// forceAuto (zero value) applies the size cutover.
	force int
}

// Elimination-path overrides for Solver.force.
const (
	forceAuto = iota
	forceIncremental
	forceDense
)

// Reserve grows the scratch so a subsequent rows-by-cols solve performs no
// allocation. Calling it for each system shape a worker will see makes the
// steady state strictly allocation-free (the AllocsPerRun gates in
// internal/sim rely on this).
//
//bicoop:allow noalloc — scratch grower: allocates here so solves never do
func (s *Solver) Reserve(rows, cols int) {
	basis := rows
	if cols < basis {
		basis = cols
	}
	if need := (basis + 1) * (wordsFor(cols) + 1); cap(s.tab) < need {
		s.tab = make([]uint64, 0, need)
	}
	if cap(s.colRow) < cols {
		s.colRow = make([]int32, 0, cols)
	}
	if cols >= m4riMinCols && rows >= cols {
		s.reserveDense(rows, cols)
	}
}

// begin sizes the tableau for a system with nrows equations over cols
// unknowns and clears the pivot index.
//
//bicoop:allow noalloc — scratch grower: allocates only on first use per shape
func (s *Solver) begin(nrows, cols int) {
	s.cols = cols
	s.stride = wordsFor(cols) + 1
	basis := nrows
	if cols < basis {
		basis = cols
	}
	need := (basis + 1) * s.stride
	if cap(s.tab) < need {
		s.tab = make([]uint64, need)
	} else {
		s.tab = s.tab[:need]
	}
	if cap(s.colRow) < cols {
		s.colRow = make([]int32, cols)
	} else {
		s.colRow = s.colRow[:cols]
	}
	for i := range s.colRow {
		s.colRow[i] = -1
	}
}

// loadSpare copies one equation (row words + RHS bit) into the spare slot
// after the current basis and returns the slot's words.
//
//bicoop:noalloc
func (s *Solver) loadSpare(rank int, words []uint64, rhs uint64) []uint64 {
	t := s.tab[rank*s.stride : (rank+1)*s.stride]
	wpr := s.stride - 1
	copy(t[:wpr], words)
	for w := len(words); w < wpr; w++ {
		t[w] = 0
	}
	t[wpr] = rhs
	return t
}

// reduce eliminates the spare row against the basis. It returns the row's
// leading column if the row is independent (the caller then promotes the
// spare slot to a pivot row), or -1 if the row reduced to zero; zero reports
// whether the surviving RHS bit is zero (consistency of a dependent row).
//
//bicoop:noalloc
func (s *Solver) reduce(cur []uint64) (lead int, zero bool) {
	wpr := s.stride - 1
	for w := 0; w < wpr; {
		if cur[w] == 0 {
			w++
			continue
		}
		c := w<<6 + bits.TrailingZeros64(cur[w])
		j := s.colRow[c]
		if j < 0 {
			return c, true
		}
		// XOR the pivot row in; its leading column is c, so words before w
		// cannot change, and bit c clears. Bits below c in word w are zero
		// by the reduction invariant, so the scan never moves backward.
		piv := s.tab[int(j)*s.stride : (int(j)+1)*s.stride]
		for i := w; i < s.stride; i++ {
			cur[i] ^= piv[i]
		}
	}
	return -1, cur[wpr]&1 == 0
}

// finishSolve turns the outcome of the basis build into the old Solve
// semantics (inconsistency takes precedence over underdetermination) and
// extracts the solution when it is unique.
//
//bicoop:noalloc
func (s *Solver) finishSolve(dst *Vector, rank int, inconsistent bool) error {
	if inconsistent {
		return ErrInconsistent
	}
	if rank < s.cols {
		return ErrUnderdetermined
	}
	s.backSubstitute(dst)
	return nil
}

// backSubstitute extracts the unique solution from a full basis into dst.
// Pivot columns are processed in descending order: a pivot row's bits
// beyond its own column only involve columns whose solution bit is already
// known, so each step is one word-level dot product from the pivot's word.
//
//bicoop:noalloc
func (s *Solver) backSubstitute(dst *Vector) {
	for w := range dst.words {
		dst.words[w] = 0
	}
	wpr := s.stride - 1
	for c := s.cols - 1; c >= 0; c-- {
		row := s.tab[int(s.colRow[c])*s.stride:]
		acc := row[wpr] & 1 // the equation's RHS bit
		var x uint64
		for w := c >> 6; w < wpr; w++ {
			x ^= row[w] & dst.words[w]
		}
		acc ^= uint64(bits.OnesCount64(x) & 1)
		dst.words[c>>6] |= acc << uint(c&63)
	}
}

// SolveInto solves rows[i]·x = bits[i] for a k-bit x, writing the solution
// into dst (which must have k bits). It returns ErrInconsistent /
// ErrUnderdetermined unwrapped — the steady-state path, including decoding
// failures, performs zero allocations once the scratch has grown.
func (s *Solver) SolveInto(dst *Vector, k int, rows []Vector, bits []int) error {
	return s.solveRows(dst, k, rows, bits, false)
}

// SolveConsistentInto is SolveInto for systems known to be consistent —
// e.g. decoding noiseless erasure observations, where every equation is a
// true parity of the transmitted message. It eliminates only as many
// equations as the rank needs, skipping the surplus entirely, and never
// returns ErrInconsistent: fed an inconsistent system anyway, it returns
// the unique solution of some full-rank subsystem instead of an error.
func (s *Solver) SolveConsistentInto(dst *Vector, k int, rows []Vector, bits []int) error {
	return s.solveRows(dst, k, rows, bits, true)
}

// solveRows validates the system and dispatches to the incremental basis or
// the dense multi-column eliminator (m4ri.go) by the size cutover.
//
//bicoop:noalloc
func (s *Solver) solveRows(dst *Vector, k int, rows []Vector, bits []int, consistent bool) error {
	if len(rows) != len(bits) {
		return fmt.Errorf("%w: %d rows, %d bits", ErrShape, len(rows), len(bits))
	}
	if dst.n != k {
		return fmt.Errorf("%w: dst %d bits, want %d", ErrShape, dst.n, k)
	}
	for i, row := range rows {
		if row.n != k {
			return fmt.Errorf("%w: row %d has %d bits, want %d", ErrShape, i, row.n, k)
		}
	}
	if s.useDense(len(rows), k) {
		return s.solveRowsDense(dst, k, rows, bits, consistent)
	}
	return s.solveRowsIncremental(dst, k, rows, bits, consistent)
}

// useDense applies the multi-column cutover: wide systems with at least as
// many equations as unknowns (anything narrower is underdetermined, which
// the incremental basis detects cheaply).
func (s *Solver) useDense(nrows, cols int) bool {
	switch s.force {
	case forceIncremental:
		return false
	case forceDense:
		return true
	}
	return cols >= m4riMinCols && nrows >= cols
}

//bicoop:noalloc
func (s *Solver) solveRowsIncremental(dst *Vector, k int, rows []Vector, bits []int, consistent bool) error {
	s.begin(len(rows), k)
	rank := 0
	inconsistent := false
	for i := range rows {
		cur := s.loadSpare(rank, rows[i].words, uint64(bits[i]&1))
		lead, zero := s.reduce(cur)
		if lead >= 0 {
			s.colRow[lead] = int32(rank)
			rank++
			if consistent && rank == k {
				break
			}
		} else if !zero && !consistent {
			// In consistent mode a surviving RHS bit on a dependent row is
			// ignored, keeping the documented never-ErrInconsistent contract
			// independent of row order.
			inconsistent = true
		}
	}
	return s.finishSolve(dst, rank, inconsistent)
}

// SolveMatrixInto solves m·x = b into dst without cloning m; dst must have
// m.Cols() bits and b m.Rows() bits.
func (s *Solver) SolveMatrixInto(dst *Vector, m Matrix, b Vector) error {
	if b.n != m.rows {
		return fmt.Errorf("%w: rhs %d bits, matrix %d rows", ErrShape, b.n, m.rows)
	}
	if dst.n != m.cols {
		return fmt.Errorf("%w: dst %d bits, matrix %d cols", ErrShape, dst.n, m.cols)
	}
	s.begin(m.rows, m.cols)
	rank := 0
	inconsistent := false
	for i := 0; i < m.rows; i++ {
		cur := s.loadSpare(rank, m.rowWords(i), uint64(b.Bit(i)))
		lead, zero := s.reduce(cur)
		if lead >= 0 {
			s.colRow[lead] = int32(rank)
			rank++
		} else if !zero {
			inconsistent = true
		}
	}
	return s.finishSolve(dst, rank, inconsistent)
}

// Rank computes the GF(2) rank of m in the scratch tableau, leaving m
// untouched.
func (s *Solver) Rank(m Matrix) int {
	s.begin(m.rows, m.cols)
	rank := 0
	for i := 0; i < m.rows && rank < m.cols; i++ {
		cur := s.loadSpare(rank, m.rowWords(i), 0)
		if lead, _ := s.reduce(cur); lead >= 0 {
			s.colRow[lead] = int32(rank)
			rank++
		}
	}
	return rank
}
