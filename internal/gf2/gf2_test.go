package gf2

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	v.Set(0, 1)
	v.Set(64, 1)
	v.Set(129, 1)
	if v.Weight() != 3 {
		t.Errorf("Weight = %d, want 3", v.Weight())
	}
	if v.Bit(0) != 1 || v.Bit(64) != 1 || v.Bit(129) != 1 || v.Bit(1) != 0 {
		t.Error("Set/Bit mismatch")
	}
	v.Set(64, 0)
	if v.Bit(64) != 0 || v.Weight() != 2 {
		t.Error("clearing a bit failed")
	}
}

func TestVectorXor(t *testing.T) {
	a := VectorFromBits([]bool{true, false, true, false})
	b := VectorFromBits([]bool{true, true, false, false})
	x, err := a.Xor(b)
	if err != nil {
		t.Fatal(err)
	}
	want := VectorFromBits([]bool{false, true, true, false})
	if !x.Equal(want) {
		t.Errorf("Xor = %v, want %v", x, want)
	}
	// Xor with self is zero.
	z, err := a.Xor(a)
	if err != nil {
		t.Fatal(err)
	}
	if z.Weight() != 0 {
		t.Errorf("a xor a has weight %d", z.Weight())
	}
	// Shape mismatch.
	if _, err := a.Xor(NewVector(5)); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestXorGroupProperties(t *testing.T) {
	// (Z_2^k, xor) is the group the paper's relay operates in: check
	// associativity, identity, and self-inverse on random vectors.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		a, b, c := RandomVector(n, r), RandomVector(n, r), RandomVector(n, r)
		ab, _ := a.Xor(b)
		abc1, _ := ab.Xor(c)
		bc, _ := b.Xor(c)
		abc2, _ := a.Xor(bc)
		if !abc1.Equal(abc2) {
			t.Fatal("xor not associative")
		}
		zero := NewVector(n)
		az, _ := a.Xor(zero)
		if !az.Equal(a) {
			t.Fatal("zero is not identity")
		}
		// Relay decode step: b recovers wa from (wa xor wb) and wb.
		wab, _ := a.Xor(b)
		rec, _ := wab.Xor(b)
		if !rec.Equal(a) {
			t.Fatal("xor side-information recovery failed")
		}
	}
}

func TestVectorString(t *testing.T) {
	v := VectorFromBits([]bool{true, false, true})
	if got := v.String(); got != "101" {
		t.Errorf("String = %q, want 101", got)
	}
}

func TestIdentityMulVec(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	id := Identity(100)
	x := RandomVector(100, r)
	y, err := id.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(x) {
		t.Error("identity multiply changed the vector")
	}
}

func TestMulVecKnown(t *testing.T) {
	// [[1,1],[0,1],[1,0]] * [1,1] = [0,1,1].
	m := NewMatrix(3, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 1)
	m.Set(1, 1, 1)
	m.Set(2, 0, 1)
	x := VectorFromBits([]bool{true, true})
	y, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	want := VectorFromBits([]bool{false, true, true})
	if !y.Equal(want) {
		t.Errorf("MulVec = %v, want %v", y, want)
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		name string
		m    func() Matrix
		want int
	}{
		{name: "identity", m: func() Matrix { return Identity(8) }, want: 8},
		{name: "zero", m: func() Matrix { return NewMatrix(5, 7) }, want: 0},
		{
			name: "duplicate rows",
			m: func() Matrix {
				m := NewMatrix(3, 3)
				m.Set(0, 0, 1)
				m.Set(1, 0, 1) // same as row 0
				m.Set(2, 1, 1)
				return m
			},
			want: 2,
		},
		{
			name: "dependent row",
			m: func() Matrix {
				m := NewMatrix(3, 3)
				// r0 = 110, r1 = 011, r2 = r0 xor r1 = 101.
				m.Set(0, 0, 1)
				m.Set(0, 1, 1)
				m.Set(1, 1, 1)
				m.Set(1, 2, 1)
				m.Set(2, 0, 1)
				m.Set(2, 2, 1)
				return m
			},
			want: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m().Rank(); got != tt.want {
				t.Errorf("Rank = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestRankBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+r.Intn(100), 1+r.Intn(100)
		m := RandomMatrix(rows, cols, r)
		rank := m.Rank()
		if rank < 0 || rank > rows || rank > cols {
			t.Fatalf("rank %d out of bounds for %dx%d", rank, rows, cols)
		}
		// Rank is invariant under row duplication.
		dup := m.Clone()
		if rows > 0 {
			if err := dup.AppendRow(m.Row(0)); err != nil {
				t.Fatal(err)
			}
		}
		if dup.Rank() != rank {
			t.Fatalf("rank changed after duplicating a row: %d -> %d", rank, dup.Rank())
		}
	}
}

func TestRandomSquareMatrixRankDistribution(t *testing.T) {
	// A random n x n GF(2) matrix is full rank with probability
	// prod_{i=1..n} (1 - 2^{-i}) -> ~0.2887881. Check empirically.
	r := rand.New(rand.NewSource(4))
	const n, trials = 20, 2000
	full := 0
	for i := 0; i < trials; i++ {
		if RandomMatrix(n, n, r).Rank() == n {
			full++
		}
	}
	got := float64(full) / trials
	if got < 0.25 || got > 0.33 {
		t.Errorf("full-rank fraction = %v, want ~0.289", got)
	}
}

func TestSolve(t *testing.T) {
	t.Run("unique solution round trip", func(t *testing.T) {
		r := rand.New(rand.NewSource(5))
		for trial := 0; trial < 40; trial++ {
			k := 1 + r.Intn(60)
			// Draw a random full-rank square system by rejection.
			var m Matrix
			for {
				m = RandomMatrix(k, k, r)
				if m.Rank() == k {
					break
				}
			}
			x := RandomVector(k, r)
			b, err := m.MulVec(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(x) {
				t.Fatalf("trial %d: Solve mismatch", trial)
			}
		}
	})
	t.Run("inconsistent", func(t *testing.T) {
		// Rows: x0 = 0 and x0 = 1.
		m := NewMatrix(2, 1)
		m.Set(0, 0, 1)
		m.Set(1, 0, 1)
		b := VectorFromBits([]bool{false, true})
		if _, err := m.Solve(b); !errors.Is(err, ErrInconsistent) {
			t.Errorf("err = %v, want ErrInconsistent", err)
		}
	})
	t.Run("underdetermined", func(t *testing.T) {
		m := NewMatrix(1, 2)
		m.Set(0, 0, 1)
		b := VectorFromBits([]bool{true})
		if _, err := m.Solve(b); !errors.Is(err, ErrUnderdetermined) {
			t.Errorf("err = %v, want ErrUnderdetermined", err)
		}
	})
	t.Run("overdetermined consistent", func(t *testing.T) {
		// Three consistent equations about two unknowns.
		m := NewMatrix(3, 2)
		m.Set(0, 0, 1) // x0 = 1
		m.Set(1, 1, 1) // x1 = 0
		m.Set(2, 0, 1) // x0 + x1 = 1
		m.Set(2, 1, 1)
		b := VectorFromBits([]bool{true, false, true})
		x, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if x.Bit(0) != 1 || x.Bit(1) != 0 {
			t.Errorf("x = %v, want 10", x)
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		m := NewMatrix(2, 2)
		if _, err := m.Solve(NewVector(3)); !errors.Is(err, ErrShape) {
			t.Errorf("err = %v, want ErrShape", err)
		}
	})
}

func TestCodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	code := NewCode(100, 50, r)
	if code.N() != 100 || code.K() != 50 {
		t.Fatalf("dims = (%d,%d), want (100,50)", code.N(), code.K())
	}
	w := RandomVector(50, r)
	x, err := code.Encode(w)
	if err != nil {
		t.Fatal(err)
	}
	// No erasures: decoding must succeed with overwhelming probability
	// (the 100x50 random matrix is full column rank w.h.p.).
	rec, err := code.Observe(x, make([]bool, 100))
	if err != nil {
		t.Fatal(err)
	}
	got, err := code.Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w) {
		t.Error("decode mismatch with no erasures")
	}
}

func TestCodeErasureThreshold(t *testing.T) {
	// Random linear codes on the BEC decode iff surviving rows have full
	// column rank; with n(1-eps) >> k survival is near-certain, with
	// n(1-eps) < k decoding must fail (underdetermined).
	r := rand.New(rand.NewSource(7))
	const n, k = 200, 80
	code := NewCode(n, k, r)
	w := RandomVector(k, r)
	x, err := code.Encode(w)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("below capacity succeeds", func(t *testing.T) {
		// Keep 120 of 200 positions: 120 > 80 = k, success w.h.p.
		successes := 0
		for trial := 0; trial < 50; trial++ {
			erased := randomErasure(n, n-120, r)
			rec, err := code.Observe(x, erased)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := code.Decode(rec); err == nil && got.Equal(w) {
				successes++
			}
		}
		if successes < 48 {
			t.Errorf("successes = %d/50, want near all", successes)
		}
	})
	t.Run("above capacity fails", func(t *testing.T) {
		// Keep only 60 positions: 60 < 80 = k, decoding is always
		// underdetermined.
		for trial := 0; trial < 20; trial++ {
			erased := randomErasure(n, n-60, r)
			rec, err := code.Observe(x, erased)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := code.Decode(rec); err == nil {
				t.Fatal("decoded with fewer equations than unknowns")
			}
		}
	})
}

// randomErasure returns an erasure pattern with exactly nErased erasures.
func randomErasure(n, nErased int, r *rand.Rand) []bool {
	erased := make([]bool, n)
	perm := r.Perm(n)
	for _, i := range perm[:nErased] {
		erased[i] = true
	}
	return erased
}

func TestObserveShapeErrors(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	code := NewCode(10, 5, r)
	x := NewVector(10)
	if _, err := code.Observe(NewVector(9), make([]bool, 10)); !errors.Is(err, ErrShape) {
		t.Error("want shape error for short codeword")
	}
	if _, err := code.Observe(x, make([]bool, 9)); !errors.Is(err, ErrShape) {
		t.Error("want shape error for short erasure pattern")
	}
}

func TestDecodeEquationsPoolsAcrossSources(t *testing.T) {
	// A node pools equations from two codes about the same message — the
	// protocol simulator's side-information combining step.
	r := rand.New(rand.NewSource(9))
	const k = 40
	w := RandomVector(k, r)
	c1 := NewCode(30, k, r) // alone underdetermined (30 < 40)
	c2 := NewCode(30, k, r)
	x1, _ := c1.Encode(w)
	x2, _ := c2.Encode(w)

	var rows []Vector
	var bitsArr []int
	for i := 0; i < 30; i++ {
		rows = append(rows, c1.G.Row(i))
		bitsArr = append(bitsArr, x1.Bit(i))
	}
	// c1 alone must fail.
	if _, err := DecodeEquations(k, rows, bitsArr); err == nil {
		t.Fatal("expected failure with 30 equations for 40 unknowns")
	}
	for i := 0; i < 30; i++ {
		rows = append(rows, c2.G.Row(i))
		bitsArr = append(bitsArr, x2.Bit(i))
	}
	got, err := DecodeEquations(k, rows, bitsArr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w) {
		t.Error("pooled decode mismatch")
	}
}

func TestMulVecLinearity(t *testing.T) {
	// Property: G(a xor b) == Ga xor Gb.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 1+r.Intn(80), 1+r.Intn(80)
		g := RandomMatrix(n, k, r)
		a, b := RandomVector(k, r), RandomVector(k, r)
		ab, _ := a.Xor(b)
		gab, _ := g.MulVec(ab)
		ga, _ := g.MulVec(a)
		gb, _ := g.MulVec(b)
		want, _ := ga.Xor(gb)
		return gab.Equal(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
