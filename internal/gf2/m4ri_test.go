package gf2

import (
	"errors"
	"math/rand"
	"testing"
)

// forceSolver returns a Solver pinned to the given elimination path; the
// force knob exists exactly so these tests and the solver benchmarks can
// exercise the dense path below the automatic cutover.
func forceSolver(mode int) *Solver {
	return &Solver{force: mode}
}

// TestDenseSolveMatchesReference is the dense twin of
// TestSolverMatchesReference: across the same randomized square, tall, wide,
// rank-deficient, consistent and inconsistent systems, the forced-dense
// eliminator must return exactly the reference solver's solution bit for bit
// or exactly its error class.
func TestDenseSolveMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	s := forceSolver(forceDense)
	counts := map[string]int{}
	for trial := 0; trial < 400; trial++ {
		kind := []string{"square", "tall", "wide"}[trial%3]
		m, b := randomSystem(t, r, kind)
		want, wantErr := refSolve(m, b)

		rows, _ := matrixRows(m)
		bits := make([]int, m.Rows())
		for i := range bits {
			bits[i] = b.Bit(i)
		}
		got := NewVector(m.Cols())
		err := s.SolveInto(&got, m.Cols(), rows, bits)

		switch {
		case wantErr == nil:
			counts["unique"]++
			if err != nil {
				t.Fatalf("trial %d (%s): dense SolveInto err %v, reference solved", trial, kind, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (%s): dense solution mismatch", trial, kind)
			}
		case errors.Is(wantErr, ErrInconsistent):
			counts["inconsistent"]++
			if !errors.Is(err, ErrInconsistent) {
				t.Fatalf("trial %d (%s): err %v, want ErrInconsistent", trial, kind, err)
			}
		case errors.Is(wantErr, ErrUnderdetermined):
			counts["underdetermined"]++
			if !errors.Is(err, ErrUnderdetermined) {
				t.Fatalf("trial %d (%s): err %v, want ErrUnderdetermined", trial, kind, err)
			}
		default:
			t.Fatalf("trial %d: unexpected reference error %v", trial, wantErr)
		}
	}
	for _, class := range []string{"unique", "inconsistent", "underdetermined"} {
		if counts[class] == 0 {
			t.Errorf("no %s systems generated — dense property sweep lost coverage", class)
		}
	}
}

// TestDenseSolveWideColumns stresses systems whose stripe count exceeds one
// word (cols > 64) and odd widths straddling word boundaries, where the
// stripe index extraction crosses words.
func TestDenseSolveWideColumns(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	s := forceSolver(forceDense)
	ref := forceSolver(forceIncremental)
	for _, cols := range []int{63, 64, 65, 100, 127, 128, 129, 200, 300} {
		for rep := 0; rep < 5; rep++ {
			rows := cols + r.Intn(40)
			m := RandomMatrix(rows, cols, r)
			x := RandomVector(cols, r)
			b, _ := m.MulVec(x)
			rv, _ := matrixRows(m)
			bits := make([]int, rows)
			for i := range bits {
				bits[i] = b.Bit(i)
			}
			got := NewVector(cols)
			gotRef := NewVector(cols)
			errD := s.SolveInto(&got, cols, rv, bits)
			errI := ref.SolveInto(&gotRef, cols, rv, bits)
			if (errD == nil) != (errI == nil) {
				t.Fatalf("cols=%d: dense err %v vs incremental err %v", cols, errD, errI)
			}
			if errD == nil && !got.Equal(gotRef) {
				t.Fatalf("cols=%d: dense and incremental solutions differ", cols)
			}
		}
	}
}

// TestDenseConsistentMatchesIncremental pins SolveConsistentInto across the
// two paths on planted-solution systems, the bit-true decoders' regime.
func TestDenseConsistentMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	s := forceSolver(forceDense)
	for trial := 0; trial < 200; trial++ {
		cols := 1 + r.Intn(150)
		rows := cols + r.Intn(150)
		m := RandomMatrix(rows, cols, r)
		x := RandomVector(cols, r)
		b, _ := m.MulVec(x)
		rv, _ := matrixRows(m)
		bits := make([]int, rows)
		for i := range bits {
			bits[i] = b.Bit(i)
		}
		got := NewVector(cols)
		err := s.SolveConsistentInto(&got, cols, rv, bits)
		if err != nil {
			if !errors.Is(err, ErrUnderdetermined) {
				t.Fatalf("trial %d: err %v, want nil or ErrUnderdetermined", trial, err)
			}
			if refRank(m) == cols {
				t.Fatalf("trial %d: dense consistent solve failed on a full-rank system", trial)
			}
			continue
		}
		if !got.Equal(x) {
			t.Fatalf("trial %d: dense consistent solution is not the planted one", trial)
		}
	}
}

// TestDenseConsistentFallback forces the rank-deficient-prefix escape hatch:
// the first cols+m4riSlack equations are copies of one row, so the dense
// prefix cannot reach full rank and the solver must fall back to the
// incremental path over the complete set — which does solve it.
func TestDenseConsistentFallback(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	const cols = 32
	x := RandomVector(cols, r)
	dup := RandomVector(cols, r)
	dupBit := Dot(dup, x)

	var full Matrix
	for {
		full = RandomMatrix(cols, cols, r)
		if full.Rank() == cols {
			break
		}
	}
	nDup := cols + m4riSlack
	rows := make([]Vector, 0, nDup+cols)
	bits := make([]int, 0, nDup+cols)
	for i := 0; i < nDup; i++ {
		rows = append(rows, dup)
		bits = append(bits, dupBit)
	}
	for i := 0; i < cols; i++ {
		rows = append(rows, full.RowView(i))
		bits = append(bits, Dot(full.RowView(i), x))
	}

	s := forceSolver(forceDense)
	got := NewVector(cols)
	if err := s.SolveConsistentInto(&got, cols, rows, bits); err != nil {
		t.Fatalf("SolveConsistentInto: %v", err)
	}
	if !got.Equal(x) {
		t.Fatalf("fallback solution is not the planted one")
	}
}

// TestDenseAutoCutover pins the size cutover itself: only systems with at
// least m4riMinCols unknowns and at least as many equations go dense.
func TestDenseAutoCutover(t *testing.T) {
	var s Solver
	cases := []struct {
		nrows, cols int
		want        bool
	}{
		{m4riMinCols, m4riMinCols, true},
		{m4riMinCols + 100, m4riMinCols, true},
		{m4riMinCols - 1, m4riMinCols, false}, // underdetermined: stay incremental
		{m4riMinCols, m4riMinCols - 1, false}, // short block: stay incremental
		{64, 64, false},
		{4096, 4096, true},
	}
	for _, c := range cases {
		if got := s.useDense(c.nrows, c.cols); got != c.want {
			t.Errorf("useDense(%d, %d) = %v, want %v", c.nrows, c.cols, got, c.want)
		}
	}
	s.force = forceIncremental
	if s.useDense(4096, 4096) {
		t.Error("forceIncremental did not pin the incremental path")
	}
	s.force = forceDense
	if !s.useDense(4, 4) {
		t.Error("forceDense did not pin the dense path")
	}
}

// TestDenseZeroAllocSteadyState extends the allocation contract across the
// cutover: after Reserve for a dense-path shape, repeated solves — the auto
// path at a real simulator shape — allocate nothing.
func TestDenseZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	const cols = m4riMinCols + 88 // 600 unknowns: the waterfall-test shape
	const rows = cols + m4riSlack
	m := RandomMatrix(rows, cols, r)
	x := RandomVector(cols, r)
	b, _ := m.MulVec(x)
	rv, _ := matrixRows(m)
	bits := make([]int, rows)
	for i := range bits {
		bits[i] = b.Bit(i)
	}

	var s Solver
	s.Reserve(rows, cols)
	dst := NewVector(cols)
	if n := testing.AllocsPerRun(20, func() {
		if err := s.SolveInto(&dst, cols, rv, bits); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("dense solve allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := s.SolveConsistentInto(&dst, cols, rv, bits); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("dense consistent solve allocates %.1f/op, want 0", n)
	}
	if !dst.Equal(x) {
		t.Fatal("dense steady-state solution is not the planted one")
	}
}
