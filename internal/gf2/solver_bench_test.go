package gf2

import (
	"math/rand"
	"testing"
)

// benchSolve measures a consistent-mode solve of k unknowns from k+m4riSlack
// random equations — the bit-true decoders' shape — with the elimination
// path pinned by force. One warm solve before the timer grows the scratch,
// so the loop measures the allocation-free steady state of each path.
func benchSolve(b *testing.B, k, force int) {
	r := rand.New(rand.NewSource(int64(k)))
	rows := k + m4riSlack
	var m Matrix
	for {
		m = RandomMatrix(rows, k, r)
		if m.Rank() == k {
			break
		}
	}
	x := RandomVector(k, r)
	rhs, _ := m.MulVec(x)
	rv, _ := matrixRows(m)
	bits := make([]int, rows)
	for i := range bits {
		bits[i] = rhs.Bit(i)
	}
	s := forceSolver(force)
	dst := NewVector(k)
	if err := s.SolveConsistentInto(&dst, k, rv, bits); err != nil {
		b.Fatal(err)
	}
	if !dst.Equal(x) {
		b.Fatal("solver returned a wrong solution")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveConsistentInto(&dst, k, rv, bits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveIncremental256(b *testing.B) { benchSolve(b, 256, forceIncremental) }
func BenchmarkSolveM4RI256(b *testing.B)        { benchSolve(b, 256, forceDense) }
func BenchmarkSolveIncremental1k(b *testing.B)  { benchSolve(b, 1024, forceIncremental) }
func BenchmarkSolveM4RI1k(b *testing.B)         { benchSolve(b, 1024, forceDense) }
func BenchmarkSolveIncremental4k(b *testing.B)  { benchSolve(b, 4096, forceIncremental) }
func BenchmarkSolveM4RI4k(b *testing.B)         { benchSolve(b, 4096, forceDense) }
