// Package dmc models discrete memoryless channels (DMCs) as row-stochastic
// transition matrices W(y|x), the setting of Section II-III of the paper. It
// provides standard constructors (BSC, BEC, Z-channel), composition and
// product channels, mutual information for a given input distribution,
// capacity via the Blahut-Arimoto algorithm, sampling, the half-duplex
// "silence symbol" lift X* = X ∪ {∅} used by the paper's protocol model, and
// a quantizer that discretizes a Gaussian channel into a DMC.
package dmc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bicoop/internal/prob"
)

const tol = 1e-9

// Errors returned by this package.
var (
	ErrEmpty         = errors.New("dmc: empty channel")
	ErrRagged        = errors.New("dmc: ragged transition matrix")
	ErrNotStochastic = errors.New("dmc: rows must be probability distributions")
	ErrShape         = errors.New("dmc: dimension mismatch")
	ErrNoConverge    = errors.New("dmc: Blahut-Arimoto did not converge")
)

// Channel is a discrete memoryless channel with transition matrix
// W[x][y] = P(Y = y | X = x).
type Channel struct {
	W [][]float64
}

// New builds a channel from a transition matrix, validating row-stochasticity.
func New(w [][]float64) (Channel, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return Channel{}, ErrEmpty
	}
	ny := len(w[0])
	for x, row := range w {
		if len(row) != ny {
			return Channel{}, fmt.Errorf("%w: row %d has %d entries, want %d", ErrRagged, x, len(row), ny)
		}
		var sum float64
		for y, v := range row {
			if v < -tol {
				return Channel{}, fmt.Errorf("%w: W[%d][%d] = %g", ErrNotStochastic, x, y, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return Channel{}, fmt.Errorf("%w: row %d sums to %g", ErrNotStochastic, x, sum)
		}
	}
	return Channel{W: w}, nil
}

// MustNew is New but panics on error; it is intended for package-internal
// constructors whose matrices are correct by construction, and for tests.
func MustNew(w [][]float64) Channel {
	c, err := New(w)
	if err != nil {
		panic(err)
	}
	return c
}

// Nx returns the input alphabet size.
func (c Channel) Nx() int { return len(c.W) }

// Ny returns the output alphabet size.
func (c Channel) Ny() int {
	if len(c.W) == 0 {
		return 0
	}
	return len(c.W[0])
}

// BSC returns a binary symmetric channel with crossover probability eps.
func BSC(eps float64) Channel {
	return Channel{W: [][]float64{
		{1 - eps, eps},
		{eps, 1 - eps},
	}}
}

// BEC returns a binary erasure channel with erasure probability eps.
// Output symbol 2 is the erasure.
func BEC(eps float64) Channel {
	return Channel{W: [][]float64{
		{1 - eps, 0, eps},
		{0, 1 - eps, eps},
	}}
}

// ZChannel returns the asymmetric Z-channel: input 0 is noiseless, input 1
// flips to 0 with probability eps.
func ZChannel(eps float64) Channel {
	return Channel{W: [][]float64{
		{1, 0},
		{eps, 1 - eps},
	}}
}

// Noiseless returns the identity channel over n symbols.
func Noiseless(n int) Channel {
	w := make([][]float64, n)
	for x := range w {
		w[x] = make([]float64, n)
		w[x][x] = 1
	}
	return Channel{W: w}
}

// Compose returns the cascade channel c2 ∘ c1: input through c1, its output
// through c2. c1.Ny() must equal c2.Nx().
func Compose(c1, c2 Channel) (Channel, error) {
	if c1.Ny() != c2.Nx() {
		return Channel{}, fmt.Errorf("%w: c1 outputs %d, c2 inputs %d", ErrShape, c1.Ny(), c2.Nx())
	}
	out := make([][]float64, c1.Nx())
	for x := range out {
		out[x] = make([]float64, c2.Ny())
		for mid := 0; mid < c1.Ny(); mid++ {
			pMid := c1.W[x][mid]
			if pMid == 0 {
				continue
			}
			for y := 0; y < c2.Ny(); y++ {
				out[x][y] += pMid * c2.W[mid][y]
			}
		}
	}
	return Channel{W: out}, nil
}

// Product returns the product channel (c1 x c2) whose input (x1,x2) and
// output (y1,y2) are indexed as x1*c2.Nx()+x2 and y1*c2.Ny()+y2.
func Product(c1, c2 Channel) Channel {
	nx, ny := c1.Nx()*c2.Nx(), c1.Ny()*c2.Ny()
	out := make([][]float64, nx)
	for x1 := 0; x1 < c1.Nx(); x1++ {
		for x2 := 0; x2 < c2.Nx(); x2++ {
			row := make([]float64, ny)
			for y1 := 0; y1 < c1.Ny(); y1++ {
				for y2 := 0; y2 < c2.Ny(); y2++ {
					row[y1*c2.Ny()+y2] = c1.W[x1][y1] * c2.W[x2][y2]
				}
			}
			out[x1*c2.Nx()+x2] = row
		}
	}
	return Channel{W: out}
}

// MutualInformation returns I(X;Y) in bits when px drives the channel.
func (c Channel) MutualInformation(px prob.PMF) (float64, error) {
	j, err := prob.JointFromInputChannel(px, c.W)
	if err != nil {
		return 0, err
	}
	return j.MutualInformation(), nil
}

// OutputDist returns the output distribution induced by px.
func (c Channel) OutputDist(px prob.PMF) (prob.PMF, error) {
	if len(px) != c.Nx() {
		return nil, fmt.Errorf("%w: input %d, channel %d", ErrShape, len(px), c.Nx())
	}
	out := make(prob.PMF, c.Ny())
	for x, row := range c.W {
		if px[x] == 0 {
			continue
		}
		for y, v := range row {
			out[y] += px[x] * v
		}
	}
	return out, nil
}

// Sample draws one channel output for input x using r.
func (c Channel) Sample(x int, r *rand.Rand) int {
	u := r.Float64()
	var cum float64
	row := c.W[x]
	for y, v := range row {
		cum += v
		if u < cum {
			return y
		}
	}
	return len(row) - 1
}

// CapacityResult carries the outcome of a Blahut-Arimoto run.
type CapacityResult struct {
	// Capacity in bits per channel use.
	Capacity float64
	// Input is the capacity-achieving input distribution found.
	Input prob.PMF
	// Iterations actually performed.
	Iterations int
}

// Capacity computes the channel capacity by the Blahut-Arimoto algorithm to
// absolute accuracy eps (in bits), up to maxIter iterations. A non-positive
// eps defaults to 1e-10, a non-positive maxIter to 10000.
func (c Channel) Capacity(eps float64, maxIter int) (CapacityResult, error) {
	if c.Nx() == 0 || c.Ny() == 0 {
		return CapacityResult{}, ErrEmpty
	}
	if eps <= 0 {
		eps = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	nx, ny := c.Nx(), c.Ny()
	px := prob.NewUniform(nx)
	d := make([]float64, nx) // D(W(.|x) || q) per input, in bits
	for iter := 1; iter <= maxIter; iter++ {
		q, err := c.OutputDist(px)
		if err != nil {
			return CapacityResult{}, err
		}
		// d[x] = sum_y W(y|x) log2( W(y|x)/q(y) ).
		lower := math.Inf(-1) // I(px) = sum_x px[x] d[x]
		upper := math.Inf(-1) // max_x d[x]
		var ilow float64
		for x := 0; x < nx; x++ {
			var dx float64
			for y := 0; y < ny; y++ {
				w := c.W[x][y]
				if w > 0 {
					dx += w * math.Log2(w/q[y])
				}
			}
			d[x] = dx
			ilow += px[x] * dx
			if dx > upper {
				upper = dx
			}
		}
		lower = ilow
		if upper-lower < eps {
			return CapacityResult{Capacity: lower, Input: px, Iterations: iter}, nil
		}
		// Multiplicative update: px[x] ∝ px[x] · 2^{d[x]}. Subtract the max
		// exponent for numerical stability.
		var sum float64
		for x := 0; x < nx; x++ {
			px[x] *= math.Exp2(d[x] - upper)
			sum += px[x]
		}
		for x := 0; x < nx; x++ {
			px[x] /= sum
		}
	}
	return CapacityResult{}, fmt.Errorf("%w after %d iterations", ErrNoConverge, maxIter)
}

// Silence is the conventional index of the half-duplex silence symbol ∅ in a
// lifted channel: it is always appended as the last input symbol.
//
// LiftHalfDuplex implements the paper's alphabet extension X* = X ∪ {∅}: the
// returned channel has one extra input (the silence symbol, index Nx()) whose
// output distribution is the supplied idle distribution (what the receiver
// observes when this transmitter is silent). If idle is nil, silence produces
// the uniform output distribution, modeling pure noise.
func LiftHalfDuplex(c Channel, idle prob.PMF) (Channel, error) {
	ny := c.Ny()
	if idle == nil {
		idle = prob.NewUniform(ny)
	}
	if len(idle) != ny {
		return Channel{}, fmt.Errorf("%w: idle has %d entries, channel outputs %d", ErrShape, len(idle), ny)
	}
	w := make([][]float64, c.Nx()+1)
	for x, row := range c.W {
		w[x] = append([]float64(nil), row...)
	}
	w[c.Nx()] = append([]float64(nil), idle...)
	return Channel{W: w}, nil
}

// QuantizeAWGN discretizes a real AWGN channel Y = sqrt(snr)·X + Z (X = ±1
// BPSK, Z ~ N(0,1)) into a DMC with nOut equiprobable-width output bins over
// [-lim, lim] (plus the two tails). The resulting DMC capacity converges to
// the BPSK-constrained AWGN capacity as nOut grows, which tests pin against
// C(snr) at low SNR.
func QuantizeAWGN(snr float64, nOut int, lim float64) (Channel, error) {
	if nOut < 2 {
		return Channel{}, fmt.Errorf("dmc: need at least 2 output bins, got %d", nOut)
	}
	if lim <= 0 {
		lim = 4 + math.Sqrt(snr)
	}
	amp := math.Sqrt(snr)
	edges := make([]float64, nOut+1)
	edges[0] = math.Inf(-1)
	for i := 1; i < nOut; i++ {
		edges[i] = -lim + 2*lim*float64(i)/float64(nOut)
	}
	edges[nOut] = math.Inf(1)
	gaussCDF := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	w := make([][]float64, 2)
	for xi, mean := range []float64{-amp, amp} {
		row := make([]float64, nOut)
		for y := 0; y < nOut; y++ {
			row[y] = gaussCDF(edges[y+1]-mean) - gaussCDF(edges[y]-mean)
		}
		// Renormalize away any rounding residue.
		var sum float64
		for _, v := range row {
			sum += v
		}
		for y := range row {
			row[y] /= sum
		}
		w[xi] = row
	}
	return Channel{W: w}, nil
}
