package dmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bicoop/internal/prob"
)

func TestEmpiricalMIMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		c    Channel
		px   prob.PMF
	}{
		{name: "bsc uniform", c: BSC(0.11), px: prob.NewUniform(2)},
		{name: "bsc skewed", c: BSC(0.2), px: prob.PMF{0.8, 0.2}},
		{name: "bec", c: BEC(0.3), px: prob.NewUniform(2)},
		{name: "z channel", c: ZChannel(0.4), px: prob.PMF{0.6, 0.4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want, err := tt.c.MutualInformation(tt.px)
			if err != nil {
				t.Fatal(err)
			}
			const n = 300000
			got, bias, err := EmpiricalMI(tt.c, tt.px, n, rng)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-bias-want) > 0.01 {
				t.Errorf("empirical %v (bias %v) vs analytic %v", got, bias, want)
			}
		})
	}
}

func TestEmpiricalMIBiasShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := BSC(0.25)
	px := prob.NewUniform(2)
	_, biasSmall, err := EmpiricalMI(c, px, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, biasLarge, err := EmpiricalMI(c, px, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if biasLarge >= biasSmall {
		t.Errorf("bias correction should shrink with n: %v -> %v", biasSmall, biasLarge)
	}
}

func TestEmpiricalMIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := BSC(0.1)
	if _, _, err := EmpiricalMI(c, prob.NewUniform(2), 0, rng); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	if _, _, err := EmpiricalMI(c, prob.NewUniform(2), 10, nil); err == nil {
		t.Error("nil RNG should error")
	}
	if _, _, err := EmpiricalMI(c, prob.NewUniform(3), 10, rng); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestEmpiricalMINeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A useless channel: MI is 0, the plug-in estimate is small positive.
	c := BSC(0.5)
	got, bias, err := EmpiricalMI(c, prob.NewUniform(2), 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 {
		t.Errorf("plug-in MI negative: %v", got)
	}
	if got > 10*bias+1e-3 {
		t.Errorf("useless channel MI %v should be within noise of the bias %v", got, bias)
	}
}
