package dmc

import (
	"errors"
	"fmt"
	"math/rand"

	"bicoop/internal/prob"
)

// ErrNoSamples is returned when an empirical estimate is requested with a
// non-positive sample budget.
var ErrNoSamples = errors.New("dmc: sample count must be positive")

// EmpiricalMI estimates I(X;Y) by sampling: draw n inputs from px, pass
// each through the channel, histogram the (x, y) pairs, and compute the
// plug-in mutual information of the empirical joint. The plug-in estimator
// is biased upward by roughly (|X|-1)(|Y|-1)/(2n·ln2) bits (Miller-Madow);
// the returned bias field carries that correction so callers can subtract
// it. This closes the loop between the analytic MI path and the Sample
// path, and tests pin the two against each other.
func EmpiricalMI(c Channel, px prob.PMF, n int, rng *rand.Rand) (mi, biasCorrection float64, err error) {
	if n <= 0 {
		return 0, 0, ErrNoSamples
	}
	if rng == nil {
		return 0, 0, errors.New("dmc: nil RNG")
	}
	if len(px) != c.Nx() {
		return 0, 0, fmt.Errorf("%w: input %d, channel %d", ErrShape, len(px), c.Nx())
	}
	counts := prob.NewJoint(c.Nx(), c.Ny())
	for i := 0; i < n; i++ {
		x := samplePMF(px, rng)
		y := c.Sample(x, rng)
		counts.P[x][y]++
	}
	for x := range counts.P {
		for y := range counts.P[x] {
			counts.P[x][y] /= float64(n)
		}
	}
	miHat := counts.MutualInformation()
	bias := float64((c.Nx()-1)*(c.Ny()-1)) / (2 * float64(n) * ln2)
	return miHat, bias, nil
}

// ln2 in a local constant to avoid importing math for one symbol.
const ln2 = 0.6931471805599453

// samplePMF draws one index from p.
func samplePMF(p prob.PMF, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, v := range p {
		cum += v
		if u < cum {
			return i
		}
	}
	return len(p) - 1
}
