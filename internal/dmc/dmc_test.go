package dmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bicoop/internal/prob"
	"bicoop/internal/xmath"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		w    [][]float64
		ok   bool
	}{
		{name: "empty", w: nil, ok: false},
		{name: "empty row", w: [][]float64{{}}, ok: false},
		{name: "ragged", w: [][]float64{{1}, {0.5, 0.5}}, ok: false},
		{name: "negative", w: [][]float64{{-0.5, 1.5}}, ok: false},
		{name: "not stochastic", w: [][]float64{{0.5, 0.4}}, ok: false},
		{name: "good", w: [][]float64{{0.5, 0.5}, {0.2, 0.8}}, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.w)
			if tt.ok && err != nil {
				t.Errorf("New = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("New = nil, want error")
			}
		})
	}
}

func TestBSCCapacity(t *testing.T) {
	tests := []struct {
		name string
		eps  float64
		want float64
	}{
		{name: "clean", eps: 0, want: 1},
		{name: "typical", eps: 0.11, want: 1 - xmath.EntropyBinary(0.11)},
		{name: "useless", eps: 0.5, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := BSC(tt.eps).Capacity(1e-11, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !xmath.ApproxEqual(res.Capacity, tt.want, 1e-8) {
				t.Errorf("Capacity = %v, want %v", res.Capacity, tt.want)
			}
			// BSC capacity is achieved by the uniform input.
			if !xmath.ApproxEqual(res.Input[0], 0.5, 1e-4) {
				t.Errorf("capacity-achieving input = %v, want uniform", res.Input)
			}
		})
	}
}

func TestBECCapacity(t *testing.T) {
	for _, eps := range []float64{0, 0.25, 0.5, 0.9} {
		res, err := BEC(eps).Capacity(1e-11, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(res.Capacity, 1-eps, 1e-8) {
			t.Errorf("BEC(%v) capacity = %v, want %v", eps, res.Capacity, 1-eps)
		}
	}
}

func TestZChannelCapacity(t *testing.T) {
	// Known closed form: C = log2(1 + (1-eps) eps^{eps/(1-eps)}).
	eps := 0.5
	want := math.Log2(1 + (1-eps)*math.Pow(eps, eps/(1-eps)))
	res, err := ZChannel(eps).Capacity(1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.ApproxEqual(res.Capacity, want, 1e-8) {
		t.Errorf("Z(0.5) capacity = %v, want %v", res.Capacity, want)
	}
	// The optimal input for the Z-channel is biased toward the clean symbol.
	if res.Input[0] <= 0.5 {
		t.Errorf("optimal input %v should favor symbol 0", res.Input)
	}
}

func TestCapacityUpperBoundsMI(t *testing.T) {
	// Capacity must dominate the MI of any particular input distribution.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nx, ny := 2+r.Intn(3), 2+r.Intn(3)
		w := make([][]float64, nx)
		for x := range w {
			row := make([]float64, ny)
			var sum float64
			for y := range row {
				row[y] = r.Float64()
				sum += row[y]
			}
			for y := range row {
				row[y] /= sum
			}
			w[x] = row
		}
		ch := MustNew(w)
		res, err := ch.Capacity(1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			px := make(prob.PMF, nx)
			for i := range px {
				px[i] = r.Float64()
			}
			px.Normalize()
			mi, err := ch.MutualInformation(px)
			if err != nil {
				t.Fatal(err)
			}
			if mi > res.Capacity+1e-7 {
				t.Fatalf("MI %v exceeds capacity %v", mi, res.Capacity)
			}
		}
	}
}

func TestCompose(t *testing.T) {
	t.Run("two BSCs", func(t *testing.T) {
		// Cascade of BSC(a) and BSC(b) is BSC(a(1-b) + b(1-a)).
		a, b := 0.1, 0.2
		got, err := Compose(BSC(a), BSC(b))
		if err != nil {
			t.Fatal(err)
		}
		eff := a*(1-b) + b*(1-a)
		want := BSC(eff)
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				if !xmath.ApproxEqual(got.W[x][y], want.W[x][y], 1e-12) {
					t.Errorf("W[%d][%d] = %v, want %v", x, y, got.W[x][y], want.W[x][y])
				}
			}
		}
	})
	t.Run("identity is neutral", func(t *testing.T) {
		c := BSC(0.3)
		got, err := Compose(c, Noiseless(2))
		if err != nil {
			t.Fatal(err)
		}
		for x := range c.W {
			for y := range c.W[x] {
				if !xmath.ApproxEqual(got.W[x][y], c.W[x][y], 1e-12) {
					t.Errorf("compose with identity changed W[%d][%d]", x, y)
				}
			}
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		if _, err := Compose(BEC(0.1), BSC(0.1)); err == nil {
			t.Error("want shape error: BEC outputs 3 symbols, BSC accepts 2")
		}
	})
}

func TestProduct(t *testing.T) {
	c := Product(BSC(0.1), BSC(0.2))
	if c.Nx() != 4 || c.Ny() != 4 {
		t.Fatalf("product dims = %dx%d, want 4x4", c.Nx(), c.Ny())
	}
	if _, err := New(c.W); err != nil {
		t.Fatalf("product not stochastic: %v", err)
	}
	// Capacity of a product channel is the sum of capacities.
	res, err := c.Capacity(1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - xmath.EntropyBinary(0.1)) + (1 - xmath.EntropyBinary(0.2))
	if !xmath.ApproxEqual(res.Capacity, want, 1e-7) {
		t.Errorf("product capacity = %v, want %v", res.Capacity, want)
	}
}

func TestSampleDistribution(t *testing.T) {
	c := BSC(0.25)
	r := rand.New(rand.NewSource(42))
	const n = 200000
	var flips int
	for i := 0; i < n; i++ {
		if c.Sample(0, r) == 1 {
			flips++
		}
	}
	got := float64(flips) / n
	if math.Abs(got-0.25) > 0.005 {
		t.Errorf("empirical flip rate = %v, want 0.25 +- 0.005", got)
	}
}

func TestLiftHalfDuplex(t *testing.T) {
	t.Run("default idle", func(t *testing.T) {
		lifted, err := LiftHalfDuplex(BSC(0.1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if lifted.Nx() != 3 || lifted.Ny() != 2 {
			t.Fatalf("lifted dims = %dx%d, want 3x2", lifted.Nx(), lifted.Ny())
		}
		// Silence row is uniform: receiving pure noise.
		if !xmath.ApproxEqual(lifted.W[2][0], 0.5, 1e-12) {
			t.Errorf("silence output = %v, want uniform", lifted.W[2])
		}
		// Silence carries no information on its own but the lifted channel
		// capacity cannot drop below the original.
		orig, err := BSC(0.1).Capacity(1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lifted.Capacity(1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Capacity < orig.Capacity-1e-7 {
			t.Errorf("lift reduced capacity: %v < %v", res.Capacity, orig.Capacity)
		}
	})
	t.Run("custom idle", func(t *testing.T) {
		lifted, err := LiftHalfDuplex(BSC(0), prob.PMF{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		// Silence now mimics sending 0, so it is a usable third "symbol"
		// only insofar as it collides with input 0; capacity stays 1 bit.
		res, err := lifted.Capacity(1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(res.Capacity, 1, 1e-6) {
			t.Errorf("capacity = %v, want 1", res.Capacity)
		}
	})
	t.Run("bad idle shape", func(t *testing.T) {
		if _, err := LiftHalfDuplex(BSC(0.1), prob.PMF{1}); err == nil {
			t.Error("want shape error")
		}
	})
}

func TestQuantizeAWGN(t *testing.T) {
	t.Run("stochastic", func(t *testing.T) {
		c, err := QuantizeAWGN(1.0, 16, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(c.W); err != nil {
			t.Fatalf("quantized channel invalid: %v", err)
		}
	})
	t.Run("capacity increases with resolution", func(t *testing.T) {
		prev := -1.0
		for _, nOut := range []int{2, 4, 8, 32} {
			c, err := QuantizeAWGN(0.5, nOut, 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Capacity(1e-10, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Capacity < prev-1e-9 {
				t.Fatalf("capacity decreased with finer quantization: %v -> %v at %d bins", prev, res.Capacity, nOut)
			}
			prev = res.Capacity
		}
	})
	t.Run("low snr approaches gaussian capacity", func(t *testing.T) {
		// At low SNR the BPSK constraint is nearly immaterial, so the finely
		// quantized DMC capacity should approach the real-AWGN capacity
		// (1/2)·log2(1+snr).
		snr := 0.1
		c, err := QuantizeAWGN(snr, 256, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Capacity(1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.5 * xmath.C(snr)
		if res.Capacity > want+1e-9 {
			t.Errorf("quantized capacity %v exceeds Gaussian capacity %v", res.Capacity, want)
		}
		if res.Capacity < 0.9*want {
			t.Errorf("quantized capacity %v too far below Gaussian capacity %v", res.Capacity, want)
		}
	})
	t.Run("too few bins", func(t *testing.T) {
		if _, err := QuantizeAWGN(1, 1, 0); err == nil {
			t.Error("want error for 1 bin")
		}
	})
}

func TestOutputDist(t *testing.T) {
	c := BEC(0.25)
	out, err := c.OutputDist(prob.PMF{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := prob.PMF{0.375, 0.375, 0.25}
	for i := range want {
		if !xmath.ApproxEqual(out[i], want[i], 1e-12) {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := c.OutputDist(prob.PMF{1}); err == nil {
		t.Error("want shape error")
	}
}

func TestMutualInformationSymmetricProperty(t *testing.T) {
	// For the BSC with uniform input, MI(p) is symmetric: I(eps) == I(1-eps).
	prop := func(raw float64) bool {
		eps := math.Mod(math.Abs(raw), 1)
		u := prob.NewUniform(2)
		a, err1 := BSC(eps).MutualInformation(u)
		b, err2 := BSC(1 - eps).MutualInformation(u)
		return err1 == nil && err2 == nil && xmath.ApproxEqual(a, b, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDataProcessingInequality(t *testing.T) {
	// I(X; Z) <= I(X; Y) for X -> Y -> Z. Cascade BSCs and check via MI.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		e1, e2 := r.Float64()/2, r.Float64()/2
		px := prob.PMF{r.Float64(), 0}
		px[1] = 1 - px[0]
		first := BSC(e1)
		cascade, err := Compose(first, BSC(e2))
		if err != nil {
			t.Fatal(err)
		}
		ixy, err := first.MutualInformation(px)
		if err != nil {
			t.Fatal(err)
		}
		ixz, err := cascade.MutualInformation(px)
		if err != nil {
			t.Fatal(err)
		}
		if ixz > ixy+1e-9 {
			t.Fatalf("data processing violated: I(X;Z)=%v > I(X;Y)=%v (e1=%v e2=%v)", ixz, ixy, e1, e2)
		}
	}
}
