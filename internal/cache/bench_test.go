package cache

import (
	"testing"

	"bicoop/internal/protocols"
)

// BenchmarkCacheHit pins the hit path: one sharded lookup must stay 0
// allocs/op (the ledger's alloc gate fails any drift from zero) and a few
// tens of nanoseconds — the whole premise of serving repeat sweep points
// from cache instead of an LP solve.
func BenchmarkCacheHit(b *testing.B) {
	s := NewStore(1 << 12)
	keys := make([]Key, 512)
	for i := range keys {
		keys[i] = SumRateKey(protocols.HBC, protocols.BoundInner, float64(i)/10, -3, 0, 5)
		s.Add(keys[i], MakeValue(float64(i), 1, 2, []float64{0.25, 0.25, 0.25, 0.25}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(keys[i&511]); !ok {
			b.Fatal("miss")
		}
	}
}
