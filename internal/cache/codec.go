package cache

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"bicoop/internal/protocols"
)

// The durable tier (internal/service) persists cache entries as
// fixed-size little-endian records:
//
//	key    52 bytes: Version, Kind, Proto, Bound (uint8 each),
//	                 MuA, MuB, A, B, C, D (int64 each)
//	value  57 bytes: Sum, Ra, Rb (float64), NDur (uint8),
//	                 Dur[MaxPhases] (float64 each)
//	crc     4 bytes: CRC32 (IEEE) of the 109 payload bytes
//
// Fixed size plus a trailing checksum makes crash recovery trivial: a
// torn append is either a short tail (length not a record multiple) or a
// record whose CRC fails, and replay stops at the first such record.

const (
	keyBytes   = 4 + 6*8
	valueBytes = 3*8 + 1 + protocols.MaxPhases*8

	// RecordSize is the encoded length of one (key, value) record.
	RecordSize = keyBytes + valueBytes + 4
)

// ErrBadRecord reports a record that failed checksum or sanity checks.
var ErrBadRecord = errors.New("cache: bad record")

// AppendRecord appends the encoded record for (k, v) to dst.
func AppendRecord(dst []byte, k Key, v Value) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, RecordSize)...)
	b := dst[off:]
	b[0], b[1], b[2], b[3] = k.Version, k.Kind, k.Proto, k.Bound
	le := binary.LittleEndian
	le.PutUint64(b[4:], uint64(k.MuA))
	le.PutUint64(b[12:], uint64(k.MuB))
	le.PutUint64(b[20:], uint64(k.A))
	le.PutUint64(b[28:], uint64(k.B))
	le.PutUint64(b[36:], uint64(k.C))
	le.PutUint64(b[44:], uint64(k.D))
	le.PutUint64(b[52:], math.Float64bits(v.Sum))
	le.PutUint64(b[60:], math.Float64bits(v.Ra))
	le.PutUint64(b[68:], math.Float64bits(v.Rb))
	b[76] = v.NDur
	for i := 0; i < protocols.MaxPhases; i++ {
		le.PutUint64(b[77+8*i:], math.Float64bits(v.Dur[i]))
	}
	le.PutUint32(b[RecordSize-4:], crc32.ChecksumIEEE(b[:RecordSize-4]))
	return dst
}

// DecodeRecord decodes one record from the first RecordSize bytes of b.
// It returns ErrBadRecord when the checksum fails, the key version is
// unknown, or the duration count is out of range.
func DecodeRecord(b []byte) (Key, Value, error) {
	var k Key
	var v Value
	if len(b) < RecordSize {
		return k, v, ErrBadRecord
	}
	b = b[:RecordSize]
	le := binary.LittleEndian
	if le.Uint32(b[RecordSize-4:]) != crc32.ChecksumIEEE(b[:RecordSize-4]) {
		return k, v, ErrBadRecord
	}
	k.Version, k.Kind, k.Proto, k.Bound = b[0], b[1], b[2], b[3]
	if k.Version != KeyVersion || (k.Kind != KindWeighted && k.Kind != KindErasure) {
		return k, v, ErrBadRecord
	}
	k.MuA = int64(le.Uint64(b[4:]))
	k.MuB = int64(le.Uint64(b[12:]))
	k.A = int64(le.Uint64(b[20:]))
	k.B = int64(le.Uint64(b[28:]))
	k.C = int64(le.Uint64(b[36:]))
	k.D = int64(le.Uint64(b[44:]))
	v.Sum = math.Float64frombits(le.Uint64(b[52:]))
	v.Ra = math.Float64frombits(le.Uint64(b[60:]))
	v.Rb = math.Float64frombits(le.Uint64(b[68:]))
	v.NDur = b[76]
	if v.NDur > protocols.MaxPhases {
		return k, v, ErrBadRecord
	}
	for i := 0; i < protocols.MaxPhases; i++ {
		v.Dur[i] = math.Float64frombits(le.Uint64(b[77+8*i:]))
	}
	return k, v, nil
}

// Replay decodes records from data in order, calling fill for each, and
// stops at the first bad or truncated record. It returns the number of
// bytes consumed and whether the whole input was clean (consumed ==
// len(data) with no bad record) — a false return means the log has a
// torn or corrupt tail that compaction should drop.
func Replay(data []byte, fill func(Key, Value)) (consumed int, clean bool) {
	off := 0
	for len(data)-off >= RecordSize {
		k, v, err := DecodeRecord(data[off:])
		if err != nil {
			return off, false
		}
		fill(k, v)
		off += RecordSize
	}
	return off, off == len(data)
}
