package cache

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"bicoop/internal/protocols"
)

func TestQuantize(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{1e-10, 0},   // below grid resolution
		{5e-10, 1},   // tie rounds away from zero
		{-5e-10, -1}, // symmetric
		{3.25, 3250000000},
		{-17.5, -17500000000},
		{math.NaN(), math.MinInt64},
		{math.Inf(-1), math.MinInt64},
		{math.Inf(1), math.MaxInt64},
		{1e12, math.MaxInt64}, // overflow clamps
		{-1e12, math.MinInt64},
	}
	for _, c := range cases {
		if got := Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestKeyConstructors(t *testing.T) {
	k := SumRateKey(protocols.MABC, protocols.BoundInner, 10, -3, 0, 5)
	if k != WeightedKey(protocols.MABC, protocols.BoundInner, 10, -3, 0, 5, 1, 1) {
		t.Error("SumRateKey is not the muA=muB=1 WeightedKey")
	}
	if k.Version != KeyVersion || k.Kind != KindWeighted {
		t.Errorf("unexpected version/kind: %+v", k)
	}
	distinct := []Key{
		k,
		SumRateKey(protocols.TDBC, protocols.BoundInner, 10, -3, 0, 5),
		SumRateKey(protocols.MABC, protocols.BoundOuter, 10, -3, 0, 5),
		SumRateKey(protocols.MABC, protocols.BoundInner, 10.5, -3, 0, 5),
		WeightedKey(protocols.MABC, protocols.BoundInner, 10, -3, 0, 5, 0.25, 1),
		ErasureKey(0.1, 0.2, 0.3),
	}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if distinct[i] == distinct[j] {
				t.Errorf("keys %d and %d collide: %+v", i, j, distinct[i])
			}
		}
	}
	// Same coordinates within grid resolution produce the same key.
	if SumRateKey(protocols.DT, protocols.BoundInner, 10+2e-10, 0, 0, 0) !=
		SumRateKey(protocols.DT, protocols.BoundInner, 10, 0, 0, 0) {
		t.Error("sub-grid perturbation changed the key")
	}
}

func TestValueRoundTrip(t *testing.T) {
	v := MakeValue(1.5, 1.0, 0.5, []float64{0.25, 0.75})
	if v.Sum != 1.5 || v.Ra != 1.0 || v.Rb != 0.5 || v.NDur != 2 {
		t.Fatalf("MakeValue: %+v", v)
	}
	d := v.Durations()
	if len(d) != 2 || d[0] != 0.25 || d[1] != 0.75 {
		t.Fatalf("Durations: %v", d)
	}
	if MakeValue(0, 0, 0, nil).Durations() != nil {
		t.Error("empty durations should round-trip to nil")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf []byte
	var keys []Key
	var vals []Value
	for i := 0; i < 200; i++ {
		k := WeightedKey(protocols.HBC, protocols.BoundOuter,
			rng.Float64()*40-20, rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5,
			rng.Float64(), rng.Float64())
		if i%3 == 0 {
			k = ErasureKey(rng.Float64(), rng.Float64(), rng.Float64())
		}
		v := MakeValue(rng.Float64(), rng.Float64(), rng.Float64(),
			[]float64{rng.Float64(), rng.Float64(), rng.Float64()})
		keys = append(keys, k)
		vals = append(vals, v)
		buf = AppendRecord(buf, k, v)
	}
	if len(buf) != 200*RecordSize {
		t.Fatalf("encoded length %d, want %d", len(buf), 200*RecordSize)
	}
	i := 0
	consumed, clean := Replay(buf, func(k Key, v Value) {
		if k != keys[i] || v != vals[i] {
			t.Fatalf("record %d mismatch", i)
		}
		i++
	})
	if !clean || consumed != len(buf) || i != 200 {
		t.Fatalf("replay: consumed=%d clean=%v n=%d", consumed, clean, i)
	}
}

func TestReplayTornTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = AppendRecord(buf, SumRateKey(protocols.DT, protocols.BoundInner, float64(i), 0, 0, 0), MakeValue(float64(i), 0, 0, nil))
	}
	// Truncate mid-record: replay keeps the clean prefix.
	torn := buf[:9*RecordSize+17]
	n := 0
	consumed, clean := Replay(torn, func(Key, Value) { n++ })
	if clean || n != 9 || consumed != 9*RecordSize {
		t.Fatalf("torn tail: consumed=%d clean=%v n=%d", consumed, clean, n)
	}
	// Corrupt a byte in the middle: replay stops at the bad record.
	bad := append([]byte(nil), buf...)
	bad[4*RecordSize+20] ^= 0xff
	n = 0
	consumed, clean = Replay(bad, func(Key, Value) { n++ })
	if clean || n != 4 || consumed != 4*RecordSize {
		t.Fatalf("corrupt record: consumed=%d clean=%v n=%d", consumed, clean, n)
	}
	if _, _, err := DecodeRecord(buf[:RecordSize-1]); err == nil {
		t.Error("short buffer should fail to decode")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore(1024)
	k := SumRateKey(protocols.MABC, protocols.BoundInner, 10, 0, 0, 0)
	if _, ok := s.Lookup(k); ok {
		t.Fatal("lookup on empty store hit")
	}
	v := MakeValue(2.5, 1.5, 1.0, []float64{0.5, 0.5})
	s.Add(k, v)
	got, ok := s.Lookup(k)
	if !ok || got != v {
		t.Fatalf("lookup after add: %+v ok=%v", got, ok)
	}
	v2 := MakeValue(3.0, 2.0, 1.0, []float64{0.4, 0.6})
	s.Add(k, v2) // overwrite
	if got, _ := s.Lookup(k); got != v2 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Fills != 1 || st.Evictions != 0 {
		t.Fatalf("stats: %+v", st)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	if _, ok := s.Lookup(k); ok {
		t.Fatal("lookup after Reset hit")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("Reset should zero counters then count the probe miss: %+v", st)
	}
}

func TestStoreNoEvictionBelowCapacity(t *testing.T) {
	// Eviction is per-shard, so an adversarial key set could overflow one
	// shard below global capacity; a seeded spread at <= capacity/8 keys
	// must never evict.
	s := NewStore(1024)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 128; i++ {
		k := SumRateKey(protocols.HBC, protocols.BoundInner, rng.Float64()*100, rng.Float64()*10, 0, 0)
		s.Add(k, MakeValue(float64(i), 0, 0, nil))
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("evicted below capacity: %+v", st)
	}
}

func TestStoreEvictionBoundsMemory(t *testing.T) {
	s := NewStore(64) // one entry per shard
	for i := 0; i < 500; i++ {
		s.Add(SumRateKey(protocols.DT, protocols.BoundInner, float64(i), 0, 0, 0), MakeValue(float64(i), 0, 0, nil))
	}
	if n := s.Len(); n > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", n)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 500 inserts into 64 slots")
	}
	if int(st.Fills)-int(st.Evictions) != s.Len() {
		t.Fatalf("fills - evictions = %d, want Len %d", st.Fills-st.Evictions, s.Len())
	}
}

// sameShardKeys finds n distinct keys hashing to one shard, so clock
// mechanics can be exercised deterministically.
func sameShardKeys(s *Store, n int) []Key {
	target := s.shardOf(SumRateKey(protocols.DT, protocols.BoundInner, 0, 0, 0, 0))
	var out []Key
	for i := 0; len(out) < n; i++ {
		k := SumRateKey(protocols.DT, protocols.BoundInner, float64(i), 0, 0, 0)
		if s.shardOf(k) == target {
			out = append(out, k)
		}
	}
	return out
}

func TestStoreSecondChance(t *testing.T) {
	s := NewStore(shardCount * 4) // four entries per shard
	keys := sameShardKeys(s, 6)
	for _, k := range keys[:4] {
		s.Add(k, MakeValue(1, 0, 0, nil))
	}
	// Fill pass evicts keys[0] (hand sweeps, clears all reference bits,
	// wraps, takes slot 0).
	s.Add(keys[4], MakeValue(1, 0, 0, nil))
	if _, ok := s.Lookup(keys[0]); ok {
		t.Fatal("keys[0] should have been evicted")
	}
	// Reference keys[1]; the next insert must skip it (second chance) and
	// evict keys[2], the first unreferenced entry past the hand.
	if _, ok := s.Lookup(keys[1]); !ok {
		t.Fatal("keys[1] missing before second-chance check")
	}
	s.Add(keys[5], MakeValue(1, 0, 0, nil))
	if _, ok := s.Lookup(keys[1]); !ok {
		t.Fatal("referenced entry was evicted despite second chance")
	}
	if _, ok := s.Lookup(keys[2]); ok {
		t.Fatal("unreferenced keys[2] should have been the victim")
	}
}

func TestLookupZeroAlloc(t *testing.T) {
	s := NewStore(256)
	k := SumRateKey(protocols.TDBC, protocols.BoundOuter, 12, 1, 2, 3)
	s.Add(k, MakeValue(1, 0.5, 0.5, []float64{0.3, 0.7}))
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Lookup(k); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %v per hit, want 0", allocs)
	}
}

func TestSinkObservesFills(t *testing.T) {
	s := NewStore(256)
	var mu sync.Mutex
	seen := map[Key]int{}
	s.SetSink(func(k Key, _ Value) {
		mu.Lock()
		seen[k]++
		mu.Unlock()
	})
	k := SumRateKey(protocols.MABC, protocols.BoundInner, 1, 2, 3, 4)
	s.Add(k, MakeValue(1, 0, 0, nil))
	s.Add(k, MakeValue(2, 0, 0, nil)) // overwrite: no new record
	k2 := SumRateKey(protocols.MABC, protocols.BoundInner, 5, 6, 7, 8)
	s.Add(k2, MakeValue(3, 0, 0, nil))
	if seen[k] != 1 || seen[k2] != 1 || len(seen) != 2 {
		t.Fatalf("sink saw %v, want one record per distinct key", seen)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(512)
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = SumRateKey(protocols.HBC, protocols.BoundInner, float64(i), 0, 0, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(4) == 0 {
					s.Add(k, MakeValue(float64(i), 0, 0, nil))
				} else if v, ok := s.Lookup(k); ok && v.Sum < 0 {
					t.Error("impossible cached value")
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
