// Package cache is the scenario-keyed result cache behind the Engine and
// the bccd daemon. The analytic bounds are pure functions of (protocol,
// bound, scenario), so a repeat sweep point can be served from a keyed
// store instead of re-solving its LP.
//
// Keys quantize every real coordinate (dB gains and powers, erasure
// probabilities, support-direction weights) onto a canonical 1e-9 grid
// through the single Quantize chokepoint, making keys byte-stable across
// platforms. Quantization applies to the lookup key only — the stored
// value is the exact solve of the exact scenario, so cache-on results are
// bit-identical to cache-off results, not grid-rounded approximations.
// The cachekey analyzer (internal/lint/analyzers) enforces that no other
// package assembles a Key by hand.
//
// Cached values are canonical cold solves: cache-enabled runs disable LP
// warm starting (see internal/sweep), because a warm-started solve's last
// bits depend on the pivot history of the points before it, which a cache
// hit would otherwise perturb. Cold solves are position-independent, so
// hits, misses and worker counts cannot change a single output bit.
//
// The Store is the in-process tier: sharded by key hash, per-shard
// mutex, fixed-size entry arrays with second-chance (clock) eviction,
// zero allocations on the hit path. The durable shared tier — an
// append-only record log replayed at startup — lives in internal/service
// next to the job store; this package only defines the record codec.
package cache

import (
	"math"

	"bicoop/internal/protocols"
)

// KeyVersion is the current key-layout version. It is part of every key
// and every durable record, so a change to the grid resolution or field
// layout silently invalidates old entries instead of aliasing them.
const KeyVersion = 1

// invGridStep is the reciprocal of the canonical key grid resolution:
// coordinates are keyed at 1e-9 precision (far below any physically
// distinguishable dB or probability difference, far above float64 noise).
const invGridStep = 1e9

// Key kinds: which constructor produced the key, and hence how its
// coordinate fields are to be read.
const (
	// KindWeighted keys a Gaussian-scenario weighted-sum-rate solve:
	// A..D hold the quantized scenario (PowerDB, GabDB, GarDB, GbrDB) and
	// MuA/MuB the quantized support-direction weights (1,1 for sum rate).
	KindWeighted = 1
	// KindErasure keys a TDBC/inner erasure-relaying solve: A..C hold the
	// quantized erasure probabilities (AR, BR, AB) and D, MuA, MuB are 0.
	KindErasure = 2
)

// Quantize maps one real key coordinate onto the canonical grid:
// round-to-nearest at 1e-9 resolution, ties away from zero. It is total
// and deterministic on every input — NaN and -Inf map to math.MinInt64,
// +Inf and out-of-range magnitudes clamp to the int64 limits — so equal
// coordinates produce byte-equal key fields on every platform. All key
// construction funnels through here (enforced by the cachekey analyzer).
func Quantize(v float64) int64 {
	r := math.Round(v * invGridStep)
	switch {
	case math.IsNaN(r) || r <= math.MinInt64:
		return math.MinInt64
	case r >= math.MaxInt64:
		return math.MaxInt64
	}
	return int64(r)
}

// A Key identifies one solve. Keys are comparable values; equal solves
// (same protocol, bound and grid-quantized coordinates) produce equal
// keys. Fields are exported only for the codec and tests — build keys
// with WeightedKey, SumRateKey or ErasureKey, never by hand (the
// cachekey analyzer flags hand-assembled keys outside this package).
type Key struct {
	Version uint8
	Kind    uint8
	Proto   uint8
	Bound   uint8
	MuA     int64
	MuB     int64
	A       int64
	B       int64
	C       int64
	D       int64
}

// WeightedKey keys the weighted-sum-rate solve max muA·Ra + muB·Rb for a
// Gaussian scenario given in dB, the shape solved by rate-region support
// directions. Coordinates are quantized here, on the key only.
func WeightedKey(p protocols.Protocol, b protocols.Bound, powerDB, gabDB, garDB, gbrDB, muA, muB float64) Key {
	return Key{
		Version: KeyVersion,
		Kind:    KindWeighted,
		Proto:   uint8(p),
		Bound:   uint8(b),
		MuA:     Quantize(muA),
		MuB:     Quantize(muB),
		A:       Quantize(powerDB),
		B:       Quantize(gabDB),
		C:       Quantize(garDB),
		D:       Quantize(gbrDB),
	}
}

// SumRateKey keys the sum-rate solve (the muA = muB = 1 weighted solve)
// of a Gaussian scenario given in dB.
func SumRateKey(p protocols.Protocol, b protocols.Bound, powerDB, gabDB, garDB, gbrDB float64) Key {
	return WeightedKey(p, b, powerDB, gabDB, garDB, gbrDB, 1, 1)
}

// ErasureKey keys the TDBC inner-bound erasure-relaying solve for the
// given per-link erasure probabilities.
func ErasureKey(epsAR, epsBR, epsAB float64) Key {
	return Key{
		Version: KeyVersion,
		Kind:    KindErasure,
		Proto:   uint8(protocols.TDBC),
		Bound:   uint8(protocols.BoundInner),
		A:       Quantize(epsAR),
		B:       Quantize(epsBR),
		C:       Quantize(epsAB),
	}
}

// A Value is one cached solve: the objective, the rate point, and the
// optimizing phase durations. Fixed-size (no slice) so entries live in
// flat shard arrays and the hit path allocates nothing.
type Value struct {
	Sum  float64
	Ra   float64
	Rb   float64
	NDur uint8
	Dur  [protocols.MaxPhases]float64
}

// MakeValue packs a solve into a Value. Durations beyond MaxPhases (which
// no compiled bound produces) are truncated.
func MakeValue(sum, ra, rb float64, durations []float64) Value {
	v := Value{Sum: sum, Ra: ra, Rb: rb}
	n := len(durations)
	if n > protocols.MaxPhases {
		n = protocols.MaxPhases
	}
	v.NDur = uint8(n)
	copy(v.Dur[:n], durations)
	return v
}

// Durations returns the cached phase durations as a freshly allocated
// slice (callers that must not allocate slice from v.Dur directly).
func (v Value) Durations() []float64 {
	if v.NDur == 0 {
		return nil
	}
	out := make([]float64, v.NDur)
	copy(out, v.Dur[:v.NDur])
	return out
}
