package cache

import "sync"

// shardCount is the number of independently locked shards. 64 keeps
// contention negligible at any realistic worker count while the per-shard
// fixed arrays stay cache-friendly.
const shardCount = 64

// Stats are the store's cumulative counters. Hits and Misses count
// Lookup outcomes; Fills counts inserts of new keys (an Add that
// overwrites an existing entry is not a fill); Evictions counts entries
// displaced by the clock hand to make room.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Evictions uint64
}

// entry is one cached (key, value) pair plus its clock reference bit.
type entry struct {
	key Key
	val Value
	ref bool
}

// shard is one lock domain: a fixed entry array indexed by a key map,
// evicted second-chance (clock) style.
type shard struct {
	mu      sync.Mutex
	index   map[Key]int32
	entries []entry
	used    int
	hand    int
	stats   Stats
}

// A Store is the in-process result cache: sharded by key hash, bounded
// at the capacity given to NewStore, safe for concurrent use. The zero
// value is not usable; a nil *Store means caching is off.
type Store struct {
	shards [shardCount]shard
	sink   func(Key, Value)
}

// NewStore returns a store bounded at capacity entries (rounded up to a
// multiple of the shard count, minimum one entry per shard). Memory is
// bounded at roughly capacity × sizeof(entry) ≈ capacity × 120 bytes
// plus map overhead; entry arrays grow on demand up to the bound.
func NewStore(capacity int) *Store {
	per := (capacity + shardCount - 1) / shardCount
	if per < 1 {
		per = 1
	}
	s := &Store{}
	for i := range s.shards {
		s.shards[i].index = make(map[Key]int32, per)
		s.shards[i].entries = make([]entry, per)
	}
	return s
}

// SetSink registers fn to observe every fill (insert of a new key).
// The durable tier uses this to append fills to its log. fn runs outside
// the shard lock and must be safe for concurrent calls. Replays that
// Add into the store before SetSink are not echoed back.
func (s *Store) SetSink(fn func(Key, Value)) {
	s.sink = fn
}

// fnv64 offset basis and prime (FNV-1a), written out because the store
// hashes fixed-width integers, not bytes via hash/fnv.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a hash byte by byte.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// shardOf picks the shard for a key by FNV-1a over its fields.
func (s *Store) shardOf(k Key) *shard {
	h := fnvMix(fnvOffset64, uint64(k.Version)|uint64(k.Kind)<<8|uint64(k.Proto)<<16|uint64(k.Bound)<<24)
	h = fnvMix(h, uint64(k.MuA))
	h = fnvMix(h, uint64(k.MuB))
	h = fnvMix(h, uint64(k.A))
	h = fnvMix(h, uint64(k.B))
	h = fnvMix(h, uint64(k.C))
	h = fnvMix(h, uint64(k.D))
	return &s.shards[h%shardCount]
}

// Lookup returns the cached value for k. The hit path performs one map
// read and a fixed-size copy: zero allocations (gated by
// BenchmarkCacheHit in the ledger).
//
//bicoop:noalloc
func (s *Store) Lookup(k Key) (Value, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	i, ok := sh.index[k]
	if !ok {
		sh.stats.Misses++
		sh.mu.Unlock()
		var zero Value
		return zero, false
	}
	sh.entries[i].ref = true
	v := sh.entries[i].val
	sh.stats.Hits++
	sh.mu.Unlock()
	return v, true
}

// Add inserts or overwrites the value for k. New keys are appended while
// the shard has room and otherwise displace a victim chosen second-chance
// (clock) style: the hand sweeps the entry array clearing reference bits
// and evicts the first entry found unreferenced since its last sweep.
func (s *Store) Add(k Key, v Value) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	if i, ok := sh.index[k]; ok {
		sh.entries[i].val = v
		sh.entries[i].ref = true
		sh.mu.Unlock()
		return
	}
	var slot int
	switch {
	case sh.used < len(sh.entries):
		slot = sh.used
		sh.used++
	default:
		for {
			if !sh.entries[sh.hand].ref {
				break
			}
			sh.entries[sh.hand].ref = false
			sh.hand = (sh.hand + 1) % len(sh.entries)
		}
		slot = sh.hand
		sh.hand = (sh.hand + 1) % len(sh.entries)
		delete(sh.index, sh.entries[slot].key)
		sh.stats.Evictions++
	}
	sh.entries[slot] = entry{key: k, val: v, ref: true}
	sh.index[k] = int32(slot)
	sh.stats.Fills++
	sink := s.sink
	sh.mu.Unlock()
	if sink != nil {
		sink(k, v)
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// Range calls fn for every live entry until fn returns false. The order
// is unspecified. fn runs outside the shard locks on copied pairs, so it
// may itself use the store.
func (s *Store) Range(fn func(Key, Value) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		pairs := make([]entry, 0, len(sh.index))
		for _, idx := range sh.index {
			pairs = append(pairs, sh.entries[idx])
		}
		sh.mu.Unlock()
		for _, e := range pairs {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}

// Reset drops every entry and zeroes the counters, keeping the backing
// arrays (benchmarks use it to re-measure the miss path).
func (s *Store) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.index)
		clear(sh.entries)
		sh.used = 0
		sh.hand = 0
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
}

// Stats returns the summed counters across shards. The snapshot is
// per-shard consistent, not globally atomic.
func (s *Store) Stats() Stats {
	var t Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		t.Hits += sh.stats.Hits
		t.Misses += sh.stats.Misses
		t.Fills += sh.stats.Fills
		t.Evictions += sh.stats.Evictions
		sh.mu.Unlock()
	}
	return t
}
