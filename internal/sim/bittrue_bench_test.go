package sim

import (
	"context"
	"math"
	"testing"

	"bicoop/internal/protocols"
)

// The benchmark operating points are fixed (pinned durations, no LP) so the
// ledgers in BENCH_baseline.json / BENCH_after.json compare equal workloads:
// same block length, same trial count, same rates.

func benchTDBCConfig(workers int) BitTrueConfig {
	return BitTrueConfig{
		Net:         ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
		Rates:       protocols.RatePair{Ra: 0.2, Rb: 0.2},
		Durations:   []float64{0.35, 0.35, 0.3},
		BlockLength: 2000,
		Trials:      64,
		Seed:        1,
		Workers:     workers,
	}
}

func benchMABCConfig(workers int) MABCBitTrueConfig {
	return MABCBitTrueConfig{
		EpsMAC: 0.2, EpsRA: 0.15, EpsRB: 0.1,
		Rate:        0.3,
		Durations:   []float64{0.5, 0.5},
		BlockLength: 2000,
		Trials:      64,
		Seed:        1,
		Workers:     workers,
	}
}

// BenchmarkBitTrueTDBC measures a full single-threaded bit-true TDBC run
// (64 blocks of 2000 channel uses) — the ledger's headline bit-true number.
func BenchmarkBitTrueTDBC(b *testing.B) {
	cfg := benchTDBCConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitTrueTDBCParallel is the same workload sharded over GOMAXPROCS
// workers; the ratio to BenchmarkBitTrueTDBC is the pool's scaling.
func BenchmarkBitTrueTDBCParallel(b *testing.B) {
	cfg := benchTDBCConfig(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitTrueMABC measures a full single-threaded compute-and-forward
// MABC run (64 blocks of 2000 uses).
func BenchmarkBitTrueMABC(b *testing.B) {
	cfg := benchMABCConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunBitTrueMABC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitTrueMABCParallel shards the MABC workload over GOMAXPROCS.
func BenchmarkBitTrueMABCParallel(b *testing.B) {
	cfg := benchMABCConfig(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunBitTrueMABC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTDBCWorker builds one worker at the benchmark operating point.
func benchTDBCWorker(tb testing.TB, cfg BitTrueConfig) *tdbcWorker {
	tb.Helper()
	p, _, err := deriveTDBCParams(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return newTDBCWorker(cfg.Net, p, cfg.Seed)
}

// benchMABCWorkerAt builds one worker at the benchmark operating point.
func benchMABCWorkerAt(tb testing.TB, cfg MABCBitTrueConfig) *mabcWorker {
	tb.Helper()
	n := cfg.BlockLength
	n1 := int(math.Round(cfg.Durations[0] * float64(n)))
	k := int(math.Floor(cfg.Rate * float64(n)))
	return newMABCWorker(cfg, k, n1, n-n1, cfg.Seed)
}

// BenchmarkBitTrueTDBCBlock measures the per-block kernel: three in-place
// code redraws, three encodes, erasures, and four word-level eliminations.
// Steady state must report 0 allocs/op (see TestBitTrueTDBCBlockZeroAllocs).
func BenchmarkBitTrueTDBCBlock(b *testing.B) {
	w := benchTDBCWorker(b, benchTDBCConfig(1))
	w.runTrial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.runTrial()
	}
}

// BenchmarkBitTrueMABCBlock measures the per-block compute-and-forward
// kernel (two code redraws, two encodes, three eliminations).
func BenchmarkBitTrueMABCBlock(b *testing.B) {
	w := benchMABCWorkerAt(b, benchMABCConfig(1))
	w.runTrial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.runTrial()
	}
}

// TestBitTrueTDBCBlockZeroAllocs is the allocation-regression gate for the
// bit-true per-block kernel: once a worker is built, a block — including
// decode failures — must not allocate. Every buffer is pre-sized to its
// maximum (phase lengths bound the accumulators, Solver.Reserve bounds the
// tableau), so this is strict equality, not an average.
func TestBitTrueTDBCBlockZeroAllocs(t *testing.T) {
	w := benchTDBCWorker(t, benchTDBCConfig(1))
	for i := 0; i < 3; i++ {
		w.runTrial()
	}
	if n := testing.AllocsPerRun(200, func() { w.runTrial() }); n != 0 {
		t.Errorf("TDBC block allocates %.2f/op, want 0", n)
	}
	// Also at an operating point above the bound, where decodes fail and the
	// error paths run.
	cfg := benchTDBCConfig(1)
	cfg.Rates = protocols.RatePair{Ra: 0.4, Rb: 0.4}
	wf := benchTDBCWorker(t, cfg)
	for i := 0; i < 3; i++ {
		wf.runTrial()
	}
	if n := testing.AllocsPerRun(200, func() { wf.runTrial() }); n != 0 {
		t.Errorf("failing TDBC block allocates %.2f/op, want 0", n)
	}
	if wf.successes > 0 {
		t.Errorf("expected only failures far above the bound, got %d successes", wf.successes)
	}
}

// TestBitTrueMABCBlockZeroAllocs gates the MABC kernel the same way.
func TestBitTrueMABCBlockZeroAllocs(t *testing.T) {
	w := benchMABCWorkerAt(t, benchMABCConfig(1))
	for i := 0; i < 3; i++ {
		w.runTrial()
	}
	if n := testing.AllocsPerRun(200, func() { w.runTrial() }); n != 0 {
		t.Errorf("MABC block allocates %.2f/op, want 0", n)
	}
	cfg := benchMABCConfig(1)
	cfg.Rate = 0.55 // above both phase constraints
	wf := benchMABCWorkerAt(t, cfg)
	for i := 0; i < 3; i++ {
		wf.runTrial()
	}
	if n := testing.AllocsPerRun(200, func() { wf.runTrial() }); n != 0 {
		t.Errorf("failing MABC block allocates %.2f/op, want 0", n)
	}
}

// TestBitTrueTDBCShardingDeterministic pins that a run is reproducible for
// a fixed (Seed, Trials, Workers) triple and that worker 0 of a sharded run
// replays the sequential engine's stream (the workerSeedStride contract).
func TestBitTrueTDBCShardingDeterministic(t *testing.T) {
	cfg := benchTDBCConfig(4)
	cfg.Trials = 40
	r1, err := RunBitTrueTDBC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBitTrueTDBC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SuccessProb != r2.SuccessProb || r1.RelayFailures != r2.RelayFailures ||
		r1.TerminalFailures != r2.TerminalFailures {
		t.Errorf("sharded run not deterministic: %+v vs %+v", r1, r2)
	}
}

// TestBitTrueTDBCShardedMatchesSequential pins the sharded estimator against
// the sequential (Workers=1) one: same config, different worker counts must
// agree within Monte Carlo tolerance at a mid-waterfall operating point,
// where disagreement would actually show.
func TestBitTrueTDBCShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo comparison")
	}
	net := ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}
	cfg := BitTrueConfig{
		Net: net,
		// Just below the pinned-duration operating point: success is high
		// but not saturated, so the comparison is informative.
		Rates:       protocols.RatePair{Ra: 0.26, Rb: 0.26},
		Durations:   []float64{0.35, 0.35, 0.3},
		BlockLength: 700,
		Trials:      600,
		Seed:        77,
		Workers:     1,
	}
	seq, err := RunBitTrueTDBC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunBitTrueTDBC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent estimators of the same probability: allow 4 combined
	// standard errors (fixed seeds make this deterministic; the margin
	// documents the expected agreement, not flakiness).
	p := (seq.SuccessProb + par.SuccessProb) / 2
	se := math.Sqrt(2 * p * (1 - p) / float64(cfg.Trials))
	if diff := math.Abs(seq.SuccessProb - par.SuccessProb); diff > 4*se+1e-9 {
		t.Errorf("sequential %.4f vs sharded %.4f: |diff| %.4f exceeds 4·SE %.4f",
			seq.SuccessProb, par.SuccessProb, diff, 4*se)
	}
	if seq.SuccessProb <= 0.5 || seq.SuccessProb >= 0.999 {
		t.Errorf("operating point drifted out of the informative band: %.4f", seq.SuccessProb)
	}
}

// TestBitTrueMABCShardedMatchesSequential is the MABC counterpart.
func TestBitTrueMABCShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo comparison")
	}
	bound, durations := MABCComputeForwardBound(0.2, 0.15, 0.1)
	cfg := MABCBitTrueConfig{
		EpsMAC: 0.2, EpsRA: 0.15, EpsRB: 0.1,
		Rate:        bound * 0.93,
		Durations:   durations,
		BlockLength: 700,
		Trials:      600,
		Seed:        78,
		Workers:     1,
	}
	seq, err := RunBitTrueMABC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunBitTrueMABC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := (seq.SuccessProb + par.SuccessProb) / 2
	se := math.Sqrt(2 * p * (1 - p) / float64(cfg.Trials))
	if diff := math.Abs(seq.SuccessProb - par.SuccessProb); diff > 4*se+1e-9 {
		t.Errorf("sequential %.4f vs sharded %.4f: |diff| %.4f exceeds 4·SE %.4f",
			seq.SuccessProb, par.SuccessProb, diff, 4*se)
	}
	if seq.SuccessProb <= 0.5 || seq.SuccessProb >= 0.999 {
		t.Errorf("operating point drifted out of the informative band: %.4f", seq.SuccessProb)
	}
}

// TestBitTrueWorkerCountIndependence checks the merge arithmetic: total
// trials across any worker split must equal the configured count, with no
// block double-counted or dropped (success+failures == trials).
func TestBitTrueWorkerCountIndependence(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		cfg := benchTDBCConfig(workers)
		cfg.Trials = 37
		cfg.BlockLength = 400
		res, err := RunBitTrueTDBC(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		succ := int(res.SuccessProb*float64(cfg.Trials) + 0.5)
		if got := succ + res.RelayFailures + res.TerminalFailures; got != cfg.Trials {
			t.Errorf("workers=%d: %d successes + %d relay + %d terminal != %d trials",
				workers, succ, res.RelayFailures, res.TerminalFailures, cfg.Trials)
		}
	}
}
