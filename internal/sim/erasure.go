package sim

// Word-parallel erasure sampling. The bit-true simulators draw link erasures
// 64 channel uses at a time: one prob.WordBernoulli mask per link per batch,
// where mask bit j set means position base+j was erased, so the survivors of
// the batch are ^mask restricted to the live lanes. Each surviving position
// is then visited with a TrailingZeros64 scan — the per-position work
// (appending a generator row view and an observed bit) is unchanged from the
// scalar engine; only the coin flips are batched.
//
// This defines the canonical random stream: within a block the masks are
// drawn batch by batch in phase order, and within a batch in a fixed
// documented link order (TDBC: a-r then a-b in phase 1, b-r then a-b in
// phase 2, a-r then b-r in phase 3; MABC: MAC, then r-a, then r-b). The
// stream differs from the retired scalar engine's one-Float64-per-position
// stream, so a given seed produces a different — equally valid — sample
// path than releases that predate the word-parallel kernel. Determinism is
// unchanged: results are a pure function of (Seed, Trials, Workers).

// liveLanes returns the live-lane mask for the 64-lane batch starting at
// base in a length-n phase: all ones except in the final partial batch.
//
//bicoop:noalloc
func liveLanes(base, n int) uint64 {
	if rem := n - base; rem < 64 {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}
