// Package sim provides the Monte Carlo layer of the reproduction: a
// quasi-static Rayleigh block-fading simulator for the Gaussian model of
// Section IV (ergodic adaptive-rate throughput and fixed-rate outage), and a
// bit-true simulator of the TDBC protocol over an erasure network that
// executes the actual random-coding/binning/XOR machinery of Theorem 3 with
// random linear codes.
//
// All simulators are deterministic given a seed: trials are sharded across a
// bounded worker pool, each worker owning a private RNG derived from the
// seed, and partial results are merged after the pool drains. Each worker
// also owns a protocols.Evaluator and accumulates into preallocated slices,
// so the per-block path (draw fading, re-solve the duration LP per protocol,
// probe target feasibility) performs no steady-state heap allocation.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"bicoop/internal/channel"
	"bicoop/internal/protocols"
)

// Errors returned by this package.
var (
	ErrNoTrials  = errors.New("sim: trials must be positive")
	ErrNoTargets = errors.New("sim: no protocols requested")
)

// workerSeedStride separates the deterministic per-worker RNG streams: every
// sharded simulator in this package seeds worker w with Seed + w*stride, so
// worker 0 of any pool reproduces the corresponding sequential run.
const workerSeedStride int64 = 0x9e3779b9

// OutageConfig parameterizes a fading Monte Carlo run.
type OutageConfig struct {
	// Mean holds the mean link gains; per block, each link fades
	// independently (Rayleigh) around its mean.
	Mean channel.Gains
	// P is the per-node transmit power.
	P float64
	// Protocols to simulate (inner bounds). Empty is an error.
	Protocols []protocols.Protocol
	// Target is the fixed rate pair used for outage probability; a zero
	// pair disables outage accounting.
	Target protocols.RatePair
	// Trials is the number of fading blocks.
	Trials int
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds the worker pool; non-positive means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is invoked with the cumulative completed trial
	// count at stride granularity (see runGate). Invocations are serialized
	// and the reported count is strictly increasing.
	Progress func(done, total int)
}

// OutageStats aggregates per-protocol results of a run.
type OutageStats struct {
	// MeanOptSumRate is the mean over fading blocks of the CSI-adaptive
	// optimal sum rate (the expected throughput of a system that re-solves
	// the duration LP every block).
	MeanOptSumRate float64
	// OutageProb is the fraction of blocks in which the fixed Target rate
	// pair was infeasible. Zero if no target was set.
	OutageProb float64
	// Trials echoes the trial count for downstream confidence intervals.
	Trials int
}

// OutageResult is the full result of RunOutage.
type OutageResult struct {
	ByProtocol map[protocols.Protocol]OutageStats
}

// hasTarget reports whether outage accounting is enabled — the single
// definition used by both the workers and the result merge.
func (cfg OutageConfig) hasTarget() bool {
	return cfg.Target.Ra > 0 || cfg.Target.Rb > 0
}

// outageWorker owns one goroutine's share of the Monte Carlo: a private
// fading stream, a reusable protocol evaluator, and accumulation buffers
// indexed by protocol position (not maps) so a trial costs no allocation.
type outageWorker struct {
	protos    []protocols.Protocol
	p         float64
	target    protocols.RatePair
	hasTarget bool
	ev        *protocols.Evaluator
	fading    *channel.Fading
	sum       []float64
	outages   []int
	trials    int
}

// newOutageWorker derives worker w's deterministic stream from the run seed.
func newOutageWorker(cfg OutageConfig, w int) (*outageWorker, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*workerSeedStride))
	fading, err := channel.NewFading(cfg.Mean, rng)
	if err != nil {
		return nil, err
	}
	return &outageWorker{
		protos:    cfg.Protocols,
		p:         cfg.P,
		target:    cfg.Target,
		hasTarget: cfg.hasTarget(),
		ev:        protocols.NewEvaluator(),
		fading:    fading,
		sum:       make([]float64, len(cfg.Protocols)),
		outages:   make([]int, len(cfg.Protocols)),
	}, nil
}

// runTrial simulates one fading block: draw instantaneous gains, evaluate
// the closed-form link informations once, then re-solve the optimal-duration
// sum-rate LP for every protocol and probe the fixed target's feasibility.
// This is the per-block kernel the allocation regression tests and
// BenchmarkOutageTrial measure.
func (w *outageWorker) runTrial() error {
	inst := w.fading.Draw()
	li, err := protocols.LinkInfosFromScenario(protocols.Scenario{P: w.p, G: inst})
	if err != nil {
		return err
	}
	for pi, proto := range w.protos {
		v, err := w.ev.SumRateLinks(proto, protocols.BoundInner, li)
		if err != nil {
			return err
		}
		w.sum[pi] += v
		if w.hasTarget {
			feas, err := w.ev.FeasibleLinks(proto, protocols.BoundInner, li, w.target)
			if err != nil {
				return err
			}
			if !feas {
				w.outages[pi]++
			}
		}
	}
	w.trials++
	return nil
}

// RunOutage executes the fading Monte Carlo. Cancelling ctx stops every
// worker within one trial; the merged statistics over the trials completed
// so far are returned alongside the (wrapped) context error, so callers can
// report partial results.
func RunOutage(ctx context.Context, cfg OutageConfig) (OutageResult, error) {
	if cfg.Trials <= 0 {
		return OutageResult{}, ErrNoTrials
	}
	if len(cfg.Protocols) == 0 {
		return OutageResult{}, ErrNoTargets
	}
	if err := (protocols.Scenario{P: cfg.P, G: cfg.Mean}).Validate(); err != nil {
		return OutageResult{}, fmt.Errorf("sim: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	hasTarget := cfg.hasTarget()

	gate, stopWatch := startGate(ctx, cfg.Trials, cfg.Progress)
	defer stopWatch()
	parts := make([]*outageWorker, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := cfg.Trials * w / workers
		hi := cfg.Trials * (w + 1) / workers
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			wk, err := newOutageWorker(cfg, w)
			if err != nil {
				errs[w] = err
				return
			}
			parts[w] = wk
			_, errs[w] = gate.run(count, wk.runTrial)
		}(w, hi-lo)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return OutageResult{}, fmt.Errorf("sim: worker failed: %w", err)
		}
	}
	out := OutageResult{ByProtocol: make(map[protocols.Protocol]OutageStats, len(cfg.Protocols))}
	total := 0
	for _, pt := range parts {
		total += pt.trials
	}
	for pi, proto := range cfg.Protocols {
		var sum float64
		var outs int
		for _, pt := range parts {
			sum += pt.sum[pi]
			outs += pt.outages[pi]
		}
		st := OutageStats{Trials: total}
		if total > 0 {
			st.MeanOptSumRate = sum / float64(total)
			if hasTarget {
				st.OutageProb = float64(outs) / float64(total)
			}
		}
		out.ByProtocol[proto] = st
	}
	if err := ctxErr(ctx); err != nil {
		return out, fmt.Errorf("sim: %w", err)
	}
	return out, nil
}
