// Package sim provides the Monte Carlo layer of the reproduction: a
// quasi-static Rayleigh block-fading simulator for the Gaussian model of
// Section IV (ergodic adaptive-rate throughput and fixed-rate outage), and a
// bit-true simulator of the TDBC protocol over an erasure network that
// executes the actual random-coding/binning/XOR machinery of Theorem 3 with
// random linear codes.
//
// All simulators are deterministic given a seed: trials are sharded across a
// bounded worker pool, each worker owning a private RNG derived from the
// seed, and partial results are merged after the pool drains.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"bicoop/internal/channel"
	"bicoop/internal/protocols"
)

// Errors returned by this package.
var (
	ErrNoTrials  = errors.New("sim: trials must be positive")
	ErrNoTargets = errors.New("sim: no protocols requested")
)

// OutageConfig parameterizes a fading Monte Carlo run.
type OutageConfig struct {
	// Mean holds the mean link gains; per block, each link fades
	// independently (Rayleigh) around its mean.
	Mean channel.Gains
	// P is the per-node transmit power.
	P float64
	// Protocols to simulate (inner bounds). Empty is an error.
	Protocols []protocols.Protocol
	// Target is the fixed rate pair used for outage probability; a zero
	// pair disables outage accounting.
	Target protocols.RatePair
	// Trials is the number of fading blocks.
	Trials int
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds the worker pool; non-positive means GOMAXPROCS.
	Workers int
}

// OutageStats aggregates per-protocol results of a run.
type OutageStats struct {
	// MeanOptSumRate is the mean over fading blocks of the CSI-adaptive
	// optimal sum rate (the expected throughput of a system that re-solves
	// the duration LP every block).
	MeanOptSumRate float64
	// OutageProb is the fraction of blocks in which the fixed Target rate
	// pair was infeasible. Zero if no target was set.
	OutageProb float64
	// Trials echoes the trial count for downstream confidence intervals.
	Trials int
}

// OutageResult is the full result of RunOutage.
type OutageResult struct {
	ByProtocol map[protocols.Protocol]OutageStats
}

// RunOutage executes the fading Monte Carlo.
func RunOutage(cfg OutageConfig) (OutageResult, error) {
	if cfg.Trials <= 0 {
		return OutageResult{}, ErrNoTrials
	}
	if len(cfg.Protocols) == 0 {
		return OutageResult{}, ErrNoTargets
	}
	if err := (protocols.Scenario{P: cfg.P, G: cfg.Mean}).Validate(); err != nil {
		return OutageResult{}, fmt.Errorf("sim: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	hasTarget := cfg.Target.Ra > 0 || cfg.Target.Rb > 0

	type partial struct {
		sum     map[protocols.Protocol]float64
		outages map[protocols.Protocol]int
		trials  int
		err     error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := cfg.Trials * w / workers
		hi := cfg.Trials * (w + 1) / workers
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			pt := partial{
				sum:     make(map[protocols.Protocol]float64, len(cfg.Protocols)),
				outages: make(map[protocols.Protocol]int, len(cfg.Protocols)),
			}
			// Derive a distinct, deterministic stream per worker.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*0x9e3779b9))
			fading, err := channel.NewFading(cfg.Mean, rng)
			if err != nil {
				pt.err = err
				parts[w] = pt
				return
			}
			for i := 0; i < count; i++ {
				inst := fading.Draw()
				s := protocols.Scenario{P: cfg.P, G: inst}
				for _, proto := range cfg.Protocols {
					spec, err := protocols.CompileGaussian(proto, protocols.BoundInner, s)
					if err != nil {
						pt.err = err
						parts[w] = pt
						return
					}
					opt, err := spec.MaxSumRate()
					if err != nil {
						pt.err = err
						parts[w] = pt
						return
					}
					pt.sum[proto] += opt.Objective
					if hasTarget {
						feas, err := spec.Feasible(cfg.Target)
						if err != nil {
							pt.err = err
							parts[w] = pt
							return
						}
						if !feas {
							pt.outages[proto]++
						}
					}
				}
				pt.trials++
			}
			parts[w] = pt
		}(w, hi-lo)
	}
	wg.Wait()

	out := OutageResult{ByProtocol: make(map[protocols.Protocol]OutageStats, len(cfg.Protocols))}
	total := 0
	sums := make(map[protocols.Protocol]float64, len(cfg.Protocols))
	outs := make(map[protocols.Protocol]int, len(cfg.Protocols))
	for _, pt := range parts {
		if pt.err != nil {
			return OutageResult{}, fmt.Errorf("sim: worker failed: %w", pt.err)
		}
		total += pt.trials
		for k, v := range pt.sum {
			sums[k] += v
		}
		for k, v := range pt.outages {
			outs[k] += v
		}
	}
	for _, proto := range cfg.Protocols {
		st := OutageStats{
			MeanOptSumRate: sums[proto] / float64(total),
			Trials:         total,
		}
		if hasTarget {
			st.OutageProb = float64(outs[proto]) / float64(total)
		}
		out.ByProtocol[proto] = st
	}
	return out, nil
}
