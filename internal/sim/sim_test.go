package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"bicoop/internal/channel"
	"bicoop/internal/protocols"
	"bicoop/internal/xmath"
)

func fig4Mean() channel.Gains {
	return channel.GainsFromDB(-7, 0, 5)
}

func TestRunOutageValidation(t *testing.T) {
	good := OutageConfig{
		Mean:      fig4Mean(),
		P:         1,
		Protocols: []protocols.Protocol{protocols.MABC},
		Trials:    10,
		Seed:      1,
	}
	t.Run("no trials", func(t *testing.T) {
		cfg := good
		cfg.Trials = 0
		if _, err := RunOutage(context.Background(), cfg); !errors.Is(err, ErrNoTrials) {
			t.Errorf("err = %v, want ErrNoTrials", err)
		}
	})
	t.Run("no protocols", func(t *testing.T) {
		cfg := good
		cfg.Protocols = nil
		if _, err := RunOutage(context.Background(), cfg); !errors.Is(err, ErrNoTargets) {
			t.Errorf("err = %v, want ErrNoTargets", err)
		}
	})
	t.Run("bad scenario", func(t *testing.T) {
		cfg := good
		cfg.P = 0
		if _, err := RunOutage(context.Background(), cfg); err == nil {
			t.Error("want error for zero power")
		}
	})
}

func TestRunOutageDeterministic(t *testing.T) {
	cfg := OutageConfig{
		Mean:      fig4Mean(),
		P:         xmath.FromDB(5),
		Protocols: []protocols.Protocol{protocols.MABC, protocols.TDBC},
		Target:    protocols.RatePair{Ra: 0.3, Rb: 0.3},
		Trials:    400,
		Seed:      99,
		Workers:   4,
	}
	r1, err := RunOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cfg.Protocols {
		if r1.ByProtocol[p] != r2.ByProtocol[p] {
			t.Errorf("%v: run not deterministic: %+v vs %+v", p, r1.ByProtocol[p], r2.ByProtocol[p])
		}
	}
}

func TestRunOutageStatisticalSanity(t *testing.T) {
	cfg := OutageConfig{
		Mean:      fig4Mean(),
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC},
		Target:    protocols.RatePair{Ra: 0.5, Rb: 0.5},
		Trials:    2000,
		Seed:      7,
	}
	res, err := RunOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// HBC contains the other protocols, so its adaptive throughput is at
	// least theirs and its outage at most theirs on exactly the same fading
	// draws... the draws differ per protocol only if RNG consumption
	// differed; here all protocols share each block's draw, so comparison
	// is exact per block.
	hbc := res.ByProtocol[protocols.HBC]
	for _, p := range []protocols.Protocol{protocols.MABC, protocols.TDBC} {
		st := res.ByProtocol[p]
		if hbc.MeanOptSumRate < st.MeanOptSumRate-1e-9 {
			t.Errorf("HBC mean sum rate %v below %v's %v", hbc.MeanOptSumRate, p, st.MeanOptSumRate)
		}
		if hbc.OutageProb > st.OutageProb+1e-9 {
			t.Errorf("HBC outage %v above %v's %v", hbc.OutageProb, p, st.OutageProb)
		}
	}
	// The fading-averaged adaptive sum rate is within a plausible band of
	// the fixed-gain sum rate (Jensen effects are modest at these SNRs).
	fixed, err := protocols.OptimalSumRate(protocols.MABC, protocols.BoundInner,
		protocols.Scenario{P: cfg.P, G: cfg.Mean})
	if err != nil {
		t.Fatal(err)
	}
	mabc := res.ByProtocol[protocols.MABC]
	if mabc.MeanOptSumRate < 0.5*fixed.Sum || mabc.MeanOptSumRate > 1.5*fixed.Sum {
		t.Errorf("fading mean %v implausible vs fixed-gain %v", mabc.MeanOptSumRate, fixed.Sum)
	}
	// Outage probabilities are proper probabilities.
	for p, st := range res.ByProtocol {
		if st.OutageProb < 0 || st.OutageProb > 1 {
			t.Errorf("%v: outage %v out of range", p, st.OutageProb)
		}
		if st.Trials != cfg.Trials {
			t.Errorf("%v: trials %d, want %d", p, st.Trials, cfg.Trials)
		}
	}
}

func TestOutageMonotoneInTarget(t *testing.T) {
	base := OutageConfig{
		Mean:      fig4Mean(),
		P:         xmath.FromDB(5),
		Protocols: []protocols.Protocol{protocols.MABC},
		Trials:    1500,
		Seed:      13,
	}
	var prev float64
	for _, scale := range []float64{0.2, 0.5, 1.0, 1.6} {
		cfg := base
		cfg.Target = protocols.RatePair{Ra: 0.4 * scale, Rb: 0.4 * scale}
		res, err := RunOutage(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := res.ByProtocol[protocols.MABC].OutageProb
		if out < prev-1e-9 {
			t.Errorf("outage decreased with higher target: %v -> %v at scale %v", prev, out, scale)
		}
		prev = out
	}
}

func TestErasureNetworkValidate(t *testing.T) {
	tests := []struct {
		name string
		n    ErasureNetwork
		ok   bool
	}{
		{name: "good", n: ErasureNetwork{EpsAR: 0.2, EpsBR: 0.3, EpsAB: 0.7}, ok: true},
		{name: "edge values", n: ErasureNetwork{EpsAR: 0, EpsBR: 1, EpsAB: 0.5}, ok: true},
		{name: "negative", n: ErasureNetwork{EpsAR: -0.1}, ok: false},
		{name: "above one", n: ErasureNetwork{EpsAB: 1.5}, ok: false},
		{name: "nan", n: ErasureNetwork{EpsAR: math.NaN()}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.n.Validate()
			if tt.ok != (err == nil) {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestBitTrueTDBCWaterfall(t *testing.T) {
	// The core bit-true validation: below the inner bound decoding succeeds
	// w.h.p., above the outer bound it fails w.h.p.
	net := ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}
	li := net.LinkInfos()
	spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, li)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := spec.MaxSumRate()
	if err != nil {
		t.Fatal(err)
	}

	run := func(scale float64) BitTrueResult {
		t.Helper()
		res, err := RunBitTrueTDBC(context.Background(), BitTrueConfig{
			Net:         net,
			Rates:       protocols.RatePair{Ra: opt.Rates.Ra * scale, Rb: opt.Rates.Rb * scale},
			Durations:   opt.Durations,
			BlockLength: 3000,
			Trials:      30,
			Seed:        5,
			Workers:     4, // pinned so results do not depend on GOMAXPROCS
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	below := run(0.85)
	if below.SuccessProb < 0.95 {
		t.Errorf("at 85%% of the bound: success %v, want near 1 (relay fails %d, terminal fails %d)",
			below.SuccessProb, below.RelayFailures, below.TerminalFailures)
	}
	above := run(1.15)
	if above.SuccessProb > 0.1 {
		t.Errorf("at 115%% of the bound: success %v, want near 0", above.SuccessProb)
	}
}

func TestBitTrueTDBCDerivesDurations(t *testing.T) {
	net := ErasureNetwork{EpsAR: 0.1, EpsBR: 0.1, EpsAB: 0.5}
	res, err := RunBitTrueTDBC(context.Background(), BitTrueConfig{
		Net:         net,
		Rates:       protocols.RatePair{Ra: 0.15, Rb: 0.15},
		BlockLength: 2000,
		Trials:      20,
		Seed:        11,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 3 {
		t.Fatalf("derived durations = %v", res.Durations)
	}
	if !xmath.ApproxEqual(xmath.Sum(res.Durations), 1, 1e-6) {
		t.Errorf("durations %v do not sum to 1", res.Durations)
	}
	// Modest rates well inside the bound must decode reliably.
	if res.SuccessProb < 0.9 {
		t.Errorf("success %v, want >= 0.9", res.SuccessProb)
	}
}

func TestBitTrueTDBCInfeasibleRates(t *testing.T) {
	net := ErasureNetwork{EpsAR: 0.5, EpsBR: 0.5, EpsAB: 0.9}
	_, err := RunBitTrueTDBC(context.Background(), BitTrueConfig{
		Net:         net,
		Rates:       protocols.RatePair{Ra: 2, Rb: 2},
		BlockLength: 500,
		Trials:      5,
		Seed:        1,
	})
	if !errors.Is(err, ErrInfeasibleRates) {
		t.Errorf("err = %v, want ErrInfeasibleRates", err)
	}
}

func TestBitTrueTDBCConfigValidation(t *testing.T) {
	net := ErasureNetwork{EpsAR: 0.1, EpsBR: 0.1, EpsAB: 0.5}
	good := BitTrueConfig{
		Net: net, Rates: protocols.RatePair{Ra: 0.1, Rb: 0.1},
		BlockLength: 500, Trials: 3, Seed: 1,
	}
	t.Run("bad net", func(t *testing.T) {
		cfg := good
		cfg.Net.EpsAR = 2
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("no block", func(t *testing.T) {
		cfg := good
		cfg.BlockLength = 0
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("no trials", func(t *testing.T) {
		cfg := good
		cfg.Trials = 0
		if _, err := RunBitTrueTDBC(context.Background(), cfg); !errors.Is(err, ErrNoTrials) {
			t.Errorf("err = %v, want ErrNoTrials", err)
		}
	})
	t.Run("negative rates", func(t *testing.T) {
		cfg := good
		cfg.Rates = protocols.RatePair{Ra: -0.1, Rb: 0.1}
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("wrong duration count", func(t *testing.T) {
		cfg := good
		cfg.Durations = []float64{0.5, 0.5}
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("zero messages", func(t *testing.T) {
		cfg := good
		cfg.Rates = protocols.RatePair{}
		cfg.Durations = []float64{0.3, 0.3, 0.4}
		if _, err := RunBitTrueTDBC(context.Background(), cfg); err == nil {
			t.Error("want error for zero-length messages")
		}
	})
}

func TestBitTrueTDBCAsymmetricRates(t *testing.T) {
	// ka != kb exercises the zero-padding path of the XOR group.
	net := ErasureNetwork{EpsAR: 0.1, EpsBR: 0.05, EpsAB: 0.5}
	res, err := RunBitTrueTDBC(context.Background(), BitTrueConfig{
		Net:         net,
		Rates:       protocols.RatePair{Ra: 0.2, Rb: 0.05},
		BlockLength: 2000,
		Trials:      20,
		Seed:        21,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("asymmetric-rate success %v, want >= 0.9", res.SuccessProb)
	}
}
