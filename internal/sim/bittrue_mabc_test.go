package sim

import (
	"context"
	"errors"
	"testing"

	"bicoop/internal/xmath"
)

func TestMABCComputeForwardBound(t *testing.T) {
	tests := []struct {
		name                 string
		epsMAC, epsRA, epsRB float64
		wantRate             float64
	}{
		{
			// Symmetric clean-ish links: cMAC = cBC = 0.8 -> R = 0.4.
			name: "symmetric", epsMAC: 0.2, epsRA: 0.2, epsRB: 0.2, wantRate: 0.4,
		},
		{
			// cMAC = 0.9, cBC = min(0.8, 0.6) = 0.6 -> d1 = 0.4, R = 0.36.
			name: "asymmetric", epsMAC: 0.1, epsRA: 0.2, epsRB: 0.4, wantRate: 0.36,
		},
		{name: "dead MAC", epsMAC: 1, epsRA: 0.1, epsRB: 0.1, wantRate: 0},
		{name: "dead broadcast", epsMAC: 0.1, epsRA: 1, epsRB: 0.1, wantRate: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rate, durations := MABCComputeForwardBound(tt.epsMAC, tt.epsRA, tt.epsRB)
			if !xmath.ApproxEqual(rate, tt.wantRate, 1e-12) {
				t.Errorf("rate = %v, want %v", rate, tt.wantRate)
			}
			if !xmath.ApproxEqual(xmath.Sum(durations), 1, 1e-12) {
				t.Errorf("durations %v do not sum to 1", durations)
			}
			if rate > 0 {
				// The bound is the equalizer of the two phase constraints.
				if !xmath.ApproxEqual(durations[0]*(1-tt.epsMAC), rate, 1e-12) {
					t.Errorf("MAC phase not tight: %v vs %v", durations[0]*(1-tt.epsMAC), rate)
				}
			}
		})
	}
}

func TestRunBitTrueMABCWaterfall(t *testing.T) {
	const epsMAC, epsRA, epsRB = 0.2, 0.15, 0.1
	bound, durations := MABCComputeForwardBound(epsMAC, epsRA, epsRB)
	run := func(scale float64) MABCBitTrueResult {
		t.Helper()
		res, err := RunBitTrueMABC(context.Background(), MABCBitTrueConfig{
			EpsMAC: epsMAC, EpsRA: epsRA, EpsRB: epsRB,
			Rate:        bound * scale,
			Durations:   durations,
			BlockLength: 3000,
			Trials:      30,
			Seed:        3,
			Workers:     4, // pinned so results do not depend on GOMAXPROCS
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	below := run(0.85)
	if below.SuccessProb < 0.95 {
		t.Errorf("85%% of bound: success %v (relay %d, terminal %d)",
			below.SuccessProb, below.RelayFailures, below.TerminalFailures)
	}
	if !below.SuccessCI.Contains(below.SuccessProb) {
		t.Error("CI excludes the point estimate")
	}
	above := run(1.15)
	if above.SuccessProb > 0.1 {
		t.Errorf("115%% of bound: success %v, want ~0", above.SuccessProb)
	}
	// At 115% both the MAC and the broadcast phases are overloaded (the
	// split equalized them at 100%), so the relay fails first.
	if above.RelayFailures == 0 {
		t.Error("expected relay failures above the bound")
	}
}

func TestRunBitTrueMABCDerivesDurations(t *testing.T) {
	res, err := RunBitTrueMABC(context.Background(), MABCBitTrueConfig{
		EpsMAC: 0.1, EpsRA: 0.1, EpsRB: 0.1,
		Rate:        0.2, // well inside the 0.45 bound
		BlockLength: 2000,
		Trials:      15,
		Seed:        5,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 2 {
		t.Fatalf("durations = %v", res.Durations)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("success %v for comfortable rate", res.SuccessProb)
	}
}

func TestRunBitTrueMABCValidation(t *testing.T) {
	good := MABCBitTrueConfig{
		EpsMAC: 0.1, EpsRA: 0.1, EpsRB: 0.1,
		Rate: 0.2, BlockLength: 500, Trials: 3, Seed: 1,
	}
	t.Run("bad eps", func(t *testing.T) {
		cfg := good
		cfg.EpsMAC = -0.5
		if _, err := RunBitTrueMABC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("no block", func(t *testing.T) {
		cfg := good
		cfg.BlockLength = 0
		if _, err := RunBitTrueMABC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("no trials", func(t *testing.T) {
		cfg := good
		cfg.Trials = 0
		if _, err := RunBitTrueMABC(context.Background(), cfg); !errors.Is(err, ErrNoTrials) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("zero rate", func(t *testing.T) {
		cfg := good
		cfg.Rate = 0
		if _, err := RunBitTrueMABC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad durations", func(t *testing.T) {
		cfg := good
		cfg.Durations = []float64{1}
		if _, err := RunBitTrueMABC(context.Background(), cfg); err == nil {
			t.Error("want error")
		}
	})
	t.Run("rate too small for block", func(t *testing.T) {
		cfg := good
		cfg.Rate = 1e-9
		if _, err := RunBitTrueMABC(context.Background(), cfg); err == nil {
			t.Error("want error for zero-length message")
		}
	})
}

func TestBitTrueMABCSharedGeneratorLinearity(t *testing.T) {
	// The compute-and-forward trick rests on Encode(wa) xor Encode(wb) ==
	// Encode(wa xor wb). A failing run here would mean the MAC abstraction
	// is unsound. Exercised end-to-end with a deterministic seed and a rate
	// just below the bound.
	bound, durations := MABCComputeForwardBound(0.3, 0.2, 0.25)
	res, err := RunBitTrueMABC(context.Background(), MABCBitTrueConfig{
		EpsMAC: 0.3, EpsRA: 0.2, EpsRB: 0.25,
		Rate:        bound * 0.8,
		Durations:   durations,
		BlockLength: 2500,
		Trials:      20,
		Seed:        11,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("success %v below expectation at 80%% of bound", res.SuccessProb)
	}
}
