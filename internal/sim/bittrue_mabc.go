package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"bicoop/internal/gf2"
	"bicoop/internal/prob"
	"bicoop/internal/stats"
)

// MABCBitTrueConfig parameterizes the bit-true two-phase compute-and-forward
// simulation. It realizes the remark after Theorem 2: the relay is NOT
// required to decode both messages — it decodes only the XOR wa ⊕ wb and
// rebroadcasts it, which the erasure abstraction of the multiple-access
// phase makes exact: when both terminals transmit the same random linear
// code's parities of their own messages simultaneously, the relay observes
// the parity of the XOR (physical-layer network coding), erased with
// probability EpsMAC.
type MABCBitTrueConfig struct {
	// EpsMAC is the erasure probability of the multiple-access phase at the
	// relay; EpsRA and EpsRB are the broadcast-phase erasure probabilities
	// of the r-a and r-b links.
	EpsMAC, EpsRA, EpsRB float64
	// Rate is the common per-terminal message rate (bits per channel use);
	// compute-and-forward requires equal-length messages.
	Rate float64
	// Durations are the two phase durations; nil derives the optimal split
	// from the rate constraints.
	Durations []float64
	// BlockLength is the total number of channel uses.
	BlockLength int
	// Trials is the number of independent blocks.
	Trials int
	// Seed drives the run deterministically for a fixed (Seed, Trials,
	// Workers) triple.
	Seed int64
	// Workers bounds the worker pool sharding the trials; non-positive
	// means GOMAXPROCS. Worker seeding follows the same scheme as the
	// other simulators (Seed + w*workerSeedStride): results are a pure
	// function of (Seed, Trials, Workers), and changing Workers only
	// reshards the trials. Erasures follow the word-parallel canonical
	// stream (see erasure.go); seeds from the retired scalar stream
	// produce different — equally valid — sample paths.
	Workers int
	// Confidence for the reported success interval (default 0.95).
	Confidence float64
	// Progress, when non-nil, is invoked with the cumulative completed trial
	// count at stride granularity (see runGate). Invocations are serialized
	// and the reported count is strictly increasing.
	Progress func(done, total int)
}

// MABCBitTrueResult reports the outcome with a confidence interval.
type MABCBitTrueResult struct {
	// SuccessProb is the fraction of blocks where both terminals recovered
	// the peer message.
	SuccessProb float64
	// SuccessCI is the Wilson confidence interval on SuccessProb.
	SuccessCI stats.Interval
	// RelayFailures counts blocks where the relay could not decode the XOR.
	RelayFailures int
	// TerminalFailures counts blocks lost at a terminal after relay success.
	TerminalFailures int
	// Trials is the number of trials actually completed — the configured
	// count unless the run's context was cancelled mid-flight.
	Trials int
	// Durations echoes the phase split used.
	Durations []float64
}

// MABCComputeForwardBound returns the symmetric-rate bound of the
// compute-and-forward MABC scheme on the erasure abstraction: the relay
// needs Δ1·(1-EpsMAC) ≥ R to decode the XOR, and each terminal needs
// Δ2·(1-eps_own_link) ≥ R to decode the broadcast, so
//
//	R* = max over Δ of min(Δ·(1-EpsMAC), (1-Δ)·(1-EpsRA), (1-Δ)·(1-EpsRB)).
//
// Dropping the relay's decode-both requirement is exactly what removes
// Theorem 2's MAC sum constraint (the paper's remark); the per-user
// constraints keep the same shape.
func MABCComputeForwardBound(epsMAC, epsRA, epsRB float64) (rate float64, durations []float64) {
	cMAC := 1 - epsMAC
	cBC := math.Min(1-epsRA, 1-epsRB)
	if cMAC <= 0 || cBC <= 0 {
		return 0, []float64{0.5, 0.5}
	}
	// min(Δ·cMAC, (1-Δ)·cBC) is maximized where the two meet.
	d1 := cBC / (cMAC + cBC)
	return d1 * cMAC, []float64{d1, 1 - d1}
}

// RunBitTrueMABC executes the compute-and-forward MABC protocol bit by bit,
// sharding trials across cfg.Workers goroutines with per-worker RNGs,
// codes, and elimination scratch. Cancelling ctx stops every worker within
// one block; the counts over the blocks completed so far are returned
// alongside the (wrapped) context error.
func RunBitTrueMABC(ctx context.Context, cfg MABCBitTrueConfig) (MABCBitTrueResult, error) {
	for _, e := range []float64{cfg.EpsMAC, cfg.EpsRA, cfg.EpsRB} {
		if e < 0 || e > 1 || math.IsNaN(e) {
			return MABCBitTrueResult{}, fmt.Errorf("sim: erasure probability %g out of [0,1]", e)
		}
	}
	if cfg.BlockLength <= 0 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: block length %d", cfg.BlockLength)
	}
	if cfg.Trials <= 0 {
		return MABCBitTrueResult{}, ErrNoTrials
	}
	if cfg.Rate <= 0 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: rate %g must be positive", cfg.Rate)
	}
	durations := cfg.Durations
	if durations == nil {
		_, durations = MABCComputeForwardBound(cfg.EpsMAC, cfg.EpsRA, cfg.EpsRB)
	}
	if len(durations) != 2 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: MABC needs 2 durations, got %d", len(durations))
	}
	n := cfg.BlockLength
	n1 := int(math.Round(durations[0] * float64(n)))
	n2 := n - n1
	k := int(math.Floor(cfg.Rate * float64(n)))
	if k == 0 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: block length %d too short for rate %g", n, cfg.Rate)
	}
	conf := cfg.Confidence
	if conf <= 0 {
		conf = 0.95
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	gate, stopWatch := startGate(ctx, cfg.Trials, cfg.Progress)
	defer stopWatch()
	parts := make([]*mabcWorker, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		count := cfg.Trials*(wi+1)/workers - cfg.Trials*wi/workers
		wk := newMABCWorker(cfg, k, n1, n2, cfg.Seed+int64(wi)*workerSeedStride)
		parts[wi] = wk
		wg.Add(1)
		go func(wk *mabcWorker, count int) {
			defer wg.Done()
			_, _ = gate.run(count, func() error { wk.runTrial(); return nil })
		}(wk, count)
	}
	wg.Wait()

	res := MABCBitTrueResult{Durations: durations}
	successes := 0
	for _, wk := range parts {
		successes += wk.successes
		res.RelayFailures += wk.relayFailures
		res.TerminalFailures += wk.terminalFailures
	}
	res.Trials = successes + res.RelayFailures + res.TerminalFailures
	if res.Trials > 0 {
		res.SuccessProb = float64(successes) / float64(res.Trials)
		ci, err := stats.WilsonInterval(successes, res.Trials, conf)
		if err != nil {
			return MABCBitTrueResult{}, err
		}
		res.SuccessCI = ci
	}
	if err := ctxErr(ctx); err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	return res, nil
}

// mabcWorker owns one goroutine's share of the compute-and-forward Monte
// Carlo: a seed-derived RNG, two preallocated generators re-randomized in
// place per block, message/codeword buffers, a pre-reserved gf2.Solver, and
// the equation accumulators. Rows are shared generator views (RowView):
// read-only here, consumed in place by the solver. Steady-state blocks
// perform no heap allocation (gated by TestBitTrueMABCBlockZeroAllocs).
type mabcWorker struct {
	k, n1, n2 int
	rng       *rand.Rand

	// maskMAC, maskRA, maskRB draw 64 link erasures per call (see
	// erasure.go).
	maskMAC, maskRA, maskRB prob.WordBernoulli

	codeMAC, codeBC  gf2.Code
	wa, wb, s        gf2.Vector
	xs, xr           gf2.Vector
	sHat, sAtA, sAtB gf2.Vector
	solver           gf2.Solver

	rows []gf2.Vector
	bits []int

	successes, relayFailures, terminalFailures int
}

// newMABCWorker allocates a worker with every buffer at its maximum size.
func newMABCWorker(cfg MABCBitTrueConfig, k, n1, n2 int, seed int64) *mabcWorker {
	maxN := n1
	if n2 > maxN {
		maxN = n2
	}
	w := &mabcWorker{
		k: k, n1: n1, n2: n2,
		rng:     rand.New(rand.NewSource(seed)),
		maskMAC: prob.NewWordBernoulli(cfg.EpsMAC),
		maskRA:  prob.NewWordBernoulli(cfg.EpsRA),
		maskRB:  prob.NewWordBernoulli(cfg.EpsRB),
		codeMAC: gf2.Code{G: gf2.NewMatrix(n1, k)},
		codeBC:  gf2.Code{G: gf2.NewMatrix(n2, k)},
		wa:      gf2.NewVector(k),
		wb:      gf2.NewVector(k),
		s:       gf2.NewVector(k),
		xs:      gf2.NewVector(n1),
		xr:      gf2.NewVector(n2),
		sHat:    gf2.NewVector(k),
		sAtA:    gf2.NewVector(k),
		sAtB:    gf2.NewVector(k),
		rows:    make([]gf2.Vector, 0, maxN),
		bits:    make([]int, 0, maxN),
	}
	w.solver.Reserve(maxN, k)
	return w
}

// runTrial runs one block and tallies the outcome.
//
//bicoop:noalloc
func (w *mabcWorker) runTrial() {
	ok, relayOK := w.runBlock()
	switch {
	case ok:
		w.successes++
	case !relayOK:
		w.relayFailures++
	default:
		w.terminalFailures++
	}
}

// runBlock simulates one block. Returns (success, relayDecoded). Erasures
// are drawn 64 positions per mask in the canonical batch order documented
// in erasure.go, so results are bit-reproducible for a fixed (Seed, Trials,
// Workers).
//
//bicoop:noalloc
func (w *mabcWorker) runBlock() (bool, bool) {
	w.wa.Randomize(w.rng)
	w.wb.Randomize(w.rng)
	w.s.CopyPrefix(w.wa)
	_ = w.s.XorWith(w.wb)

	// Phase 1 (MAC): both terminals encode with the SAME shared generator
	// (agreed via common randomness, as in physical-layer network coding);
	// the relay observes parities of the XOR message through erasures.
	w.codeMAC.Rerandomize(w.rng)
	_ = w.codeMAC.EncodeInto(&w.xs, w.s) // equals Encode(wa) xor Encode(wb) by linearity
	w.rows, w.bits = w.rows[:0], w.bits[:0]
	for base := 0; base < w.n1; base += 64 {
		surv := ^w.maskMAC.Mask(w.rng) & liveLanes(base, w.n1)
		for m := surv; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			w.rows = append(w.rows, w.codeMAC.G.RowView(i))
			w.bits = append(w.bits, w.xs.Bit(i))
		}
	}
	if err := w.solver.SolveConsistentInto(&w.sHat, w.k, w.rows, w.bits); err != nil || !w.sHat.Equal(w.s) {
		return false, false
	}

	// Phase 2 (broadcast): the relay re-encodes the XOR with a fresh code;
	// each terminal decodes it through its own link's erasures and strips
	// its own message.
	w.codeBC.Rerandomize(w.rng)
	_ = w.codeBC.EncodeInto(&w.xr, w.sHat)
	okA := w.decodeBroadcast(&w.sAtA, w.maskRA)
	okB := w.decodeBroadcast(&w.sAtB, w.maskRB)
	if !okA || !okB {
		return false, true
	}
	_ = w.sAtA.XorWith(w.wa) // terminal a strips wa, leaving its estimate of wb
	_ = w.sAtB.XorWith(w.wb) // terminal b strips wb
	return w.sAtA.Equal(w.wb) && w.sAtB.Equal(w.wa), true
}

// decodeBroadcast receives the relay broadcast through a link whose erasures
// are drawn by mask and decodes it into dst.
//
//bicoop:noalloc
func (w *mabcWorker) decodeBroadcast(dst *gf2.Vector, mask prob.WordBernoulli) bool {
	w.rows, w.bits = w.rows[:0], w.bits[:0]
	for base := 0; base < w.n2; base += 64 {
		surv := ^mask.Mask(w.rng) & liveLanes(base, w.n2)
		for m := surv; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			w.rows = append(w.rows, w.codeBC.G.RowView(i))
			w.bits = append(w.bits, w.xr.Bit(i))
		}
	}
	return w.solver.SolveConsistentInto(dst, w.k, w.rows, w.bits) == nil
}
