package sim

import (
	"fmt"
	"math"
	"math/rand"

	"bicoop/internal/gf2"
	"bicoop/internal/stats"
)

// MABCBitTrueConfig parameterizes the bit-true two-phase compute-and-forward
// simulation. It realizes the remark after Theorem 2: the relay is NOT
// required to decode both messages — it decodes only the XOR wa ⊕ wb and
// rebroadcasts it, which the erasure abstraction of the multiple-access
// phase makes exact: when both terminals transmit the same random linear
// code's parities of their own messages simultaneously, the relay observes
// the parity of the XOR (physical-layer network coding), erased with
// probability EpsMAC.
type MABCBitTrueConfig struct {
	// EpsMAC is the erasure probability of the multiple-access phase at the
	// relay; EpsRA and EpsRB are the broadcast-phase erasure probabilities
	// of the r-a and r-b links.
	EpsMAC, EpsRA, EpsRB float64
	// Rate is the common per-terminal message rate (bits per channel use);
	// compute-and-forward requires equal-length messages.
	Rate float64
	// Durations are the two phase durations; nil derives the optimal split
	// from the rate constraints.
	Durations []float64
	// BlockLength is the total number of channel uses.
	BlockLength int
	// Trials is the number of independent blocks.
	Trials int
	// Seed drives the run deterministically.
	Seed int64
	// Confidence for the reported success interval (default 0.95).
	Confidence float64
}

// MABCBitTrueResult reports the outcome with a confidence interval.
type MABCBitTrueResult struct {
	// SuccessProb is the fraction of blocks where both terminals recovered
	// the peer message.
	SuccessProb float64
	// SuccessCI is the Wilson confidence interval on SuccessProb.
	SuccessCI stats.Interval
	// RelayFailures counts blocks where the relay could not decode the XOR.
	RelayFailures int
	// TerminalFailures counts blocks lost at a terminal after relay success.
	TerminalFailures int
	// Durations echoes the phase split used.
	Durations []float64
}

// MABCComputeForwardBound returns the symmetric-rate bound of the
// compute-and-forward MABC scheme on the erasure abstraction: the relay
// needs Δ1·(1-EpsMAC) ≥ R to decode the XOR, and each terminal needs
// Δ2·(1-eps_own_link) ≥ R to decode the broadcast, so
//
//	R* = max over Δ of min(Δ·(1-EpsMAC), (1-Δ)·(1-EpsRA), (1-Δ)·(1-EpsRB)).
//
// Dropping the relay's decode-both requirement is exactly what removes
// Theorem 2's MAC sum constraint (the paper's remark); the per-user
// constraints keep the same shape.
func MABCComputeForwardBound(epsMAC, epsRA, epsRB float64) (rate float64, durations []float64) {
	cMAC := 1 - epsMAC
	cBC := math.Min(1-epsRA, 1-epsRB)
	if cMAC <= 0 || cBC <= 0 {
		return 0, []float64{0.5, 0.5}
	}
	// min(Δ·cMAC, (1-Δ)·cBC) is maximized where the two meet.
	d1 := cBC / (cMAC + cBC)
	return d1 * cMAC, []float64{d1, 1 - d1}
}

// RunBitTrueMABC executes the compute-and-forward MABC protocol bit by bit.
func RunBitTrueMABC(cfg MABCBitTrueConfig) (MABCBitTrueResult, error) {
	for _, e := range []float64{cfg.EpsMAC, cfg.EpsRA, cfg.EpsRB} {
		if e < 0 || e > 1 || math.IsNaN(e) {
			return MABCBitTrueResult{}, fmt.Errorf("sim: erasure probability %g out of [0,1]", e)
		}
	}
	if cfg.BlockLength <= 0 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: block length %d", cfg.BlockLength)
	}
	if cfg.Trials <= 0 {
		return MABCBitTrueResult{}, ErrNoTrials
	}
	if cfg.Rate <= 0 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: rate %g must be positive", cfg.Rate)
	}
	durations := cfg.Durations
	if durations == nil {
		_, durations = MABCComputeForwardBound(cfg.EpsMAC, cfg.EpsRA, cfg.EpsRB)
	}
	if len(durations) != 2 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: MABC needs 2 durations, got %d", len(durations))
	}
	n := cfg.BlockLength
	n1 := int(math.Round(durations[0] * float64(n)))
	n2 := n - n1
	k := int(math.Floor(cfg.Rate * float64(n)))
	if k == 0 {
		return MABCBitTrueResult{}, fmt.Errorf("sim: block length %d too short for rate %g", n, cfg.Rate)
	}
	conf := cfg.Confidence
	if conf <= 0 {
		conf = 0.95
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := MABCBitTrueResult{Durations: durations}
	successes := 0
	var scratch mabcScratch
	for trial := 0; trial < cfg.Trials; trial++ {
		ok, relayOK := runOneMABCBlock(cfg, k, n1, n2, rng, &scratch)
		if ok {
			successes++
			continue
		}
		if !relayOK {
			res.RelayFailures++
		} else {
			res.TerminalFailures++
		}
	}
	res.SuccessProb = float64(successes) / float64(cfg.Trials)
	ci, err := stats.WilsonInterval(successes, cfg.Trials, conf)
	if err != nil {
		return MABCBitTrueResult{}, err
	}
	res.SuccessCI = ci
	return res, nil
}

// mabcScratch reuses the equation-accumulation slices across blocks. Rows
// are shared generator views (RowView): read-only here, and DecodeEquations
// clones what it keeps.
type mabcScratch struct {
	rows []gf2.Vector
	bits []int
}

// runOneMABCBlock simulates one block. Returns (success, relayDecoded).
func runOneMABCBlock(cfg MABCBitTrueConfig, k, n1, n2 int, rng *rand.Rand, sc *mabcScratch) (bool, bool) {
	wa := gf2.RandomVector(k, rng)
	wb := gf2.RandomVector(k, rng)
	s, _ := wa.Xor(wb)

	// Phase 1 (MAC): both terminals encode with the SAME shared generator
	// (agreed via common randomness, as in physical-layer network coding);
	// the relay observes parities of the XOR message through erasures.
	codeMAC := gf2.NewCode(n1, k, rng)
	xs, _ := codeMAC.Encode(s) // equals Encode(wa) xor Encode(wb) by linearity
	sc.rows, sc.bits = sc.rows[:0], sc.bits[:0]
	for i := 0; i < n1; i++ {
		if rng.Float64() >= cfg.EpsMAC {
			sc.rows = append(sc.rows, codeMAC.G.RowView(i))
			sc.bits = append(sc.bits, xs.Bit(i))
		}
	}
	sHat, err := gf2.DecodeEquations(k, sc.rows, sc.bits)
	if err != nil || !sHat.Equal(s) {
		return false, false
	}

	// Phase 2 (broadcast): the relay re-encodes the XOR with a fresh code;
	// each terminal decodes it through its own link's erasures and strips
	// its own message.
	codeBC := gf2.NewCode(n2, k, rng)
	xr, _ := codeBC.Encode(sHat)
	decodeAt := func(eps float64) (gf2.Vector, bool) {
		sc.rows, sc.bits = sc.rows[:0], sc.bits[:0]
		for i := 0; i < n2; i++ {
			if rng.Float64() >= eps {
				sc.rows = append(sc.rows, codeBC.G.RowView(i))
				sc.bits = append(sc.bits, xr.Bit(i))
			}
		}
		got, err := gf2.DecodeEquations(k, sc.rows, sc.bits)
		return got, err == nil
	}
	sAtA, okA := decodeAt(cfg.EpsRA)
	sAtB, okB := decodeAt(cfg.EpsRB)
	if !okA || !okB {
		return false, true
	}
	gotB, _ := sAtA.Xor(wa) // terminal a strips wa
	gotA, _ := sAtB.Xor(wb) // terminal b strips wb
	return gotB.Equal(wb) && gotA.Equal(wa), true
}
