package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"bicoop/internal/channel"
	"bicoop/internal/protocols"
	"bicoop/internal/xmath"
)

// waitGoroutines polls until the goroutine count returns to the baseline or
// the deadline passes, returning the final count.
func waitGoroutines(baseline int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

func TestRunOutageCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunOutage(ctx, OutageConfig{
		Mean:      channel.GainsFromDB(-7, 0, 5),
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC},
		Target:    protocols.RatePair{Ra: 0.5, Rb: 0.5},
		Trials:    50_000_000, // far more than 20ms of work
		Seed:      1,
		Workers:   2,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	st := res.ByProtocol[protocols.MABC]
	if st.Trials <= 0 || st.Trials >= 50_000_000 {
		t.Errorf("partial Trials = %d, want strictly between 0 and the request", st.Trials)
	}
	if st.MeanOptSumRate <= 0 {
		t.Errorf("partial MeanOptSumRate = %g, want > 0", st.MeanOptSumRate)
	}
	if g := waitGoroutines(before, 2*time.Second); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestRunOutagePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunOutage(ctx, OutageConfig{
		Mean:      channel.GainsFromDB(-7, 0, 5),
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC},
		Trials:    1000,
		Seed:      1,
		Workers:   1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancellation watcher runs in its own goroutine, so a few trials
	// may race ahead of the flag; the run must still report the canceled
	// error and a consistent partial count.
	if st := res.ByProtocol[protocols.MABC]; st.Trials < 0 || st.Trials > 1000 {
		t.Errorf("pre-cancelled run reported %d trials", st.Trials)
	}
}

func TestRunBitTrueTDBCCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunBitTrueTDBC(ctx, BitTrueConfig{
		Net:         ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
		Rates:       protocols.RatePair{Ra: 0.2, Rb: 0.2},
		BlockLength: 1000,
		Trials:      10_000_000,
		Seed:        1,
		Workers:     2,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if res.Trials <= 0 || res.Trials >= 10_000_000 {
		t.Errorf("partial Trials = %d, want strictly between 0 and the request", res.Trials)
	}
	if res.SuccessProb < 0 || res.SuccessProb > 1 {
		t.Errorf("partial SuccessProb = %g out of [0,1]", res.SuccessProb)
	}
	if g := waitGoroutines(before, 2*time.Second); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestRunBitTrueMABCCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := RunBitTrueMABC(ctx, MABCBitTrueConfig{
		EpsMAC: 0.2, EpsRA: 0.15, EpsRB: 0.1,
		Rate:        0.3,
		BlockLength: 1000,
		Trials:      10_000_000,
		Seed:        1,
		Workers:     2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Trials <= 0 || res.Trials >= 10_000_000 {
		t.Errorf("partial Trials = %d, want strictly between 0 and the request", res.Trials)
	}
	if g := waitGoroutines(before, 2*time.Second); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestRunOutageNilContextSafe pins that a nil context degrades to an
// unbounded run rather than panicking (internal callers always pass one,
// but the gate documents the tolerance).
func TestRunOutageNilContextSafe(t *testing.T) {
	//lint:ignore SA1012 deliberate nil-context robustness check
	res, err := RunOutage(nil, OutageConfig{ //nolint:staticcheck
		Mean:      channel.GainsFromDB(-7, 0, 5),
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC},
		Trials:    50,
		Seed:      1,
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.ByProtocol[protocols.MABC]; st.Trials != 50 {
		t.Errorf("Trials = %d, want 50", st.Trials)
	}
}

// TestProgressReporting checks the batched progress contract: cumulative,
// monotonic per observation under the serialization the caller provides,
// and exact at completion.
func TestProgressReporting(t *testing.T) {
	var got []int
	res, err := RunBitTrueTDBC(context.Background(), BitTrueConfig{
		Net:         ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
		Rates:       protocols.RatePair{Ra: 0.2, Rb: 0.2},
		BlockLength: 200,
		Trials:      100,
		Seed:        1,
		Workers:     1, // single worker: callbacks arrive serialized
		Progress: func(done, total int) {
			if total != 100 {
				t.Errorf("total = %d, want 100", total)
			}
			got = append(got, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 100 {
		t.Fatalf("Trials = %d, want 100", res.Trials)
	}
	if len(got) == 0 || got[len(got)-1] != 100 {
		t.Fatalf("progress observations %v, want final 100", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("progress not increasing: %v", got)
		}
	}
}
