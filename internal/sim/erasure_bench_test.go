package sim

import (
	"math/bits"
	"math/rand"
	"testing"

	"bicoop/internal/prob"
)

// The erasure-sampling pair measures exactly what the word-parallel kernel
// replaced: drawing the survivor set of one benchErasureN-position phase at
// the TDBC benchmark operating point's a-r erasure rate. Scalar is the
// retired one-Float64-per-position engine; Word is the canonical
// WordBernoulli mask stream. The CI bench gate asserts Word ≥3x Scalar via
// benchjson compare -min-speedup, hardware-independently.

const (
	benchErasureN   = 4096
	benchErasureEps = 0.2
)

func BenchmarkErasureMaskScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		survivors := 0
		for j := 0; j < benchErasureN; j++ {
			if rng.Float64() >= benchErasureEps {
				survivors++
			}
		}
		sink += survivors
	}
	_ = sink
}

func BenchmarkErasureMaskWord(b *testing.B) {
	mask := prob.NewWordBernoulli(benchErasureEps)
	rng := rand.New(rand.NewSource(1))
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		survivors := 0
		for base := 0; base < benchErasureN; base += 64 {
			survivors += bits.OnesCount64(^mask.Mask(rng) & liveLanes(base, benchErasureN))
		}
		sink += survivors
	}
	_ = sink
}
