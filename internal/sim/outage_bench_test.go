package sim

import (
	"context"
	"testing"

	"bicoop/internal/protocols"
	"bicoop/internal/xmath"
)

func benchOutageConfig() OutageConfig {
	return OutageConfig{
		Mean:      fig4Mean(),
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC},
		Target:    protocols.RatePair{Ra: 0.5, Rb: 0.5},
		Trials:    1,
		Seed:      1,
		Workers:   1,
	}
}

// TestOutageTrialZeroAllocs is the allocation-regression gate for the
// Monte Carlo per-block path: one fading draw plus a sum-rate LP and a
// feasibility probe per protocol must not allocate in steady state.
func TestOutageTrialZeroAllocs(t *testing.T) {
	w, err := newOutageWorker(benchOutageConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the evaluator workspaces.
	for i := 0; i < 3; i++ {
		if err := w.runTrial(); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := w.runTrial(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("outage trial allocates %.1f/op, want 0", n)
	}
}

// TestOutageWorkerMatchesRunOutage cross-checks that the sharded run is the
// deterministic sum of its per-worker trials.
func TestOutageWorkerMatchesRunOutage(t *testing.T) {
	cfg := benchOutageConfig()
	cfg.Trials = 50
	res, err := RunOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := newOutageWorker(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Trials; i++ {
		if err := w.runTrial(); err != nil {
			t.Fatal(err)
		}
	}
	for pi, proto := range cfg.Protocols {
		want := w.sum[pi] / float64(w.trials)
		got := res.ByProtocol[proto].MeanOptSumRate
		if !xmath.ApproxEqual(got, want, 1e-12) {
			t.Errorf("%v: RunOutage mean %g vs worker replay %g", proto, got, want)
		}
	}
}

// BenchmarkOutageTrial measures one fading block across three protocols
// (the steady-state Monte Carlo kernel, excluding worker setup).
func BenchmarkOutageTrial(b *testing.B) {
	w, err := newOutageWorker(benchOutageConfig(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.runTrial(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.runTrial(); err != nil {
			b.Fatal(err)
		}
	}
}
