package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bicoop/internal/gf2"
	"bicoop/internal/netcode"
	"bicoop/internal/protocols"
)

// ErasureNetwork instantiates the paper's three-node half-duplex network
// with binary erasure links: link (i,j) delivers each transmitted bit with
// probability 1-ε(i,j), so its per-use mutual information is 1-ε. The
// channels are reciprocal, mirroring the Gaussian model.
type ErasureNetwork struct {
	// EpsAR, EpsBR, EpsAB are the erasure probabilities of the a-r, b-r and
	// a-b links.
	EpsAR, EpsBR, EpsAB float64
}

// Validate checks the erasure probabilities.
func (n ErasureNetwork) Validate() error {
	for _, e := range []float64{n.EpsAR, n.EpsBR, n.EpsAB} {
		if e < 0 || e > 1 || math.IsNaN(e) {
			return fmt.Errorf("sim: erasure probability %g out of [0,1]", e)
		}
	}
	return nil
}

// LinkInfos maps the erasure network to the mutual-information terms of the
// protocol theorems: every point-to-point term is 1-ε, the broadcast
// observations are independent, and the SIMO terms combine erasures as
// 1-ε1·ε2 (the bit survives unless both copies are erased). The MAC terms
// are not meaningful for this orthogonal-erasure abstraction and are set to
// the values that make TDBC — the protocol the bit-true simulator executes —
// exactly evaluable.
func (n ErasureNetwork) LinkInfos() protocols.LinkInfos {
	return protocols.LinkInfos{
		AtoR:       1 - n.EpsAR,
		BtoR:       1 - n.EpsBR,
		AtoB:       1 - n.EpsAB,
		BtoA:       1 - n.EpsAB,
		RtoA:       1 - n.EpsAR,
		RtoB:       1 - n.EpsBR,
		MACAGivenB: 1 - n.EpsAR,
		MACBGivenA: 1 - n.EpsBR,
		MACSum:     math.Max(1-n.EpsAR, 1-n.EpsBR),
		AtoRB:      1 - n.EpsAR*n.EpsAB,
		BtoRA:      1 - n.EpsBR*n.EpsAB,
	}
}

// BitTrueConfig parameterizes a bit-true TDBC run.
type BitTrueConfig struct {
	// Net is the erasure network.
	Net ErasureNetwork
	// Rates is the target message rate pair in bits per channel use.
	Rates protocols.RatePair
	// Durations are the phase durations (3 entries summing to 1). Nil asks
	// the simulator to derive them from the TDBC inner bound via LP.
	Durations []float64
	// BlockLength is the total number of channel uses n.
	BlockLength int
	// Trials is the number of independent blocks.
	Trials int
	// Seed makes the run reproducible.
	Seed int64
}

// BitTrueResult reports bit-true decoding outcomes.
type BitTrueResult struct {
	// SuccessProb is the fraction of blocks where both terminals recovered
	// the peer message exactly.
	SuccessProb float64
	// RelayFailures counts blocks lost because the relay could not decode.
	RelayFailures int
	// TerminalFailures counts blocks lost at a terminal despite relay
	// success.
	TerminalFailures int
	// Trials echoes the configured trial count.
	Trials int
	// Durations echoes the durations used (after LP derivation if any).
	Durations []float64
}

// ErrInfeasibleRates is returned when no durations support the target rates.
var ErrInfeasibleRates = errors.New("sim: target rates outside the TDBC inner bound")

// RunBitTrueTDBC executes the TDBC protocol bit by bit: random linear codes
// at all three encoders, random erasures on every link, overheard side
// information retained at the terminals, XOR network coding at the relay
// (zero-padded to the longer message per the paper's group construction),
// and Gaussian-elimination decoding that pools all equations a node holds.
func RunBitTrueTDBC(cfg BitTrueConfig) (BitTrueResult, error) {
	if err := cfg.Net.Validate(); err != nil {
		return BitTrueResult{}, err
	}
	if cfg.BlockLength <= 0 {
		return BitTrueResult{}, fmt.Errorf("sim: block length %d", cfg.BlockLength)
	}
	if cfg.Trials <= 0 {
		return BitTrueResult{}, ErrNoTrials
	}
	if cfg.Rates.Ra < 0 || cfg.Rates.Rb < 0 {
		return BitTrueResult{}, fmt.Errorf("sim: negative rates %+v", cfg.Rates)
	}

	durations := cfg.Durations
	if durations == nil {
		spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, cfg.Net.LinkInfos())
		if err != nil {
			return BitTrueResult{}, err
		}
		durations, err = spec.DurationsFor(cfg.Rates)
		if err != nil {
			return BitTrueResult{}, fmt.Errorf("%w: %v", ErrInfeasibleRates, err)
		}
	}
	if len(durations) != 3 {
		return BitTrueResult{}, fmt.Errorf("sim: TDBC needs 3 durations, got %d", len(durations))
	}

	n := cfg.BlockLength
	n1 := int(math.Round(durations[0] * float64(n)))
	n2 := int(math.Round(durations[1] * float64(n)))
	n3 := n - n1 - n2
	if n3 < 0 {
		n3 = 0
	}
	ka := int(math.Floor(cfg.Rates.Ra * float64(n)))
	kb := int(math.Floor(cfg.Rates.Rb * float64(n)))
	if ka == 0 && kb == 0 {
		return BitTrueResult{}, fmt.Errorf("sim: block length %d too short for rates %+v", n, cfg.Rates)
	}
	kr := ka
	if kb > kr {
		kr = kb
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := BitTrueResult{Trials: cfg.Trials, Durations: durations}
	successes := 0
	var scratch tdbcScratch
	for trial := 0; trial < cfg.Trials; trial++ {
		ok, relayOK := runOneTDBCBlock(cfg.Net, ka, kb, kr, n1, n2, n3, rng, &scratch)
		if ok {
			successes++
			continue
		}
		if !relayOK {
			res.RelayFailures++
		} else {
			res.TerminalFailures++
		}
	}
	res.SuccessProb = float64(successes) / float64(cfg.Trials)
	return res, nil
}

// tdbcScratch holds the equation-accumulation buffers of the bit-true TDBC
// simulator so successive blocks reuse one set of slices (and one pool of
// truncated-row vectors) instead of reallocating them per block. Rows taken
// from generator matrices are shared views (gf2.Matrix.RowView): they are
// only read here, and gf2.DecodeEquations clones every row it keeps.
type tdbcScratch struct {
	relayRowsA, relayRowsB []gf2.Vector
	relayBitsA, relayBitsB []int
	aSideRows, bSideRows   []gf2.Vector
	aSideBits, bSideBits   []int
	rowsForA, rowsForB     []gf2.Vector
	bitsForA, bitsForB     []int
	// truncA/truncB pool the truncated relay rows destined for terminals a
	// and b (kb- and ka-bit vectors respectively); truncAUsed/truncBUsed
	// count how many are live in the current block.
	truncA, truncB         []gf2.Vector
	truncAUsed, truncBUsed int
}

// reset prepares the scratch for a new block without releasing storage.
func (s *tdbcScratch) reset() {
	s.relayRowsA, s.relayRowsB = s.relayRowsA[:0], s.relayRowsB[:0]
	s.relayBitsA, s.relayBitsB = s.relayBitsA[:0], s.relayBitsB[:0]
	s.aSideRows, s.bSideRows = s.aSideRows[:0], s.bSideRows[:0]
	s.aSideBits, s.bSideBits = s.aSideBits[:0], s.bSideBits[:0]
	s.rowsForA, s.rowsForB = s.rowsForA[:0], s.rowsForB[:0]
	s.bitsForA, s.bitsForB = s.bitsForA[:0], s.bitsForB[:0]
	s.truncAUsed, s.truncBUsed = 0, 0
}

// truncate writes the first k coordinates of v into a pooled vector and
// returns it; the result stays valid until the next reset.
func truncateInto(pool *[]gf2.Vector, used *int, v gf2.Vector, k int) gf2.Vector {
	var out gf2.Vector
	if *used < len(*pool) && (*pool)[*used].Len() == k {
		out = (*pool)[*used]
	} else {
		out = gf2.NewVector(k)
		if *used < len(*pool) {
			(*pool)[*used] = out
		} else {
			*pool = append(*pool, out)
		}
	}
	*used++
	for i := 0; i < k; i++ {
		b := 0
		if i < v.Len() {
			b = v.Bit(i)
		}
		out.Set(i, b)
	}
	return out
}

// runOneTDBCBlock simulates one block. Returns (success, relayDecoded).
func runOneTDBCBlock(net ErasureNetwork, ka, kb, kr, n1, n2, n3 int, rng *rand.Rand, s *tdbcScratch) (bool, bool) {
	s.reset()
	wa := gf2.RandomVector(ka, rng)
	wb := gf2.RandomVector(kb, rng)

	// Phase 1: a broadcasts n1 random parities of wa; r and b erase
	// independently.
	codeA := gf2.NewCode(n1, ka, rng)
	xa, _ := codeA.Encode(wa)
	for i := 0; i < n1; i++ {
		if rng.Float64() >= net.EpsAR {
			s.relayRowsA = append(s.relayRowsA, codeA.G.RowView(i))
			s.relayBitsA = append(s.relayBitsA, xa.Bit(i))
		}
		if rng.Float64() >= net.EpsAB {
			s.bSideRows = append(s.bSideRows, codeA.G.RowView(i))
			s.bSideBits = append(s.bSideBits, xa.Bit(i))
		}
	}

	// Phase 2: b broadcasts n2 random parities of wb; r and a erase
	// independently.
	codeB := gf2.NewCode(n2, kb, rng)
	xb, _ := codeB.Encode(wb)
	for i := 0; i < n2; i++ {
		if rng.Float64() >= net.EpsBR {
			s.relayRowsB = append(s.relayRowsB, codeB.G.RowView(i))
			s.relayBitsB = append(s.relayBitsB, xb.Bit(i))
		}
		if rng.Float64() >= net.EpsAB {
			s.aSideRows = append(s.aSideRows, codeB.G.RowView(i))
			s.aSideBits = append(s.aSideBits, xb.Bit(i))
		}
	}

	// Relay decodes both messages (decode-and-forward).
	decA, errA := gf2.DecodeEquations(ka, s.relayRowsA, s.relayBitsA)
	decB, errB := gf2.DecodeEquations(kb, s.relayRowsB, s.relayBitsB)
	if errA != nil || errB != nil || !decA.Equal(wa) || !decB.Equal(wb) {
		return false, false
	}

	// Relay XOR-combines in Z_2^kr (zero-padded) and broadcasts n3 random
	// parities of wr.
	wr := netcode.PadCombine(decA, decB)
	codeR := gf2.NewCode(n3, kr, rng)
	xr, _ := codeR.Encode(wr)

	// Each terminal converts every surviving relay parity g·wr into an
	// equation about the peer message: wr = pad(wa) ⊕ pad(wb), so
	// g·pad(wb) = bit ⊕ g·pad(wa) at node a (which knows wa), and
	// symmetrically at node b. Since pad(w) is zero above the message
	// length, the effective row is g truncated to the peer's length.
	padWa := netcode.PadCombine(wa, gf2.NewVector(kr)) // wa zero-padded to kr
	padWb := netcode.PadCombine(wb, gf2.NewVector(kr))
	s.rowsForA = append(s.rowsForA, s.aSideRows...)
	s.bitsForA = append(s.bitsForA, s.aSideBits...)
	s.rowsForB = append(s.rowsForB, s.bSideRows...)
	s.bitsForB = append(s.bitsForB, s.bSideBits...)
	for i := 0; i < n3; i++ {
		row := codeR.G.RowView(i)
		bit := xr.Bit(i)
		// a hears the relay through the a-r link.
		if rng.Float64() >= net.EpsAR {
			s.rowsForA = append(s.rowsForA, truncateInto(&s.truncA, &s.truncAUsed, row, kb))
			s.bitsForA = append(s.bitsForA, bit^dot(row, padWa))
		}
		// b hears the relay through the b-r link.
		if rng.Float64() >= net.EpsBR {
			s.rowsForB = append(s.rowsForB, truncateInto(&s.truncB, &s.truncBUsed, row, ka))
			s.bitsForB = append(s.bitsForB, bit^dot(row, padWb))
		}
	}

	gotB, errA2 := gf2.DecodeEquations(kb, s.rowsForA, s.bitsForA)
	if errA2 != nil || !gotB.Equal(wb) {
		return false, true
	}
	gotA, errB2 := gf2.DecodeEquations(ka, s.rowsForB, s.bitsForB)
	if errB2 != nil || !gotA.Equal(wa) {
		return false, true
	}
	return true, true
}

// dot returns the GF(2) inner product of two equal-length vectors.
func dot(a, b gf2.Vector) int {
	var acc int
	for i := 0; i < a.Len() && i < b.Len(); i++ {
		acc ^= a.Bit(i) & b.Bit(i)
	}
	return acc
}
