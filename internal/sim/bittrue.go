package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"bicoop/internal/gf2"
	"bicoop/internal/netcode"
	"bicoop/internal/prob"
	"bicoop/internal/protocols"
)

// ErasureNetwork instantiates the paper's three-node half-duplex network
// with binary erasure links: link (i,j) delivers each transmitted bit with
// probability 1-ε(i,j), so its per-use mutual information is 1-ε. The
// channels are reciprocal, mirroring the Gaussian model.
type ErasureNetwork struct {
	// EpsAR, EpsBR, EpsAB are the erasure probabilities of the a-r, b-r and
	// a-b links.
	EpsAR, EpsBR, EpsAB float64
}

// Validate checks the erasure probabilities.
func (n ErasureNetwork) Validate() error {
	for _, e := range []float64{n.EpsAR, n.EpsBR, n.EpsAB} {
		if e < 0 || e > 1 || math.IsNaN(e) {
			return fmt.Errorf("sim: erasure probability %g out of [0,1]", e)
		}
	}
	return nil
}

// LinkInfos maps the erasure network to the mutual-information terms of the
// protocol theorems: every point-to-point term is 1-ε, the broadcast
// observations are independent, and the SIMO terms combine erasures as
// 1-ε1·ε2 (the bit survives unless both copies are erased). The MAC terms
// are not meaningful for this orthogonal-erasure abstraction and are set to
// the values that make TDBC — the protocol the bit-true simulator executes —
// exactly evaluable.
func (n ErasureNetwork) LinkInfos() protocols.LinkInfos {
	return protocols.LinkInfos{
		AtoR:       1 - n.EpsAR,
		BtoR:       1 - n.EpsBR,
		AtoB:       1 - n.EpsAB,
		BtoA:       1 - n.EpsAB,
		RtoA:       1 - n.EpsAR,
		RtoB:       1 - n.EpsBR,
		MACAGivenB: 1 - n.EpsAR,
		MACBGivenA: 1 - n.EpsBR,
		MACSum:     math.Max(1-n.EpsAR, 1-n.EpsBR),
		AtoRB:      1 - n.EpsAR*n.EpsAB,
		BtoRA:      1 - n.EpsBR*n.EpsAB,
	}
}

// BitTrueConfig parameterizes a bit-true TDBC run.
type BitTrueConfig struct {
	// Net is the erasure network.
	Net ErasureNetwork
	// Rates is the target message rate pair in bits per channel use.
	Rates protocols.RatePair
	// Durations are the phase durations (3 entries summing to 1). Nil asks
	// the simulator to derive them from the TDBC inner bound via LP.
	Durations []float64
	// BlockLength is the total number of channel uses n.
	BlockLength int
	// Trials is the number of independent blocks.
	Trials int
	// Seed makes the run reproducible: results are deterministic for a
	// fixed (Seed, Trials, Workers) triple.
	Seed int64
	// Workers bounds the worker pool sharding the trials; non-positive
	// means GOMAXPROCS. Each worker owns an RNG derived from Seed (worker
	// w uses Seed + w*workerSeedStride), its own codes, and its own
	// elimination scratch, so results are a pure function of (Seed,
	// Trials, Workers); changing Workers reshards the trials and changes
	// the per-trial stream, exactly as the fading Monte Carlo documents
	// for its workers. The canonical stream draws erasures 64 positions
	// at a time (see erasure.go); seeds from releases with the scalar
	// per-position stream produce different — equally valid — sample
	// paths.
	Workers int
	// Progress, when non-nil, is invoked with the cumulative completed trial
	// count at stride granularity (see runGate). Invocations are serialized
	// and the reported count is strictly increasing.
	Progress func(done, total int)
}

// BitTrueResult reports bit-true decoding outcomes.
type BitTrueResult struct {
	// SuccessProb is the fraction of blocks where both terminals recovered
	// the peer message exactly.
	SuccessProb float64
	// RelayFailures counts blocks lost because the relay could not decode.
	RelayFailures int
	// TerminalFailures counts blocks lost at a terminal despite relay
	// success.
	TerminalFailures int
	// Trials is the number of trials actually completed — the configured
	// count unless the run's context was cancelled mid-flight.
	Trials int
	// Durations echoes the durations used (after LP derivation if any).
	Durations []float64
}

// ErrInfeasibleRates is returned when no durations support the target rates.
var ErrInfeasibleRates = errors.New("sim: target rates outside the TDBC inner bound")

// tdbcParams are the integer block dimensions of one TDBC run, derived once
// from the config and shared by every worker.
type tdbcParams struct {
	ka, kb, kr int
	n1, n2, n3 int
}

// deriveTDBCParams validates the config and resolves durations and block
// dimensions.
func deriveTDBCParams(cfg BitTrueConfig) (tdbcParams, []float64, error) {
	if err := cfg.Net.Validate(); err != nil {
		return tdbcParams{}, nil, err
	}
	if cfg.BlockLength <= 0 {
		return tdbcParams{}, nil, fmt.Errorf("sim: block length %d", cfg.BlockLength)
	}
	if cfg.Trials <= 0 {
		return tdbcParams{}, nil, ErrNoTrials
	}
	if cfg.Rates.Ra < 0 || cfg.Rates.Rb < 0 {
		return tdbcParams{}, nil, fmt.Errorf("sim: negative rates %+v", cfg.Rates)
	}

	durations := cfg.Durations
	if durations == nil {
		spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, cfg.Net.LinkInfos())
		if err != nil {
			return tdbcParams{}, nil, err
		}
		durations, err = spec.DurationsFor(cfg.Rates)
		if err != nil {
			return tdbcParams{}, nil, fmt.Errorf("%w: %w", ErrInfeasibleRates, err)
		}
	}
	if len(durations) != 3 {
		return tdbcParams{}, nil, fmt.Errorf("sim: TDBC needs 3 durations, got %d", len(durations))
	}

	n := cfg.BlockLength
	p := tdbcParams{
		n1: int(math.Round(durations[0] * float64(n))),
		n2: int(math.Round(durations[1] * float64(n))),
		ka: int(math.Floor(cfg.Rates.Ra * float64(n))),
		kb: int(math.Floor(cfg.Rates.Rb * float64(n))),
	}
	p.n3 = n - p.n1 - p.n2
	if p.n3 < 0 {
		p.n3 = 0
	}
	if p.ka == 0 && p.kb == 0 {
		return tdbcParams{}, nil, fmt.Errorf("sim: block length %d too short for rates %+v", n, cfg.Rates)
	}
	p.kr = p.ka
	if p.kb > p.kr {
		p.kr = p.kb
	}
	return p, durations, nil
}

// RunBitTrueTDBC executes the TDBC protocol bit by bit: random linear codes
// at all three encoders, random erasures on every link, overheard side
// information retained at the terminals, XOR network coding at the relay
// (zero-padded to the longer message per the paper's group construction),
// and Gaussian-elimination decoding that pools all equations a node holds.
// Trials are sharded across cfg.Workers goroutines and the per-worker
// counters merged after the pool drains. Cancelling ctx stops every worker
// within one block; the counts over the blocks completed so far are returned
// alongside the (wrapped) context error.
func RunBitTrueTDBC(ctx context.Context, cfg BitTrueConfig) (BitTrueResult, error) {
	p, durations, err := deriveTDBCParams(cfg)
	if err != nil {
		return BitTrueResult{}, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	gate, stopWatch := startGate(ctx, cfg.Trials, cfg.Progress)
	defer stopWatch()
	parts := make([]*tdbcWorker, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		count := cfg.Trials*(wi+1)/workers - cfg.Trials*wi/workers
		wk := newTDBCWorker(cfg.Net, p, cfg.Seed+int64(wi)*workerSeedStride)
		parts[wi] = wk
		wg.Add(1)
		go func(wk *tdbcWorker, count int) {
			defer wg.Done()
			_, _ = gate.run(count, func() error { wk.runTrial(); return nil })
		}(wk, count)
	}
	wg.Wait()

	res := BitTrueResult{Durations: durations}
	successes := 0
	for _, wk := range parts {
		successes += wk.successes
		res.RelayFailures += wk.relayFailures
		res.TerminalFailures += wk.terminalFailures
	}
	res.Trials = successes + res.RelayFailures + res.TerminalFailures
	if res.Trials > 0 {
		res.SuccessProb = float64(successes) / float64(res.Trials)
	}
	if err := ctxErr(ctx); err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	return res, nil
}

// tdbcWorker owns one goroutine's share of the bit-true Monte Carlo: a
// seed-derived RNG, three preallocated generator matrices re-randomized in
// place per block, every message/codeword buffer, a gf2.Solver with
// pre-reserved scratch, and the equation-accumulation slices. After worker
// construction a block performs no heap allocation (gated by
// TestBitTrueTDBCBlockZeroAllocs).
//
// Rows appended to the accumulators are either generator views
// (gf2.Matrix.RowView) or pooled truncations — read-only until the next
// reset, which is all the solver needs.
type tdbcWorker struct {
	net ErasureNetwork
	p   tdbcParams
	rng *rand.Rand

	// maskAR, maskBR, maskAB draw 64 link erasures per call (see erasure.go).
	maskAR, maskBR, maskAB prob.WordBernoulli

	codeA, codeB, codeR gf2.Code
	wa, wb, wr          gf2.Vector
	xa, xb, xr          gf2.Vector
	padWa, padWb        gf2.Vector
	decA, decB          gf2.Vector
	gotA, gotB          gf2.Vector
	solver              gf2.Solver

	relayRowsA, relayRowsB []gf2.Vector
	relayBitsA, relayBitsB []int
	// rowsForA/bitsForA accumulate everything terminal a decodes wb from
	// (phase-2 overheard rows, then truncated relay rows); rowsForB likewise
	// for terminal b and wa.
	rowsForA, rowsForB []gf2.Vector
	bitsForA, bitsForB []int
	// truncA/truncB pool the truncated relay rows destined for terminals a
	// and b (kb- and ka-bit vectors), indexed by relay symbol position.
	truncA, truncB []gf2.Vector

	successes, relayFailures, terminalFailures int
}

// newTDBCWorker allocates a worker with every buffer sized to its maximum:
// the accumulators can never outgrow the phase lengths, so steady-state
// blocks never re-slice beyond capacity.
func newTDBCWorker(net ErasureNetwork, p tdbcParams, seed int64) *tdbcWorker {
	w := &tdbcWorker{
		net: net,
		p:   p,
		rng: rand.New(rand.NewSource(seed)),

		maskAR: prob.NewWordBernoulli(net.EpsAR),
		maskBR: prob.NewWordBernoulli(net.EpsBR),
		maskAB: prob.NewWordBernoulli(net.EpsAB),

		codeA: gf2.Code{G: gf2.NewMatrix(p.n1, p.ka)},
		codeB: gf2.Code{G: gf2.NewMatrix(p.n2, p.kb)},
		codeR: gf2.Code{G: gf2.NewMatrix(p.n3, p.kr)},
		wa:    gf2.NewVector(p.ka),
		wb:    gf2.NewVector(p.kb),
		wr:    gf2.NewVector(p.kr),
		xa:    gf2.NewVector(p.n1),
		xb:    gf2.NewVector(p.n2),
		xr:    gf2.NewVector(p.n3),
		padWa: gf2.NewVector(p.kr),
		padWb: gf2.NewVector(p.kr),
		decA:  gf2.NewVector(p.ka),
		decB:  gf2.NewVector(p.kb),
		gotA:  gf2.NewVector(p.ka),
		gotB:  gf2.NewVector(p.kb),

		relayRowsA: make([]gf2.Vector, 0, p.n1),
		relayRowsB: make([]gf2.Vector, 0, p.n2),
		relayBitsA: make([]int, 0, p.n1),
		relayBitsB: make([]int, 0, p.n2),
		rowsForA:   make([]gf2.Vector, 0, p.n2+p.n3),
		rowsForB:   make([]gf2.Vector, 0, p.n1+p.n3),
		bitsForA:   make([]int, 0, p.n2+p.n3),
		bitsForB:   make([]int, 0, p.n1+p.n3),
		truncA:     make([]gf2.Vector, p.n3),
		truncB:     make([]gf2.Vector, p.n3),
	}
	for i := range w.truncA {
		w.truncA[i] = gf2.NewVector(p.kb)
		w.truncB[i] = gf2.NewVector(p.ka)
	}
	w.solver.Reserve(p.n1, p.ka)
	w.solver.Reserve(p.n2, p.kb)
	w.solver.Reserve(p.n2+p.n3, p.kb)
	w.solver.Reserve(p.n1+p.n3, p.ka)
	return w
}

// reset prepares the accumulators for a new block without releasing storage.
//
//bicoop:noalloc
func (w *tdbcWorker) reset() {
	w.relayRowsA, w.relayRowsB = w.relayRowsA[:0], w.relayRowsB[:0]
	w.relayBitsA, w.relayBitsB = w.relayBitsA[:0], w.relayBitsB[:0]
	w.rowsForA, w.rowsForB = w.rowsForA[:0], w.rowsForB[:0]
	w.bitsForA, w.bitsForB = w.bitsForA[:0], w.bitsForB[:0]
}

// runTrial runs one block and tallies the outcome.
//
//bicoop:noalloc
func (w *tdbcWorker) runTrial() {
	ok, relayOK := w.runBlock()
	switch {
	case ok:
		w.successes++
	case !relayOK:
		w.relayFailures++
	default:
		w.terminalFailures++
	}
}

// runBlock simulates one block. Returns (success, relayDecoded). Erasures
// are drawn 64 positions per mask in the canonical batch/link order
// documented in erasure.go, so results are bit-reproducible for a fixed
// (Seed, Trials, Workers).
//
//bicoop:noalloc
func (w *tdbcWorker) runBlock() (bool, bool) {
	w.reset()
	p := w.p
	w.wa.Randomize(w.rng)
	w.wb.Randomize(w.rng)

	// Phase 1: a broadcasts n1 random parities of wa; r and b erase
	// independently (mask order per batch: a-r, then a-b).
	w.codeA.Rerandomize(w.rng)
	_ = w.codeA.EncodeInto(&w.xa, w.wa)
	for base := 0; base < p.n1; base += 64 {
		live := liveLanes(base, p.n1)
		survAR := ^w.maskAR.Mask(w.rng) & live
		survAB := ^w.maskAB.Mask(w.rng) & live
		for m := survAR; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			w.relayRowsA = append(w.relayRowsA, w.codeA.G.RowView(i))
			w.relayBitsA = append(w.relayBitsA, w.xa.Bit(i))
		}
		for m := survAB; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			w.rowsForB = append(w.rowsForB, w.codeA.G.RowView(i))
			w.bitsForB = append(w.bitsForB, w.xa.Bit(i))
		}
	}

	// Phase 2: b broadcasts n2 random parities of wb; r and a erase
	// independently (mask order per batch: b-r, then a-b).
	w.codeB.Rerandomize(w.rng)
	_ = w.codeB.EncodeInto(&w.xb, w.wb)
	for base := 0; base < p.n2; base += 64 {
		live := liveLanes(base, p.n2)
		survBR := ^w.maskBR.Mask(w.rng) & live
		survAB := ^w.maskAB.Mask(w.rng) & live
		for m := survBR; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			w.relayRowsB = append(w.relayRowsB, w.codeB.G.RowView(i))
			w.relayBitsB = append(w.relayBitsB, w.xb.Bit(i))
		}
		for m := survAB; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			w.rowsForA = append(w.rowsForA, w.codeB.G.RowView(i))
			w.bitsForA = append(w.bitsForA, w.xb.Bit(i))
		}
	}

	// Relay decodes both messages (decode-and-forward).
	errA := w.solver.SolveConsistentInto(&w.decA, p.ka, w.relayRowsA, w.relayBitsA)
	errB := w.solver.SolveConsistentInto(&w.decB, p.kb, w.relayRowsB, w.relayBitsB)
	if errA != nil || errB != nil || !w.decA.Equal(w.wa) || !w.decB.Equal(w.wb) {
		return false, false
	}

	// Relay XOR-combines in Z_2^kr (zero-padded) and broadcasts n3 random
	// parities of wr.
	_ = netcode.PadCombineInto(&w.wr, w.decA, w.decB)
	w.codeR.Rerandomize(w.rng)
	_ = w.codeR.EncodeInto(&w.xr, w.wr)

	// Each terminal converts every surviving relay parity g·wr into an
	// equation about the peer message: wr = pad(wa) ⊕ pad(wb), so
	// g·pad(wb) = bit ⊕ g·pad(wa) at node a (which knows wa), and
	// symmetrically at node b. Since pad(w) is zero above the message
	// length, the effective row is g truncated to the peer's length.
	// Mask order per batch: a-r, then b-r.
	w.padWa.CopyPrefix(w.wa) // wa zero-padded to kr
	w.padWb.CopyPrefix(w.wb)
	for base := 0; base < p.n3; base += 64 {
		live := liveLanes(base, p.n3)
		survA := ^w.maskAR.Mask(w.rng) & live // a hears the relay via a-r
		survB := ^w.maskBR.Mask(w.rng) & live // b hears the relay via b-r
		for m := survA; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			row := w.codeR.G.RowView(i)
			w.truncA[i].CopyPrefix(row)
			w.rowsForA = append(w.rowsForA, w.truncA[i])
			w.bitsForA = append(w.bitsForA, w.xr.Bit(i)^gf2.Dot(row, w.padWa))
		}
		for m := survB; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			row := w.codeR.G.RowView(i)
			w.truncB[i].CopyPrefix(row)
			w.rowsForB = append(w.rowsForB, w.truncB[i])
			w.bitsForB = append(w.bitsForB, w.xr.Bit(i)^gf2.Dot(row, w.padWb))
		}
	}

	if err := w.solver.SolveConsistentInto(&w.gotB, p.kb, w.rowsForA, w.bitsForA); err != nil || !w.gotB.Equal(w.wb) {
		return false, true
	}
	if err := w.solver.SolveConsistentInto(&w.gotA, p.ka, w.rowsForB, w.bitsForB); err != nil || !w.gotA.Equal(w.wa) {
		return false, true
	}
	return true, true
}
