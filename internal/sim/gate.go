package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// progressStride is the trial granularity at which workers publish their
// local completion counts to the shared run counter (and, through it, to the
// Progress callback). Batching keeps the per-trial cost at one atomic flag
// load; the callback never lags the true count by more than one stride per
// worker.
const progressStride = 32

// runGate coordinates a sharded Monte Carlo run across its worker pool: it
// turns context cancellation into a single atomic flag the workers poll once
// per trial (an uncontended load, so cancellation support adds no measurable
// per-trial overhead and no allocation), and it aggregates per-worker
// completion counts for the optional progress callback.
//
// The flag is set by a context.AfterFunc rather than polled via ctx.Err(),
// so the hot loop never touches the context's mutex. A cancelled run stops
// within one trial per worker — far finer than the shard (per-worker trial
// share) granularity.
type runGate struct {
	halted atomic.Bool
	total  int
	// mu serializes the cumulative count update and the callback invocation
	// as one critical section, so observers see a strictly increasing done
	// count. It is only touched when a progress callback is configured, and
	// then only once per stride.
	mu       sync.Mutex
	done     int
	progress func(done, total int)
}

// startGate builds the gate for a run of total trials and attaches the
// cancellation watcher. The returned stop func detaches the watcher and must
// be called (defer) once the pool has drained. A nil or never-cancelled
// context degenerates to a plain counter.
func startGate(ctx context.Context, total int, progress func(done, total int)) (*runGate, func() bool) {
	g := &runGate{total: total, progress: progress}
	stop := func() bool { return false }
	if ctx != nil && ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() { g.halted.Store(true) })
	}
	return g, stop
}

// run executes up to count trials on the calling goroutine, stopping early
// once the gate halts or trial returns an error. It returns the number of
// trials completed. Progress (when configured) is invoked at stride
// granularity with the run-wide cumulative count; invocations are
// serialized and the count is strictly increasing across them.
func (g *runGate) run(count int, trial func() error) (int, error) {
	completed, pending := 0, 0
	for i := 0; i < count; i++ {
		if g.halted.Load() {
			break
		}
		if err := trial(); err != nil {
			g.flush(&pending)
			return completed, err
		}
		completed++
		pending++
		if pending == progressStride {
			g.flush(&pending)
		}
	}
	g.flush(&pending)
	return completed, nil
}

// flush publishes a worker's locally accumulated trial count.
func (g *runGate) flush(pending *int) {
	if *pending == 0 || g.progress == nil {
		*pending = 0
		return
	}
	g.mu.Lock()
	g.done += *pending
	*pending = 0
	g.progress(g.done, g.total)
	g.mu.Unlock()
}

// ctxErr returns a non-nil error when the context has ended — the shared
// post-drain check of every sharded runner. The result always matches
// errors.Is(err, ctx.Err()) (so context.Canceled / DeadlineExceeded checks
// work at any layer) and additionally wraps a distinct cancellation cause
// (context.WithCancelCause) when one was supplied.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, err) {
		return fmt.Errorf("%w: %w", err, cause)
	}
	return err
}
