package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden figure artifacts:
//
//	go test ./internal/experiments/ -run TestGoldenFigures -update
var update = flag.Bool("update", false, "rewrite the golden figure artifacts under testdata/figures")

// goldenIDs lists the experiments pinned as canonical artifacts: the
// deterministic analytic figures (no Monte Carlo), in quick mode with seed 1.
// Every reproduced number of these figures is a golden-file diff away from
// review — numeric drift cannot land silently. Both Fig 4 power levels are
// pinned so the sharded region-batch path has a golden region table at each.
var goldenIDs = []string{"fig3", "fig4a", "fig4b", "crossover"}

func goldenPath(id, ext string) string {
	return filepath.Join("testdata", "figures", id+ext)
}

// TestGoldenFigures renders each canonical figure through the artifact
// pipeline (text + numeric CSV) and compares both against the committed
// golden files; -update rewrites them.
func TestGoldenFigures(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(context.Background(), id, Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			var text, csv bytes.Buffer
			if err := res.WriteArtifact(&text, &csv); err != nil {
				t.Fatal(err)
			}
			for _, f := range []struct {
				path string
				got  []byte
			}{
				{goldenPath(id, ".txt"), text.Bytes()},
				{goldenPath(id, ".csv"), csv.Bytes()},
			} {
				if *update {
					if err := os.MkdirAll(filepath.Dir(f.path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(f.path, f.got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(f.path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if !bytes.Equal(f.got, want) {
					t.Errorf("%s drifted from its golden artifact.\nIf the change is intended, regenerate with:\n  go test ./internal/experiments/ -run TestGoldenFigures -update\n--- got ---\n%s\n--- want ---\n%s",
						f.path, truncateForDiff(f.got), truncateForDiff(want))
				}
			}
		})
	}
}

// truncateForDiff keeps failure output readable for the big text artifacts.
func truncateForDiff(b []byte) []byte {
	const max = 4000
	if len(b) <= max {
		return b
	}
	return append(append([]byte{}, b[:max]...), []byte("\n... (truncated)")...)
}

// TestArtifactShape sanity-checks the artifact pipeline on every registered
// experiment: rendering and CSV flushing must succeed and be non-empty,
// whether or not the figure is in the golden set.
func TestArtifactShape(t *testing.T) {
	res, err := Run(context.Background(), "fig3", Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var text, csv bytes.Buffer
	if err := res.WriteArtifact(&text, &csv); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 || csv.Len() == 0 {
		t.Fatalf("empty artifact: text %d bytes, csv %d bytes", text.Len(), csv.Len())
	}
	if !bytes.Contains(csv.Bytes(), []byte("# chart:")) || !bytes.Contains(csv.Bytes(), []byte("# table")) {
		t.Errorf("CSV artifact missing section markers:\n%s", csv.Bytes())
	}
}
