package experiments

import (
	"fmt"
	"math"

	"bicoop/internal/channel"
	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/region"
	"bicoop/internal/sweep"
	"bicoop/internal/xmath"
)

func init() {
	register("fig3",
		"Fig 3: achievable sum rates of DT/Naive4/MABC/TDBC/HBC vs relay position (P = 15 dB, Gab = 0 dB, path-loss exponent 3)",
		runFig3)
	register("fig4a",
		"Fig 4 (top): achievable rate regions and outer bounds at P = 0 dB (Gab = -7 dB, Gar = 0 dB, Gbr = 5 dB)",
		func(cfg Config) (Result, error) { return runFig4(cfg, 0) })
	register("fig4b",
		"Fig 4 (bottom): achievable rate regions and outer bounds at P = 10 dB (Gab = -7 dB, Gar = 0 dB, Gbr = 5 dB)",
		func(cfg Config) (Result, error) { return runFig4(cfg, 10) })
}

// Fig4Gains returns the gain triple used throughout the Fig 4 experiments,
// assigned to satisfy the paper's standing assumption Gab <= Gar <= Gbr (the
// OCR of the caption loses the subscripts; see DESIGN.md).
func Fig4Gains() channel.Gains {
	return channel.GainsFromDB(-7, 0, 5)
}

// fig4GainsDB is the same triple as dB values, for sweep.Spec bases.
func fig4BaseScenario(powerDB float64) sweep.Scenario {
	return sweep.Scenario{PowerDB: powerDB, GabDB: -7, GarDB: 0, GbrDB: 5}
}

// fig3Protocols is the presentation order of the sum-rate curves.
var fig3Protocols = []protocols.Protocol{
	protocols.DT, protocols.Naive4, protocols.MABC, protocols.TDBC, protocols.HBC,
}

func runFig3(cfg Config) (Result, error) {
	return relayPlacementSweep(cfg, 3, 15)
}

// relayPlacementSweep produces the Fig 3 family: sum rates vs relay position
// with path-loss exponent gamma at power powerDB, streamed point by point
// from the sharded sweep core into the chart series and a lazily formatted
// column table — no string formatting happens until the figure is rendered.
func relayPlacementSweep(cfg Config, gamma, powerDB float64) (Result, error) {
	nPos := 37
	if cfg.Quick {
		// Step 0.05 keeps d = 0.30 on the grid — inside the narrow window
		// (roughly d in (0.285, 0.345) and its mirror) where HBC strictly
		// beats both special cases at these parameters.
		nPos = 19
	}
	positions := xmath.Linspace(0.05, 0.95, nPos)
	spec := sweep.Spec{
		Protocols: fig3Protocols,
		PowersDB:  []float64{powerDB},
	}
	for _, d := range positions {
		spec.Placements = append(spec.Placements, sweep.Placement{Pos: d, Exponent: gamma})
	}
	nP := len(fig3Protocols)
	series := make([]plot.Series, nP)
	for i, proto := range fig3Protocols {
		series[i] = plot.Series{Name: proto.String(), Y: make([]float64, 0, nPos)}
	}
	table := plot.NewColumnTable(
		fmt.Sprintf("Optimal achievable sum rates (bits/use), P = %.1f dB, gamma = %g", powerDB, gamma),
		plot.Col{Name: "relay pos", Prec: 3},
		plot.Col{Name: "DT", Prec: 4}, plot.Col{Name: "Naive4", Prec: 4},
		plot.Col{Name: "MABC", Prec: 4}, plot.Col{Name: "TDBC", Prec: 4},
		plot.Col{Name: "HBC", Prec: 4},
	)
	row := make([]float64, 1+nP)
	err := sweep.Sweep(cfg.ctx(), spec, cfg.sweepOpts(), func(pt sweep.Point) error {
		pi := pt.Index % nP
		series[pi].Y = append(series[pi].Y, pt.Sum)
		row[1+pi] = pt.Sum
		if pi == nP-1 {
			row[0] = positions[pt.Index/nP]
			table.Append(row...)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	hbcStrictAt := math.NaN()
	mabcY, tdbcY, hbcY := series[2].Y, series[3].Y, series[4].Y
	for xi, d := range positions {
		if hbcY[xi] > math.Max(mabcY[xi], tdbcY[xi])+1e-4 {
			hbcStrictAt = d
			break
		}
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  table.Title,
			XLabel: "relay position d_ar (a at 0, b at 1)",
			YLabel: "sum rate Ra+Rb (bits/use)",
			X:      positions,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
	}
	if !math.IsNaN(hbcStrictAt) {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"HBC sum rate strictly exceeds both MABC and TDBC near relay position %.2f (paper: HBC does not reduce to either protocol in general)", hbcStrictAt))
	} else {
		res.Findings = append(res.Findings,
			"HBC never strictly exceeded max(MABC, TDBC) in this sweep — UNEXPECTED vs the paper")
	}
	return res, nil
}

// fig4Curve describes one region curve of Fig 4.
type fig4Curve struct {
	name  string
	proto protocols.Protocol
	bound protocols.Bound
}

// fig4Curves lists the curves the paper plots: achievable regions of all
// four relay protocols plus the MABC and TDBC outer bounds. The HBC outer
// bound is intentionally absent (the paper does not evaluate it; see
// Theorem 6 discussion).
var fig4Curves = []fig4Curve{
	{"DT", protocols.DT, protocols.BoundInner},
	{"MABC (capacity)", protocols.MABC, protocols.BoundInner},
	{"TDBC inner", protocols.TDBC, protocols.BoundInner},
	{"TDBC outer", protocols.TDBC, protocols.BoundOuter},
	{"MABC outer", protocols.MABC, protocols.BoundOuter},
	{"HBC inner", protocols.HBC, protocols.BoundInner},
}

func runFig4(cfg Config, pDB float64) (Result, error) {
	angles := 181
	if cfg.Quick {
		angles = 61
	}
	s := protocols.Scenario{P: xmath.FromDB(pDB), G: Fig4Gains()}
	// All six curves run as one region batch: the flattened angle axis is
	// sharded by the same chunked core as the grid sweeps, and completed
	// polygons stream back in presentation order.
	spec := sweep.RegionSpec{
		Scenarios: []sweep.Scenario{fig4BaseScenario(pDB)},
		Angles:    angles,
	}
	for _, c := range fig4Curves {
		spec.Curves = append(spec.Curves, sweep.RegionCurve{Proto: c.proto, Bound: c.bound})
	}
	curves := make([]plot.RegionCurve, 0, len(fig4Curves))
	polys := make(map[string]region.Polygon, len(fig4Curves))
	table := plot.Table{
		Title:   fmt.Sprintf("Rate-region summary at P = %.0f dB (bits/use)", pDB),
		Headers: []string{"curve", "max Ra", "max Rb", "max Ra+Rb", "area"},
	}
	err := sweep.RegionBatch(cfg.ctx(), spec, cfg.sweepOpts(), func(r sweep.RegionResult) error {
		c := fig4Curves[r.CurveIdx]
		pg := r.Polygon
		polys[c.name] = pg
		maxRa, _ := pg.Support(1, 0)
		maxRb, _ := pg.Support(0, 1)
		table.AddNumericRow(c.name, maxRa, maxRb, pg.MaxSumRate(), pg.Area())
		frontier := pg.ParetoFrontier()
		ra := make([]float64, 0, len(frontier)+2)
		rb := make([]float64, 0, len(frontier)+2)
		ra = append(ra, 0)
		rb = append(rb, maxRb)
		for _, p := range frontier {
			ra = append(ra, p.Ra)
			rb = append(rb, p.Rb)
		}
		ra = append(ra, maxRa)
		rb = append(rb, 0)
		curve, err := plot.CurveFromPairs(c.name, ra, rb)
		if err != nil {
			return err
		}
		curves = append(curves, curve)
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Regions: []plot.RegionPlot{{
			Title:  fmt.Sprintf("Achievable rate regions and outer bounds, P = %.0f dB", pDB),
			Curves: curves,
		}},
		Tables: []plot.TableRenderer{table},
	}

	// Check the qualitative Fig 4 claims, reusing the polygons the batch
	// just computed instead of re-sweeping three regions (the LP witness
	// verification inside is exact either way).
	esc, err := protocols.HBCEscapeFromRegions(s,
		polys["HBC inner"], polys["MABC outer"], polys["TDBC outer"])
	if err != nil {
		return Result{}, err
	}
	maxMargin := 0.0
	var witness region.Point
	for _, e := range esc {
		if e.Margin > maxMargin {
			maxMargin = e.Margin
			witness = e.Point
		}
	}
	if maxMargin > 1e-4 {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"HBC achievable point (%.4f, %.4f) lies outside BOTH the MABC and TDBC outer bounds (escape margin %.4f bits) — the paper's 'surprising' finding",
			witness.Ra, witness.Rb, maxMargin))
	} else {
		res.Findings = append(res.Findings, "no HBC points escaped both outer bounds at this power")
	}
	if polys["MABC (capacity)"].MaxSumRate() > polys["TDBC inner"].MaxSumRate() {
		res.Findings = append(res.Findings, "MABC sum-rate corner dominates TDBC at this power (low-SNR behaviour)")
	} else {
		res.Findings = append(res.Findings, "TDBC sum-rate corner dominates MABC at this power (high-SNR behaviour)")
	}
	res.Findings = append(res.Findings,
		"HBC outer bound not plotted: the paper leaves its Gaussian evaluation open (jointly Gaussian inputs not known to be optimal for Theorem 6)")
	return res, nil
}
