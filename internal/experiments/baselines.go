package experiments

import (
	"fmt"
	"math/rand"

	"bicoop/internal/phy"
	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/sim"
	"bicoop/internal/stats"
	"bicoop/internal/xmath"
)

func init() {
	register("baselines",
		"Extension: DF protocols vs the amplify-and-forward two-phase scheme ([7],[8]) and the full-duplex DF ceiling ([9]), swept over P at the Fig 4 gains",
		runBaselines)
	register("bitsim-mabc",
		"Extension: bit-true compute-and-forward MABC (Theorem 2 remark — relay decodes only the XOR) — success waterfall with Wilson confidence intervals",
		runBitSimMABC)
	register("ber",
		"Substrate validation: symbol-level BER of BPSK/QPSK/16-QAM on direct and amplify-and-forward relay links vs closed-form theory",
		runBER)
}

func runBaselines(cfg Config) (Result, error) {
	nP := 25
	if cfg.Quick {
		nP = 9
	}
	powersDB := xmath.Linspace(-10, 20, nP)
	names := []string{"MABC", "TDBC", "HBC", "AF 2-phase", "full-duplex DF"}
	series := make([]plot.Series, len(names))
	for i, n := range names {
		series[i] = plot.Series{Name: n, Y: make([]float64, nP)}
	}
	table := plot.NewColumnTable("DF protocols vs AF and the full-duplex ceiling (sum rates, bits/use; Fig 4 gains)",
		plot.Col{Name: "P (dB)", Prec: 1},
		plot.Col{Name: "MABC", Prec: 4}, plot.Col{Name: "TDBC", Prec: 4},
		plot.Col{Name: "HBC", Prec: 4}, plot.Col{Name: "AF", Prec: 4},
		plot.Col{Name: "full-duplex", Prec: 4}, plot.Col{Name: "HBC/FD", Prec: 4},
	)
	afBeatsDFSomewhere := false
	worstPenalty := 1.0
	ev := protocols.NewEvaluator()
	for xi, pdb := range powersDB {
		s := protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()}
		vals := make([]float64, 0, 5)
		for _, proto := range []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC} {
			sum, err := ev.SumRate(proto, protocols.BoundInner, s)
			if err != nil {
				return Result{}, err
			}
			vals = append(vals, sum)
		}
		af, err := protocols.AFSumRate(s)
		if err != nil {
			return Result{}, err
		}
		vals = append(vals, af.Sum)
		fd, err := protocols.FullDuplexSumRate(s)
		if err != nil {
			return Result{}, err
		}
		vals = append(vals, fd.Sum)
		for i := range series {
			series[i].Y[xi] = vals[i]
		}
		ratio := vals[2] / vals[4]
		if ratio < worstPenalty {
			worstPenalty = ratio
		}
		if af.Sum > vals[0] {
			afBeatsDFSomewhere = true
		}
		row := append([]float64{pdb}, vals...)
		table.Append(append(row, ratio)...)
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  table.Title,
			XLabel: "P (dB)",
			YLabel: "sum rate (bits/use)",
			X:      powersDB,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
	}
	res.Findings = append(res.Findings, fmt.Sprintf(
		"half-duplex HBC retains at least %.0f%% of the full-duplex DF sum rate across the sweep — the cost of the paper's half-duplex constraint", 100*worstPenalty))
	if afBeatsDFSomewhere {
		res.Findings = append(res.Findings, "AF overtakes MABC DF somewhere in the sweep (noise amplification fades at high SNR)")
	} else {
		res.Findings = append(res.Findings,
			"decode-and-forward dominates the 2-phase AF scheme throughout this gain profile; AF's amplified noise is costly at the paper's SNRs")
	}
	return res, nil
}

func runBitSimMABC(cfg Config) (Result, error) {
	blockLen := 4000
	trials := 40
	if cfg.Quick {
		blockLen = 1200
		trials = 12
	}
	const epsMAC, epsRA, epsRB = 0.2, 0.15, 0.1
	bound, durations := sim.MABCComputeForwardBound(epsMAC, epsRA, epsRB)
	scales := []float64{0.7, 0.8, 0.9, 0.95, 1.05, 1.1, 1.2, 1.3}
	if cfg.Quick {
		scales = []float64{0.8, 0.95, 1.1, 1.3}
	}
	success := make([]float64, len(scales))
	table := plot.Table{
		Title: fmt.Sprintf("Bit-true compute-and-forward MABC (eps mac/ra/rb = %.2f/%.2f/%.2f), block %d, symmetric-rate bound %.4f",
			epsMAC, epsRA, epsRB, blockLen, bound),
		Headers: []string{"rate scale", "success", "95% CI", "relay fails", "terminal fails"},
	}
	// Scale axis as a campaign: deterministic per-scale runs pipelined
	// across cfg.Workers (see the bitsim experiment).
	results := make([]sim.MABCBitTrueResult, len(scales))
	if err := campaign(cfg, len(scales), func(i int) error {
		res, err := sim.RunBitTrueMABC(cfg.ctx(), sim.MABCBitTrueConfig{
			EpsMAC: epsMAC, EpsRA: epsRA, EpsRB: epsRB,
			Rate:        bound * scales[i],
			Durations:   durations,
			BlockLength: blockLen,
			Trials:      trials,
			Seed:        cfg.Seed + int64(i),
			// Fixed worker count: seed-reproducible across machines, still
			// sharded on multi-core hosts (see the bitsim experiment).
			Workers: 8,
		})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return Result{}, err
	}
	for i, sc := range scales {
		res := results[i]
		success[i] = res.SuccessProb
		table.AddRow(fmt.Sprintf("%.2f", sc), fmt.Sprintf("%.3f", res.SuccessProb),
			fmt.Sprintf("[%.3f, %.3f]", res.SuccessCI.Lo, res.SuccessCI.Hi),
			fmt.Sprintf("%d", res.RelayFailures), fmt.Sprintf("%d", res.TerminalFailures))
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  "Compute-and-forward MABC success vs rate relative to its bound",
			XLabel: "rate scale",
			YLabel: "block success probability",
			X:      scales,
			Series: []plot.Series{{Name: "success", Y: success}},
		}},
		Tables: []plot.TableRenderer{table},
	}
	below, above := success[0], success[len(success)-1]
	if below > 0.9 && above < 0.1 {
		res.Findings = append(res.Findings,
			"waterfall confirmed for the Theorem 2 remark's protocol: the relay decodes ONLY the XOR (physical-layer network coding over a shared linear code) yet both terminals exchange messages reliably up to the bound")
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"waterfall shape off (%.2f below vs %.2f above) — UNEXPECTED", below, above))
	}
	return res, nil
}

func runBER(cfg Config) (Result, error) {
	nBits := 400000
	if cfg.Quick {
		nBits = 60000
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	mods := []phy.Modulation{phy.BPSK, phy.QPSK, phy.QAM16}
	snrsDB := []float64{0, 4, 8, 12}
	table := plot.Table{
		Title:   "Symbol-level BER vs closed-form theory (direct link and AF two-hop path)",
		Headers: []string{"modulation", "SNR (dB)", "direct sim", "direct theory", "AF sim", "AF theory (eff SNR)"},
	}
	x := make([]float64, len(snrsDB))
	copy(x, snrsDB)
	series := make([]plot.Series, 0, len(mods))
	maxRelErr := 0.0
	for _, m := range mods {
		ys := make([]float64, len(snrsDB))
		for i, sdb := range snrsDB {
			snr := xmath.FromDB(sdb)
			directSim, err := phy.SimulateBER(cfg.ctx(), m, snr, nBits, rng)
			if err != nil {
				return Result{}, err
			}
			directTh, err := phy.TheoreticalBER(m, snr)
			if err != nil {
				return Result{}, err
			}
			// AF path: relay halfway in gain terms (g1 = g2 = sqrt(snr)
			// keeps the end-to-end budget comparable).
			afSim, err := phy.SimulateAFBER(cfg.ctx(), m, snr, 1, 1, nBits, rng)
			if err != nil {
				return Result{}, err
			}
			afTh, err := phy.TheoreticalBER(m, phy.AFLinkSNR(snr, 1, 1))
			if err != nil {
				return Result{}, err
			}
			ys[i] = directSim
			table.AddRow(m.String(), fmt.Sprintf("%.0f", sdb),
				fmt.Sprintf("%.5f", directSim), fmt.Sprintf("%.5f", directTh),
				fmt.Sprintf("%.5f", afSim), fmt.Sprintf("%.5f", afTh))
			// Only compare where ~200 errors are expected; below that the
			// Monte Carlo noise alone exceeds any meaningful tolerance.
			minBER := 200 / float64(nBits)
			for _, pair := range [][2]float64{{directSim, directTh}, {afSim, afTh}} {
				if pair[1] > minBER {
					rel := abs(pair[0]-pair[1]) / pair[1]
					if rel > maxRelErr {
						maxRelErr = rel
					}
				}
			}
		}
		series = append(series, plot.Series{Name: m.String(), Y: ys})
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  "Direct-link BER (simulated)",
			XLabel: "SNR (dB)",
			YLabel: "bit error rate",
			X:      x,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
	}
	// Wilson interval on the tightest measured point documents resolution.
	iv, err := stats.WilsonInterval(int(5e-4*float64(nBits)), nBits, 0.95)
	if err != nil {
		return Result{}, err
	}
	if maxRelErr < 0.25 {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"symbol-level simulation matches closed-form BER within %.0f%% wherever enough errors accrue (BER resolution floor ≈ %.1e at this bit budget) — the Gaussian substrate and the AF effective-SNR algebra are mutually consistent", 100*maxRelErr, iv.Width()))
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf("BER mismatch up to %.0f%% — UNEXPECTED", 100*maxRelErr))
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
