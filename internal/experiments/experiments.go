// Package experiments is the reproduction harness: every figure of the
// paper's evaluation (Figs 3 and 4) and every textual claim around them is a
// named, parameterized, reproducible experiment, plus the ablations and
// Monte Carlo extensions listed in DESIGN.md. The cmd/bcc CLI and the
// module-level benchmarks both drive this registry, so the reported numbers
// always come from the same code path.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"bicoop/internal/plot"
	"bicoop/internal/sweep"
)

// Config tunes an experiment run.
type Config struct {
	// Quick reduces trial counts and sweep resolutions for use in tests and
	// benchmarks; the full configuration reproduces the figures at
	// publication resolution.
	Quick bool
	// Seed drives every randomized component.
	Seed int64
	// Workers bounds the goroutines sharding the analytic figure sweeps,
	// the region batches, and the outer pool of the Monte Carlo campaigns;
	// zero means GOMAXPROCS. Results are bit-identical for every value (the
	// Monte Carlo experiments pin their own inner worker counts for seed
	// reproducibility, so campaign resharding never changes a random
	// stream).
	Workers int

	// runCtx bounds the run; Run threads its ctx argument here, and every
	// runner hands it to the Monte Carlo simulators and analytic sweeps it
	// drives, so cancelling it stops in-flight work within one trial or
	// chunk.
	runCtx context.Context
}

// ctx resolves the run context. The Background fallback only triggers for a
// zero-value Config handed straight to a runner (tests), never through Run.
func (c Config) ctx() context.Context {
	if c.runCtx != nil {
		return c.runCtx
	}
	return context.Background() //bicoop:allow ctxflow — zero-value Config means an unbounded run by contract
}

// sweepOpts resolves the sharding options for analytic sweeps.
func (c Config) sweepOpts() sweep.Options {
	return sweep.Options{Workers: c.Workers}
}

// Result is a completed experiment: charts and tables ready to render, plus
// free-form findings (the check outcomes recorded in EXPERIMENTS.md).
type Result struct {
	// ID is the experiment identifier (e.g. "fig3").
	ID string
	// Description states what the experiment reproduces.
	Description string
	// Charts holds zero or more line charts.
	Charts []plot.Chart
	// Regions holds zero or more rate-region plots.
	Regions []plot.RegionPlot
	// Tables holds the numeric tables backing the charts. Purely numeric
	// figures accumulate into streaming plot.ColumnTable sinks (formatted in
	// one pass at render time); tables with string cells remain plot.Table.
	Tables []plot.TableRenderer
	// Findings lists the qualitative outcomes checked against the paper.
	Findings []string
}

// Runner executes one experiment.
type Runner func(cfg Config) (Result, error)

// ErrUnknown reports an unregistered experiment id.
var ErrUnknown = errors.New("experiments: unknown experiment")

// registry maps experiment ids to runners. It is populated at init time by
// the sibling files and never mutated afterwards.
var registry = map[string]entry{}

type entry struct {
	description string
	run         Runner
}

func register(id, description string, run Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = entry{description: description, run: run}
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	return e.description, nil
}

// Run executes the experiment with the given configuration, bounded by ctx.
func Run(ctx context.Context, id string, cfg Config) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("%w: %q (known: %v)", ErrUnknown, id, IDs())
	}
	cfg.runCtx = ctx
	res, err := e.run(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Description = e.description
	return res, nil
}
