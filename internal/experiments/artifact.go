package experiments

// artifact.go — canonical figure artifacts. Every experiment Result can
// render itself as text (the CLI output) and flush its numeric content as
// CSV; the pair written together is the figure's canonical artifact, stored
// under testdata/figures/ and pinned by golden-file tests so a change to
// any reproduced number is a visible diff, not a silent drift.

import (
	"fmt"
	"io"
)

// Render writes the experiment's full textual output — description, charts,
// region plots, tables and findings — to w. It is the single rendering path
// shared by the CLI, the facade and the artifact writer.
func (res Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n%s\n\n", res.ID, res.Description); err != nil {
		return err
	}
	for _, c := range res.Charts {
		if err := c.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, rp := range res.Regions {
		if err := rp.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, t := range res.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintln(w, "Findings:")
		for _, f := range res.Findings {
			fmt.Fprintf(w, "  - %s\n", f)
		}
	}
	return nil
}

// WriteCSV flushes the experiment's numeric content — every chart and every
// table — as one CSV stream, each block preceded by a `# kind: title`
// comment line so external tooling can split it.
func (res Result) WriteCSV(w io.Writer) error {
	for _, c := range res.Charts {
		if _, err := fmt.Fprintf(w, "# chart: %s\n", c.Title); err != nil {
			return err
		}
		if err := c.WriteCSV(w); err != nil {
			return err
		}
	}
	for _, t := range res.Tables {
		if _, err := fmt.Fprintln(w, "# table"); err != nil {
			return err
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteArtifact writes the figure's canonical artifact pair: the full text
// rendering and the numeric CSV.
func (res Result) WriteArtifact(text, csv io.Writer) error {
	if err := res.Render(text); err != nil {
		return err
	}
	return res.WriteCSV(csv)
}
