package experiments

import (
	"fmt"
	"math"

	"bicoop/internal/channel"
	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/xmath"
)

func init() {
	register("delta-ablation",
		"Ablation: LP-optimized phase durations vs an equal split, per protocol (Fig 4 gains)",
		runDeltaAblation)
	register("pathloss",
		"Ablation: Fig 3 relay-placement sweep at path-loss exponents 2, 3 and 4",
		runPathLoss)
}

func runDeltaAblation(cfg Config) (Result, error) {
	powersDB := []float64{0, 5, 10, 15}
	if cfg.Quick {
		powersDB = []float64{0, 10}
	}
	table := plot.Table{
		Title:   "Sum rate with optimal vs equal phase durations (bits/use)",
		Headers: []string{"protocol", "P (dB)", "optimal", "equal split", "loss (%)"},
	}
	maxLoss := 0.0
	var maxLossProto protocols.Protocol
	ev := protocols.NewEvaluator()
	for _, proto := range []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC} {
		for _, pdb := range powersDB {
			s := protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()}
			spec, err := protocols.CompileGaussian(proto, protocols.BoundInner, s)
			if err != nil {
				return Result{}, err
			}
			opt, err := ev.SumRate(proto, protocols.BoundInner, s)
			if err != nil {
				return Result{}, err
			}
			eq, err := spec.SumRateAt(spec.EqualDurations())
			if err != nil {
				return Result{}, err
			}
			loss := 0.0
			if opt > 0 {
				loss = 100 * (opt - eq) / opt
			}
			if loss > maxLoss {
				maxLoss, maxLossProto = loss, proto
			}
			table.AddRow(proto.String(), fmt.Sprintf("%.0f", pdb),
				fmt.Sprintf("%.4f", opt), fmt.Sprintf("%.4f", eq), fmt.Sprintf("%.1f", loss))
		}
	}
	return Result{
		Tables: []plot.Table{table},
		Findings: []string{fmt.Sprintf(
			"duration optimization matters: equal splits lose up to %.1f%% sum rate (worst for %v) — the paper's LP step is load-bearing", maxLoss, maxLossProto)},
	}, nil
}

func runPathLoss(cfg Config) (Result, error) {
	exponents := []float64{2, 3, 4}
	nPos := 17
	if cfg.Quick {
		nPos = 7
	}
	positions := xmath.Linspace(0.05, 0.95, nPos)
	p := xmath.FromDB(15)
	series := make([]plot.Series, 0, len(exponents)*2)
	table := plot.Table{
		Title:   "HBC and best-of-{MABC,TDBC} sum rates vs relay position, per path-loss exponent",
		Headers: []string{"gamma", "relay pos", "HBC", "max(MABC,TDBC)", "HBC gain (%)"},
	}
	var maxGain float64
	ev := protocols.NewEvaluator()
	for _, gamma := range exponents {
		hbcY := make([]float64, nPos)
		bestY := make([]float64, nPos)
		for xi, d := range positions {
			sub, err := relayPoint(ev, d, gamma, p)
			if err != nil {
				return Result{}, err
			}
			hbcY[xi] = sub.hbc
			bestY[xi] = sub.best
			gain := 0.0
			if sub.best > 0 {
				gain = 100 * (sub.hbc - sub.best) / sub.best
			}
			if gain > maxGain {
				maxGain = gain
			}
			if xi%4 == 0 {
				table.AddRow(fmt.Sprintf("%.0f", gamma), fmt.Sprintf("%.2f", d),
					fmt.Sprintf("%.4f", sub.hbc), fmt.Sprintf("%.4f", sub.best), fmt.Sprintf("%.2f", gain))
			}
		}
		series = append(series,
			plot.Series{Name: fmt.Sprintf("HBC g=%.0f", gamma), Y: hbcY},
			plot.Series{Name: fmt.Sprintf("best2/3ph g=%.0f", gamma), Y: bestY},
		)
	}
	return Result{
		Charts: []plot.Chart{{
			Title:  "Path-loss exponent ablation of the Fig 3 sweep (P = 15 dB)",
			XLabel: "relay position",
			YLabel: "sum rate (bits/use)",
			X:      positions,
			Series: series,
		}},
		Tables: []plot.Table{table},
		Findings: []string{fmt.Sprintf(
			"the HBC advantage over the best two/three-phase protocol persists across path-loss exponents (max %.2f%%), peaking for asymmetric relay placements", maxGain)},
	}, nil
}

type relaySums struct {
	hbc, best float64
}

func relayPoint(ev *protocols.Evaluator, d, gamma, p float64) (relaySums, error) {
	g, err := (channel.LineGeometry{RelayPos: d, Exponent: gamma}).Gains()
	if err != nil {
		return relaySums{}, err
	}
	li, err := protocols.LinkInfosFromScenario(protocols.Scenario{P: p, G: g})
	if err != nil {
		return relaySums{}, err
	}
	hbc, err := ev.SumRateLinks(protocols.HBC, protocols.BoundInner, li)
	if err != nil {
		return relaySums{}, err
	}
	mabc, err := ev.SumRateLinks(protocols.MABC, protocols.BoundInner, li)
	if err != nil {
		return relaySums{}, err
	}
	tdbc, err := ev.SumRateLinks(protocols.TDBC, protocols.BoundInner, li)
	if err != nil {
		return relaySums{}, err
	}
	return relaySums{hbc: hbc, best: math.Max(mabc, tdbc)}, nil
}
