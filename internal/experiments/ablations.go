package experiments

import (
	"fmt"
	"math"

	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/sweep"
	"bicoop/internal/xmath"
)

func init() {
	register("delta-ablation",
		"Ablation: LP-optimized phase durations vs an equal split, per protocol (Fig 4 gains)",
		runDeltaAblation)
	register("pathloss",
		"Ablation: Fig 3 relay-placement sweep at path-loss exponents 2, 3 and 4",
		runPathLoss)
}

func runDeltaAblation(cfg Config) (Result, error) {
	powersDB := []float64{0, 5, 10, 15}
	if cfg.Quick {
		powersDB = []float64{0, 10}
	}
	table := plot.Table{
		Title:   "Sum rate with optimal vs equal phase durations (bits/use)",
		Headers: []string{"protocol", "P (dB)", "optimal", "equal split", "loss (%)"},
	}
	maxLoss := 0.0
	var maxLossProto protocols.Protocol
	ev := protocols.NewEvaluator()
	for _, proto := range []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC} {
		for _, pdb := range powersDB {
			s := protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()}
			spec, err := protocols.CompileGaussian(proto, protocols.BoundInner, s)
			if err != nil {
				return Result{}, err
			}
			opt, err := ev.SumRate(proto, protocols.BoundInner, s)
			if err != nil {
				return Result{}, err
			}
			eq, err := spec.SumRateAt(spec.EqualDurations())
			if err != nil {
				return Result{}, err
			}
			loss := 0.0
			if opt > 0 {
				loss = 100 * (opt - eq) / opt
			}
			if loss > maxLoss {
				maxLoss, maxLossProto = loss, proto
			}
			table.AddRow(proto.String(), fmt.Sprintf("%.0f", pdb),
				fmt.Sprintf("%.4f", opt), fmt.Sprintf("%.4f", eq), fmt.Sprintf("%.1f", loss))
		}
	}
	return Result{
		Tables: []plot.TableRenderer{table},
		Findings: []string{fmt.Sprintf(
			"duration optimization matters: equal splits lose up to %.1f%% sum rate (worst for %v) — the paper's LP step is load-bearing", maxLoss, maxLossProto)},
	}, nil
}

// pathLossProtocols is the evaluation set of the path-loss ablation: HBC
// against its two special cases.
var pathLossProtocols = []protocols.Protocol{protocols.HBC, protocols.MABC, protocols.TDBC}

func runPathLoss(cfg Config) (Result, error) {
	exponents := []float64{2, 3, 4}
	nPos := 17
	if cfg.Quick {
		nPos = 7
	}
	positions := xmath.Linspace(0.05, 0.95, nPos)
	// One streamed grid covers all three exponents: the placement axis is
	// the (gamma, position) cross product, protocols innermost.
	spec := sweep.Spec{
		Protocols: pathLossProtocols,
		PowersDB:  []float64{15},
	}
	for _, gamma := range exponents {
		for _, d := range positions {
			spec.Placements = append(spec.Placements, sweep.Placement{Pos: d, Exponent: gamma})
		}
	}
	series := make([]plot.Series, 0, len(exponents)*2)
	for _, gamma := range exponents {
		series = append(series,
			plot.Series{Name: fmt.Sprintf("HBC g=%.0f", gamma), Y: make([]float64, 0, nPos)},
			plot.Series{Name: fmt.Sprintf("best2/3ph g=%.0f", gamma), Y: make([]float64, 0, nPos)},
		)
	}
	table := plot.NewColumnTable("HBC and best-of-{MABC,TDBC} sum rates vs relay position, per path-loss exponent",
		plot.Col{Name: "gamma", Prec: 0},
		plot.Col{Name: "relay pos", Prec: 2},
		plot.Col{Name: "HBC", Prec: 4},
		plot.Col{Name: "max(MABC,TDBC)", Prec: 4},
		plot.Col{Name: "HBC gain (%)", Prec: 2},
	)
	var maxGain float64
	nP := len(pathLossProtocols)
	row := make([]float64, nP) // hbc, mabc, tdbc of the current placement
	err := sweep.Sweep(cfg.ctx(), spec, cfg.sweepOpts(), func(pt sweep.Point) error {
		pi := pt.Index % nP
		row[pi] = pt.Sum
		if pi != nP-1 {
			return nil
		}
		place := pt.Index / nP
		gi, xi := place/nPos, place%nPos
		hbc, best := row[0], math.Max(row[1], row[2])
		series[2*gi].Y = append(series[2*gi].Y, hbc)
		series[2*gi+1].Y = append(series[2*gi+1].Y, best)
		gain := 0.0
		if best > 0 {
			gain = 100 * (hbc - best) / best
		}
		if gain > maxGain {
			maxGain = gain
		}
		if xi%4 == 0 {
			table.Append(exponents[gi], positions[xi], hbc, best, gain)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Charts: []plot.Chart{{
			Title:  "Path-loss exponent ablation of the Fig 3 sweep (P = 15 dB)",
			XLabel: "relay position",
			YLabel: "sum rate (bits/use)",
			X:      positions,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
		Findings: []string{fmt.Sprintf(
			"the HBC advantage over the best two/three-phase protocol persists across path-loss exponents (max %.2f%%), peaking for asymmetric relay placements", maxGain)},
	}, nil
}
