package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/region"
	"bicoop/internal/sweep"
	"bicoop/internal/xmath"
)

func init() {
	register("crossover",
		"Claim check: MABC dominates TDBC at low SNR and TDBC wins at high SNR (sum-rate sweep over P at the Fig 4 gains)",
		runCrossover)
	register("hbc-escape",
		"Claim check: achievable HBC rate pairs outside both the MABC and TDBC outer bounds, swept over P at the Fig 4 gains",
		runHBCEscape)
	register("mabc-tight",
		"Claim check: Theorem 2 is tight — the MABC inner and outer regions coincide on randomized scenarios",
		runMABCTight)
}

func runCrossover(cfg Config) (Result, error) {
	nP := 31
	if cfg.Quick {
		nP = 11
	}
	powersDB := xmath.Linspace(-10, 20, nP)
	protos := []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC}
	spec := sweep.Spec{
		Protocols: protos,
		Base:      fig4BaseScenario(0),
		PowersDB:  powersDB,
	}
	series := make([]plot.Series, len(protos))
	for i, p := range protos {
		series[i] = plot.Series{Name: p.String(), Y: make([]float64, 0, nP)}
	}
	table := plot.NewColumnTable("Optimal sum rates vs power (Fig 4 gains)",
		plot.Col{Name: "P (dB)", Prec: 1},
		plot.Col{Name: "MABC", Prec: 4},
		plot.Col{Name: "TDBC", Prec: 4},
		plot.Col{Name: "HBC", Prec: 4},
	)
	row := make([]float64, 1+len(protos))
	err := sweep.Sweep(cfg.ctx(), spec, cfg.sweepOpts(), func(pt sweep.Point) error {
		pi := pt.Index % len(protos)
		series[pi].Y = append(series[pi].Y, pt.Sum)
		row[1+pi] = pt.Sum
		if pi == len(protos)-1 {
			row[0] = powersDB[pt.Index/len(protos)]
			table.Append(row...)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	crossAt := math.NaN()
	mabcY, tdbcY := series[0].Y, series[1].Y
	for xi := 1; xi < nP; xi++ {
		if mabcY[xi-1]-tdbcY[xi-1] > 0 && mabcY[xi]-tdbcY[xi] <= 0 {
			crossAt = powersDB[xi]
			break
		}
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  table.Title,
			XLabel: "P (dB)",
			YLabel: "sum rate (bits/use)",
			X:      powersDB,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
	}
	if !math.IsNaN(crossAt) {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"MABC dominates below, TDBC above: sum-rate crossover near P = %.1f dB (paper: 'in the low SNR regime, the MABC protocol dominates the TDBC protocol, while the latter is better in the high SNR regime')", crossAt))
	} else {
		res.Findings = append(res.Findings, "no MABC/TDBC crossover found in the swept power range — UNEXPECTED vs the paper")
	}
	return res, nil
}

// hbcEscapeCurves are the three regions the escape search needs, computed
// per power through the sharded region batch.
var hbcEscapeCurves = []sweep.RegionCurve{
	{Proto: protocols.HBC, Bound: protocols.BoundInner},
	{Proto: protocols.MABC, Bound: protocols.BoundOuter},
	{Proto: protocols.TDBC, Bound: protocols.BoundOuter},
}

func runHBCEscape(cfg Config) (Result, error) {
	powersDB := []float64{-5, 0, 5, 10, 15, 20}
	angles := 181
	if cfg.Quick {
		powersDB = []float64{0, 10}
		angles = 91
	}
	table := plot.NewColumnTable("HBC achievable points outside both MABC and TDBC outer bounds",
		plot.Col{Name: "P (dB)", Prec: 1},
		plot.Col{Name: "witnesses", Prec: 0},
		plot.Col{Name: "max margin (bits)", Prec: 4},
		plot.Col{Name: "witness Ra", Prec: 4},
		plot.Col{Name: "witness Rb", Prec: 4},
	)
	margins := make([]float64, len(powersDB))
	anyEscape := false
	// One batch computes all powers × three curves; scenario-major streaming
	// hands each power's triple over as soon as its last curve completes,
	// so the exact LP witness verification pipelines behind the sweeps.
	spec := sweep.RegionSpec{Curves: hbcEscapeCurves, Angles: angles}
	for _, pdb := range powersDB {
		spec.Scenarios = append(spec.Scenarios, fig4BaseScenario(pdb))
	}
	triple := make([]region.Polygon, len(hbcEscapeCurves))
	err := sweep.RegionBatch(cfg.ctx(), spec, cfg.sweepOpts(), func(r sweep.RegionResult) error {
		triple[r.CurveIdx] = r.Polygon
		if r.CurveIdx < len(hbcEscapeCurves)-1 {
			return nil
		}
		i := r.ScenarioIdx
		pdb := powersDB[i]
		s := protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()}
		esc, err := protocols.HBCEscapeFromRegions(s, triple[0], triple[1], triple[2])
		if err != nil {
			return err
		}
		best := protocols.EscapeWitness{}
		for _, e := range esc {
			if e.Margin > best.Margin {
				best = e
			}
		}
		margins[i] = best.Margin
		if best.Margin > 1e-4 {
			anyEscape = true
		}
		table.Append(pdb, float64(len(esc)), best.Margin, best.Point.Ra, best.Point.Rb)
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  "Escape margin of HBC beyond both outer bounds",
			XLabel: "P (dB)",
			YLabel: "margin (bits)",
			X:      powersDB,
			Series: []plot.Series{{Name: "max escape margin", Y: margins}},
		}},
		Tables: []plot.TableRenderer{table},
	}
	if anyEscape {
		res.Findings = append(res.Findings,
			"confirmed: the HBC achievable region contains points outside the outer bounds of both two/three-phase protocols (paper Section IV, final paragraph)")
	} else {
		res.Findings = append(res.Findings, "no escape points found — UNEXPECTED vs the paper")
	}
	return res, nil
}

func runMABCTight(cfg Config) (Result, error) {
	trials := 40
	angles := 121
	if cfg.Quick {
		trials = 8
		angles = 61
	}
	// Scenarios are drawn up front (the rng stream is the experiment's
	// determinism contract), then all trials × {inner, outer} run as one
	// sharded region batch; the inner/outer pair of each trial streams back
	// consecutively, so the area comparison needs only one polygon of state.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	spec := sweep.RegionSpec{
		Curves: []sweep.RegionCurve{
			{Proto: protocols.MABC, Bound: protocols.BoundInner},
			{Proto: protocols.MABC, Bound: protocols.BoundOuter},
		},
		Angles: angles,
	}
	for trial := 0; trial < trials; trial++ {
		pdb := -10 + 30*rng.Float64()
		gab := -10 + 8*rng.Float64()
		gar := gab + 15*rng.Float64()
		gbr := gab + 15*rng.Float64()
		spec.Scenarios = append(spec.Scenarios, sweep.Scenario{
			PowerDB: pdb, GabDB: gab, GarDB: gar, GbrDB: gbr,
		})
	}
	worst := 0.0
	table := plot.NewColumnTable("MABC inner vs outer region agreement on randomized scenarios",
		plot.Col{Name: "trial", Prec: 0},
		plot.Col{Name: "P (dB)", Prec: 4},
		plot.Col{Name: "Gab (dB)", Prec: 4},
		plot.Col{Name: "Gar (dB)", Prec: 4},
		plot.Col{Name: "Gbr (dB)", Prec: 4},
		plot.Col{Name: "Hausdorff-like gap", Prec: 4},
	)
	var inner region.Polygon
	err := sweep.RegionBatch(cfg.ctx(), spec, cfg.sweepOpts(), func(r sweep.RegionResult) error {
		if r.CurveIdx == 0 {
			inner = r.Polygon
			return nil
		}
		trial := r.ScenarioIdx
		gap := math.Abs(inner.Area() - r.Polygon.Area())
		if gap > worst {
			worst = gap
		}
		if trial < 10 {
			s := spec.Scenarios[trial]
			table.Append(float64(trial), s.PowerDB, s.GabDB, s.GarDB, s.GbrDB, gap)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Tables: []plot.TableRenderer{table}}
	if worst < 1e-6 {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"confirmed: MABC inner and outer regions coincide on all %d randomized scenarios (max area gap %.2e) — Theorem 2 gives the exact capacity region", trials, worst))
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"MABC inner/outer regions diverged by %.2e — UNEXPECTED, Theorem 2 is tight", worst))
	}
	return res, nil
}
