package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"bicoop/internal/channel"
	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/xmath"
)

func init() {
	register("crossover",
		"Claim check: MABC dominates TDBC at low SNR and TDBC wins at high SNR (sum-rate sweep over P at the Fig 4 gains)",
		runCrossover)
	register("hbc-escape",
		"Claim check: achievable HBC rate pairs outside both the MABC and TDBC outer bounds, swept over P at the Fig 4 gains",
		runHBCEscape)
	register("mabc-tight",
		"Claim check: Theorem 2 is tight — the MABC inner and outer regions coincide on randomized scenarios",
		runMABCTight)
}

func runCrossover(cfg Config) (Result, error) {
	nP := 31
	if cfg.Quick {
		nP = 11
	}
	powersDB := xmath.Linspace(-10, 20, nP)
	ev := protocols.NewEvaluator() // one evaluator across the power sweep
	protos := []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC}
	series := make([]plot.Series, len(protos))
	for i, p := range protos {
		series[i] = plot.Series{Name: p.String(), Y: make([]float64, nP)}
	}
	table := plot.Table{
		Title:   "Optimal sum rates vs power (Fig 4 gains)",
		Headers: []string{"P (dB)", "MABC", "TDBC", "HBC"},
	}
	crossAt := math.NaN()
	var prevDiff float64
	for xi, pdb := range powersDB {
		s := protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()}
		li, err := protocols.LinkInfosFromScenario(s)
		if err != nil {
			return Result{}, err
		}
		vals := make([]float64, len(protos))
		for i, proto := range protos {
			sum, err := ev.SumRateLinks(proto, protocols.BoundInner, li)
			if err != nil {
				return Result{}, err
			}
			series[i].Y[xi] = sum
			vals[i] = sum
		}
		table.AddNumericRow(fmt.Sprintf("%.1f", pdb), vals...)
		diff := vals[0] - vals[1] // MABC - TDBC
		if xi > 0 && math.IsNaN(crossAt) && prevDiff > 0 && diff <= 0 {
			crossAt = pdb
		}
		prevDiff = diff
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  table.Title,
			XLabel: "P (dB)",
			YLabel: "sum rate (bits/use)",
			X:      powersDB,
			Series: series,
		}},
		Tables: []plot.Table{table},
	}
	if !math.IsNaN(crossAt) {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"MABC dominates below, TDBC above: sum-rate crossover near P = %.1f dB (paper: 'in the low SNR regime, the MABC protocol dominates the TDBC protocol, while the latter is better in the high SNR regime')", crossAt))
	} else {
		res.Findings = append(res.Findings, "no MABC/TDBC crossover found in the swept power range — UNEXPECTED vs the paper")
	}
	return res, nil
}

func runHBCEscape(cfg Config) (Result, error) {
	powersDB := []float64{-5, 0, 5, 10, 15, 20}
	angles := 181
	if cfg.Quick {
		powersDB = []float64{0, 10}
		angles = 91
	}
	table := plot.Table{
		Title:   "HBC achievable points outside both MABC and TDBC outer bounds",
		Headers: []string{"P (dB)", "witnesses", "max margin (bits)", "witness Ra", "witness Rb"},
	}
	margins := make([]float64, len(powersDB))
	anyEscape := false
	for i, pdb := range powersDB {
		s := protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()}
		esc, err := protocols.HBCEscapePoints(s, protocols.RegionOptions{Angles: angles})
		if err != nil {
			return Result{}, err
		}
		best := protocols.EscapeWitness{}
		for _, e := range esc {
			if e.Margin > best.Margin {
				best = e
			}
		}
		margins[i] = best.Margin
		if best.Margin > 1e-4 {
			anyEscape = true
		}
		table.AddNumericRow(fmt.Sprintf("%.1f", pdb),
			float64(len(esc)), best.Margin, best.Point.Ra, best.Point.Rb)
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  "Escape margin of HBC beyond both outer bounds",
			XLabel: "P (dB)",
			YLabel: "margin (bits)",
			X:      powersDB,
			Series: []plot.Series{{Name: "max escape margin", Y: margins}},
		}},
		Tables: []plot.Table{table},
	}
	if anyEscape {
		res.Findings = append(res.Findings,
			"confirmed: the HBC achievable region contains points outside the outer bounds of both two/three-phase protocols (paper Section IV, final paragraph)")
	} else {
		res.Findings = append(res.Findings, "no escape points found — UNEXPECTED vs the paper")
	}
	return res, nil
}

func runMABCTight(cfg Config) (Result, error) {
	trials := 40
	angles := 121
	if cfg.Quick {
		trials = 8
		angles = 61
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	ev := protocols.NewEvaluator()
	worst := 0.0
	table := plot.Table{
		Title:   "MABC inner vs outer region agreement on randomized scenarios",
		Headers: []string{"trial", "P (dB)", "Gab (dB)", "Gar (dB)", "Gbr (dB)", "Hausdorff-like gap"},
	}
	for trial := 0; trial < trials; trial++ {
		pdb := -10 + 30*rng.Float64()
		gab := -10 + 8*rng.Float64()
		gar := gab + 15*rng.Float64()
		gbr := gab + 15*rng.Float64()
		s := protocols.Scenario{P: xmath.FromDB(pdb), G: channel.GainsFromDB(gab, gar, gbr)}
		inner, err := ev.Region(protocols.MABC, protocols.BoundInner, s, protocols.RegionOptions{Angles: angles})
		if err != nil {
			return Result{}, err
		}
		outer, err := ev.Region(protocols.MABC, protocols.BoundOuter, s, protocols.RegionOptions{Angles: angles})
		if err != nil {
			return Result{}, err
		}
		gap := math.Abs(inner.Area() - outer.Area())
		if gap > worst {
			worst = gap
		}
		if trial < 10 {
			table.AddNumericRow(fmt.Sprintf("%d", trial), pdb, gab, gar, gbr, gap)
		}
	}
	res := Result{Tables: []plot.Table{table}}
	if worst < 1e-6 {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"confirmed: MABC inner and outer regions coincide on all %d randomized scenarios (max area gap %.2e) — Theorem 2 gives the exact capacity region", trials, worst))
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"MABC inner/outer regions diverged by %.2e — UNEXPECTED, Theorem 2 is tight", worst))
	}
	return res, nil
}
