package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised by DESIGN.md is registered.
	want := []string{
		"fig3", "fig4a", "fig4b",
		"crossover", "hbc-escape", "mabc-tight",
		"delta-ablation", "pathloss",
		"fading", "bitsim", "bitsim-mabc",
		"dmc", "blahut",
		"baselines", "ber",
	}
	ids := IDs()
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, DESIGN.md lists %d: %v", len(ids), len(want), ids)
	}
}

func TestDescribe(t *testing.T) {
	desc, err := Describe("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "Fig 3") {
		t.Errorf("description %q does not mention Fig 3", desc)
	}
	if _, err := Describe("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), "nope", Config{Quick: true}); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
}

// TestRunAllQuick executes every registered experiment in quick mode and
// checks structural invariants plus the absence of UNEXPECTED findings.
func TestRunAllQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), id, Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("Run(%q): %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q, want %q", res.ID, id)
			}
			if res.Description == "" {
				t.Error("empty description")
			}
			if len(res.Charts)+len(res.Tables)+len(res.Regions) == 0 {
				t.Error("experiment produced no output artifacts")
			}
			if len(res.Findings) == 0 {
				t.Error("experiment recorded no findings")
			}
			for _, f := range res.Findings {
				if strings.Contains(f, "UNEXPECTED") {
					t.Errorf("finding flags a reproduction failure: %s", f)
				}
			}
			// Charts must be renderable.
			var sb strings.Builder
			for _, c := range res.Charts {
				if err := c.Render(&sb); err != nil {
					t.Errorf("chart render: %v", err)
				}
				sb.Reset()
				if err := c.WriteCSV(&sb); err != nil {
					t.Errorf("chart CSV: %v", err)
				}
				sb.Reset()
			}
			for _, tab := range res.Tables {
				if err := tab.Render(&sb); err != nil {
					t.Errorf("table render: %v", err)
				}
				sb.Reset()
			}
			for _, rp := range res.Regions {
				if err := rp.Render(&sb); err != nil {
					t.Errorf("region render: %v", err)
				}
				sb.Reset()
			}
		})
	}
}

func TestFig3FindingMentionsStrictHBC(t *testing.T) {
	res, err := Run(context.Background(), "fig3", Config{Quick: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Findings, "\n")
	if !strings.Contains(joined, "strictly exceeds") {
		t.Errorf("fig3 did not find the strict HBC advantage: %s", joined)
	}
}

func TestFig4FindsEscapeAtHighSNR(t *testing.T) {
	res, err := Run(context.Background(), "fig4b", Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Findings, "\n")
	if !strings.Contains(joined, "outside BOTH") {
		t.Errorf("fig4b did not report escape points: %s", joined)
	}
}
