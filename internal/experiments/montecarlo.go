package experiments

import (
	"fmt"

	"bicoop/internal/plot"
	"bicoop/internal/protocols"
	"bicoop/internal/sim"
	"bicoop/internal/sweep"
	"bicoop/internal/xmath"
)

// campaign runs n independent simulation points through the generic sharded
// core with one run per chunk, so a family of Monte Carlo runs (a waterfall
// scale axis, a seed/SNR family) pipelines across cfg.Workers instead of
// executing scales-in-series. Each point must be individually deterministic
// (fixed seed and inner worker count), which makes the campaign's results
// independent of the outer worker count; run(i) stores its own result.
func campaign(cfg Config, n int, run func(i int) error) error {
	_, err := sweep.RunCore(cfg.ctx(), n,
		sweep.CoreOptions{Workers: cfg.Workers, ChunkSize: 1},
		sweep.Hooks[struct{}]{},
		func(_ struct{}, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := run(i); err != nil {
					return err
				}
			}
			return nil
		}, nil)
	return err
}

func init() {
	register("fading",
		"Extension: Rayleigh quasi-static fading Monte Carlo — CSI-adaptive mean sum rate and fixed-rate outage vs the fixed-gain analytic values",
		runFading)
	register("bitsim",
		"Extension: bit-true TDBC over an erasure network — decoding success waterfall across the Theorem 3 boundary",
		runBitSim)
}

func runFading(cfg Config) (Result, error) {
	trials := 4000
	if cfg.Quick {
		trials = 400
	}
	protos := []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC}
	ev := protocols.NewEvaluator() // fixed-gain reference values
	powersDB := []float64{0, 5, 10}
	table := plot.Table{
		Title:   "Rayleigh fading Monte Carlo vs fixed-gain analytic sum rates",
		Headers: []string{"protocol", "P (dB)", "fixed-gain", "fading mean", "outage@(0.5,0.5)"},
	}
	meanSeries := make([]plot.Series, len(protos))
	for i, p := range protos {
		meanSeries[i] = plot.Series{Name: p.String(), Y: make([]float64, len(powersDB))}
	}
	var findings []string
	// The SNR family is a campaign: every power level is one deterministic
	// run (per-power seed, fixed inner worker count), pipelined across
	// cfg.Workers instead of executing powers-in-series.
	results := make([]sim.OutageResult, len(powersDB))
	err := campaign(cfg, len(powersDB), func(pi int) error {
		res, err := sim.RunOutage(cfg.ctx(), sim.OutageConfig{
			Mean:      Fig4Gains(),
			P:         xmath.FromDB(powersDB[pi]),
			Protocols: protos,
			Target:    protocols.RatePair{Ra: 0.5, Rb: 0.5},
			Trials:    trials,
			Seed:      cfg.Seed + int64(pi),
			// A fixed worker count (not GOMAXPROCS) keeps the per-trial
			// random streams — and with them the table — reproducible
			// across machines and campaign worker counts.
			Workers: 4,
		})
		if err != nil {
			return err
		}
		results[pi] = res
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	for pi, pdb := range powersDB {
		res := results[pi]
		for i, proto := range protos {
			fixed, err := ev.SumRate(proto, protocols.BoundInner,
				protocols.Scenario{P: xmath.FromDB(pdb), G: Fig4Gains()})
			if err != nil {
				return Result{}, err
			}
			st := res.ByProtocol[proto]
			meanSeries[i].Y[pi] = st.MeanOptSumRate
			table.AddRow(proto.String(), fmt.Sprintf("%.0f", pdb),
				fmt.Sprintf("%.4f", fixed), fmt.Sprintf("%.4f", st.MeanOptSumRate),
				fmt.Sprintf("%.4f", st.OutageProb))
		}
		hbc, mabc, tdbc := res.ByProtocol[protocols.HBC], res.ByProtocol[protocols.MABC], res.ByProtocol[protocols.TDBC]
		if hbc.MeanOptSumRate+1e-9 < mabc.MeanOptSumRate || hbc.MeanOptSumRate+1e-9 < tdbc.MeanOptSumRate {
			findings = append(findings, fmt.Sprintf("P=%.0f dB: HBC fading mean fell below a special case — UNEXPECTED", pdb))
		}
	}
	if len(findings) == 0 {
		findings = append(findings,
			"HBC dominates MABC and TDBC block-by-block under fading, as its special-case structure requires; outage ordering matches",
			"fading means sit below the fixed-gain values at these SNRs (Jensen penalty of log2(1+x) under Rayleigh power fading)")
	}
	return Result{
		Charts: []plot.Chart{{
			Title:  "CSI-adaptive mean sum rate under Rayleigh fading",
			XLabel: "P (dB)",
			YLabel: "mean sum rate (bits/use)",
			X:      powersDB,
			Series: meanSeries,
		}},
		Tables:   []plot.TableRenderer{table},
		Findings: findings,
	}, nil
}

func runBitSim(cfg Config) (Result, error) {
	blockLen := 4000
	trials := 40
	if cfg.Quick {
		blockLen = 1200
		trials = 12
	}
	net := sim.ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}
	spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, net.LinkInfos())
	if err != nil {
		return Result{}, err
	}
	opt, err := spec.MaxSumRate()
	if err != nil {
		return Result{}, err
	}
	scales := []float64{0.7, 0.8, 0.9, 0.95, 1.05, 1.1, 1.2, 1.3}
	if cfg.Quick {
		scales = []float64{0.8, 0.95, 1.1, 1.3}
	}
	success := make([]float64, len(scales))
	table := plot.Table{
		Title: fmt.Sprintf("Bit-true TDBC over BEC links (eps ar/br/ab = %.2f/%.2f/%.2f), block %d, sum-rate bound %.4f",
			net.EpsAR, net.EpsBR, net.EpsAB, blockLen, opt.Objective),
		Headers: []string{"rate scale", "success prob", "relay fails", "terminal fails"},
	}
	// The waterfall's scale axis is a campaign: each scale is one
	// deterministic bit-true run, pipelined across cfg.Workers instead of
	// executing scales-in-series.
	results := make([]sim.BitTrueResult, len(scales))
	if err := campaign(cfg, len(scales), func(i int) error {
		res, err := sim.RunBitTrueTDBC(cfg.ctx(), sim.BitTrueConfig{
			Net:         net,
			Rates:       protocols.RatePair{Ra: opt.Rates.Ra * scales[i], Rb: opt.Rates.Rb * scales[i]},
			Durations:   opt.Durations,
			BlockLength: blockLen,
			Trials:      trials,
			Seed:        cfg.Seed + int64(i),
			// A fixed worker count (not GOMAXPROCS) keeps the table and the
			// waterfall finding seed-reproducible across machines while
			// still sharding on multi-core hosts.
			Workers: 8,
		})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return Result{}, err
	}
	for i, sc := range scales {
		res := results[i]
		success[i] = res.SuccessProb
		table.AddRow(fmt.Sprintf("%.2f", sc), fmt.Sprintf("%.3f", res.SuccessProb),
			fmt.Sprintf("%d", res.RelayFailures), fmt.Sprintf("%d", res.TerminalFailures))
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  "Decoding success vs rate relative to the Theorem 3 bound",
			XLabel: "rate scale (1.0 = inner-bound optimum)",
			YLabel: "block success probability",
			X:      scales,
			Series: []plot.Series{{Name: "success", Y: success}},
		}},
		Tables: []plot.TableRenderer{table},
	}
	below, above := success[0], success[len(success)-1]
	if below > 0.9 && above < 0.1 {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"waterfall confirmed: success %.2f below the bound vs %.2f above it — random linear coding + binning + XOR realizes Theorem 3's achievability and the converse bites immediately past it", below, above))
	} else {
		res.Findings = append(res.Findings, fmt.Sprintf(
			"waterfall shape off (%.2f below vs %.2f above) — check block length/trials", below, above))
	}
	return res, nil
}
