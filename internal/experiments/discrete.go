package experiments

import (
	"fmt"

	"bicoop/internal/dmc"
	"bicoop/internal/plot"
	"bicoop/internal/prob"
	"bicoop/internal/protocols"
	"bicoop/internal/xmath"
)

func init() {
	register("dmc",
		"Extension: Section III theorems on a discrete memoryless (all-BSC) network — sum rates vs relay-link crossover probability",
		runDMC)
	register("blahut",
		"Extension: Blahut-Arimoto capacity of quantized-AWGN links converging with output resolution",
		runBlahut)
}

func runDMC(cfg Config) (Result, error) {
	nEps := 13
	if cfg.Quick {
		nEps = 5
	}
	const epsD = 0.25
	epsRs := xmath.Linspace(0.01, 0.4, nEps)
	protos := []protocols.Protocol{protocols.DT, protocols.MABC, protocols.TDBC, protocols.HBC}
	series := make([]plot.Series, len(protos))
	for i, p := range protos {
		series[i] = plot.Series{Name: p.String(), Y: make([]float64, nEps)}
	}
	table := plot.NewColumnTable(fmt.Sprintf("Sum rates on the all-BSC network (direct link eps = %.2f)", epsD),
		plot.Col{Name: "eps relay", Prec: 3},
		plot.Col{Name: "DT", Prec: 4}, plot.Col{Name: "MABC", Prec: 4},
		plot.Col{Name: "TDBC", Prec: 4}, plot.Col{Name: "HBC", Prec: 4},
	)
	relayBeatsDirect := false
	row := make([]float64, 1+len(protos))
	for xi, epsR := range epsRs {
		n := protocols.SymmetricBSCNetwork(epsR, epsD)
		li, err := protocols.LinkInfosFromDMC(n, protocols.Inputs{
			A: prob.NewUniform(2), B: prob.NewUniform(2), R: prob.NewUniform(2),
		})
		if err != nil {
			return Result{}, err
		}
		row[0] = epsR
		for i, proto := range protos {
			spec, err := protocols.Compile(proto, protocols.BoundInner, li)
			if err != nil {
				return Result{}, err
			}
			opt, err := spec.MaxSumRate()
			if err != nil {
				return Result{}, err
			}
			series[i].Y[xi] = opt.Objective
			row[1+i] = opt.Objective
		}
		table.Append(row...)
		if row[2] > row[1] { // MABC > DT
			relayBeatsDirect = true
		}
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  table.Title,
			XLabel: "relay-link crossover probability",
			YLabel: "sum rate (bits/use)",
			X:      epsRs,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
	}
	if relayBeatsDirect {
		res.Findings = append(res.Findings,
			"the theorems evaluate on arbitrary DMCs exactly as on the Gaussian model: with clean relay links, coded cooperation beats direct transmission on the BSC network too")
	}
	res.Findings = append(res.Findings,
		"HBC >= max(MABC, TDBC) holds pointwise on the DMC network as well (protocol-nesting argument is channel-agnostic)")
	return res, nil
}

func runBlahut(cfg Config) (Result, error) {
	resolutions := []int{2, 4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		resolutions = []int{2, 8, 32}
	}
	snrs := []float64{0.1, 0.5, 2.0}
	table := plot.NewColumnTable("Quantized BPSK-AWGN capacity (Blahut-Arimoto) vs output bins; real-AWGN Gaussian capacity as the ceiling",
		plot.Col{Name: "snr", Prec: 1},
		plot.Col{Name: "bins", Prec: 0},
		plot.Col{Name: "capacity (bits)", Prec: 6},
		plot.Col{Name: "gaussian 0.5*C(snr)", Prec: 6},
		plot.Col{Name: "BA iterations", Prec: 0},
	)
	x := make([]float64, len(resolutions))
	series := make([]plot.Series, len(snrs))
	for si := range snrs {
		series[si] = plot.Series{Name: fmt.Sprintf("snr=%.1f", snrs[si]), Y: make([]float64, len(resolutions))}
	}
	monotone := true
	for ri, bins := range resolutions {
		x[ri] = float64(bins)
		for si, snr := range snrs {
			ch, err := dmc.QuantizeAWGN(snr, bins, 0)
			if err != nil {
				return Result{}, err
			}
			cap1, err := ch.Capacity(1e-9, 0)
			if err != nil {
				return Result{}, err
			}
			series[si].Y[ri] = cap1.Capacity
			if ri > 0 && cap1.Capacity < series[si].Y[ri-1]-1e-9 {
				monotone = false
			}
			table.Append(snr, float64(bins), cap1.Capacity, 0.5*xmath.C(snr), float64(cap1.Iterations))
		}
	}
	res := Result{
		Charts: []plot.Chart{{
			Title:  "Capacity vs quantization resolution",
			XLabel: "output bins",
			YLabel: "capacity (bits/use)",
			X:      x,
			Series: series,
		}},
		Tables: []plot.TableRenderer{table},
	}
	if monotone {
		res.Findings = append(res.Findings,
			"finer output quantization monotonically recovers capacity, approaching the BPSK-constrained AWGN limit (below the Gaussian-input ceiling, tight at low SNR)")
	} else {
		res.Findings = append(res.Findings, "capacity not monotone in resolution — UNEXPECTED")
	}
	return res, nil
}
