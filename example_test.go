package bicoop_test

import (
	"context"
	"fmt"

	"bicoop"
)

// The paper's Fig 4 evaluation point: weak direct link, strong relay links.
var fig4Example = bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}

// ExampleOptimalSumRate computes the LP-optimal exchange rate of the MABC
// protocol — the quantity Theorem 2 characterizes exactly.
func ExampleOptimalSumRate() {
	res, err := bicoop.OptimalSumRate(bicoop.MABC, bicoop.Inner, fig4Example)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("MABC optimal sum rate: %.4f bits/use\n", res.Sum)
	fmt.Printf("phase split: %.3f MAC, %.3f broadcast\n", res.Durations[0], res.Durations[1])
	// Output:
	// MABC optimal sum rate: 3.3053 bits/use
	// phase split: 0.611 MAC, 0.389 broadcast
}

// ExampleFeasible asks whether a symmetric 1.5 bits/use exchange is within
// each protocol's achievable region.
func ExampleFeasible() {
	target := bicoop.RatePoint{Ra: 1.5, Rb: 1.5}
	for _, p := range []bicoop.Protocol{bicoop.DT, bicoop.MABC, bicoop.TDBC, bicoop.HBC} {
		ok, err := bicoop.Feasible(p, bicoop.Inner, fig4Example, target)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-5s %v\n", p, ok)
	}
	// Output:
	// DT    false
	// MABC  true
	// TDBC  false
	// HBC   true
}

// ExampleRelayPlacement derives a scenario from relay geometry: the paper's
// cellular picture with the relay 30% of the way from the mobile (a) to the
// base station (b).
func ExampleRelayPlacement() {
	s, err := bicoop.RelayPlacement{Pos: 0.3, Exponent: 3}.Scenario(15)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Gab = %.2f dB, Gar = %.2f dB, Gbr = %.2f dB\n", s.GabDB, s.GarDB, s.GbrDB)
	// Output:
	// Gab = 0.00 dB, Gar = 15.69 dB, Gbr = 4.65 dB
}

// ExampleHBCBeyondOuterBounds exhibits the paper's surprising finding: the
// four-phase protocol achieves rate pairs that the outer bounds of both the
// two- and three-phase protocols forbid.
func ExampleHBCBeyondOuterBounds() {
	pts, err := bicoop.HBCBeyondOuterBounds(fig4Example)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("found escape points: %v\n", len(pts) > 0)
	// Output:
	// found escape points: true
}

// ExampleNewEngine shows the session-oriented API: one Engine whose pooled
// evaluators serve every call, here warming up on the Fig 4 scenario.
func ExampleNewEngine() {
	eng := bicoop.NewEngine()
	res, err := eng.SumRate(bicoop.MABC, bicoop.Inner, fig4Example)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("MABC optimal sum rate: %.4f bits/use\n", res.Sum)
	// Output:
	// MABC optimal sum rate: 3.3053 bits/use
}

// ExampleEngine_SumRateBatch evaluates a power sweep in one engine call,
// amortizing a single warm evaluator across the whole grid — the access
// pattern of the paper's figure sweeps and of any bulk query service.
func ExampleEngine_SumRateBatch() {
	eng := bicoop.NewEngine()
	scenarios := []bicoop.Scenario{}
	for _, pdb := range []float64{0, 5, 10} {
		scenarios = append(scenarios, bicoop.Scenario{PowerDB: pdb, GabDB: -7, GarDB: 0, GbrDB: 5})
	}
	results, err := eng.SumRateBatch(context.Background(), bicoop.TDBC, bicoop.Inner, scenarios)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, r := range results {
		fmt.Printf("P = %2.0f dB: %.4f bits/use\n", scenarios[i].PowerDB, r.Sum)
	}
	// Output:
	// P =  0 dB: 0.9055 bits/use
	// P =  5 dB: 1.8229 bits/use
	// P = 10 dB: 3.0570 bits/use
}

// ExampleEngine_Sweep declares a relay-placement grid once and streams the
// evaluated points, rendering incrementally as each arrives.
func ExampleEngine_Sweep() {
	eng := bicoop.NewEngine()
	spec := bicoop.SweepSpec{
		Protocols:  []bicoop.Protocol{bicoop.MABC, bicoop.TDBC},
		PowersDB:   []float64{10},
		Placements: []bicoop.RelayPlacement{{Pos: 0.25, Exponent: 3}, {Pos: 0.5, Exponent: 3}},
	}
	err := eng.Sweep(context.Background(), spec, func(pt bicoop.SweepPoint) error {
		fmt.Printf("relay at %.2f, %-5v: %.4f bits/use\n", pt.Placement.Pos, pt.Protocol, pt.Result.Sum)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// relay at 0.25, MABC : 4.6267 bits/use
	// relay at 0.25, TDBC : 4.5325 bits/use
	// relay at 0.50, MABC : 4.6452 bits/use
	// relay at 0.50, TDBC : 5.1662 bits/use
}
