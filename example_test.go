package bicoop_test

import (
	"fmt"

	"bicoop"
)

// The paper's Fig 4 evaluation point: weak direct link, strong relay links.
var fig4Example = bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}

// ExampleOptimalSumRate computes the LP-optimal exchange rate of the MABC
// protocol — the quantity Theorem 2 characterizes exactly.
func ExampleOptimalSumRate() {
	res, err := bicoop.OptimalSumRate(bicoop.MABC, bicoop.Inner, fig4Example)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("MABC optimal sum rate: %.4f bits/use\n", res.Sum)
	fmt.Printf("phase split: %.3f MAC, %.3f broadcast\n", res.Durations[0], res.Durations[1])
	// Output:
	// MABC optimal sum rate: 3.3053 bits/use
	// phase split: 0.611 MAC, 0.389 broadcast
}

// ExampleFeasible asks whether a symmetric 1.5 bits/use exchange is within
// each protocol's achievable region.
func ExampleFeasible() {
	target := bicoop.RatePoint{Ra: 1.5, Rb: 1.5}
	for _, p := range []bicoop.Protocol{bicoop.DT, bicoop.MABC, bicoop.TDBC, bicoop.HBC} {
		ok, err := bicoop.Feasible(p, bicoop.Inner, fig4Example, target)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-5s %v\n", p, ok)
	}
	// Output:
	// DT    false
	// MABC  true
	// TDBC  false
	// HBC   true
}

// ExampleRelayPlacement derives a scenario from relay geometry: the paper's
// cellular picture with the relay 30% of the way from the mobile (a) to the
// base station (b).
func ExampleRelayPlacement() {
	s, err := bicoop.RelayPlacement{Pos: 0.3, Exponent: 3}.Scenario(15)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Gab = %.2f dB, Gar = %.2f dB, Gbr = %.2f dB\n", s.GabDB, s.GarDB, s.GbrDB)
	// Output:
	// Gab = 0.00 dB, Gar = 15.69 dB, Gbr = 4.65 dB
}

// ExampleHBCBeyondOuterBounds exhibits the paper's surprising finding: the
// four-phase protocol achieves rate pairs that the outer bounds of both the
// two- and three-phase protocols forbid.
func ExampleHBCBeyondOuterBounds() {
	pts, err := bicoop.HBCBeyondOuterBounds(fig4Example)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("found escape points: %v\n", len(pts) > 0)
	// Output:
	// found escape points: true
}
