package bicoop_test

// regions_test.go — behaviour of the public region-batch and campaign APIs:
// validation sentinels, streaming order, engine worker-default plumbing,
// and the cancellation contract (sub-second stop, no goroutine leaks) that
// `bcc region` relies on for Ctrl-C.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"bicoop"
)

func fig4sc(pdb float64) bicoop.Scenario {
	return bicoop.Scenario{PowerDB: pdb, GabDB: -7, GarDB: 0, GbrDB: 5}
}

// TestRegionMatchesLegacyFacade pins the new ctx/options Region against the
// one-shot RateRegion wrapper on the same scenario.
func TestRegionMatchesLegacyFacade(t *testing.T) {
	eng := bicoop.NewEngine()
	s := fig4sc(10)
	got, err := eng.Region(context.Background(), bicoop.TDBC, bicoop.Inner, s, bicoop.RegionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := bicoop.RateRegion(context.Background(), bicoop.TDBC, bicoop.Inner, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxRa() != legacy.MaxRa() || got.MaxRb() != legacy.MaxRb() || got.Area() != legacy.Area() {
		t.Errorf("Region (%g, %g, %g) differs from RateRegion (%g, %g, %g)",
			got.MaxRa(), got.MaxRb(), got.Area(), legacy.MaxRa(), legacy.MaxRb(), legacy.Area())
	}
	if !got.Contains(bicoop.RatePoint{Ra: 0, Rb: 0}) {
		t.Error("region does not contain the origin")
	}
}

// TestRegionBatchStreamsInOrder pins enumeration order (scenario outer,
// curve inner) and the spec echo fields.
func TestRegionBatchStreamsInOrder(t *testing.T) {
	spec := bicoop.RegionBatchSpec{
		Scenarios: []bicoop.Scenario{fig4sc(0), fig4sc(10)},
		Curves: []bicoop.RegionCurve{
			{Protocol: bicoop.MABC, Bound: bicoop.Inner},
			{Protocol: bicoop.TDBC, Bound: bicoop.Inner},
			{Protocol: bicoop.TDBC, Bound: bicoop.Outer},
		},
		Angles:  31,
		Workers: 4,
	}
	if got, want := spec.Size(), 6; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	i := 0
	err := bicoop.NewEngine().RegionBatch(context.Background(), spec, func(pt bicoop.RegionBatchPoint) error {
		wantScen, wantCurve := i/len(spec.Curves), i%len(spec.Curves)
		if pt.ScenarioIdx != wantScen || pt.CurveIdx != wantCurve {
			t.Errorf("curve %d arrived as (%d, %d), want (%d, %d)", i, pt.ScenarioIdx, pt.CurveIdx, wantScen, wantCurve)
		}
		if pt.Scenario != spec.Scenarios[wantScen] || pt.Curve != spec.Curves[wantCurve] {
			t.Errorf("curve %d echo fields %+v / %+v do not match the spec", i, pt.Scenario, pt.Curve)
		}
		if pt.Region.MaxRa() <= 0 || pt.Region.MaxRb() <= 0 {
			t.Errorf("curve %d degenerate region (maxRa %g, maxRb %g)", i, pt.Region.MaxRa(), pt.Region.MaxRb())
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != spec.Size() {
		t.Fatalf("streamed %d curves, want %d", i, spec.Size())
	}
}

// TestRegionValidation covers the typed sentinels of the region APIs.
func TestRegionValidation(t *testing.T) {
	eng := bicoop.NewEngine()
	ctx := context.Background()
	ok := bicoop.RegionBatchSpec{
		Scenarios: []bicoop.Scenario{fig4sc(10)},
		Curves:    []bicoop.RegionCurve{{Protocol: bicoop.MABC, Bound: bicoop.Inner}},
	}

	if err := eng.RegionBatch(ctx, ok, nil); !errors.Is(err, bicoop.ErrInvalidRegionSpec) {
		t.Errorf("nil yield err = %v, want ErrInvalidRegionSpec", err)
	}
	empty := ok
	empty.Curves = nil
	if err := eng.RegionBatch(ctx, empty, func(bicoop.RegionBatchPoint) error { return nil }); !errors.Is(err, bicoop.ErrInvalidRegionSpec) {
		t.Errorf("empty curves err = %v, want ErrInvalidRegionSpec", err)
	}
	degenerate := ok
	degenerate.Angles = 1
	if err := eng.RegionBatch(ctx, degenerate, func(bicoop.RegionBatchPoint) error { return nil }); !errors.Is(err, bicoop.ErrInvalidRegionSpec) {
		t.Errorf("angles=1 err = %v, want ErrInvalidRegionSpec", err)
	}
	nan := ok
	nan.Scenarios = []bicoop.Scenario{{PowerDB: math.NaN()}}
	if err := eng.RegionBatch(ctx, nan, func(bicoop.RegionBatchPoint) error { return nil }); !errors.Is(err, bicoop.ErrInvalidScenario) {
		t.Errorf("NaN scenario err = %v, want ErrInvalidScenario", err)
	}
	badEnum := ok
	badEnum.Curves = []bicoop.RegionCurve{{Protocol: bicoop.Protocol(99), Bound: bicoop.Inner}}
	if err := eng.RegionBatch(ctx, badEnum, func(bicoop.RegionBatchPoint) error { return nil }); !errors.Is(err, bicoop.ErrUnknownProtocol) {
		t.Errorf("bad protocol err = %v, want ErrUnknownProtocol", err)
	}

	sentinel := errors.New("stop")
	n := 0
	spec := ok
	spec.Scenarios = []bicoop.Scenario{fig4sc(0), fig4sc(5), fig4sc(10)}
	spec.Angles = 21
	if err := eng.RegionBatch(ctx, spec, func(bicoop.RegionBatchPoint) error {
		n++
		return sentinel
	}); !errors.Is(err, sentinel) || n != 1 {
		t.Errorf("yield error: err = %v after %d curves, want sentinel after 1", err, n)
	}
}

// TestRegionCancellation proves Engine.Region on a pathologically fine
// angle sweep returns sub-second on cancellation — Ctrl-C in `bcc region`
// — with no leaked goroutines.
func TestRegionCancellation(t *testing.T) {
	eng := bicoop.NewEngine()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := eng.Region(ctx, bicoop.HBC, bicoop.Inner, fig4sc(10), bicoop.RegionOptions{
		Angles:  2_000_000, // minutes of LP solves if the cancel were ignored
		Workers: 2,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled Region took %v, want sub-second", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestSimulateBatchStreamsAndValidates covers the campaign API: up-front
// validation with typed sentinels, in-order streaming, and the legacy
// single-run equivalence of each campaign entry.
func TestSimulateBatchStreamsAndValidates(t *testing.T) {
	eng := bicoop.NewEngine()
	ctx := context.Background()

	if _, err := eng.SimulateBatch(ctx, bicoop.CampaignSpec{}, nil); !errors.Is(err, bicoop.ErrInvalidSimSpec) {
		t.Errorf("empty campaign err = %v, want ErrInvalidSimSpec", err)
	}
	bad := bicoop.CampaignSpec{Specs: []bicoop.SimSpec{
		{Fading: &bicoop.FadingSpec{Scenario: fig4sc(5)}, Trials: 10},
		{Trials: 10}, // no simulator selected
	}}
	if _, err := eng.SimulateBatch(ctx, bad, nil); !errors.Is(err, bicoop.ErrInvalidSimSpec) {
		t.Errorf("malformed spec err = %v, want ErrInvalidSimSpec", err)
	}

	specs := []bicoop.SimSpec{
		{Fading: &bicoop.FadingSpec{Scenario: fig4sc(0)}, Trials: 80, Seed: 7},
		{Fading: &bicoop.FadingSpec{Scenario: fig4sc(5)}, Trials: 80, Seed: 8},
		{Fading: &bicoop.FadingSpec{Scenario: fig4sc(10)}, Trials: 80, Seed: 9},
	}
	var order []int
	res, err := eng.SimulateBatch(ctx, bicoop.CampaignSpec{Specs: specs, Workers: 3}, func(i int, r bicoop.SimResult) error {
		order = append(order, i)
		if r.Trials != 80 {
			t.Errorf("spec %d: Trials = %d, want 80", i, r.Trials)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("got %d results, want %d", len(res), len(specs))
	}
	for i, want := range []int{0, 1, 2} {
		if order[i] != want {
			t.Fatalf("streaming order %v, want ascending", order)
		}
	}
	// Each campaign entry must equal the same spec run alone with the
	// campaign's inner default (one trial goroutine).
	for i, s := range specs {
		s.Workers = 1
		solo, err := eng.Simulate(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		for p, st := range solo.Fading {
			if res[i].Fading[p] != st {
				t.Errorf("spec %d %v: campaign %+v, solo %+v", i, p, res[i].Fading[p], st)
			}
		}
	}

	// A yield error is returned verbatim.
	sentinel := errors.New("stop")
	if _, err := eng.SimulateBatch(ctx, bicoop.CampaignSpec{Specs: specs}, func(i int, r bicoop.SimResult) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("yield error = %v, want sentinel", err)
	}
}

// TestSimulateBatchCancellation proves a cancelled campaign returns the
// contiguous prefix of whole completed runs, promptly, without leaking
// goroutines.
func TestSimulateBatchCancellation(t *testing.T) {
	eng := bicoop.NewEngine()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	links := bicoop.ErasureLinks{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}
	var specs []bicoop.SimSpec
	for i := 0; i < 64; i++ {
		specs = append(specs, bicoop.SimSpec{
			BitTrueTDBC: &bicoop.BitTrueTDBCSpec{Links: links, Rates: bicoop.RatePoint{Ra: 0.2, Rb: 0.2}, BlockLength: 1000},
			Trials:      50_000, // hours of work per spec if the cancel were ignored
			Seed:        int64(i),
		})
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := eng.SimulateBatch(ctx, bicoop.CampaignSpec{Specs: specs, Workers: 2}, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled campaign took %v", elapsed)
	}
	if len(res) >= len(specs) {
		t.Errorf("cancelled campaign returned %d results, want a strict prefix", len(res))
	}
	for i, r := range res {
		if r.Trials != 50_000 {
			t.Errorf("prefix result %d has %d trials — campaigns must return whole runs only", i, r.Trials)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}
