// Quickstart: evaluate the paper's protocol bounds for one scenario.
//
// Two terminals a and b exchange messages through a relay r over a
// half-duplex Gaussian channel (unit noise, full CSI). We pick the paper's
// Fig 4 evaluation point — a weak direct link (Gab = -7 dB) and a relay
// that hears b much better than a (Gar = 0 dB, Gbr = 5 dB) — and ask, for
// every protocol: what is the best total exchange rate, how should the
// phase durations be split, and is a given target rate pair achievable?
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bicoop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// One Engine for the whole session: its evaluator pool caches the
	// compiled constraint structure per (protocol, bound), so every call
	// below after the first hits a warm fast path.
	eng := bicoop.NewEngine()

	s := bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}
	fmt.Printf("scenario: P = %.0f dB, Gab = %.0f dB, Gar = %.0f dB, Gbr = %.0f dB\n\n",
		s.PowerDB, s.GabDB, s.GarDB, s.GbrDB)

	// 1. Optimal sum rates with LP-optimized phase durations (Fig 3's
	//    quantity at a single point).
	fmt.Println("optimal achievable sum rates:")
	for _, p := range bicoop.AllProtocols() {
		res, err := eng.SumRate(p, bicoop.Inner, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %6.4f bits/use  at (Ra, Rb) = (%.4f, %.4f), durations %v\n",
			p, res.Sum, res.Point.Ra, res.Point.Rb, compact(res.Durations))
	}

	// 2. Full rate region of the best protocol (one curve of Fig 4). The
	//    support-direction sweep is sharded across the engine's workers and
	//    the context can cancel a long run mid-curve.
	region, err := eng.Region(context.Background(), bicoop.HBC, bicoop.Inner, s, bicoop.RegionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHBC achievable region: maxRa = %.4f, maxRb = %.4f, area = %.4f\n",
		region.MaxRa(), region.MaxRb(), region.Area())

	// 3. Feasibility of a concrete operating point: can the terminals
	//    exchange 1.5 bits/use each way?
	target := bicoop.RatePoint{Ra: 1.5, Rb: 1.5}
	fmt.Printf("\ncan each terminal send %.1f bits/use?\n", target.Ra)
	for _, p := range bicoop.AllProtocols() {
		ok, err := eng.Feasible(p, bicoop.Inner, s, target)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "no"
		if ok {
			verdict = "yes"
		}
		fmt.Printf("  %-7s %s\n", p, verdict)
	}

	// 4. The paper's surprise: HBC rate pairs provably beyond both the
	//    MABC and TDBC outer bounds.
	esc, err := bicoop.HBCBeyondOuterBounds(s)
	if err != nil {
		log.Fatal(err)
	}
	if len(esc) > 0 {
		fmt.Printf("\nHBC achieves %d points beyond BOTH the MABC and TDBC outer bounds, e.g. (%.4f, %.4f)\n",
			len(esc), esc[0].Ra, esc[0].Rb)
	}
}

func compact(ds []float64) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%.2f", d)
	}
	return out
}
