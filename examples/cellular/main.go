// Cellular relay placement: where should an operator put a relay station?
//
// This is the paper's motivating scenario (Section I): terminal a is a
// mobile user, terminal b a base station, and a relay station r assists the
// bidirectional exchange. The relay sits on the line between them; link
// gains follow a path-loss law G = d^-gamma. For each candidate position we
// evaluate every protocol's optimal sum rate and report (i) the best
// placement per protocol, (ii) the placements where the four-phase HBC
// protocol strictly beats both of its special cases, and (iii) how the
// answer changes between a suburban (gamma = 3) and dense-urban (gamma = 4)
// deployment.
//
// Run with: go run ./examples/cellular
package main

import (
	"fmt"
	"log"
	"math"

	"bicoop"
)

const powerDB = 15 // per-node transmit power over unit noise, dB

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellular: ")

	for _, gamma := range []float64{3, 4} {
		fmt.Printf("=== path-loss exponent gamma = %.0f, P = %d dB ===\n", gamma, powerDB)
		study(gamma)
		fmt.Println()
	}
}

func study(gamma float64) {
	protos := bicoop.AllProtocols()
	bestRate := make(map[bicoop.Protocol]float64, len(protos))
	bestPos := make(map[bicoop.Protocol]float64, len(protos))
	var hbcWindow []float64

	fmt.Printf("%-6s", "pos")
	for _, p := range protos {
		fmt.Printf(" %8s", p)
	}
	fmt.Println("   HBC advantage")

	for pos := 0.10; pos < 0.91; pos += 0.05 {
		s, err := bicoop.RelayPlacement{Pos: pos, Exponent: gamma}.Scenario(powerDB)
		if err != nil {
			log.Fatal(err)
		}
		rates := make(map[bicoop.Protocol]float64, len(protos))
		fmt.Printf("%-6.2f", pos)
		for _, p := range protos {
			res, err := bicoop.OptimalSumRate(p, bicoop.Inner, s)
			if err != nil {
				log.Fatal(err)
			}
			rates[p] = res.Sum
			if res.Sum > bestRate[p] {
				bestRate[p], bestPos[p] = res.Sum, pos
			}
			fmt.Printf(" %8.4f", res.Sum)
		}
		adv := rates[bicoop.HBC] - math.Max(rates[bicoop.MABC], rates[bicoop.TDBC])
		if adv > 1e-4 {
			hbcWindow = append(hbcWindow, pos)
			fmt.Printf("   +%.4f", adv)
		}
		fmt.Println()
	}

	fmt.Println("\nbest placement per protocol:")
	for _, p := range protos {
		fmt.Printf("  %-7s sum rate %.4f at position %.2f\n", p, bestRate[p], bestPos[p])
	}
	if len(hbcWindow) > 0 {
		poss := make([]string, len(hbcWindow))
		for i, w := range hbcWindow {
			poss[i] = fmt.Sprintf("%.2f", w)
		}
		fmt.Printf("HBC strictly beats both MABC and TDBC at positions %v —\n", poss)
		fmt.Println("  the hybrid protocol matters exactly where the relay is moderately off-center.")
	} else {
		fmt.Println("HBC never strictly beat both special cases on this grid (window is narrow; try a finer grid).")
	}
}
