// Cellular relay placement: where should an operator put a relay station?
//
// This is the paper's motivating scenario (Section I): terminal a is a
// mobile user, terminal b a base station, and a relay station r assists the
// bidirectional exchange. The relay sits on the line between them; link
// gains follow a path-loss law G = d^-gamma. For each candidate position we
// evaluate every protocol's optimal sum rate and report (i) the best
// placement per protocol, (ii) the placements where the four-phase HBC
// protocol strictly beats both of its special cases, and (iii) how the
// answer changes between a suburban (gamma = 3) and dense-urban (gamma = 4)
// deployment.
//
// Run with: go run ./examples/cellular
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"bicoop"
)

const powerDB = 15 // per-node transmit power over unit noise, dB

// eng is shared by both path-loss studies so the second reuses warm
// evaluators.
var eng = bicoop.NewEngine()

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellular: ")

	for _, gamma := range []float64{3, 4} {
		fmt.Printf("=== path-loss exponent gamma = %.0f, P = %d dB ===\n", gamma, powerDB)
		study(gamma)
		fmt.Println()
	}
}

func study(gamma float64) {
	protos := bicoop.AllProtocols()
	bestRate := make(map[bicoop.Protocol]float64, len(protos))
	bestPos := make(map[bicoop.Protocol]float64, len(protos))
	var hbcWindow []float64

	fmt.Printf("%-6s", "pos")
	for _, p := range protos {
		fmt.Printf(" %8s", p)
	}
	fmt.Println("   HBC advantage")

	// The placement study is one engine sweep: the grid is declared once
	// and the engine streams each evaluated point, holding a single warm
	// evaluator across the whole grid. Points arrive row-major (placement
	// outer, protocol inner), so a row is complete every len(protos) points.
	var placements []bicoop.RelayPlacement
	for pos := 0.10; pos < 0.91; pos += 0.05 {
		placements = append(placements, bicoop.RelayPlacement{Pos: pos, Exponent: gamma})
	}
	spec := bicoop.SweepSpec{
		Protocols:  protos,
		PowersDB:   []float64{powerDB},
		Placements: placements,
	}
	rates := make(map[bicoop.Protocol]float64, len(protos))
	err := eng.Sweep(context.Background(), spec, func(pt bicoop.SweepPoint) error {
		pos := pt.Placement.Pos
		if pt.Index%len(protos) == 0 {
			fmt.Printf("%-6.2f", pos)
		}
		rates[pt.Protocol] = pt.Result.Sum
		if pt.Result.Sum > bestRate[pt.Protocol] {
			bestRate[pt.Protocol], bestPos[pt.Protocol] = pt.Result.Sum, pos
		}
		fmt.Printf(" %8.4f", pt.Result.Sum)
		if pt.Index%len(protos) == len(protos)-1 {
			adv := rates[bicoop.HBC] - math.Max(rates[bicoop.MABC], rates[bicoop.TDBC])
			if adv > 1e-4 {
				hbcWindow = append(hbcWindow, pos)
				fmt.Printf("   +%.4f", adv)
			}
			fmt.Println()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbest placement per protocol:")
	for _, p := range protos {
		fmt.Printf("  %-7s sum rate %.4f at position %.2f\n", p, bestRate[p], bestPos[p])
	}
	if len(hbcWindow) > 0 {
		poss := make([]string, len(hbcWindow))
		for i, w := range hbcWindow {
			poss[i] = fmt.Sprintf("%.2f", w)
		}
		fmt.Printf("HBC strictly beats both MABC and TDBC at positions %v —\n", poss)
		fmt.Println("  the hybrid protocol matters exactly where the relay is moderately off-center.")
	} else {
		fmt.Println("HBC never strictly beat both special cases on this grid (window is narrow; try a finer grid).")
	}
}
