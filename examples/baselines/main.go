// Baselines study: how do the paper's decode-and-forward protocols compare
// against the schemes they are positioned against?
//
// Two baselines frame the paper's contribution:
//   - the two-phase amplify-and-forward scheme of its references [7],[8]
//     ("analog network coding": the relay never decodes, it just scales and
//     retransmits the superimposed signal);
//   - the full-duplex decode-and-forward bound of reference [9] — the
//     ceiling that the half-duplex constraint keeps out of reach.
//
// We sweep transmit power at the paper's Fig 4 gains and report, per power:
// every DF protocol's sum rate, the AF sum rate, the full-duplex ceiling,
// and the fraction of the ceiling the best half-duplex protocol retains.
//
// Run with: go run ./examples/baselines
package main

import (
	"context"
	"fmt"
	"log"

	"bicoop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("baselines: ")

	fmt.Println("gains: Gab = -7 dB, Gar = 0 dB, Gbr = 5 dB (the paper's Fig 4 point)")
	fmt.Printf("\n%-7s %8s %8s %8s %8s %8s %12s %10s\n",
		"P (dB)", "DT", "MABC", "TDBC", "HBC", "AF", "full-duplex", "HBC/FD")

	// The power sweep is a batch workload: one engine call per protocol
	// evaluates the whole power axis on a single warm evaluator instead of
	// re-entering the facade per (protocol, power) cell.
	eng := bicoop.NewEngine()
	ctx := context.Background()
	powersDB := []float64{-5, 0, 5, 10, 15, 20}
	scenarios := make([]bicoop.Scenario, len(powersDB))
	for i, pdb := range powersDB {
		scenarios[i] = bicoop.Scenario{PowerDB: pdb, GabDB: -7, GarDB: 0, GbrDB: 5}
	}
	protos := []bicoop.Protocol{bicoop.DT, bicoop.MABC, bicoop.TDBC, bicoop.HBC}
	sums := make(map[bicoop.Protocol][]bicoop.SumRateResult, len(protos))
	for _, p := range protos {
		batch, err := eng.SumRateBatch(ctx, p, bicoop.Inner, scenarios)
		if err != nil {
			log.Fatal(err)
		}
		sums[p] = batch
	}

	for i, pdb := range powersDB {
		s := scenarios[i]
		af, err := bicoop.AmplifyForwardSumRate(s)
		if err != nil {
			log.Fatal(err)
		}
		fd, err := bicoop.FullDuplexSumRate(s)
		if err != nil {
			log.Fatal(err)
		}
		pen, err := bicoop.HalfDuplexPenalty(bicoop.HBC, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7.0f %8.4f %8.4f %8.4f %8.4f %8.4f %12.4f %9.0f%%\n",
			pdb, sums[bicoop.DT][i].Sum, sums[bicoop.MABC][i].Sum, sums[bicoop.TDBC][i].Sum,
			sums[bicoop.HBC][i].Sum, af.Sum, fd.Sum, 100*pen)
	}

	fmt.Println(`
reading the table:
  - DF beats AF across this sweep: amplifying the superimposed signal also
    amplifies relay noise, which the paper's decode-and-forward protocols
    avoid by decoding before re-encoding;
  - the full-duplex column is what reference [9] promises if nodes could
    transmit and receive simultaneously; the HBC/FD column is the price of
    the half-duplex constraint the paper's protocols are designed around;
  - the best half-duplex protocol keeps roughly half to two-thirds of the
    full-duplex sum rate at these gains.`)
}
