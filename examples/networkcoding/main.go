// Network-coding demo: watch Theorem 3's achievability machinery actually
// decode bits.
//
// The TDBC protocol is executed bit by bit over a three-link erasure
// network: both terminals broadcast random-linear-code parities of their
// messages (the relay and the opposite terminal each keep what survives
// their link's erasures), the relay decodes both messages and broadcasts
// parities of the XOR combination, and each terminal pools its overheard
// side information with the XOR parities and solves the resulting GF(2)
// system. Sweeping the message rate across the Theorem 3 boundary exhibits
// the waterfall the random-coding argument predicts: reliable below the
// bound, hopeless above it.
//
// Run with: go run ./examples/networkcoding
package main

import (
	"context"
	"fmt"
	"log"

	"bicoop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("networkcoding: ")

	eng := bicoop.NewEngine()
	ctx := context.Background()

	links := bicoop.ErasureLinks{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}
	fmt.Printf("erasure links: a-r %.0f%%, b-r %.0f%%, a-b %.0f%% loss\n",
		100*links.EpsAR, 100*links.EpsBR, 100*links.EpsAB)

	// Theorem 3 for erasure links (capacity 1-eps per use):
	//   Ra <= min(D1(1-eAR), D1(1-eAB) + D3(1-eBR))
	//   Rb <= min(D2(1-eBR), D2(1-eAB) + D3(1-eAR)).
	// Place the sweep relative to the exact LP-optimal boundary point.
	opt, err := bicoop.OptimalTDBCErasureRates(links)
	if err != nil {
		log.Fatal(err)
	}
	base := opt.Point
	fmt.Printf("Theorem 3 boundary point: (Ra, Rb) = (%.4f, %.4f), sum %.4f bits/use\n\n",
		base.Ra, base.Rb, opt.Sum)

	const (
		blockLength = 4000
		trials      = 25
	)
	fmt.Printf("%-11s %-14s %-12s %-15s\n", "rate scale", "success prob", "relay fails", "terminal fails")
	for _, scale := range []float64{0.70, 0.85, 0.95, 1.05, 1.15, 1.30} {
		// The unified simulator entry point: the TDBC spec selects the
		// bit-true erasure machinery under the common Trials/Seed/Workers
		// run contract.
		res, err := eng.Simulate(ctx, bicoop.SimSpec{
			BitTrueTDBC: &bicoop.BitTrueTDBCSpec{
				Links:       links,
				Rates:       bicoop.RatePoint{Ra: base.Ra * scale, Rb: base.Rb * scale},
				Durations:   opt.Durations, // pin, so above-bound points run (and fail)
				BlockLength: blockLength,
			},
			Trials:  trials,
			Seed:    7,
			Workers: 1, // pinned: the printed numbers stay machine-independent
		})
		if err != nil {
			log.Fatal(err)
		}
		bt := res.BitTrue
		fmt.Printf("%-11.2f %-14.3f %-12d %-15d\n",
			scale, bt.SuccessProb, bt.RelayFailures, bt.TerminalFailures)
	}

	fmt.Println("\nwhat happened mechanically:")
	fmt.Println("  - below the bound every GF(2) system a node assembles is full rank w.h.p.:")
	fmt.Println("    enough parities survive each link for unique decoding;")
	fmt.Println("  - above the bound some node is short of equations (relay first, then the")
	fmt.Println("    terminals), decoding is underdetermined, and the block fails;")
	fmt.Println("  - the XOR broadcast carries BOTH messages in max(ka, kb) bits — the relay")
	fmt.Println("    never needs to send the two messages separately. That is the network-")
	fmt.Println("    coding advantage the paper builds on.")
}
