// Fading outage study: how do the protocols behave when the links fade?
//
// The paper's gains combine quasi-static fading and path loss. Here each
// block draws independent Rayleigh fades around the Fig 4 mean gains; a
// CSI-adaptive system re-optimizes its phase durations every block. We
// report, per protocol and power: the fading-averaged optimal sum rate
// (against the fixed-gain value, showing the Jensen penalty) and the
// probability that a fixed symmetric target rate is in outage.
//
// Run with: go run ./examples/fading
package main

import (
	"context"
	"fmt"
	"log"

	"bicoop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fading: ")

	eng := bicoop.NewEngine()
	ctx := context.Background()
	const trials = 3000
	target := bicoop.RatePoint{Ra: 0.5, Rb: 0.5}
	protos := []bicoop.Protocol{bicoop.MABC, bicoop.TDBC, bicoop.HBC}

	fmt.Printf("Rayleigh block fading around Gab=-7dB, Gar=0dB, Gbr=5dB; %d blocks/point\n", trials)
	fmt.Printf("outage target: (Ra, Rb) = (%.1f, %.1f) bits/use\n\n", target.Ra, target.Rb)
	fmt.Printf("%-7s %-9s %-12s %-12s %-10s\n", "P (dB)", "protocol", "fixed-gain", "fading mean", "outage")

	for _, pdb := range []float64{0, 5, 10} {
		s := bicoop.Scenario{PowerDB: pdb, GabDB: -7, GarDB: 0, GbrDB: 5}
		// Engine.Simulate is the unified simulator entry point: the fading
		// spec selects the Rayleigh Monte Carlo, and the context would let a
		// server cancel the run mid-flight with partial statistics intact.
		res, err := eng.Simulate(ctx, bicoop.SimSpec{
			Fading: &bicoop.FadingSpec{
				Scenario:  s,
				Protocols: protos,
				Target:    target,
			},
			Trials: trials,
			Seed:   2026,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range protos {
			fixed, err := eng.SumRate(p, bicoop.Inner, s)
			if err != nil {
				log.Fatal(err)
			}
			st := res.Fading[p]
			fmt.Printf("%-7.0f %-9s %-12.4f %-12.4f %-10.4f\n",
				pdb, p, fixed.Sum, st.MeanOptSumRate, st.OutageProb)
		}
		fmt.Println()
	}

	fmt.Println("observations:")
	fmt.Println("  - HBC dominates its special cases block-by-block, so its fading mean and")
	fmt.Println("    outage are never worse than MABC's or TDBC's;")
	fmt.Println("  - fading means sit below the fixed-gain values: log2(1+x) is concave, so")
	fmt.Println("    Rayleigh power fluctuations cost average rate (Jensen penalty).")
}
