// Command bccd is the crash-safe bicoop job daemon: an HTTP/JSON service
// accepting sweep, region-batch and simulation-campaign jobs, running them
// through the bicoop engine with durable per-job checkpointing. Jobs
// survive anything the process does not: a kill -9 mid-job loses at most
// the rows past the last checkpoint, and the restarted daemon resumes every
// interrupted job from its watermark, producing results byte-identical to
// an uninterrupted run. SIGTERM drains gracefully — admission stops,
// running jobs checkpoint and park, and the process exits within the drain
// deadline. See the package documentation's "Running bccd" section for the
// endpoints and job lifecycle.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bicoop"
	"bicoop/internal/cache"
	"bicoop/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bccd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bccd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	store := fs.String("store", "", "durable job store directory (required)")
	queue := fs.Int("queue", 16, "admission queue capacity; a full queue sheds with 429")
	jobs := fs.Int("jobs", 1, "jobs run concurrently (each job shards internally)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown deadline on SIGTERM/SIGINT")
	workers := fs.Int("workers", 0, "engine worker default for jobs that leave Workers 0 (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache", 0, "result-cache capacity in entries, persisted to cache.log in the store directory (0 = caching off)")
	addrFile := fs.String("addrfile", "", "write the bound address to this file once listening (for scripts and tests)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("-store is required")
	}

	st, err := service.OpenStore(*store)
	if err != nil {
		return err
	}
	var engOpts []bicoop.Option
	if *workers > 0 {
		engOpts = append(engOpts, bicoop.WithWorkers(*workers))
	}
	svcOpts := service.Options{
		QueueCap:  *queue,
		Executors: *jobs,
	}
	if *cacheCap > 0 {
		// The durable tier shares the store directory (the job store only
		// scans jNNNNNN subdirectories, so cache.log is out of its way):
		// replay the log into a fresh in-process store, hand that store to
		// the engine, and let the service flush fills after every job.
		cst := cache.NewStore(*cacheCap)
		clog, err := service.OpenCacheLog(filepath.Join(*store, "cache.log"), cst)
		if err != nil {
			return err
		}
		defer clog.Close()
		engOpts = append(engOpts, bicoop.WithCacheStore(cst))
		svcOpts.CacheLog = clog
	}
	svc := service.New(context.Background(), st, bicoop.NewEngine(engOpts...), svcOpts)
	if err := svc.Start(); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// tmp+rename so a reader never sees a half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "bccd: listening on %s, store %s\n", ln.Addr(), *store)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "bccd: %v, draining (deadline %s)\n", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then park in-flight jobs. Both share
	// the drain deadline; a job that cannot checkpoint in time is still
	// re-queued durably (its state never advanced past running → queued on
	// the next recovery scan).
	shutdownErr := srv.Shutdown(ctx)
	if err := svc.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	fmt.Fprintln(os.Stderr, "bccd: drained, exiting")
	return nil
}
