// Command bcclint is the project's invariant multichecker: it runs the
// custom analyzers in internal/lint/analyzers over the packages named by
// its arguments and exits nonzero if any diagnostic is produced.
//
// Usage:
//
//	go run ./cmd/bcclint ./...
//	go run ./cmd/bcclint -only detrand,errwrap ./internal/sim
//	go run ./cmd/bcclint -list
//
// Diagnostics print as file:line:col: message [analyzer]. A finding is
// either fixed or waived in place with an audited
// "//bicoop:allow <analyzer> — reason" comment; see internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"

	"bicoop/internal/lint"
	"bicoop/internal/lint/analyzers"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "directory to run `go list` from (the module root)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bcclint [-only names] [-C dir] packages...\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the bicoop invariant analyzers over the named packages.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers.All()
	if *only != "" {
		var ok bool
		active, ok = analyzers.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "bcclint: unknown analyzer in -only=%s (use -list)\n", *only)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcclint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, p := range pkgs {
		diags, err := lint.RunAnalyzers(p, active)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcclint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "bcclint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
