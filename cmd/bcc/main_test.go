package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{name: "no args", args: nil, wantErr: true},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantErr: true},
		{name: "help", args: []string{"help"}, wantErr: false},
		{name: "list", args: []string{"list"}, wantErr: false},
		{name: "bounds", args: []string{"bounds", "-p", "5"}, wantErr: false},
		{name: "region", args: []string{"region", "-proto", "MABC", "-bound", "inner", "-p", "5"}, wantErr: false},
		{name: "region csv", args: []string{"region", "-proto", "TDBC", "-bound", "outer", "-csv"}, wantErr: false},
		{name: "region bad proto", args: []string{"region", "-proto", "XYZ"}, wantErr: true},
		{name: "region bad bound", args: []string{"region", "-bound", "sideways"}, wantErr: true},
		{name: "place", args: []string{"place", "-pos", "0.3"}, wantErr: false},
		{name: "place off segment", args: []string{"place", "-pos", "1.5"}, wantErr: true},
		{name: "escape", args: []string{"escape", "-p", "10", "-n", "2"}, wantErr: false},
		{name: "penalty", args: []string{"penalty", "-p", "10"}, wantErr: false},
		{name: "run without id", args: []string{"run"}, wantErr: true},
		{name: "run unknown id", args: []string{"run", "nonesuch"}, wantErr: true},
		{name: "run quick experiment", args: []string{"run", "delta-ablation", "-quick"}, wantErr: false},
		{name: "run flags before id", args: []string{"run", "-quick", "crossover"}, wantErr: false},
		{name: "bad flag", args: []string{"bounds", "-nonsense"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(context.Background(), tt.args)
			if tt.wantErr && err == nil {
				t.Errorf("run(ctx, %v) = nil, want error", tt.args)
			}
			if !tt.wantErr && err != nil {
				t.Errorf("run(ctx, %v) = %v, want nil", tt.args, err)
			}
		})
	}
}

func TestParseProtocol(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "HBC", want: "HBC"},
		{in: "hbc", want: "HBC"},
		{in: "Mabc", want: "MABC"},
		{in: "naive4", want: "Naive4"},
		{in: "bogus", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			p, err := parseProtocol(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !strings.EqualFold(p.String(), tt.want) {
				t.Errorf("parseProtocol(%q) = %v, want %v", tt.in, p, tt.want)
			}
		})
	}
}
