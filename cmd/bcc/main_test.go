package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bicoop"
)

func TestRunDispatch(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{name: "no args", args: nil, wantErr: true},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantErr: true},
		{name: "help", args: []string{"help"}, wantErr: false},
		{name: "list", args: []string{"list"}, wantErr: false},
		{name: "bounds", args: []string{"bounds", "-p", "5"}, wantErr: false},
		{name: "region", args: []string{"region", "-proto", "MABC", "-bound", "inner", "-p", "5"}, wantErr: false},
		{name: "region csv", args: []string{"region", "-proto", "TDBC", "-bound", "outer", "-csv"}, wantErr: false},
		{name: "region bad proto", args: []string{"region", "-proto", "XYZ"}, wantErr: true},
		{name: "region bad bound", args: []string{"region", "-bound", "sideways"}, wantErr: true},
		{name: "place", args: []string{"place", "-pos", "0.3"}, wantErr: false},
		{name: "place off segment", args: []string{"place", "-pos", "1.5"}, wantErr: true},
		{name: "sweep", args: []string{"sweep", "-powers", "0,10", "-protos", "MABC"}, wantErr: false},
		{name: "sweep cached", args: []string{"sweep", "-powers", "0,10", "-protos", "MABC", "-cache", "1024"}, wantErr: false},
		{name: "sweep bad powers", args: []string{"sweep", "-powers", "10:0:1"}, wantErr: true},
		{name: "sweep bad proto", args: []string{"sweep", "-protos", "XYZ"}, wantErr: true},
		{name: "sweep bad bound", args: []string{"sweep", "-bound", "sideways"}, wantErr: true},
		{name: "sweep checkpoint without output", args: []string{"sweep", "-checkpoint", "x.ck"}, wantErr: true},
		{name: "escape", args: []string{"escape", "-p", "10", "-n", "2"}, wantErr: false},
		{name: "penalty", args: []string{"penalty", "-p", "10"}, wantErr: false},
		{name: "run without id", args: []string{"run"}, wantErr: true},
		{name: "run unknown id", args: []string{"run", "nonesuch"}, wantErr: true},
		{name: "run quick experiment", args: []string{"run", "delta-ablation", "-quick"}, wantErr: false},
		{name: "run flags before id", args: []string{"run", "-quick", "crossover"}, wantErr: false},
		{name: "bad flag", args: []string{"bounds", "-nonsense"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(context.Background(), tt.args)
			if tt.wantErr && err == nil {
				t.Errorf("run(ctx, %v) = nil, want error", tt.args)
			}
			if !tt.wantErr && err != nil {
				t.Errorf("run(ctx, %v) = %v, want nil", tt.args, err)
			}
		})
	}
}

func TestExitFor(t *testing.T) {
	tests := []struct {
		name     string
		err      error
		code     int
		wantNote bool
	}{
		{name: "success", err: nil, code: 0},
		{name: "plain error", err: errors.New("boom"), code: 1},
		{name: "interrupt", err: context.Canceled, code: 130, wantNote: true},
		{name: "wrapped interrupt", err: fmt.Errorf("sweep: %w", context.Canceled), code: 130, wantNote: true},
		{name: "timeout", err: context.DeadlineExceeded, code: 124, wantNote: true},
		{name: "wrapped timeout", err: fmt.Errorf("bicoop: %w", context.DeadlineExceeded), code: 124, wantNote: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, note := exitFor(tt.err)
			if code != tt.code {
				t.Errorf("exitFor(%v) code = %d, want %d", tt.err, code, tt.code)
			}
			if (note != "") != tt.wantNote {
				t.Errorf("exitFor(%v) note = %q, wantNote %v", tt.err, note, tt.wantNote)
			}
			if tt.wantNote && !strings.Contains(note, "partial results above are valid") {
				t.Errorf("early-stop note %q must tell the user their partial output is valid", note)
			}
		})
	}
}

func TestParsePowers(t *testing.T) {
	tests := []struct {
		in      string
		want    []float64
		wantErr bool
	}{
		{in: "0:4:2", want: []float64{0, 2, 4}},
		{in: "0:5:2", want: []float64{0, 2, 4}},
		{in: "10:10:1", want: []float64{10}},
		{in: "-3,0,7.5", want: []float64{-3, 0, 7.5}},
		{in: "5", want: []float64{5}},
		{in: "10:0:1", wantErr: true},
		{in: "0:10:0", wantErr: true},
		{in: "0:10:x", wantErr: true},
		{in: "a,b", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := parsePowers(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parsePowers(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("parsePowers(%q) = %v, want %v", tt.in, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("parsePowers(%q) = %v, want %v", tt.in, got, tt.want)
				}
			}
		})
	}
}

// sweepTestSpec is a grid big enough to span many chunks (60 powers × 24
// placements × 5 protocols = 7200 points) so tight deadlines land mid-run.
func sweepTestSpec() bicoop.SweepSpec {
	var spec bicoop.SweepSpec
	for i := 0; i < 60; i++ {
		spec.PowersDB = append(spec.PowersDB, float64(i)/3)
	}
	for i := 0; i < 24; i++ {
		spec.Placements = append(spec.Placements,
			bicoop.RelayPlacement{Pos: 0.05 + 0.9*float64(i)/23, Exponent: 3, GabDB: -7})
	}
	return spec
}

// TestRunSweepCSVCheckpointResume pins the CLI resume contract end to end:
// a checkpointed sweep interrupted by deadlines, resumed until it
// completes, produces a CSV byte-identical to an uninterrupted run's.
func TestRunSweepCSVCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.csv")
	if err := runSweepCSV(context.Background(), eng, sweepTestSpec(), full, ""); err != nil {
		t.Fatal(err)
	}

	part := filepath.Join(dir, "part.csv")
	ck := filepath.Join(dir, "part.ck")
	interruptions := 0
	for attempt := 0; ; attempt++ {
		if attempt > 100 {
			t.Fatal("sweep never completed across 100 resumes")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		err := runSweepCSV(ctx, eng, sweepTestSpec(), part, ck)
		cancel()
		if err == nil {
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatal(err)
		}
		interruptions++
	}
	t.Logf("completed after %d interruptions", interruptions)

	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed CSV differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}

	// Idempotence: rerunning a completed checkpointed sweep changes nothing.
	if err := runSweepCSV(context.Background(), eng, sweepTestSpec(), part, ck); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("rerun of a completed checkpointed sweep altered the CSV")
	}
}

// TestRunSweepCSVCorruptCheckpoint pins that a garbled checkpoint fails
// loudly instead of silently restarting.
func TestRunSweepCSVCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "bad.ck")
	if err := os.WriteFile(ck, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runSweepCSV(context.Background(), eng, sweepTestSpec(), filepath.Join(dir, "out.csv"), ck)
	if err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Fatalf("err = %v, want a corrupt-checkpoint error", err)
	}
}

func TestParseProtocol(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "HBC", want: "HBC"},
		{in: "hbc", want: "HBC"},
		{in: "Mabc", want: "MABC"},
		{in: "naive4", want: "Naive4"},
		{in: "bogus", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			p, err := parseProtocol(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !strings.EqualFold(p.String(), tt.want) {
				t.Errorf("parseProtocol(%q) = %v, want %v", tt.in, p, tt.want)
			}
		})
	}
}
