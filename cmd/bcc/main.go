// Command bcc drives the bidirectional coded cooperation reproduction: it
// evaluates the paper's bounds for arbitrary scenarios, regenerates every
// figure and claim check as ASCII charts/tables (with optional CSV), and
// runs the Monte Carlo simulators.
//
// Usage:
//
//	bcc list                            # list reproduction experiments
//	bcc run <id> [-quick] [-seed N] [-artifacts dir] [-workers N] [-cpuprofile f] [-timeout d]
//	bcc all [-quick] [-workers N] [-cpuprofile f] [-timeout d]
//	bcc bounds  [-p dB] [-gab dB] [-gar dB] [-gbr dB]
//	bcc region  [-proto P] [-bound inner|outer] [-p dB] [...gains] [-csv]
//	bcc place   [-p dB] [-pos 0..1] [-gamma g]
//	bcc sweep   [-powers lo:hi:step] [-places N] [-protos P,Q] [-o f.csv] [-checkpoint f] [-timeout d]
//
// Examples:
//
//	bcc run fig3
//	bcc run fig4b
//	bcc bounds -p 10
//	bcc region -proto HBC -bound inner -p 10 -csv
//	bcc sweep -powers 0:20:0.5 -places 9 -o grid.csv -checkpoint grid.ck
//
// Interrupted runs exit 130 (Ctrl-C) or 124 (-timeout); partial output
// already printed is valid. A sweep with -checkpoint resumes on rerun and
// reproduces the exact artifact of an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bicoop"
	"bicoop/internal/service"
)

func main() {
	// Ctrl-C (or SIGTERM) cancels the run context; the engine's context
	// plumbing stops in-flight sweeps and Monte Carlo shard loops within
	// one trial, so whatever partial output was produced is still valid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:])
	code, note := exitFor(err)
	if note != "" {
		fmt.Fprintln(os.Stderr, note)
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "bcc:", err)
	}
	os.Exit(code)
}

// exitFor maps a run error to the conventional process exit code plus the
// stderr note explaining it: 130 for Ctrl-C (SIGINT + 128), 124 for a
// -timeout expiry (the timeout(1) convention), 1 for everything else. Both
// early-stop codes come with partial results already printed — the sharded
// runs stop on chunk boundaries, so everything streamed before the stop is
// complete and valid.
func exitFor(err error) (code int, note string) {
	switch {
	case err == nil:
		return 0, ""
	case errors.Is(err, context.DeadlineExceeded):
		return 124, "bcc: timed out — partial results above are valid; rerun with -checkpoint to resume a sweep"
	case errors.Is(err, context.Canceled):
		return 130, "bcc: interrupted — partial results above are valid for the trials completed"
	default:
		return 1, ""
	}
}

// eng is the CLI's session engine: one evaluator pool shared by every
// subcommand, batch and sweep.
var eng = bicoop.DefaultEngine()

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList()
	case "run":
		return cmdRun(ctx, args[1:])
	case "all":
		return cmdAll(ctx, args[1:])
	case "bounds":
		return cmdBounds(args[1:])
	case "region":
		return cmdRegion(ctx, args[1:])
	case "place":
		return cmdPlace(ctx, args[1:])
	case "sweep":
		return cmdSweep(ctx, args[1:])
	case "escape":
		return cmdEscape(args[1:])
	case "penalty":
		return cmdPenalty(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bcc — bidirectional coded cooperation protocol bounds (Kim/Mitran/Tarokh reproduction)

subcommands:
  list     list reproduction experiments
  run      run one experiment:   bcc run fig3 [-quick] [-seed N]
  all      run every experiment: bcc all [-quick]
  bounds   per-protocol optimal sum rates for a scenario
  region   rate-region vertices for one protocol bound
  place    per-protocol sum rates for a relay placed on the a-b segment
  sweep    evaluate a power x placement x protocol grid to CSV, resumable via -checkpoint
  escape   achievable HBC points beyond BOTH the MABC and TDBC outer bounds
  penalty  half-duplex penalty vs the full-duplex DF ceiling, plus AF
`)
}

func cmdEscape(args []string) error {
	fs := flag.NewFlagSet("escape", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	limit := fs.Int("n", 10, "max witnesses to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	pts, err := bicoop.HBCBeyondOuterBounds(s)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		fmt.Printf("no HBC escape points at P=%.1f dB with these gains\n", *p)
		return nil
	}
	fmt.Printf("%d achievable HBC points outside BOTH the MABC and TDBC outer bounds (P=%.1f dB):\n", len(pts), *p)
	for i, pt := range pts {
		if i >= *limit {
			fmt.Printf("  ... and %d more\n", len(pts)-*limit)
			break
		}
		fmt.Printf("  (Ra, Rb) = (%.4f, %.4f)\n", pt.Ra, pt.Rb)
	}
	return nil
}

func cmdPenalty(args []string) error {
	fs := flag.NewFlagSet("penalty", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	fd, err := bicoop.FullDuplexSumRate(s)
	if err != nil {
		return err
	}
	af, err := bicoop.AmplifyForwardSumRate(s)
	if err != nil {
		return err
	}
	fmt.Printf("full-duplex DF ceiling: %.4f bits/use; AF 2-phase: %.4f bits/use\n\n", fd.Sum, af.Sum)
	fmt.Printf("%-8s %10s %12s\n", "protocol", "sum rate", "of ceiling")
	for _, proto := range bicoop.AllProtocols() {
		res, err := eng.SumRate(proto, bicoop.Inner, s)
		if err != nil {
			return err
		}
		pen, err := bicoop.HalfDuplexPenalty(proto, s)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10.4f %11.0f%%\n", proto, res.Sum, 100*pen)
	}
	return nil
}

// scenarioFlags registers the shared scenario flags on fs.
func scenarioFlags(fs *flag.FlagSet) (p, gab, gar, gbr *float64) {
	p = fs.Float64("p", 10, "per-node transmit power in dB (unit noise)")
	gab = fs.Float64("gab", -7, "direct link gain Gab in dB")
	gar = fs.Float64("gar", 0, "a-relay link gain Gar in dB")
	gbr = fs.Float64("gbr", 5, "b-relay link gain Gbr in dB")
	return
}

func cmdList() error {
	for _, id := range bicoop.Experiments() {
		desc, err := bicoop.DescribeExperiment(id)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %s\n", id, desc)
	}
	return nil
}

// timeoutFlag registers the shared -timeout flag: a wall-clock bound on the
// run context. An expired run exits 124 with its partial output intact.
func timeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "stop after this duration, exit 124 (0 = no limit); partial output stays valid")
}

// withDeadline applies a -timeout value to the run context; zero leaves the
// context unbounded.
func withDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// perfFlags registers the shared performance flags: -workers caps the
// process's parallelism (GOMAXPROCS, which also bounds the Monte Carlo
// worker pools) and -cpuprofile writes a pprof CPU profile of the run.
func perfFlags(fs *flag.FlagSet) (workers *int, cpuprofile *string) {
	workers = fs.Int("workers", 0, "cap worker parallelism (GOMAXPROCS); 0 keeps the default")
	cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	return
}

// withPerf applies the performance flags around fn. The profile file is
// closed (and profiling stopped) before returning so partial runs still
// produce a readable profile.
func withPerf(workers int, cpuprofile string, fn func() error) error {
	if workers > 0 {
		runtime.GOMAXPROCS(workers)
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	return fn()
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced resolution for a fast run")
	seed := fs.Int64("seed", 1, "simulation seed")
	artifacts := fs.String("artifacts", "", "also write <dir>/<id>.txt and <dir>/<id>.csv canonical artifacts")
	workers, cpuprofile := perfFlags(fs)
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("run takes an experiment id (see 'bcc list')")
	}
	id := fs.Arg(0)
	// Allow flags after the positional id too: bcc run fig3 -quick.
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return err
	}
	ctx, cancel := withDeadline(ctx, *timeout)
	defer cancel()
	return withPerf(*workers, *cpuprofile, func() error {
		if *artifacts == "" {
			return eng.RunExperiment(ctx, id, *quick, *seed, os.Stdout)
		}
		return writeArtifacts(ctx, *artifacts, id, *quick, *seed)
	})
}

// writeArtifacts runs the experiment once through the canonical artifact
// pipeline, writing <dir>/<id>.txt (also echoed to stdout) and
// <dir>/<id>.csv — the same byte streams the golden-file tests pin.
func writeArtifacts(ctx context.Context, dir, id string, quick bool, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	text, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	defer text.Close()
	csv, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := eng.RunExperimentArtifacts(ctx, id, quick, seed, io.MultiWriter(os.Stdout, text), csv); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", text.Name(), csv.Name())
	return nil
}

func cmdAll(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced resolution for a fast run")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers, cpuprofile := perfFlags(fs)
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := withDeadline(ctx, *timeout)
	defer cancel()
	return withPerf(*workers, *cpuprofile, func() error {
		ids := bicoop.Experiments()
		for i, id := range ids {
			if err := eng.RunExperiment(ctx, id, *quick, *seed, os.Stdout); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					fmt.Printf("\n(stopped after %d of %d experiments)\n", i, len(ids))
				}
				return err
			}
			fmt.Println()
		}
		return nil
	})
}

func cmdBounds(args []string) error {
	fs := flag.NewFlagSet("bounds", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	fmt.Printf("scenario: P=%.1f dB, Gab=%.1f dB, Gar=%.1f dB, Gbr=%.1f dB\n\n", *p, *gab, *gar, *gbr)
	fmt.Printf("%-8s %-7s %10s %10s %10s   %s\n", "protocol", "bound", "Ra", "Rb", "Ra+Rb", "durations")
	for _, proto := range bicoop.AllProtocols() {
		for _, b := range []bicoop.Bound{bicoop.Inner, bicoop.Outer} {
			res, err := eng.SumRate(proto, b, s)
			if err != nil {
				return err
			}
			durs := make([]string, len(res.Durations))
			for i, d := range res.Durations {
				durs[i] = fmt.Sprintf("%.3f", d)
			}
			fmt.Printf("%-8s %-7s %10.4f %10.4f %10.4f   [%s]\n",
				proto, b, res.Point.Ra, res.Point.Rb, res.Sum, strings.Join(durs, " "))
		}
	}
	fmt.Println("\nnote: DT/Naive4/MABC outer = inner (tight); HBC outer is the independent-input heuristic (see DESIGN.md).")
	return nil
}

func cmdRegion(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("region", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	protoName := fs.String("proto", "HBC", "protocol: DT, Naive4, MABC, TDBC, HBC")
	boundName := fs.String("bound", "inner", "bound: inner or outer")
	csv := fs.Bool("csv", false, "emit the frontier as CSV instead of a table")
	angles := fs.Int("angles", 0, "support directions of the region sweep (0 = default 181)")
	workers := fs.Int("workers", 0, "goroutines sharding the angle axis (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := parseProtocol(*protoName)
	if err != nil {
		return err
	}
	bound := bicoop.Inner
	switch strings.ToLower(*boundName) {
	case "inner":
	case "outer":
		bound = bicoop.Outer
	default:
		return fmt.Errorf("unknown bound %q", *boundName)
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	// The run context flows into the sharded angle sweep, so Ctrl-C stops a
	// long -angles run within one chunk of LP solves.
	r, err := eng.Region(ctx, proto, bound, s, bicoop.RegionOptions{Angles: *angles, Workers: *workers})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("Ra,Rb")
		for _, v := range r.Vertices() {
			fmt.Printf("%g,%g\n", v.Ra, v.Rb)
		}
		return nil
	}
	fmt.Printf("%v %v region at P=%.1f dB: maxRa=%.4f maxRb=%.4f maxSum=%.4f area=%.4f\n",
		proto, bound, *p, r.MaxRa(), r.MaxRb(), r.MaxSumRate(), r.Area())
	fmt.Println("vertices (counter-clockwise):")
	for _, v := range r.Vertices() {
		fmt.Printf("  (%.4f, %.4f)\n", v.Ra, v.Rb)
	}
	return nil
}

func cmdPlace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("place", flag.ContinueOnError)
	p := fs.Float64("p", 15, "per-node transmit power in dB")
	pos := fs.Float64("pos", 0.3, "relay position on the a-b segment (0,1)")
	gamma := fs.Float64("gamma", 3, "path-loss exponent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// One-point sweep over the relay-placement axis: the engine resolves the
	// geometry to gains and streams each protocol's optimum as it solves.
	spec := bicoop.SweepSpec{
		PowersDB:   []float64{*p},
		Placements: []bicoop.RelayPlacement{{Pos: *pos, Exponent: *gamma}},
	}
	header := false
	return eng.Sweep(ctx, spec, func(pt bicoop.SweepPoint) error {
		if !header {
			fmt.Printf("relay at %.2f (gamma %.1f): Gab=%.2f dB Gar=%.2f dB Gbr=%.2f dB\n\n",
				*pos, *gamma, pt.Scenario.GabDB, pt.Scenario.GarDB, pt.Scenario.GbrDB)
			fmt.Printf("%-8s %10s\n", "protocol", "sum rate")
			header = true
		}
		fmt.Printf("%-8s %10.4f\n", pt.Protocol, pt.Result.Sum)
		return nil
	})
}

// cmdSweep evaluates a power × placement × protocol grid and streams it as
// CSV — the CLI face of Engine.Sweep, and the resilience showcase: -timeout
// bounds the run (exit 124), -retries arms the chunk retry policy, and
// -checkpoint makes the sweep resumable. An interrupted checkpointed sweep,
// rerun with the same arguments, picks up where the delivered prefix ended
// and the final CSV is byte-identical to an uninterrupted run's.
func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	gab := fs.Float64("gab", -7, "direct link gain Gab in dB (base gains, and reference for -places)")
	gar := fs.Float64("gar", 0, "a-relay link gain Gar in dB (base gains)")
	gbr := fs.Float64("gbr", 5, "b-relay link gain Gbr in dB (base gains)")
	powers := fs.String("powers", "0:20:1", "power axis in dB: lo:hi:step or a comma list")
	places := fs.Int("places", 0, "relay placements spread over the a-b segment (0 = evaluate the base gains)")
	gamma := fs.Float64("gamma", 3, "path-loss exponent for -places")
	protos := fs.String("protos", "", "comma-separated protocols (default: all five)")
	boundName := fs.String("bound", "inner", "bound: inner or outer")
	out := fs.String("o", "", "write CSV to this file (default stdout)")
	ckPath := fs.String("checkpoint", "", "checkpoint file enabling resume across reruns; requires -o")
	workers := fs.Int("workers", 0, "goroutines sharding the grid (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 0, "retry failed chunks up to this many attempts (0 = fail fast)")
	cacheCap := fs.Int("cache", 0, "in-process result-cache capacity in entries; repeated points (e.g. across placements) are served from cache (0 = off)")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := bicoop.SweepSpec{Base: bicoop.Scenario{GabDB: *gab, GarDB: *gar, GbrDB: *gbr}, Workers: *workers}
	var err error
	if spec.PowersDB, err = parsePowers(*powers); err != nil {
		return err
	}
	for i := 0; i < *places; i++ {
		pos := 0.5
		if *places > 1 {
			pos = 0.05 + 0.9*float64(i)/float64(*places-1)
		}
		spec.Placements = append(spec.Placements, bicoop.RelayPlacement{Pos: pos, Exponent: *gamma, GabDB: *gab})
	}
	if *protos != "" {
		for _, name := range strings.Split(*protos, ",") {
			p, err := parseProtocol(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			spec.Protocols = append(spec.Protocols, p)
		}
	}
	switch strings.ToLower(*boundName) {
	case "inner":
	case "outer":
		spec.Bound = bicoop.Outer
	default:
		return fmt.Errorf("unknown bound %q", *boundName)
	}
	if *retries > 0 {
		spec.Retry = &bicoop.RetryPolicy{MaxAttempts: *retries}
	}
	ctx, cancel := withDeadline(ctx, *timeout)
	defer cancel()
	sweepEng := eng
	if *cacheCap > 0 {
		// A dedicated engine so the cached run solves cold (see the cache
		// package doc): results stay byte-identical whether points hit or
		// miss, at the cost of not warm-starting the misses.
		sweepEng = bicoop.NewEngine(bicoop.WithCache(*cacheCap))
	}
	return runSweepCSV(ctx, sweepEng, spec, *out, *ckPath)
}

// parsePowers parses the power axis: "lo:hi:step" (inclusive) or a comma
// list of dB values.
func parsePowers(s string) ([]float64, error) {
	if parts := strings.Split(s, ":"); len(parts) == 3 {
		var lo, hi, step float64
		for i, dst := range []*float64{&lo, &hi, &step} {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("-powers %q: %w", s, err)
			}
			*dst = v
		}
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("-powers %q: need lo <= hi and step > 0", s)
		}
		var out []float64
		// Index-stepped so resumed runs rebuild the identical axis (no
		// accumulated float drift).
		for i := 0; ; i++ {
			p := lo + float64(i)*step
			if p > hi+1e-9 {
				return out, nil
			}
			out = append(out, p)
		}
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-powers %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runSweepCSV streams the sweep as CSV through the shared ResultLog — the
// same byte-offset checkpoint/resume implementation the bccd job service
// uses — wiring the resume recipe when ckPath is set.
func runSweepCSV(ctx context.Context, eng *bicoop.Engine, spec bicoop.SweepSpec, out, ckPath string) error {
	var log *service.ResultLog
	var err error
	switch {
	case ckPath != "":
		if out == "" {
			return fmt.Errorf("-checkpoint requires -o (resume needs to truncate and append the output file)")
		}
		log, err = service.OpenResultLog(out, ckPath)
	case out != "":
		log, err = service.OpenResultLog(out, "")
	default:
		log = service.NewResultLog(os.Stdout)
	}
	if err != nil {
		return err
	}
	// RunSweep flushes before returning, so rows streamed past the last
	// checkpoint survive an early stop as valid partial output; a resume
	// truncates them away before rewriting.
	runErr := service.RunSweep(ctx, eng, spec, log)
	if err := log.Close(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

func parseProtocol(name string) (bicoop.Protocol, error) {
	return bicoop.ParseProtocol(name)
}
