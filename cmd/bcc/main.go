// Command bcc drives the bidirectional coded cooperation reproduction: it
// evaluates the paper's bounds for arbitrary scenarios, regenerates every
// figure and claim check as ASCII charts/tables (with optional CSV), and
// runs the Monte Carlo simulators.
//
// Usage:
//
//	bcc list                            # list reproduction experiments
//	bcc run <id> [-quick] [-seed N] [-artifacts dir] [-workers N] [-cpuprofile f]
//	bcc all [-quick] [-workers N] [-cpuprofile f]
//	bcc bounds  [-p dB] [-gab dB] [-gar dB] [-gbr dB]
//	bcc region  [-proto P] [-bound inner|outer] [-p dB] [...gains] [-csv]
//	bcc place   [-p dB] [-pos 0..1] [-gamma g]
//
// Examples:
//
//	bcc run fig3
//	bcc run fig4b
//	bcc bounds -p 10
//	bcc region -proto HBC -bound inner -p 10 -csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"bicoop"
)

func main() {
	// Ctrl-C (or SIGTERM) cancels the run context; the engine's context
	// plumbing stops in-flight sweeps and Monte Carlo shard loops within
	// one trial, so whatever partial output was produced is still valid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "bcc: interrupted — partial results above are valid for the trials completed")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "bcc:", err)
		os.Exit(1)
	}
}

// eng is the CLI's session engine: one evaluator pool shared by every
// subcommand, batch and sweep.
var eng = bicoop.DefaultEngine()

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList()
	case "run":
		return cmdRun(ctx, args[1:])
	case "all":
		return cmdAll(ctx, args[1:])
	case "bounds":
		return cmdBounds(args[1:])
	case "region":
		return cmdRegion(ctx, args[1:])
	case "place":
		return cmdPlace(ctx, args[1:])
	case "escape":
		return cmdEscape(args[1:])
	case "penalty":
		return cmdPenalty(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bcc — bidirectional coded cooperation protocol bounds (Kim/Mitran/Tarokh reproduction)

subcommands:
  list     list reproduction experiments
  run      run one experiment:   bcc run fig3 [-quick] [-seed N]
  all      run every experiment: bcc all [-quick]
  bounds   per-protocol optimal sum rates for a scenario
  region   rate-region vertices for one protocol bound
  place    per-protocol sum rates for a relay placed on the a-b segment
  escape   achievable HBC points beyond BOTH the MABC and TDBC outer bounds
  penalty  half-duplex penalty vs the full-duplex DF ceiling, plus AF
`)
}

func cmdEscape(args []string) error {
	fs := flag.NewFlagSet("escape", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	limit := fs.Int("n", 10, "max witnesses to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	pts, err := bicoop.HBCBeyondOuterBounds(s)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		fmt.Printf("no HBC escape points at P=%.1f dB with these gains\n", *p)
		return nil
	}
	fmt.Printf("%d achievable HBC points outside BOTH the MABC and TDBC outer bounds (P=%.1f dB):\n", len(pts), *p)
	for i, pt := range pts {
		if i >= *limit {
			fmt.Printf("  ... and %d more\n", len(pts)-*limit)
			break
		}
		fmt.Printf("  (Ra, Rb) = (%.4f, %.4f)\n", pt.Ra, pt.Rb)
	}
	return nil
}

func cmdPenalty(args []string) error {
	fs := flag.NewFlagSet("penalty", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	fd, err := bicoop.FullDuplexSumRate(s)
	if err != nil {
		return err
	}
	af, err := bicoop.AmplifyForwardSumRate(s)
	if err != nil {
		return err
	}
	fmt.Printf("full-duplex DF ceiling: %.4f bits/use; AF 2-phase: %.4f bits/use\n\n", fd.Sum, af.Sum)
	fmt.Printf("%-8s %10s %12s\n", "protocol", "sum rate", "of ceiling")
	for _, proto := range bicoop.AllProtocols() {
		res, err := eng.SumRate(proto, bicoop.Inner, s)
		if err != nil {
			return err
		}
		pen, err := bicoop.HalfDuplexPenalty(proto, s)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10.4f %11.0f%%\n", proto, res.Sum, 100*pen)
	}
	return nil
}

// scenarioFlags registers the shared scenario flags on fs.
func scenarioFlags(fs *flag.FlagSet) (p, gab, gar, gbr *float64) {
	p = fs.Float64("p", 10, "per-node transmit power in dB (unit noise)")
	gab = fs.Float64("gab", -7, "direct link gain Gab in dB")
	gar = fs.Float64("gar", 0, "a-relay link gain Gar in dB")
	gbr = fs.Float64("gbr", 5, "b-relay link gain Gbr in dB")
	return
}

func cmdList() error {
	for _, id := range bicoop.Experiments() {
		desc, err := bicoop.DescribeExperiment(id)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %s\n", id, desc)
	}
	return nil
}

// perfFlags registers the shared performance flags: -workers caps the
// process's parallelism (GOMAXPROCS, which also bounds the Monte Carlo
// worker pools) and -cpuprofile writes a pprof CPU profile of the run.
func perfFlags(fs *flag.FlagSet) (workers *int, cpuprofile *string) {
	workers = fs.Int("workers", 0, "cap worker parallelism (GOMAXPROCS); 0 keeps the default")
	cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	return
}

// withPerf applies the performance flags around fn. The profile file is
// closed (and profiling stopped) before returning so partial runs still
// produce a readable profile.
func withPerf(workers int, cpuprofile string, fn func() error) error {
	if workers > 0 {
		runtime.GOMAXPROCS(workers)
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	return fn()
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced resolution for a fast run")
	seed := fs.Int64("seed", 1, "simulation seed")
	artifacts := fs.String("artifacts", "", "also write <dir>/<id>.txt and <dir>/<id>.csv canonical artifacts")
	workers, cpuprofile := perfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("run takes an experiment id (see 'bcc list')")
	}
	id := fs.Arg(0)
	// Allow flags after the positional id too: bcc run fig3 -quick.
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return err
	}
	return withPerf(*workers, *cpuprofile, func() error {
		if *artifacts == "" {
			return eng.RunExperiment(ctx, id, *quick, *seed, os.Stdout)
		}
		return writeArtifacts(ctx, *artifacts, id, *quick, *seed)
	})
}

// writeArtifacts runs the experiment once through the canonical artifact
// pipeline, writing <dir>/<id>.txt (also echoed to stdout) and
// <dir>/<id>.csv — the same byte streams the golden-file tests pin.
func writeArtifacts(ctx context.Context, dir, id string, quick bool, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	text, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	defer text.Close()
	csv, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := eng.RunExperimentArtifacts(ctx, id, quick, seed, io.MultiWriter(os.Stdout, text), csv); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", text.Name(), csv.Name())
	return nil
}

func cmdAll(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced resolution for a fast run")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers, cpuprofile := perfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return withPerf(*workers, *cpuprofile, func() error {
		ids := bicoop.Experiments()
		for i, id := range ids {
			if err := eng.RunExperiment(ctx, id, *quick, *seed, os.Stdout); err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Printf("\n(interrupted after %d of %d experiments)\n", i, len(ids))
				}
				return err
			}
			fmt.Println()
		}
		return nil
	})
}

func cmdBounds(args []string) error {
	fs := flag.NewFlagSet("bounds", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	fmt.Printf("scenario: P=%.1f dB, Gab=%.1f dB, Gar=%.1f dB, Gbr=%.1f dB\n\n", *p, *gab, *gar, *gbr)
	fmt.Printf("%-8s %-7s %10s %10s %10s   %s\n", "protocol", "bound", "Ra", "Rb", "Ra+Rb", "durations")
	for _, proto := range bicoop.AllProtocols() {
		for _, b := range []bicoop.Bound{bicoop.Inner, bicoop.Outer} {
			res, err := eng.SumRate(proto, b, s)
			if err != nil {
				return err
			}
			durs := make([]string, len(res.Durations))
			for i, d := range res.Durations {
				durs[i] = fmt.Sprintf("%.3f", d)
			}
			fmt.Printf("%-8s %-7s %10.4f %10.4f %10.4f   [%s]\n",
				proto, b, res.Point.Ra, res.Point.Rb, res.Sum, strings.Join(durs, " "))
		}
	}
	fmt.Println("\nnote: DT/Naive4/MABC outer = inner (tight); HBC outer is the independent-input heuristic (see DESIGN.md).")
	return nil
}

func cmdRegion(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("region", flag.ContinueOnError)
	p, gab, gar, gbr := scenarioFlags(fs)
	protoName := fs.String("proto", "HBC", "protocol: DT, Naive4, MABC, TDBC, HBC")
	boundName := fs.String("bound", "inner", "bound: inner or outer")
	csv := fs.Bool("csv", false, "emit the frontier as CSV instead of a table")
	angles := fs.Int("angles", 0, "support directions of the region sweep (0 = default 181)")
	workers := fs.Int("workers", 0, "goroutines sharding the angle axis (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := parseProtocol(*protoName)
	if err != nil {
		return err
	}
	bound := bicoop.Inner
	switch strings.ToLower(*boundName) {
	case "inner":
	case "outer":
		bound = bicoop.Outer
	default:
		return fmt.Errorf("unknown bound %q", *boundName)
	}
	s := bicoop.Scenario{PowerDB: *p, GabDB: *gab, GarDB: *gar, GbrDB: *gbr}
	// The run context flows into the sharded angle sweep, so Ctrl-C stops a
	// long -angles run within one chunk of LP solves.
	r, err := eng.Region(ctx, proto, bound, s, bicoop.RegionOptions{Angles: *angles, Workers: *workers})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("Ra,Rb")
		for _, v := range r.Vertices() {
			fmt.Printf("%g,%g\n", v.Ra, v.Rb)
		}
		return nil
	}
	fmt.Printf("%v %v region at P=%.1f dB: maxRa=%.4f maxRb=%.4f maxSum=%.4f area=%.4f\n",
		proto, bound, *p, r.MaxRa(), r.MaxRb(), r.MaxSumRate(), r.Area())
	fmt.Println("vertices (counter-clockwise):")
	for _, v := range r.Vertices() {
		fmt.Printf("  (%.4f, %.4f)\n", v.Ra, v.Rb)
	}
	return nil
}

func cmdPlace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("place", flag.ContinueOnError)
	p := fs.Float64("p", 15, "per-node transmit power in dB")
	pos := fs.Float64("pos", 0.3, "relay position on the a-b segment (0,1)")
	gamma := fs.Float64("gamma", 3, "path-loss exponent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// One-point sweep over the relay-placement axis: the engine resolves the
	// geometry to gains and streams each protocol's optimum as it solves.
	spec := bicoop.SweepSpec{
		PowersDB:   []float64{*p},
		Placements: []bicoop.RelayPlacement{{Pos: *pos, Exponent: *gamma}},
	}
	header := false
	return eng.Sweep(ctx, spec, func(pt bicoop.SweepPoint) error {
		if !header {
			fmt.Printf("relay at %.2f (gamma %.1f): Gab=%.2f dB Gar=%.2f dB Gbr=%.2f dB\n\n",
				*pos, *gamma, pt.Scenario.GabDB, pt.Scenario.GarDB, pt.Scenario.GbrDB)
			fmt.Printf("%-8s %10s\n", "protocol", "sum rate")
			header = true
		}
		fmt.Printf("%-8s %10.4f\n", pt.Protocol, pt.Result.Sum)
		return nil
	})
}

func parseProtocol(name string) (bicoop.Protocol, error) {
	for _, p := range bicoop.AllProtocols() {
		if strings.EqualFold(p.String(), name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", name)
}
